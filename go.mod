module hardharvest

go 1.22
