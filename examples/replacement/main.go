// Replacement: the cache side of HardHarvest (§4.2) — way-partitioned
// caches with the Shared-bit replacement policy of Algorithm 1, compared
// against LRU, RRIP, and flush-aware Belady on a harvesting access trace.
package main

import (
	"fmt"

	"hardharvest/internal/mem"
	"hardharvest/internal/sim"
)

func main() {
	// A tiny cache makes the mechanics visible: 4 sets x 4 ways, the upper
	// 2 ways form the harvest region.
	cfg := mem.Config{
		Name: "demo", Sets: 4, Ways: 4, LineBytes: 64,
		HitLatency: sim.Cycles(2), MissPenalty: sim.Cycles(20),
		Policy: mem.PolicyHardHarvest, HarvestWays: 2, EvictionCandidateFrac: 0.75,
	}
	c := mem.New(cfg)

	fmt.Println("Algorithm 1 in action (4-way set, ways 2-3 are the harvest region):")
	addr := func(set, tag int) uint64 { return uint64(tag*4+set) * 64 }
	c.Access(addr(0, 1), true)  // shared -> non-harvest way
	c.Access(addr(0, 2), true)  // shared -> non-harvest way
	c.Access(addr(0, 3), false) // private -> harvest way
	c.Access(addr(0, 4), false) // private -> harvest way
	nh, h := c.SharedEntries()
	fmt.Printf("  after 2 shared + 2 private fills: shared entries non-harvest=%d harvest=%d\n", nh, h)

	// A core loan flushes only the harvest region; shared state survives.
	inv := c.FlushHarvestRegion()
	fmt.Printf("  harvest-region flush invalidates %d entries; shared lines still resident: %v %v\n",
		inv, c.Probe(addr(0, 1)), c.Probe(addr(0, 2)))

	// Now the full comparison on a realistic harvesting trace.
	fmt.Println("\nL2 hit rates on a harvesting trace (Figure 14):")
	tr := mem.GenerateHarvestingTrace(mem.DefaultStreamParams(), 42, 30, 2)
	for _, pol := range []mem.PolicyKind{mem.PolicyLRU, mem.PolicySRRIP, mem.PolicyHardHarvest, mem.PolicyBelady} {
		l2 := mem.StructConfig(mem.L2, mem.DefaultHierarchyParams())
		l2.Policy = pol
		st := mem.SimulateTrace(l2, tr)
		fmt.Printf("  %-12s hit rate %.2f%%  (shared %.2f%%, private %.2f%%)\n",
			pol, 100*st.HitRate(),
			100*float64(st.SharedHits)/float64(st.SharedHits+st.SharedMisses),
			100*float64(st.PrivateHits)/float64(st.PrivateHits+st.PrivateMisses))
	}
	fmt.Println("\nHardHarvest steers shared lines into the non-harvest ways, so core")
	fmt.Println("loans stop destroying the Primary VM's reusable state.")
}
