// Quickstart: simulate one 36-core server under HardHarvest-Block and under
// a conventional NoHarvest system, and compare tail latency, Harvest VM
// throughput, and core utilization.
package main

import (
	"fmt"

	"hardharvest"
)

func main() {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 500 * hardharvest.Millisecond

	work, err := hardharvest.WorkloadByName("BFS")
	if err != nil {
		panic(err)
	}

	fmt.Println("Simulating one server: 8x 4-core Primary VMs (SocialNet services) + 1 Harvest VM (BFS)")
	fmt.Println()

	no := hardharvest.RunServer(cfg, hardharvest.SystemOptions(hardharvest.NoHarvest), work)
	hh := hardharvest.RunServer(cfg, hardharvest.SystemOptions(hardharvest.HardHarvestBlock), work)

	fmt.Printf("%-22s %12s %12s %12s %12s\n", "System", "P99 [ms]", "P50 [ms]", "Busy cores", "Jobs/s")
	for _, r := range []*hardharvest.ServerResult{no, hh} {
		fmt.Printf("%-22s %12.3f %12.3f %12.1f %12.0f\n",
			r.System, r.AvgP99().Milliseconds(), r.AvgP50().Milliseconds(),
			r.BusyCores, r.HarvestJobsPerSec)
	}
	fmt.Println()
	fmt.Printf("HardHarvest-Block harvested %d core loans at hardware speed,\n", hh.Reassigns)
	fmt.Printf("raising utilization %.1fx and batch throughput %.1fx while the\n",
		hh.BusyCores/no.BusyCores, hh.HarvestJobsPerSec/no.HarvestJobsPerSec)
	fmt.Printf("microservice tail latency stayed %.0f%% below the no-harvesting system.\n",
		100*(1-float64(hh.AvgP99())/float64(no.AvgP99())))
}
