// Package examples_test smoke-tests every runnable example: each must
// build and run to completion with a zero exit and produce output. The
// examples double as the public-API tutorial, so a compile break or a
// panic here is a documentation regression, not just a test failure.
package examples_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"sort"
	"testing"
	"time"
)

// exampleDirs discovers the example programs (every subdirectory holding a
// main.go), so a new example is covered without editing this test.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(e.Name() + "/main.go"); err == nil {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) < 6 {
		t.Fatalf("found only %d example dirs (%v), expected the full set", len(dirs), dirs)
	}
	return dirs
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: examples run whole simulations")
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./%s: %v\nstderr:\n%s", dir, err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}

// TestExamplesDeterministic reruns the cheapest example and requires
// byte-identical output: examples print simulation results, and those are
// seeded.
func TestExamplesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: examples run whole simulations")
	}
	run := func() string {
		out, err := exec.Command("go", "run", "./controller").Output()
		if err != nil {
			t.Fatalf("go run ./controller: %v", err)
		}
		return string(out)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("controller example output differs between runs")
	}
}
