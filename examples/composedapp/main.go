// Composedapp: the application-level view — per-service tails compose over
// the ComposePost DAG of Figure 1, so harvesting overheads amplify
// end-to-end ("the tail at scale"). The example measures per-service
// latency distributions under three systems and Monte-Carlo composes them
// into end-to-end application latencies.
package main

import (
	"fmt"

	"hardharvest"
	"hardharvest/internal/app"
	"hardharvest/internal/cluster"
	"hardharvest/internal/stats"
)

func main() {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 500 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("Hadoop")

	systems := []hardharvest.SystemKind{
		hardharvest.NoHarvest, hardharvest.HarvestTerm, hardharvest.HardHarvestBlock,
	}
	results := map[hardharvest.SystemKind]*hardharvest.ServerResult{}
	for _, k := range systems {
		results[k] = hardharvest.RunServer(cfg, hardharvest.SystemOptions(k), work)
	}

	cp := app.ComposePost()
	fmt.Printf("Application: %s (%d stages, critical path %d deep)\n",
		cp.Name, len(cp.Stages), cp.CriticalPathLen())
	for i, st := range cp.Stages {
		fmt.Printf("  stage %d: %-9s deps=%v\n", i, st.Service, st.Deps)
	}
	fmt.Println()

	fmt.Printf("%-20s %14s %14s %16s\n", "System", "E2E P50 [ms]", "E2E P99 [ms]", "vs NoHarvest P99")
	var base float64
	for _, k := range systems {
		src := app.RecorderSource(results[k].Service)
		e2e, err := cp.SimulateE2E(src, stats.NewRNG(7), 30000)
		if err != nil {
			panic(err)
		}
		p99 := e2e.P99().Milliseconds()
		if base == 0 {
			base = p99
		}
		fmt.Printf("%-20s %14.3f %14.3f %15.2fx\n",
			cluster.SystemKind(k).String(), e2e.P50().Milliseconds(), p99, p99/base)
	}
	fmt.Println("\nComposition multiplies exposure: a request is only as fast as the")
	fmt.Println("slowest service on its path, so software harvesting's per-service tail")
	fmt.Println("inflation compounds at the application level.")
}
