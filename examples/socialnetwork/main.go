// Socialnetwork: the paper's headline experiment on a smaller scale —
// per-service P99 tail latency of the SocialNet microservices under all
// five architectures (Figure 11), plus median latencies (Figure 16).
package main

import (
	"fmt"

	"hardharvest"
)

func main() {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 600 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("PRank")

	services := hardharvest.Services()
	fmt.Println("P99 tail latency [ms] per service (lower is better)")
	fmt.Printf("%-20s", "System")
	for _, s := range services {
		fmt.Printf("%10s", s.Name)
	}
	fmt.Printf("%10s\n", "Avg")

	var results []*hardharvest.ServerResult
	for _, k := range hardharvest.Systems() {
		r := hardharvest.RunServer(cfg, hardharvest.SystemOptions(k), work)
		results = append(results, r)
		fmt.Printf("%-20s", r.System)
		for _, s := range services {
			fmt.Printf("%10.3f", r.P99(s.Name).Milliseconds())
		}
		fmt.Printf("%10.3f\n", r.AvgP99().Milliseconds())
	}

	fmt.Println()
	fmt.Println("Median latency [ms]")
	fmt.Printf("%-20s%10s\n", "System", "Avg P50")
	for _, r := range results {
		fmt.Printf("%-20s%10.3f\n", r.System, r.AvgP50().Milliseconds())
	}

	no, ht, hhb := results[0], results[1], results[4]
	fmt.Println()
	fmt.Printf("Software harvesting (Harvest-Term) inflates the tail %.1fx over NoHarvest;\n",
		float64(ht.AvgP99())/float64(no.AvgP99()))
	fmt.Printf("HardHarvest-Block cuts that tail by %.0f%% and is %.0f%% below NoHarvest.\n",
		100*(1-float64(hhb.AvgP99())/float64(ht.AvgP99())),
		100*(1-float64(hhb.AvgP99())/float64(no.AvgP99())))
}
