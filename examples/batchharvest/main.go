// Batchharvest: the Harvest VM's perspective — run every batch workload's
// real mini-kernel once (they are genuine BFS/PageRank/ML/word-count/
// sequence-matching implementations), then measure how much throughput each
// gains from hardware core harvesting (Figure 17).
package main

import (
	"fmt"

	"hardharvest"
	"hardharvest/internal/batch"
	"hardharvest/internal/stats"
)

func main() {
	rng := stats.NewRNG(7)

	fmt.Println("Batch workload kernels (real implementations, synthetic inputs):")
	for _, w := range hardharvest.Workloads() {
		ops, err := w.RunKernel(rng, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-10s %12d ops   memory intensity %.2f\n", w.Name, ops, w.MemoryIntensity)
	}

	// Demonstrate kernel correctness on a tiny case.
	g := batch.GenerateGraph(rng, 1000, 8)
	cc := batch.ConnectedComponents(g)
	rank, _ := batch.PageRank(g, 0.85, 15)
	var sum float64
	for _, r := range rank {
		sum += r
	}
	fmt.Printf("\nSanity: 1000-vertex graph has %d weak component(s); PageRank mass = %.3f\n\n", cc.Components, sum)

	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 400 * hardharvest.Millisecond

	fmt.Println("Harvest VM throughput (jobs/s), NoHarvest vs HardHarvest-Block:")
	fmt.Printf("%-10s %12s %18s %8s\n", "Workload", "NoHarvest", "HardHarvest-Block", "Gain")
	for _, w := range hardharvest.Workloads() {
		no := hardharvest.RunServer(cfg, hardharvest.SystemOptions(hardharvest.NoHarvest), w)
		hh := hardharvest.RunServer(cfg, hardharvest.SystemOptions(hardharvest.HardHarvestBlock), w)
		fmt.Printf("%-10s %12.0f %18.0f %7.2fx\n",
			w.Name, no.HarvestJobsPerSec, hh.HarvestJobsPerSec,
			hh.HarvestJobsPerSec/no.HarvestJobsPerSec)
	}
	fmt.Println("\nMemory-intensive workloads (RndFTrain, Hadoop) gain less: harvested")
	fmt.Println("cores run with the harvest cache region only, and DRAM bandwidth is shared.")
}
