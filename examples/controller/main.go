// Controller: drive the HardHarvest hardware controller directly — the
// paper's §4.1 protocol step by step: VM registration, RQ chunk allocation,
// request arrival, core loans to a Harvest VM, and reclamation by hardware
// interrupt.
package main

import (
	"fmt"

	"hardharvest/internal/core"
)

func main() {
	ctrl := core.DefaultController()

	mask := core.DefaultHarvestMask([core.NumMaskedStructs]int{12, 8, 8, 4, 8})
	must(ctrl.AddVM(1, true, mask))  // Primary VM
	must(ctrl.AddVM(2, false, mask)) // Harvest VM
	for c := core.CoreID(0); c < 4; c++ {
		must(ctrl.BindCore(c, 1))
	}
	must(ctrl.BindCore(8, 2))

	fmt.Printf("Primary VM subqueue: %d chunks (%d slots); Harvest VM: %d chunks\n",
		ctrl.QM(1).Chunks(), ctrl.QM(1).Capacity(), ctrl.QM(2).Chunks())

	// The NIC deposits requests; the controller wakes idle cores.
	r1 := &core.Request{ID: 1, VM: 1, PayloadAddr: 0xD000_0040}
	_, wake, err := ctrl.Enqueue(1, r1)
	must(err)
	fmt.Printf("request 1 arrives -> controller wakes core %d (preempt=%v)\n", wake.Core, wake.Preempt)
	got, _, _, _ := ctrl.Dequeue(wake.Core, true)
	fmt.Printf("core %d dequeues request %d (status %v)\n", wake.Core, got.ID, got.Status)

	// The Harvest VM always has work; idle Primary cores get loaned.
	for i := core.ReqID(100); i < 104; i++ {
		_, _, err := ctrl.Enqueue(2, &core.Request{ID: i, VM: 2})
		must(err)
	}
	job, vm, cross, _ := ctrl.Dequeue(1, true) // idle primary core asks for work
	fmt.Printf("idle core 1 is loaned to VM %d: runs job %d (cross-VM=%v, state=%v)\n",
		vm, job.ID, cross, ctrl.State(1))

	// Occupy the remaining primary cores, then a new primary request forces
	// reclamation of the loaned core via hardware interrupt.
	for i := core.ReqID(2); i <= 3; i++ {
		_, _, err := ctrl.Enqueue(1, &core.Request{ID: i, VM: 1})
		must(err)
	}
	ctrl.Dequeue(2, true)
	ctrl.Dequeue(3, true)
	_, wake2, err := ctrl.Enqueue(1, &core.Request{ID: 9, VM: 1})
	must(err)
	fmt.Printf("request 9 arrives, all cores busy -> preempt core %d (preempt=%v)\n",
		wake2.Core, wake2.Preempt)

	pre, err := ctrl.PreemptCore(wake2.Core)
	must(err)
	fmt.Printf("core %d saves job %d back to the Harvest queue (status %v)\n",
		wake2.Core, pre.ID, pre.Status)
	back, vm2, cross2, _ := ctrl.Dequeue(wake2.Core, true)
	fmt.Printf("core %d now runs primary request %d of VM %d (cross-VM=%v)\n",
		wake2.Core, back.ID, vm2, cross2)

	// Another core picks the preempted job up from the head of the queue.
	resumed, _, _, _ := ctrl.Dequeue(8, false)
	fmt.Printf("harvest core 8 resumes the preempted job %d\n", resumed.ID)

	fmt.Printf("\ncontroller stats: %d loans, %d reclamations\n", ctrl.Loans(), ctrl.Reclaims())

	cost := core.ComputeStorageCost(core.DefaultStorageParams())
	fmt.Printf("hardware cost: %.2f KB controller (%.2f KB/core), Shared bits %.2f KB/core\n",
		float64(cost.ControllerBytes)/1024, cost.ControllerPerCoreB/1024, cost.SharedBitsPerCoreB/1024)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
