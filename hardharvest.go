// Package hardharvest is a from-scratch reproduction of "HardHarvest:
// Hardware-Supported Core Harvesting for Microservices" (ISCA 2025): the
// first architecture for core harvesting in hardware, which lets Harvest VMs
// steal idle cores from Primary VMs with nanosecond-scale re-assignment and
// way-partitioned caches/TLBs, instead of millisecond-scale hypervisor moves
// and full flushes.
//
// The package is a facade over the internal implementation:
//
//   - internal/core — the HardHarvest hardware controller (request queue
//     chunks, Queue Managers, VM State Register Sets, HarvestMask, loan and
//     reclamation protocol, Algorithm 1's replacement policy support).
//   - internal/mem — set-associative cache/TLB models with LRU, RRIP,
//     flush-aware Belady, and the HardHarvest replacement policy.
//   - internal/cluster — the discrete-event server/cluster simulation of the
//     five evaluated systems.
//   - internal/experiments — one runner per table and figure of the paper.
//
// Quick start:
//
//	res := hardharvest.RunServer(hardharvest.DefaultConfig(),
//	    hardharvest.SystemOptions(hardharvest.HardHarvestBlock),
//	    hardharvest.Workloads()[0])
//	fmt.Println(res.AvgP99())
package hardharvest

import (
	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/core"
	"hardharvest/internal/experiments"
	"hardharvest/internal/mem"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// Re-exported simulation types.
type (
	// Config carries the server shape and every cost constant (Table 1).
	Config = cluster.Config
	// Options select a system's mechanisms; use SystemOptions for presets.
	Options = cluster.Options
	// SystemKind names the five evaluated architectures.
	SystemKind = cluster.SystemKind
	// ServerResult is one simulated server's measurements.
	ServerResult = cluster.ServerResult
	// ClusterResult aggregates the 8-server cluster.
	ClusterResult = cluster.ClusterResult
	// Workload describes one Harvest VM batch application.
	Workload = batch.Workload
	// ServiceProfile describes one Primary VM microservice.
	ServiceProfile = workload.Profile
	// Duration is simulated time in picoseconds.
	Duration = sim.Duration
	// Scale bounds an experiment's cost.
	Scale = experiments.Scale
	// Table is a regenerated figure/table.
	Table = experiments.Table
	// Controller is the HardHarvest hardware controller itself, usable as
	// a standalone architectural model.
	Controller = core.Controller
	// CachePolicy selects a replacement policy for the cache models.
	CachePolicy = mem.PolicyKind
	// Observer receives the simulator's event stream (Options.Observer).
	Observer = obs.Observer
	// SpanTracer records spans, harvest-event counters, and a latency
	// histogram; it exports Chrome trace-event JSON for Perfetto.
	SpanTracer = obs.SpanTracer
	// Sampler snapshots per-VM occupancy on a simulated-time cadence.
	Sampler = obs.Sampler
)

// The five evaluated systems (Figure 11, §5).
const (
	NoHarvest        = cluster.NoHarvest
	HarvestTerm      = cluster.HarvestTerm
	HarvestBlock     = cluster.HarvestBlock
	HardHarvestTerm  = cluster.HardHarvestTerm
	HardHarvestBlock = cluster.HardHarvestBlock
)

// Replacement policies of the cache models (Figure 14).
const (
	PolicyLRU         = mem.PolicyLRU
	PolicyRRIP        = mem.PolicySRRIP
	PolicyHardHarvest = mem.PolicyHardHarvest
	PolicyBelady      = mem.PolicyBelady
)

// Common durations for configuring simulations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultConfig returns the Table 1 server configuration with the paper's
// measured cost constants.
func DefaultConfig() Config { return cluster.DefaultConfig() }

// SystemOptions returns the preset for one of the five architectures.
func SystemOptions(kind SystemKind) Options { return cluster.SystemOptions(kind) }

// Systems lists the five architectures in figure order.
func Systems() []SystemKind { return cluster.Systems() }

// RunServer simulates one 36-core server: 8 Primary VMs running the eight
// SocialNet-like services plus 1 Harvest VM running the given batch
// workload.
func RunServer(cfg Config, opts Options, work *Workload) *ServerResult {
	return cluster.RunServer(cfg, opts, work)
}

// RunCluster simulates the 8-server cluster (one batch workload per
// server); servers <= 0 runs all 8.
func RunCluster(cfg Config, opts Options, servers int) *ClusterResult {
	return cluster.RunCluster(cfg, opts, servers)
}

// Workloads returns the eight Harvest VM batch applications.
func Workloads() []*Workload { return batch.Workloads() }

// WorkloadByName returns the named batch workload.
func WorkloadByName(name string) (*Workload, error) { return batch.WorkloadByName(name) }

// Services returns the eight Primary VM microservice profiles.
func Services() []*ServiceProfile { return workload.Profiles() }

// NewController builds the HardHarvest hardware controller with Table 1
// parameters (32-chunk RQ, 16 Queue Managers), for direct use as an
// architectural model.
func NewController() *Controller { return core.DefaultController() }

// QuickScale returns a test-friendly experiment scale; FullScale the
// paper-scale one.
func QuickScale() Scale { return experiments.Quick() }

// FullScale returns the paper-scale experiment configuration.
func FullScale() Scale { return experiments.Full() }

// RunExperiment regenerates one of the paper's tables or figures by id
// (e.g. "fig11", "util", "storage"); see ExperimentIDs.
func RunExperiment(id string, sc Scale) (*Table, bool) {
	r := experiments.ByID(id)
	if r == nil {
		return nil, false
	}
	return r.Run(sc), true
}

// RunAllExperiments regenerates every table and figure at the given scale,
// in paper order. Experiments run concurrently on the scheduler's worker
// pool; the tables are byte-identical to running each experiment alone.
func RunAllExperiments(sc Scale) []*Table { return experiments.All(sc) }

// SetParallelism bounds how many simulated server runs execute at once
// across the experiment suite; n <= 0 resets the bound to GOMAXPROCS.
// Simulations are deterministic and seed-isolated, so the bound changes
// wall clock only, never a table cell.
func SetParallelism(n int) { experiments.SetParallelism(n) }

// Parallelism reports the current bound on concurrent simulation runs.
func Parallelism() int { return experiments.Parallelism() }

// NewSpanTracer builds a span tracer for one run label; pidBase offsets the
// exported process ids when several runs share one trace file (use
// multiples of 64).
func NewSpanTracer(run string, pidBase int) *SpanTracer { return obs.NewSpanTracer(run, pidBase) }

// NewSampler builds an occupancy sampler with the given simulated-time
// cadence.
func NewSampler(run string, interval Duration) *Sampler { return obs.NewSampler(run, interval) }

// MultiObserver composes observers (e.g. a tracer plus a sampler) into one;
// nil members are dropped.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// ExperimentIDs lists every reproducible table/figure id in paper order.
func ExperimentIDs() []string {
	rs := experiments.Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
