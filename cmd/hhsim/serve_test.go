package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveProc is a re-executed `hhsim serve` under test: the real binary with
// real flag parsing, an ephemeral port, and live pipes.
type serveProc struct {
	cmd     *exec.Cmd
	baseURL string
	stdout  *bytes.Buffer // summary lands here when the run completes
	stderrC chan string   // stderr lines after the listen announcement
	mu      sync.Mutex
}

// startServe launches the test binary as `hhsim serve args...` and blocks
// until the server announces its listen address on stderr.
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"HHSIM_RUN_MAIN=1",
		"HHSIM_ARGS="+strings.Join(append([]string{"serve"}, args...), " "))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stdout: &bytes.Buffer{}, stderrC: make(chan string, 64)}
	cmd.Stdout = p.stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrC := make(chan string, 1)
	go func() {
		defer close(p.stderrC)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hhsim serve: listening on http://"); ok {
				addrC <- rest
				continue
			}
			select {
			case p.stderrC <- line:
			default:
			}
		}
	}()
	select {
	case addr := <-addrC:
		p.baseURL = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its listen address")
	}
	return p
}

// waitStderr blocks until a stderr line containing want arrives.
func (p *serveProc) waitStderr(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-p.stderrC:
			if !ok {
				t.Fatalf("stderr closed before %q appeared", want)
			}
			if strings.Contains(line, want) {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q on stderr", want)
		}
	}
}

func (p *serveProc) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(p.baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}

func (p *serveProc) post(t *testing.T, path, body string, wantCode int) {
	t.Helper()
	resp, err := http.Post(p.baseURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: %d (want %d): %s", path, resp.StatusCode, wantCode, b)
	}
}

// metricValue extracts one unlabelled sample value from an exposition body.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// TestServeLifecycle drives the full tentpole loop end to end through the
// real CLI: boot on an ephemeral port, scrape, mutate config over REST,
// finish the run, shut down cleanly — then replay the action log and demand
// a byte-identical summary.
func TestServeLifecycle(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "run.jsonl")
	p := startServe(t, "-addr", "127.0.0.1:0", "-paused",
		"-seed", "3", "-warmup-ms", "10", "-sim-ms", "60", "-step-ms", "10",
		"-actionlog", logPath)

	// Scrape 1: paused at t=0.
	m1 := p.get(t, "/metrics")
	if !strings.Contains(m1, "# TYPE hhsim_events_total counter") ||
		!strings.Contains(m1, "# TYPE hhsim_request_latency_seconds histogram") {
		t.Fatalf("scrape missing expected families:\n%.400s", m1)
	}
	if v := metricValue(t, m1, "hhsim_paused"); v != 1 {
		t.Fatalf("hhsim_paused = %g, want 1 (started -paused)", v)
	}
	t0 := metricValue(t, m1, "hhsim_sim_time_seconds")

	// Mutate config while paused: guaranteed to land at barrier t=0.
	p.post(t, "/api/config", `{"intensity": 1.25}`, http.StatusAccepted)
	p.post(t, "/api/config", `{"intensity": 0}`, http.StatusBadRequest)

	// Run to the horizon and wait for the CLI's completion announcement.
	p.post(t, "/api/resume", "", http.StatusOK)
	p.waitStderr(t, "run complete")

	// Scrape 2: monotone sim time, run done, action applied.
	m2 := p.get(t, "/metrics")
	if t1 := metricValue(t, m2, "hhsim_sim_time_seconds"); t1 <= t0 {
		t.Fatalf("sim time not monotone across scrapes: %g -> %g", t0, t1)
	}
	if v := metricValue(t, m2, "hhsim_run_done"); v != 1 {
		t.Fatalf("hhsim_run_done = %g, want 1", v)
	}
	if v := metricValue(t, m2, "hhsim_actions_applied_total"); v != 1 {
		t.Fatalf("hhsim_actions_applied_total = %g, want 1", v)
	}

	// Clean shutdown via the API; exit code 0.
	p.post(t, "/api/shutdown", "", http.StatusOK)
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("server exit: %v", err)
	}
	live := p.stdout.String()
	if !strings.Contains(live, "== hhsim serve summary ==") ||
		!strings.Contains(live, "actions=1") {
		t.Fatalf("summary missing from stdout:\n%s", live)
	}

	// The logged run replays to the byte through the CLI.
	replayed, stderr, code := hhsim(t, "serve", "-replay", logPath)
	if code != 0 {
		t.Fatalf("replay exit %d, stderr: %s", code, stderr)
	}
	if replayed != live {
		t.Fatalf("replay diverged from served run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
	}
}

// TestServeRoutedLifecycle boots a routed fleet through the real CLI,
// drains a backend over REST, and replays the action log to the byte.
func TestServeRoutedLifecycle(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "routed.jsonl")
	p := startServe(t, "-addr", "127.0.0.1:0", "-paused",
		"-routed", "-backends", "2", "-policy", "round_robin",
		"-seed", "5", "-warmup-ms", "10", "-sim-ms", "60", "-step-ms", "10",
		"-actionlog", logPath)

	m1 := p.get(t, "/metrics")
	if !strings.Contains(m1, "# TYPE hhsim_router_requests_total counter") ||
		!strings.Contains(m1, `hhsim_router_backend_up{backend="server1",state="healthy"} 1`) {
		t.Fatalf("routed scrape missing router families:\n%.600s", m1)
	}
	if !strings.Contains(p.get(t, "/api/state"), `"router":{"policy":"round_robin"`) {
		t.Fatal("routed /api/state has no router block")
	}

	p.post(t, "/api/config", `{"server": 1, "drain_deadline_ms": 5}`, http.StatusAccepted)
	p.post(t, "/api/resume", "", http.StatusOK)
	p.waitStderr(t, "run complete")
	p.post(t, "/api/shutdown", "", http.StatusOK)
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("server exit: %v", err)
	}
	live := p.stdout.String()
	for _, frag := range []string{
		"== hhsim serve summary (routed) ==",
		"fleet: backends=2 policy=round_robin",
		"drains=1",
		"PASS fleet_conservation",
	} {
		if !strings.Contains(live, frag) {
			t.Fatalf("routed summary missing %q:\n%s", frag, live)
		}
	}

	replayed, stderr, code := hhsim(t, "serve", "-replay", logPath)
	if code != 0 {
		t.Fatalf("routed replay exit %d, stderr: %s", code, stderr)
	}
	if replayed != live {
		t.Fatalf("routed replay diverged from served run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
	}
}

func TestServeReplayErrors(t *testing.T) {
	if _, stderr, code := hhsim(t, "serve", "-replay", "/nonexistent/run.jsonl"); code != 1 || stderr == "" {
		t.Fatalf("missing log: exit %d stderr %q, want 1 with message", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(bad, []byte("not json\n"), 0o644)
	if _, stderr, code := hhsim(t, "serve", "-replay", bad); code != 1 || !strings.Contains(stderr, "replay") {
		t.Fatalf("garbage log: exit %d stderr %q, want 1 naming the failure", code, stderr)
	}
}
