package main

import (
	"flag"
	"fmt"
	"os"

	"hardharvest/internal/scenario"
)

// scenarioMain implements `hhsim run <scenario>` and `hhsim validate
// <scenario...>`.
//
// validate parses and semantically checks each file without running
// anything: exit 0 when every file is well-formed, 1 otherwise, with one
// "file:line: field: why" diagnostic per rejected file.
//
// run executes one scenario and prints its deterministic summary. Exit 0
// when every declared assertion and implicit oracle check passes, 1 when
// any fails (or the run itself errors), 2 for a malformed scenario or
// usage.
func scenarioMain(cmd string, args []string) int {
	fs := flag.NewFlagSet("hhsim "+cmd, flag.ContinueOnError)
	shards := fs.Int("shards", 0,
		"worker goroutines for the sharded fleet runner (0 = all CPUs); the summary is byte-identical at any value")
	perturb := fs.String("perturb", "",
		"corrupt a ledger to prove an oracle has teeth (fields: fleet-conservation, graph-mc)")
	strict := fs.Bool("strict", false,
		"panic on the first invariant violation with replay info (instead of counting violations)")
	fs.Usage = func() {
		if cmd == "run" {
			fmt.Fprintf(os.Stderr, "usage: hhsim run [-shards n] [-strict] [-perturb fleet-conservation|graph-mc] <scenario.(yaml|json)>\n")
			fmt.Fprintf(os.Stderr, "  runs one fleet scenario and prints its summary; exit 1 if assertions fail\n")
		} else {
			fmt.Fprintf(os.Stderr, "usage: hhsim validate <scenario.(yaml|json)>...\n")
			fmt.Fprintf(os.Stderr, "  parses + semantically checks scenarios without running them\n")
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return 2
	}

	if cmd == "validate" {
		if *perturb != "" {
			fmt.Fprintln(os.Stderr, "-perturb only applies to run")
			return 2
		}
		if *strict {
			fmt.Fprintln(os.Stderr, "-strict only applies to run")
			return 2
		}
		rc := 0
		for _, path := range files {
			sc, err := scenario.Load(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				rc = 1
				continue
			}
			fmt.Printf("ok: %s: scenario %q, %d servers, %d timeline entries, %d events, %d assertions\n",
				path, sc.Name, sc.Servers(), len(sc.Workload), len(sc.Events), len(sc.Assertions))
		}
		return rc
	}

	if len(files) != 1 {
		fs.Usage()
		return 2
	}
	sc, err := scenario.Load(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc.Strict = *strict
	switch *perturb {
	case "":
	case "fleet-conservation":
		if sc.Routing == nil {
			fmt.Fprintln(os.Stderr, "-perturb fleet-conservation needs a routed scenario (routing block)")
			return 2
		}
		sc.PerturbFleet = true
	case "graph-mc":
		if sc.Graph == nil {
			fmt.Fprintln(os.Stderr, "-perturb graph-mc needs a DAG scenario (graph block)")
			return 2
		}
		sc.PerturbGraphMC = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -perturb field %q (fields: fleet-conservation, graph-mc)\n", *perturb)
		return 2
	}
	rep, err := sc.RunShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(rep.Summary)
	if !rep.OK() {
		return 1
	}
	return 0
}
