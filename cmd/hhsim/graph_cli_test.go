package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cliGraphScenario is a small inline request-DAG scenario: a frontend tier
// fanning out to two parallel mid-tier calls, each followed by a
// sequential leaf call.
const cliGraphScenario = `name: cli-dag
seed: 12
warmup_ms: 10
duration_ms: 100
step_ms: 10
graph:
  rpc_delay_us: 20
  root: fe
  tiers:
    - tier: fe
      group: web
      calls:
        - tier: mid
          mode: parallel
          fanout: 2
    - tier: mid
      group: back
      calls:
        - tier: leafy
          mode: sequential
    - tier: leafy
      group: back
fleet:
  - group: web
    count: 1
  - group: back
    count: 2
workload:
  - at_ms: 20
    kind: intensity
    intensity: 1.3
assertions:
  - metric: graph_completed
    min: 20
  - metric: graph_failed
    max: 0
  - metric: graph_conservation
  - metric: flow_balance
`

// TestScenarioCLIGraph covers the DAG front-door contract end to end
// through the real CLI: the summary gains graph/tier/dag sections, stays
// byte-identical at any -shards value, and -perturb graph-mc corrupts a
// hop sketch so the Monte-Carlo oracle fails the run — while being a
// usage error for graphless scenarios.
func TestScenarioCLIGraph(t *testing.T) {
	dir := t.TempDir()
	dag := filepath.Join(dir, "dag.yaml")
	if err := os.WriteFile(dag, []byte(cliGraphScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.yaml")
	if err := os.WriteFile(plain, []byte(cliScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	out, stderr, code := hhsim(t, "validate", dag)
	if code != 0 {
		t.Fatalf("validate dag: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, `scenario "cli-dag"`) {
		t.Errorf("validate output: %q", out)
	}

	runA, stderr, code := hhsim(t, "run", dag)
	if code != 0 {
		t.Fatalf("run dag: exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"graph: root=fe rpc_delay_us=",
		"dag: generated=",
		"tier fe servers=1 vm=0",
		"tier mid servers=2 vm=0",
		"graph conservation PASS",
		"result: PASS",
	} {
		if !strings.Contains(runA, want) {
			t.Errorf("dag summary missing %q:\n%s", want, runA)
		}
	}
	for _, n := range []string{"1", "2", "8"} {
		runN, stderr, code := hhsim(t, "run", "-shards", n, dag)
		if code != 0 {
			t.Fatalf("run -shards %s: exit %d, stderr: %s", n, code, stderr)
		}
		if runN != runA {
			t.Errorf("-shards %s changed the DAG summary:\n--- default ---\n%s--- shards=%s ---\n%s",
				n, runA, n, runN)
		}
	}

	// The MC cross-check scenario passes clean and fails perturbed: the
	// oracle has teeth through the CLI, not just in-process.
	mc := "../../scenarios/socialnet-mc.yaml"
	out, stderr, code = hhsim(t, "run", mc)
	if code != 0 {
		t.Fatalf("run socialnet-mc: exit %d, stderr: %s\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "PASS graph_mc") {
		t.Errorf("MC scenario does not exercise the graph_mc oracle:\n%s", out)
	}
	out, _, code = hhsim(t, "run", "-perturb", "graph-mc", mc)
	if code != 1 {
		t.Errorf("perturbed MC run: exit %d, want 1", code)
	}
	if !strings.Contains(out, "FAIL graph_mc") || !strings.Contains(out, "result: FAIL") {
		t.Errorf("perturbed summary does not fail the MC cross-check:\n%s", out)
	}
	// The perturbation corrupts one hop sketch, not the ledgers: the
	// conservation oracle must stay green or the teeth prove nothing.
	if !strings.Contains(out, "PASS graph_conservation") {
		t.Errorf("perturbed run also broke conservation (over-corruption):\n%s", out)
	}

	if _, stderr, code = hhsim(t, "run", "-perturb", "graph-mc", plain); code != 2 {
		t.Errorf("perturb graph-mc on graphless scenario: exit %d, want 2 (stderr %q)", code, stderr)
	}
}

// TestScenarioCLIGraphLibrary: every shipped DAG scenario must run green
// through the CLI (the CI dag-smoke job leans on this staying true).
func TestScenarioCLIGraphLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("library runs are not short")
	}
	for _, name := range []string{"socialnet-dag.yaml", "socialnet-mc.yaml"} {
		out, stderr, code := hhsim(t, "run", "../../scenarios/"+name)
		if code != 0 {
			t.Errorf("run %s: exit %d, stderr: %s\n%s", name, code, stderr, out)
		}
	}
}

// TestServeGraphLifecycle boots a DAG fleet through the real CLI, scrapes
// the hhsim_graph_* families, finishes the run, and replays the action log
// to the byte.
func TestServeGraphLifecycle(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "graph.jsonl")
	p := startServe(t, "-addr", "127.0.0.1:0", "-paused",
		"-graph", "socialnet", "-backends", "1",
		"-seed", "7", "-warmup-ms", "10", "-sim-ms", "60", "-step-ms", "10",
		"-actionlog", logPath)

	m1 := p.get(t, "/metrics")
	if !strings.Contains(m1, "# TYPE hhsim_graph_requests_total counter") ||
		!strings.Contains(m1, "# TYPE hhsim_graph_tier_hop_ms gauge") {
		t.Fatalf("graph scrape missing DAG families:\n%.600s", m1)
	}
	if !strings.Contains(p.get(t, "/api/state"), `"graph":{"graph":"socialnet","root":"frontend"`) {
		t.Fatal("graph /api/state has no graph block")
	}

	p.post(t, "/api/config", `{"intensity": 1.2}`, http.StatusAccepted)
	p.post(t, "/api/resume", "", http.StatusOK)
	p.waitStderr(t, "run complete")

	m2 := p.get(t, "/metrics")
	if v := metricValue(t, m2, "hhsim_run_done"); v != 1 {
		t.Fatalf("hhsim_run_done = %g, want 1", v)
	}

	p.post(t, "/api/shutdown", "", http.StatusOK)
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("server exit: %v", err)
	}
	live := p.stdout.String()
	for _, frag := range []string{
		"== hhsim serve summary (graph) ==",
		"graph: socialnet tiers=4 servers=3",
		"dag: generated=",
		"PASS graph_conservation",
		"actions=1",
	} {
		if !strings.Contains(live, frag) {
			t.Fatalf("graph summary missing %q:\n%s", frag, live)
		}
	}

	replayed, stderr, code := hhsim(t, "serve", "-replay", logPath)
	if code != 0 {
		t.Fatalf("graph replay exit %d, stderr: %s", code, stderr)
	}
	if replayed != live {
		t.Fatalf("graph replay diverged from served run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
	}
}

// TestServeGraphFlagErrors pins the serve flag contract around DAG mode.
func TestServeGraphFlagErrors(t *testing.T) {
	if _, stderr, code := hhsim(t, "serve", "-routed", "-graph", "socialnet"); code != 2 ||
		!strings.Contains(stderr, "exclusive") {
		t.Fatalf("-routed -graph: exit %d stderr %q, want 2 naming the exclusivity", code, stderr)
	}
	if _, stderr, code := hhsim(t, "serve", "-graph", "hotelres"); code != 1 ||
		!strings.Contains(stderr, "socialnet") {
		t.Fatalf("unknown -graph: exit %d stderr %q, want 1 listing the built-ins", code, stderr)
	}
}
