package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"hardharvest/internal/serve"
)

// serveMain implements the `hhsim serve` subcommand: a long-lived
// simulation server with a Prometheus /metrics endpoint and a REST control
// surface (see internal/serve). It prints the listen address to stderr
// (machine-readable for tests), the end-of-run summary to stdout when the
// horizon is reached, and keeps serving until POST /api/shutdown or a
// signal. With -replay it runs headless: the action log is replayed and
// only the summary is printed.
func serveMain(args []string) {
	fs := flag.NewFlagSet("hhsim serve", flag.ExitOnError)
	cfg := serve.DefaultRunConfig()
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (use :0 for an ephemeral port)")
	fs.StringVar(&cfg.System, "system", cfg.System, "system architecture (e.g. HardHarvest-Block, NoHarvest)")
	fs.StringVar(&cfg.Workload, "workload", cfg.Workload, "harvest VM batch workload (e.g. BFS)")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	fs.IntVar(&cfg.WarmupMS, "warmup-ms", cfg.WarmupMS, "warmup window [simulated ms]")
	fs.IntVar(&cfg.SimMS, "sim-ms", cfg.SimMS, "measurement window [simulated ms]")
	fs.IntVar(&cfg.StepMS, "step-ms", cfg.StepMS, "barrier cadence [simulated ms]")
	pace := fs.Float64("pace", 0, "simulated seconds per wall second (0 = as fast as possible)")
	paused := fs.Bool("paused", false, "start with the pacing loop paused (advance via POST /api/step or /api/resume)")
	actionLog := fs.String("actionlog", "", "append applied control actions to this NDJSON file (replayable)")
	replay := fs.String("replay", "", "replay an action log headless and print its summary")
	routed := fs.Bool("routed", false, "serve a routed fleet behind a front-door router instead of one server")
	backends := fs.Int("backends", 3, "fleet size (with -routed) or servers per tier group (with -graph)")
	policy := fs.String("policy", "", "routing policy: round_robin, least_outstanding, weighted (with -routed)")
	graphName := fs.String("graph", "", "serve a request-DAG fleet over a built-in graph (socialnet); exclusive with -routed")
	fs.Parse(args)

	// Assign the fleet fields only in fleet modes: routerless config JSON
	// (the action-log header, /api/state) must stay byte-identical to
	// pre-fleet builds.
	if *routed && *graphName != "" {
		fmt.Fprintln(os.Stderr, "-routed and -graph are exclusive")
		os.Exit(2)
	}
	if *routed {
		cfg.Routed = true
		cfg.Backends = *backends
		cfg.Policy = *policy
	}
	if *graphName != "" {
		cfg.Graph = *graphName
		cfg.Backends = *backends
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		summary, err := serve.Replay(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(summary)
		return
	}

	var logW *os.File
	if *actionLog != "" {
		f, err := os.Create(*actionLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logW = f
		defer f.Close()
	}

	runner, err := newServeRunner(cfg, logW, *pace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *paused {
		runner.Pause()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Announce the bound address on stderr before serving: tests and
	// scripts listen for this line to learn the ephemeral port.
	fmt.Fprintf(os.Stderr, "hhsim serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: serve.NewHTTP(runner)}
	go hs.Serve(ln)

	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		runner.Loop()
		if summary, ok := runner.Summary(); ok {
			fmt.Print(summary)
			fmt.Fprintf(os.Stderr, "hhsim serve: run complete (still serving; POST /api/shutdown to exit)\n")
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case <-runner.ShutdownRequested():
	case <-sigCh:
		runner.Shutdown()
	}
	<-loopDone
	hs.Close()
	if logW != nil {
		logW.Sync()
	}
}

// newServeRunner keeps the nil-interface subtlety out of serveMain: passing
// a nil *os.File directly would hand serve a non-nil io.Writer wrapping a
// nil pointer.
func newServeRunner(cfg serve.RunConfig, logW *os.File, pace float64) (*serve.Runner, error) {
	if logW == nil {
		return serve.NewRunner(cfg, nil, pace)
	}
	return serve.NewRunner(cfg, logW, pace)
}
