package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI tests re-execute the test binary as hhsim: TestMain dispatches
// to main() when HHSIM_RUN_MAIN is set, so no separate build artifact is
// needed and `go test ./cmd/hhsim` covers real flag parsing, stream
// separation, and exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("HHSIM_RUN_MAIN") == "1" {
		os.Args = append(os.Args[:1], strings.Split(os.Getenv("HHSIM_ARGS"), " ")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// hhsim re-runs the test binary as the CLI with the given args and returns
// stdout, stderr, and the exit code.
func hhsim(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"HHSIM_RUN_MAIN=1",
		"HHSIM_ARGS="+strings.Join(args, " "))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

func TestList(t *testing.T) {
	out, _, code := hhsim(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table1", "fig11", "fig16", "summary"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, stderr, code := hhsim(t, "-exp", "nope")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr %q does not explain the failure", stderr)
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	if _, _, code := hhsim(t); code != 2 {
		t.Errorf("exit %d, want 2 (usage)", code)
	}
}

// TestExpTable runs one cheap experiment and checks the rendered table
// lands on stdout while the timing line stays on stderr.
func TestExpTable(t *testing.T) {
	out, stderr, code := hhsim(t, "-exp", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "== table1:") {
		t.Errorf("stdout missing table header:\n%s", out)
	}
	if !strings.Contains(stderr, "(table1 in") {
		t.Errorf("timing line not on stderr: %q", stderr)
	}
	if strings.Contains(out, "(table1 in") {
		t.Errorf("timing line leaked to stdout")
	}
}

// TestJSONAllSingleDocument asserts `-json -all` emits exactly one JSON
// array of tables on stdout — nothing else — so the output pipes straight
// into jq. Timing lines must all be on stderr. This is the documented
// stream contract; quick scale keeps it a few seconds.
func TestJSONAllSingleDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs every experiment")
	}
	out, stderr, code := hhsim(t, "-json", "-all", "-measure-ms", "100")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		ID      string   `json:"ID"`
		Columns []string `json:"Columns"`
	}
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&tables); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\nstdout starts: %.200s", err, out)
	}
	if dec.More() {
		t.Errorf("stdout holds more than one JSON document")
	}
	if len(tables) < 20 {
		t.Errorf("decoded %d tables, want every experiment", len(tables))
	}
	if !strings.Contains(stderr, "(fig11 in") {
		t.Errorf("per-experiment timing lines missing from stderr")
	}
}

// TestDeterminism runs the same experiment twice and requires
// byte-identical stdout: the simulation is seeded and the CLI adds no
// nondeterminism of its own.
func TestDeterminism(t *testing.T) {
	a, _, codeA := hhsim(t, "-exp", "fig6", "-json")
	b, _, codeB := hhsim(t, "-exp", "fig6", "-json")
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exits %d/%d", codeA, codeB)
	}
	if a != b {
		t.Errorf("two identical invocations differ on stdout")
	}
}

// TestValidateExitCodes covers the oracle mode's contract: 0 when every
// check passes, 1 when a perturbed constant makes checks fail, 2 for a
// malformed -perturb spec, and -perturb without -validate is a usage
// error.
func TestValidateExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the oracle suite three times")
	}
	out, stderr, code := hhsim(t, "-validate", "-measure-ms", "200")
	if code != 0 {
		t.Fatalf("clean -validate exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "PASS analytic/littles-law-identity/") ||
		!strings.Contains(out, "PASS metamorphic/time-rescaling/") {
		t.Errorf("check listing missing expected lines:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("clean run printed FAIL lines:\n%s", out)
	}

	out, _, code = hhsim(t, "-validate", "-measure-ms", "200", "-perturb", "partition-flush-wait=3")
	if code != 1 {
		t.Errorf("perturbed -validate exit %d, want 1", code)
	}
	if !strings.Contains(out, "FAIL analytic/table1-calibration/PartitionFlushWait") {
		t.Errorf("perturbed run does not name the corrupted constant:\n%s", out)
	}
	if !strings.Contains(out, "relation:") {
		t.Errorf("failure does not state the violated relation:\n%s", out)
	}

	if _, _, code = hhsim(t, "-validate", "-perturb", "bogus"); code != 2 {
		t.Errorf("malformed -perturb exit %d, want 2", code)
	}
	if _, _, code = hhsim(t, "-perturb", "load-scale=2"); code != 2 {
		t.Errorf("-perturb without -validate exit %d, want 2", code)
	}
}

// TestFlagValidation: unusable numeric flags must exit 2 with an
// explanation before any run construction, not panic mid-run or silently
// disable an output.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-exp", "table1", "-sample-us", "0"},
		{"-exp", "table1", "-sample-us", "-5"},
		{"-exp", "table1", "-parallel", "-1"},
		{"-exp", "table1", "-measure-ms", "-100"},
	}
	for _, args := range cases {
		out, stderr, code := hhsim(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2\nstdout: %s\nstderr: %s", args, code, out, stderr)
			continue
		}
		if !strings.Contains(stderr, "must be") || !strings.Contains(stderr, "got ") {
			t.Errorf("%v: stderr does not explain the rejected value: %q", args, stderr)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "usage") {
			t.Errorf("%v: stderr has no usage text: %q", args, stderr)
		}
	}
}

const cliScenario = `name: cli-smoke
seed: 9
warmup_ms: 10
duration_ms: 40
step_ms: 10
fleet:
  - group: web
    count: 1
workload:
  - at_ms: 10
    kind: intensity
    intensity: 1.4
assertions:
  - metric: completions
    min: 1
  - metric: flow_balance
`

// TestScenarioCLI covers the run/validate subcommand contract: validate is
// parse+check only with positioned diagnostics, run prints a deterministic
// summary, and exit codes distinguish assertion failure (1) from malformed
// input (2).
func TestScenarioCLI(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.yaml", cliScenario)
	bad := write("bad.yaml", strings.Replace(cliScenario, "kind: intensity", "kind: sorcery", 1))
	failing := write("failing.yaml", strings.Replace(cliScenario, "min: 1", "min: 1000000", 1))

	out, stderr, code := hhsim(t, "validate", good)
	if code != 0 {
		t.Fatalf("validate good: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ok: ") || !strings.Contains(out, `scenario "cli-smoke"`) {
		t.Errorf("validate output: %q", out)
	}

	out, stderr, code = hhsim(t, "validate", good, bad)
	if code != 1 {
		t.Errorf("validate with bad file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad.yaml:10: workload[0].kind: unknown timeline kind \"sorcery\"") {
		t.Errorf("validate diagnostic not positioned: %q", stderr)
	}
	if !strings.Contains(out, "ok: ") {
		t.Errorf("good file not reported ok alongside bad one: %q", out)
	}

	runA, stderr, code := hhsim(t, "run", good)
	if code != 0 {
		t.Fatalf("run: exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"== hhsim scenario summary ==", "scenario=cli-smoke", "result: PASS"} {
		if !strings.Contains(runA, want) {
			t.Errorf("run summary missing %q:\n%s", want, runA)
		}
	}
	runB, _, _ := hhsim(t, "run", good)
	if runA != runB {
		t.Errorf("two runs of the same scenario differ:\n--- a ---\n%s--- b ---\n%s", runA, runB)
	}

	// -shards is an execution detail: stdout must be byte-identical at any
	// worker count (the default run above used every CPU).
	for _, n := range []string{"1", "2", "8"} {
		runN, stderr, code := hhsim(t, "run", "-shards", n, good)
		if code != 0 {
			t.Fatalf("run -shards %s: exit %d, stderr: %s", n, code, stderr)
		}
		if runN != runA {
			t.Errorf("-shards %s changed the summary:\n--- default ---\n%s--- shards=%s ---\n%s",
				n, runA, n, runN)
		}
	}

	out, _, code = hhsim(t, "run", failing)
	if code != 1 {
		t.Errorf("failing assertions: exit %d, want 1", code)
	}
	if !strings.Contains(out, "FAIL completions >= 1000000") || !strings.Contains(out, "result: FAIL") {
		t.Errorf("failure summary wrong:\n%s", out)
	}

	if _, stderr, code = hhsim(t, "run", bad); code != 2 {
		t.Errorf("run on malformed scenario: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if _, _, code = hhsim(t, "run"); code != 2 {
		t.Errorf("run without a file: exit %d, want 2", code)
	}
	if _, _, code = hhsim(t, "validate"); code != 2 {
		t.Errorf("validate without files: exit %d, want 2", code)
	}
}

const cliRoutedScenario = `name: cli-routed
seed: 11
warmup_ms: 10
duration_ms: 40
step_ms: 10
routing:
  policy: round_robin
  probe_interval_ms: 5
fleet:
  - group: web
    count: 2
events:
  - at_ms: 10
    kind: faults
    server: 0
    plan: {"events": [{"at_ms": 0, "kind": "crash", "duration_ms": 6}]}
assertions:
  - metric: failovers
    min: 1
  - metric: lost
    max: 0
  - metric: fleet_conservation
`

// TestScenarioCLIRouted covers the routed front-door contract end to end:
// the summary gains router/backend sections, stays byte-identical at any
// -shards value and across repeats, and -perturb fleet-conservation
// corrupts the ledger so the mandatory oracle fails the run — while being
// a usage error for routerless scenarios or unknown fields.
func TestScenarioCLIRouted(t *testing.T) {
	dir := t.TempDir()
	routed := filepath.Join(dir, "routed.yaml")
	if err := os.WriteFile(routed, []byte(cliRoutedScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.yaml")
	if err := os.WriteFile(plain, []byte(cliScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	runA, stderr, code := hhsim(t, "run", routed)
	if code != 0 {
		t.Fatalf("run routed: exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"routing: policy=round_robin",
		"router: generated=",
		"backend server0[web]",
		"fleet conservation PASS",
		"result: PASS",
	} {
		if !strings.Contains(runA, want) {
			t.Errorf("routed summary missing %q:\n%s", want, runA)
		}
	}
	for _, n := range []string{"1", "2", "8"} {
		runN, stderr, code := hhsim(t, "run", "-shards", n, routed)
		if code != 0 {
			t.Fatalf("run -shards %s: exit %d, stderr: %s", n, code, stderr)
		}
		if runN != runA {
			t.Errorf("-shards %s changed the routed summary:\n--- default ---\n%s--- shards=%s ---\n%s",
				n, runA, n, runN)
		}
	}

	out, _, code := hhsim(t, "run", "-perturb", "fleet-conservation", routed)
	if code != 1 {
		t.Errorf("perturbed routed run: exit %d, want 1", code)
	}
	if !strings.Contains(out, "fleet_conservation FAIL") || !strings.Contains(out, "result: FAIL") {
		t.Errorf("perturbed summary does not fail conservation:\n%s", out)
	}

	if _, stderr, code = hhsim(t, "run", "-perturb", "fleet-conservation", plain); code != 2 {
		t.Errorf("perturb on routerless scenario: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if _, stderr, code = hhsim(t, "run", "-perturb", "bogus", routed); code != 2 {
		t.Errorf("unknown perturb field: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if _, stderr, code = hhsim(t, "validate", "-perturb", "fleet-conservation", routed); code != 2 {
		t.Errorf("perturb on validate: exit %d, want 2 (stderr %q)", code, stderr)
	}
}
