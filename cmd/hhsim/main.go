// Command hhsim runs the paper's experiments and prints the regenerated
// tables and figures.
//
// Usage:
//
//	hhsim -exp fig11                  # one experiment
//	hhsim -all                        # every experiment
//	hhsim -all -scale full            # paper-scale runs
//	hhsim -list                       # list experiment ids
//	hhsim -exp fig6 -trace t.json     # Perfetto/chrome://tracing span trace
//	hhsim -exp fig6 -timeseries o.csv # occupancy time series
//	hhsim -exp fig6 -counters         # harvest-event counters + latency hist
//	hhsim -all -cpuprofile cpu.pprof  # pprof CPU profile of the whole run
//	hhsim -all -memprofile mem.pprof  # pprof allocation profile
//	hhsim -exp fig11 -faults examples/faultplan.json -resilience
//	                                  # inject a fault plan + default
//	                                  # timeout/retry/hedge/shed policies
//	hhsim -exp faultsweep -strict     # fault-intensity sweep, invariant
//	                                  # violations panic with replay info
//	hhsim -validate                   # simulation oracle: metamorphic +
//	                                  # analytic checks, exit 1 on failure
//	hhsim -validate -perturb partition-flush-wait=3
//	                                  # prove the oracle catches a
//	                                  # corrupted Table 1 constant
//	hhsim serve -addr :8377           # long-lived simulation server:
//	                                  # Prometheus /metrics, REST control
//	                                  # (/api/state, /api/config, pause/
//	                                  # resume/step), /api/timeseries
//	hhsim serve -actionlog run.jsonl  # log control actions for replay
//	hhsim serve -replay run.jsonl     # re-run a served session headless;
//	                                  # the summary is byte-identical
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"hardharvest/internal/cluster"
	"hardharvest/internal/experiments"
	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
	"hardharvest/internal/validate"
)

// collector hands out per-run observers and keeps them for export after the
// experiment finishes. It implements experiments.ObserverProvider; one fresh
// collector is used per experiment so -all writes one output set per id.
type collector struct {
	mu       sync.Mutex
	trace    bool
	sample   sim.Duration
	tracers  []*obs.SpanTracer
	samplers []*obs.Sampler
}

func (c *collector) ObserverFor(run string) cluster.Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]obs.Observer, 0, 2)
	if c.trace {
		// 64 pid slots per run keeps every (run, VM) pair on its own
		// Perfetto process track.
		t := obs.NewSpanTracer(run, len(c.tracers)*64)
		c.tracers = append(c.tracers, t)
		parts = append(parts, t)
	}
	if c.sample > 0 {
		s := obs.NewSampler(run, c.sample)
		c.samplers = append(c.samplers, s)
		parts = append(parts, s)
	}
	return obs.Multi(parts...)
}

func (c *collector) active() bool { return c.trace || c.sample > 0 }

// outPath derives the output file for one experiment: with -all the
// experiment id is spliced in before the extension so runs don't clobber
// each other (t.json -> t.fig6.json).
func outPath(base, id string, all bool) string {
	if !all {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + id + ext
}

func writeFile(path string, write func(f *os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, err)
	} else {
		fmt.Fprintln(os.Stderr, err)
		f.Close()
	}
	os.Exit(1)
}

func main() {
	// Subcommand dispatch happens before flag parsing: `hhsim serve`,
	// `hhsim run`, and `hhsim validate` have their own flag sets, and the
	// batch flags below do not apply to them. (`hhsim validate <file>` is
	// the scenario checker; the `-validate` flag is the simulation oracle.)
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "run", "validate":
			os.Exit(scenarioMain(os.Args[1], os.Args[2:]))
		}
	}
	exp := flag.String("exp", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	scaleName := flag.String("scale", "quick", "quick or full")
	seed := flag.Uint64("seed", 1, "random seed")
	measureMS := flag.Int("measure-ms", 0, "override measurement window [ms]")
	asJSON := flag.Bool("json", false, "emit tables as JSON")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON span trace (open in Perfetto)")
	tsPath := flag.String("timeseries", "", "write per-VM occupancy samples (.csv or .json)")
	counters := flag.Bool("counters", false, "print per-run harvest-event counters and latency histogram")
	sampleUS := flag.Int("sample-us", 100, "timeseries sampling cadence in simulated microseconds")
	parallel := flag.Int("parallel", 0, "max concurrent simulated server runs (0 = GOMAXPROCS, 1 = sequential)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
	faultsPath := flag.String("faults", "", "inject faults from a JSON fault plan (see internal/faults)")
	strict := flag.Bool("strict", false, "panic on the first invariant violation with replay info")
	resilience := flag.Bool("resilience", false, "enable default request timeout/retry/hedge/shed policies")
	runValidate := flag.Bool("validate", false, "run the simulation oracle (metamorphic + analytic checks) and exit nonzero on failure")
	perturb := flag.String("perturb", "", "comma-separated field=factor corruptions for -validate (fields: "+
		strings.Join(validate.PerturbFields(), ", ")+")")
	flag.Parse()

	// Reject unusable numeric flags before any run construction: a zero
	// sampling cadence would silently disable -timeseries, and negative
	// windows or worker counts would surface as panics deep in the
	// scheduler. Exit 2 (usage), matching the documented code convention.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hhsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *sampleUS <= 0 {
		usageErr("-sample-us must be a positive number of simulated microseconds, got %d", *sampleUS)
	}
	if *parallel < 0 {
		usageErr("-parallel must be >= 0 (0 = GOMAXPROCS), got %d", *parallel)
	}
	if *measureMS < 0 {
		usageErr("-measure-ms must be >= 0 (0 = the scale's default window), got %d", *measureMS)
	}
	experiments.SetParallelism(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// An explicit GC makes the heap profile reflect live data and
			// complete allocation counts, not a mid-cycle snapshot.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return
	}
	sc := experiments.Quick()
	if *scaleName == "full" {
		sc = experiments.Full()
	}
	sc.Seed = *seed
	if *measureMS > 0 {
		sc.Measure = sim.Duration(*measureMS) * sim.Millisecond
	}
	if *faultsPath != "" {
		plan, err := faults.Load(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc.Faults = plan
	}
	sc.Strict = *strict
	if *resilience {
		sc.Resilience = cluster.DefaultResilience()
	}

	if *runValidate {
		os.Exit(runOracle(sc, *perturb))
	}
	if *perturb != "" {
		fmt.Fprintln(os.Stderr, "-perturb only applies to -validate")
		os.Exit(2)
	}

	// runExp executes one experiment: the rendered table goes to w, the
	// timing line and counters go to ew (stderr in the end — keeping them
	// off stdout means -json emits a single valid JSON document), and file
	// outputs (trace/timeseries) are written directly; with -all the id is
	// spliced into each filename so concurrent experiments never share a
	// path. Each experiment gets its own collector, so instrumented -all
	// runs stay per-experiment deterministic even when they overlap.
	runExp := func(r experiments.Runner, w, ew io.Writer) *experiments.Table {
		col := &collector{trace: *tracePath != "" || *counters}
		if *tsPath != "" {
			col.sample = sim.Duration(*sampleUS) * sim.Microsecond
		}
		scr := sc
		if col.active() {
			scr.Obs = col
		}
		start := time.Now()
		tbl := r.Run(scr)
		if *tracePath != "" {
			writeFile(outPath(*tracePath, r.ID, *all), func(f *os.File) error {
				return obs.WriteTraces(f, col.tracers...)
			})
		}
		if *tsPath != "" {
			writeFile(outPath(*tsPath, r.ID, *all), func(f *os.File) error {
				if filepath.Ext(*tsPath) == ".json" {
					return obs.WriteSamplesJSON(f, col.samplers...)
				}
				return obs.WriteSamplesCSV(f, col.samplers...)
			})
		}
		if !*asJSON {
			fmt.Fprintln(w, tbl.String())
		}
		fmt.Fprintf(ew, "  (%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
		if *counters {
			printCounters(ew, r.ID, col.tracers)
		}
		return tbl
	}
	marshal := func(v any) {
		out, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
	switch {
	case *all:
		// Experiments run concurrently (the scheduler's worker pool bounds
		// the actual simulation parallelism); each buffers its output, and
		// the printer drains the buffers in paper order as soon as every
		// earlier experiment has finished, so stdout is byte-identical to a
		// sequential run.
		runners := experiments.Runners()
		type expOutput struct {
			tbl      *experiments.Table
			out, err strings.Builder
		}
		outs := make([]*expOutput, len(runners))
		done := make([]chan struct{}, len(runners))
		for i := range runners {
			outs[i] = &expOutput{}
			done[i] = make(chan struct{})
		}
		for i, r := range runners {
			i, r := i, r
			go func() {
				defer close(done[i])
				outs[i].tbl = runExp(r, &outs[i].out, &outs[i].err)
			}()
		}
		var jsonTables []*experiments.Table
		for i := range runners {
			<-done[i]
			io.WriteString(os.Stdout, outs[i].out.String())
			io.WriteString(os.Stderr, outs[i].err.String())
			jsonTables = append(jsonTables, outs[i].tbl)
		}
		if *asJSON {
			marshal(jsonTables)
		}
	case *exp != "":
		r := experiments.ByID(*exp)
		if r == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		tbl := runExp(*r, os.Stdout, os.Stderr)
		if *asJSON {
			marshal(tbl)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOracle executes the validate suite at the scale's parameters and
// prints every check. Exit codes: 0 all checks pass, 1 at least one check
// failed, 2 unusable parameters (malformed -perturb spec).
func runOracle(sc experiments.Scale, perturb string) int {
	p := validate.Params{
		Measure:    sc.Measure,
		Warmup:     sc.Warmup,
		Seed:       sc.Seed,
		Faults:     sc.Faults,
		Strict:     sc.Strict,
		Resilience: sc.Resilience,
	}
	if perturb != "" {
		p.Perturb = strings.Split(perturb, ",")
	}
	start := time.Now()
	checks, err := validate.Suite(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, c := range checks {
		fmt.Println(c)
	}
	failed := validate.Failed(checks)
	fmt.Fprintf(os.Stderr, "  (validate: %d checks, %d failed, in %.1fs)\n",
		len(checks), len(failed), time.Since(start).Seconds())
	if len(failed) > 0 {
		return 1
	}
	return 0
}

// printCounters reports the harvest-event counters and the end-to-end
// latency histogram of every instrumented run, in run-name order. It writes
// to w — cmd wiring points that at stderr so table/JSON stdout stays clean.
func printCounters(w io.Writer, id string, tracers []*obs.SpanTracer) {
	sorted := append([]*obs.SpanTracer(nil), tracers...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Run() < sorted[j].Run() })
	fmt.Fprintf(w, "== %s: harvest-event counters ==\n", id)
	for _, t := range sorted {
		fmt.Fprintf(w, "%s\n  %s\n  latency %s\n", t.Run(), t.Counters(), t.Hist())
	}
	fmt.Fprintln(w)
}
