// Command hhsim runs the paper's experiments and prints the regenerated
// tables and figures.
//
// Usage:
//
//	hhsim -exp fig11            # one experiment
//	hhsim -all                  # every experiment
//	hhsim -all -scale full      # paper-scale runs
//	hhsim -list                 # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hardharvest/internal/experiments"
	"hardharvest/internal/sim"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	scaleName := flag.String("scale", "quick", "quick or full")
	seed := flag.Uint64("seed", 1, "random seed")
	measureMS := flag.Int("measure-ms", 0, "override measurement window [ms]")
	asJSON := flag.Bool("json", false, "emit tables as JSON")
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return
	}
	sc := experiments.Quick()
	if *scaleName == "full" {
		sc = experiments.Full()
	}
	sc.Seed = *seed
	if *measureMS > 0 {
		sc.Measure = sim.Duration(*measureMS) * sim.Millisecond
	}

	run := func(r experiments.Runner) {
		start := time.Now()
		tbl := r.Run(sc)
		if *asJSON {
			out, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Println(tbl.String())
		fmt.Printf("  (%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
	}
	switch {
	case *all:
		for _, r := range experiments.Runners() {
			run(r)
		}
	case *exp != "":
		r := experiments.ByID(*exp)
		if r == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		run(*r)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
