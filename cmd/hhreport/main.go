// Command hhreport runs every experiment and renders a Markdown report in
// the EXPERIMENTS.md format (paper artifact -> regenerated data).
//
// Usage:
//
//	hhreport > report.md
//	hhreport -scale full -o EXPERIMENTS_FULL.md
//	hhreport -only fig11,util
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hardharvest/internal/experiments"
	"hardharvest/internal/report"
)

func main() {
	scaleName := flag.String("scale", "quick", "quick or full")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	flag.Parse()

	sc := experiments.Quick()
	if *scaleName == "full" {
		sc = experiments.Full()
	}
	sc.Seed = *seed

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	var b strings.Builder
	n, err := report.Generate(&b, sc, report.Options{
		Title:     "HardHarvest reproduction report",
		ScaleName: *scaleName,
		Only:      ids,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "hhreport: no experiments matched")
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d sections)\n", *out, n)
}
