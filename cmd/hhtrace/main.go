// Command hhtrace generates and analyzes Alibaba-like microservice
// utilization traces (the Figure 2/3 substrate).
//
// Usage:
//
//	hhtrace -n 2000             # instance CDF summary (Figure 2)
//	hhtrace -series             # one bursty utilization time series (Figure 3)
//	hhtrace -series -steps 64   # a longer series
package main

import (
	"flag"
	"fmt"

	"hardharvest/internal/stats"
	"hardharvest/internal/trace"
)

func main() {
	n := flag.Int("n", 2000, "number of instances to generate")
	seed := flag.Uint64("seed", 1, "random seed")
	series := flag.Bool("series", false, "print a utilization time series instead of the CDF")
	steps := flag.Int("steps", 17, "series steps (30 s each)")
	avgUtil := flag.Float64("avg", 0.17, "series instance average utilization")
	maxUtil := flag.Float64("max", 0.75, "series instance maximum utilization")
	flag.Parse()

	rng := stats.NewRNG(*seed)
	if *series {
		p := trace.DefaultSeriesParams()
		p.Steps = *steps
		inst := trace.Instance{AvgUtil: *avgUtil, MaxUtil: *maxUtil}
		s := inst.Series(rng, p)
		fmt.Println("time[s]  utilization")
		for i, u := range s {
			bar := int(u * 50)
			fmt.Printf("%6d   %.3f  %s\n", i*30, u, bars(bar))
		}
		avg, max := trace.SummarizeSeries(s)
		fmt.Printf("\navg=%.3f max=%.3f\n", avg, max)
		return
	}

	insts := trace.GenerateInstances(rng, *n)
	fmt.Printf("generated %d instances\n\n", *n)
	fmt.Println("utilization  P(avg<u)  P(max<u)")
	for u := 0.05; u <= 1.0001; u += 0.05 {
		fmt.Printf("%10.2f  %8.3f  %8.3f\n", u,
			trace.FractionBelowAvg(insts, u), trace.FractionBelowMax(insts, u))
	}
	fmt.Printf("\npaper calibration points: P(avg<0.161)=%.3f (target 0.50), P(max<0.407)=%.3f (target 0.90)\n",
		trace.FractionBelowAvg(insts, 0.161), trace.FractionBelowMax(insts, 0.407))
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
