package hardharvest_test

// One benchmark per table and figure of the paper's evaluation: each bench
// regenerates its artifact end to end (workload generation, simulation,
// table assembly). Run a single figure with e.g.
//
//	go test -bench BenchmarkFig11 -benchtime 1x
//
// The benches use a reduced measurement window; cmd/hhsim -scale full runs
// the paper-scale versions.

import (
	"testing"

	"hardharvest"
	"hardharvest/internal/experiments"
	"hardharvest/internal/scenario"
)

func benchScale() hardharvest.Scale {
	sc := experiments.Quick()
	sc.Measure = 120 * hardharvest.Millisecond
	sc.Warmup = 20 * hardharvest.Millisecond
	sc.Servers = 2
	return sc
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	// A per-experiment seed space with a fresh seed per iteration defeats
	// the figure-sharing result cache, so every iteration measures the
	// full regeneration cost (and no benchmark warms another's cache).
	base := uint64(1)
	for _, c := range id {
		base = base*131 + uint64(c)
	}
	for i := 0; i < b.N; i++ {
		sc.Seed = base + uint64(i)
		tbl, ok := hardharvest.RunExperiment(id, sc)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %q produced no rows", id)
		}
	}
}

// Motivation figures (§3).
func BenchmarkFig2AlibabaCDF(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3UtilizationSeries(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4HypervisorOverhead(b *testing.B) {
	benchExperiment(b, "fig4")
}
func BenchmarkFig5FlushOverhead(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6RequestBreakdown(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7CacheSizeSensitivity(b *testing.B) { benchExperiment(b, "fig7") }

// Evaluation figures (§6).
func BenchmarkFig11TailLatency(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12OptBreakdown(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13SchedCtxtSwAblation(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14ReplacementPolicies(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15NoHarvestOpts(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16MedianLatency(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17HarvestThroughput(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkUtilizationTable(b *testing.B)         { benchExperiment(b, "util") }
func BenchmarkStorageCost(b *testing.B)              { benchExperiment(b, "storage") }
func BenchmarkFig18LLCSensitivity(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19EvictionCandidates(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkTable1Parameters(b *testing.B)         { benchExperiment(b, "table1") }

// Ablation of the design choices DESIGN.md calls out (extension policies).
func BenchmarkExtensionPolicies(b *testing.B) { benchExperiment(b, "ext") }

// End-to-end application composition over Figure 1's DAGs.
func BenchmarkApplicationE2E(b *testing.B) { benchExperiment(b, "app") }

// The §4.2.2 shared-before-serve profiling sweep over three suites.
func BenchmarkProfilingSweep(b *testing.B) { benchExperiment(b, "profiling") }

// Latency-load curve extension.
func BenchmarkLoadSweep(b *testing.B) { benchExperiment(b, "loadsweep") }

// Whole-suite regeneration on the parallel scheduler vs a pool of one:
// the pair measures the -all speedup on the host (identical tables either
// way; simulations are deterministic and seed-isolated). A fresh seed per
// iteration defeats the figure-sharing result cache.

func benchAll(b *testing.B, parallelism int) {
	b.Helper()
	hardharvest.SetParallelism(parallelism)
	defer hardharvest.SetParallelism(0)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		sc.Seed = 900000 + uint64(i)
		tables := hardharvest.RunAllExperiments(sc)
		if len(tables) != len(hardharvest.ExperimentIDs()) {
			b.Fatalf("suite returned %d tables", len(tables))
		}
	}
}

func BenchmarkAllExperimentsParallel(b *testing.B)   { benchAll(b, 0) }
func BenchmarkAllExperimentsSequential(b *testing.B) { benchAll(b, 1) }

// BenchmarkShardedVsSerial runs one fleet scenario through the sharded
// runner with 1 worker and with 8; the pair measures the intra-run speedup
// on the host (the summaries are byte-identical either way, so the ratio is
// pure execution overhead). The serial leg's allocs/op is pinned in
// BENCH_baseline.json: it covers the whole sharded path — group setup,
// window bookkeeping, per-server barrier loops, sketch recorders.

const shardBenchYAML = `name: bench-shard
seed: 9
warmup_ms: 5
duration_ms: 40
step_ms: 5
fleet:
  - group: web
    count: 8
    system: HardHarvest-Block
    workload: BFS
`

func benchScenarioShards(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := scenario.Parse([]byte(shardBenchYAML), false, "")
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sc.RunShards(shards)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("scenario failed:\n%s", rep.Summary)
		}
	}
}

func BenchmarkShardedVsSerial(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchScenarioShards(b, 1) })
	b.Run("shards8", func(b *testing.B) { benchScenarioShards(b, 8) })
}

// Micro-benchmarks of the core primitives, for engineering regressions.

func BenchmarkControllerEnqueueDequeue(b *testing.B) {
	ctrl := hardharvest.NewController()
	// Same shape as one Primary VM slice of the server.
	mustB(b, ctrl.AddVM(1, true, defaultMask()))
	mustB(b, ctrl.BindCore(0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := requestFor(1, uint64(i))
		if _, _, err := ctrl.Enqueue(1, r); err != nil {
			b.Fatal(err)
		}
		got, _, _, err := ctrl.Dequeue(0, false)
		if err != nil || got == nil {
			b.Fatalf("dequeue: %v %v", got, err)
		}
		if err := ctrl.Complete(0, got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerSimulation(b *testing.B) {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 50 * hardharvest.Millisecond
	cfg.WarmupDuration = 10 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("BFS")
	opts := hardharvest.SystemOptions(hardharvest.HardHarvestBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r := hardharvest.RunServer(cfg, opts, work)
		if r.Requests == 0 {
			b.Fatal("no requests simulated")
		}
	}
}

// BenchmarkServerNilObserver is BenchmarkServerSimulation with the observer
// field explicitly nil; compare the two to confirm the hook sites cost
// nothing when observability is off (the contract is <2% and 0 allocs
// attributable to the hooks).
func BenchmarkServerNilObserver(b *testing.B) {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 50 * hardharvest.Millisecond
	cfg.WarmupDuration = 10 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("BFS")
	opts := hardharvest.SystemOptions(hardharvest.HardHarvestBlock)
	opts.Observer = nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r := hardharvest.RunServer(cfg, opts, work)
		if r.Requests == 0 {
			b.Fatal("no requests simulated")
		}
	}
}

// BenchmarkServerWithTracer measures the enabled-path cost: full span
// recording plus counters and histogram.
func BenchmarkServerWithTracer(b *testing.B) {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 50 * hardharvest.Millisecond
	cfg.WarmupDuration = 10 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("BFS")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		opts := hardharvest.SystemOptions(hardharvest.HardHarvestBlock)
		opts.Observer = hardharvest.NewSpanTracer(opts.Name, 0)
		r := hardharvest.RunServer(cfg, opts, work)
		if r.Requests == 0 {
			b.Fatal("no requests simulated")
		}
	}
}

func mustB(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}
