#!/usr/bin/env bash
# bench.sh — run the performance-pinning benchmarks and write
# BENCH_baseline.json (ns/op + allocs/op per benchmark).
#
# Usage:
#   scripts/bench.sh              # run + rewrite BENCH_baseline.json
#   scripts/bench.sh -check      # run + diff against the baseline:
#                                 - allocs/op: fails if any benchmark
#                                   allocates more than the committed number
#                                   + 10% slack
#                                 - ns/op: fails if a gated benchmark (the
#                                   end-to-end hot paths listed in NS_GATED)
#                                   runs more than BENCH_NS_SLACK (default
#                                   3%) over the baseline; other benchmarks
#                                   are reported only. Set BENCH_SKIP_NS=1 on
#                                   hardware that does not match the pinning
#                                   machine.
#
# ns-gated benchmarks run with -count 5 and are scored on the per-benchmark
# minimum (min-of-5 strips scheduler/turbo noise far better than a mean);
# the remaining benchmarks are allocation pins, which are deterministic, so
# one repeat suffices. Every tripped gate is reported with its measured and
# pinned values.
#
# The baseline is committed so reviewers can see the pinned numbers and CI
# can gate on allocation and hot-path-latency regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
[[ "${1:-}" == "-check" ]] && CHECK=1

# ns-gated: end-to-end hot paths (the server loop carries the always-on
# invariant checker; the sharded path carries the fleet runner).
NS_GATED_RE='BenchmarkServerSimulation$'
OTHER_RE='BenchmarkServerNilObserver|BenchmarkEngineScheduleCall$|BenchmarkEngineScheduleClosure|BenchmarkEngineHeapChurn|BenchmarkShardedVsSerial'
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# -benchtime 5x keeps the suite fast while still amortising setup.
go test -run '^$' -bench "$NS_GATED_RE" -benchtime 5x -benchmem -count 5 ./... 2>&1 | tee "$OUT"
go test -run '^$' -bench "$OTHER_RE" -benchtime 5x -benchmem -count 1 ./... 2>&1 | tee -a "$OUT"

python3 - "$OUT" "$CHECK" <<'EOF'
import json, os, re, sys

out_path, check = sys.argv[1], sys.argv[2] == "1"
rows = {}
pat = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+[\d.]+ B/op\s+(\d+) allocs/op"
)
for line in open(out_path):
    m = pat.match(line.strip())
    if m:
        name, ns, allocs = m.group(1), float(m.group(2)), int(m.group(3))
        row = rows.setdefault(name, {"ns_per_op": ns, "allocs_per_op": allocs})
        # min ns/op across -count repeats; allocs/op must be identical.
        row["ns_per_op"] = min(row["ns_per_op"], ns)
        row["allocs_per_op"] = max(row["allocs_per_op"], allocs)

if not rows:
    sys.exit("bench.sh: no benchmark results parsed")

NS_GATED = {"BenchmarkServerSimulation"}  # must mirror NS_GATED_RE above
NS_SLACK = float(os.environ.get("BENCH_NS_SLACK", "0.03"))
SKIP_NS = os.environ.get("BENCH_SKIP_NS", "") == "1"

if check:
    base = json.load(open("BENCH_baseline.json"))["benchmarks"]
    tripped = []
    for name, got in sorted(rows.items()):
        want = base.get(name)
        if want is None:
            print(f"  new benchmark (not in baseline): {name}")
            continue
        budget = int(want["allocs_per_op"] * 1.10) + 8
        status = "ok"
        if got["allocs_per_op"] > budget:
            status = "REGRESSION"
            tripped.append(
                f"{name}: measured {got['allocs_per_op']} allocs/op vs "
                f"pinned {want['allocs_per_op']} (budget {budget})")
        print(f"  {name}: {got['allocs_per_op']} allocs/op "
              f"(pinned {want['allocs_per_op']}, budget {budget}) {status}")
        if name in NS_GATED and not SKIP_NS:
            ns_budget = want["ns_per_op"] * (1 + NS_SLACK)
            ns_status = "ok"
            if got["ns_per_op"] > ns_budget:
                ns_status = "REGRESSION"
                tripped.append(
                    f"{name}: measured {got['ns_per_op']:.0f} ns/op min-of-5 vs "
                    f"pinned {want['ns_per_op']:.0f} (budget {ns_budget:.0f}, "
                    f"slack {NS_SLACK:.0%})")
            print(f"  {name}: {got['ns_per_op']:.0f} ns/op min-of-5 "
                  f"(pinned {want['ns_per_op']:.0f}, budget {ns_budget:.0f}, "
                  f"slack {NS_SLACK:.0%}) {ns_status}")
    if tripped:
        print("bench.sh: benchmark gate tripped:")
        for line in tripped:
            print(f"  REGRESSION {line}")
        sys.exit(1)
    sys.exit(0)
else:
    doc = {
        "note": "Pinned by scripts/bench.sh; allocs/op is gated for every "
                "benchmark, ns/op is gated (3% slack, min-of-5) for "
                "BenchmarkServerSimulation and informational elsewhere.",
        "benchmarks": dict(sorted(rows.items())),
    }
    with open("BENCH_baseline.json", "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("wrote BENCH_baseline.json")
EOF
