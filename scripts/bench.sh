#!/usr/bin/env bash
# bench.sh — run the performance-pinning benchmarks and write
# BENCH_baseline.json (ns/op + allocs/op per benchmark).
#
# Usage:
#   scripts/bench.sh              # run + rewrite BENCH_baseline.json
#   scripts/bench.sh -check      # run + diff allocs/op against the baseline
#                                 (fails if any benchmark allocates more than
#                                 the committed numbers + 10% slack; ns/op is
#                                 machine-dependent and only reported)
#
# The baseline is committed so reviewers can see the pinned numbers and CI
# can gate on allocation regressions without depending on wall-clock speed.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
[[ "${1:-}" == "-check" ]] && CHECK=1

BENCHES='BenchmarkServerSimulation|BenchmarkServerNilObserver|BenchmarkEngineScheduleCall$|BenchmarkEngineScheduleClosure|BenchmarkEngineHeapChurn'
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# -benchtime 5x keeps the suite fast while still amortising setup; the engine
# micro-benches are deterministic in allocs/op from the first iteration.
go test -run '^$' -bench "$BENCHES" -benchtime 5x -benchmem ./... 2>&1 | tee "$OUT"

python3 - "$OUT" "$CHECK" <<'EOF'
import json, re, sys

out_path, check = sys.argv[1], sys.argv[2] == "1"
rows = {}
pat = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+[\d.]+ B/op\s+(\d+) allocs/op"
)
for line in open(out_path):
    m = pat.match(line.strip())
    if m:
        rows[m.group(1)] = {"ns_per_op": float(m.group(2)), "allocs_per_op": int(m.group(3))}

if not rows:
    sys.exit("bench.sh: no benchmark results parsed")

if check:
    base = json.load(open("BENCH_baseline.json"))["benchmarks"]
    failed = False
    for name, got in sorted(rows.items()):
        want = base.get(name)
        if want is None:
            print(f"  new benchmark (not in baseline): {name}")
            continue
        budget = int(want["allocs_per_op"] * 1.10) + 8
        status = "ok" if got["allocs_per_op"] <= budget else "REGRESSION"
        failed |= status == "REGRESSION"
        print(f"  {name}: {got['allocs_per_op']} allocs/op "
              f"(baseline {want['allocs_per_op']}, budget {budget}) {status}")
    sys.exit(1 if failed else 0)
else:
    doc = {
        "note": "Pinned by scripts/bench.sh; allocs/op is the gated number, "
                "ns/op is informational (machine-dependent).",
        "benchmarks": dict(sorted(rows.items())),
    }
    with open("BENCH_baseline.json", "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("wrote BENCH_baseline.json")
EOF
