#!/usr/bin/env bash
# coverage.sh — per-package statement coverage summary with enforced floors.
#
#   scripts/coverage.sh          # print the summary table
#   scripts/coverage.sh -check   # additionally fail if a floored package
#                                # dropped below its pinned minimum
#
# Floors pin the packages that carry the simulator's correctness burden.
# They are set ~1 point under the measured value at the time of pinning:
# tight enough that deleting a test file or landing a large untested
# subsystem fails CI, loose enough that a small refactor does not.
set -euo pipefail
cd "$(dirname "$0")/.."

# package-path floor-percent
FLOORS="
internal/cluster 93.0
internal/sim 91.0
internal/serve 87.0
internal/scenario 85.0
internal/stats 90.0
internal/route 85.0
internal/graph 85.0
"

check=false
[ "${1:-}" = "-check" ] && check=true

out=$(go test -cover ./... 2>&1 | grep -E '^ok' || true)
if [ -z "$out" ]; then
  echo "coverage.sh: go test -cover produced no package results" >&2
  exit 1
fi

printf '%-40s %s\n' "package" "coverage"
fail=0
while IFS= read -r line; do
  pkg=$(echo "$line" | awk '{print $2}' | sed 's,^hardharvest/,,')
  cov=$(echo "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+' || true)
  [ -z "$cov" ] && cov="0.0"
  floor=$(echo "$FLOORS" | awk -v p="$pkg" '$1 == p {print $2}')
  note=""
  if [ -n "$floor" ]; then
    note="(floor ${floor}%)"
    if $check && awk -v c="$cov" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
      note="(floor ${floor}% — FAIL)"
      fail=1
    fi
  fi
  printf '%-40s %6s%% %s\n' "$pkg" "$cov" "$note"
done <<< "$out"

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "coverage.sh: a floored package dropped below its pinned minimum" >&2
  exit 1
fi
