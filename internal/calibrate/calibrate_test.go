package calibrate

import (
	"testing"

	"hardharvest/internal/cluster"
)

// TestCalibrationMatchesClusterConstants closes the modeling loop: the
// execution factors the cluster DES charges must be consistent with what
// the detailed cache models measure.
func TestCalibrationMatchesClusterConstants(t *testing.T) {
	c := Run(1)
	cfg := cluster.DefaultConfig()
	t.Logf("measured: cold=%.3f reclaim=%.3f repl=%.3f | configured: cold=%.3f reclaim=%.3f repl=%.3f",
		c.ColdFactor, c.PartReclaimFactor, c.ReplWarmFactor,
		cfg.ColdFactor, cfg.PartReclaimFactor, cfg.ReplWarmFactor)

	// Cold restart after a full flush: the paper measures ~1.2x; the DES
	// charges cfg.ColdFactor. The measured value must be materially above
	// 1 and in the same band.
	if c.ColdFactor < 1.05 || c.ColdFactor > 1.6 {
		t.Errorf("cold factor %.3f outside the plausible band", c.ColdFactor)
	}
	// A partitioned reclaim restarts warmer than a full flush.
	if c.PartReclaimFactor >= c.ColdFactor {
		t.Errorf("partitioned reclaim %.3f not warmer than full flush %.3f",
			c.PartReclaimFactor, c.ColdFactor)
	}
	if c.PartReclaimFactor < 1.0 {
		t.Errorf("partitioned reclaim %.3f below warm baseline", c.PartReclaimFactor)
	}
	// The replacement policy improves (or at worst matches) steady state.
	if c.ReplWarmFactor > 1.02 {
		t.Errorf("replacement policy factor %.3f should not degrade steady state", c.ReplWarmFactor)
	}
	// The configured constants sit within 0.15 of the measured ones.
	if d := c.ColdFactor - cfg.ColdFactor; d < -0.15 || d > 0.25 {
		t.Errorf("configured cold factor %.2f far from measured %.3f", cfg.ColdFactor, c.ColdFactor)
	}
	if d := c.PartReclaimFactor - cfg.PartReclaimFactor; d < -0.15 || d > 0.15 {
		t.Errorf("configured reclaim factor %.2f far from measured %.3f", cfg.PartReclaimFactor, c.PartReclaimFactor)
	}
}

func TestCalibrationDeterminism(t *testing.T) {
	a, b := Run(5), Run(5)
	if a != b {
		t.Fatalf("nondeterministic calibration: %+v vs %+v", a, b)
	}
}
