// Package calibrate derives the cluster simulator's execution-time factors
// from the detailed cache models in internal/mem, closing the loop between
// the two modeling layers: the DES charges CPU-burst multipliers for cache
// warmth (cold restart after a full flush, partially-cold restart after a
// partitioned reclaim, steady-state benefit of the HardHarvest replacement
// policy), and this package measures those multipliers by running address
// streams through the real set-associative hierarchy.
package calibrate

import (
	"hardharvest/internal/mem"
	"hardharvest/internal/stats"
)

// Calibration is the measured set of execution factors.
type Calibration struct {
	// ColdFactor is the execution multiplier right after a full cache/TLB
	// flush (the paper measures ~1.2x, §3).
	ColdFactor float64
	// PartReclaimFactor is the multiplier right after a partitioned
	// reclaim: the non-harvest region is warm, private state is cold.
	PartReclaimFactor float64
	// ReplWarmFactor is the steady-state multiplier of the HardHarvest
	// replacement policy relative to LRU (< 1: it improves hit rates even
	// without harvesting, §6.3-6.4).
	ReplWarmFactor float64
}

// amatOver runs a trace through a fresh hierarchy and reports the mean
// access latency in cycles over the window [skip, skip+measure) accesses.
func amatOver(h *mem.Hierarchy, tr mem.Trace, skip, measure int) float64 {
	var total float64
	n, seen := 0, 0
	for _, e := range tr {
		switch e.Kind {
		case mem.EvAccess:
			lat := h.AccessData(e.Addr, e.Shared, false)
			seen++
			if seen <= skip {
				continue
			}
			total += float64(lat.ToCycles())
			n++
			if n >= measure {
				return total / float64(n)
			}
		case mem.EvFlushHarvest:
			h.FlushHarvestRegion()
		case mem.EvFlushAll:
			h.FlushAll()
		case mem.EvSetRegion:
			h.SetRegion(e.Region)
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// execFactor converts an AMAT ratio into an execution-time multiplier with
// a fixed compute component per access.
func execFactor(amat, baseAMAT float64) float64 {
	const compute = 8
	return (compute + amat) / (compute + baseAMAT)
}

// Run performs the three calibrations at the given seed.
func Run(seed uint64) Calibration {
	sp := mem.DefaultStreamParams()
	gen := func() mem.Trace {
		g := mem.NewStreamGen(sp, stats.NewRNG(seed))
		var tr mem.Trace
		for i := 0; i < 8; i++ {
			g.AppendInvocation(&tr)
		}
		return tr
	}

	var c Calibration

	// Steady-state warm AMAT with LRU (the baseline the factors are
	// relative to).
	lruParams := mem.DefaultHierarchyParams()
	lruParams.Policy = mem.PolicyLRU
	warmLRU := amatOver(mem.NewHierarchy(lruParams), gen(), 40000, 60000)

	// ColdFactor: flush everything mid-trace and measure the first ~25K
	// accesses afterwards (roughly the paper's 100 us warm-up window of
	// CPU time).
	{
		g := mem.NewStreamGen(sp, stats.NewRNG(seed))
		var tr mem.Trace
		for i := 0; i < 3; i++ {
			g.AppendInvocation(&tr)
		}
		tr.AddFlushAll()
		mark := tr.Accesses()
		for i := 0; i < 3; i++ {
			g.AppendInvocation(&tr)
		}
		cold := amatOver(mem.NewHierarchy(lruParams), tr, mark, 25000)
		c.ColdFactor = execFactor(cold, warmLRU)
	}

	// PartReclaimFactor: harvest episode then reclaim; only the harvest
	// region was flushed, the non-harvest region kept the shared state.
	{
		hhParams := mem.DefaultHierarchyParams()
		g := mem.NewStreamGen(sp, stats.NewRNG(seed))
		var tr mem.Trace
		for i := 0; i < 3; i++ {
			g.AppendInvocation(&tr)
		}
		g.AppendHarvestEpisode(&tr)
		mark := tr.Accesses()
		for i := 0; i < 3; i++ {
			g.AppendInvocation(&tr)
		}
		warmHH := amatOver(mem.NewHierarchy(hhParams), gen(), 40000, 60000)
		rec := amatOver(mem.NewHierarchy(hhParams), tr, mark, 25000)
		c.PartReclaimFactor = execFactor(rec, warmHH)
	}

	// ReplWarmFactor: HardHarvest policy steady state vs LRU steady state.
	{
		hhParams := mem.DefaultHierarchyParams()
		warmHH := amatOver(mem.NewHierarchy(hhParams), gen(), 40000, 60000)
		c.ReplWarmFactor = execFactor(warmHH, warmLRU)
	}
	return c
}
