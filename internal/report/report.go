// Package report renders experiment tables into Markdown documents (the
// EXPERIMENTS.md format): one section per artifact with the regenerated
// rows in a code block plus generation timings.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hardharvest/internal/experiments"
)

// Options configure a report run.
type Options struct {
	// Title heads the document.
	Title string
	// ScaleName labels the scale used.
	ScaleName string
	// Only restricts the report to the listed experiment ids (nil = all).
	Only []string
	// Clock supplies wall-clock timing; nil uses time.Now (tests inject a
	// fake for deterministic output).
	Clock func() time.Time
	// Appendix, when non-nil, is called after each section with the
	// experiment id; a non-empty return is appended verbatim (callers use
	// it to attach observability summaries such as harvest-event counters).
	Appendix func(expID string) string
}

// Generate runs the selected experiments at the given scale and writes the
// Markdown report to w. It returns the number of sections written.
func Generate(w io.Writer, sc experiments.Scale, opts Options) (int, error) {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	title := opts.Title
	if title == "" {
		title = "HardHarvest reproduction report"
	}
	if _, err := fmt.Fprintf(w, "# %s\n\n", title); err != nil {
		return 0, err
	}
	if _, err := fmt.Fprintf(w,
		"Scale: %s (measure %v per server, %d servers for throughput sweeps, seed %d).\n\n",
		opts.ScaleName, sc.Measure, sc.Servers, sc.Seed); err != nil {
		return 0, err
	}
	want := map[string]bool{}
	for _, id := range opts.Only {
		want[id] = true
	}
	n := 0
	for _, r := range experiments.Runners() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := clock()
		tbl := r.Run(sc)
		elapsed := clock().Sub(start)
		if _, err := fmt.Fprintf(w, "## %s — %s\n\n```\n%s```\n\n_(generated in %.1fs)_\n\n",
			tbl.ID, tbl.Title, tbl.String(), elapsed.Seconds()); err != nil {
			return n, err
		}
		if opts.Appendix != nil {
			if extra := opts.Appendix(r.ID); extra != "" {
				if _, err := fmt.Fprintf(w, "%s\n\n", strings.TrimRight(extra, "\n")); err != nil {
					return n, err
				}
			}
		}
		n++
	}
	return n, nil
}

// Validate sanity-checks a rendered report: every requested section is
// present and fenced blocks are balanced.
func Validate(doc string, ids []string) error {
	for _, id := range ids {
		if !strings.Contains(doc, "## "+id+" — ") {
			return fmt.Errorf("report: missing section %q", id)
		}
	}
	if strings.Count(doc, "```")%2 != 0 {
		return fmt.Errorf("report: unbalanced code fences")
	}
	return nil
}
