package report

import (
	"strings"
	"testing"
	"time"

	"hardharvest/internal/experiments"
	"hardharvest/internal/sim"
)

func fastScale() experiments.Scale {
	return experiments.Scale{
		Measure: 100 * sim.Millisecond,
		Warmup:  20 * sim.Millisecond,
		Servers: 1,
		Seed:    1,
	}
}

func TestGenerateSubset(t *testing.T) {
	var b strings.Builder
	fake := time.Unix(0, 0)
	clock := func() time.Time {
		fake = fake.Add(time.Second)
		return fake
	}
	ids := []string{"storage", "table1", "fig2"}
	n, err := Generate(&b, fastScale(), Options{
		Title: "test report", ScaleName: "tiny", Only: ids, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("sections = %d", n)
	}
	doc := b.String()
	if !strings.HasPrefix(doc, "# test report\n") {
		t.Fatalf("missing title: %q", doc[:40])
	}
	if err := Validate(doc, ids); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "Scale: tiny") {
		t.Fatal("missing scale line")
	}
	if !strings.Contains(doc, "_(generated in 1.0s)_") {
		t.Fatal("missing deterministic timing from fake clock")
	}
}

func TestGenerateAppendix(t *testing.T) {
	var b strings.Builder
	ids := []string{"storage", "table1"}
	var seen []string
	n, err := Generate(&b, fastScale(), Options{
		Only: ids,
		Appendix: func(expID string) string {
			seen = append(seen, expID)
			if expID == "table1" {
				return "" // empty appendix adds nothing
			}
			return "counters for " + expID + "\n"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("sections = %d", n)
	}
	if len(seen) != 2 || (seen[0] != "storage" && seen[1] != "storage") {
		t.Fatalf("appendix calls = %v", seen)
	}
	doc := b.String()
	if !strings.Contains(doc, "counters for storage\n\n") {
		t.Fatal("appendix text missing")
	}
	if strings.Contains(doc, "counters for table1") {
		t.Fatal("empty appendix must add nothing")
	}
	if err := Validate(doc, ids); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	if err := Validate("# x\n", []string{"storage"}); err == nil {
		t.Fatal("missing section should fail")
	}
	if err := Validate("## storage — s\n```\nunclosed", []string{"storage"}); err == nil {
		t.Fatal("unbalanced fences should fail")
	}
	if err := Validate("## storage — s\n```\nok\n```\n", []string{"storage"}); err != nil {
		t.Fatal(err)
	}
}
