// Package faults defines deterministic, seed-driven fault plans for the
// cluster simulator: server crash/restart, per-core degradation and
// offlining, I/O straggler multipliers, harvest-preemption storms, and
// correlated burst faults. A Plan is either loaded from JSON (hhsim
// -faults plan.json) or built programmatically; Expand turns it into a
// sorted, fully concrete event schedule for one server, so the simulator
// can pre-register every injection through its allocation-free typed
// event path. Expansion is a pure function of (plan, seed, cores,
// horizon): the same inputs always produce the same schedule.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"hardharvest/internal/jsonx"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// CoreDegrade multiplies a core's execution time by Factor for Dur
	// (thermal throttling, co-located interference, faulty DIMM channel).
	CoreDegrade Kind = iota
	// CoreOffline removes a core for Dur: its running work is interrupted
	// and requeued, and the core accepts no dispatches until the fault ends.
	CoreOffline
	// IOStraggler multiplies the duration of blocking I/O calls issued
	// while the fault is active by Factor (slow backend, packet loss).
	IOStraggler
	// PreemptStorm fires reclamation preempts at up to Count cores that are
	// currently running loaned harvest work (a burst of Primary VM demand).
	PreemptStorm
	// ServerCrash takes every core offline for Dur (fail-stop restart with
	// durable queues: in-flight work is requeued, nothing is lost).
	ServerCrash
)

var kindNames = [...]string{
	CoreDegrade:  "core_degrade",
	CoreOffline:  "core_offline",
	IOStraggler:  "io_straggler",
	PreemptStorm: "preempt_storm",
	ServerCrash:  "crash",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind resolves a fault-plan kind name as used in scripted events.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q (want one of %s)", s, strings.Join(kindNames[:], ", "))
}

// Event is one concrete, expanded injection.
type Event struct {
	At   sim.Time
	Dur  sim.Duration
	Kind Kind
	// Core is the victim core index (-1 for server-wide kinds).
	Core int
	// Factor is the degradation/straggler multiplier.
	Factor float64
	// Count is the storm width (PreemptStorm).
	Count int
}

// Spec parameterizes one random fault generator. Zero-valued optional
// fields take the kind's defaults at expansion time.
type Spec struct {
	// RatePerSec is the Poisson rate of this fault class, scaled by the
	// plan's Intensity.
	RatePerSec float64 `json:"rate_per_s"`
	// DurationMS is the mean fault duration in simulated milliseconds.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Factor is the execution/I/O multiplier (CoreDegrade, IOStraggler).
	Factor float64 `json:"factor,omitempty"`
	// Count is the number of victims (PreemptStorm width, Burst size).
	Count int `json:"count,omitempty"`
	// SpanMS staggers a Burst's correlated core-offline events over this
	// many milliseconds.
	SpanMS float64 `json:"span_ms,omitempty"`
	// Jitter in [0,1) spreads each duration uniformly by ±Jitter.
	Jitter float64 `json:"jitter,omitempty"`
}

// ScriptedEvent is one hand-placed injection in a JSON plan.
type ScriptedEvent struct {
	AtMS       float64 `json:"at_ms"`
	Kind       string  `json:"kind"`
	Core       int     `json:"core,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	Factor     float64 `json:"factor,omitempty"`
	Count      int     `json:"count,omitempty"`
}

// Plan is a complete fault scenario: random generators per fault class
// plus scripted one-off events. The zero Plan injects nothing.
type Plan struct {
	// Seed decorrelates the plan's randomness; it is mixed with the
	// server's own seed at expansion time.
	Seed uint64 `json:"seed,omitempty"`
	// Intensity scales every generator rate; 0 means 1 (the faultsweep
	// experiment sweeps it).
	Intensity float64 `json:"intensity,omitempty"`

	CoreDegrade  *Spec `json:"core_degrade,omitempty"`
	CoreOffline  *Spec `json:"core_offline,omitempty"`
	IOStraggler  *Spec `json:"io_straggler,omitempty"`
	PreemptStorm *Spec `json:"preempt_storm,omitempty"`
	Crash        *Spec `json:"crash,omitempty"`
	// Burst emits correlated groups: each burst takes Count distinct cores
	// offline within SpanMS (correlated rack/PSU-style failures).
	Burst *Spec `json:"burst,omitempty"`

	Events []ScriptedEvent `json:"events,omitempty"`
}

// maxRatePerSec bounds generator rates so a malformed plan cannot expand
// into an unbounded event schedule.
const maxRatePerSec = 20000

// Parse decodes and validates a JSON plan. Unknown fields, type
// mismatches, and semantic errors are reported with field- or
// offset-level context so a bad plan fails fast, before any simulation.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("fault plan: %s", describeJSONError(data, err))
	}
	// A plan is exactly one JSON document: content after it is a malformed
	// file (e.g. two concatenated plans), not something to silently ignore.
	if dec.More() {
		line, col := jsonx.LineCol(data, dec.InputOffset())
		return nil, fmt.Errorf("fault plan: line %d, column %d: trailing data after the plan document", line, col)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault plan: %w", err)
	}
	return p, nil
}

// Load reads and parses a JSON plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault plan: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// describeJSONError augments a decode error with line:column position when
// the error carries a byte offset. It delegates to the shared ingestion
// helper so fault plans, action logs, and scenario files all report
// positions identically.
func describeJSONError(data []byte, err error) string {
	return jsonx.DescribeError(data, err)
}

// Validate checks every field and returns the first problem with its
// field path (e.g. "core_degrade.factor: must be >= 1").
func (p *Plan) Validate() error {
	if p.Intensity < 0 {
		return fmt.Errorf("intensity: must be non-negative, got %g", p.Intensity)
	}
	type fieldSpec struct {
		name        string
		spec        *Spec
		needsDur    bool
		needsFactor bool
		needsCount  bool
	}
	for _, fs := range []fieldSpec{
		{"core_degrade", p.CoreDegrade, true, true, false},
		{"core_offline", p.CoreOffline, true, false, false},
		{"io_straggler", p.IOStraggler, true, true, false},
		{"preempt_storm", p.PreemptStorm, false, false, true},
		{"crash", p.Crash, true, false, false},
		{"burst", p.Burst, true, false, true},
	} {
		if fs.spec == nil {
			continue
		}
		s := fs.spec
		switch {
		case s.RatePerSec <= 0:
			return fmt.Errorf("%s.rate_per_s: must be positive, got %g", fs.name, s.RatePerSec)
		case s.RatePerSec > maxRatePerSec:
			return fmt.Errorf("%s.rate_per_s: must be <= %d, got %g", fs.name, maxRatePerSec, s.RatePerSec)
		case fs.needsDur && s.DurationMS <= 0:
			return fmt.Errorf("%s.duration_ms: must be positive, got %g", fs.name, s.DurationMS)
		case fs.needsFactor && s.Factor < 1:
			return fmt.Errorf("%s.factor: must be >= 1, got %g", fs.name, s.Factor)
		case fs.needsCount && s.Count < 1:
			return fmt.Errorf("%s.count: must be >= 1, got %d", fs.name, s.Count)
		case s.SpanMS < 0:
			return fmt.Errorf("%s.span_ms: must be non-negative, got %g", fs.name, s.SpanMS)
		case s.Jitter < 0 || s.Jitter >= 1:
			return fmt.Errorf("%s.jitter: must be in [0,1), got %g", fs.name, s.Jitter)
		}
	}
	for i, ev := range p.Events {
		k, err := ParseKind(ev.Kind)
		if err != nil {
			return fmt.Errorf("events[%d].kind: %w", i, err)
		}
		if ev.AtMS < 0 {
			return fmt.Errorf("events[%d].at_ms: must be non-negative, got %g", i, ev.AtMS)
		}
		switch k {
		case CoreDegrade, CoreOffline, IOStraggler, ServerCrash:
			if ev.DurationMS <= 0 {
				return fmt.Errorf("events[%d].duration_ms: must be positive for %s, got %g", i, k, ev.DurationMS)
			}
		}
		switch k {
		case CoreDegrade, IOStraggler:
			if ev.Factor < 1 {
				return fmt.Errorf("events[%d].factor: must be >= 1 for %s, got %g", i, k, ev.Factor)
			}
		}
		if (k == CoreDegrade || k == CoreOffline) && ev.Core < 0 {
			return fmt.Errorf("events[%d].core: must be non-negative for %s, got %d", i, k, ev.Core)
		}
	}
	return nil
}

// Scaled returns a copy of the plan with its intensity multiplied by x
// (an unset intensity counts as 1). Spec pointers are shared; Specs are
// read-only after validation.
func (p *Plan) Scaled(x float64) *Plan {
	q := *p
	base := p.Intensity
	if base <= 0 {
		base = 1
	}
	q.Intensity = base * x
	return &q
}

func ms(v float64) sim.Duration { return sim.Duration(v * float64(sim.Millisecond)) }

// Expand turns the plan into the concrete, time-sorted injection schedule
// for one server: seed is the server's own seed (mixed with the plan's),
// cores is the server core count, horizon bounds the schedule. The result
// is deterministic in its inputs.
func (p *Plan) Expand(seed uint64, cores int, horizon sim.Duration) []Event {
	if p == nil || cores <= 0 || horizon <= 0 {
		return nil
	}
	intensity := p.Intensity
	if intensity <= 0 {
		intensity = 1
	}
	root := stats.NewRNG(p.Seed ^ (seed * 0x9E3779B97F4A7C15))
	var evs []Event

	jitterDur := func(rng *stats.RNG, s *Spec) sim.Duration {
		d := ms(s.DurationMS)
		if s.Jitter > 0 {
			d = sim.Duration(float64(d) * (1 + s.Jitter*(2*rng.Float64()-1)))
		}
		if d < sim.Microsecond {
			d = sim.Microsecond
		}
		return d
	}
	// Each generator draws from its own split stream, so adding or removing
	// one fault class never perturbs the others' schedules.
	gen := func(label uint64, spec *Spec, emit func(rng *stats.RNG, at sim.Time, s *Spec)) {
		if spec == nil || spec.RatePerSec <= 0 {
			return
		}
		rng := root.Split(label)
		meanGap := float64(sim.Second) / (spec.RatePerSec * intensity)
		t := sim.Time(0)
		for {
			t = t.Add(sim.Duration(rng.Exp(meanGap)))
			if t >= sim.Time(horizon) {
				return
			}
			emit(rng, t, spec)
		}
	}
	gen(1, p.CoreDegrade, func(rng *stats.RNG, at sim.Time, s *Spec) {
		evs = append(evs, Event{At: at, Kind: CoreDegrade, Core: rng.Intn(cores),
			Factor: s.Factor, Dur: jitterDur(rng, s)})
	})
	gen(2, p.CoreOffline, func(rng *stats.RNG, at sim.Time, s *Spec) {
		evs = append(evs, Event{At: at, Kind: CoreOffline, Core: rng.Intn(cores),
			Dur: jitterDur(rng, s)})
	})
	gen(3, p.IOStraggler, func(rng *stats.RNG, at sim.Time, s *Spec) {
		evs = append(evs, Event{At: at, Kind: IOStraggler, Core: -1,
			Factor: s.Factor, Dur: jitterDur(rng, s)})
	})
	gen(4, p.PreemptStorm, func(rng *stats.RNG, at sim.Time, s *Spec) {
		evs = append(evs, Event{At: at, Kind: PreemptStorm, Core: -1, Count: s.Count})
	})
	gen(5, p.Crash, func(rng *stats.RNG, at sim.Time, s *Spec) {
		evs = append(evs, Event{At: at, Kind: ServerCrash, Core: -1, Dur: jitterDur(rng, s)})
	})
	gen(6, p.Burst, func(rng *stats.RNG, at sim.Time, s *Spec) {
		n := s.Count
		if n > cores {
			n = cores
		}
		victims := rng.Perm(cores)[:n]
		span := ms(s.SpanMS)
		for _, core := range victims {
			off := sim.Duration(0)
			if span > 0 {
				off = sim.Duration(rng.Float64() * float64(span))
			}
			evs = append(evs, Event{At: at.Add(off), Kind: CoreOffline, Core: core,
				Dur: jitterDur(rng, s)})
		}
	})
	for _, se := range p.Events {
		k, err := ParseKind(se.Kind)
		if err != nil {
			continue // Validate rejects these; tolerate hand-built plans
		}
		at := sim.Time(ms(se.AtMS))
		if at >= sim.Time(horizon) {
			continue
		}
		core := se.Core
		if k == IOStraggler || k == PreemptStorm || k == ServerCrash {
			core = -1
		} else if core >= cores {
			core %= cores
		}
		count := se.Count
		if k == PreemptStorm && count < 1 {
			count = 1
		}
		evs = append(evs, Event{At: at, Kind: k, Core: core, Dur: ms(se.DurationMS),
			Factor: se.Factor, Count: count})
	}
	// A full-field tiebreak keeps the order independent of generator
	// emission order for coincident events.
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Count < b.Count
	})
	return evs
}

// DefaultPlan returns a moderate mixed-fault scenario at intensity 1: a
// few crashes per second of simulated time, steady per-core degradation
// and offlining, I/O stragglers, preemption storms, and occasional
// correlated bursts. The faultsweep experiment scales it.
func DefaultPlan() *Plan {
	return &Plan{
		Seed:         0x5EED,
		Intensity:    1,
		CoreOffline:  &Spec{RatePerSec: 40, DurationMS: 2, Jitter: 0.5},
		CoreDegrade:  &Spec{RatePerSec: 80, DurationMS: 4, Factor: 5, Jitter: 0.5},
		IOStraggler:  &Spec{RatePerSec: 50, DurationMS: 2, Factor: 6, Jitter: 0.5},
		PreemptStorm: &Spec{RatePerSec: 15, Count: 4},
		Crash:        &Spec{RatePerSec: 1.5, DurationMS: 3, Jitter: 0.3},
		Burst:        &Spec{RatePerSec: 3, Count: 6, SpanMS: 0.5, DurationMS: 2, Jitter: 0.3},
	}
}

// RandomPlan draws a structurally valid random plan (for fuzzing): a
// random subset of generators with bounded parameters. The result always
// passes Validate.
func RandomPlan(rng *stats.RNG) *Plan {
	p := &Plan{Seed: rng.Uint64(), Intensity: 0.25 + 2*rng.Float64()}
	if rng.Bool(0.7) {
		p.CoreOffline = &Spec{RatePerSec: 1 + rng.Float64()*150, DurationMS: 0.05 + rng.Float64()*6, Jitter: rng.Float64() * 0.9}
	}
	if rng.Bool(0.7) {
		p.CoreDegrade = &Spec{RatePerSec: 1 + rng.Float64()*200, DurationMS: 0.05 + rng.Float64()*4, Factor: 1 + rng.Float64()*9, Jitter: rng.Float64() * 0.9}
	}
	if rng.Bool(0.6) {
		p.IOStraggler = &Spec{RatePerSec: 1 + rng.Float64()*100, DurationMS: 0.05 + rng.Float64()*3, Factor: 1 + rng.Float64()*7}
	}
	if rng.Bool(0.6) {
		p.PreemptStorm = &Spec{RatePerSec: 1 + rng.Float64()*60, Count: 1 + rng.Intn(8)}
	}
	if rng.Bool(0.4) {
		p.Crash = &Spec{RatePerSec: 0.5 + rng.Float64()*4, DurationMS: 0.2 + rng.Float64()*5, Jitter: rng.Float64() * 0.5}
	}
	if rng.Bool(0.4) {
		p.Burst = &Spec{RatePerSec: 0.5 + rng.Float64()*8, Count: 1 + rng.Intn(10), SpanMS: rng.Float64(), DurationMS: 0.1 + rng.Float64()*4}
	}
	return p
}
