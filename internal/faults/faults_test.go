package faults

import (
	"reflect"
	"strings"
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestParseValidPlan(t *testing.T) {
	data := []byte(`{
		"seed": 7,
		"intensity": 1.5,
		"core_offline": {"rate_per_s": 40, "duration_ms": 2, "jitter": 0.5},
		"io_straggler": {"rate_per_s": 10, "duration_ms": 1, "factor": 4},
		"events": [{"at_ms": 5, "kind": "crash", "duration_ms": 3}]
	}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 7 || p.Intensity != 1.5 {
		t.Fatalf("header fields wrong: %+v", p)
	}
	if p.CoreOffline == nil || p.CoreOffline.RatePerSec != 40 {
		t.Fatalf("core_offline wrong: %+v", p.CoreOffline)
	}
	if len(p.Events) != 1 || p.Events[0].Kind != "crash" {
		t.Fatalf("events wrong: %+v", p.Events)
	}
}

func TestParseUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"core_offline": {"rate_per_s": 1, "duration_ms": 1, "bogus": 2}}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want unknown-field error mentioning bogus, got %v", err)
	}
}

func TestParseSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse([]byte("{\n  \"intensity\": oops\n}"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-positioned syntax error, got %v", err)
	}
}

// TestParseErrorLineColumnExact pins the exact line and column reported
// for decode errors on multi-line plan documents. The decoder reads
// straight from the input bytes (bytes.NewReader — no copy), so the
// offsets it reports must land precisely on the offending token of the
// document the user wrote.
func TestParseErrorLineColumnExact(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			name: "syntax error on line 3",
			doc:  "{\n  \"intensity\": 1,\n  \"crash\": nope\n}",
			want: "line 3, column 14",
		},
		{
			name: "type error mid-document",
			doc: "{\n  \"core_offline\": {\n    \"rate_per_s\": \"fast\",\n" +
				"    \"duration_ms\": 1\n  }\n}",
			want: "line 3, column 25",
		},
		{
			name: "type error after blank lines",
			doc:  "{\n\n\n  \"events\": {}\n}",
			want: "line 4, column 14",
		},
		{
			name: "trailing garbage",
			doc:  "{\n  \"intensity\": 1\n}\ntrailing",
			want: "line 4, column 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("plan unexpectedly parsed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not pin position %q", err, tc.want)
			}
		})
	}
}

func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"negative intensity", Plan{Intensity: -1}, "intensity"},
		{"zero rate", Plan{CoreOffline: &Spec{RatePerSec: 0, DurationMS: 1}}, "core_offline.rate_per_s"},
		{"huge rate", Plan{Crash: &Spec{RatePerSec: 1e6, DurationMS: 1}}, "crash.rate_per_s"},
		{"missing duration", Plan{CoreOffline: &Spec{RatePerSec: 1}}, "core_offline.duration_ms"},
		{"bad factor", Plan{CoreDegrade: &Spec{RatePerSec: 1, DurationMS: 1, Factor: 0.5}}, "core_degrade.factor"},
		{"bad count", Plan{PreemptStorm: &Spec{RatePerSec: 1}}, "preempt_storm.count"},
		{"bad jitter", Plan{IOStraggler: &Spec{RatePerSec: 1, DurationMS: 1, Factor: 2, Jitter: 1}}, "io_straggler.jitter"},
		{"bad event kind", Plan{Events: []ScriptedEvent{{Kind: "meteor"}}}, "events[0].kind"},
		{"event missing dur", Plan{Events: []ScriptedEvent{{Kind: "core_offline"}}}, "events[0].duration_ms"},
		{"event bad factor", Plan{Events: []ScriptedEvent{{Kind: "io_straggler", DurationMS: 1, Factor: 0.2}}}, "events[0].factor"},
		{"event negative time", Plan{Events: []ScriptedEvent{{Kind: "preempt_storm", AtMS: -1}}}, "events[0].at_ms"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("empty plan should validate, got %v", err)
	}
	if err := DefaultPlan().Validate(); err != nil {
		t.Errorf("DefaultPlan should validate, got %v", err)
	}
}

func TestExpandDeterministicSortedBounded(t *testing.T) {
	p := DefaultPlan()
	horizon := 200 * sim.Millisecond
	a := p.Expand(42, 36, horizon)
	b := p.Expand(42, 36, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand not deterministic for identical inputs")
	}
	if len(a) == 0 {
		t.Fatal("DefaultPlan expanded to zero events over 200ms")
	}
	c := p.Expand(43, 36, horizon)
	if reflect.DeepEqual(a, c) {
		t.Fatal("Expand should differ across server seeds")
	}
	for i, ev := range a {
		if ev.At >= sim.Time(horizon) {
			t.Fatalf("event %d at %v beyond horizon", i, ev.At)
		}
		if ev.Core >= 36 {
			t.Fatalf("event %d core %d out of range", i, ev.Core)
		}
		switch ev.Kind {
		case CoreDegrade, CoreOffline:
			if ev.Core < 0 {
				t.Fatalf("event %d (%v) needs a core", i, ev.Kind)
			}
			if ev.Dur <= 0 {
				t.Fatalf("event %d (%v) needs a duration", i, ev.Kind)
			}
		case IOStraggler, PreemptStorm, ServerCrash:
			if ev.Core != -1 {
				t.Fatalf("event %d (%v) should be server-wide, core=%d", i, ev.Kind, ev.Core)
			}
		}
		if i > 0 && a[i-1].At > ev.At {
			t.Fatalf("events not sorted at %d", i)
		}
	}
}

func TestExpandIntensityScalesRate(t *testing.T) {
	p := &Plan{CoreOffline: &Spec{RatePerSec: 100, DurationMS: 1}}
	horizon := 500 * sim.Millisecond
	base := len(p.Expand(1, 8, horizon))
	hot := len(p.Scaled(4).Expand(1, 8, horizon))
	if hot < base*2 {
		t.Fatalf("intensity 4x should at least double events: base=%d hot=%d", base, hot)
	}
}

func TestScaled(t *testing.T) {
	p := &Plan{Intensity: 2}
	if got := p.Scaled(3).Intensity; got != 6 {
		t.Fatalf("Scaled: want 6, got %g", got)
	}
	q := &Plan{} // unset intensity counts as 1
	if got := q.Scaled(0.5).Intensity; got != 0.5 {
		t.Fatalf("Scaled unset: want 0.5, got %g", got)
	}
	if p.Intensity != 2 {
		t.Fatal("Scaled must not mutate the receiver")
	}
}

func TestExpandNilAndEmpty(t *testing.T) {
	var p *Plan
	if got := p.Expand(1, 8, sim.Second); got != nil {
		t.Fatalf("nil plan: want nil, got %d events", len(got))
	}
	if got := (&Plan{}).Expand(1, 8, sim.Second); len(got) != 0 {
		t.Fatalf("empty plan: want no events, got %d", len(got))
	}
}

func TestRandomPlanAlwaysValid(t *testing.T) {
	rng := stats.NewRNG(99)
	for i := 0; i < 200; i++ {
		p := RandomPlan(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("RandomPlan #%d invalid: %v\n%+v", i, err, p)
		}
		p.Expand(uint64(i), 8, 50*sim.Millisecond)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := CoreDegrade; k <= ServerCrash; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("want error for unknown kind")
	}
}
