package mem_test

import (
	"fmt"

	"hardharvest/internal/mem"
	"hardharvest/internal/sim"
)

// Example shows Algorithm 1's placement and the asymmetric flush: shared
// entries go to non-harvest ways and survive a core loan; private entries
// go to harvest ways and are invalidated.
func Example() {
	c := mem.New(mem.Config{
		Name: "L1D", Sets: 4, Ways: 4, LineBytes: 64,
		HitLatency: sim.Cycles(5), MissPenalty: sim.Cycles(20),
		Policy: mem.PolicyHardHarvest, HarvestWays: 2, EvictionCandidateFrac: 0.75,
	})
	addr := func(set, tag int) uint64 { return uint64(tag*4+set) * 64 }

	c.Access(addr(0, 1), true)  // shared: code/read-only data
	c.Access(addr(0, 2), false) // private: per-invocation data
	nonHarv, harv := c.SharedEntries()
	fmt.Printf("shared entries: %d non-harvest, %d harvest\n", nonHarv, harv)

	// The core is loaned: only the harvest region is flushed.
	n := c.FlushHarvestRegion()
	fmt.Printf("loan flush invalidated %d entries\n", n)
	fmt.Printf("shared line survived: %v, private line survived: %v\n",
		c.Probe(addr(0, 1)), c.Probe(addr(0, 2)))

	// Output:
	// shared entries: 1 non-harvest, 0 harvest
	// loan flush invalidated 1 entries
	// shared line survived: true, private line survived: false
}
