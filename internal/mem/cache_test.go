package mem

import (
	"testing"

	"hardharvest/internal/sim"
)

func smallConfig(policy PolicyKind) Config {
	return Config{
		Name: "test", Sets: 4, Ways: 4, LineBytes: 64,
		HitLatency: sim.Cycles(2), MissPenalty: sim.Cycles(10),
		Policy: policy, HarvestWays: 2, EvictionCandidateFrac: 1.0,
	}
}

// addrFor builds an address mapping to the given set with the given tag.
func addrFor(cfg Config, set int, tag uint64) uint64 {
	return (tag*uint64(cfg.Sets) + uint64(set)) * uint64(cfg.LineBytes)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 4, LineBytes: 64},
		{Name: "b", Sets: 3, Ways: 4, LineBytes: 64},
		{Name: "c", Sets: 4, Ways: 0, LineBytes: 64},
		{Name: "d", Sets: 4, Ways: 4, LineBytes: 0},
		{Name: "e", Sets: 4, Ways: 4, LineBytes: 64, HarvestWays: 5},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %q should panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigSize(t *testing.T) {
	cfg := Config{Name: "sz", Sets: 64, Ways: 12, LineBytes: 64}
	if cfg.SizeBytes() != 48*1024 {
		t.Fatalf("SizeBytes = %d", cfg.SizeBytes())
	}
	if cfg.Entries() != 768 {
		t.Fatalf("Entries = %d", cfg.Entries())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	a := addrFor(c.cfg, 0, 1)
	hit, lat := c.Access(a, true)
	if hit {
		t.Fatal("first access should miss")
	}
	if lat != sim.Cycles(2)+sim.Cycles(10) {
		t.Fatalf("miss latency = %v", lat)
	}
	hit, lat = c.Access(a, true)
	if !hit {
		t.Fatal("second access should hit")
	}
	if lat != sim.Cycles(2) {
		t.Fatalf("hit latency = %v", lat)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SharedHits != 1 || s.SharedMisses != 1 {
		t.Fatalf("shared stats = %+v", s)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(addrFor(c.cfg, 2, tag), false)
	}
	// All four should now be resident.
	for tag := uint64(1); tag <= 4; tag++ {
		if !c.Probe(addrFor(c.cfg, 2, tag)) {
			t.Fatalf("tag %d not resident", tag)
		}
	}
	// A fifth tag evicts the LRU (tag 1).
	c.Access(addrFor(c.cfg, 2, 5), false)
	if c.Probe(addrFor(c.cfg, 2, 1)) {
		t.Fatal("tag 1 should have been evicted (LRU)")
	}
	if !c.Probe(addrFor(c.cfg, 2, 2)) {
		t.Fatal("tag 2 should still be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLRUTouchPreventsEviction(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(addrFor(c.cfg, 0, tag), false)
	}
	c.Access(addrFor(c.cfg, 0, 1), false) // touch tag 1: now tag 2 is LRU
	c.Access(addrFor(c.cfg, 0, 9), false)
	if !c.Probe(addrFor(c.cfg, 0, 1)) {
		t.Fatal("recently-touched tag 1 evicted")
	}
	if c.Probe(addrFor(c.cfg, 0, 2)) {
		t.Fatal("tag 2 should have been evicted")
	}
}

func TestFlushAll(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	for tag := uint64(1); tag <= 8; tag++ {
		c.Access(addrFor(c.cfg, int(tag)%4, tag), tag%2 == 0)
	}
	n := c.FlushAll()
	if n != 8 {
		t.Fatalf("invalidated %d, want 8", n)
	}
	nh, h := c.OccupiedEntries()
	if nh+h != 0 {
		t.Fatalf("entries remain after flush: %d/%d", nh, h)
	}
	if c.Stats().Invalidations != 8 {
		t.Fatalf("invalidation stat = %d", c.Stats().Invalidations)
	}
	// Double flush is a no-op.
	if c.FlushAll() != 0 {
		t.Fatal("second flush invalidated entries")
	}
}

func TestFlushHarvestRegionOnly(t *testing.T) {
	c := New(smallConfig(PolicyLRU)) // ways 0,1 non-harvest; 2,3 harvest
	// Fill one set completely.
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(addrFor(c.cfg, 0, tag), false)
	}
	nh0, h0 := c.OccupiedEntries()
	if nh0 != 2 || h0 != 2 {
		t.Fatalf("occupancy before = %d/%d", nh0, h0)
	}
	n := c.FlushHarvestRegion()
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	nh, h := c.OccupiedEntries()
	if nh != 2 || h != 0 {
		t.Fatalf("occupancy after = %d/%d", nh, h)
	}
}

func TestRegionRestrictsHarvestAllocation(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	c.SetRegion(RegionHarvest)
	if c.Region() != RegionHarvest {
		t.Fatal("region not set")
	}
	for tag := uint64(1); tag <= 6; tag++ {
		c.Access(addrFor(c.cfg, 1, tag), false)
	}
	nh, h := c.OccupiedEntries()
	if nh != 0 {
		t.Fatalf("harvest VM allocated %d non-harvest entries", nh)
	}
	if h != 2 {
		t.Fatalf("harvest occupancy = %d, want 2 (only 2 harvest ways)", h)
	}
}

func TestHarvestCannotHitNonHarvestWays(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	// Primary fills the set; shared entries land anywhere under LRU.
	a := addrFor(c.cfg, 0, 7)
	c.Access(a, true)
	if !c.Probe(a) {
		t.Fatal("primary line missing")
	}
	c.SetRegion(RegionHarvest)
	c.FlushHarvestRegion()
	// With region restricted, a probe of a line in a non-harvest way fails.
	if c.Probe(a) {
		t.Fatal("harvest region probe hit a non-harvest way")
	}
}

func TestSRRIPKeepsReusedLines(t *testing.T) {
	cfg := smallConfig(PolicySRRIP)
	cfg.HarvestWays = 0
	c := New(cfg)
	// Lines 1 and 2 are hot (RRPV 0); 3 and 4 are inserted but never reused.
	for i := 0; i < 4; i++ {
		c.Access(addrFor(cfg, 0, 1), true)
		c.Access(addrFor(cfg, 0, 2), true)
	}
	c.Access(addrFor(cfg, 0, 3), false)
	c.Access(addrFor(cfg, 0, 4), false)
	// Streaming fills should evict the never-reused lines, not the hot ones.
	c.Access(addrFor(cfg, 0, 5), false)
	c.Access(addrFor(cfg, 0, 6), false)
	if !c.Probe(addrFor(cfg, 0, 1)) || !c.Probe(addrFor(cfg, 0, 2)) {
		t.Fatal("SRRIP evicted a hot line")
	}
	if c.Probe(addrFor(cfg, 0, 3)) || c.Probe(addrFor(cfg, 0, 4)) {
		t.Fatal("SRRIP kept cold streaming lines over new fills")
	}
}

func TestHardHarvestSteersSharedToNonHarvest(t *testing.T) {
	c := New(smallConfig(PolicyHardHarvest))
	// Insert 2 shared and 2 private entries into an empty set.
	c.Access(addrFor(c.cfg, 0, 1), true)
	c.Access(addrFor(c.cfg, 0, 2), true)
	c.Access(addrFor(c.cfg, 0, 3), false)
	c.Access(addrFor(c.cfg, 0, 4), false)
	nhShared, hShared := c.SharedEntries()
	if nhShared != 2 || hShared != 0 {
		t.Fatalf("shared placement = %d non-harvest, %d harvest", nhShared, hShared)
	}
	// A harvest flush must not touch the shared entries.
	c.FlushHarvestRegion()
	if !c.Probe(addrFor(c.cfg, 0, 1)) || !c.Probe(addrFor(c.cfg, 0, 2)) {
		t.Fatal("harvest flush removed shared entries in non-harvest ways")
	}
	if c.Probe(addrFor(c.cfg, 0, 3)) || c.Probe(addrFor(c.cfg, 0, 4)) {
		t.Fatal("harvest flush kept private entries in harvest ways")
	}
}

func TestHardHarvestSharedEvictsPrivateFirst(t *testing.T) {
	c := New(smallConfig(PolicyHardHarvest))
	// Fill: 2 shared in non-harvest, 2 private in harvest.
	c.Access(addrFor(c.cfg, 0, 1), true)
	c.Access(addrFor(c.cfg, 0, 2), true)
	c.Access(addrFor(c.cfg, 0, 3), false)
	c.Access(addrFor(c.cfg, 0, 4), false)
	// Incoming shared entry: no empty slots, no private in non-harvest, so it
	// must evict a private entry in the harvest region, not a shared one.
	c.Access(addrFor(c.cfg, 0, 5), true)
	if !c.Probe(addrFor(c.cfg, 0, 1)) || !c.Probe(addrFor(c.cfg, 0, 2)) {
		t.Fatal("incoming shared evicted a shared entry while private existed")
	}
	if c.Probe(addrFor(c.cfg, 0, 3)) {
		t.Fatal("LRU private entry (tag 3) survived")
	}
}

func TestHardHarvestPrivateEvictsHarvestPrivateFirst(t *testing.T) {
	c := New(smallConfig(PolicyHardHarvest))
	c.Access(addrFor(c.cfg, 0, 1), true)  // non-harvest
	c.Access(addrFor(c.cfg, 0, 2), false) // harvest
	c.Access(addrFor(c.cfg, 0, 3), false) // harvest
	c.Access(addrFor(c.cfg, 0, 4), false) // non-harvest (harvest full)
	// Incoming private: should evict LRU private in the harvest region
	// (tag 2), not the one in non-harvest (tag 4), and never the shared.
	c.Access(addrFor(c.cfg, 0, 5), false)
	if c.Probe(addrFor(c.cfg, 0, 2)) {
		t.Fatal("tag 2 (harvest private, LRU) should be evicted")
	}
	if !c.Probe(addrFor(c.cfg, 0, 4)) || !c.Probe(addrFor(c.cfg, 0, 1)) {
		t.Fatal("wrong victim for incoming private entry")
	}
}

func TestHardHarvestAllSharedFallsBackToLRU(t *testing.T) {
	c := New(smallConfig(PolicyHardHarvest))
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(addrFor(c.cfg, 0, tag), true)
	}
	// All shared; incoming private evicts the LRU shared entry (tag 1).
	c.Access(addrFor(c.cfg, 0, 9), false)
	if c.Probe(addrFor(c.cfg, 0, 1)) {
		t.Fatal("LRU shared entry should be the fallback victim")
	}
}

func TestEvictionCandidateWindowProtectsMRU(t *testing.T) {
	cfg := smallConfig(PolicyHardHarvest)
	cfg.EvictionCandidateFrac = 0.5 // only the 2 LRU entries are candidates
	c := New(cfg)
	// Insert private entries; tags 3,4 are most recently used.
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(addrFor(cfg, 0, tag), false)
	}
	// Incoming shared wants a non-harvest private victim, but tags in
	// non-harvest ways may be outside the candidate window. The invariant we
	// check: the victim must be one of the two LRU entries (tags 1 or 2).
	c.Access(addrFor(cfg, 0, 9), true)
	if !c.Probe(addrFor(cfg, 0, 3)) || !c.Probe(addrFor(cfg, 0, 4)) {
		t.Fatal("candidate window failed to protect MRU entries")
	}
	if c.Probe(addrFor(cfg, 0, 1)) && c.Probe(addrFor(cfg, 0, 2)) {
		t.Fatal("no LRU entry was evicted")
	}
}

func TestBeladyPanicsOnline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("online Belady access should panic")
		}
	}()
	c := New(smallConfig(PolicyBelady))
	c.Access(0, false)
	c.Access(4096*64, false)
	c.Access(2*4096*64, false)
	c.Access(3*4096*64, false)
	c.Access(4*4096*64, false) // forces a victim decision
}

func TestResetStats(t *testing.T) {
	c := New(smallConfig(PolicyLRU))
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Probe(0) {
		t.Fatal("reset stats must not flush contents")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, Evictions: 1, SharedHits: 3, PrivateMisses: 2}
	b := Stats{Accesses: 5, Hits: 5, Invalidations: 7}
	a.Add(b)
	if a.Accesses != 15 || a.Hits != 11 || a.Invalidations != 7 {
		t.Fatalf("Add = %+v", a)
	}
	if r := a.HitRate(); r != 11.0/15.0 {
		t.Fatalf("HitRate = %v", r)
	}
	if (Stats{}).HitRate() != 0 || (Stats{}).MissRate() != 0 {
		t.Fatal("empty stats rates should be 0")
	}
}

func TestPolicyAndRegionStrings(t *testing.T) {
	if PolicyLRU.String() != "LRU" || PolicySRRIP.String() != "RRIP" ||
		PolicyHardHarvest.String() != "HardHarvest" || PolicyBelady.String() != "Belady" {
		t.Fatal("policy names wrong")
	}
	if RegionAll.String() != "all" || RegionHarvest.String() != "harvest" {
		t.Fatal("region names wrong")
	}
	if PolicyKind(99).String() == "" || Region(99).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}
