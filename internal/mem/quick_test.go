package mem

import (
	"testing"
	"testing/quick"

	"hardharvest/internal/stats"
)

// randomTrace builds an arbitrary event stream over a small address space.
func randomTrace(rng *stats.RNG, n int) Trace {
	var tr Trace
	for i := 0; i < n; i++ {
		switch {
		case rng.Bool(0.03):
			tr.AddFlushHarvest()
		case rng.Bool(0.015):
			tr.AddFlushAll()
		case rng.Bool(0.03):
			if rng.Bool(0.5) {
				tr.AddSetRegion(RegionHarvest)
			} else {
				tr.AddSetRegion(RegionAll)
			}
		default:
			tr.AddAccess(uint64(rng.Intn(64))*64, rng.Bool(0.5))
		}
	}
	return tr
}

// TestOccupancyBoundsProperty: a structure never holds more entries than
// sets x ways, and stats stay internally consistent, for every policy under
// random traces.
func TestOccupancyBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tr := randomTrace(rng, 500)
		for _, pol := range []PolicyKind{PolicyLRU, PolicySRRIP, PolicyHardHarvest} {
			cfg := Config{
				Name: "q", Sets: 4, Ways: 4, LineBytes: 64,
				Policy: pol, HarvestWays: 2, EvictionCandidateFrac: 0.75,
			}
			c := New(cfg)
			for _, e := range tr {
				switch e.Kind {
				case EvAccess:
					c.Access(e.Addr, e.Shared)
				case EvFlushHarvest:
					c.FlushHarvestRegion()
				case EvFlushAll:
					c.FlushAll()
				case EvSetRegion:
					c.SetRegion(e.Region)
				}
				nh, h := c.OccupiedEntries()
				if nh+h > cfg.Sets*cfg.Ways {
					t.Logf("%v over-occupied: %d+%d", pol, nh, h)
					return false
				}
				if h > cfg.Sets*cfg.HarvestWays || nh > cfg.Sets*(cfg.Ways-cfg.HarvestWays) {
					t.Logf("%v region overflow: nh=%d h=%d", pol, nh, h)
					return false
				}
			}
			s := c.Stats()
			if s.Hits+s.Misses != s.Accesses {
				t.Logf("%v stats inconsistent: %+v", pol, s)
				return false
			}
			if s.SharedHits+s.PrivateHits != s.Hits ||
				s.SharedMisses+s.PrivateMisses != s.Misses {
				t.Logf("%v class stats inconsistent: %+v", pol, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHarvestRegionIsolationProperty: while the harvest region is active,
// no allocation ever lands in a non-harvest way — the Primary VM's
// preserved state cannot be disturbed by the Harvest VM (§4.2.1).
func TestHarvestRegionIsolationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		for _, pol := range []PolicyKind{PolicyLRU, PolicySRRIP, PolicyHardHarvest} {
			cfg := Config{
				Name: "iso", Sets: 4, Ways: 4, LineBytes: 64,
				Policy: pol, HarvestWays: 2, EvictionCandidateFrac: 0.75,
			}
			c := New(cfg)
			// Warm the non-harvest region as a Primary VM.
			for i := 0; i < 50; i++ {
				c.Access(uint64(rng.Intn(32))*64, true)
			}
			nhBefore, _ := c.OccupiedEntries()
			sharedNH, _ := c.SharedEntries()
			// Switch to the Harvest VM: flush harvest region, restrict.
			c.SetRegion(RegionHarvest)
			c.FlushHarvestRegion()
			for i := 0; i < 200; i++ {
				c.Access(0x8000_0000+uint64(rng.Intn(64))*64, false)
			}
			nhAfter, _ := c.OccupiedEntries()
			sharedNHAfter, _ := c.SharedEntries()
			if nhAfter != nhBefore || sharedNHAfter != sharedNH {
				t.Logf("%v: harvest run disturbed non-harvest region (%d->%d entries)", pol, nhBefore, nhAfter)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFlushIsCompleteProperty: after FlushAll nothing is resident; after
// FlushHarvestRegion nothing in the harvest ways is resident.
func TestFlushIsCompleteProperty(t *testing.T) {
	f := func(seed uint64, full bool) bool {
		rng := stats.NewRNG(seed)
		cfg := Config{
			Name: "fl", Sets: 8, Ways: 4, LineBytes: 64,
			Policy: PolicyHardHarvest, HarvestWays: 2, EvictionCandidateFrac: 0.75,
		}
		c := New(cfg)
		for i := 0; i < 300; i++ {
			c.Access(uint64(rng.Intn(128))*64, rng.Bool(0.6))
		}
		if full {
			c.FlushAll()
			nh, h := c.OccupiedEntries()
			return nh == 0 && h == 0
		}
		c.FlushHarvestRegion()
		_, h := c.OccupiedEntries()
		return h == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateTraceDeterministicProperty: identical traces produce
// identical stats for every policy, including Belady.
func TestSimulateTraceDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tr := randomTrace(rng, 300)
		for _, pol := range []PolicyKind{PolicyLRU, PolicySRRIP, PolicyHardHarvest, PolicyBelady} {
			cfg := Config{
				Name: "d", Sets: 4, Ways: 4, LineBytes: 64,
				Policy: pol, HarvestWays: 2, EvictionCandidateFrac: 0.75,
			}
			a := SimulateTrace(cfg, tr)
			b := SimulateTrace(cfg, tr)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
