package mem

import (
	"testing"

	"hardharvest/internal/sim"
)

func TestWalkerColdWalk(t *testing.T) {
	w := NewPageWalker(DefaultWalkerConfig())
	lat := w.Walk(0x7f00_1234_5000)
	// Cold: PWC lookup + 4 table fetches.
	want := sim.Cycles(2) + 4*sim.Cycles(40)
	if lat != want {
		t.Fatalf("cold walk = %v, want %v", lat, want)
	}
	walks, hits, fetches := w.Stats()
	if walks != 1 || hits != 0 || fetches != 4 {
		t.Fatalf("stats = %d/%d/%d", walks, hits, fetches)
	}
}

func TestWalkerPWCSkipsLevels(t *testing.T) {
	w := NewPageWalker(DefaultWalkerConfig())
	w.Walk(0x7f00_1234_5000)
	// Second walk in the same 2 MiB region: only the leaf PTE is fetched.
	lat := w.Walk(0x7f00_1234_6000)
	want := sim.Cycles(2) + sim.Cycles(40)
	if lat != want {
		t.Fatalf("warm walk = %v, want %v", lat, want)
	}
	_, hits, _ := w.Stats()
	if hits != 1 {
		t.Fatalf("pwc hits = %d", hits)
	}
	// A walk in a different 512 GiB region is cold again.
	lat = w.Walk(0xff00_0000_0000)
	if lat != sim.Cycles(2)+4*sim.Cycles(40) {
		t.Fatalf("far walk = %v", lat)
	}
}

func TestWalkerPartialHit(t *testing.T) {
	w := NewPageWalker(DefaultWalkerConfig())
	w.Walk(0x7f00_0000_0000)
	// Same PDPT (1 GiB region shares levels 0-1) but different 2 MiB
	// region: the PD-level PWC misses, PDPT hits, so two fetches remain
	// (PD + PT).
	lat := w.Walk(0x7f00_4000_0000 - 0x20_0000) // same 1 GiB, other 2 MiB
	want := sim.Cycles(2) + 2*sim.Cycles(40)
	if lat != want {
		t.Fatalf("partial walk = %v, want %v", lat, want)
	}
}

func TestWalkerFlush(t *testing.T) {
	w := NewPageWalker(DefaultWalkerConfig())
	w.Walk(0x1000)
	w.Flush()
	lat := w.Walk(0x2000)
	if lat != sim.Cycles(2)+4*sim.Cycles(40) {
		t.Fatalf("post-flush walk = %v, want cold", lat)
	}
}

func TestWalkerAmortization(t *testing.T) {
	// Sequential pages in one region: the average walk converges to ~1
	// fetch, far below the cold 4 — the reason flat TLB-miss penalties are
	// a reasonable simplification for small working sets.
	w := NewPageWalker(DefaultWalkerConfig())
	var total sim.Duration
	const n = 256
	for i := 0; i < n; i++ {
		total += w.Walk(0x4000_0000 + uint64(i)*4096)
	}
	avg := total / n
	if avg > sim.Cycles(2)+2*sim.Cycles(40) {
		t.Fatalf("amortized walk = %v, want under 2 fetches", avg)
	}
}

func TestWalkerInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid walker config should panic")
		}
	}()
	NewPageWalker(WalkerConfig{Levels: 1, PWCEntries: 8})
}

func TestHierarchyWithWalker(t *testing.T) {
	p := DefaultHierarchyParams()
	p.UseWalker = true
	h := NewHierarchy(p)
	if h.Walker == nil {
		t.Fatal("walker not attached")
	}
	// First access: full cold path including a real 4-level walk.
	cold := h.AccessData(0x7000_0000, true, false)
	flat := NewHierarchy(DefaultHierarchyParams()).AccessData(0x7000_0000, true, false)
	if cold <= flat {
		t.Fatalf("cold walk %v should exceed the flat penalty %v", cold, flat)
	}
	walks, _, _ := h.Walker.Stats()
	if walks != 1 {
		t.Fatalf("walks = %d", walks)
	}
	// Flushing the hierarchy also clears the PWCs.
	h.FlushAll()
	h.AccessData(0x7000_0000, true, false)
	if w, hits, _ := h.Walker.Stats(); w != 2 || hits != 0 {
		t.Fatalf("post-flush walker stats = %d/%d", w, hits)
	}
}
