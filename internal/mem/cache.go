// Package mem models the private cache and TLB hierarchy of a HardHarvest
// core: set-associative structures with way partitioning into a Harvest and a
// Non-Harvest region, a per-entry Shared bit, selective flush/invalidate, and
// the replacement policies evaluated in the paper (LRU, SRRIP, Belady's
// optimal, and the HardHarvest policy of Algorithm 1).
package mem

import (
	"fmt"

	"hardharvest/internal/sim"
)

// Region selects which ways of a structure the running VM may allocate into.
type Region int

const (
	// RegionAll is used while a Primary VM runs: the whole structure is
	// accessible (§4.2.1).
	RegionAll Region = iota
	// RegionHarvest is used while a Harvest VM runs on a loaned core: only
	// the harvest ways are accessible.
	RegionHarvest
)

func (r Region) String() string {
	switch r {
	case RegionAll:
		return "all"
	case RegionHarvest:
		return "harvest"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// PolicyKind selects the replacement policy of a structure.
type PolicyKind int

const (
	// PolicyLRU is least-recently-used replacement.
	PolicyLRU PolicyKind = iota
	// PolicySRRIP is 2-bit static re-reference interval prediction [37].
	PolicySRRIP
	// PolicyHardHarvest is Algorithm 1: steer shared entries toward
	// non-harvest ways and private entries toward harvest ways, restricted
	// to the M least-recently-used eviction candidates.
	PolicyHardHarvest
	// PolicyBelady is the offline optimal; it requires future knowledge and
	// is only usable through SimulateTrace.
	PolicyBelady
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicySRRIP:
		return "RRIP"
	case PolicyHardHarvest:
		return "HardHarvest"
	case PolicyBelady:
		return "Belady"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Config describes one set-associative structure.
type Config struct {
	Name        string
	Sets        int
	Ways        int
	LineBytes   int64 // line size for caches, page size for TLBs
	HitLatency  sim.Duration
	MissPenalty sim.Duration // added to HitLatency on a miss

	Policy PolicyKind
	// HarvestWays is the number of ways in the harvest region (Table 1:
	// 50% of all ways by default). Harvest ways occupy the highest way
	// indexes.
	HarvestWays int
	// EvictionCandidateFrac is M from §4.2.3 as a fraction of the ways
	// considered when Algorithm 1 must evict a valid entry (Table 1: 75%).
	// Values <= 0 or >= 1 mean "all ways".
	EvictionCandidateFrac float64
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: %s: sets/ways must be positive (%d/%d)", c.Name, c.Sets, c.Ways)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("mem: %s: sets must be a power of two (%d)", c.Name, c.Sets)
	}
	if c.LineBytes <= 0 {
		return fmt.Errorf("mem: %s: line bytes must be positive", c.Name)
	}
	if c.HarvestWays < 0 || c.HarvestWays > c.Ways {
		return fmt.Errorf("mem: %s: harvest ways %d out of range [0,%d]", c.Name, c.HarvestWays, c.Ways)
	}
	return nil
}

// SizeBytes reports the capacity of the structure.
func (c Config) SizeBytes() int64 {
	return int64(c.Sets) * int64(c.Ways) * c.LineBytes
}

// Entries reports the number of entries (used for TLBs).
func (c Config) Entries() int { return c.Sets * c.Ways }

// Stats accumulates access accounting for one structure.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	SharedHits    uint64
	SharedMisses  uint64
	PrivateHits   uint64
	PrivateMisses uint64
	Invalidations uint64 // entries dropped by flushes
}

// HitRate reports hits/accesses (0 with no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate reports 1 - HitRate for nonzero access counts.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.SharedHits += other.SharedHits
	s.SharedMisses += other.SharedMisses
	s.PrivateHits += other.PrivateHits
	s.PrivateMisses += other.PrivateMisses
	s.Invalidations += other.Invalidations
}

type entry struct {
	tag     uint64
	valid   bool
	shared  bool
	lastUse uint64
	rrpv    uint8 // SRRIP re-reference prediction value (0..3)
}

// Cache is one set-associative structure (cache level or TLB).
type Cache struct {
	cfg    Config
	sets   [][]entry
	region Region
	clock  uint64
	stats  Stats

	setsMask uint64
	setShift uint
}

// New builds a structure from its configuration. It panics on invalid
// configurations: these are programmer errors in experiment setup.
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, setsMask: uint64(cfg.Sets - 1)}
	for s := int64(1); s < cfg.LineBytes; s <<= 1 {
		c.setShift++
	}
	c.sets = make([][]entry, cfg.Sets)
	backing := make([]entry, cfg.Sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Config returns the structure's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Region reports the currently accessible region.
func (c *Cache) Region() Region { return c.region }

// SetRegion switches the accessible region, as done when a core transitions
// between a Primary and a Harvest VM. Contents are not touched; flushing is a
// separate, explicit operation.
func (c *Cache) SetRegion(r Region) { c.region = r }

// isHarvestWay reports whether way w belongs to the harvest region.
func (c *Cache) isHarvestWay(w int) bool {
	return w >= c.cfg.Ways-c.cfg.HarvestWays
}

// waysAccessible returns the range of way indexes the current region may
// allocate into, as a (first, last] style pair [lo, hi).
func (c *Cache) waysAccessible() (lo, hi int) {
	if c.region == RegionHarvest {
		return c.cfg.Ways - c.cfg.HarvestWays, c.cfg.Ways
	}
	return 0, c.cfg.Ways
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.setShift
	return int(line & c.setsMask), line >> uint(bitsFor(c.cfg.Sets))
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Access performs one access. shared marks the entry's page Shared bit
// (§4.2.2). It returns whether the access hit and the access latency.
func (c *Cache) Access(addr uint64, shared bool) (hit bool, lat sim.Duration) {
	c.clock++
	c.stats.Accesses++
	setIdx, tag := c.index(addr)
	set := c.sets[setIdx]
	lo, hi := c.waysAccessible()
	for w := lo; w < hi; w++ {
		e := &set[w]
		if e.valid && e.tag == tag {
			e.lastUse = c.clock
			e.rrpv = 0
			// The Shared bit is refreshed from the page table on each fill;
			// on a hit the bit is already correct by construction, but keep
			// it in sync in case profiling reclassifies a page.
			e.shared = shared
			c.stats.Hits++
			if shared {
				c.stats.SharedHits++
			} else {
				c.stats.PrivateHits++
			}
			return true, c.cfg.HitLatency
		}
	}
	c.stats.Misses++
	if shared {
		c.stats.SharedMisses++
	} else {
		c.stats.PrivateMisses++
	}
	c.insert(setIdx, tag, shared)
	return false, c.cfg.HitLatency + c.cfg.MissPenalty
}

// Probe reports whether addr is present without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	setIdx, tag := c.index(addr)
	lo, hi := c.waysAccessible()
	for w := lo; w < hi; w++ {
		e := &c.sets[setIdx][w]
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) insert(setIdx int, tag uint64, shared bool) {
	set := c.sets[setIdx]
	w := c.victim(set, shared)
	e := &set[w]
	if e.valid {
		c.stats.Evictions++
	}
	e.valid = true
	e.tag = tag
	e.shared = shared
	e.lastUse = c.clock
	// SRRIP inserts at "long re-reference interval" (RRPV = 2 of 3).
	e.rrpv = 2
}

// victim picks the way to fill according to the configured policy, within the
// accessible region.
func (c *Cache) victim(set []entry, shared bool) int {
	lo, hi := c.waysAccessible()
	switch c.cfg.Policy {
	case PolicySRRIP:
		return c.victimSRRIP(set, lo, hi)
	case PolicyHardHarvest:
		if c.region == RegionHarvest {
			// A Harvest VM only sees harvest ways; within them the default
			// policy applies.
			return c.victimLRU(set, lo, hi)
		}
		return c.victimHardHarvest(set, shared, lo, hi)
	case PolicyBelady:
		panic("mem: Belady requires SimulateTrace (future knowledge)")
	default:
		return c.victimLRU(set, lo, hi)
	}
}

func (c *Cache) victimLRU(set []entry, lo, hi int) int {
	best, bestUse := -1, ^uint64(0)
	for w := lo; w < hi; w++ {
		e := &set[w]
		if !e.valid {
			return w
		}
		if e.lastUse < bestUse {
			best, bestUse = w, e.lastUse
		}
	}
	return best
}

func (c *Cache) victimSRRIP(set []entry, lo, hi int) int {
	for w := lo; w < hi; w++ {
		if !set[w].valid {
			return w
		}
	}
	for {
		for w := lo; w < hi; w++ {
			if set[w].rrpv >= 3 {
				return w
			}
		}
		for w := lo; w < hi; w++ {
			if set[w].rrpv < 3 {
				set[w].rrpv++
			}
		}
	}
}

// victimHardHarvest implements Algorithm 1 with the hardware priority
// multiplexers of §4.2.4 and the eviction-candidate window of §4.2.3.
func (c *Cache) victimHardHarvest(set []entry, shared bool, lo, hi int) int {
	// Case 1: empty slots exist.
	emptyHarv, emptyNonHarv := -1, -1
	for w := lo; w < hi; w++ {
		if set[w].valid {
			continue
		}
		if c.isHarvestWay(w) {
			if emptyHarv < 0 {
				emptyHarv = w
			}
		} else if emptyNonHarv < 0 {
			emptyNonHarv = w
		}
	}
	if emptyHarv >= 0 && emptyNonHarv >= 0 {
		if shared {
			return emptyNonHarv
		}
		return emptyHarv
	}
	if emptyHarv >= 0 {
		return emptyHarv
	}
	if emptyNonHarv >= 0 {
		return emptyNonHarv
	}

	// Case 2: no empty slot. Restrict victims to the M least-recently-used
	// entries (eviction candidates).
	cands := c.evictionCandidates(set, lo, hi)

	pickLRU := func(match func(w int) bool) int {
		best, bestUse := -1, ^uint64(0)
		for _, w := range cands {
			if !match(w) {
				continue
			}
			if set[w].lastUse < bestUse {
				best, bestUse = w, set[w].lastUse
			}
		}
		return best
	}
	isPriv := func(w int) bool { return !set[w].shared }
	if shared {
		// Non-Harv private first, then Harv private, else any (LRU).
		if w := pickLRU(func(w int) bool { return isPriv(w) && !c.isHarvestWay(w) }); w >= 0 {
			return w
		}
		if w := pickLRU(func(w int) bool { return isPriv(w) && c.isHarvestWay(w) }); w >= 0 {
			return w
		}
	} else {
		// Harv private first, then Non-Harv private, else any (LRU).
		if w := pickLRU(func(w int) bool { return isPriv(w) && c.isHarvestWay(w) }); w >= 0 {
			return w
		}
		if w := pickLRU(func(w int) bool { return isPriv(w) && !c.isHarvestWay(w) }); w >= 0 {
			return w
		}
	}
	// All candidates hold shared entries: pick the default (LRU) victim.
	return pickLRU(func(int) bool { return true })
}

// evictionCandidates returns the way indexes of the M least-recently-used
// valid entries within [lo, hi).
func (c *Cache) evictionCandidates(set []entry, lo, hi int) []int {
	n := hi - lo
	m := n
	if f := c.cfg.EvictionCandidateFrac; f > 0 && f < 1 {
		m = int(f*float64(n) + 0.5)
		if m < 1 {
			m = 1
		}
	}
	// Selection by repeated minimum; n is at most 16, so O(n*m) is fine and
	// allocation-free apart from the result slice.
	cands := make([]int, 0, m)
	taken := 0
	var used [64]bool
	for taken < m {
		best, bestUse := -1, ^uint64(0)
		for w := lo; w < hi; w++ {
			if used[w-lo] || !set[w].valid {
				continue
			}
			if set[w].lastUse < bestUse {
				best, bestUse = w, set[w].lastUse
			}
		}
		if best < 0 {
			break
		}
		used[best-lo] = true
		cands = append(cands, best)
		taken++
	}
	return cands
}

// FlushAll invalidates every entry, as the software baselines must do on any
// cross-VM switch (wbinvd semantics, without timing — costs are injected by
// the cluster model).
func (c *Cache) FlushAll() (invalidated int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				c.sets[s][w] = entry{}
				invalidated++
			}
		}
	}
	c.stats.Invalidations += uint64(invalidated)
	return invalidated
}

// FlushHarvestRegion invalidates only the harvest ways, as HardHarvest does
// on every cross-VM transition (§4.2.1). The non-harvest region keeps the
// Primary VM's state.
func (c *Cache) FlushHarvestRegion() (invalidated int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.isHarvestWay(w) && c.sets[s][w].valid {
				c.sets[s][w] = entry{}
				invalidated++
			}
		}
	}
	c.stats.Invalidations += uint64(invalidated)
	return invalidated
}

// OccupiedEntries reports the number of valid entries, split by region.
func (c *Cache) OccupiedEntries() (nonHarvest, harvest int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if !c.sets[s][w].valid {
				continue
			}
			if c.isHarvestWay(w) {
				harvest++
			} else {
				nonHarvest++
			}
		}
	}
	return nonHarvest, harvest
}

// SharedEntries reports how many valid entries carry the Shared bit, split
// by region. Used by tests asserting Algorithm 1 steers shared state into
// the non-harvest region.
func (c *Cache) SharedEntries() (nonHarvest, harvest int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			e := &c.sets[s][w]
			if !e.valid || !e.shared {
				continue
			}
			if c.isHarvestWay(w) {
				harvest++
			} else {
				nonHarvest++
			}
		}
	}
	return nonHarvest, harvest
}
