package mem

import "hardharvest/internal/stats"

// Address-stream generation. The paper characterizes microservice memory
// behaviour as a modest shared working set (code, libraries, read-only data —
// pages allocated before server.serve()) that is reused across invocations of
// the same service, plus per-invocation private pages that are mostly
// streamed (§4.2.2). Harvest VM episodes interleave between invocations when
// the core is loaned out, touching a large, streaming working set of their
// own.

// Address-space bases keep the three classes of lines disjoint; the harvest
// space is additionally disjoint per episode to model batch jobs streaming
// through fresh data.
const (
	sharedBase  = 0x1000_0000
	privateBase = 0x4000_0000
	harvestBase = 0x8000_0000
	lineSize    = 64
)

// StreamParams describe one service's synthetic access pattern.
type StreamParams struct {
	// SharedLines is the number of distinct shared-class cache lines
	// (reused across invocations; Shared bit set).
	SharedLines int
	// PrivateLines is the number of fresh private-class lines allocated per
	// invocation.
	PrivateLines int
	// AccessesPerInvocation is the total accesses issued by one invocation.
	AccessesPerInvocation int
	// SharedFrac is the fraction of accesses that target shared lines.
	SharedFrac float64
	// ZipfS is the skew of reuse within the shared set (typical code/data
	// reuse is highly skewed).
	ZipfS float64
	// PrivateReuse is the probability that a private access re-touches an
	// already-streamed private line instead of the next fresh one.
	PrivateReuse float64
	// PrivateHotLines is a small per-invocation set of hot private lines
	// (stack frames, hot heap objects) reused throughout the invocation;
	// PrivateHotFrac is the fraction of private accesses they receive.
	// These are the "popular private data" of §4.2.3 that the eviction
	// candidate window protects from shared-entry pressure.
	PrivateHotLines int
	PrivateHotFrac  float64
	// PrivatePool recycles private allocations across invocations (the
	// allocator hands back recently freed pages): invocation i uses the
	// private region i mod PrivatePool. 0 means every invocation touches
	// fresh addresses.
	PrivatePool int
	// HarvestAccessesPerEpisode is the number of accesses a Harvest VM
	// episode issues while the core is loaned.
	HarvestAccessesPerEpisode int
	// HarvestLines bounds the harvest episode's streaming window.
	HarvestLines int
}

// DefaultStreamParams returns a pattern representative of a DeathStarBench
// service on a 512 KB L2: a shared footprint of ~220 KB reused across
// invocations (Zipf-skewed), a streamed private per-invocation footprint of
// ~375 KB with short-range reuse, and harvest episodes whose streaming window
// slightly exceeds the harvest region's capacity (batch workloads are larger
// than the region, §4.2.1). Calibrated so the L2 policy comparison of Figure
// 14 reproduces the paper's ordering and rough magnitudes.
func DefaultStreamParams() StreamParams {
	return StreamParams{
		SharedLines:               3500, // ~219 KB
		PrivateLines:              6000, // ~375 KB streamed per invocation
		AccessesPerInvocation:     20000,
		SharedFrac:                0.60,
		ZipfS:                     0.70,
		PrivateReuse:              0.30,
		PrivateHotLines:           64,
		PrivateHotFrac:            0.35,
		HarvestAccessesPerEpisode: 10000,
		HarvestLines:              4300, // ~269 KB streaming window
	}
}

// StreamGen produces trace events for a sequence of invocations with
// optional interleaved harvest episodes.
type StreamGen struct {
	p          StreamParams
	rng        *stats.RNG
	zipf       *stats.Zipf
	sharedPerm []int // randomized mapping rank -> shared line
	invocation int
	harvestPos int
	episode    int
}

// NewStreamGen builds a generator with its own RNG stream.
func NewStreamGen(p StreamParams, rng *stats.RNG) *StreamGen {
	g := &StreamGen{p: p, rng: rng}
	if p.SharedLines > 0 {
		g.zipf = stats.NewZipf(rng.Split(1), p.SharedLines, p.ZipfS)
		g.sharedPerm = rng.Split(2).Perm(p.SharedLines)
	}
	return g
}

func (g *StreamGen) sharedAddr(rank int) uint64 {
	return sharedBase + uint64(g.sharedPerm[rank])*lineSize
}

func (g *StreamGen) privateAddr(line int) uint64 {
	inv := g.invocation
	if g.p.PrivatePool > 0 {
		inv %= g.p.PrivatePool
	}
	return privateBase + uint64(inv)*uint64(g.p.PrivateLines+g.p.PrivateHotLines)*lineSize + uint64(line)*lineSize
}

// AppendInvocation appends one Primary VM invocation's accesses to the
// trace.
func (g *StreamGen) AppendInvocation(t *Trace) {
	streamed := 0
	for i := 0; i < g.p.AccessesPerInvocation; i++ {
		if g.rng.Float64() < g.p.SharedFrac && g.p.SharedLines > 0 {
			t.AddAccess(g.sharedAddr(g.zipf.Next()), true)
			continue
		}
		if g.p.PrivateLines == 0 {
			t.AddAccess(g.sharedAddr(g.zipf.Next()), true)
			continue
		}
		if g.p.PrivateHotLines > 0 && g.rng.Float64() < g.p.PrivateHotFrac {
			// Hot private data: few lines, reused across the invocation.
			t.AddAccess(g.privateAddr(g.rng.Intn(g.p.PrivateHotLines)), false)
		} else if streamed > 0 && g.rng.Float64() < g.p.PrivateReuse {
			// Re-touch a recently streamed private line.
			back := 1 + g.rng.Intn(minInt(streamed, 32))
			t.AddAccess(g.privateAddr(g.p.PrivateHotLines+streamed-back), false)
		} else {
			t.AddAccess(g.privateAddr(g.p.PrivateHotLines+streamed%g.p.PrivateLines), false)
			streamed++
		}
	}
	g.invocation++
}

// AppendHarvestEpisode appends a loan of the core to a Harvest VM: flush of
// the harvest region, region switch, the batch workload's streaming
// accesses, switch back, and the return-path harvest-region flush (performed
// in the background in the real design; the trace only carries the
// invalidation semantics).
func (g *StreamGen) AppendHarvestEpisode(t *Trace) {
	t.AddFlushHarvest()
	t.AddSetRegion(RegionHarvest)
	base := uint64(harvestBase) + uint64(g.episode)*uint64(g.p.HarvestLines)*lineSize
	for i := 0; i < g.p.HarvestAccessesPerEpisode; i++ {
		line := uint64(i % maxInt(g.p.HarvestLines, 1))
		t.AddAccess(base+line*lineSize, false)
	}
	g.episode++
	t.AddSetRegion(RegionAll)
	t.AddFlushHarvest()
}

// AppendFullFlush appends the software-baseline full flush (wbinvd
// semantics) used when comparing against unpartitioned designs.
func (g *StreamGen) AppendFullFlush(t *Trace) { t.AddFlushAll() }

// GenerateHarvestingTrace builds a trace of n invocations with a harvest
// episode after every harvestEvery invocations (0 disables harvesting).
func GenerateHarvestingTrace(p StreamParams, seed uint64, invocations, harvestEvery int) Trace {
	g := NewStreamGen(p, stats.NewRNG(seed))
	var t Trace
	for i := 0; i < invocations; i++ {
		g.AppendInvocation(&t)
		if harvestEvery > 0 && (i+1)%harvestEvery == 0 && i != invocations-1 {
			g.AppendHarvestEpisode(&t)
		}
	}
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
