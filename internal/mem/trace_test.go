package mem

import (
	"testing"
	"testing/quick"

	"hardharvest/internal/stats"
)

func TestTraceBuilders(t *testing.T) {
	var tr Trace
	tr.AddAccess(64, true)
	tr.AddFlushHarvest()
	tr.AddFlushAll()
	tr.AddSetRegion(RegionHarvest)
	tr.AddAccess(128, false)
	if len(tr) != 5 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr.Accesses() != 2 {
		t.Fatalf("accesses = %d", tr.Accesses())
	}
	if tr[3].Kind != EvSetRegion || tr[3].Region != RegionHarvest {
		t.Fatalf("event 3 = %+v", tr[3])
	}
}

func TestSimulateTraceMatchesDirectUse(t *testing.T) {
	cfg := smallConfig(PolicyLRU)
	var tr Trace
	for tag := uint64(1); tag <= 10; tag++ {
		tr.AddAccess(addrFor(cfg, int(tag)%4, tag), tag%2 == 0)
	}
	tr.AddFlushHarvest()
	for tag := uint64(1); tag <= 10; tag++ {
		tr.AddAccess(addrFor(cfg, int(tag)%4, tag), tag%2 == 0)
	}
	got := SimulateTrace(cfg, tr)

	c := New(cfg)
	for _, e := range tr {
		switch e.Kind {
		case EvAccess:
			c.Access(e.Addr, e.Shared)
		case EvFlushHarvest:
			c.FlushHarvestRegion()
		}
	}
	want := c.Stats()
	if got != want {
		t.Fatalf("SimulateTrace = %+v, direct = %+v", got, want)
	}
}

func TestBeladySimpleOptimality(t *testing.T) {
	// 2-way set; access pattern where LRU thrashes but OPT keeps the line
	// reused soonest: A B C A B C ... with 2 ways. OPT hit rate > LRU's.
	cfg := Config{Name: "b", Sets: 1, Ways: 2, LineBytes: 64, Policy: PolicyLRU}
	var tr Trace
	a, b, c := uint64(0), uint64(64), uint64(128)
	for i := 0; i < 30; i++ {
		tr.AddAccess(a, false)
		tr.AddAccess(b, false)
		tr.AddAccess(c, false)
	}
	lru := SimulateTrace(cfg, tr)
	cfg.Policy = PolicyBelady
	opt := SimulateTrace(cfg, tr)
	if lru.Hits != 0 {
		t.Fatalf("LRU should thrash on cyclic pattern, hits = %d", lru.Hits)
	}
	if opt.Hits == 0 {
		t.Fatalf("Belady should hit on cyclic pattern")
	}
	if opt.HitRate() <= lru.HitRate() {
		t.Fatalf("Belady %.3f <= LRU %.3f", opt.HitRate(), lru.HitRate())
	}
}

func TestBeladyRespectsFlushes(t *testing.T) {
	cfg := Config{Name: "b", Sets: 1, Ways: 4, LineBytes: 64, Policy: PolicyBelady, HarvestWays: 2}
	var tr Trace
	for tag := uint64(0); tag < 4; tag++ {
		tr.AddAccess(tag*64, false)
	}
	tr.AddFlushAll()
	for tag := uint64(0); tag < 4; tag++ {
		tr.AddAccess(tag*64, false)
	}
	s := SimulateTrace(cfg, tr)
	if s.Hits != 0 {
		t.Fatalf("hits across a full flush: %d", s.Hits)
	}
	if s.Invalidations != 4 {
		t.Fatalf("invalidations = %d", s.Invalidations)
	}
}

func TestBeladyHarvestRegionSemantics(t *testing.T) {
	cfg := Config{Name: "b", Sets: 1, Ways: 4, LineBytes: 64, Policy: PolicyBelady, HarvestWays: 2}
	var tr Trace
	// Harvest episode can only use 2 ways.
	tr.AddSetRegion(RegionHarvest)
	for i := 0; i < 3; i++ {
		tr.AddAccess(uint64(i)*64, false)
		tr.AddAccess(uint64(i)*64, false) // immediate reuse: should hit
	}
	s := SimulateTrace(cfg, tr)
	if s.Hits != 3 {
		t.Fatalf("hits = %d, want 3 immediate-reuse hits", s.Hits)
	}
}

// TestBeladyUpperBound is the core property: on arbitrary traces, Belady's
// hit count is >= every online policy's.
func TestBeladyUpperBound(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := 200 + int(nRaw)
		cfg := Config{
			Name: "q", Sets: 2, Ways: 4, LineBytes: 64,
			HarvestWays: 2, EvictionCandidateFrac: 0.75,
		}
		var tr Trace
		for i := 0; i < n; i++ {
			switch {
			case rng.Bool(0.02):
				tr.AddFlushHarvest()
			case rng.Bool(0.01):
				tr.AddFlushAll()
			default:
				tr.AddAccess(uint64(rng.Intn(24))*64, rng.Bool(0.5))
			}
		}
		cfg.Policy = PolicyBelady
		opt := SimulateTrace(cfg, tr)
		for _, p := range []PolicyKind{PolicyLRU, PolicySRRIP, PolicyHardHarvest} {
			cfg.Policy = p
			online := SimulateTrace(cfg, tr)
			if online.Hits > opt.Hits {
				t.Logf("policy %v: %d hits > Belady %d", p, online.Hits, opt.Hits)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFig14PolicyOrdering reproduces Figure 14's qualitative result on a
// harvesting trace: HardHarvest > RRIP > LRU in L2 hit rate, with Belady as
// the upper bound and HardHarvest close to it.
func TestFig14PolicyOrdering(t *testing.T) {
	p := DefaultStreamParams()
	tr := GenerateHarvestingTrace(p, 1234, 40, 2)

	base := StructConfig(L2, DefaultHierarchyParams())
	rates := map[PolicyKind]float64{}
	for _, pol := range []PolicyKind{PolicyLRU, PolicySRRIP, PolicyHardHarvest, PolicyBelady} {
		cfg := base
		cfg.Policy = pol
		rates[pol] = SimulateTrace(cfg, tr).HitRate()
	}
	t.Logf("L2 hit rates: LRU=%.4f RRIP=%.4f HH=%.4f Belady=%.4f",
		rates[PolicyLRU], rates[PolicySRRIP], rates[PolicyHardHarvest], rates[PolicyBelady])
	if !(rates[PolicyHardHarvest] > rates[PolicyLRU]) {
		t.Errorf("HardHarvest %.4f should beat LRU %.4f", rates[PolicyHardHarvest], rates[PolicyLRU])
	}
	if !(rates[PolicyHardHarvest] > rates[PolicySRRIP]) {
		t.Errorf("HardHarvest %.4f should beat RRIP %.4f", rates[PolicyHardHarvest], rates[PolicySRRIP])
	}
	if !(rates[PolicyBelady] >= rates[PolicyHardHarvest]) {
		t.Errorf("Belady %.4f should bound HardHarvest %.4f", rates[PolicyBelady], rates[PolicyHardHarvest])
	}
	if gap := rates[PolicyBelady] - rates[PolicyHardHarvest]; gap > 0.10 {
		t.Errorf("HardHarvest should be near Belady; gap = %.4f", gap)
	}
}

func TestHarvestingHurtsLRUMoreThanHardHarvest(t *testing.T) {
	p := DefaultStreamParams()
	noHarv := GenerateHarvestingTrace(p, 99, 30, 0)
	harv := GenerateHarvestingTrace(p, 99, 30, 2)

	base := StructConfig(L2, DefaultHierarchyParams())
	drop := func(pol PolicyKind) float64 {
		cfg := base
		cfg.Policy = pol
		a := SimulateTrace(cfg, noHarv)
		b := SimulateTrace(cfg, harv)
		// Compare only primary-side behaviour via shared hit rates.
		ha := float64(a.SharedHits) / float64(a.SharedHits+a.SharedMisses)
		hb := float64(b.SharedHits) / float64(b.SharedHits+b.SharedMisses)
		return ha - hb
	}
	lruDrop, hhDrop := drop(PolicyLRU), drop(PolicyHardHarvest)
	t.Logf("shared-hit-rate drop due to harvesting: LRU=%.4f HH=%.4f", lruDrop, hhDrop)
	if hhDrop >= lruDrop {
		t.Errorf("HardHarvest drop %.4f should be below LRU drop %.4f", hhDrop, lruDrop)
	}
}
