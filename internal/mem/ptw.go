package mem

import "hardharvest/internal/sim"

// Page-table walker model: an L2 TLB miss triggers a 4-level radix walk
// (PML4 -> PDPT -> PD -> PT on x86-64). Hardware page-walk caches (PWCs)
// hold the upper-level entries, so most walks only fetch the leaf PTE. The
// walker refines the flat L2-TLB miss penalty used by the simpler model.

// WalkerConfig sizes the page-walk caches and memory latencies.
type WalkerConfig struct {
	// Levels is the radix-tree depth (4 for x86-64 4 KiB pages).
	Levels int
	// PWCEntries is the per-level page-walk-cache capacity (levels above
	// the leaf; the leaf PTE is never PWC-cached).
	PWCEntries int
	// PWCLatency is a PWC hit.
	PWCLatency sim.Duration
	// StepLatency is one page-table fetch from the cache hierarchy when
	// the PWC misses (PTEs usually hit in L2/LLC).
	StepLatency sim.Duration
}

// DefaultWalkerConfig returns a Sunny Cove-like walker: 4 levels, 32-entry
// PWCs, 2-cycle PWC hits, 40-cycle table fetches.
func DefaultWalkerConfig() WalkerConfig {
	return WalkerConfig{
		Levels:      4,
		PWCEntries:  32,
		PWCLatency:  sim.Cycles(2),
		StepLatency: sim.Cycles(40),
	}
}

// PageWalker performs walks and tracks PWC contents per level.
type PageWalker struct {
	cfg  WalkerConfig
	pwcs []*Cache // one per non-leaf level
	// Stats.
	walks   uint64
	pwcHits uint64
	fetches uint64
}

// NewPageWalker builds a walker with cold page-walk caches.
func NewPageWalker(cfg WalkerConfig) *PageWalker {
	if cfg.Levels < 2 || cfg.PWCEntries <= 0 {
		panic("mem: invalid walker config")
	}
	w := &PageWalker{cfg: cfg}
	for l := 0; l < cfg.Levels-1; l++ {
		sets := 1
		ways := cfg.PWCEntries
		if cfg.PWCEntries >= 8 {
			sets = cfg.PWCEntries / 8
			ways = 8
		}
		// Round sets down to a power of two.
		for sets&(sets-1) != 0 {
			sets--
		}
		w.pwcs = append(w.pwcs, New(Config{
			Name: "PWC", Sets: sets, Ways: ways, LineBytes: 1,
			Policy: PolicyLRU,
		}))
	}
	return w
}

// levelTag computes the page-table-entry identity covering addr at the
// given level: level 0 (root) covers 512 GiB regions, the last PWC level
// covers 2 MiB regions.
func levelTag(addr uint64, level, levels int) uint64 {
	// 4 KiB pages, 9 bits per level: leaf covers 12 bits, each level above
	// adds 9.
	shift := uint(12 + 9*(levels-1-level))
	return addr >> shift
}

// Walk performs one page walk for addr and returns its latency. Upper
// levels that hit in the PWC are skipped; every level below the deepest
// PWC hit is fetched from the memory hierarchy.
func (w *PageWalker) Walk(addr uint64) sim.Duration {
	w.walks++
	var lat sim.Duration
	// Find the deepest PWC level that hits; all levels above are skipped
	// too (the PWC caches the translation prefix).
	start := 0
	for l := len(w.pwcs) - 1; l >= 0; l-- {
		tag := levelTag(addr, l, w.cfg.Levels)
		if w.pwcs[l].Probe(tag) {
			start = l + 1
			break
		}
	}
	lat += w.cfg.PWCLatency // PWC lookup happens regardless
	if start > 0 {
		w.pwcHits++
	}
	// Fetch the remaining levels and fill the PWCs.
	for l := start; l < w.cfg.Levels; l++ {
		lat += w.cfg.StepLatency
		w.fetches++
		if l < len(w.pwcs) {
			w.pwcs[l].Access(levelTag(addr, l, w.cfg.Levels), false)
		}
	}
	return lat
}

// Stats reports walk counts, PWC hits, and total table fetches.
func (w *PageWalker) Stats() (walks, pwcHits, fetches uint64) {
	return w.walks, w.pwcHits, w.fetches
}

// Flush empties the page-walk caches (they hold translations, so cross-VM
// switches must clear them like the TLBs).
func (w *PageWalker) Flush() {
	for _, c := range w.pwcs {
		c.FlushAll()
	}
}
