package mem

// Trace-based simulation: a common event stream that every replacement
// policy (including the offline-optimal Belady) can be run against, so that
// Figure 14's policy comparison is apples-to-apples.

// EventKind discriminates trace events.
type EventKind int

const (
	// EvAccess is a memory access.
	EvAccess EventKind = iota
	// EvFlushHarvest invalidates the harvest region (HardHarvest cross-VM
	// transition).
	EvFlushHarvest
	// EvFlushAll invalidates the whole structure (software-baseline cross-VM
	// transition).
	EvFlushAll
	// EvSetRegion switches the accessible region.
	EvSetRegion
)

// TraceEvent is one step of a trace.
type TraceEvent struct {
	Kind   EventKind
	Addr   uint64
	Shared bool
	Region Region // for EvSetRegion
}

// Trace is an ordered event stream.
type Trace []TraceEvent

// Append helpers keep generator code readable.

// AddAccess appends an access event.
func (t *Trace) AddAccess(addr uint64, shared bool) {
	*t = append(*t, TraceEvent{Kind: EvAccess, Addr: addr, Shared: shared})
}

// AddFlushHarvest appends a harvest-region flush.
func (t *Trace) AddFlushHarvest() { *t = append(*t, TraceEvent{Kind: EvFlushHarvest}) }

// AddFlushAll appends a full flush.
func (t *Trace) AddFlushAll() { *t = append(*t, TraceEvent{Kind: EvFlushAll}) }

// AddSetRegion appends a region switch.
func (t *Trace) AddSetRegion(r Region) { *t = append(*t, TraceEvent{Kind: EvSetRegion, Region: r}) }

// Accesses counts access events in the trace.
func (t Trace) Accesses() int {
	n := 0
	for _, e := range t {
		if e.Kind == EvAccess {
			n++
		}
	}
	return n
}

// SimulateTrace runs a trace against a fresh structure with the given config
// and returns the final stats. PolicyBelady is dispatched to the offline
// simulator; online policies run through Cache.
func SimulateTrace(cfg Config, trace Trace) Stats {
	if cfg.Policy == PolicyBelady {
		return simulateBelady(cfg, trace)
	}
	c := New(cfg)
	for _, e := range trace {
		switch e.Kind {
		case EvAccess:
			c.Access(e.Addr, e.Shared)
		case EvFlushHarvest:
			c.FlushHarvestRegion()
		case EvFlushAll:
			c.FlushAll()
		case EvSetRegion:
			c.SetRegion(e.Region)
		}
	}
	return c.Stats()
}

// simulateBelady implements offline optimal-style replacement (evict the
// line whose next use is farthest in the future) over the same event
// semantics as Cache, restricted like the online policies to the accessible
// region. It is flush-aware: an entry sitting in a harvest way whose next
// use falls after the next harvest-region flush is dead (it will be
// invalidated before it can hit), and likewise for any entry across a full
// flush. Placement of fills follows the same region steering available to
// the hardware (shared entries prefer non-harvest ways) so that the bound
// reflects what an ideal policy could do on this hardware.
func simulateBelady(cfg Config, trace Trace) Stats {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	setShift := uint(0)
	for s := int64(1); s < cfg.LineBytes; s <<= 1 {
		setShift++
	}
	setBits := bitsFor(cfg.Sets)
	lineOf := func(addr uint64) uint64 { return addr >> setShift }
	setOf := func(addr uint64) int { return int(lineOf(addr) & uint64(cfg.Sets-1)) }
	tagOf := func(addr uint64) uint64 { return lineOf(addr) >> uint(setBits) }

	// Precompute, for each access index, the index of the next access to the
	// same line (or "infinity"), and for each position the index of the next
	// harvest-region flush and full flush.
	const never = int(^uint(0) >> 1)
	next := make([]int, len(trace))
	last := make(map[uint64]int, 1024)
	nextHarvFlush := make([]int, len(trace)+1)
	nextFullFlush := make([]int, len(trace)+1)
	nextHarvFlush[len(trace)] = never
	nextFullFlush[len(trace)] = never
	for i := len(trace) - 1; i >= 0; i-- {
		nextHarvFlush[i] = nextHarvFlush[i+1]
		nextFullFlush[i] = nextFullFlush[i+1]
		switch trace[i].Kind {
		case EvFlushHarvest:
			nextHarvFlush[i] = i
		case EvFlushAll:
			nextFullFlush[i] = i
			nextHarvFlush[i] = i // a full flush also wipes the harvest ways
		case EvAccess:
			l := lineOf(trace[i].Addr)
			if j, ok := last[l]; ok {
				next[i] = j
			} else {
				next[i] = never
			}
			last[l] = i
			continue
		}
		next[i] = never
	}

	type bentry struct {
		tag     uint64
		valid   bool
		nextUse int
	}
	sets := make([][]bentry, cfg.Sets)
	for i := range sets {
		sets[i] = make([]bentry, cfg.Ways)
	}
	isHarvestWay := func(w int) bool { return w >= cfg.Ways-cfg.HarvestWays }
	region := RegionAll
	var stats Stats

	for i, e := range trace {
		switch e.Kind {
		case EvSetRegion:
			region = e.Region
		case EvFlushAll:
			for s := range sets {
				for w := range sets[s] {
					if sets[s][w].valid {
						sets[s][w] = bentry{}
						stats.Invalidations++
					}
				}
			}
		case EvFlushHarvest:
			for s := range sets {
				for w := range sets[s] {
					if isHarvestWay(w) && sets[s][w].valid {
						sets[s][w] = bentry{}
						stats.Invalidations++
					}
				}
			}
		case EvAccess:
			stats.Accesses++
			set := sets[setOf(e.Addr)]
			tag := tagOf(e.Addr)
			lo, hi := 0, cfg.Ways
			if region == RegionHarvest {
				lo = cfg.Ways - cfg.HarvestWays
			}
			hitWay := -1
			for w := lo; w < hi; w++ {
				if set[w].valid && set[w].tag == tag {
					hitWay = w
					break
				}
			}
			if hitWay >= 0 {
				stats.Hits++
				if e.Shared {
					stats.SharedHits++
				} else {
					stats.PrivateHits++
				}
				set[hitWay].nextUse = next[i]
				continue
			}
			stats.Misses++
			if e.Shared {
				stats.SharedMisses++
			} else {
				stats.PrivateMisses++
			}
			// Effective utility of a resident entry: its next use, unless a
			// flush of its way's region comes first, in which case it is
			// dead (never).
			effAt := func(nu int, w int) int {
				if isHarvestWay(w) {
					if nu > nextHarvFlush[i] {
						return never
					}
				} else if nu > nextFullFlush[i] {
					return never
				}
				return nu
			}
			// Fill an empty way if possible, preferring a way where the
			// incoming line survives until its next use, then steering by
			// class like the hardware can (shared→non-harvest,
			// private→harvest).
			victim := -1
			bestScore := -1
			for w := lo; w < hi; w++ {
				if set[w].valid {
					continue
				}
				score := 1 // any empty way
				if effAt(next[i], w) != never {
					score += 2 // line survives here
				}
				if e.Shared != isHarvestWay(w) {
					score++ // preferred region for the class
				}
				if score > bestScore {
					victim, bestScore = w, score
				}
			}
			if victim >= 0 {
				set[victim] = bentry{tag: tag, valid: true, nextUse: next[i]}
				continue
			}
			// Eviction: the resident with the farthest effective next use,
			// bypassing the fill when the incoming line would be no more
			// useful in that way than its current occupant.
			worst := -1
			for w := lo; w < hi; w++ {
				if eff := effAt(set[w].nextUse, w); eff > worst {
					victim, worst = w, eff
				}
			}
			if victim < 0 || effAt(next[i], victim) >= worst {
				continue
			}
			stats.Evictions++
			set[victim] = bentry{tag: tag, valid: true, nextUse: next[i]}
		}
	}
	return stats
}
