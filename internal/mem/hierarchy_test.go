package mem

import (
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestTable1Shapes(t *testing.T) {
	p := DefaultHierarchyParams()
	cases := []struct {
		kind    StructKind
		bytes   int64
		entries int
		ways    int
	}{
		{L1D, 48 * 1024, 0, 12},
		{L1I, 32 * 1024, 0, 8},
		{L2, 512 * 1024, 0, 8},
		{L1TLB, 0, 128, 4},
		{L2TLB, 0, 2048, 8},
	}
	for _, c := range cases {
		cfg := StructConfig(c.kind, p)
		if c.bytes > 0 && cfg.SizeBytes() != c.bytes {
			t.Errorf("%v size = %d, want %d", c.kind, cfg.SizeBytes(), c.bytes)
		}
		if c.entries > 0 && cfg.Entries() != c.entries {
			t.Errorf("%v entries = %d, want %d", c.kind, cfg.Entries(), c.entries)
		}
		if cfg.Ways != c.ways {
			t.Errorf("%v ways = %d, want %d", c.kind, cfg.Ways, c.ways)
		}
		if cfg.HarvestWays != c.ways/2 {
			t.Errorf("%v harvest ways = %d, want %d", c.kind, cfg.HarvestWays, c.ways/2)
		}
	}
}

func TestWayScaling(t *testing.T) {
	p := DefaultHierarchyParams()
	p.WayFraction = 0.5
	cfg := StructConfig(L1D, p)
	if cfg.Ways != 6 {
		t.Fatalf("scaled L1D ways = %d, want 6", cfg.Ways)
	}
	p.WayFraction = 0.25
	cfg = StructConfig(L1TLB, p)
	if cfg.Ways != 1 {
		t.Fatalf("scaled L1TLB ways = %d, want 1", cfg.Ways)
	}
	if cfg.HarvestWays > cfg.Ways {
		t.Fatal("harvest ways exceed ways after scaling")
	}
	// Zero/negative fraction defaults to full size.
	p.WayFraction = 0
	if StructConfig(L2, p).Ways != 8 {
		t.Fatal("zero fraction should default to full ways")
	}
}

func TestHierarchyAccessPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	// First access: TLB miss + L1D miss + L2 miss + memory.
	lat1 := h.AccessData(0x1000, true, false)
	// Second access to the same line: everything hits.
	lat2 := h.AccessData(0x1000, true, false)
	if lat2 >= lat1 {
		t.Fatalf("warm access %v should be faster than cold %v", lat2, lat1)
	}
	wantWarm := sim.Cycles(2) + sim.Cycles(5) // L1TLB hit + L1D hit
	if lat2 != wantWarm {
		t.Fatalf("warm latency = %v, want %v", lat2, wantWarm)
	}
	if h.L1D.Stats().Hits != 1 || h.L1TLB.Stats().Hits != 1 {
		t.Fatalf("hierarchy stats: L1D=%+v L1TLB=%+v", h.L1D.Stats(), h.L1TLB.Stats())
	}
}

func TestHierarchyInstructionPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	h.AccessData(0x2000, true, true)
	if h.L1I.Stats().Accesses != 1 {
		t.Fatal("instruction access did not touch L1I")
	}
	if h.L1D.Stats().Accesses != 0 {
		t.Fatal("instruction access touched L1D")
	}
}

func TestHierarchyFlushAndRegion(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	for i := 0; i < 100; i++ {
		h.AccessData(uint64(i)*64, i%2 == 0, false)
	}
	h.SetRegion(RegionHarvest)
	for _, c := range h.All() {
		if c.Region() != RegionHarvest {
			t.Fatalf("%s region not switched", c.Config().Name)
		}
	}
	n := h.FlushHarvestRegion()
	if n == 0 {
		t.Fatal("harvest flush invalidated nothing")
	}
	total := h.FlushAll()
	if total == 0 {
		t.Fatal("full flush invalidated nothing")
	}
	nh, hv := h.L1D.OccupiedEntries()
	if nh+hv != 0 {
		t.Fatal("entries remain after full flush")
	}
}

func TestHierarchyTotalStatsAndReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	h.AccessData(0x42, false, false)
	s := h.TotalStats()
	if s.Accesses == 0 {
		t.Fatal("TotalStats empty after access")
	}
	h.ResetStats()
	if h.TotalStats().Accesses != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestStreamGenShapes(t *testing.T) {
	p := DefaultStreamParams()
	g := NewStreamGen(p, stats.NewRNG(5))
	var tr Trace
	g.AppendInvocation(&tr)
	if tr.Accesses() != p.AccessesPerInvocation {
		t.Fatalf("accesses = %d, want %d", tr.Accesses(), p.AccessesPerInvocation)
	}
	shared, private := 0, 0
	for _, e := range tr {
		if e.Kind != EvAccess {
			continue
		}
		if e.Shared {
			shared++
			if e.Addr < sharedBase || e.Addr >= privateBase {
				t.Fatalf("shared access outside shared space: %#x", e.Addr)
			}
		} else {
			private++
			if e.Addr < privateBase || e.Addr >= harvestBase {
				t.Fatalf("private access outside private space: %#x", e.Addr)
			}
		}
	}
	frac := float64(shared) / float64(shared+private)
	if frac < p.SharedFrac-0.05 || frac > p.SharedFrac+0.05 {
		t.Fatalf("shared fraction = %.3f, want ~%.2f", frac, p.SharedFrac)
	}
}

func TestStreamGenHarvestEpisode(t *testing.T) {
	p := DefaultStreamParams()
	g := NewStreamGen(p, stats.NewRNG(6))
	var tr Trace
	g.AppendHarvestEpisode(&tr)
	if tr[0].Kind != EvFlushHarvest {
		t.Fatal("episode must start with a harvest flush (side-channel rule)")
	}
	if tr[1].Kind != EvSetRegion || tr[1].Region != RegionHarvest {
		t.Fatal("episode must switch to the harvest region")
	}
	last := tr[len(tr)-1]
	if last.Kind != EvFlushHarvest {
		t.Fatal("episode must end with the return-path harvest flush")
	}
	if tr[len(tr)-2].Kind != EvSetRegion || tr[len(tr)-2].Region != RegionAll {
		t.Fatal("episode must restore the full region for the Primary VM")
	}
	for _, e := range tr {
		if e.Kind == EvAccess && e.Addr < harvestBase {
			t.Fatalf("harvest access in primary space: %#x", e.Addr)
		}
	}
}

func TestGenerateHarvestingTraceDeterminism(t *testing.T) {
	p := DefaultStreamParams()
	a := GenerateHarvestingTrace(p, 7, 5, 2)
	b := GenerateHarvestingTrace(p, 7, 5, 2)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := GenerateHarvestingTrace(p, 8, 5, 2)
	same := true
	if len(a) == len(c) {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestStructKindString(t *testing.T) {
	names := map[StructKind]string{L1D: "L1D", L1I: "L1I", L2: "L2", L1TLB: "L1TLB", L2TLB: "L2TLB"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", k, k.String(), want)
		}
	}
	if StructKind(42).String() != "?" {
		t.Error("unknown kind string")
	}
}
