package mem

import "hardharvest/internal/sim"

// Table 1 structure configurations for the modeled Sunny Cove-like core.
// Latencies are round trips in cycles at 3 GHz.

// StructKind names a private structure of the core.
type StructKind int

const (
	// L1D is the L1 data cache.
	L1D StructKind = iota
	// L1I is the L1 instruction cache.
	L1I
	// L2 is the unified private L2 cache.
	L2
	// L1TLB is the first-level TLB.
	L1TLB
	// L2TLB is the second-level unified TLB.
	L2TLB
	numStructs
)

func (k StructKind) String() string {
	switch k {
	case L1D:
		return "L1D"
	case L1I:
		return "L1I"
	case L2:
		return "L2"
	case L1TLB:
		return "L1TLB"
	case L2TLB:
		return "L2TLB"
	default:
		return "?"
	}
}

// HierarchyParams scale the default Table 1 configuration, for the paper's
// sensitivity studies (Figure 7 shrinks the ways of every structure; Figure
// 19 varies the eviction-candidate fraction).
type HierarchyParams struct {
	Policy PolicyKind
	// WayFraction scales the number of ways of every structure (1.0, 0.75,
	// 0.5, 0.25 in Figure 7). Values <= 0 default to 1.
	WayFraction float64
	// HarvestFraction is the fraction of (scaled) ways in the harvest
	// region (Table 1: 0.5).
	HarvestFraction float64
	// EvictionCandidateFrac is M (Table 1: 0.75).
	EvictionCandidateFrac float64
	// L3MissLatency is the memory round trip beyond the LLC.
	L3MissLatency sim.Duration
	// UseWalker replaces the flat L2-TLB miss penalty with a modeled
	// 4-level page walk through page-walk caches.
	UseWalker bool
}

// DefaultHierarchyParams returns the Table 1 defaults with the HardHarvest
// policy.
func DefaultHierarchyParams() HierarchyParams {
	return HierarchyParams{
		Policy:                PolicyHardHarvest,
		WayFraction:           1.0,
		HarvestFraction:       0.5,
		EvictionCandidateFrac: 0.75,
		L3MissLatency:         sim.Cycles(220), // DDR4-3200 round trip
	}
}

func scaleWays(ways int, frac float64) int {
	if frac <= 0 {
		frac = 1
	}
	w := int(float64(ways)*frac + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}

func harvestWays(ways int, frac float64) int {
	h := int(float64(ways)*frac + 0.5)
	if h < 0 {
		h = 0
	}
	if h > ways {
		h = ways
	}
	return h
}

// StructConfig returns the Table 1 configuration for one structure under the
// given parameters.
func StructConfig(kind StructKind, p HierarchyParams) Config {
	base := map[StructKind]Config{
		// 48KB, 12-way, 5-cycle RT, 64B lines.
		L1D: {Name: "L1D", Sets: 64, Ways: 12, LineBytes: 64, HitLatency: sim.Cycles(5), MissPenalty: sim.Cycles(8)},
		// 32KB, 8-way, 5-cycle RT, 64B lines.
		L1I: {Name: "L1I", Sets: 64, Ways: 8, LineBytes: 64, HitLatency: sim.Cycles(5), MissPenalty: sim.Cycles(8)},
		// 512KB, 8-way, 13-cycle RT.
		L2: {Name: "L2", Sets: 1024, Ways: 8, HitLatency: sim.Cycles(13), LineBytes: 64, MissPenalty: sim.Cycles(23)},
		// 128 entries, 4-way, 2-cycle RT, 4KB pages.
		L1TLB: {Name: "L1TLB", Sets: 32, Ways: 4, LineBytes: 4096, HitLatency: sim.Cycles(2), MissPenalty: sim.Cycles(10)},
		// 2048 entries, 8-way, 12-cycle RT.
		L2TLB: {Name: "L2TLB", Sets: 256, Ways: 8, LineBytes: 4096, HitLatency: sim.Cycles(12), MissPenalty: sim.Cycles(30)},
	}[kind]
	base.Ways = scaleWays(base.Ways, p.WayFraction)
	base.Policy = p.Policy
	base.HarvestWays = harvestWays(base.Ways, p.HarvestFraction)
	base.EvictionCandidateFrac = p.EvictionCandidateFrac
	return base
}

// Hierarchy bundles the five private structures of a core and computes a
// simple average-memory-access-time model from their hit rates.
type Hierarchy struct {
	L1D, L1I, L2, L1TLB, L2TLB *Cache
	Walker                     *PageWalker
	params                     HierarchyParams
}

// NewHierarchy builds the five structures under the given parameters.
func NewHierarchy(p HierarchyParams) *Hierarchy {
	h := &Hierarchy{
		L1D:    New(StructConfig(L1D, p)),
		L1I:    New(StructConfig(L1I, p)),
		L2:     New(StructConfig(L2, p)),
		L1TLB:  New(StructConfig(L1TLB, p)),
		L2TLB:  New(StructConfig(L2TLB, p)),
		params: p,
	}
	if p.UseWalker {
		h.Walker = NewPageWalker(DefaultWalkerConfig())
	}
	return h
}

// All returns the five structures in a fixed order.
func (h *Hierarchy) All() []*Cache {
	return []*Cache{h.L1D, h.L1I, h.L2, h.L1TLB, h.L2TLB}
}

// SetRegion switches the accessible region on every structure.
func (h *Hierarchy) SetRegion(r Region) {
	for _, c := range h.All() {
		c.SetRegion(r)
	}
}

// FlushAll invalidates every structure (and the page-walk caches, which
// also hold translations); returns total entries invalidated.
func (h *Hierarchy) FlushAll() int {
	n := 0
	for _, c := range h.All() {
		n += c.FlushAll()
	}
	if h.Walker != nil {
		h.Walker.Flush()
	}
	return n
}

// FlushHarvestRegion invalidates the harvest ways of every structure.
func (h *Hierarchy) FlushHarvestRegion() int {
	n := 0
	for _, c := range h.All() {
		n += c.FlushHarvestRegion()
	}
	return n
}

// AccessData performs a data access through L1TLB→L2TLB and L1D→L2,
// returning the total latency. isInstr selects the instruction path
// (L1I→L2). Addresses are physical in this model; the TLB is consulted on
// the page of the address.
func (h *Hierarchy) AccessData(addr uint64, shared, isInstr bool) sim.Duration {
	var lat sim.Duration
	page := addr &^ 4095
	if hit, l := h.L1TLB.Access(page, shared); hit {
		lat += l
	} else {
		lat += l // L1 TLB probe cost
		if hit2, l2 := h.L2TLB.Access(page, shared); hit2 {
			lat += l2
		} else if h.Walker != nil {
			lat += h.L2TLB.Config().HitLatency // probe before walking
			lat += h.Walker.Walk(addr)
		} else {
			lat += l2 // page walk folded into L2 TLB miss penalty
		}
	}
	l1 := h.L1D
	if isInstr {
		l1 = h.L1I
	}
	if hit, l := l1.Access(addr, shared); hit {
		return lat + l
	} else {
		lat += l
	}
	if hit, l := h.L2.Access(addr, shared); hit {
		return lat + l
	} else {
		lat += l
	}
	// LLC is modeled as a fixed extra latency plus memory beyond it; the LLC
	// itself is CAT-partitioned per VM and essentially always warm for the
	// small microservice footprints (§3), so we charge its round trip plus a
	// probabilistic memory access folded into L3MissLatency by the caller's
	// calibration.
	return lat + h.params.L3MissLatency
}

// TotalStats sums the stats of all five structures.
func (h *Hierarchy) TotalStats() Stats {
	var s Stats
	for _, c := range h.All() {
		s.Add(c.Stats())
	}
	return s
}

// ResetStats clears stats on all structures.
func (h *Hierarchy) ResetStats() {
	for _, c := range h.All() {
		c.ResetStats()
	}
}
