package hypervisor

import "hardharvest/internal/sim"

// SmartHarvest-style core-utilization prediction (§2.2, [88]): a user-space
// agent samples each Primary VM's busy-core count, predicts near-future
// demand, and lends cores above the prediction to the Harvest VM — while
// keeping some cores idle in an emergency buffer that Primary VMs can
// reclaim without paying the full re-assignment latency.

// Predictor tracks one Primary VM's demand from sampled busy-core counts.
// It maintains two EWMA signals per window: the window average (the CPU
// usage counters SmartHarvest-class agents consume) and the window peak.
// Software agents predict from the average — which is exactly why they
// mispredict microservice load: sub-millisecond bursts barely move the
// window average, so cores are lent right before they are needed and must
// be reclaimed on demand at full cost (§2, §3).
type Predictor struct {
	alpha     float64
	predAvg   float64
	predPeak  float64
	windowMax int
	windowSum int
	windowN   int
	primed    bool
}

// NewPredictor builds a predictor with smoothing factor alpha in (0, 1];
// larger alpha reacts faster.
func NewPredictor(alpha float64) *Predictor {
	if alpha <= 0 || alpha > 1 {
		panic("hypervisor: predictor alpha out of (0,1]")
	}
	return &Predictor{alpha: alpha}
}

// Observe records an instantaneous busy-core count within the current
// window.
func (p *Predictor) Observe(busy int) {
	if busy > p.windowMax {
		p.windowMax = busy
	}
	p.windowSum += busy
	p.windowN++
}

// EndWindow folds the window statistics into the predictions and starts a
// new window.
func (p *Predictor) EndWindow() {
	avg := 0.0
	if p.windowN > 0 {
		avg = float64(p.windowSum) / float64(p.windowN)
	}
	if !p.primed {
		p.predAvg = avg
		p.predPeak = float64(p.windowMax)
		p.primed = true
	} else {
		p.predAvg = p.alpha*avg + (1-p.alpha)*p.predAvg
		p.predPeak = p.alpha*float64(p.windowMax) + (1-p.alpha)*p.predPeak
	}
	p.windowMax = 0
	p.windowSum = 0
	p.windowN = 0
}

// Predicted reports the usage-based demand prediction (cores, fractional) —
// the signal the software agent acts on.
func (p *Predictor) Predicted() float64 { return p.predAvg }

// PredictedPeak reports the peak-holding prediction, for comparison.
func (p *Predictor) PredictedPeak() float64 { return p.predPeak }

// Harvester is the software harvesting agent for one server: it owns a
// predictor per Primary VM and the emergency buffer policy.
type Harvester struct {
	Costs    Costs
	Interval sim.Duration // prediction window length
	// BufferCores is the number of idle cores kept on stand-by per Primary
	// VM for emergency reclamation (SmartHarvest keeps idle cores in an
	// emergency buffer, lowering utilization).
	BufferCores int
	// Alpha is the EWMA smoothing of the demand predictor. Production
	// harvesting agents are tuned for minutes-scale monolithic load, so
	// the default adapts far too slowly for 50 ms microservice bursts —
	// the mismatch the paper exploits.
	Alpha float64

	preds map[int]*Predictor
}

// NewHarvester builds an agent with the given costs and a 1 ms prediction
// window.
func NewHarvester(costs Costs) *Harvester {
	return &Harvester{
		Costs:       costs,
		Interval:    sim.Millisecond,
		BufferCores: 1,
		Alpha:       0.08,
		preds:       make(map[int]*Predictor),
	}
}

func (h *Harvester) pred(vm int) *Predictor {
	p, ok := h.preds[vm]
	if !ok {
		p = NewPredictor(h.Alpha)
		h.preds[vm] = p
	}
	return p
}

// Observe records a busy-core sample for a Primary VM.
func (h *Harvester) Observe(vm, busy int) { h.pred(vm).Observe(busy) }

// EndWindow closes the current prediction window for every tracked VM.
func (h *Harvester) EndWindow() {
	for _, p := range h.preds {
		p.EndWindow()
	}
}

// Lendable reports how many of a Primary VM's bound cores the agent is
// willing to lend right now: cores above the predicted demand plus the
// emergency buffer.
func (h *Harvester) Lendable(vm, boundCores int) int {
	need := int(h.pred(vm).Predicted() + 0.999) // round demand up
	lend := boundCores - need - h.BufferCores
	if lend < 0 {
		return 0
	}
	return lend
}
