// Package hypervisor models the software substrate that HardHarvest replaces:
// hypervisor-mediated core re-assignment (detach/attach calls, global lock,
// IPI, cross-VM context load), wbinvd-style cache/TLB flushing, and the
// SmartHarvest-style utilization predictor with an emergency core buffer.
// The constants come from the paper's measurements (§3).
package hypervisor

import (
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// ReassignKind selects the software re-assignment implementation.
type ReassignKind int

const (
	// ReassignKVM is stock KVM cgroup-based detach/attach: ~5 ms per move,
	// half spent detaching/attaching and half loading the new VM context.
	ReassignKVM ReassignKind = iota
	// ReassignOpt is the SmartHarvest-optimized path: detach/attach cost
	// reduced to hundreds of microseconds.
	ReassignOpt
)

func (k ReassignKind) String() string {
	if k == ReassignKVM {
		return "kvm"
	}
	return "opt"
}

// Costs bundles every software-overhead constant the baselines charge.
type Costs struct {
	// KVMDetachAttach is the combined detach+attach hypercall cost under
	// stock KVM (§3: moving a core across VMs takes ~5 ms, half of it on
	// detach/attach).
	KVMDetachAttach sim.Duration
	// KVMContextLoad is the cross-VM context load under stock KVM (the
	// other half of the ~5 ms).
	KVMContextLoad sim.Duration
	// OptDetachAttach is the SmartHarvest-optimized detach+attach
	// (§3: 100s of microseconds).
	OptDetachAttach sim.Duration
	// OptContextLoad is the optimized context load.
	OptContextLoad sim.Duration

	// WbinvdMin/Max bound the wbinvd flush+invalidate latency
	// (§3: 300-500 us for a core's hierarchy).
	WbinvdMin sim.Duration
	WbinvdMax sim.Duration
	// FenceExtra is the additional wait for external caches to complete
	// write-back; the raw instruction does not wait for them, so a safe
	// implementation adds a fence (§3).
	FenceExtra sim.Duration

	// ColdExecutionFactor multiplies a request's CPU time when it starts on
	// cold caches/TLBs (§3: execution takes ~1.2x longer after a flush).
	ColdExecutionFactor float64
	// ColdWarmupCPUTime is how much executed CPU time it takes to re-warm
	// the structures, after which execution returns to the warm factor.
	ColdWarmupCPUTime sim.Duration

	// PollInterval is how often a software scheduler's polling core
	// discovers newly ready work (no hardware notification, §4.1.6).
	PollInterval sim.Duration
}

// DefaultCosts returns the paper's measured constants.
func DefaultCosts() Costs {
	return Costs{
		KVMDetachAttach: 2500 * sim.Microsecond,
		KVMContextLoad:  2500 * sim.Microsecond,
		OptDetachAttach: 250 * sim.Microsecond,
		OptContextLoad:  100 * sim.Microsecond,

		WbinvdMin:  300 * sim.Microsecond,
		WbinvdMax:  500 * sim.Microsecond,
		FenceExtra: 100 * sim.Microsecond,

		ColdExecutionFactor: 1.2,
		ColdWarmupCPUTime:   100 * sim.Microsecond,

		PollInterval: 5 * sim.Microsecond,
	}
}

// ReassignCost reports the software cost of moving a core across VMs under
// the given implementation, excluding flushes.
func (c Costs) ReassignCost(k ReassignKind) sim.Duration {
	if k == ReassignKVM {
		return c.KVMDetachAttach + c.KVMContextLoad
	}
	return c.OptDetachAttach + c.OptContextLoad
}

// FlushCost samples one wbinvd flush+fence latency.
func (c Costs) FlushCost(rng *stats.RNG) sim.Duration {
	span := int64(c.WbinvdMax - c.WbinvdMin)
	var jitter sim.Duration
	if span > 0 {
		jitter = sim.Duration(rng.Int63n(span))
	}
	return c.WbinvdMin + jitter + c.FenceExtra
}
