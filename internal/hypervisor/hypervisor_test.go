package hypervisor

import (
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestReassignCosts(t *testing.T) {
	c := DefaultCosts()
	// Stock KVM: ~5 ms per move (§3).
	if got := c.ReassignCost(ReassignKVM); got != 5*sim.Millisecond {
		t.Fatalf("KVM reassign = %v", got)
	}
	// Optimized: hundreds of microseconds.
	opt := c.ReassignCost(ReassignOpt)
	if opt < 100*sim.Microsecond || opt > sim.Millisecond {
		t.Fatalf("Opt reassign = %v, want 100us-1ms", opt)
	}
	if opt >= c.ReassignCost(ReassignKVM) {
		t.Fatal("optimized path should be cheaper than KVM")
	}
}

func TestFlushCostRange(t *testing.T) {
	c := DefaultCosts()
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := c.FlushCost(rng)
		lo := c.WbinvdMin + c.FenceExtra
		hi := c.WbinvdMax + c.FenceExtra
		if f < lo || f > hi {
			t.Fatalf("flush cost %v outside [%v,%v]", f, lo, hi)
		}
	}
}

func TestFlushCostZeroSpan(t *testing.T) {
	c := DefaultCosts()
	c.WbinvdMax = c.WbinvdMin
	f := c.FlushCost(stats.NewRNG(2))
	if f != c.WbinvdMin+c.FenceExtra {
		t.Fatalf("flush = %v", f)
	}
}

func TestReassignKindString(t *testing.T) {
	if ReassignKVM.String() != "kvm" || ReassignOpt.String() != "opt" {
		t.Fatal("kind strings")
	}
}

func TestPredictorPrimesOnFirstWindow(t *testing.T) {
	p := NewPredictor(0.3)
	p.Observe(3)
	p.Observe(1)
	p.EndWindow()
	if p.Predicted() != 2 {
		t.Fatalf("primed usage prediction = %v, want window average 2", p.Predicted())
	}
	if p.PredictedPeak() != 3 {
		t.Fatalf("primed peak prediction = %v, want window max 3", p.PredictedPeak())
	}
}

func TestPredictorEWMAConverges(t *testing.T) {
	p := NewPredictor(0.5)
	for i := 0; i < 20; i++ {
		p.Observe(4)
		p.EndWindow()
	}
	if got := p.Predicted(); got < 3.99 || got > 4.01 {
		t.Fatalf("steady prediction = %v", got)
	}
	// Demand drops to 1: prediction decays but stays conservative at first.
	p.Observe(1)
	p.EndWindow()
	if got := p.Predicted(); got <= 1 || got >= 4 {
		t.Fatalf("post-drop prediction = %v, want (1,4)", got)
	}
}

func TestPredictorMissesMicroBursts(t *testing.T) {
	p := NewPredictor(0.5)
	// Bursty window: mostly 0 busy cores, one spike of 4. The usage-based
	// prediction barely moves — the failure mode the paper exploits — while
	// the peak signal sees the burst.
	for i := 0; i < 99; i++ {
		p.Observe(0)
	}
	p.Observe(4)
	p.EndWindow()
	if p.Predicted() > 0.5 {
		t.Fatalf("usage prediction = %v, should miss the micro-burst", p.Predicted())
	}
	if p.PredictedPeak() != 4 {
		t.Fatalf("peak prediction = %v, want 4", p.PredictedPeak())
	}
}

func TestPredictorPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v should panic", a)
				}
			}()
			NewPredictor(a)
		}()
	}
}

func TestHarvesterLendable(t *testing.T) {
	h := NewHarvester(DefaultCosts())
	// Prime VM 1 at demand 1 of 4 cores.
	for i := 0; i < 10; i++ {
		h.Observe(1, 1)
		h.EndWindow()
	}
	// 4 bound - 1 predicted - 1 buffer = 2 lendable.
	if got := h.Lendable(1, 4); got != 2 {
		t.Fatalf("lendable = %d, want 2", got)
	}
	// High demand: nothing to lend, never negative.
	for i := 0; i < 10; i++ {
		h.Observe(1, 4)
		h.EndWindow()
	}
	if got := h.Lendable(1, 4); got != 0 {
		t.Fatalf("lendable at full demand = %d", got)
	}
}

func TestHarvesterBufferReducesLending(t *testing.T) {
	h := NewHarvester(DefaultCosts())
	for i := 0; i < 10; i++ {
		h.Observe(1, 0)
		h.EndWindow()
	}
	withBuffer := h.Lendable(1, 4)
	h.BufferCores = 0
	noBuffer := h.Lendable(1, 4)
	if noBuffer != withBuffer+1 {
		t.Fatalf("buffer accounting: with=%d without=%d", withBuffer, noBuffer)
	}
	if noBuffer != 4 {
		t.Fatalf("idle VM should lend all cores without buffer, got %d", noBuffer)
	}
}

func TestHarvesterUnknownVMIsConservative(t *testing.T) {
	h := NewHarvester(DefaultCosts())
	// Never-observed VM: prediction 0, lend bound - buffer.
	if got := h.Lendable(9, 4); got != 3 {
		t.Fatalf("lendable for fresh VM = %d", got)
	}
}
