package llc

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(2, 4) // ways 2-5
	if m.Ways() != 4 {
		t.Fatalf("ways = %d", m.Ways())
	}
	if !m.Contiguous() {
		t.Fatal("contiguous run reported non-contiguous")
	}
	if Mask(0).Contiguous() {
		t.Fatal("empty mask reported contiguous")
	}
	if Mask(0b1011).Contiguous() {
		t.Fatal("gapped mask reported contiguous")
	}
	if !m.Overlaps(NewMask(5, 1)) {
		t.Fatal("overlap missed")
	}
	if m.Overlaps(NewMask(6, 2)) {
		t.Fatal("false overlap")
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestPaperServerPartitioning(t *testing.T) {
	// 8 Primary VMs x 4 cores + 1 Harvest VM x 4 cores over 16 ways:
	// every VM gets at least 1 way and the ways are fully covered.
	p := NewPartitioner(DefaultConfig())
	for vm := 1; vm <= 9; vm++ {
		if err := p.AddVM(vm, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	totalWays := 0
	for vm := 1; vm <= 9; vm++ {
		m, ok := p.MaskOf(vm)
		if !ok || m.Ways() < 1 {
			t.Fatalf("VM %d mask missing/empty", vm)
		}
		totalWays += m.Ways()
	}
	if totalWays != 16 {
		t.Fatalf("ways covered = %d, want 16", totalWays)
	}
	// Equal cores -> shares differ by at most one way.
	lo, hi := 99, 0
	for vm := 1; vm <= 9; vm++ {
		m, _ := p.MaskOf(vm)
		if m.Ways() < lo {
			lo = m.Ways()
		}
		if m.Ways() > hi {
			hi = m.Ways()
		}
	}
	if hi-lo > 1 {
		t.Fatalf("imbalanced equal shares: %d..%d", lo, hi)
	}
}

func TestProportionalShares(t *testing.T) {
	p := NewPartitioner(DefaultConfig())
	p.AddVM(1, 12)
	p.AddVM(2, 4)
	m1, _ := p.MaskOf(1)
	m2, _ := p.MaskOf(2)
	if m1.Ways() <= m2.Ways() {
		t.Fatalf("12-core VM got %d ways vs 4-core VM's %d", m1.Ways(), m2.Ways())
	}
	if p.PartitionKB(1) <= p.PartitionKB(2) {
		t.Fatal("capacity shares not proportional")
	}
	if p.PartitionKB(99) != 0 {
		t.Fatal("unknown VM capacity")
	}
}

func TestAddRemoveErrors(t *testing.T) {
	p := NewPartitioner(DefaultConfig())
	if err := p.AddVM(1, 0); err == nil {
		t.Fatal("zero cores should fail")
	}
	if err := p.AddVM(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddVM(1, 4); err == nil {
		t.Fatal("duplicate VM should fail")
	}
	if err := p.RemoveVM(9); err == nil {
		t.Fatal("unknown VM removal should fail")
	}
	if err := p.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	// After removal another VM takes the whole cache.
	p.AddVM(2, 4)
	m, _ := p.MaskOf(2)
	if m.Ways() != 16 {
		t.Fatalf("sole VM ways = %d", m.Ways())
	}
}

func TestTooManyVMs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 2
	p := NewPartitioner(cfg)
	p.AddVM(1, 1)
	p.AddVM(2, 1)
	if err := p.AddVM(3, 1); err == nil {
		t.Fatal("more VMs than ways should fail")
	}
}

// Property: any sequence of adds/removes keeps the CAT invariants.
func TestPartitionInvariantsProperty(t *testing.T) {
	f := func(ops []struct {
		Cores  uint8
		Remove bool
	}) bool {
		p := NewPartitioner(DefaultConfig())
		next := 1
		active := []int{}
		for _, op := range ops {
			if op.Remove && len(active) > 0 {
				vm := active[0]
				active = active[1:]
				if err := p.RemoveVM(vm); err != nil {
					return false
				}
			} else if len(active) < 16 {
				cores := int(op.Cores)%8 + 1
				if err := p.AddVM(next, cores); err != nil {
					return false
				}
				active = append(active, next)
				next++
			}
			if err := p.Validate(); err != nil {
				t.Log(err)
				return false
			}
			// Every active VM holds at least one way.
			for _, vm := range active {
				m, ok := p.MaskOf(vm)
				if !ok || m.Ways() < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateQueriesAllocFree pins the hot-path audit: once the
// partition layout is settled, mask queries (the operations a simulation
// could issue per event) allocate nothing. Rebalancing itself allocates, but
// it only runs on AddVM/RemoveVM — reconfiguration, not event processing.
func TestSteadyStateQueriesAllocFree(t *testing.T) {
	p := NewPartitioner(DefaultConfig())
	for vm := 0; vm < 9; vm++ {
		if err := p.AddVM(vm, 4); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for vm := 0; vm < 9; vm++ {
			m, ok := p.MaskOf(vm)
			if !ok || m.Ways() < 1 || !m.Contiguous() {
				t.Fatal("bad mask")
			}
			if p.PartitionKB(vm) <= 0 {
				t.Fatal("bad partition size")
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state queries allocate %.1f per sweep, want 0", avg)
	}
}

func TestNewMaskMatchesBitLoop(t *testing.T) {
	for lo := 0; lo < 32; lo++ {
		for n := 0; lo+n <= 32; n++ {
			var want Mask
			for i := lo; i < lo+n; i++ {
				want |= 1 << uint(i)
			}
			if got := NewMask(lo, n); got != want {
				t.Fatalf("NewMask(%d,%d) = %v, want %v", lo, n, got, want)
			}
		}
	}
}
