// Package llc models the shared last-level cache's CAT-style way
// partitioning (§2.3, §4.2.1): the LLC is divided into one partition per VM
// using Intel Cache Allocation Technology class-of-service bitmasks, so the
// LLC never needs to be flushed on a core re-assignment — each VM only ever
// sees its own ways. The partitioner allocates contiguous way ranges
// proportional to VM core counts, mirroring how the RQ chunks are shared.
package llc

import (
	"fmt"
	"math/bits"
	"sort"
)

// Config describes the shared LLC (Table 1: 2 MB x 16 ways per core slice;
// the CAT masks span the ways).
type Config struct {
	// Ways is the associativity the CAT bitmask covers.
	Ways int
	// SliceKB is the capacity of one per-core LLC slice.
	SliceKB int
	// Slices is the number of LLC slices (one per core).
	Slices int
}

// DefaultConfig returns the Table 1 LLC: 36 slices of 2 MB, 16 ways.
func DefaultConfig() Config {
	return Config{Ways: 16, SliceKB: 2048, Slices: 36}
}

// TotalKB reports the LLC capacity.
func (c Config) TotalKB() int { return c.SliceKB * c.Slices }

// Mask is a CAT class-of-service bitmask over the LLC ways. Intel CAT
// requires masks to be contiguous runs of set bits.
type Mask uint32

// NewMask builds a contiguous mask of n ways starting at way lo.
func NewMask(lo, n int) Mask {
	if n <= 0 {
		return 0
	}
	run := uint32(1)<<uint(n) - 1
	return Mask(run << uint(lo))
}

// Ways counts set bits.
func (m Mask) Ways() int { return bits.OnesCount32(uint32(m)) }

// Contiguous reports whether the set bits form one run (a CAT requirement).
func (m Mask) Contiguous() bool {
	if m == 0 {
		return false
	}
	// Strip trailing zeros, then the value must be 2^k - 1.
	for m&1 == 0 {
		m >>= 1
	}
	return m&(m+1) == 0
}

// Overlaps reports whether two masks share ways.
func (m Mask) Overlaps(o Mask) bool { return m&o != 0 }

func (m Mask) String() string { return fmt.Sprintf("%016b", uint32(m)) }

// Partitioner assigns CAT masks to VMs in proportion to their core counts.
type Partitioner struct {
	cfg   Config
	vms   map[int]int // vm -> cores
	order []int
	masks map[int]Mask
}

// NewPartitioner builds an empty partitioner.
func NewPartitioner(cfg Config) *Partitioner {
	if cfg.Ways <= 0 || cfg.Ways > 32 {
		panic("llc: ways out of range")
	}
	return &Partitioner{cfg: cfg, vms: make(map[int]int), masks: make(map[int]Mask)}
}

// AddVM registers a VM with its core count and recomputes the masks.
func (p *Partitioner) AddVM(vm, cores int) error {
	if cores <= 0 {
		return fmt.Errorf("llc: VM %d needs cores", vm)
	}
	if _, dup := p.vms[vm]; dup {
		return fmt.Errorf("llc: VM %d already partitioned", vm)
	}
	if len(p.vms) >= p.cfg.Ways {
		return fmt.Errorf("llc: more VMs than ways (%d)", p.cfg.Ways)
	}
	p.vms[vm] = cores
	p.order = append(p.order, vm)
	p.rebalance()
	return nil
}

// RemoveVM deregisters a VM and redistributes its ways.
func (p *Partitioner) RemoveVM(vm int) error {
	if _, ok := p.vms[vm]; !ok {
		return fmt.Errorf("llc: unknown VM %d", vm)
	}
	delete(p.vms, vm)
	delete(p.masks, vm)
	for i, v := range p.order {
		if v == vm {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.rebalance()
	return nil
}

// rebalance assigns contiguous, non-overlapping way ranges proportional to
// core counts, every VM getting at least one way.
func (p *Partitioner) rebalance() {
	if len(p.order) == 0 {
		return
	}
	total := 0
	for _, c := range p.vms {
		total += c
	}
	// Largest-remainder apportionment with a floor of 1 way.
	type share struct {
		vm    int
		ways  int
		fracM int64
	}
	shares := make([]share, 0, len(p.order))
	assigned := 0
	for _, vm := range p.order {
		exact := float64(p.cfg.Ways) * float64(p.vms[vm]) / float64(total)
		w := int(exact)
		if w < 1 {
			w = 1
		}
		shares = append(shares, share{vm: vm, ways: w, fracM: int64((exact - float64(int(exact))) * 1e6)})
		assigned += w
	}
	// Distribute leftovers by largest remainder; trim overshoot from the
	// smallest remainders (never below 1).
	for assigned < p.cfg.Ways {
		sort.SliceStable(shares, func(i, j int) bool { return shares[i].fracM > shares[j].fracM })
		shares[0].ways++
		shares[0].fracM = -1
		assigned++
	}
	for assigned > p.cfg.Ways {
		sort.SliceStable(shares, func(i, j int) bool { return shares[i].ways > shares[j].ways })
		if shares[0].ways <= 1 {
			break
		}
		shares[0].ways--
		assigned--
	}
	// Restore registration order, then lay out contiguous ranges.
	sort.SliceStable(shares, func(i, j int) bool {
		return indexOf(p.order, shares[i].vm) < indexOf(p.order, shares[j].vm)
	})
	lo := 0
	for _, s := range shares {
		p.masks[s.vm] = NewMask(lo, s.ways)
		lo += s.ways
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// MaskOf reports a VM's CAT mask.
func (p *Partitioner) MaskOf(vm int) (Mask, bool) {
	m, ok := p.masks[vm]
	return m, ok
}

// PartitionKB reports a VM's LLC capacity share.
func (p *Partitioner) PartitionKB(vm int) int {
	m, ok := p.masks[vm]
	if !ok {
		return 0
	}
	return p.cfg.TotalKB() * m.Ways() / p.cfg.Ways
}

// Validate checks the CAT invariants: every mask contiguous, non-empty,
// pairwise disjoint, and all ways covered or spare.
func (p *Partitioner) Validate() error {
	var union Mask
	for vm, m := range p.masks {
		if !m.Contiguous() {
			return fmt.Errorf("llc: VM %d mask %v not contiguous", vm, m)
		}
		if m.Overlaps(union) {
			return fmt.Errorf("llc: VM %d mask overlaps another partition", vm)
		}
		union |= m
	}
	if union.Ways() > p.cfg.Ways {
		return fmt.Errorf("llc: partitions exceed %d ways", p.cfg.Ways)
	}
	return nil
}
