package graph

import (
	"hardharvest/internal/stats"
)

// Result summarizes one DAG run from the dispatcher's side.
type Result struct {
	// Request ledger (end-to-end DAG traversals).
	Generated   uint64
	Completed   uint64
	Failed      uint64 // drained with at least one shed invocation
	InflightEnd uint64

	// RPC ledger (tier invocations).
	Dispatches     uint64
	DoneRecv       uint64
	ShedRecv       uint64
	OutstandingEnd uint64

	// E2E sketches measured end-to-end latencies (milliseconds, root
	// admission to invocation-tree completion, unfailed requests only).
	E2E *stats.Sketch

	Tiers []TierResult
}

// TierResult is one tier's dispatch view.
type TierResult struct {
	Name       string
	Servers    int
	VM         int
	Dispatches uint64
	Dones      uint64
	Sheds      uint64
	// Hop sketches measured invocation round trips through this tier
	// (milliseconds, dispatch to completion reply at the dispatcher).
	Hop *stats.Sketch
}

// Finish returns the run's DAG results after the ShardGroup reached the
// horizon.
func (d *Dispatcher) Finish() *Result { return d.Snapshot() }

// Snapshot returns the same ledger view at any quiescent point — between
// ShardGroup windows, no advance goroutines live. Counters are value
// copies; the latency sketches are the dispatcher's own (clone or extract
// quantiles before publishing across goroutines).
func (d *Dispatcher) Snapshot() *Result {
	res := &Result{
		Generated:      d.generated,
		Completed:      d.completed,
		Failed:         d.failed,
		InflightEnd:    d.inflight,
		Dispatches:     d.dispatches,
		DoneRecv:       d.doneRecv,
		ShedRecv:       d.shedRecv,
		OutstandingEnd: uint64(len(d.attempts)),
		E2E:            d.e2e,
	}
	for _, t := range d.tiers {
		res.Tiers = append(res.Tiers, TierResult{
			Name:       t.name,
			Servers:    len(t.servers),
			VM:         t.vm,
			Dispatches: t.dispatches,
			Dones:      t.dones,
			Sheds:      t.sheds,
			Hop:        t.hop,
		})
	}
	return res
}

// TierByName resolves a tier result by name (nil when absent).
func (r *Result) TierByName(name string) *TierResult {
	for i := range r.Tiers {
		if r.Tiers[i].Name == name {
			return &r.Tiers[i]
		}
	}
	return nil
}

// HopSketches maps tier names to their measured hop sketches (the
// Monte-Carlo cross-check's per-service latency source).
func (r *Result) HopSketches() map[string]*stats.Sketch {
	out := make(map[string]*stats.Sketch, len(r.Tiers))
	for i := range r.Tiers {
		out[r.Tiers[i].Name] = r.Tiers[i].Hop
	}
	return out
}

// The conservation oracle over these ledgers lives in internal/validate
// (GraphResultConservation): graph must not import validate, or the
// experiments package could never host DAG sweeps (validate's golden
// harness imports experiments).
