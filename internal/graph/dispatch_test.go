package graph_test

import (
	"fmt"
	"testing"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
	"hardharvest/internal/validate"
)

// reqObs is one observed request from the OnComplete hook.
type reqObs struct {
	e2e    sim.Duration
	failed bool
	hops   []graph.Hop
}

// runSpec executes spec over a fleet with one server per tier group (plus
// extras for groups named in wide) at the given worker count, collecting
// every drained request. roots, when non-zero, schedules that many explicit
// root admissions at 1ms spacing from measureStart (the ScheduleRoot hook).
func runSpec(t *testing.T, spec *graph.Spec, seed uint64, workers, roots int, wide map[string]int) (*graph.Result, []reqObs) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("fixture spec invalid: %v", err)
	}
	work, err := batch.WorkloadByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	var groups []string
	seen := map[string]bool{}
	for i := range spec.Tiers {
		if g := spec.Tiers[i].Group; !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	var fleet []*cluster.Server
	var backends []graph.Backend
	groupServers := map[string][]int{}
	for _, gname := range groups {
		n := 1 + wide[gname]
		for k := 0; k < n; k++ {
			cfg := cluster.DefaultConfig()
			cfg.WarmupDuration = 10 * sim.Millisecond
			cfg.MeasureDuration = 100 * sim.Millisecond
			cfg.Seed = seed + uint64(len(fleet))*7919
			opts := cluster.SystemOptions(cluster.HardHarvestBlock)
			opts.RemoteAdmission = true
			srv := cluster.NewServer(cfg, opts, work)
			groupServers[gname] = append(groupServers[gname], len(fleet))
			fleet = append(fleet, srv)
			backends = append(backends, graph.Backend{Server: srv, Cfg: cfg,
				Name: fmt.Sprintf("server%d[%s]", len(backends), gname)})
		}
	}
	tiers := make([][]int, len(spec.Tiers))
	for ti := range spec.Tiers {
		tiers[ti] = groupServers[spec.Tiers[ti].Group]
	}
	gd := graph.New(spec, backends, tiers)
	var obs []reqObs
	gd.OnComplete(func(e2e sim.Duration, failed bool, hops []graph.Hop) {
		obs = append(obs, reqObs{e2e: e2e, failed: failed, hops: append([]graph.Hop(nil), hops...)})
	})
	group := sim.NewShardGroup(workers)
	self := group.AddFunc(gd.Engine(), gd.Advance)
	members := make([]int, len(fleet))
	for i, srv := range fleet {
		srv := srv
		m := group.AddFunc(srv.Engine(), func(to sim.Time) {
			if h := srv.Horizon(); to > h {
				to = h
			}
			srv.StepTo(to)
		})
		group.Link(self, m, spec.NetDelay)
		group.Link(m, self, spec.NetDelay)
		members[i] = m
	}
	gd.Bind(group, self, members)
	for i := 0; i < roots; i++ {
		gd.ScheduleRoot(sim.Time(10*sim.Millisecond + sim.Duration(i)*sim.Millisecond))
	}
	horizon := sim.Time(0)
	for _, srv := range fleet {
		srv.Start()
		if h := srv.Horizon(); h > horizon {
			horizon = h
		}
	}
	group.Run(horizon)
	for _, srv := range fleet {
		srv.Finish()
	}
	return gd.Finish(), obs
}

// TestE2EDominatesEveryHop is the critical-path property: a request's
// end-to-end latency covers every hop interval on its invocation tree, so
// e2e >= each hop, and — since children only dispatch after the root tier's
// reply — e2e >= root hop + the slowest descendant hop. Every non-failed
// request must record exactly Nodes() hops, each paying at least the two
// NetDelay crossings.
func TestE2EDominatesEveryHop(t *testing.T) {
	spec := graph.SocialNet(20 * sim.Microsecond)
	res, obs := runSpec(t, spec, 11, 1, 0, nil)
	if res.Completed < 50 {
		t.Fatalf("only %d completions; fixture too quiet for a property test", res.Completed)
	}
	if len(obs) == 0 {
		t.Fatal("OnComplete observed nothing")
	}
	rootName := spec.Tiers[spec.Root].Name
	for _, r := range obs {
		if !r.failed && len(r.hops) != spec.Nodes() {
			t.Fatalf("request drained with %d hops, want %d (one per invocation): %+v",
				len(r.hops), spec.Nodes(), r.hops)
		}
		var rootHop, maxChild sim.Duration
		for _, h := range r.hops {
			if !h.Shed && h.Latency <= 2*spec.NetDelay {
				t.Fatalf("hop %s latency %v does not exceed the two NetDelay crossings (%v)",
					h.Tier, h.Latency, 2*spec.NetDelay)
			}
			if r.e2e < h.Latency {
				t.Fatalf("e2e %v < hop %s %v: hop interval escapes the request window",
					r.e2e, h.Tier, h.Latency)
			}
			if h.Tier == rootName {
				rootHop = h.Latency
			} else if h.Latency > maxChild {
				maxChild = h.Latency
			}
		}
		if !r.failed && r.e2e < rootHop+maxChild {
			t.Fatalf("e2e %v < root hop %v + slowest child hop %v", r.e2e, rootHop, maxChild)
		}
	}
	if c := validate.GraphResultConservation("graph", res); !c.OK {
		t.Fatalf("conservation: %s", c.Detail)
	}
}

// chainSpec is a strictly sequential DAG: a -> b x2 (sequential) -> c, so a
// request is one chain of invocations with no overlap anywhere.
func chainSpec() *graph.Spec {
	return &graph.Spec{
		NetDelay: 20 * sim.Microsecond,
		Tiers: []graph.Tier{
			{Name: "a", Group: "front", Calls: []graph.Call{{Tier: 1, Mode: graph.Sequential, Fanout: 2}}},
			{Name: "b", Group: "mid", Calls: []graph.Call{{Tier: 2, Mode: graph.Sequential, Fanout: 1}}},
			{Name: "c", Group: "back"},
		},
	}
}

// TestSerialChainExactSum is the picosecond-exact composition property: in
// a strictly sequential chain the dispatcher issues each invocation in the
// same event as the previous reply, so a request's end-to-end latency is
// EXACTLY the sum of its hop latencies — each hop being the tier's service
// time (with queueing) plus the two NetDelay crossings. Any drift here
// would mean the dispatcher inserts or loses time between joins.
func TestSerialChainExactSum(t *testing.T) {
	spec := chainSpec()
	if n := spec.Nodes(); n != 5 {
		t.Fatalf("chain Nodes() = %d, want 5 (a + 2x(b + c))", n)
	}
	res, obs := runSpec(t, spec, 17, 1, 3, nil)
	if res.Generated < 3 {
		t.Fatalf("generated %d < the 3 explicitly scheduled roots", res.Generated)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	for _, r := range obs {
		var sum sim.Duration
		for _, h := range r.hops {
			sum += h.Latency
		}
		if r.e2e != sum {
			t.Fatalf("serial chain e2e %v != sum of hops %v (diff %v, hops %+v)",
				r.e2e, sum, r.e2e-sum, r.hops)
		}
		if !r.failed {
			if len(r.hops) != 5 {
				t.Fatalf("chain request drained %d hops, want 5", len(r.hops))
			}
			// Subtracting the RPC crossings leaves pure server time.
			if service := r.e2e - sim.Duration(len(r.hops))*2*spec.NetDelay; service <= 0 {
				t.Fatalf("e2e %v leaves no service time after %d RPC crossings", r.e2e, 2*len(r.hops))
			}
		}
	}
	if c := validate.GraphResultConservation("graph", res); !c.OK {
		t.Fatalf("conservation: %s", c.Detail)
	}
}

// TestDispatcherWorkerInvariance pins the conservative-synchronization
// guarantee at the dispatcher level: the ShardGroup worker count is an
// execution detail, so the full result — counters, per-tier ledgers, the
// e2e distribution, and the per-request observation stream — must be
// identical at 1, 2, and 8 workers. A two-server frontend group keeps the
// round-robin path under test.
func TestDispatcherWorkerInvariance(t *testing.T) {
	wide := map[string]int{"frontend": 1}
	base, baseObs := runSpec(t, graph.SocialNet(20*sim.Microsecond), 23, 1, 0, wide)
	if base.Completed == 0 {
		t.Fatal("no completions")
	}
	for _, workers := range []int{2, 8} {
		got, gotObs := runSpec(t, graph.SocialNet(20*sim.Microsecond), 23, workers, 0, wide)
		if got.Generated != base.Generated || got.Completed != base.Completed ||
			got.Dispatches != base.Dispatches || got.E2E.Count() != base.E2E.Count() ||
			got.E2E.P99() != base.E2E.P99() {
			t.Fatalf("ledger diverged at workers=%d:\n1: %+v\n%d: %+v", workers, base, workers, got)
		}
		for i := range base.Tiers {
			b, g := base.Tiers[i], got.Tiers[i]
			if b.Dispatches != g.Dispatches || b.Dones != g.Dones || b.Sheds != g.Sheds ||
				b.Hop.Count() != g.Hop.Count() || b.Hop.P99() != g.Hop.P99() {
				t.Fatalf("tier %s diverged at workers=%d: %+v vs %+v", b.Name, workers, b, g)
			}
		}
		if len(gotObs) != len(baseObs) {
			t.Fatalf("observation stream length diverged at workers=%d: %d vs %d",
				workers, len(gotObs), len(baseObs))
		}
		for i := range baseObs {
			if gotObs[i].e2e != baseObs[i].e2e || gotObs[i].failed != baseObs[i].failed {
				t.Fatalf("request %d diverged at workers=%d: %+v vs %+v",
					i, workers, baseObs[i], gotObs[i])
			}
		}
	}
}

// TestHopSketchesAndTierByName covers the result accessors feeding the
// Monte-Carlo cross-check.
func TestHopSketchesAndTierByName(t *testing.T) {
	res, _ := runSpec(t, graph.SocialNet(20*sim.Microsecond), 31, 0, 0, nil)
	hops := res.HopSketches()
	if len(hops) != 4 {
		t.Fatalf("HopSketches has %d tiers, want 4", len(hops))
	}
	for _, name := range []string{"frontend", "logic", "cache", "db"} {
		tr := res.TierByName(name)
		if tr == nil {
			t.Fatalf("TierByName(%s) = nil", name)
		}
		if hops[name] != tr.Hop {
			t.Errorf("HopSketches[%s] is not the tier's own sketch", name)
		}
		if tr.Hop.Count() == 0 {
			t.Errorf("tier %s recorded no hops", name)
		}
	}
	if res.TierByName("nope") != nil {
		t.Error("TierByName(nope) != nil")
	}
}
