package graph

import (
	"fmt"

	"hardharvest/internal/cluster"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
	"hardharvest/internal/trace"
	"hardharvest/internal/workload"
)

// genSeedSalt derives the root-tier arrival generator streams from each
// root server's seed — distinct from both the server's own remote stream
// salt (cluster) and the front-door router salt (route), so graph runs
// never replay another subsystem's randomness.
const genSeedSalt = 0x9e3779b97f4a7c55

// Backend describes one fleet server serving some tier of the DAG. Cfg is
// the config the server was built from; root-tier backends additionally
// seed the dispatcher's arrival generators from it.
type Backend struct {
	Server *cluster.Server
	Cfg    cluster.Config
	Name   string
}

// Dispatcher event opcodes (sim.Callback).
const (
	gOpGen   int32 = iota // a: *genState — root arrival fired
	gOpReply              // a: *replyMsg — done/shed reply from a server
	gOpRoot               // explicit ScheduleRoot admission (test hook)
)

// Cross-member message payloads (one allocation each; they cross
// goroutine boundaries between shard windows, so pooling would race).
type dispatchMsg struct {
	vm      int
	attempt uint64
}

type replyMsg struct {
	attempt uint64
	lat     sim.Duration
	shed    bool
}

// request is one end-to-end DAG request from root admission to the
// completion of its whole invocation tree.
type request struct {
	born     sim.Time
	measured bool
	// failed flips when any invocation is shed; the request still drains
	// (join bookkeeping completes) but counts as failed and records no
	// latency.
	failed bool
	// hops collects per-invocation hop records for OnComplete observers;
	// nil unless an observer is installed.
	hops []Hop
}

// node is one live tier invocation of a request's expansion: it pays one
// RPC to a server of its tier, then walks its call stages, spawning child
// nodes and joining on their subtrees.
type node struct {
	req    *request
	parent *node
	tier   int

	// Stage cursor. stage indexes the tier's stage list; outstanding
	// counts child subtrees in flight in the current stage; seqLeft counts
	// the sequential invocations still to issue after the one in flight.
	stage       int
	outstanding int
	seqLeft     int
}

// rpcRec tracks one dispatched invocation RPC until its reply arrives.
type rpcRec struct {
	n      *node
	sentAt sim.Time
}

// genState is one root-tier arrival generator, replicating the workload
// of the root tier's VM on one root server.
type genState struct {
	src    int // fleet index of the root server this generator models
	srcIdx int // index into d.srcs (flash-batch state)
	gen    *workload.Generator
	nextAt sim.Time
}

// srcRT carries the per-root-server flash-batch state.
type srcRT struct {
	batchRNG  *stats.RNG
	batchProb float64
	batchMean float64
}

// backendRT is the dispatcher's runtime view of one fleet server.
type backendRT struct {
	idx    int
	name   string
	srv    *cluster.Server
	member int
	port   *port
}

// port runs on the backend's ShardGroup member and bridges dispatch
// messages into the server (sim.Callback, server engine).
type port struct {
	b *backendRT
}

func (p *port) OnEvent(op int32, a, b any) {
	m := a.(*dispatchMsg)
	_ = op
	p.b.srv.AdmitRemote(m.vm, m.attempt)
}

// tierRT aggregates one tier's runtime state and counters.
type tierRT struct {
	name     string
	vm       int
	servers  []int // indices into d.backends, dispatch targets
	rr       uint64
	stages   []stage
	nodeSize int // expanded subtree size rooted at this tier

	dispatches uint64
	dones      uint64
	sheds      uint64
	hop        *stats.Sketch
}

// Hop is one resolved invocation RPC, reported to OnComplete observers.
type Hop struct {
	Tier    string
	Latency sim.Duration
	Shed    bool
}

// Dispatcher executes one Spec's request DAG over a fleet. It owns its
// own sim.Engine and joins the fleet's ShardGroup as a regular member;
// every RPC and reply crosses a declared Link/Send edge at NetDelay
// lookahead, so graph runs are byte-identical at any worker count.
//
// All RPCs originate at the dispatcher: a tier invocation's children are
// dispatched when its reply arrives, each paying one NetDelay hop out and
// one back. For the shapes the spec can express this is equivalent to
// decentralized tier-to-tier RPC with the same per-hop delay — every
// invocation pays exactly 2·NetDelay plus its server latency either way —
// while keeping the join state machine on one deterministic member.
type Dispatcher struct {
	spec     *Spec
	eng      *sim.Engine
	group    *sim.ShardGroup
	self     int
	backends []*backendRT
	tiers    []*tierRT
	srcs     []*srcRT
	gens     []*genState

	measureStart sim.Time
	measureEnd   sim.Time
	stopArrivals sim.Time
	horizon      sim.Time

	attemptSeq uint64
	attempts   map[uint64]*rpcRec

	generated   uint64
	completed   uint64
	failed      uint64
	inflight    uint64
	dispatches  uint64
	doneRecv    uint64
	shedRecv    uint64
	outstanding uint64

	e2e *stats.Sketch

	// onComplete, when set, observes every drained request (test hook).
	onComplete func(e2e sim.Duration, failed bool, hops []Hop)
}

// New builds a dispatcher for spec over the fleet's servers. tiers[i]
// lists, per spec tier, the indices into backends of the servers that
// serve it (every tier needs at least one; a server may serve several
// tiers). Every backend must share the same run window, and each tier's
// VM must be a primary VM of its servers — the scenario layer validates
// this; New panics otherwise.
func New(spec *Spec, backends []Backend, tiers [][]int) *Dispatcher {
	if err := spec.Validate(); err != nil {
		panic("graph: " + err.Error())
	}
	if len(tiers) != len(spec.Tiers) {
		panic("graph: tier/server map length mismatch")
	}
	if len(backends) == 0 {
		panic("graph: no backends")
	}
	d := &Dispatcher{
		spec:     spec,
		eng:      sim.NewEngine(),
		attempts: make(map[uint64]*rpcRec),
		e2e:      stats.NewSketch(),
	}
	d.measureStart, d.measureEnd, d.stopArrivals, d.horizon = backends[0].Cfg.RunWindow()
	for si, bk := range backends {
		_, me, _, _ := bk.Cfg.RunWindow()
		if me != d.measureEnd {
			panic("graph: backends disagree on run window")
		}
		name := bk.Name
		if name == "" {
			name = fmt.Sprintf("backend[%d]", si)
		}
		d.backends = append(d.backends, &backendRT{idx: si, name: name, srv: bk.Server})
	}
	sizes := make([]int, len(spec.Tiers))
	spec.nodes(spec.Root, sizes)
	for ti := range spec.Tiers {
		t := &spec.Tiers[ti]
		if len(tiers[ti]) == 0 {
			panic(fmt.Sprintf("graph: tier %q has no servers", t.Name))
		}
		for _, bi := range tiers[ti] {
			if bi < 0 || bi >= len(backends) {
				panic(fmt.Sprintf("graph: tier %q server index %d out of range", t.Name, bi))
			}
			if t.VM >= backends[bi].Cfg.PrimaryVMs {
				panic(fmt.Sprintf("graph: tier %q vm %d not a primary VM of %s", t.Name, t.VM, d.backends[bi].name))
			}
		}
		d.tiers = append(d.tiers, &tierRT{
			name:     t.Name,
			vm:       t.VM,
			servers:  append([]int(nil), tiers[ti]...),
			stages:   stagesOf(t),
			nodeSize: sizes[ti],
			hop:      stats.NewSketch(),
		})
	}

	// Root arrival generators: replicate the root tier's VM workload of
	// each root server on streams derived from a salted root, mirroring
	// how servers would have generated local arrivals for that VM.
	rootVM := spec.Tiers[spec.Root].VM
	for _, bi := range tiers[spec.Root] {
		c := backends[bi].Cfg
		profiles := c.Profiles
		if profiles == nil {
			profiles = workload.Profiles()
		}
		seriesParams := trace.DefaultSeriesParams()
		seriesParams.Steps = c.TraceSteps
		root := stats.NewRNG(c.Seed ^ genSeedSalt)
		seriesRNG := root.Split(4)
		instRNG := root.Split(5)
		d.srcs = append(d.srcs, &srcRT{
			batchRNG:  root.Split(6),
			batchProb: c.BurstBatchProb,
			batchMean: c.BurstBatchMean,
		})
		p := *profiles[rootVM]
		p.BaseRPSPerCore *= c.LoadScale
		var series []float64
		if c.TraceSteps > 0 {
			inst := trace.GenerateInstances(instRNG, 1)[0]
			series = inst.Series(seriesRNG.Split(uint64(rootVM)), seriesParams)
		}
		d.gens = append(d.gens, &genState{
			src: bi, srcIdx: len(d.srcs) - 1,
			gen: workload.NewGenerator(&p, c.CoresPerPrimary, series, c.TraceStep, root.Split(uint64(100+rootVM))),
		})
	}
	return d
}

// Engine exposes the dispatcher's engine for ShardGroup membership.
func (d *Dispatcher) Engine() *sim.Engine { return d.eng }

// Bind wires the dispatcher into its ShardGroup after membership and
// links are declared: self is the dispatcher's member index, members[i]
// the member of backend i. Bind installs each server's RemoteHooks (call
// it before the servers Start) and schedules the root generators.
func (d *Dispatcher) Bind(g *sim.ShardGroup, self int, members []int) {
	if len(members) != len(d.backends) {
		panic("graph: member count mismatch")
	}
	d.group = g
	d.self = self
	for i, b := range d.backends {
		b.member = members[i]
		b.port = &port{b: b}
		bb := b
		b.srv.SetRemoteHooks(cluster.RemoteHooks{
			Done: func(id uint64, lat sim.Duration) {
				g.Send(bb.member, d.self, d.spec.NetDelay, d, gOpReply,
					&replyMsg{attempt: id, lat: lat}, nil)
			},
			Shed: func(id uint64) {
				g.Send(bb.member, d.self, d.spec.NetDelay, d, gOpReply,
					&replyMsg{attempt: id, shed: true}, nil)
			},
		})
	}
	for _, gs := range d.gens {
		d.scheduleNextGen(gs)
	}
}

// OnComplete installs a per-request observer (test hook): fn sees every
// drained request's end-to-end latency, failure flag, and per-invocation
// hop records in reply order. Install before the group runs.
func (d *Dispatcher) OnComplete(fn func(e2e sim.Duration, failed bool, hops []Hop)) {
	d.onComplete = fn
}

// Action is one scheduled dispatcher reconfiguration (scenario timeline
// compiled for graph mode); actions apply at their time, in (At, Seq)
// order.
type Action struct {
	At  sim.Time
	Seq int
	Fn  func(*Dispatcher)
}

// SetActions installs the compiled action schedule (sorted by (At, Seq))
// as engine events, so the ShardGroup's conservative windows account for
// them (see route.Router.SetActions for the argument).
func (d *Dispatcher) SetActions(acts []Action) {
	for _, a := range acts {
		a := a
		d.eng.At(a.At, func() { a.Fn(d) })
	}
}

// Advance is the dispatcher's ShardGroup advance function.
func (d *Dispatcher) Advance(to sim.Time) {
	if to > d.horizon {
		to = d.horizon
	}
	d.eng.Run(to)
}

func (d *Dispatcher) now() sim.Time { return d.eng.Now() }

func (d *Dispatcher) measuring() bool {
	t := d.now()
	return t >= d.measureStart && t < d.measureEnd
}

// OnEvent dispatches the dispatcher's typed engine events (sim.Callback).
func (d *Dispatcher) OnEvent(op int32, a, b any) {
	switch op {
	case gOpGen:
		d.genFired(a.(*genState))
	case gOpReply:
		d.onReply(a.(*replyMsg))
	case gOpRoot:
		d.admitRoot()
	default:
		panic(fmt.Sprintf("graph: unknown event op %d", op))
	}
}

// SetIntensity scales every root generator modeled on root server src.
func (d *Dispatcher) SetIntensity(src int, x float64) {
	for _, gs := range d.gens {
		if gs.src == src {
			gs.gen.SetIntensity(x)
		}
	}
}

// Spec returns the DAG the dispatcher executes.
func (d *Dispatcher) Spec() *Spec { return d.spec }

// SetIntensityAll scales every root generator (the fleet-wide load knob).
func (d *Dispatcher) SetIntensityAll(x float64) {
	for _, gs := range d.gens {
		gs.gen.SetIntensity(x)
	}
}

// Intensity reports the generator intensity for root server src (0 when
// src hosts no root generator).
func (d *Dispatcher) Intensity(src int) float64 {
	for _, gs := range d.gens {
		if gs.src == src {
			return gs.gen.Intensity()
		}
	}
	return 0
}

// ---- Root generation ----

func (d *Dispatcher) scheduleNextGen(gs *genState) {
	a := gs.gen.Next()
	if a.At >= d.stopArrivals {
		return
	}
	gs.nextAt = a.At
	d.eng.CallAt(a.At, d, gOpGen, gs, nil)
}

// genFired admits one root request (plus any correlated flash batch,
// mirroring the servers' local arrival model) and schedules the next.
func (d *Dispatcher) genFired(gs *genState) {
	d.admitRoot()
	src := d.srcs[gs.srcIdx]
	if src.batchProb > 0 && src.batchRNG.Float64() < src.batchProb {
		extra := 0
		for src.batchRNG.Float64() < 1-1/src.batchMean && extra < 16 {
			extra++
		}
		for i := 0; i < extra; i++ {
			d.admitRoot()
		}
	}
	d.scheduleNextGen(gs)
}

// ScheduleRoot admits one root request at absolute time at (engine
// event). Test hook for deterministic single-request runs; the scenario
// path admits through the generators instead.
func (d *Dispatcher) ScheduleRoot(at sim.Time) {
	d.eng.CallAt(at, d, gOpRoot, nil, nil)
}

func (d *Dispatcher) admitRoot() {
	d.generated++
	d.inflight++
	req := &request{born: d.now(), measured: d.measuring()}
	if d.onComplete != nil {
		req.hops = make([]Hop, 0, 8)
	}
	root := &node{req: req, tier: d.spec.Root}
	d.dispatchRPC(root)
}

// ---- RPC dispatch and the join state machine ----

// dispatchRPC sends node n's own invocation to the next server of its
// tier (per-tier round robin).
func (d *Dispatcher) dispatchRPC(n *node) {
	t := d.tiers[n.tier]
	b := d.backends[t.servers[int(t.rr)%len(t.servers)]]
	t.rr++
	d.attemptSeq++
	id := d.attemptSeq
	d.attempts[id] = &rpcRec{n: n, sentAt: d.now()}
	t.dispatches++
	d.dispatches++
	d.outstanding++
	d.group.Send(d.self, b.member, d.spec.NetDelay, b.port, 0,
		&dispatchMsg{vm: t.vm, attempt: id}, nil)
}

// onReply resolves one invocation RPC: record the hop, then either walk
// the node's call stages (done) or short-circuit the subtree (shed — the
// request is marked failed, the node completes without issuing calls, and
// the join bookkeeping drains normally).
func (d *Dispatcher) onReply(m *replyMsg) {
	rec := d.attempts[m.attempt]
	if rec == nil {
		panic(fmt.Sprintf("graph: reply for unknown attempt %d", m.attempt))
	}
	delete(d.attempts, m.attempt)
	d.outstanding--
	n := rec.n
	t := d.tiers[n.tier]
	if n.req.hops != nil {
		n.req.hops = append(n.req.hops, Hop{Tier: t.name, Latency: d.now().Sub(rec.sentAt), Shed: m.shed})
	}
	if m.shed {
		d.shedRecv++
		t.sheds++
		n.req.failed = true
		d.completeNode(n)
		return
	}
	d.doneRecv++
	t.dones++
	if n.req.measured {
		t.hop.Add(d.now().Sub(rec.sentAt).Milliseconds())
	}
	n.stage = -1
	d.nextStage(n)
}

// nextStage advances n to its next call stage, spawning its children; a
// node past its last stage is complete.
func (d *Dispatcher) nextStage(n *node) {
	t := d.tiers[n.tier]
	n.stage++
	if n.stage >= len(t.stages) {
		d.completeNode(n)
		return
	}
	st := t.stages[n.stage]
	if st.par != nil {
		for _, c := range st.par {
			for k := 0; k < c.Fanout; k++ {
				n.outstanding++
				d.dispatchRPC(&node{req: n.req, parent: n, tier: c.Tier})
			}
		}
		return
	}
	n.outstanding = 1
	n.seqLeft = st.seq.Fanout - 1
	d.dispatchRPC(&node{req: n.req, parent: n, tier: st.seq.Tier})
}

// completeNode marks n's subtree complete and propagates the join upward;
// a completed root drains the request.
func (d *Dispatcher) completeNode(n *node) {
	p := n.parent
	if p == nil {
		d.inflight--
		req := n.req
		e2e := d.now().Sub(req.born)
		if req.failed {
			d.failed++
		} else {
			d.completed++
			if req.measured {
				d.e2e.Add(e2e.Milliseconds())
			}
		}
		if d.onComplete != nil {
			d.onComplete(e2e, req.failed, req.hops)
		}
		return
	}
	if p.seqLeft > 0 {
		p.seqLeft--
		d.dispatchRPC(&node{req: p.req, parent: p, tier: d.tiers[p.tier].stages[p.stage].seq.Tier})
		return
	}
	p.outstanding--
	if p.outstanding == 0 {
		d.nextStage(p)
	}
}
