package graph

import (
	"errors"
	"strings"
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// twoTier builds a minimal valid spec (a -> b) to mutate in error cases.
func twoTier() *Spec {
	return &Spec{
		NetDelay: 20 * sim.Microsecond,
		Tiers: []Tier{
			{Name: "a", Group: "g", Calls: []Call{{Tier: 1, Fanout: 1}}},
			{Name: "b", Group: "g"},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := twoTier().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := SocialNet(20 * sim.Microsecond).Validate(); err != nil {
		t.Fatalf("SocialNet rejected: %v", err)
	}
}

// TestValidateErrors pins every Validate failure mode to a positioned
// *FieldError: the scenario layer maps Path back to a file:line diagnostic,
// so both the path and the message are part of the contract.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		path string
		msg  string
	}{
		{"no tiers", func(s *Spec) { s.Tiers = nil },
			"tiers", "at least one tier"},
		{"too many tiers", func(s *Spec) {
			s.Tiers = s.Tiers[:1]
			s.Tiers[0].Calls = nil
			for i := 0; i < MaxTiers; i++ {
				s.Tiers = append(s.Tiers, Tier{Name: string(rune('c' + i))})
			}
		}, "tiers", "exceeds the maximum"},
		{"zero net delay", func(s *Spec) { s.NetDelay = 0 },
			"rpc_delay_us", "must be positive"},
		{"negative net delay", func(s *Spec) { s.NetDelay = -sim.Microsecond },
			"rpc_delay_us", "must be positive"},
		{"root below range", func(s *Spec) { s.Root = -1 },
			"root", "out of range"},
		{"root past range", func(s *Spec) { s.Root = 2 },
			"root", "out of range"},
		{"empty tier name", func(s *Spec) { s.Tiers[1].Name = "" },
			"tiers[1].tier", "required"},
		{"duplicate tier name", func(s *Spec) { s.Tiers[1].Name = "a" },
			"tiers[1].tier", `duplicate tier name "a"`},
		{"negative vm", func(s *Spec) { s.Tiers[0].VM = -1 },
			"tiers[0].vm", "must be non-negative"},
		{"dangling call tier", func(s *Spec) { s.Tiers[0].Calls[0].Tier = 7 },
			"tiers[0].calls[0].tier", "out of range"},
		{"negative call tier", func(s *Spec) { s.Tiers[0].Calls[0].Tier = -1 },
			"tiers[0].calls[0].tier", "out of range"},
		{"zero fanout", func(s *Spec) { s.Tiers[0].Calls[0].Fanout = 0 },
			"tiers[0].calls[0].fanout", "must be in [1, 64]"},
		{"fanout over bound", func(s *Spec) { s.Tiers[0].Calls[0].Fanout = MaxFanout + 1 },
			"tiers[0].calls[0].fanout", "must be in [1, 64]"},
		{"unknown call mode", func(s *Spec) { s.Tiers[0].Calls[0].Mode = CallMode(9) },
			"tiers[0].calls[0].mode", "unknown call mode"},
		{"self cycle", func(s *Spec) { s.Tiers[1].Calls = []Call{{Tier: 1, Fanout: 1}} },
			"tiers[1].calls[0].tier", "call cycle: b -> b"},
		{"two-hop cycle", func(s *Spec) { s.Tiers[1].Calls = []Call{{Tier: 0, Fanout: 1}} },
			"tiers[1].calls[0].tier", "call cycle: a -> b -> a"},
		{"unreachable tier", func(s *Spec) { s.Tiers[0].Calls = nil },
			"tiers[1].tier", `tier "b" is unreachable from root tier "a"`},
		{"expansion explosion", func(s *Spec) {
			// 64^3 invocations in a three-level fan-out tower.
			s.Tiers = []Tier{
				{Name: "a", Calls: []Call{{Tier: 1, Fanout: MaxFanout}}},
				{Name: "b", Calls: []Call{{Tier: 2, Fanout: MaxFanout}}},
				{Name: "c"},
			}
		}, "tiers", "invocations (max 512)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := twoTier()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("damaged spec validated")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *FieldError: %v", err)
			}
			if fe.Path != tc.path {
				t.Errorf("path = %q, want %q (err: %v)", fe.Path, tc.path, err)
			}
			if !strings.Contains(fe.Msg, tc.msg) {
				t.Errorf("msg %q missing %q", fe.Msg, tc.msg)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("Error() %q does not lead with the path", err)
			}
		})
	}
}

func TestCallModeRoundTrip(t *testing.T) {
	for _, m := range []CallMode{Parallel, Sequential} {
		got, err := ParseCallMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseCallMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseCallMode("bursty"); err == nil ||
		!strings.Contains(err.Error(), "want parallel or sequential") {
		t.Errorf("bad mode error = %v", err)
	}
	if s := CallMode(9).String(); s != "CallMode(9)" {
		t.Errorf("unknown mode String() = %q", s)
	}
}

func TestStagesOf(t *testing.T) {
	tier := &Tier{Name: "x", Calls: []Call{
		{Tier: 1, Mode: Parallel, Fanout: 2},
		{Tier: 2, Mode: Parallel, Fanout: 1},
		{Tier: 3, Mode: Sequential, Fanout: 3},
		{Tier: 4, Mode: Parallel, Fanout: 1},
	}}
	st := stagesOf(tier)
	if len(st) != 3 {
		t.Fatalf("want 3 stages, got %d: %+v", len(st), st)
	}
	if len(st[0].par) != 2 || st[0].par[0].Tier != 1 || st[0].par[1].Tier != 2 {
		t.Errorf("stage 0 should merge the two consecutive parallel calls: %+v", st[0])
	}
	if st[1].par != nil || st[1].seq.Tier != 3 || st[1].seq.Fanout != 3 {
		t.Errorf("stage 1 should be the sequential call alone: %+v", st[1])
	}
	if len(st[2].par) != 1 || st[2].par[0].Tier != 4 {
		t.Errorf("stage 2 should restart a parallel stage after the sequential one: %+v", st[2])
	}
	if got := stagesOf(&Tier{Name: "leaf"}); got != nil {
		t.Errorf("leaf tier stages = %+v, want none", got)
	}
}

func TestNodesAndTierByName(t *testing.T) {
	sn := SocialNet(20 * sim.Microsecond)
	// frontend + 2x(logic + cache + db) = 7 invocations per request.
	if n := sn.Nodes(); n != 7 {
		t.Errorf("SocialNet Nodes() = %d, want 7", n)
	}
	if i := sn.TierByName("db"); i != 3 {
		t.Errorf("TierByName(db) = %d, want 3", i)
	}
	if i := sn.TierByName("nope"); i != -1 {
		t.Errorf("TierByName(nope) = %d, want -1", i)
	}
	chain := &Spec{NetDelay: sim.Microsecond, Tiers: []Tier{
		{Name: "a", Calls: []Call{{Tier: 1, Mode: Sequential, Fanout: 3}}},
		{Name: "b"},
	}}
	if n := chain.Nodes(); n != 4 {
		t.Errorf("sequential chain Nodes() = %d, want 4 (fan-out counts invocations)", n)
	}
}

// constHops samples every service at a fixed latency — the degenerate
// distribution under which Monte-Carlo composition is exact arithmetic.
type constHops sim.Duration

func (c constHops) SampleLatency(string, float64) (sim.Duration, bool) {
	return sim.Duration(c), true
}

// TestToAppComposition checks ToApp's expansion against hand-computed
// critical paths under constant hop latencies: parallel subtrees overlap
// (max), sequential chains and nested tiers add.
func TestToAppComposition(t *testing.T) {
	const hop = 2 * sim.Millisecond
	cases := []struct {
		name   string
		spec   *Spec
		stages int
		want   sim.Duration // e2e critical path at constant hop latency
	}{
		{"single tier", &Spec{NetDelay: sim.Microsecond,
			Tiers: []Tier{{Name: "a"}}}, 1, hop},
		{"socialnet", SocialNet(20 * sim.Microsecond), 7,
			// frontend, then two parallel logic subtrees of depth 2.
			3 * hop},
		{"sequential chain", &Spec{NetDelay: sim.Microsecond, Tiers: []Tier{
			{Name: "a", Calls: []Call{{Tier: 1, Mode: Sequential, Fanout: 3}}},
			{Name: "b"},
		}}, 4, 4 * hop},
		{"parallel fanout", &Spec{NetDelay: sim.Microsecond, Tiers: []Tier{
			{Name: "a", Calls: []Call{{Tier: 1, Mode: Parallel, Fanout: 8}}},
			{Name: "b"},
		}}, 9, 2 * hop},
		{"staged mix", &Spec{NetDelay: sim.Microsecond, Tiers: []Tier{
			// a: parallel {b}, then sequential c x2 — stages serialize.
			{Name: "a", Calls: []Call{
				{Tier: 1, Mode: Parallel, Fanout: 2},
				{Tier: 2, Mode: Sequential, Fanout: 2},
			}},
			{Name: "b"},
			{Name: "c"},
		}}, 5, 4 * hop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err != nil {
				t.Fatalf("fixture invalid: %v", err)
			}
			a := tc.spec.ToApp(tc.name)
			if err := a.Validate(); err != nil {
				t.Fatalf("ToApp produced an invalid app: %v", err)
			}
			if len(a.Stages) != tc.stages {
				t.Fatalf("ToApp stages = %d, want %d (= Nodes())", len(a.Stages), tc.stages)
			}
			if len(a.Stages) != tc.spec.Nodes() {
				t.Errorf("ToApp stage count %d != Nodes() %d", len(a.Stages), tc.spec.Nodes())
			}
			rec, err := a.SimulateE2E(constHops(2*sim.Millisecond), stats.NewRNG(1), 64)
			if err != nil {
				t.Fatalf("SimulateE2E: %v", err)
			}
			if rec.P50() != tc.want || rec.P99() != tc.want {
				t.Errorf("constant-hop e2e = p50 %v / p99 %v, want exactly %v",
					rec.P50(), rec.P99(), tc.want)
			}
		})
	}
}

// TestToAppRootDeps: the root invocation must have no dependencies, and
// every other stage at least one — otherwise composed requests would start
// mid-tree.
func TestToAppRootDeps(t *testing.T) {
	a := SocialNet(20 * sim.Microsecond).ToApp("sn")
	if len(a.Stages[0].Deps) != 0 {
		t.Errorf("root stage has deps: %+v", a.Stages[0].Deps)
	}
	for i := 1; i < len(a.Stages); i++ {
		if len(a.Stages[i].Deps) == 0 {
			t.Errorf("stage %d (%s) has no deps", i, a.Stages[i].Service)
		}
	}
}
