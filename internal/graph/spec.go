// Package graph executes request DAGs across a simulated fleet: requests
// enter a root tier and fan out over inter-tier RPCs (frontend → logic →
// cache/db, DeathStarBench-shaped), with every hop paying a network delay
// and the full NIC/queue/execute pipeline of the server it lands on. The
// end-to-end latency of a request is therefore its critical path through
// the DAG *including queueing at every tier* — the effect single-tier
// models cannot express, and the reason a harvested core in a leaf tier
// shapes the end-to-end tail differently than one in the frontend.
//
// A Spec is the static DAG: tiers (each bound to a slice of fleet servers
// and one Primary-VM service) and calls (downstream RPCs with a
// sequential/parallel mode and a fan-out degree). A Dispatcher is the
// runtime: it owns its own sim.Engine, joins the fleet's sim.ShardGroup,
// admits root requests from open-loop generators, and drives one join
// state machine per request, dispatching child RPCs through
// cluster.AdmitRemote and joining on the replies.
//
// Call semantics (mirrored exactly by ToApp's Monte-Carlo expansion):
// after a tier invocation's own service completes, its calls run in
// stages. Consecutive parallel calls form one stage whose fan-out
// invocations all start together; a sequential call is its own stage whose
// fan-out invocations chain one after another. A stage completes when
// every child *subtree* (the child invocation plus its own calls,
// recursively) completes; the next stage starts then; the invocation
// completes with its last stage. Every invocation pays exactly one
// request hop and one reply hop of NetDelay.
package graph

import (
	"fmt"

	"hardharvest/internal/app"
	"hardharvest/internal/sim"
)

// CallMode selects how a call's fan-out invocations are issued.
type CallMode int

const (
	// Parallel issues all fan-out invocations at once; consecutive
	// parallel calls of one tier share a stage and overlap too.
	Parallel CallMode = iota
	// Sequential issues the fan-out invocations one after another, each
	// starting when the previous child's subtree completes.
	Sequential
)

func (m CallMode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("CallMode(%d)", int(m))
	}
}

// ParseCallMode resolves a mode by its spec-format name.
func ParseCallMode(s string) (CallMode, error) {
	switch s {
	case "parallel":
		return Parallel, nil
	case "sequential":
		return Sequential, nil
	default:
		return 0, fmt.Errorf("unknown call mode %q (want parallel or sequential)", s)
	}
}

// Call is one downstream RPC edge of a tier.
type Call struct {
	// Tier indexes the downstream tier in Spec.Tiers.
	Tier int
	// Mode selects stage membership (see CallMode).
	Mode CallMode
	// Fanout is the number of invocations this call issues (>= 1).
	Fanout int
}

// Tier is one service tier of the DAG.
type Tier struct {
	// Name identifies the tier in metrics, assertions, and diagnostics.
	Name string
	// Group names the fleet group whose servers serve this tier. The
	// binding is resolved by the caller (the scenario layer); the graph
	// package treats it as opaque.
	Group string
	// VM is the Primary-VM index invocations admit to on the tier's
	// servers (the VM's service profile is the tier's service time).
	VM int
	// Calls lists the downstream RPCs issued after the tier's own service
	// completes, in document order.
	Calls []Call
}

// Spec bounds. MaxFanout caps one call's degree; MaxNodes caps the
// expanded invocation tree of a single request (fan-out multiplies down
// the tree, so a small spec can explode — the bound keeps one request's
// bookkeeping, and ToApp's expansion, small and predictable).
const (
	MaxTiers  = 64
	MaxFanout = 64
	MaxNodes  = 512
)

// Spec is one validated request DAG.
type Spec struct {
	// Tiers lists the DAG's tiers; calls reference them by index.
	Tiers []Tier
	// Root indexes the entry tier requests are admitted to.
	Root int
	// NetDelay is the one-way network delay of every RPC hop, and the
	// ShardGroup lookahead of the dispatcher<->server links.
	NetDelay sim.Duration
}

// FieldError is a Spec validation failure positioned by field path
// ("tiers[2].calls[0].tier"), so front ends holding source positions can
// map it back to a file:line diagnostic.
type FieldError struct {
	Path string
	Msg  string
}

func (e *FieldError) Error() string { return e.Path + ": " + e.Msg }

func fieldErr(path, format string, args ...any) error {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the spec's structure: tier and call bounds, dangling
// tier references, call cycles, root reachability, and the expanded
// per-request invocation count. Errors are *FieldError values.
func (s *Spec) Validate() error {
	if len(s.Tiers) == 0 {
		return fieldErr("tiers", "required: define at least one tier")
	}
	if len(s.Tiers) > MaxTiers {
		return fieldErr("tiers", "%d tiers exceeds the maximum %d", len(s.Tiers), MaxTiers)
	}
	if s.NetDelay <= 0 {
		return fieldErr("rpc_delay_us", "must be positive, got %v", s.NetDelay)
	}
	if s.Root < 0 || s.Root >= len(s.Tiers) {
		return fieldErr("root", "tier index %d out of range (%d tiers)", s.Root, len(s.Tiers))
	}
	seen := make(map[string]bool, len(s.Tiers))
	for i := range s.Tiers {
		t := &s.Tiers[i]
		p := fmt.Sprintf("tiers[%d]", i)
		if t.Name == "" {
			return fieldErr(p+".tier", "required (tiers are referenced by name)")
		}
		if seen[t.Name] {
			return fieldErr(p+".tier", "duplicate tier name %q", t.Name)
		}
		seen[t.Name] = true
		if t.VM < 0 {
			return fieldErr(p+".vm", "must be non-negative, got %d", t.VM)
		}
		for j, c := range t.Calls {
			cp := fmt.Sprintf("%s.calls[%d]", p, j)
			if c.Tier < 0 || c.Tier >= len(s.Tiers) {
				return fieldErr(cp+".tier", "tier index %d out of range (%d tiers)", c.Tier, len(s.Tiers))
			}
			if c.Fanout < 1 || c.Fanout > MaxFanout {
				return fieldErr(cp+".fanout", "must be in [1, %d], got %d", MaxFanout, c.Fanout)
			}
			if c.Mode != Parallel && c.Mode != Sequential {
				return fieldErr(cp+".mode", "unknown call mode %d", int(c.Mode))
			}
		}
	}
	if err := s.checkCycles(); err != nil {
		return err
	}
	// Reachability and expansion run on a cycle-free graph.
	reach := make([]bool, len(s.Tiers))
	s.mark(s.Root, reach)
	for i := range s.Tiers {
		if !reach[i] {
			return fieldErr(fmt.Sprintf("tiers[%d].tier", i),
				"tier %q is unreachable from root tier %q", s.Tiers[i].Name, s.Tiers[s.Root].Name)
		}
	}
	sizes := make([]int, len(s.Tiers))
	if n := s.nodes(s.Root, sizes); n > MaxNodes {
		return fieldErr("tiers", "one request expands to %d tier invocations (max %d); reduce fan-out or depth", n, MaxNodes)
	}
	return nil
}

// checkCycles rejects call cycles with the cycle's tier names in the
// error, positioned at the closing back-edge.
func (s *Spec) checkCycles() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(s.Tiers))
	var stack []int
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = grey
		stack = append(stack, i)
		for j, c := range s.Tiers[i].Calls {
			switch color[c.Tier] {
			case grey:
				names := ""
				for k := len(stack) - 1; k >= 0; k-- {
					names = s.Tiers[stack[k]].Name + " -> " + names
					if stack[k] == c.Tier {
						break
					}
				}
				return fieldErr(fmt.Sprintf("tiers[%d].calls[%d].tier", i, j),
					"call cycle: %s%s", names, s.Tiers[c.Tier].Name)
			case white:
				if err := visit(c.Tier); err != nil {
					return err
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[i] = black
		return nil
	}
	for i := range s.Tiers {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Spec) mark(i int, reach []bool) {
	if reach[i] {
		return
	}
	reach[i] = true
	for _, c := range s.Tiers[i].Calls {
		s.mark(c.Tier, reach)
	}
}

// nodes memoizes the expanded invocation-subtree size of a tier.
func (s *Spec) nodes(i int, sizes []int) int {
	if sizes[i] != 0 {
		return sizes[i]
	}
	n := 1
	for _, c := range s.Tiers[i].Calls {
		n += c.Fanout * s.nodes(c.Tier, sizes)
		if n > MaxNodes {
			break // avoid overflow on adversarial fan-out towers
		}
	}
	sizes[i] = n
	return n
}

// Nodes reports the expanded invocation-tree size of one request (the
// spec must be valid).
func (s *Spec) Nodes() int {
	return s.nodes(s.Root, make([]int, len(s.Tiers)))
}

// TierByName resolves a tier index by name (-1 when absent).
func (s *Spec) TierByName(name string) int {
	for i := range s.Tiers {
		if s.Tiers[i].Name == name {
			return i
		}
	}
	return -1
}

// stage is the runtime/composition view of a tier's calls: consecutive
// parallel calls merge into one stage, each sequential call stands alone.
type stage struct {
	par []Call // parallel members (nil for a sequential stage)
	seq Call   // the sequential call when par is nil
}

// stages partitions a tier's calls (see package comment for semantics).
func stagesOf(t *Tier) []stage {
	var out []stage
	for _, c := range t.Calls {
		if c.Mode == Sequential {
			out = append(out, stage{seq: c})
			continue
		}
		if n := len(out); n > 0 && out[n-1].par != nil {
			out[n-1].par = append(out[n-1].par, c)
			continue
		}
		out = append(out, stage{par: []Call{c}})
	}
	return out
}

// ToApp expands the spec into an internal/app DAG over the *per-request
// invocation tree*: one app stage per expanded tier invocation, with
// dependency edges encoding exactly the stage semantics above (a stage's
// children depend on every node of the previous stage's subtrees, so
// "start after the subtree completes" falls out of app's max-over-deps
// rule). Sampling each stage's latency from the tier's measured hop
// distribution then composes end-to-end latency the same way the live
// dispatcher joins it — the Monte-Carlo cross-check used by
// internal/validate in the no-queueing limit.
func (s *Spec) ToApp(name string) *app.App {
	a := &app.App{Name: name}
	// expand appends the invocation tree of tier i whose own hop starts
	// after deps, returning every appended node (the subtree).
	var expand func(i int, deps []int) []int
	expand = func(i int, deps []int) []int {
		t := &s.Tiers[i]
		self := len(a.Stages)
		a.Stages = append(a.Stages, app.Stage{Service: t.Name, Deps: append([]int(nil), deps...)})
		subtree := []int{self}
		prev := []int{self} // completion frontier gating the next stage
		for _, st := range stagesOf(t) {
			var stageNodes []int
			if st.par != nil {
				for _, c := range st.par {
					for k := 0; k < c.Fanout; k++ {
						stageNodes = append(stageNodes, expand(c.Tier, prev)...)
					}
				}
			} else {
				chain := prev
				for k := 0; k < st.seq.Fanout; k++ {
					child := expand(st.seq.Tier, chain)
					chain = child
					stageNodes = append(stageNodes, child...)
				}
				// The stage completes with the last child's subtree; earlier
				// children are already complete by then, but keeping every
				// node in the frontier is equivalent under max-over-deps.
			}
			subtree = append(subtree, stageNodes...)
			prev = stageNodes
		}
		return subtree
	}
	expand(s.Root, nil)
	return a
}

// SocialNet returns the DeathStarBench-shaped reference DAG used by
// `hhsim serve -graph` and the harvest-sensitivity sweep: a frontend
// calls a logic tier twice in parallel, and each logic invocation fans
// out to a cache and a database tier in parallel.
func SocialNet(netDelay sim.Duration) *Spec {
	return &Spec{
		NetDelay: netDelay,
		Root:     0,
		Tiers: []Tier{
			{Name: "frontend", Group: "frontend", VM: 0,
				Calls: []Call{{Tier: 1, Mode: Parallel, Fanout: 2}}},
			{Name: "logic", Group: "logic", VM: 0,
				Calls: []Call{{Tier: 2, Mode: Parallel, Fanout: 1}, {Tier: 3, Mode: Parallel, Fanout: 1}}},
			{Name: "cache", Group: "leaf", VM: 0},
			{Name: "db", Group: "leaf", VM: 1},
		},
	}
}
