package batch

import (
	"fmt"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Workload describes one Harvest VM batch application for the cluster
// simulator: each application is an endless stream of jobs (batch VMs always
// have available work, §4.1.4); throughput is jobs completed per second.
type Workload struct {
	// Name matches Figure 17's x-axis.
	Name string
	// JobCPU is one job's CPU demand on a warm core with the full cache.
	JobCPU sim.Duration
	// JobSigma is the log-normal sigma of job demand.
	JobSigma float64
	// MemoryIntensity in [0, 1] scales how much the reduced cache capacity
	// of a harvested core (harvest region only) slows the job down. The
	// paper observes memory-intensive applications (e.g., RndFTrain) gain
	// less from harvesting.
	MemoryIntensity float64
}

// HarvestCachePenalty is the maximum slowdown a fully memory-bound job
// suffers when restricted to the harvest region of the caches (50% of ways).
const HarvestCachePenalty = 0.45

// HarvestedSlowdown reports the execution-time multiplier for this job when
// running on a harvested core (restricted to the harvest cache region).
func (w *Workload) HarvestedSlowdown() float64 {
	return 1 + w.MemoryIntensity*HarvestCachePenalty
}

// Workloads returns the eight batch applications of the evaluation, one per
// server: GraphBIG (BFS, CC, DC, PRank), FunctionBench (LRTrain, RndFTrain),
// CloudSuite (Hadoop), and BioBench (MUMmer).
func Workloads() []*Workload {
	return []*Workload{
		{Name: "BFS", JobCPU: 1500 * sim.Microsecond, JobSigma: 0.3, MemoryIntensity: 0.45},
		{Name: "CC", JobCPU: 1800 * sim.Microsecond, JobSigma: 0.3, MemoryIntensity: 0.50},
		{Name: "DC", JobCPU: 1200 * sim.Microsecond, JobSigma: 0.25, MemoryIntensity: 0.40},
		{Name: "PRank", JobCPU: 2200 * sim.Microsecond, JobSigma: 0.3, MemoryIntensity: 0.60},
		{Name: "LRTrain", JobCPU: 2000 * sim.Microsecond, JobSigma: 0.25, MemoryIntensity: 0.20},
		{Name: "RndFTrain", JobCPU: 2600 * sim.Microsecond, JobSigma: 0.3, MemoryIntensity: 0.90},
		{Name: "Hadoop", JobCPU: 2400 * sim.Microsecond, JobSigma: 0.35, MemoryIntensity: 0.70},
		{Name: "MUMmer", JobCPU: 1900 * sim.Microsecond, JobSigma: 0.35, MemoryIntensity: 0.65},
	}
}

// WorkloadByName returns the named workload or an error.
func WorkloadByName(name string) (*Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("batch: unknown workload %q", name)
}

// SampleJob draws one job's CPU demand.
func (w *Workload) SampleJob(rng *stats.RNG) sim.Duration {
	if w.JobSigma <= 0 {
		return w.JobCPU
	}
	mu := logf(float64(w.JobCPU)) - w.JobSigma*w.JobSigma/2
	d := sim.Duration(rng.LogNormal(mu, w.JobSigma))
	if d < 10*sim.Microsecond {
		d = 10 * sim.Microsecond
	}
	return d
}

// RunKernel executes the workload's real mini-kernel at a small input scale
// and returns the operation count. Used by the examples and by the
// calibration test tying job demands to real kernel work.
func (w *Workload) RunKernel(rng *stats.RNG, scale int) (ops uint64, err error) {
	if scale <= 0 {
		scale = 1
	}
	switch w.Name {
	case "BFS":
		g := GenerateGraph(rng, 2000*scale, 8)
		return BFS(g, 0).Ops, nil
	case "CC":
		g := GenerateGraph(rng, 2000*scale, 8)
		return ConnectedComponents(g).Ops, nil
	case "DC":
		g := GenerateGraph(rng, 2000*scale, 8)
		_, ops := DegreeCentrality(g)
		return ops, nil
	case "PRank":
		g := GenerateGraph(rng, 1000*scale, 8)
		_, ops := PageRank(g, 0.85, 10)
		return ops, nil
	case "LRTrain":
		d := GenerateDataset(rng, 500*scale, 16)
		return TrainLogistic(d, 20, 0.1).Ops, nil
	case "RndFTrain":
		d := GenerateDataset(rng, 400*scale, 12)
		return TrainForest(rng, d, 10).Ops, nil
	case "Hadoop":
		corpus := GenerateCorpus(rng, 400*scale, 20, 1000)
		return WordCount(corpus).Ops, nil
	case "MUMmer":
		a := GenerateDNA(rng, 4000*scale)
		b := GenerateDNA(rng, 4000*scale)
		return MaxExactMatch(a, b, 12).Ops, nil
	default:
		return 0, fmt.Errorf("batch: no kernel for %q", w.Name)
	}
}
