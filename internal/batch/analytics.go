package batch

import (
	"sort"
	"strings"

	"hardharvest/internal/stats"
)

// Data-analytics and bioinformatics kernels: a map/reduce-style word count
// (the CloudSuite Hadoop stand-in) and a maximal-exact-match finder over DNA
// strings (the BioBench MUMmer stand-in).

// WordCountResult is the reduced word→count table plus op accounting.
type WordCountResult struct {
	Counts map[string]int
	Ops    uint64
}

// WordCount tokenizes the corpus into words and counts them through an
// explicit map→shuffle→reduce pipeline (three passes, as Hadoop would).
func WordCount(corpus []string) WordCountResult {
	var ops uint64
	// Map phase: emit (word, 1) pairs.
	type kv struct {
		k string
	}
	var pairs []kv
	for _, line := range corpus {
		for _, w := range strings.Fields(line) {
			w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))
			if w == "" {
				continue
			}
			pairs = append(pairs, kv{w})
			ops++
		}
	}
	// Shuffle phase: sort pairs by key.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	ops += uint64(len(pairs))
	// Reduce phase: aggregate runs.
	counts := make(map[string]int)
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].k == pairs[i].k {
			j++
			ops++
		}
		counts[pairs[i].k] = j - i
		i = j
	}
	return WordCountResult{Counts: counts, Ops: ops}
}

// GenerateCorpus builds lines of synthetic text with a Zipf word
// distribution, the shape real corpora have.
func GenerateCorpus(rng *stats.RNG, lines, wordsPerLine, vocab int) []string {
	z := stats.NewZipf(rng, vocab, 1.1)
	out := make([]string, lines)
	var b strings.Builder
	for i := range out {
		b.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(wordFor(z.Next()))
		}
		out[i] = b.String()
	}
	return out
}

func wordFor(rank int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if rank == 0 {
		return "a"
	}
	var b []byte
	for rank > 0 {
		b = append(b, letters[rank%26])
		rank /= 26
	}
	return string(b)
}

// GenerateDNA builds a random DNA string of length n.
func GenerateDNA(rng *stats.RNG, n int) string {
	const bases = "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

// MatchResult is the longest exact match between two sequences.
type MatchResult struct {
	Length int
	PosA   int
	PosB   int
	Ops    uint64
}

// MaxExactMatch finds the longest common substring of a and b with the
// classic rolling dynamic program over suffix alignment (O(|a|*|b|) in the
// worst case, restricted by k-mer seeding to keep synthetic inputs fast):
// positions sharing a seed of length k are extended to maximal matches, the
// way MUMmer anchors alignments.
func MaxExactMatch(a, b string, k int) MatchResult {
	if k <= 0 {
		k = 12
	}
	var ops uint64
	if len(a) < k || len(b) < k {
		return MatchResult{}
	}
	// Index all k-mers of a.
	seeds := make(map[string][]int, len(a))
	for i := 0; i+k <= len(a); i++ {
		s := a[i : i+k]
		seeds[s] = append(seeds[s], i)
		ops++
	}
	best := MatchResult{}
	for j := 0; j+k <= len(b); j++ {
		s := b[j : j+k]
		ops++
		for _, i := range seeds[s] {
			// Extend right.
			l := k
			for i+l < len(a) && j+l < len(b) && a[i+l] == b[j+l] {
				l++
				ops++
			}
			// Extend left.
			li, lj := i, j
			for li > 0 && lj > 0 && a[li-1] == b[lj-1] {
				li--
				lj--
				l++
				ops++
			}
			if l > best.Length {
				best = MatchResult{Length: l, PosA: li, PosB: lj}
			}
		}
	}
	best.Ops = ops
	return best
}
