// Package batch implements the Harvest VM workloads: real miniature kernels
// standing in for the paper's batch suites (GraphBIG BFS/CC/DC/PageRank,
// FunctionBench LR/random-forest training, CloudSuite Hadoop, BioBench
// MUMmer), a synthetic-input generator for each, and a job-stream model the
// cluster simulator uses to account Harvest VM throughput. Kernels report
// operation counts so job service demands are deterministic and
// machine-independent.
package batch

import (
	"hardharvest/internal/stats"
)

// Graph is a directed graph in adjacency-list form.
type Graph struct {
	N   int
	Adj [][]int32
}

// Edges counts directed edges.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v int) int { return len(g.Adj[v]) }

// GenerateGraph builds a scale-free-ish random graph with n vertices and
// ~n*avgDeg edges via preferential attachment with a uniform floor, which
// yields the skewed degree distributions of GraphBIG's inputs.
func GenerateGraph(rng *stats.RNG, n, avgDeg int) *Graph {
	if n <= 0 {
		panic("batch: graph needs vertices")
	}
	g := &Graph{N: n, Adj: make([][]int32, n)}
	// targets holds one entry per edge endpoint, realizing preferential
	// attachment by sampling previous endpoints.
	targets := make([]int32, 0, n*avgDeg)
	for v := 0; v < n; v++ {
		deg := avgDeg
		for i := 0; i < deg; i++ {
			var t int32
			if len(targets) > 0 && rng.Bool(0.6) {
				t = targets[rng.Intn(len(targets))]
			} else {
				t = int32(rng.Intn(n))
			}
			if int(t) == v {
				t = int32((v + 1) % n)
			}
			g.Adj[v] = append(g.Adj[v], t)
			targets = append(targets, t, int32(v))
		}
	}
	return g
}

// BFSResult carries distances from the source (-1 for unreachable) plus the
// operation count (vertices settled + edges relaxed).
type BFSResult struct {
	Dist    []int32
	Visited int
	Ops     uint64
}

// BFS runs breadth-first search from src.
func BFS(g *Graph, src int) BFSResult {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N)
	queue = append(queue, int32(src))
	var ops uint64
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ops++
		for _, w := range g.Adj[v] {
			ops++
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				visited++
				queue = append(queue, w)
			}
		}
	}
	return BFSResult{Dist: dist, Visited: visited, Ops: ops}
}

// CCResult carries component labels and count.
type CCResult struct {
	Label      []int32
	Components int
	Ops        uint64
}

// ConnectedComponents labels weakly connected components using union-find
// with path halving.
func ConnectedComponents(g *Graph) CCResult {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var ops uint64
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
			ops++
		}
		return x
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Adj[v] {
			ops++
			a, b := find(int32(v)), find(w)
			if a != b {
				parent[a] = b
			}
		}
	}
	label := make([]int32, g.N)
	roots := map[int32]int32{}
	for v := range label {
		r := find(int32(v))
		if _, ok := roots[r]; !ok {
			roots[r] = int32(len(roots))
		}
		label[v] = roots[r]
	}
	return CCResult{Label: label, Components: len(roots), Ops: ops}
}

// DegreeCentrality computes (in+out)-degree per vertex.
func DegreeCentrality(g *Graph) (deg []int32, ops uint64) {
	deg = make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		deg[v] += int32(len(g.Adj[v]))
		for _, w := range g.Adj[v] {
			deg[w]++
			ops++
		}
	}
	return deg, ops
}

// PageRank runs power iteration with damping d for iters rounds.
func PageRank(g *Graph, d float64, iters int) (rank []float64, ops uint64) {
	rank = make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1 / float64(g.N)
	}
	for it := 0; it < iters; it++ {
		base := (1 - d) / float64(g.N)
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for v := 0; v < g.N; v++ {
			if len(g.Adj[v]) == 0 {
				dangling += rank[v]
				continue
			}
			share := d * rank[v] / float64(len(g.Adj[v]))
			for _, w := range g.Adj[v] {
				next[w] += share
				ops++
			}
		}
		spread := d * dangling / float64(g.N)
		for i := range next {
			next[i] += spread
			ops++
		}
		rank, next = next, rank
	}
	return rank, ops
}
