package batch

import (
	"strings"
	"testing"

	"hardharvest/internal/stats"
)

func lineGraph(n int) *Graph {
	// 0 -> 1 -> 2 -> ... -> n-1
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for v := 0; v < n-1; v++ {
		g.Adj[v] = []int32{int32(v + 1)}
	}
	return g
}

func TestGenerateGraphShape(t *testing.T) {
	rng := stats.NewRNG(1)
	g := GenerateGraph(rng, 1000, 8)
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	if e := g.Edges(); e != 8000 {
		t.Fatalf("edges = %d, want 8000", e)
	}
	// No self loops, valid targets.
	for v := 0; v < g.N; v++ {
		for _, w := range g.Adj[v] {
			if int(w) == v {
				t.Fatal("self loop")
			}
			if w < 0 || int(w) >= g.N {
				t.Fatalf("edge target out of range: %d", w)
			}
		}
	}
	// Preferential attachment should skew degrees: max in-degree well above
	// the average.
	deg, _ := DegreeCentrality(g)
	var max int32
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 3*16 { // avg total degree is 16
		t.Fatalf("degree distribution not skewed: max=%d", max)
	}
}

func TestBFSLineGraph(t *testing.T) {
	g := lineGraph(10)
	r := BFS(g, 0)
	for i := 0; i < 10; i++ {
		if r.Dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d", i, r.Dist[i])
		}
	}
	if r.Visited != 10 {
		t.Fatalf("visited = %d", r.Visited)
	}
	// From the middle, earlier vertices are unreachable.
	r = BFS(g, 5)
	if r.Dist[4] != -1 || r.Dist[9] != 4 {
		t.Fatalf("dist from 5: %v", r.Dist)
	}
	if r.Ops == 0 {
		t.Fatal("no ops counted")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two separate lines: {0,1,2} and {3,4}.
	g := &Graph{N: 5, Adj: [][]int32{{1}, {2}, {}, {4}, {}}}
	r := ConnectedComponents(g)
	if r.Components != 2 {
		t.Fatalf("components = %d", r.Components)
	}
	if r.Label[0] != r.Label[1] || r.Label[1] != r.Label[2] {
		t.Fatal("first component labels differ")
	}
	if r.Label[3] != r.Label[4] {
		t.Fatal("second component labels differ")
	}
	if r.Label[0] == r.Label[3] {
		t.Fatal("components merged")
	}
}

func TestConnectedComponentsFullyConnected(t *testing.T) {
	rng := stats.NewRNG(2)
	g := GenerateGraph(rng, 500, 8)
	// Preferential attachment with our construction produces one giant
	// weak component (every vertex has out-degree 8).
	r := ConnectedComponents(g)
	if r.Components != 1 {
		t.Fatalf("components = %d, want 1", r.Components)
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := &Graph{N: 3, Adj: [][]int32{{1, 2}, {2}, {}}}
	deg, ops := DegreeCentrality(g)
	if deg[0] != 2 || deg[1] != 2 || deg[2] != 2 {
		t.Fatalf("degrees = %v", deg)
	}
	if ops != 3 {
		t.Fatalf("ops = %d", ops)
	}
}

func TestPageRankProperties(t *testing.T) {
	rng := stats.NewRNG(3)
	g := GenerateGraph(rng, 300, 6)
	rank, ops := PageRank(g, 0.85, 20)
	if ops == 0 {
		t.Fatal("no ops")
	}
	sum := 0.0
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("rank sum = %v, want ~1", sum)
	}
	// A sink-heavy hub should outrank the median vertex.
	deg, _ := DegreeCentrality(g)
	var hub, low int
	for v := range deg {
		if deg[v] > deg[hub] {
			hub = v
		}
		if deg[v] < deg[low] {
			low = v
		}
	}
	if rank[hub] <= rank[low] {
		t.Fatalf("hub rank %v <= low-degree rank %v", rank[hub], rank[low])
	}
}

func TestLogisticLearns(t *testing.T) {
	rng := stats.NewRNG(4)
	d := GenerateDataset(rng, 600, 8)
	m := TrainLogistic(d, 40, 0.5)
	acc := m.Accuracy(d)
	if acc < 0.9 {
		t.Fatalf("LR accuracy = %v, want >= 0.9 on separable blobs", acc)
	}
	if m.Ops == 0 {
		t.Fatal("no ops counted")
	}
}

func TestForestLearns(t *testing.T) {
	rng := stats.NewRNG(5)
	d := GenerateDataset(rng, 400, 8)
	f := TrainForest(rng, d, 15)
	if len(f.Stumps) != 15 {
		t.Fatalf("stumps = %d", len(f.Stumps))
	}
	acc := f.Accuracy(d)
	if acc < 0.75 {
		t.Fatalf("forest accuracy = %v, want >= 0.75", acc)
	}
}

func TestWordCount(t *testing.T) {
	r := WordCount([]string{"the cat and the hat", "The CAT!"})
	if r.Counts["the"] != 3 {
		t.Fatalf("the = %d", r.Counts["the"])
	}
	if r.Counts["cat"] != 2 {
		t.Fatalf("cat = %d", r.Counts["cat"])
	}
	if r.Counts["hat"] != 1 || r.Counts["and"] != 1 {
		t.Fatalf("counts = %v", r.Counts)
	}
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
	empty := WordCount(nil)
	if len(empty.Counts) != 0 {
		t.Fatal("empty corpus should count nothing")
	}
}

func TestGenerateCorpusZipf(t *testing.T) {
	rng := stats.NewRNG(6)
	corpus := GenerateCorpus(rng, 200, 20, 500)
	if len(corpus) != 200 {
		t.Fatalf("lines = %d", len(corpus))
	}
	r := WordCount(corpus)
	// Zipf vocabulary: the most common word dominates.
	max := 0
	for _, c := range r.Counts {
		if c > max {
			max = c
		}
	}
	total := 200 * 20
	if float64(max)/float64(total) < 0.05 {
		t.Fatalf("top word frequency %.3f too low for Zipf", float64(max)/float64(total))
	}
}

func TestMaxExactMatch(t *testing.T) {
	a := "AAAACGTACGTACGTTTTT"
	b := "GGGGACGTACGTACGGGG"
	// Longest common substring: "ACGTACGTACG" (11 bases).
	r := MaxExactMatch(a, b, 4)
	if r.Length != 11 {
		t.Fatalf("match length = %d, want 11", r.Length)
	}
	if a[r.PosA:r.PosA+r.Length] != b[r.PosB:r.PosB+r.Length] {
		t.Fatal("reported positions do not match")
	}
	if !strings.Contains(a, a[r.PosA:r.PosA+r.Length]) {
		t.Fatal("match not a substring")
	}
}

func TestMaxExactMatchEdgeCases(t *testing.T) {
	if r := MaxExactMatch("ACGT", "ACGT", 12); r.Length != 0 {
		t.Fatalf("short input should yield no seeded match, got %d", r.Length)
	}
	r := MaxExactMatch("ACGTACGTACGT", "ACGTACGTACGT", 4)
	if r.Length != 12 {
		t.Fatalf("identical strings match = %d", r.Length)
	}
	if r2 := MaxExactMatch("", "", 0); r2.Length != 0 {
		t.Fatal("empty input")
	}
}

func TestWorkloadsRoster(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("workloads = %d", len(ws))
	}
	rndf, err := WorkloadByName("RndFTrain")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Name != "RndFTrain" && w.MemoryIntensity > rndf.MemoryIntensity {
			t.Errorf("RndFTrain should be the most memory-intensive; %s = %v", w.Name, w.MemoryIntensity)
		}
		if s := w.HarvestedSlowdown(); s < 1 || s > 1+HarvestCachePenalty {
			t.Errorf("%s slowdown = %v", w.Name, s)
		}
	}
	if _, err := WorkloadByName("Nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestSampleJobMeans(t *testing.T) {
	rng := stats.NewRNG(7)
	w, _ := WorkloadByName("BFS")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(w.SampleJob(rng))
	}
	mean := sum / n
	rel := (mean - float64(w.JobCPU)) / float64(w.JobCPU)
	if rel < -0.05 || rel > 0.05 {
		t.Fatalf("mean job = %v, want ~%v", mean, w.JobCPU)
	}
}

func TestRunKernelAllWorkloads(t *testing.T) {
	rng := stats.NewRNG(8)
	for _, w := range Workloads() {
		ops, err := w.RunKernel(rng, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if ops == 0 {
			t.Fatalf("%s: zero ops", w.Name)
		}
	}
	bad := &Workload{Name: "Nope"}
	if _, err := bad.RunKernel(rng, 1); err == nil {
		t.Fatal("unknown kernel should error")
	}
}
