package batch

import (
	"math"

	"hardharvest/internal/stats"
)

// ML training kernels standing in for FunctionBench's LRTrain and RndFTrain.

// Dataset is a dense feature matrix with binary labels.
type Dataset struct {
	X [][]float64
	Y []int
}

// GenerateDataset draws n samples with dim features from two Gaussian
// blobs, linearly separable with noise — enough structure for the trainers
// to measurably learn.
func GenerateDataset(rng *stats.RNG, n, dim int) *Dataset {
	d := &Dataset{X: make([][]float64, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		y := i % 2
		row := make([]float64, dim)
		for j := range row {
			center := -1.0
			if y == 1 {
				center = 1.0
			}
			row[j] = rng.Normal(center*float64(j%3+1)*0.3, 1.0)
		}
		d.X[i] = row
		d.Y[i] = y
	}
	return d
}

// LRModel is a logistic-regression model.
type LRModel struct {
	W    []float64
	Bias float64
	Ops  uint64
}

// TrainLogistic runs full-batch gradient descent for epochs rounds.
func TrainLogistic(d *Dataset, epochs int, lr float64) *LRModel {
	dim := len(d.X[0])
	m := &LRModel{W: make([]float64, dim)}
	gradW := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		for j := range gradW {
			gradW[j] = 0
		}
		gradB := 0.0
		for i, row := range d.X {
			p := m.predict(row)
			err := p - float64(d.Y[i])
			for j, x := range row {
				gradW[j] += err * x
				m.Ops++
			}
			gradB += err
		}
		n := float64(len(d.X))
		for j := range m.W {
			m.W[j] -= lr * gradW[j] / n
		}
		m.Bias -= lr * gradB / n
	}
	return m
}

func (m *LRModel) predict(row []float64) float64 {
	z := m.Bias
	for j, x := range row {
		z += m.W[j] * x
	}
	return 1 / (1 + math.Exp(-z))
}

// Accuracy reports the fraction of correct predictions on d.
func (m *LRModel) Accuracy(d *Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		p := 0
		if m.predict(row) >= 0.5 {
			p = 1
		}
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.X))
}

// Stump is a depth-1 decision tree on one feature.
type Stump struct {
	Feature   int
	Threshold float64
	LeftClass int // class predicted when x[Feature] < Threshold
}

// Forest is a bag of stumps trained on bootstrap samples.
type Forest struct {
	Stumps []Stump
	Ops    uint64
}

// TrainForest trains trees stumps, each on a bootstrap sample, choosing the
// best (feature, threshold) by classification error over a small threshold
// grid. This captures random-forest training's access pattern: repeated
// passes over resampled data (memory-intensive, as the paper notes for
// RndFTrain).
func TrainForest(rng *stats.RNG, d *Dataset, trees int) *Forest {
	f := &Forest{}
	n := len(d.X)
	dim := len(d.X[0])
	for t := 0; t < trees; t++ {
		// Bootstrap sample indices.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		best := Stump{Feature: 0, Threshold: 0, LeftClass: 0}
		bestErr := n + 1
		for feat := 0; feat < dim; feat++ {
			for _, thr := range []float64{-1, -0.5, 0, 0.5, 1} {
				for _, leftClass := range []int{0, 1} {
					errs := 0
					for _, i := range idx {
						pred := leftClass
						if d.X[i][feat] >= thr {
							pred = 1 - leftClass
						}
						if pred != d.Y[i] {
							errs++
						}
						f.Ops++
					}
					if errs < bestErr {
						bestErr = errs
						best = Stump{Feature: feat, Threshold: thr, LeftClass: leftClass}
					}
				}
			}
		}
		f.Stumps = append(f.Stumps, best)
	}
	return f
}

// Predict classifies a row by majority vote.
func (f *Forest) Predict(row []float64) int {
	votes := 0
	for _, s := range f.Stumps {
		pred := s.LeftClass
		if row[s.Feature] >= s.Threshold {
			pred = 1 - s.LeftClass
		}
		votes += pred
	}
	if votes*2 >= len(f.Stumps) {
		return 1
	}
	return 0
}

// Accuracy reports the forest's accuracy on d.
func (f *Forest) Accuracy(d *Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		if f.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.X))
}
