package batch

import "math"

func logf(x float64) float64 { return math.Log(x) }
