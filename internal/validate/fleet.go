package validate

import "fmt"

// Fleet-level conservation: the routed-scenario oracle. The router accounts
// every generated request and every dispatched attempt; these identities
// prove that no request is silently lost across crash, ejection, failover,
// or drain, and that flow through the router balances exactly.

// FleetTotals carries the front door's end-of-run counters (see
// internal/route). Requests are logical units of work; attempts are
// dispatches of a request to one backend (failover re-dispatches the same
// request as a new attempt while the stranded attempt keeps running to a
// zombie reply).
type FleetTotals struct {
	// Request ledger.
	Generated   uint64 // requests created at the front door
	Completions uint64 // resolved by a live completion reply
	Sheds       uint64 // resolved by a live shed reply (admission control)
	Lost        uint64 // resolved as lost: failover budget or fleet exhausted
	LostAtAdmit uint64 // subset of Lost: no eligible backend at admission
	InflightEnd uint64 // unresolved when the run ended

	// Attempt ledger.
	InitialDispatches uint64 // first attempts
	Dispatches        uint64 // all attempts (initial + failover)
	Failovers         uint64 // re-dispatches of stranded requests
	DoneRecv          uint64 // completion replies received (live + zombie)
	ShedRecv          uint64 // shed replies received (live + zombie)
	ZombieDones       uint64 // completion replies for superseded/resolved attempts
	ZombieSheds       uint64 // shed replies for superseded/resolved attempts
	OutstandingEnd    uint64 // attempts still awaiting a reply at the end
}

// FleetConservation checks the six routed-fleet conservation identities:
//
//	C1  generated = completions + sheds + lost + in-flight
//	C2  dispatches = done-replies + shed-replies + outstanding
//	C3  done-replies = live completions + zombie completions
//	C4  shed-replies = live sheds + zombie sheds
//	C5  dispatches = initial dispatches + failovers
//	C6  generated = initial dispatches + lost-at-admission
//
// C1 is the no-silent-loss guarantee; C2 balances flow through the router;
// C3/C4 pin zombie accounting; C5/C6 tie the attempt ledger back to the
// request ledger.
func FleetConservation(name string, t FleetTotals) Check {
	type identity struct {
		rel      string
		lhs, rhs uint64
	}
	ids := []identity{
		{"generated = completions + sheds + lost + inflight",
			t.Generated, t.Completions + t.Sheds + t.Lost + t.InflightEnd},
		{"dispatches = done_recv + shed_recv + outstanding",
			t.Dispatches, t.DoneRecv + t.ShedRecv + t.OutstandingEnd},
		{"done_recv = completions + zombie_dones",
			t.DoneRecv, t.Completions + t.ZombieDones},
		{"shed_recv = sheds + zombie_sheds",
			t.ShedRecv, t.Sheds + t.ZombieSheds},
		{"dispatches = initial + failovers",
			t.Dispatches, t.InitialDispatches + t.Failovers},
		{"generated = initial + lost_at_admit",
			t.Generated, t.InitialDispatches + t.LostAtAdmit},
	}
	for _, id := range ids {
		if id.lhs != id.rhs {
			return Check{
				Name:     name,
				Relation: "fleet conservation: " + id.rel,
				OK:       false,
				Detail:   fmt.Sprintf("%s: %d != %d", id.rel, id.lhs, id.rhs),
			}
		}
	}
	return Check{
		Name:     name,
		Relation: "fleet conservation (6 identities)",
		OK:       true,
		Detail: fmt.Sprintf("generated=%d completed=%d shed=%d lost=%d inflight=%d failovers=%d zombies=%d",
			t.Generated, t.Completions, t.Sheds, t.Lost, t.InflightEnd,
			t.Failovers, t.ZombieDones+t.ZombieSheds),
	}
}
