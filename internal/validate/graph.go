package validate

import (
	"fmt"
	"math"

	"hardharvest/internal/app"
	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Graph-level oracles: conservation of the request-DAG dispatcher's
// ledgers, and the Monte-Carlo cross-check tying live DAG execution back
// to the internal/app critical-path composer.

// GraphTotals carries the DAG dispatcher's end-of-run counters (see
// internal/graph). Requests are end-to-end DAG traversals; RPCs are the
// individual tier invocations a request expands into.
type GraphTotals struct {
	// Request ledger.
	Generated   uint64 // root requests admitted
	Completed   uint64 // whole invocation tree completed, no shed
	Failed      uint64 // drained with at least one shed invocation
	InflightEnd uint64 // invocation tree still incomplete at the end

	// RPC ledger.
	Dispatches     uint64 // tier invocations sent to servers
	DoneRecv       uint64 // completion replies received
	ShedRecv       uint64 // shed replies received
	OutstandingEnd uint64 // invocations still awaiting a reply at the end

	// Per-tier sums (over every tier's own counters).
	TierDispatchSum uint64
	TierDoneSum     uint64
	TierShedSum     uint64

	// E2ESamples counts latencies recorded into the end-to-end sketch
	// (measured-window completions only).
	E2ESamples uint64
}

// GraphConservation checks the request-DAG conservation identities:
//
//	D1  generated = completed + failed + in-flight
//	D2  dispatches = done-replies + shed-replies + outstanding
//	D3  dispatches = Σ per-tier dispatches
//	D4  done-replies = Σ per-tier dones, shed-replies = Σ per-tier sheds
//	D5  failed ≤ shed-replies (every failure names at least one shed)
//	D6  e2e samples ≤ completed (only measured completions record latency)
//
// D1 is the no-silent-loss guarantee for whole request trees (a shed
// subtree must still drain its joins); D2/D3/D4 balance the RPC flow
// between the dispatcher and the tiers.
func GraphConservation(name string, t GraphTotals) Check {
	type identity struct {
		rel      string
		lhs, rhs uint64
	}
	ids := []identity{
		{"generated = completed + failed + inflight",
			t.Generated, t.Completed + t.Failed + t.InflightEnd},
		{"dispatches = done_recv + shed_recv + outstanding",
			t.Dispatches, t.DoneRecv + t.ShedRecv + t.OutstandingEnd},
		{"dispatches = sum(tier dispatches)",
			t.Dispatches, t.TierDispatchSum},
		{"done_recv = sum(tier dones)",
			t.DoneRecv, t.TierDoneSum},
		{"shed_recv = sum(tier sheds)",
			t.ShedRecv, t.TierShedSum},
	}
	for _, id := range ids {
		if id.lhs != id.rhs {
			return Check{
				Name:     name,
				Relation: "graph conservation: " + id.rel,
				OK:       false,
				Detail:   fmt.Sprintf("%s: %d != %d", id.rel, id.lhs, id.rhs),
			}
		}
	}
	if t.Failed > t.ShedRecv {
		return Check{
			Name:     name,
			Relation: "graph conservation: failed <= shed_recv",
			OK:       false,
			Detail:   fmt.Sprintf("failed <= shed_recv: %d > %d", t.Failed, t.ShedRecv),
		}
	}
	if t.E2ESamples > t.Completed {
		return Check{
			Name:     name,
			Relation: "graph conservation: e2e_samples <= completed",
			OK:       false,
			Detail:   fmt.Sprintf("e2e_samples <= completed: %d > %d", t.E2ESamples, t.Completed),
		}
	}
	return Check{
		Name:     name,
		Relation: "graph conservation (6 identities)",
		OK:       true,
		Detail: fmt.Sprintf("generated=%d completed=%d failed=%d inflight=%d rpcs=%d outstanding=%d",
			t.Generated, t.Completed, t.Failed, t.InflightEnd, t.Dispatches, t.OutstandingEnd),
	}
}

// GraphResultTotals maps a dispatcher result onto the conservation
// oracle's ledger. (The adapter lives here, not on graph.Result: graph
// must not import validate, whose golden harness imports experiments —
// which hosts DAG sweeps over graph.)
func GraphResultTotals(r *graph.Result) GraphTotals {
	t := GraphTotals{
		Generated:      r.Generated,
		Completed:      r.Completed,
		Failed:         r.Failed,
		InflightEnd:    r.InflightEnd,
		Dispatches:     r.Dispatches,
		DoneRecv:       r.DoneRecv,
		ShedRecv:       r.ShedRecv,
		OutstandingEnd: r.OutstandingEnd,
		E2ESamples:     uint64(r.E2E.Count()),
	}
	for i := range r.Tiers {
		t.TierDispatchSum += r.Tiers[i].Dispatches
		t.TierDoneSum += r.Tiers[i].Dones
		t.TierShedSum += r.Tiers[i].Sheds
	}
	return t
}

// GraphResultConservation runs the graph-conservation oracle over a
// dispatcher result.
func GraphResultConservation(name string, r *graph.Result) Check {
	return GraphConservation(name, GraphResultTotals(r))
}

// Monte-Carlo cross-check band: the live end-to-end p50/p99 must agree
// with the composed distribution within this relative tolerance, and the
// means within the tighter one. The band absorbs three error sources that
// remain even with queueing-induced hop correlation excluded by design
// (the relation is declared only on scenarios whose load is far below
// saturation): sketch bucket quantization (stats.SketchRelativeError on
// both the hop inputs and the measured e2e), Monte-Carlo sampling noise
// at the p99, and the dispatcher's hop sketches folding every server of a
// tier into one distribution.
const (
	GraphMCQuantileBand = 0.15
	GraphMCMeanBand     = 0.10
	// GraphMCTrials is the default Monte-Carlo sample count: small enough
	// to keep scenario oracles fast, large enough that p99 sampling noise
	// stays well inside the quantile band.
	GraphMCTrials = 20000
	// GraphMCMinSamples gates the relation: below this many measured
	// end-to-end samples the quantiles are too noisy to compare.
	GraphMCMinSamples = 200
)

// sketchSource samples per-tier hop latencies by inverse CDF over the
// dispatcher's measured hop sketches (milliseconds).
type sketchSource map[string]*stats.Sketch

func (ss sketchSource) SampleLatency(service string, u float64) (sim.Duration, bool) {
	sk, ok := ss[service]
	if !ok || sk.Count() == 0 {
		return 0, false
	}
	return sim.Duration(sk.Quantile(u) * float64(sim.Millisecond)), true
}

// GraphMC cross-checks a live DAG run against the internal/app composer
// in the no-queueing limit: a is the spec's expanded per-request
// invocation tree (graph.Spec.ToApp), hops the per-tier measured hop
// sketches, e2e the measured end-to-end sketch (both in milliseconds).
// The composer Monte-Carlo samples each invocation's hop independently
// and joins by critical path — exactly the dispatcher's stage semantics —
// so at loads where queueing does not correlate hops, the composed
// p50/p99/mean must match the measured ones within the stated bands.
func GraphMC(name string, a *app.App, hops map[string]*stats.Sketch, e2e *stats.Sketch, trials int, seed uint64) Check {
	if e2e.Count() < GraphMCMinSamples {
		return Check{
			Name:     name,
			Relation: "graph/mc: enough measured completions to compare quantiles",
			OK:       false,
			Detail:   fmt.Sprintf("only %d measured e2e samples (need >= %d)", e2e.Count(), GraphMCMinSamples),
		}
	}
	if trials <= 0 {
		trials = GraphMCTrials
	}
	rec, err := a.SimulateE2E(sketchSource(hops), stats.NewRNG(seed), trials)
	if err != nil {
		return Check{
			Name:     name,
			Relation: "graph/mc: composer accepts the expanded DAG",
			OK:       false,
			Detail:   err.Error(),
		}
	}
	type point struct {
		what     string
		measured float64 // ms
		composed float64 // ms
		band     float64
	}
	pts := []point{
		{"p50", e2e.P50(), rec.P50().Milliseconds(), GraphMCQuantileBand},
		{"p99", e2e.P99(), rec.P99().Milliseconds(), GraphMCQuantileBand},
		{"mean", e2e.Mean(), rec.Mean().Milliseconds(), GraphMCMeanBand},
	}
	detail := ""
	for _, p := range pts {
		if detail != "" {
			detail += " "
		}
		detail += fmt.Sprintf("%s=%.3f/%.3fms", p.what, p.measured, p.composed)
		if p.composed <= 0 {
			return Check{
				Name:     name,
				Relation: "graph/mc: composed " + p.what + " is positive",
				OK:       false,
				Detail:   detail,
			}
		}
		if r := math.Abs(math.Log(p.measured/p.composed)) - math.Log(1+p.band); r > 0 {
			return Check{
				Name: name,
				Relation: fmt.Sprintf("graph/mc: measured %s within %.0f%% of Monte-Carlo composition",
					p.what, p.band*100),
				OK: false,
				Detail: fmt.Sprintf("%s measured=%.3fms composed=%.3fms (off by %.1f%%, band %.0f%%)",
					p.what, p.measured, p.composed,
					(math.Exp(math.Abs(math.Log(p.measured/p.composed)))-1)*100, p.band*100),
			}
		}
	}
	return Check{
		Name:     name,
		Relation: fmt.Sprintf("graph/mc: e2e p50/p99 within %.0f%%, mean within %.0f%% of composition", GraphMCQuantileBand*100, GraphMCMeanBand*100),
		OK:       true,
		Detail:   detail + fmt.Sprintf(" trials=%d", trials),
	}
}
