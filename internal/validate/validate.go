// Package validate is the simulation oracle: a standing subsystem that
// proves the simulator still means what the paper says after a refactor.
// It has three pillars:
//
//   - metamorphic relations (metamorphic.go): run a system twice under a
//     semantics-preserving transformation and assert the invariant —
//     uniform time rescaling scales latencies, cluster composition equals
//     independent per-server runs, Poisson thinning/superposition
//     composes, and seed permutation keeps percentile summaries inside a
//     declared band;
//   - analytic cross-checks (analytic.go, queueing.go): Little's law
//     audited from the internal/obs event stream, per-core utilization
//     conservation (idle + overhead + own + harvested cycles sum to the
//     measurement window exactly), and M/M/c / Allen-Cunneen M/G/c bounds
//     from internal/queueing bracketing the simulated mean wait on
//     calibrated single-service configs;
//   - a golden-run harness (golden.go): blessed JSON artifacts under
//     testdata/golden/ with structural diffs that name the exact cell
//     that moved, regenerated with -bless.
//
// The oracle is consumed three ways: the package's own tests, the
// `hhsim -validate` CLI mode (composable with -faults and -resilience),
// and the CI validate job.
package validate

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/noc"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// Check is one oracle assertion's outcome. Name identifies the check
// ("analytic/littles-law/HardHarvest-Block"); Relation states the violated
// or verified property in words, so a failure names exactly what no
// longer holds.
type Check struct {
	Name     string
	Relation string
	OK       bool
	Detail   string
}

func (c Check) String() string {
	status := "PASS"
	if !c.OK {
		status = "FAIL"
	}
	s := fmt.Sprintf("%-4s %-50s %s", status, c.Name, c.Detail)
	if !c.OK {
		s += "\n     relation: " + c.Relation
	}
	return s
}

// Params configures one oracle suite run.
type Params struct {
	// Measure/Warmup bound the five-system analytic runs and the
	// metamorphic relations (the calibrated queueing runs size their own
	// windows: bracketing a mean wait needs more samples than a quick
	// regression pass provides).
	Measure sim.Duration
	Warmup  sim.Duration
	Seed    uint64

	// Faults/Strict/Resilience flow into the five-system analytic runs
	// and the composition/seed relations, mirroring hhsim -faults/-strict/
	// -resilience. The time-rescaling relation and the calibrated queueing
	// runs always execute fault-free: a fault plan's absolute trigger
	// times are not time-rescalable, and the queueing brackets assume the
	// calibrated service law.
	Faults     *faults.Plan
	Strict     bool
	Resilience cluster.Resilience

	// Perturb lists "field=factor" corruptions applied to every config the
	// suite builds (e.g. "partition-flush-wait=3"). A perturbed constant
	// must make at least one check fail naming the violated relation —
	// that property is itself tested, so the oracle cannot silently lose
	// its teeth.
	Perturb []string
}

// Quick returns suite parameters matching the experiments' quick scale.
func Quick() Params {
	return Params{Measure: 400 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Seed: 1}
}

// perturbableFields maps -perturb field names to config mutators. Factors
// multiply the field's default.
var perturbableFields = map[string]func(*cluster.Config, float64){
	"partition-flush-wait": func(c *cluster.Config, f float64) {
		c.PartitionFlushWait = scaleDur(c.PartitionFlushWait, f)
	},
	"hw-queue-op": func(c *cluster.Config, f float64) { c.HWQueueOp = scaleDur(c.HWQueueOp, f) },
	"hw-ctx-sw":   func(c *cluster.Config, f float64) { c.HWCtxSw = scaleDur(c.HWCtxSw, f) },
	"sw-ctx-sw":   func(c *cluster.Config, f float64) { c.SWCtxSw = scaleDur(c.SWCtxSw, f) },
	"poll-interval": func(c *cluster.Config, f float64) {
		c.PollInterval = scaleDur(c.PollInterval, f)
	},
	"warm-factor": func(c *cluster.Config, f float64) { c.WarmFactor *= f },
	"cold-factor": func(c *cluster.Config, f float64) { c.ColdFactor *= f },
	"load-scale":  func(c *cluster.Config, f float64) { c.LoadScale *= f },
}

func scaleDur(d sim.Duration, f float64) sim.Duration {
	return sim.Duration(float64(d) * f)
}

// PerturbFields lists the corruptible constant names for -perturb usage
// messages, sorted.
func PerturbFields() []string {
	out := make([]string, 0, len(perturbableFields))
	for k := range perturbableFields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// parsePerturb turns "field=factor" specs into a config mutator.
func parsePerturb(specs []string) (func(*cluster.Config), error) {
	type mut struct {
		apply  func(*cluster.Config, float64)
		factor float64
	}
	muts := make([]mut, 0, len(specs))
	for _, s := range specs {
		field, factorStr, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("validate: bad perturbation %q (want field=factor)", s)
		}
		apply, ok := perturbableFields[field]
		if !ok {
			return nil, fmt.Errorf("validate: unknown perturbable field %q (have %s)",
				field, strings.Join(PerturbFields(), ", "))
		}
		factor, err := strconv.ParseFloat(factorStr, 64)
		if err != nil {
			return nil, fmt.Errorf("validate: bad factor in %q: %v", s, err)
		}
		muts = append(muts, mut{apply, factor})
	}
	return func(c *cluster.Config) {
		for _, m := range muts {
			m.apply(c, m.factor)
		}
	}, nil
}

// baseConfig builds the (possibly perturbed) default config for the suite.
func (p Params) baseConfig(perturb func(*cluster.Config)) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.MeasureDuration = p.Measure
	cfg.WarmupDuration = p.Warmup
	cfg.Seed = p.Seed
	cfg.FaultPlan = p.Faults
	cfg.Strict = p.Strict
	if perturb != nil {
		perturb(&cfg)
	}
	return cfg
}

// Suite runs the full oracle and returns every check's outcome. It returns
// an error only for unusable parameters (malformed Perturb specs); check
// failures are reported through the Check slice so callers can render all
// of them.
func Suite(p Params) ([]Check, error) {
	if p.Measure <= 0 {
		p.Measure = Quick().Measure
	}
	if p.Warmup <= 0 {
		p.Warmup = Quick().Warmup
	}
	perturb, err := parsePerturb(p.Perturb)
	if err != nil {
		return nil, err
	}

	var checks []Check
	cfg := p.baseConfig(perturb)
	checks = append(checks, checkCalibration(cfg)...)

	runs := runFiveSystems(p, cfg)
	for _, r := range runs {
		checks = append(checks, checkAnalytic(cfg, r)...)
	}

	checks = append(checks, checkQueueingBounds(p.Seed, perturb)...)
	checks = append(checks, checkRescale(p, perturb)...)
	checks = append(checks, checkComposition(p, cfg)...)
	checks = append(checks, checkSeedBand(p, cfg)...)
	checks = append(checks, checkPoissonComposition(p.Seed)...)
	return checks, nil
}

// Failed filters the failing checks.
func Failed(checks []Check) []Check {
	var out []Check
	for _, c := range checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// table1FlushWait is the oracle's own copy of the Table 1 efficient-flush
// cost (1000 cycles). Both the calibration pin and the event-stream
// flush-pin check compare against this literal — never against the config
// under test — so a corrupted config constant fails both.
var table1FlushWait = sim.Cycles(1000)

// checkCalibration pins the Table 1 / §4.1 cost constants of the supplied
// config against independently held literals. A perturbed or accidentally
// edited constant fails here with the constant's name — the analytic and
// metamorphic checks then localize the behavioural consequence.
func checkCalibration(cfg cluster.Config) []Check {
	type pin struct {
		name string
		got  float64
		want float64
	}
	pins := []pin{
		{"PartitionFlushWait", float64(cfg.PartitionFlushWait), float64(table1FlushWait)},
		{"HWQueueOp", float64(cfg.HWQueueOp), float64(noc.DefaultTree().RoundTrip() + sim.Cycles(2))},
		{"HWInterrupt", float64(cfg.HWInterrupt), float64(200 * sim.Nanosecond)},
		{"SWQueueAccess", float64(cfg.SWQueueAccess), float64(4 * sim.Microsecond)},
		{"SWCtxSw", float64(cfg.SWCtxSw), float64(5 * sim.Microsecond)},
		{"SWVMContextLoad", float64(cfg.SWVMContextLoad), float64(100 * sim.Microsecond)},
		{"PollInterval", float64(cfg.PollInterval), float64(100 * sim.Microsecond)},
		{"WarmFactor", cfg.WarmFactor, 1.0},
		{"ColdFactor", cfg.ColdFactor, 1.2},
		{"LoadScale", cfg.LoadScale, 1.85},
	}
	out := make([]Check, 0, len(pins))
	for _, pn := range pins {
		out = append(out, Check{
			Name: "analytic/table1-calibration/" + pn.name,
			Relation: fmt.Sprintf("config constant %s must equal its Table 1 / §4.1 value %g",
				pn.name, pn.want),
			OK:     pn.got == pn.want,
			Detail: fmt.Sprintf("got %g want %g", pn.got, pn.want),
		})
	}
	return out
}

// sysRun is one instrumented system run: the simulator's own result next
// to an event-stream audit that re-derived everything independently.
type sysRun struct {
	kind  cluster.SystemKind
	res   *cluster.ServerResult
	audit *obs.Audit
}

// runFiveSystems executes the five evaluated architectures with an Audit
// observer each. Runs are sequential and deterministic; the audit shares
// no state with the simulator, which is what makes agreement meaningful.
func runFiveSystems(p Params, cfg cluster.Config) []sysRun {
	systems := cluster.Systems()
	out := make([]sysRun, 0, len(systems))
	for _, k := range systems {
		opts := cluster.SystemOptions(k)
		opts.Resilience = p.Resilience
		a := obs.NewAudit()
		opts.Observer = a
		res := cluster.RunServer(cfg, opts, defaultWork())
		a.Finish(res.AccountedEnd)
		out = append(out, sysRun{kind: k, res: res, audit: a})
	}
	return out
}

// relTolOK reports |got-want| <= tol*|want| (+absSlack).
func relTolOK(got, want, tol, absSlack float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	bound := tol * want
	if want < 0 {
		bound = -bound
	}
	return diff <= bound+absSlack
}

// durf renders a duration in milliseconds for check details.
func durf(d sim.Duration) string { return fmt.Sprintf("%.6fms", d.Milliseconds()) }

// scaleDurations returns cfg with every sim.Duration field — recursing
// into embedded value structs such as hypervisor.Costs and nic.Latencies —
// multiplied by k. Pointer fields (FaultPlan, Profiles) are left alone:
// fault plans carry absolute trigger times and are documented as not
// time-rescalable, and profiles are rescaled explicitly by the caller.
func scaleDurations(cfg cluster.Config, k int64) cluster.Config {
	scaleStructDurations(reflect.ValueOf(&cfg).Elem(), k)
	return cfg
}

var durType = reflect.TypeOf(sim.Duration(0))

func scaleStructDurations(v reflect.Value, k int64) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch {
		case f.Type() == durType && f.CanSet():
			f.SetInt(f.Int() * k)
		case f.Kind() == reflect.Struct:
			scaleStructDurations(f, k)
		}
	}
}
