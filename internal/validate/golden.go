package validate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hardharvest/internal/experiments"
	"hardharvest/internal/sim"
)

// goldenTables are the experiment tables snapshotted in the golden
// artifact: the paper's two headline latency figures, the utilization
// table, and the claims summary. They share the five-system run memo, so
// capturing all four costs one simulation sweep.
var goldenTables = []string{"fig11", "fig16", "util", "summary"}

// Artifact is one blessed golden run: the exact cells of the headline
// experiment tables plus per-system scalar summaries, all rendered with
// fixed formatting (integer picoseconds and fixed-precision strings) so
// that marshalling is byte-stable across runs, platforms, and re-blessing.
type Artifact struct {
	// Params pins what was run; a diff against an artifact captured at
	// different parameters reports the mismatch instead of cell noise.
	Params ArtifactParams `json:"params"`
	Tables []TableGold    `json:"tables"`
	// Systems summarizes the five architectures from the suite's own
	// instrumented runs (independent of the experiment tables).
	Systems []SystemGold `json:"systems"`
}

// ArtifactParams identifies the scale a golden artifact was captured at.
// Durations are integer picoseconds: no floats anywhere in the artifact.
type ArtifactParams struct {
	MeasurePs int64  `json:"measure_ps"`
	WarmupPs  int64  `json:"warmup_ps"`
	Seed      uint64 `json:"seed"`
}

// TableGold is one experiment table, cells verbatim. Experiment cells are
// already fixed-precision strings (ms/pct/ratio formatters), so storing
// them as rendered keeps the artifact human-diffable.
type TableGold struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    []RowGold  `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// RowGold is one table row.
type RowGold struct {
	Label string   `json:"label"`
	Cells []string `json:"cells"`
}

// SystemGold is one architecture's scalar summary.
type SystemGold struct {
	System      string        `json:"system"`
	Requests    int64         `json:"requests"`
	Arrivals    int64         `json:"arrivals"`
	Reassigns   int64         `json:"reassigns"`
	HarvestJobs int64         `json:"harvest_jobs"`
	// BusyCoresMilli is mean busy cores × 1000, rounded: integral, so the
	// artifact stays float-free and byte-stable.
	BusyCoresMilli int64         `json:"busy_cores_milli"`
	Services       []ServiceGold `json:"services"`
}

// ServiceGold is one service's latency summary in integer picoseconds.
type ServiceGold struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	MeanPs int64  `json:"mean_ps"`
	P50Ps  int64  `json:"p50_ps"`
	P99Ps  int64  `json:"p99_ps"`
}

// Capture runs the golden experiments and system sweep at the given
// parameters and returns the artifact. Faults, resilience, and
// perturbations deliberately do not flow into goldens: an artifact is the
// unmodified simulator's fingerprint.
func Capture(p Params) *Artifact {
	if p.Measure <= 0 {
		p.Measure = Quick().Measure
	}
	if p.Warmup <= 0 {
		p.Warmup = Quick().Warmup
	}
	art := &Artifact{
		Params: ArtifactParams{
			MeasurePs: int64(p.Measure),
			WarmupPs:  int64(p.Warmup),
			Seed:      p.Seed,
		},
	}
	sc := experiments.Scale{Measure: p.Measure, Warmup: p.Warmup, Servers: 2, Seed: p.Seed}
	for _, id := range goldenTables {
		r := experiments.ByID(id)
		if r == nil {
			panic("validate: unknown golden experiment " + id)
		}
		t := r.Run(sc)
		tg := TableGold{ID: t.ID, Title: t.Title, Columns: t.Columns, Notes: t.Notes}
		for _, row := range t.Rows {
			tg.Rows = append(tg.Rows, RowGold{Label: row.Label, Cells: row.Cells})
		}
		art.Tables = append(art.Tables, tg)
	}

	clean := Params{Measure: p.Measure, Warmup: p.Warmup, Seed: p.Seed}
	for _, r := range runFiveSystems(clean, clean.baseConfig(nil)) {
		sg := SystemGold{
			System:         r.kind.String(),
			Requests:       int64(r.res.Requests),
			Arrivals:       int64(r.res.Arrivals),
			Reassigns:      int64(r.res.Reassigns),
			HarvestJobs:    int64(r.res.HarvestJobs),
			BusyCoresMilli: int64(r.res.BusyCores*1000 + 0.5),
		}
		names := make([]string, 0, len(r.res.Service))
		for name := range r.res.Service {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec := r.res.Service[name]
			sg.Services = append(sg.Services, ServiceGold{
				Name:   name,
				Count:  int64(rec.Count()),
				MeanPs: int64(rec.Mean()),
				P50Ps:  int64(rec.P50()),
				P99Ps:  int64(rec.P99()),
			})
		}
		art.Systems = append(art.Systems, sg)
	}
	return art
}

// Marshal renders the artifact as stable, indented JSON with a trailing
// newline. Field order is fixed by the struct definitions and all values
// are integers or pre-rendered strings, so equal artifacts marshal to
// equal bytes.
func (a *Artifact) Marshal() []byte {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		panic(err) // static struct of ints and strings cannot fail to marshal
	}
	return append(b, '\n')
}

// WriteFile blesses the artifact to path, creating parent directories.
func (a *Artifact) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, a.Marshal(), 0o644)
}

// LoadArtifact reads a blessed artifact.
func LoadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("validate: golden %s: %w", path, err)
	}
	return &a, nil
}

// Diff structurally compares a blessed artifact against a fresh capture
// and returns one line per divergence, each naming the exact table cell or
// system field that moved ("table fig11 row Text col HH-Block: blessed
// 1.234ms got 1.301ms"). Empty means identical.
func Diff(blessed, got *Artifact) []string {
	var out []string
	if blessed.Params != got.Params {
		return []string{fmt.Sprintf("params: blessed %+v got %+v (artifacts are not comparable)",
			blessed.Params, got.Params)}
	}
	out = append(out, diffTables(blessed.Tables, got.Tables)...)
	out = append(out, diffSystems(blessed.Systems, got.Systems)...)
	return out
}

func diffTables(blessed, got []TableGold) []string {
	var out []string
	gotByID := make(map[string]TableGold, len(got))
	for _, t := range got {
		gotByID[t.ID] = t
	}
	for _, bt := range blessed {
		gt, ok := gotByID[bt.ID]
		if !ok {
			out = append(out, fmt.Sprintf("table %s: blessed but not captured", bt.ID))
			continue
		}
		out = append(out, diffTable(bt, gt)...)
		delete(gotByID, bt.ID)
	}
	ids := make([]string, 0, len(gotByID))
	for id := range gotByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, fmt.Sprintf("table %s: captured but not blessed", id))
	}
	return out
}

func diffTable(b, g TableGold) []string {
	var out []string
	if !equalStrings(b.Columns, g.Columns) {
		out = append(out, fmt.Sprintf("table %s columns: blessed %v got %v", b.ID, b.Columns, g.Columns))
		return out // cell positions are meaningless under different columns
	}
	gotRows := make(map[string][]string, len(g.Rows))
	for _, r := range g.Rows {
		gotRows[r.Label] = r.Cells
	}
	for _, br := range b.Rows {
		cells, ok := gotRows[br.Label]
		if !ok {
			out = append(out, fmt.Sprintf("table %s row %q: blessed but not captured", b.ID, br.Label))
			continue
		}
		for i, want := range br.Cells {
			col := fmt.Sprintf("#%d", i+1)
			if i+1 < len(b.Columns) {
				col = b.Columns[i+1]
			}
			if i >= len(cells) {
				out = append(out, fmt.Sprintf("table %s row %q col %s: blessed %q got <missing>",
					b.ID, br.Label, col, want))
				continue
			}
			if cells[i] != want {
				out = append(out, fmt.Sprintf("table %s row %q col %s: blessed %q got %q",
					b.ID, br.Label, col, want, cells[i]))
			}
		}
		delete(gotRows, br.Label)
	}
	labels := make([]string, 0, len(gotRows))
	for l := range gotRows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, fmt.Sprintf("table %s row %q: captured but not blessed", b.ID, l))
	}
	return out
}

func diffSystems(blessed, got []SystemGold) []string {
	var out []string
	gotByName := make(map[string]SystemGold, len(got))
	for _, s := range got {
		gotByName[s.System] = s
	}
	for _, bs := range blessed {
		gs, ok := gotByName[bs.System]
		if !ok {
			out = append(out, fmt.Sprintf("system %s: blessed but not captured", bs.System))
			continue
		}
		field := func(name string, want, have int64) {
			if want != have {
				out = append(out, fmt.Sprintf("system %s %s: blessed %d got %d",
					bs.System, name, want, have))
			}
		}
		field("requests", bs.Requests, gs.Requests)
		field("arrivals", bs.Arrivals, gs.Arrivals)
		field("reassigns", bs.Reassigns, gs.Reassigns)
		field("harvest_jobs", bs.HarvestJobs, gs.HarvestJobs)
		field("busy_cores_milli", bs.BusyCoresMilli, gs.BusyCoresMilli)
		gotSvc := make(map[string]ServiceGold, len(gs.Services))
		for _, s := range gs.Services {
			gotSvc[s.Name] = s
		}
		for _, bsvc := range bs.Services {
			gsvc, ok := gotSvc[bsvc.Name]
			if !ok {
				out = append(out, fmt.Sprintf("system %s service %s: blessed but not captured",
					bs.System, bsvc.Name))
				continue
			}
			sf := func(name string, want, have int64) {
				if want != have {
					out = append(out, fmt.Sprintf("system %s service %s %s: blessed %d got %d (%s vs %s)",
						bs.System, bsvc.Name, name, want, have,
						durf(sim.Duration(want)), durf(sim.Duration(have))))
				}
			}
			if bsvc.Count != gsvc.Count {
				out = append(out, fmt.Sprintf("system %s service %s count: blessed %d got %d",
					bs.System, bsvc.Name, bsvc.Count, gsvc.Count))
			}
			sf("mean_ps", bsvc.MeanPs, gsvc.MeanPs)
			sf("p50_ps", bsvc.P50Ps, gsvc.P50Ps)
			sf("p99_ps", bsvc.P99Ps, gsvc.P99Ps)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
