package validate

import (
	"strings"
	"testing"

	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// balancedTotals is a ledger satisfying every conservation identity.
func balancedTotals() GraphTotals {
	return GraphTotals{
		Generated: 100, Completed: 90, Failed: 6, InflightEnd: 4,
		Dispatches: 400, DoneRecv: 380, ShedRecv: 10, OutstandingEnd: 10,
		TierDispatchSum: 400, TierDoneSum: 380, TierShedSum: 10,
		E2ESamples: 80,
	}
}

func TestGraphConservationPasses(t *testing.T) {
	c := GraphConservation("g", balancedTotals())
	if !c.OK {
		t.Fatalf("balanced ledger failed: %s", c.Detail)
	}
	if !strings.Contains(c.Detail, "generated=100") {
		t.Errorf("detail does not summarize the ledger: %s", c.Detail)
	}
}

// TestGraphConservationCatches breaks each identity in turn; every breach
// must fail and name its relation.
func TestGraphConservationCatches(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*GraphTotals)
		rel  string
	}{
		{"lost request", func(g *GraphTotals) { g.Completed-- },
			"generated = completed + failed + inflight"},
		{"lost rpc", func(g *GraphTotals) { g.DoneRecv-- },
			"dispatches = done_recv + shed_recv + outstanding"},
		{"tier dispatch drift", func(g *GraphTotals) { g.TierDispatchSum++ },
			"dispatches = sum(tier dispatches)"},
		{"tier done drift", func(g *GraphTotals) {
			g.TierDoneSum--
			g.TierShedSum++ // keep D2 intact so D4 is the first breach
		}, "done_recv = sum(tier dones)"},
		{"tier shed drift", func(g *GraphTotals) { g.TierShedSum++ },
			"shed_recv = sum(tier sheds)"},
		{"failure without a shed", func(g *GraphTotals) {
			g.Failed += 10
			g.Completed -= 10
		}, "failed <= shed_recv"},
		{"phantom e2e samples", func(g *GraphTotals) { g.E2ESamples = 95 },
			"e2e_samples <= completed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := balancedTotals()
			tc.mut(&g)
			c := GraphConservation("g", g)
			if c.OK {
				t.Fatalf("breach passed: %+v", g)
			}
			if !strings.Contains(c.Relation, tc.rel) {
				t.Errorf("relation %q does not name %q", c.Relation, tc.rel)
			}
			if c.Detail == "" {
				t.Error("failure has no detail")
			}
		})
	}
}

// TestGraphResultTotals: the adapter must fold a dispatcher result,
// including per-tier sums and the e2e sample count, into the ledger.
func TestGraphResultTotals(t *testing.T) {
	e2e := stats.NewSketch()
	for i := 0; i < 7; i++ {
		e2e.Add(1.5)
	}
	r := &graph.Result{
		Generated: 10, Completed: 8, Failed: 1, InflightEnd: 1,
		Dispatches: 30, DoneRecv: 27, ShedRecv: 2, OutstandingEnd: 1,
		E2E: e2e,
		Tiers: []graph.TierResult{
			{Name: "a", Dispatches: 10, Dones: 9, Sheds: 1, Hop: stats.NewSketch()},
			{Name: "b", Dispatches: 20, Dones: 18, Sheds: 1, Hop: stats.NewSketch()},
		},
	}
	got := GraphResultTotals(r)
	if got.TierDispatchSum != 30 || got.TierDoneSum != 27 || got.TierShedSum != 2 {
		t.Errorf("tier sums wrong: %+v", got)
	}
	if got.E2ESamples != 7 {
		t.Errorf("E2ESamples = %d, want 7", got.E2ESamples)
	}
	if c := GraphResultConservation("g", r); !c.OK {
		t.Errorf("consistent result failed conservation: %s", c.Detail)
	}
	r.DoneRecv++ // now the ledgers disagree
	if c := GraphResultConservation("g", r); c.OK {
		t.Error("corrupted result passed conservation")
	}
}

// mcFixture builds a sequential two-tier DAG with constant-latency hop
// sketches and the exactly-composed e2e sketch: a -> b means every request
// measures hop(a) + hop(b) end to end.
func mcFixture(n int) (spec *graph.Spec, hops map[string]*stats.Sketch, e2e *stats.Sketch) {
	spec = &graph.Spec{
		NetDelay: 20 * sim.Microsecond,
		Tiers: []graph.Tier{
			{Name: "a", Group: "g", Calls: []graph.Call{{Tier: 1, Mode: graph.Sequential, Fanout: 1}}},
			{Name: "b", Group: "g"},
		},
	}
	ha, hb := stats.NewSketch(), stats.NewSketch()
	e2e = stats.NewSketch()
	for i := 0; i < n; i++ {
		ha.Add(2.0)
		hb.Add(3.0)
		e2e.Add(5.0)
	}
	return spec, map[string]*stats.Sketch{"a": ha, "b": hb}, e2e
}

func TestGraphMCPassesOnExactComposition(t *testing.T) {
	spec, hops, e2e := mcFixture(GraphMCMinSamples)
	c := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 0, 42)
	if !c.OK {
		t.Fatalf("exact composition failed: %s", c.Detail)
	}
	if !strings.Contains(c.Detail, "trials=20000") {
		t.Errorf("zero trials should fall back to the default: %s", c.Detail)
	}
}

func TestGraphMCCatchesDrift(t *testing.T) {
	spec, hops, e2e := mcFixture(GraphMCMinSamples)
	// Shift the measured e2e far outside the band while the hops stay put.
	for i := 0; i < GraphMCMinSamples; i++ {
		e2e.Add(50.0)
	}
	c := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 0, 42)
	if c.OK {
		t.Fatalf("drifted e2e passed: %s", c.Detail)
	}
	if !strings.Contains(c.Detail, "off by") || !strings.Contains(c.Relation, "Monte-Carlo") {
		t.Errorf("failure not diagnostic: rel=%q detail=%q", c.Relation, c.Detail)
	}
}

func TestGraphMCGatesOnSamples(t *testing.T) {
	spec, hops, e2e := mcFixture(GraphMCMinSamples - 1)
	c := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 0, 42)
	if c.OK || !strings.Contains(c.Detail, "measured e2e samples") {
		t.Fatalf("undersampled run not gated: ok=%v %s", c.OK, c.Detail)
	}
}

func TestGraphMCRejectsMissingService(t *testing.T) {
	spec, hops, e2e := mcFixture(GraphMCMinSamples)
	delete(hops, "b")
	c := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 0, 42)
	if c.OK || !strings.Contains(c.Detail, "no latency data") {
		t.Fatalf("missing hop distribution not rejected: ok=%v %s", c.OK, c.Detail)
	}
}

func TestGraphMCDeterministic(t *testing.T) {
	spec, hops, e2e := mcFixture(GraphMCMinSamples)
	a := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 1000, 7)
	b := GraphMC("mc", spec.ToApp("chain"), hops, e2e, 1000, 7)
	if a.Detail != b.Detail {
		t.Fatalf("same seed, different detail:\n%s\n%s", a.Detail, b.Detail)
	}
}
