package validate

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// bless regenerates the golden artifacts instead of diffing against them:
//
//	go test ./internal/validate -run TestGolden -bless
var bless = flag.Bool("bless", false, "regenerate golden artifacts instead of comparing")

const goldenPath = "testdata/golden/quick.json"

// TestGolden diffs a fresh quick-scale capture against the blessed
// artifact. Any divergence fails with the exact cell that moved; an
// intentional behaviour change is re-blessed with -bless and reviewed as
// part of the diff.
func TestGolden(t *testing.T) {
	got := Capture(Quick())
	if *bless {
		if err := got.WriteFile(goldenPath); err != nil {
			t.Fatalf("bless: %v", err)
		}
		t.Logf("blessed %s (%d bytes)", goldenPath, len(got.Marshal()))
		return
	}
	blessed, err := LoadArtifact(goldenPath)
	if err != nil {
		t.Fatalf("load blessed artifact (regenerate with -bless): %v", err)
	}
	for _, line := range Diff(blessed, got) {
		t.Errorf("golden diff: %s", line)
	}
}

// TestGoldenByteStable asserts the artifact pipeline is deterministic end
// to end: two independent captures must marshal to identical bytes, and
// the blessed file must be byte-identical to a fresh re-bless (so a CI
// re-run or a -bless on another machine produces no diff noise).
func TestGoldenByteStable(t *testing.T) {
	a := Capture(Quick()).Marshal()
	b := Capture(Quick()).Marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("two captures marshalled differently (%d vs %d bytes)", len(a), len(b))
	}
	disk, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no blessed artifact yet: %v", err)
	}
	if !bytes.Equal(disk, a) {
		t.Errorf("blessed %s is not byte-identical to a fresh capture; re-bless or "+
			"inspect TestGolden's structural diff", goldenPath)
	}
}

// TestGoldenDiffNamesCell covers the diff engine itself: a single mutated
// cell must produce exactly one line naming table, row, and column; a
// mutated system percentile must name system, service, and field.
func TestGoldenDiffNamesCell(t *testing.T) {
	base := Capture(Quick())
	if len(base.Tables) == 0 || len(base.Tables[0].Rows) == 0 {
		t.Fatal("capture produced no table rows")
	}
	if ds := Diff(base, base); len(ds) != 0 {
		t.Fatalf("self-diff not empty: %v", ds)
	}

	mut := *base
	mut.Tables = append([]TableGold(nil), base.Tables...)
	tg := mut.Tables[0]
	tg.Rows = append([]RowGold(nil), tg.Rows...)
	row := tg.Rows[0]
	row.Cells = append([]string(nil), row.Cells...)
	row.Cells[0] = "corrupted"
	tg.Rows[0] = row
	mut.Tables[0] = tg
	ds := Diff(base, &mut)
	if len(ds) != 1 {
		t.Fatalf("one mutated cell produced %d diff lines: %v", len(ds), ds)
	}
	for _, frag := range []string{tg.ID, row.Label, tg.Columns[1], "corrupted"} {
		if !contains(ds[0], frag) {
			t.Errorf("diff %q does not name %q", ds[0], frag)
		}
	}

	mut2 := *base
	mut2.Systems = append([]SystemGold(nil), base.Systems...)
	sg := mut2.Systems[0]
	sg.Services = append([]ServiceGold(nil), sg.Services...)
	sg.Services[0].P99Ps += 12345
	mut2.Systems[0] = sg
	ds2 := Diff(base, &mut2)
	if len(ds2) != 1 {
		t.Fatalf("one mutated percentile produced %d diff lines: %v", len(ds2), ds2)
	}
	for _, frag := range []string{sg.System, sg.Services[0].Name, "p99_ps"} {
		if !contains(ds2[0], frag) {
			t.Errorf("diff %q does not name %q", ds2[0], frag)
		}
	}
}

// TestBlessRoundTrip blesses into a temp dir and reloads: write → load →
// diff must be the identity.
func TestBlessRoundTrip(t *testing.T) {
	art := Capture(Quick())
	path := filepath.Join(t.TempDir(), "golden", "quick.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if ds := Diff(art, loaded); len(ds) != 0 {
		t.Errorf("round-trip diff not empty: %v", ds)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
