package validate

import (
	"fmt"
	"sort"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// defaultWork mirrors the experiments' default batch workload.
func defaultWork() *batch.Workload {
	w, err := batch.WorkloadByName("BFS")
	if err != nil {
		panic(err)
	}
	return w
}

// checkAnalytic runs every analytic cross-check for one system: flow
// balance, Little's law (as an exact identity and against the simulator's
// independent latency recorders), per-core utilization conservation, and
// the flush-cost pin on the hardware systems.
func checkAnalytic(cfg cluster.Config, r sysRun) []Check {
	name := r.kind.String()
	checks := []Check{
		checkFlowBalance(name, r),
		checkLittleIdentity(name, r),
		checkLittleRecorders(name, r),
		checkConservation(name, cfg, r),
		checkBusyBracket(name, cfg, r),
	}
	if c, ok := checkFlushPin(name, r); ok {
		checks = append(checks, c)
	}
	return checks
}

// checkFlowBalance asserts the event stream and the simulator agree
// exactly on how much traffic flowed: every arrival event is matched by a
// server-side arrival count, every completion event by a server-side
// completion count. Nothing statistical here — a single lost or
// double-emitted event fails the check.
func checkFlowBalance(name string, r sysRun) Check {
	c := r.audit.Counters()
	ok := c.Arrivals == uint64(r.res.Arrivals) && c.Completions == uint64(r.res.Requests)
	return Check{
		Name: "analytic/flow-balance/" + name,
		Relation: "event-stream arrivals/completions must equal the simulator's own " +
			"counters exactly (no lost or duplicated lifecycle events)",
		OK: ok,
		Detail: fmt.Sprintf("events: arrivals=%d completions=%d; server: arrivals=%d requests=%d",
			c.Arrivals, c.Completions, r.res.Arrivals, r.res.Requests),
	}
}

// checkLittleIdentity asserts Little's law as an exact identity over the
// audited span: the time integral of in-flight measured requests equals
// the summed sojourn of completions plus deadline misses plus the
// residual sojourn of requests still unresolved at the horizon. The audit
// integrates N(t) event by event, so any mis-ordered or time-warped event
// breaks the equality.
func checkLittleIdentity(name string, r sysRun) Check {
	latSum, latN := r.audit.LatencySum()
	missSum, missN := r.audit.MissSum()
	unresolved, resid := r.audit.Unresolved()
	want := latSum + missSum + resid
	got := r.audit.Integral()
	return Check{
		Name: "analytic/littles-law-identity/" + name,
		Relation: "Little's law: ∫N(t)dt over the run must equal Σ sojourn times " +
			"(completions + deadline misses + in-flight residue) exactly",
		OK: got == want,
		Detail: fmt.Sprintf("∫N dt=%s Σsojourn=%s (completed=%d missed=%d inflight=%d)",
			durf(got), durf(want), latN, missN, unresolved),
	}
}

// littleTol is the agreement bound between the event-stream audit and the
// simulator's latency recorders (ISSUE acceptance: within 0.1%).
const littleTol = 0.001

// checkLittleRecorders cross-checks L = λW between two independent
// accountings of the same run: the audit's event-stream latency sum
// versus the per-service recorders the simulator feeds directly. Counts
// must match exactly; sums within littleTol (recorder means are float64).
func checkLittleRecorders(name string, r sysRun) Check {
	latSum, latN := r.audit.LatencySum()
	var recSum float64
	var recN uint64
	names := make([]string, 0, len(r.res.Service))
	for svc := range r.res.Service {
		names = append(names, svc)
	}
	sort.Strings(names)
	for _, svc := range names {
		rec := r.res.Service[svc]
		recSum += float64(rec.Count()) * float64(rec.Mean())
		recN += uint64(rec.Count())
	}
	countOK := latN == recN
	sumOK := relTolOK(float64(latSum), recSum, littleTol, 1)
	return Check{
		Name: "analytic/littles-law-recorders/" + name,
		Relation: "measured completion count and latency mass from the event stream " +
			"must match the per-service recorders within 0.1%",
		OK: countOK && sumOK,
		Detail: fmt.Sprintf("audit: n=%d Σlat=%s; recorders: n=%d Σlat=%s",
			latN, durf(latSum), recN, durf(sim.Duration(recSum))),
	}
}

// checkConservation asserts per-core cycle conservation over the
// measurement window: idle + overhead + own-run + loaned-run equals the
// window length exactly on every core. The accounts integrate through
// every checked core transition, so a skipped or double-counted phase
// breaks the sum.
func checkConservation(name string, cfg cluster.Config, r sysRun) Check {
	window := cfg.MeasureDuration
	if len(r.res.CoreCyclesWindow) != cfg.CoresPerServer {
		return Check{
			Name:     "analytic/utilization-conservation/" + name,
			Relation: "every core must carry a cycle account over the measurement window",
			OK:       false,
			Detail: fmt.Sprintf("have %d core accounts, want %d",
				len(r.res.CoreCyclesWindow), cfg.CoresPerServer),
		}
	}
	for core, cc := range r.res.CoreCyclesWindow {
		if cc.Total() != window {
			return Check{
				Name: "analytic/utilization-conservation/" + name,
				Relation: "per-core cycle conservation: busy + idle + harvested + " +
					"transition cycles must sum to the measurement window exactly",
				OK: false,
				Detail: fmt.Sprintf("core %d: idle=%s overhead=%s own=%s loaned=%s sum=%s want %s",
					core, durf(cc.Idle), durf(cc.Overhead), durf(cc.RunOwn),
					durf(cc.RunLoaned), durf(cc.Total()), durf(window)),
			}
		}
	}
	return Check{
		Name: "analytic/utilization-conservation/" + name,
		Relation: "per-core cycle conservation: busy + idle + harvested + transition " +
			"cycles must sum to the measurement window exactly",
		OK:     true,
		Detail: fmt.Sprintf("%d cores × %s, all conserved", len(r.res.CoreCyclesWindow), durf(window)),
	}
}

// checkBusyBracket brackets the utilization meter (which drives the
// paper's busy-core figures) between two independent phase integrals:
// total busy time must cover at least all execution cycles and at most
// execution plus transition overhead. The slack absorbs overhead slices
// the meter legitimately counts on one side of the window edge only.
func checkBusyBracket(name string, cfg cluster.Config, r sysRun) Check {
	var run, overhead sim.Duration
	for _, cc := range r.res.CoreCyclesWindow {
		run += cc.RunOwn + cc.RunLoaned
		overhead += cc.Overhead
	}
	busy := sim.Duration(r.res.BusyCores * float64(cfg.MeasureDuration))
	slack := sim.Duration(float64(cfg.MeasureDuration) * 0.001 * float64(cfg.CoresPerServer))
	ok := busy >= run-slack && busy <= run+overhead+slack
	return Check{
		Name: "analytic/busy-bracket/" + name,
		Relation: "total utilization-meter busy time must lie between executed cycles " +
			"and executed + transition-overhead cycles (per-core accounts)",
		OK: ok,
		Detail: fmt.Sprintf("busy=%s ∈ [run=%s, run+overhead=%s] ±%s",
			durf(busy), durf(run), durf(run+overhead), durf(slack)),
	}
}

// checkFlushPin verifies that on the hardware systems every critical-path
// flush costs exactly the configured efficient-flush constant (Table 1:
// 1000 cycles): the event stream's smallest and largest flush must both
// equal cfg.PartitionFlushWait. Only reported for systems that flush.
func checkFlushPin(name string, r sysRun) (Check, bool) {
	if r.kind != cluster.HardHarvestTerm && r.kind != cluster.HardHarvestBlock {
		return Check{}, false
	}
	min, max := r.audit.FlushRange()
	if r.audit.Counters().Flushes == 0 {
		return Check{
			Name:     "analytic/flush-pin/" + name,
			Relation: "hardware harvesting must exercise the efficient-flush path",
			OK:       false,
			Detail:   "no flush events observed",
		}, true
	}
	// Compared against the oracle's own literal, not cfg: a corrupted
	// PartitionFlushWait must fail here on observed event costs, not be
	// excused by the same corrupted config it came from.
	ok := min == table1FlushWait && max == table1FlushWait
	return Check{
		Name: "analytic/flush-pin/" + name,
		Relation: "every efficient harvest-region flush must cost exactly the " +
			"Table 1 constant (1000 cycles)",
		OK: ok,
		Detail: fmt.Sprintf("flushes=%d min=%s max=%s want %s",
			r.audit.Counters().Flushes, durf(min), durf(max), durf(table1FlushWait)),
	}, true
}

// FlowBalance exposes the oracle's flow-balance check to external runners
// (the scenario runner applies it to every server of a fleet): event-stream
// arrivals/completions must equal the simulator's own counters exactly.
func FlowBalance(name string, res *cluster.ServerResult, audit *obs.Audit) Check {
	return checkFlowBalance(name, sysRun{res: res, audit: audit})
}

// LittlesLawIdentity exposes the oracle's exact Little's-law identity to
// external runners: ∫N(t)dt must equal Σ sojourn over the audited span.
func LittlesLawIdentity(name string, res *cluster.ServerResult, audit *obs.Audit) Check {
	return checkLittleIdentity(name, sysRun{res: res, audit: audit})
}
