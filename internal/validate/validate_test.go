package validate

import (
	"strings"
	"testing"

	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
)

// TestSuitePasses is the oracle's own regression gate: every metamorphic
// relation, analytic cross-check, and calibration pin must hold on the
// unmodified simulator at quick scale.
func TestSuitePasses(t *testing.T) {
	checks, err := Suite(Quick())
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	if len(checks) < 40 {
		t.Fatalf("suite ran only %d checks — pillars are missing", len(checks))
	}
	for _, c := range Failed(checks) {
		t.Errorf("%s", c)
	}
}

// TestSuiteWithFaults runs the oracle under a fault plan with resilience
// policies, mirroring `hhsim -validate -faults -resilience`: the exact
// identities (flow balance, Little's law, conservation, composition) must
// survive fault injection; only the statistical bands widen.
func TestSuiteWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: quick suite already covered")
	}
	p := Quick()
	p.Faults = faults.DefaultPlan()
	p.Resilience = cluster.DefaultResilience()
	checks, err := Suite(p)
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	for _, c := range Failed(checks) {
		t.Errorf("%s", c)
	}
}

// TestPerturbationDetected is the oracle's teeth test (ISSUE acceptance):
// corrupting one overhead constant must make at least one check fail
// naming the violated relation. Each case lists the check-name fragments
// of which at least one must appear among the failures.
func TestPerturbationDetected(t *testing.T) {
	cases := []struct {
		perturb string
		anyOf   []string
	}{
		// Table 1 flush cost tripled: the calibration pin names the
		// constant and the event-stream flush pin sees the wrong cost.
		{"partition-flush-wait=3", []string{
			"analytic/table1-calibration/PartitionFlushWait",
			"analytic/flush-pin/",
		}},
		// Offered load up 30%: the calibrated queueing runs drift off the
		// analytic waits computed from the declared rate.
		{"load-scale=1.3", []string{
			"analytic/table1-calibration/LoadScale",
			"analytic/queueing-mg1-wait",
			"analytic/queueing-mg1-arrivals",
		}},
		{"sw-ctx-sw=10", []string{"analytic/table1-calibration/SWCtxSw"}},
	}
	for _, tc := range cases {
		t.Run(tc.perturb, func(t *testing.T) {
			p := Quick()
			p.Perturb = []string{tc.perturb}
			checks, err := Suite(p)
			if err != nil {
				t.Fatalf("Suite: %v", err)
			}
			failed := Failed(checks)
			if len(failed) == 0 {
				t.Fatalf("perturbation %s raised no failures — the oracle lost its teeth", tc.perturb)
			}
			found := false
			for _, c := range failed {
				if c.Relation == "" {
					t.Errorf("failed check %s names no relation", c.Name)
				}
				for _, want := range tc.anyOf {
					if strings.Contains(c.Name, want) {
						found = true
					}
				}
			}
			if !found {
				names := make([]string, len(failed))
				for i, c := range failed {
					names[i] = c.Name
				}
				t.Errorf("perturbation %s failed %v, want one of %v", tc.perturb, names, tc.anyOf)
			}
		})
	}
}

// TestParsePerturb covers the spec syntax and its error cases.
func TestParsePerturb(t *testing.T) {
	if _, err := parsePerturb([]string{"partition-flush-wait=2", "load-scale=0.5"}); err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	for _, bad := range []string{"no-equals", "unknown-field=2", "load-scale=abc"} {
		if _, err := parsePerturb([]string{bad}); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
	mut, err := parsePerturb([]string{"partition-flush-wait=3"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	want := 3 * cfg.PartitionFlushWait
	mut(&cfg)
	if cfg.PartitionFlushWait != want {
		t.Errorf("PartitionFlushWait = %v, want %v", cfg.PartitionFlushWait, want)
	}
}

// TestScaleDurations checks the reflective rescaler reaches nested structs
// and leaves non-duration fields alone.
func TestScaleDurations(t *testing.T) {
	cfg := cluster.DefaultConfig()
	scaled := scaleDurations(cfg, 3)
	if scaled.PartitionFlushWait != 3*cfg.PartitionFlushWait {
		t.Errorf("PartitionFlushWait not scaled: %v", scaled.PartitionFlushWait)
	}
	if scaled.MeasureDuration != 3*cfg.MeasureDuration {
		t.Errorf("MeasureDuration not scaled: %v", scaled.MeasureDuration)
	}
	if scaled.NICLat.DDIODeposit != 3*cfg.NICLat.DDIODeposit {
		t.Errorf("nested NICLat.DDIODeposit not scaled: %v", scaled.NICLat.DDIODeposit)
	}
	if scaled.CoresPerServer != cfg.CoresPerServer {
		t.Errorf("non-duration CoresPerServer changed: %v", scaled.CoresPerServer)
	}
	if scaled.LoadScale != cfg.LoadScale {
		t.Errorf("float LoadScale changed: %v", scaled.LoadScale)
	}
}

// FuzzValidateRescale fuzzes the time-rescaling relation over seeds and
// window lengths: the relation must hold at any quick-ish scale, not just
// the blessed one. Windows are kept small so each iteration stays cheap.
func FuzzValidateRescale(f *testing.F) {
	f.Add(uint64(1), uint8(40))
	f.Add(uint64(0x5EED1234), uint8(0))
	f.Add(uint64(42), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, measBucket uint8) {
		p := Params{
			Measure: sim.Duration(20+int64(measBucket)%80) * sim.Millisecond,
			Warmup:  5 * sim.Millisecond,
			Seed:    seed,
		}
		for _, c := range checkRescale(p, nil) {
			if !c.OK {
				t.Errorf("%s", c)
			}
		}
	})
}
