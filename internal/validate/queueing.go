package validate

import (
	"fmt"
	"math"

	"hardharvest/internal/cluster"
	"hardharvest/internal/obs"
	"hardharvest/internal/queueing"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// The calibrated queueing configs: a single service with no blocking I/O
// (one CPU phase per request, so the core-occupancy law is the pure
// lognormal the analytic models assume), flat load, no bursts, no
// harvesting, hardware scheduling (work discovery is effectively
// instantaneous, matching the models' zero dispatch latency).
const (
	calMeanCPU = 400 * sim.Microsecond
	calSigma   = 0.5
	calRPSCore = 1500 // per core → ρ = 0.6 at calMeanCPU

	// The mean-wait estimator is correlated across busy periods, so it
	// converges slowly: 800 ms windows (~1.2k requests) spread ±30% across
	// seeds, 4 s windows land within ~5% of Pollaczek-Khinchine. The
	// calibrated runs therefore use their own, longer window — they cost
	// tens of milliseconds of wall time, not seconds.
	calMeasure  = 4 * sim.Second
	calWarmup   = 200 * sim.Millisecond
	queueingTol = 0.15 // slack around the analytic values
)

// calSCV is the squared coefficient of variation of the calibrated
// lognormal service law: e^{σ²} − 1.
func calSCV() float64 { return math.Exp(calSigma*calSigma) - 1 }

// calProfile is the calibrated single service.
func calProfile() *workload.Profile {
	return &workload.Profile{
		Name:           "Calibrated",
		MeanCPU:        calMeanCPU,
		CPUSigma:       calSigma,
		MeanIOCalls:    0,
		IOMean:         0,
		IOSigma:        0,
		SharedFrac:     0.5,
		FootprintKB:    200,
		BaseRPSPerCore: calRPSCore,
	}
}

// calConfig builds the calibrated c-server (c-core) config. The perturb
// mutator is applied so corrupted overhead constants surface here too.
func calConfig(seed uint64, c int, perturb func(*cluster.Config)) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.MeasureDuration = calMeasure
	cfg.WarmupDuration = calWarmup
	cfg.PrimaryVMs = 1
	cfg.CoresPerPrimary = c
	cfg.HarvestOwnCores = c
	cfg.CoresPerServer = 2 * c
	cfg.LoadScale = 1
	cfg.TraceSteps = 0 // flat load: the models assume a homogeneous Poisson stream
	cfg.BurstBatchProb = 0
	cfg.Profiles = []*workload.Profile{calProfile()}
	if perturb != nil {
		perturb(&cfg)
	}
	return cfg
}

// calOptions is the hardware scheduling path without harvesting: cores
// learn of work instantly, queues are cheap, and no core ever leaves, so
// the system is exactly a c-server queue.
func calOptions() cluster.Options {
	return cluster.Options{
		Name:     "Calibrated",
		HWSched:  true,
		HWQueue:  true,
		HWCtxtSw: true,
	}
}

// runCalibrated executes one calibrated run and returns its audit.
func runCalibrated(seed uint64, c int, perturb func(*cluster.Config)) (*cluster.ServerResult, *obs.Audit) {
	cfg := calConfig(seed, c, perturb)
	opts := calOptions()
	a := obs.NewAudit()
	opts.Observer = a
	res := cluster.RunServer(cfg, opts, defaultWork())
	a.Finish(res.AccountedEnd)
	return res, a
}

// checkQueueingBounds cross-checks the simulated mean queue wait of the
// calibrated configs against internal/queueing: the exact Pollaczek-
// Khinchine M/G/1 wait for c=1, and the M/M/c / Allen-Cunneen M/G/c
// bracket for c=4. It also sanity-checks the realized Poisson arrival
// count against the configured rate. These runs are always fault-free:
// the brackets assume the calibrated service law.
func checkQueueingBounds(seed uint64, perturb func(*cluster.Config)) []Check {
	var checks []Check

	meanS := calMeanCPU.Seconds()
	scv := calSCV()

	// c = 1: M/G/1 has an exact mean-wait law.
	{
		lambda := float64(calRPSCore)
		_, audit := runCalibrated(seed, 1, perturb)
		w, n := audit.MeanQueueWait()
		pk := queueing.MG1{Lambda: lambda, MeanS: meanS, SCVS: scv}
		want, err := pk.MeanWait()
		if err != nil {
			panic(err)
		}
		wSec := w.Seconds()
		checks = append(checks, Check{
			Name: "analytic/queueing-mg1-wait",
			Relation: fmt.Sprintf("simulated mean queue wait of the calibrated single-core "+
				"service must match the Pollaczek-Khinchine M/G/1 wait within %.0f%%",
				100*queueingTol),
			OK: relTolOK(wSec, want, queueingTol, 0),
			Detail: fmt.Sprintf("sim=%.1fµs P-K=%.1fµs (ρ=%.2f, n=%d)",
				wSec*1e6, want*1e6, pk.Rho(), n),
		})
		checks = append(checks, checkArrivalRate("analytic/queueing-mg1-arrivals", lambda, audit))
	}

	// c = 4: bracket between Allen-Cunneen (below, SCV < 1) and M/M/c
	// (above — exponential service is the pessimistic envelope here).
	{
		const c = 4
		lambda := float64(calRPSCore * c)
		_, audit := runCalibrated(seed, c, perturb)
		w, n := audit.MeanQueueWait()
		ac := queueing.MGc{Lambda: lambda, MeanS: meanS, SCVS: scv, C: c}
		lower, err := ac.MeanWait()
		if err != nil {
			panic(err)
		}
		mmc := queueing.MMc{Lambda: lambda, Mu: 1 / meanS, C: c}
		upper, err := mmc.MeanWait()
		if err != nil {
			panic(err)
		}
		wSec := w.Seconds()
		lo := lower * (1 - queueingTol)
		hi := upper * (1 + queueingTol)
		checks = append(checks, Check{
			Name: "analytic/queueing-mgc-bracket",
			Relation: "simulated mean queue wait of the calibrated 4-core service must " +
				"lie between the Allen-Cunneen M/G/c and M/M/c mean waits",
			OK: wSec >= lo && wSec <= hi,
			Detail: fmt.Sprintf("sim=%.1fµs ∈ [AC=%.1fµs, MMc=%.1fµs] ±%.0f%% (ρ=%.2f, n=%d)",
				wSec*1e6, lower*1e6, upper*1e6, 100*queueingTol, ac.Rho(), n),
		})
		checks = append(checks, checkArrivalRate("analytic/queueing-mgc-arrivals", lambda, audit))
	}
	return checks
}

// checkArrivalRate asserts the measured-window arrival count is within 5σ
// of the configured Poisson rate: the audit's measured population is
// completions + misses + still-in-flight.
func checkArrivalRate(name string, lambda float64, audit *obs.Audit) Check {
	_, latN := audit.LatencySum()
	_, missN := audit.MissSum()
	inflight, _ := audit.Unresolved()
	got := float64(latN) + float64(missN) + float64(inflight)
	want := lambda * calMeasure.Seconds()
	sigma := math.Sqrt(want)
	diff := math.Abs(got - want)
	return Check{
		Name: name,
		Relation: "measured-window arrival count must be within 5σ of the configured " +
			"Poisson rate λT",
		OK:     diff <= 5*sigma,
		Detail: fmt.Sprintf("got %d want %.0f ± %.0f (5σ)", int64(got), want, 5*sigma),
	}
}
