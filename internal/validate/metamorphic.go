package validate

import (
	"fmt"
	"math"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
	"hardharvest/internal/workload"
)

// rescaleK is the time-rescaling factor: every duration constant, every
// service time, and the measurement window itself stretch by k while
// arrival rates shrink by k. Latencies must stretch by exactly k (up to
// per-draw picosecond rounding and the 1 µs phase clamps, absorbed by
// rescaleTol).
const rescaleK = 2

// rescaleTol bounds the per-service percentile deviation of the rescaled
// run after dividing by k. The RNG consumes identical uniform draws in
// both runs and Exp/LogNormal scale exactly with their means, so the band
// only absorbs picosecond rounding, the unscaled 1 µs phase clamps, and
// end-of-window boundary effects.
const rescaleTol = 0.02

// rescaleOptions is the hardware scheduling path without harvesting: the
// software path's PollInterval jitter draws (Int63n) do not scale with
// their bound, and batch-job service times come from the workload files,
// not the config — both would break the exact-scaling argument.
func rescaleOptions() cluster.Options {
	return cluster.Options{
		Name:     "Rescale",
		HWSched:  true,
		HWQueue:  true,
		HWCtxtSw: true,
	}
}

// rescaleProfiles stretches every service's time constants by k and
// divides its arrival rate by k, preserving utilization.
func rescaleProfiles(k int64) []*workload.Profile {
	ps := workload.Profiles()
	out := make([]*workload.Profile, len(ps))
	for i, p := range ps {
		q := *p
		q.MeanCPU *= sim.Duration(k)
		q.IOMean *= sim.Duration(k)
		q.BaseRPSPerCore /= float64(k)
		out[i] = &q
	}
	return out
}

// checkRescale runs the time-rescaling metamorphic relation: simulate the
// default services on the hardware no-harvest path, then rescale time by
// k and simulate again; per-service Mean/P50/P99 divided by k must land
// inside rescaleTol of the base run, and completion counts must match to
// within the end-of-window boundary effect. Fault plans carry absolute
// trigger times and are not time-rescalable, so this relation always runs
// fault-free.
func checkRescale(p Params, perturb func(*cluster.Config)) []Check {
	base := cluster.DefaultConfig()
	base.MeasureDuration = p.Measure
	base.WarmupDuration = p.Warmup
	base.Seed = p.Seed
	if perturb != nil {
		perturb(&base)
	}
	scaled := scaleDurations(base, rescaleK)
	scaled.Profiles = rescaleProfiles(rescaleK)

	rb := cluster.RunServer(base, rescaleOptions(), defaultWork())
	rs := cluster.RunServer(scaled, rescaleOptions(), defaultWork())

	var checks []Check
	for _, svc := range serviceOrder {
		recB, okB := rb.Service[svc]
		recS, okS := rs.Service[svc]
		if !okB || !okS {
			checks = append(checks, Check{
				Name:     "metamorphic/time-rescaling/" + svc,
				Relation: "both the base and the rescaled run must measure every service",
				OK:       false,
				Detail:   fmt.Sprintf("service present: base=%v scaled=%v", okB, okS),
			})
			continue
		}
		type q struct {
			name       string
			base, scld sim.Duration
		}
		qs := []q{
			{"mean", recB.Mean(), recS.Mean() / rescaleK},
			{"p50", recB.P50(), recS.P50() / rescaleK},
			{"p99", recB.P99(), recS.P99() / rescaleK},
		}
		ok := true
		detail := ""
		for _, x := range qs {
			if !relTolOK(float64(x.scld), float64(x.base), rescaleTol, float64(5*sim.Microsecond)) {
				ok = false
			}
			detail += fmt.Sprintf("%s %s→%s ", x.name, durf(x.base), durf(x.scld))
		}
		countOK := relTolOK(float64(recS.Count()), float64(recB.Count()), 0.02, 4)
		checks = append(checks, Check{
			Name: "metamorphic/time-rescaling/" + svc,
			Relation: fmt.Sprintf("uniform time rescaling by %d must scale every latency "+
				"percentile by exactly %d (within %.0f%% for rounding and phase clamps)",
				rescaleK, rescaleK, 100*rescaleTol),
			OK: ok && countOK,
			Detail: fmt.Sprintf("%scount %d→%d (scaled values shown ÷%d)",
				detail, recB.Count(), recS.Count(), rescaleK),
		})
	}
	return checks
}

// serviceOrder matches the paper's x-axes (and experiments' row order).
var serviceOrder = []string{"Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"}

// checkComposition runs the server-duplication relation: a 2-server
// cluster (double the aggregate arrival rate) must reproduce each
// server's distributions exactly — servers never communicate, so cluster
// composition is byte-identical to running each seeded server alone.
// Unlike the statistical relations this one is exact, and it runs under
// whatever fault plan and resilience policies the suite was given.
func checkComposition(p Params, cfg cluster.Config) []Check {
	const servers = 2
	opts := cluster.SystemOptions(cluster.HardHarvestBlock)
	opts.Resilience = p.Resilience
	cl := cluster.RunCluster(cfg, opts, servers)

	works := batch.Workloads()
	var checks []Check
	for i := 0; i < servers; i++ {
		scfg := cfg
		scfg.Seed = cfg.Seed + uint64(i)*7919 // RunCluster's per-server seeding
		solo := cluster.RunServer(scfg, opts, works[i])
		dup := cl.Servers[i]
		ok := solo.Requests == dup.Requests && solo.Arrivals == dup.Arrivals &&
			solo.Reassigns == dup.Reassigns && solo.BusyCores == dup.BusyCores &&
			solo.HarvestJobs == dup.HarvestJobs
		detail := fmt.Sprintf("requests %d/%d arrivals %d/%d reassigns %d/%d",
			dup.Requests, solo.Requests, dup.Arrivals, solo.Arrivals,
			dup.Reassigns, solo.Reassigns)
		for _, svc := range serviceOrder {
			rd, okD := dup.Service[svc]
			rsolo, okS := solo.Service[svc]
			if !okD || !okS || rd.Count() != rsolo.Count() ||
				rd.P50() != rsolo.P50() || rd.P99() != rsolo.P99() {
				ok = false
				detail += fmt.Sprintf("; %s diverged", svc)
			}
		}
		checks = append(checks, Check{
			Name: fmt.Sprintf("metamorphic/server-duplication/server%d", i),
			Relation: "duplicating a server (doubling aggregate arrivals) must preserve " +
				"per-server distributions exactly: cluster composition equals " +
				"independent seeded runs",
			OK:     ok,
			Detail: detail,
		})
	}
	return checks
}

// seedBandTol bounds the max/min spread of aggregate percentile summaries
// across permuted seeds. Individual-service tails are noisy at quick
// scale; the aggregate means and medians are stable.
const (
	seedBandTolP50  = 0.20
	seedBandTolP99  = 0.45
	seedBandWiden   = 2.0 // fault plans add variance
	seedBandSamples = 3
)

// checkSeedBand runs the seed-permutation relation: the same system under
// permuted seeds must keep its percentile summaries inside a declared
// tolerance band — randomness may move individual requests, never the
// distribution.
func checkSeedBand(p Params, cfg cluster.Config) []Check {
	opts := cluster.SystemOptions(cluster.HardHarvestBlock)
	opts.Resilience = p.Resilience
	widen := 1.0
	if p.Faults != nil {
		widen = seedBandWiden
	}
	var p50s, p99s []float64
	for i := uint64(0); i < seedBandSamples; i++ {
		scfg := cfg
		scfg.Seed = cfg.Seed + i
		res := cluster.RunServer(scfg, opts, defaultWork())
		p50s = append(p50s, float64(res.AvgP50()))
		p99s = append(p99s, float64(res.AvgP99()))
	}
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if lo <= 0 {
			return math.Inf(1)
		}
		return hi/lo - 1
	}
	s50, s99 := spread(p50s), spread(p99s)
	return []Check{
		{
			Name: "metamorphic/seed-permutation/avg-p50",
			Relation: fmt.Sprintf("seed permutation must keep the aggregate median within "+
				"a %.0f%% band across %d seeds", 100*seedBandTolP50*widen, seedBandSamples),
			OK:     s50 <= seedBandTolP50*widen,
			Detail: fmt.Sprintf("spread %.1f%% (bound %.0f%%)", 100*s50, 100*seedBandTolP50*widen),
		},
		{
			Name: "metamorphic/seed-permutation/avg-p99",
			Relation: fmt.Sprintf("seed permutation must keep the aggregate P99 within "+
				"a %.0f%% band across %d seeds", 100*seedBandTolP99*widen, seedBandSamples),
			OK:     s99 <= seedBandTolP99*widen,
			Detail: fmt.Sprintf("spread %.1f%% (bound %.0f%%)", 100*s99, 100*seedBandTolP99*widen),
		},
	}
}

// checkPoissonComposition verifies thinning and superposition of the
// workload generator's Poisson streams against closed-form counts: a
// p-thinned rate-λ stream is Poisson(pλ), and the superposition of two
// independent rate-λ streams is Poisson(2λ). Counts must land within 5σ
// and the superposed mean gap within 5% of 1/(2λ). This pins the arrival
// machinery itself, independent of any server.
func checkPoissonComposition(seed uint64) []Check {
	const (
		horizon = 10 * sim.Second
		rate    = 2000.0 // per generator
		thinP   = 0.5
	)
	prof := calProfile()
	prof.BaseRPSPerCore = rate

	gen := func(s uint64) *workload.Generator {
		return workload.NewGenerator(prof, 1, nil, 0, stats.NewRNG(s))
	}

	// Thinning: keep each arrival of one stream with probability p.
	thinRNG := stats.NewRNG(seed ^ 0x9E3779B97F4A7C15)
	g := gen(seed)
	kept := 0
	for {
		a := g.Next()
		if a.At >= sim.Time(horizon) {
			break
		}
		if thinRNG.Float64() < thinP {
			kept++
		}
	}
	wantThin := rate * thinP * horizon.Seconds()
	thinSigma := math.Sqrt(wantThin)
	thinOK := math.Abs(float64(kept)-wantThin) <= 5*thinSigma

	// Superposition: merge two independent streams and compare the merged
	// count and mean gap against a rate-2λ process.
	g1, g2 := gen(seed+101), gen(seed+211)
	merged := 0
	var last sim.Time
	a1, a2 := g1.Next(), g2.Next()
	for {
		var at sim.Time
		if a1.At <= a2.At {
			at = a1.At
			a1 = g1.Next()
		} else {
			at = a2.At
			a2 = g2.Next()
		}
		if at >= sim.Time(horizon) {
			break
		}
		merged++
		last = at
	}
	wantSup := 2 * rate * horizon.Seconds()
	supSigma := math.Sqrt(wantSup)
	supOK := math.Abs(float64(merged)-wantSup) <= 5*supSigma
	meanGap := last.Sub(0).Seconds() / float64(merged)
	gapOK := relTolOK(meanGap, 1/(2*rate), 0.05, 0)

	return []Check{
		{
			Name: "metamorphic/poisson-thinning",
			Relation: fmt.Sprintf("Bernoulli(%.1f)-thinning a Poisson(λ) stream must yield "+
				"Poisson(%.1fλ) counts (within 5σ)", thinP, thinP),
			OK:     thinOK,
			Detail: fmt.Sprintf("kept %d want %.0f ± %.0f (5σ)", kept, wantThin, 5*thinSigma),
		},
		{
			Name: "metamorphic/poisson-superposition",
			Relation: "superposing two independent Poisson(λ) streams must yield Poisson(2λ) " +
				"counts (within 5σ) and mean gap 1/2λ (within 5%)",
			OK: supOK && gapOK,
			Detail: fmt.Sprintf("merged %d want %.0f ± %.0f (5σ); mean gap %.1fµs want %.1fµs",
				merged, wantSup, 5*supSigma, meanGap*1e6, 1e6/(2*rate)),
		},
	}
}
