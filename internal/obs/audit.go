package obs

import "hardharvest/internal/sim"

// Audit is an Observer that accumulates the analytic quantities the
// validate oracle cross-checks against queueing theory:
//
//   - a step integral of N(t), the number of measured primary requests in
//     flight, so Little's law (∫N dt = Σ sojourn times) can be asserted as
//     an exact identity over the audited span;
//   - flow balance: measured arrivals = completions + deadline misses +
//     still-unresolved at the horizon (exact, not statistical);
//   - per-attempt queue-wait episodes (enqueue/unblock → dispatch gaps)
//     whose mean is bracketed by M/M/c and M/G/c bounds on calibrated
//     configs;
//   - flush-cost extrema, pinning the configured flush constant.
//
// The audit deliberately re-derives everything from the event stream alone
// — it shares no state with the simulator's own accounting, which is what
// makes agreement between the two meaningful. Only measured (arrived
// inside the measurement window) primary requests enter the Little's-law
// and wait statistics; batch jobs and warmup/drain traffic are excluded.
//
// An Audit observes exactly one server run; it is not safe for concurrent
// use. Call Finish once after the run to close the open N(t) interval.
type Audit struct {
	counters Counters

	// Little's law: inflight maps a measured call's first request id to
	// its arrival time; integral advances by n·Δt at every event.
	inflight map[uint64]sim.Time
	lastT    sim.Time
	integral sim.Duration

	latSum    sim.Duration // Σ latency over measured completions
	latCount  uint64
	missSum   sim.Duration // Σ sojourn over measured deadline misses
	missCount uint64

	firstArrival sim.Time
	haveArrival  bool

	// Queue waits: enq holds the last enqueue/unblock time per request id;
	// the next dispatch of that id closes the episode.
	enq       map[uint64]sim.Time
	waitSum   sim.Duration
	waitCount uint64

	flushMin, flushMax sim.Duration
	finished           bool
	end                sim.Time
}

// NewAudit returns an empty audit.
func NewAudit() *Audit {
	return &Audit{
		inflight: make(map[uint64]sim.Time),
		enq:      make(map[uint64]sim.Time),
	}
}

// advance integrates N(t) up to now. Events arrive in nondecreasing time
// order from the discrete-event engine.
func (a *Audit) advance(now sim.Time) {
	a.integral += sim.Duration(len(a.inflight)) * now.Sub(a.lastT)
	a.lastT = now
}

// Observe implements Observer.
func (a *Audit) Observe(ev Event) {
	a.counters.Count(ev)
	if ev.Kind == KindFlushStart {
		// Flush costs are a core-level quantity: batch-job dispatches pay
		// them too, so the extrema must cover job events.
		if a.flushMax == 0 || ev.Dur < a.flushMin {
			a.flushMin = ev.Dur
		}
		if ev.Dur > a.flushMax {
			a.flushMax = ev.Dur
		}
	}
	if ev.IsJob {
		return
	}
	switch ev.Kind {
	case KindEnqueue, KindUnblock:
		if ev.Measured {
			a.enq[ev.Req] = ev.Time
		}
	case KindDispatch:
		if at, ok := a.enq[ev.Req]; ok {
			delete(a.enq, ev.Req)
			a.waitSum += ev.Time.Sub(at)
			a.waitCount++
		}
	}
	if !ev.Measured {
		return
	}
	switch ev.Kind {
	case KindArrival:
		a.advance(ev.Time)
		a.inflight[ev.Req] = ev.Time
		if !a.haveArrival {
			a.firstArrival = ev.Time
			a.haveArrival = true
		}
	case KindComplete:
		if _, ok := a.inflight[ev.Req]; ok {
			a.advance(ev.Time)
			delete(a.inflight, ev.Req)
			a.latSum += ev.Dur
			a.latCount++
		}
	case KindDeadlineMiss:
		if _, ok := a.inflight[ev.Req]; ok {
			a.advance(ev.Time)
			delete(a.inflight, ev.Req)
			a.missSum += ev.Dur
			a.missCount++
		}
	}
}

// Finish closes the audit at the given simulated time (the accounted end
// of the run): the open N(t) interval is integrated up to end and the
// residual sojourn of still-unresolved requests is computed. Accessors
// before Finish see partial values.
func (a *Audit) Finish(end sim.Time) {
	if a.finished {
		return
	}
	a.advance(end)
	a.end = end
	a.finished = true
}

// Counters reports the aggregated event counts (all traffic, measured or
// not — same semantics as SpanTracer.Counters).
func (a *Audit) Counters() Counters { return a.counters }

// Integral reports ∫N(t)dt: measured in-flight requests integrated over
// time up to Finish's end.
func (a *Audit) Integral() sim.Duration { return a.integral }

// LatencySum reports the summed end-to-end latency of measured completed
// requests, and their count.
func (a *Audit) LatencySum() (sim.Duration, uint64) { return a.latSum, a.latCount }

// MissSum reports the summed sojourn of measured deadline-missed calls,
// and their count.
func (a *Audit) MissSum() (sim.Duration, uint64) { return a.missSum, a.missCount }

// Unresolved reports the measured requests still in flight at Finish and
// their total residual sojourn (end − arrival each).
func (a *Audit) Unresolved() (int, sim.Duration) {
	var resid sim.Duration
	for _, at := range a.inflight {
		resid += a.end.Sub(at)
	}
	return len(a.inflight), resid
}

// FirstArrival reports the arrival time of the first measured request
// (zero, false if none arrived).
func (a *Audit) FirstArrival() (sim.Time, bool) { return a.firstArrival, a.haveArrival }

// MeanQueueWait reports the mean enqueue→dispatch gap over measured
// queue-wait episodes, and the episode count.
func (a *Audit) MeanQueueWait() (sim.Duration, uint64) {
	if a.waitCount == 0 {
		return 0, 0
	}
	return a.waitSum / sim.Duration(a.waitCount), a.waitCount
}

// FlushRange reports the smallest and largest critical-path flush cost
// seen (both zero if no flush occurred).
func (a *Audit) FlushRange() (min, max sim.Duration) { return a.flushMin, a.flushMax }
