package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"hardharvest/internal/sim"
)

// histSubBits is the log-linear sub-bucket precision: 2^histSubBits
// sub-buckets per power of two, bounding the quantile error at ~3%.
const histSubBits = 5

// LatencyHist is an HDR-style log-bucketed latency histogram over simulated
// durations (integer picoseconds): values below 2^histSubBits are exact;
// above that, each power of two is split into 2^histSubBits sub-buckets.
// Recording is O(1) and allocation-free after the bucket array stops
// growing.
type LatencyHist struct {
	buckets []uint64
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{min: -1}
}

// bucketOf maps a non-negative value to its bucket index; the mapping is
// monotone so quantiles come from a prefix walk.
func bucketOf(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - histSubBits
	return exp<<histSubBits + int(v>>uint(exp))
}

// bucketUpper reports the largest value mapping into bucket i (the
// conservative quantile estimate).
func bucketUpper(i int) sim.Duration {
	if i < 1<<histSubBits {
		return sim.Duration(i)
	}
	exp := uint(i>>histSubBits) - 1
	sub := int64(i & (1<<histSubBits - 1))
	base := (int64(1)<<histSubBits + sub) << exp
	return sim.Duration(base + (1 << exp) - 1)
}

// Record adds one latency (negative values clamp to zero).
func (h *LatencyHist) Record(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	i := bucketOf(int64(d))
	if i >= len(h.buckets) {
		grown := make([]uint64, i+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if h.min < 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports recorded samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Min reports the smallest recorded latency (0 when empty).
func (h *LatencyHist) Min() sim.Duration {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded latency.
func (h *LatencyHist) Max() sim.Duration { return h.max }

// Mean reports the exact mean (sums are kept outside the buckets).
func (h *LatencyHist) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Quantile reports the q-quantile (q in [0,1]) as the upper edge of the
// bucket holding the target rank, clamped to the recorded extremes. Edge
// behavior is explicit, not incidental: q <= 0 (including -Inf) reports the
// exact recorded minimum, q >= 1 (including +Inf) reports the exact
// recorded maximum, NaN is treated as q=1 (the conservative end for a
// latency metric), and an empty histogram reports 0 for every q. Interior
// quantiles carry the histogram's bucket quantization (~3% with the
// default sub-bucket precision); the q=0 and q=1 endpoints are exact
// because min and max are tracked outside the buckets.
func (h *LatencyHist) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 || math.IsNaN(q) {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		return h.max
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Sum reports the exact sum of recorded latencies (kept outside the
// buckets, so it carries no quantization error).
func (h *LatencyHist) Sum() sim.Duration { return h.sum }

// Clone returns an independent copy of the histogram. Serve-mode exporters
// clone at a simulated-time barrier and publish the copy to concurrent
// HTTP readers while the engine keeps recording into the original.
func (h *LatencyHist) Clone() *LatencyHist {
	c := *h
	c.buckets = append([]uint64(nil), h.buckets...)
	return &c
}

// Merge folds another histogram into this one. Buckets share the same
// log-linear layout, so merging is exact: the result is identical to
// recording both sample streams into one histogram.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.buckets) > len(h.buckets) {
		grown := make([]uint64, len(o.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if h.min < 0 || (o.min >= 0 && o.min < h.min) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// CumulativeBuckets reports count(sample <= bound) for each bound, for
// exporting the distribution as a native Prometheus histogram. bounds must
// be ascending. A sample is attributed to its bucket's upper edge, so each
// cumulative count is exact with respect to those edges and within one
// sub-bucket (~3%) of the true value-based count — the same quantization
// Quantile carries.
func (h *LatencyHist) CumulativeBuckets(bounds []sim.Duration) []uint64 {
	out := make([]uint64, len(bounds))
	i, cum := 0, uint64(0)
	for bi, bound := range bounds {
		for i < len(h.buckets) && bucketUpper(i) <= bound {
			cum += h.buckets[i]
			i++
		}
		out[bi] = cum
	}
	return out
}

// Quantiles evaluates several quantiles in one call.
func (h *LatencyHist) Quantiles(qs ...float64) []sim.Duration {
	out := make([]sim.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// String renders the standard export (count, mean, P50/P90/P99/P99.9, max).
func (h *LatencyHist) String() string {
	qs := h.Quantiles(0.50, 0.90, 0.99, 0.999)
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v max=%v",
		h.count, h.Mean(), qs[0], qs[1], qs[2], qs[3], h.max)
}

// Nonzero returns the populated (bucket upper edge, count) pairs in
// ascending order, for exporting the full distribution.
func (h *LatencyHist) Nonzero() ([]sim.Duration, []uint64) {
	var edges []sim.Duration
	var counts []uint64
	for i, c := range h.buckets {
		if c > 0 {
			edges = append(edges, bucketUpper(i))
			counts = append(counts, c)
		}
	}
	return edges, counts
}

// Ascii renders a coarse textual histogram (one row per populated decade),
// for quick terminal inspection via hhsim -counters.
func (h *LatencyHist) Ascii() string {
	edges, counts := h.Nonzero()
	if len(edges) == 0 {
		return "(empty)\n"
	}
	// Collapse to decades of microseconds.
	decade := map[int]uint64{}
	for i, e := range edges {
		d := 0
		for v := int64(e) / int64(sim.Microsecond); v >= 10; v /= 10 {
			d++
		}
		decade[d] += counts[i]
	}
	keys := make([]int, 0, len(decade))
	for k := range decade {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var peak uint64
	for _, c := range decade {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for _, k := range keys {
		lo := int64(1)
		for i := 0; i < k; i++ {
			lo *= 10
		}
		bar := int(40 * decade[k] / peak)
		fmt.Fprintf(&b, "%8dus..%-8dus %8d %s\n", lo, lo*10, decade[k], strings.Repeat("#", bar))
	}
	return b.String()
}
