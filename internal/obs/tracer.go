package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hardharvest/internal/sim"
)

// lifecycleTid is the per-VM virtual thread carrying request-level events
// that have no core (arrival/enqueue/block/pin); physical cores use their
// core id as tid, and the server has at most a few dozen cores.
const lifecycleTid = 1000

// Counters aggregates the harvest-event counts of one traced run.
type Counters struct {
	Arrivals    uint64 // primary invocations entering the system
	Enqueues    uint64 // ready-queue insertions (jobs included)
	Dispatches  uint64 // core pickups
	Loans       uint64 // cross-VM dispatches (hw) + hypervisor lends (sw)
	LendMoves   uint64 // software hypervisor lend operations
	Reclaims    uint64 // hardware preempts + software reclaim operations
	Preempts    uint64 // hardware reclamation interrupts served
	Flushes     uint64 // cache/TLB flushes (critical-path and move-time)
	Aborts      uint64 // harvest jobs kicked off a core and re-queued
	Pins        uint64 // arrivals/resumes parked on unbacked vCPUs
	Blocks      uint64 // I/O blocking calls
	Unblocks    uint64 // I/O completions re-queued
	Completions uint64 // primary invocations finished
	JobsDone    uint64 // harvest batch jobs finished

	// Robustness counters (zero unless faults or resilience policies run).
	FaultsInjected uint64 // injected fault events fired
	Sheds          uint64 // attempts rejected by queue-depth load shedding
	Retries        uint64 // retry attempts launched
	Hedges         uint64 // hedged duplicate attempts launched
	HedgesWon      uint64 // calls resolved by a hedge attempt
	DeadlineMisses uint64 // calls that exhausted their timeout/retry budget
}

// CounterDef describes one Counters field. It is the single source of truth
// for counter naming: Name is the stable snake_case identifier used by
// machine-facing exports (Prometheus label values — renaming one is a
// breaking change to scrapers), Label is the short display form used by
// Counters.String, and Get reads the field. Robust marks the robustness
// group, which the summary line renders only when one of its members is
// nonzero; Summary marks membership in the one-line summary at all
// (enqueues/dispatches/lend-moves/unblocks are export-only).
type CounterDef struct {
	Name    string
	Label   string
	Help    string
	Robust  bool
	Summary bool
	Get     func(*Counters) uint64
}

// counterDefs lists every counter in render order: the summary group first
// (in Counters.String order), then the export-only counters, then the
// robustness group (in its String order).
var counterDefs = []CounterDef{
	{Name: "arrivals", Label: "arrivals", Help: "primary invocations entering the system", Summary: true, Get: func(c *Counters) uint64 { return c.Arrivals }},
	{Name: "completions", Label: "completions", Help: "primary invocations finished", Summary: true, Get: func(c *Counters) uint64 { return c.Completions }},
	{Name: "jobs_done", Label: "jobs", Help: "harvest batch jobs finished", Summary: true, Get: func(c *Counters) uint64 { return c.JobsDone }},
	{Name: "loans", Label: "loans", Help: "cross-VM dispatches (hw) plus hypervisor lends (sw)", Summary: true, Get: func(c *Counters) uint64 { return c.Loans }},
	{Name: "reclaims", Label: "reclaims", Help: "hardware preempts plus software reclaim operations", Summary: true, Get: func(c *Counters) uint64 { return c.Reclaims }},
	{Name: "preempts", Label: "preempts", Help: "hardware reclamation interrupts served", Summary: true, Get: func(c *Counters) uint64 { return c.Preempts }},
	{Name: "flushes", Label: "flushes", Help: "cache/TLB flushes (critical-path and move-time)", Summary: true, Get: func(c *Counters) uint64 { return c.Flushes }},
	{Name: "aborts", Label: "aborts", Help: "harvest jobs kicked off a core and re-queued", Summary: true, Get: func(c *Counters) uint64 { return c.Aborts }},
	{Name: "pins", Label: "pins", Help: "arrivals/resumes parked on unbacked vCPUs", Summary: true, Get: func(c *Counters) uint64 { return c.Pins }},
	{Name: "blocks", Label: "blocks", Help: "I/O blocking calls", Summary: true, Get: func(c *Counters) uint64 { return c.Blocks }},
	{Name: "enqueues", Label: "enqueues", Help: "ready-queue insertions (jobs included)", Get: func(c *Counters) uint64 { return c.Enqueues }},
	{Name: "dispatches", Label: "dispatches", Help: "core pickups", Get: func(c *Counters) uint64 { return c.Dispatches }},
	{Name: "lend_moves", Label: "lend-moves", Help: "software hypervisor lend operations", Get: func(c *Counters) uint64 { return c.LendMoves }},
	{Name: "unblocks", Label: "unblocks", Help: "I/O completions re-queued", Get: func(c *Counters) uint64 { return c.Unblocks }},
	{Name: "faults_injected", Label: "faults", Help: "injected fault events fired", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.FaultsInjected }},
	{Name: "sheds", Label: "sheds", Help: "attempts rejected by queue-depth load shedding", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.Sheds }},
	{Name: "retries", Label: "retries", Help: "retry attempts launched", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.Retries }},
	{Name: "hedges", Label: "hedges", Help: "hedged duplicate attempts launched", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.Hedges }},
	{Name: "hedges_won", Label: "hedge-wins", Help: "calls resolved by a hedge attempt", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.HedgesWon }},
	{Name: "deadline_misses", Label: "deadline-misses", Help: "calls that exhausted their timeout/retry budget", Robust: true, Summary: true, Get: func(c *Counters) uint64 { return c.DeadlineMisses }},
}

// CounterDefs returns the counter definition table (a copy; the underlying
// defs are immutable program data).
func CounterDefs() []CounterDef {
	return append([]CounterDef(nil), counterDefs...)
}

// Add folds another counter set into this one (fleet aggregation for the
// routed serve endpoints). A reflection test pins that every Counters field
// is summed — adding a field without extending Add is a build-time-visible
// test failure, not a silent undercount.
func (c *Counters) Add(o *Counters) {
	c.Arrivals += o.Arrivals
	c.Enqueues += o.Enqueues
	c.Dispatches += o.Dispatches
	c.Loans += o.Loans
	c.LendMoves += o.LendMoves
	c.Reclaims += o.Reclaims
	c.Preempts += o.Preempts
	c.Flushes += o.Flushes
	c.Aborts += o.Aborts
	c.Pins += o.Pins
	c.Blocks += o.Blocks
	c.Unblocks += o.Unblocks
	c.Completions += o.Completions
	c.JobsDone += o.JobsDone
	c.FaultsInjected += o.FaultsInjected
	c.Sheds += o.Sheds
	c.Retries += o.Retries
	c.Hedges += o.Hedges
	c.HedgesWon += o.HedgesWon
	c.DeadlineMisses += o.DeadlineMisses
}

// Count folds one event into the counters. It is the single place event
// kinds map to counter fields; SpanTracer and Audit both delegate here so
// their counts can never disagree.
func (c *Counters) Count(ev Event) {
	switch ev.Kind {
	case KindArrival:
		c.Arrivals++
	case KindEnqueue:
		c.Enqueues++
	case KindDispatch:
		c.Dispatches++
		if ev.CrossVM {
			c.Loans++
		}
	case KindFlushStart:
		c.Flushes++
	case KindBlock:
		c.Blocks++
	case KindUnblock:
		c.Unblocks++
	case KindComplete:
		if ev.IsJob {
			c.JobsDone++
		} else {
			c.Completions++
		}
	case KindPreempt:
		c.Preempts++
		c.Reclaims++
	case KindAbort:
		c.Aborts++
	case KindPin:
		c.Pins++
	case KindLendStart:
		c.LendMoves++
		c.Loans++
	case KindReclaimStart:
		c.Reclaims++
	case KindFault:
		c.FaultsInjected++
	case KindShed:
		c.Sheds++
	case KindRetry:
		c.Retries++
	case KindHedge:
		c.Hedges++
	case KindHedgeWin:
		c.HedgesWon++
	case KindDeadlineMiss:
		c.DeadlineMisses++
	}
}

// String renders the counters as one summary line, driven by the counter
// definition table so the display can never drift from the export names.
// The robustness section is appended only when any of its counters is
// nonzero, so fault-free runs render identically to builds that predate
// fault injection.
func (c Counters) String() string {
	var b strings.Builder
	for _, d := range counterDefs {
		if !d.Summary || d.Robust {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", d.Label, d.Get(&c))
	}
	robust := false
	for _, d := range counterDefs {
		if d.Robust && d.Get(&c) != 0 {
			robust = true
			break
		}
	}
	if robust {
		for _, d := range counterDefs {
			if d.Robust {
				fmt.Fprintf(&b, " %s=%d", d.Label, d.Get(&c))
			}
		}
	}
	return b.String()
}

// SpanTracer records the full event stream of one server run and exports
// it as Chrome trace-event JSON (loadable in Perfetto or chrome://tracing):
// one "process" per VM, one "thread" per core, nested spans for dispatch
// overheads, flushes and CPU bursts, and async spans for request lifetimes
// and I/O waits. It also maintains harvest-event counters and a log-bucketed
// latency histogram of measured primary requests.
//
// A SpanTracer observes exactly one server run; it is not safe for
// concurrent use.
type SpanTracer struct {
	run     string
	pidBase int

	topo      Topology
	coreOwner map[int]int

	events []Event

	counters Counters
	hist     *LatencyHist

	// execByReq accumulates per-request executed burst time so the traced
	// total reconciles with metrics.Breakdown.Execution.
	execByReq    map[uint64]sim.Duration
	execMeasured sim.Duration
	// flushCritical sums critical-path flush waits (KindFlushStart durs).
	flushCritical sim.Duration
}

// NewSpanTracer returns a tracer for one run. pidBase offsets the VM
// process ids so several runs can share one trace file without colliding;
// use multiples of 64 (a server has at most a few dozen VMs).
func NewSpanTracer(run string, pidBase int) *SpanTracer {
	return &SpanTracer{
		run:       run,
		pidBase:   pidBase,
		coreOwner: make(map[int]int),
		hist:      NewLatencyHist(),
		execByReq: make(map[uint64]sim.Duration),
	}
}

// Run reports the run label the tracer was created with.
func (t *SpanTracer) Run() string { return t.run }

// SetTopology receives the server shape before the event stream starts.
func (t *SpanTracer) SetTopology(topo Topology) {
	t.topo = topo
	for _, vm := range topo.VMs {
		for _, c := range vm.Cores {
			t.coreOwner[c] = vm.Idx
		}
	}
}

// Observe implements Observer.
func (t *SpanTracer) Observe(ev Event) {
	t.events = append(t.events, ev)
	t.counters.Count(ev)
	switch ev.Kind {
	case KindFlushStart:
		t.flushCritical += ev.Dur
	case KindBurstEnd:
		if !ev.IsJob {
			t.execByReq[ev.Req] += ev.Dur
		}
	case KindComplete:
		if !ev.IsJob {
			if ev.Measured {
				t.execMeasured += t.execByReq[ev.Req]
				t.hist.Record(ev.Dur)
			}
			delete(t.execByReq, ev.Req)
		}
	}
}

// Counters reports the aggregated harvest-event counts.
func (t *SpanTracer) Counters() Counters { return t.counters }

// Hist reports the latency histogram of measured primary completions.
func (t *SpanTracer) Hist() *LatencyHist { return t.hist }

// ExecMeasured reports the total executed burst time of measured primary
// requests; it reconciles with metrics.Breakdown.Execution for the same run.
func (t *SpanTracer) ExecMeasured() sim.Duration { return t.execMeasured }

// FlushCritical reports the summed critical-path flush waits.
func (t *SpanTracer) FlushCritical() sim.Duration { return t.flushCritical }

// Events reports the number of recorded events.
func (t *SpanTracer) Events() int { return len(t.events) }

// traceEvent is one Chrome trace-event record. Field order (and json's
// sorted args keys) make the marshalled output deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tsOf converts simulated time to trace microseconds.
func tsOf(tm sim.Time) float64 { return sim.Duration(tm).Microseconds() }

func (t *SpanTracer) pidOf(vm int) int { return t.pidBase + vm }

// pidOfCore places a core's thread under its owner VM's process; before a
// topology is known it falls back to the event's VM.
func (t *SpanTracer) pidOfCore(core, fallbackVM int) int {
	if owner, ok := t.coreOwner[core]; ok {
		return t.pidBase + owner
	}
	if fallbackVM >= 0 {
		return t.pidBase + fallbackVM
	}
	return t.pidBase
}

func reqID(req uint64) string { return fmt.Sprintf("0x%x", req) }

// appendTraceEvents renders the recorded stream into dst. Open spans
// (bursts still running or requests still in flight when the engine
// stopped) are closed at the last event timestamp so B/E pairs always
// balance.
func (t *SpanTracer) appendTraceEvents(dst []traceEvent) []traceEvent {
	// Metadata: process per VM, thread per core plus the lifecycle thread.
	for _, vm := range t.topo.VMs {
		role := "primary"
		if !vm.Primary {
			role = "harvest"
		}
		name := fmt.Sprintf("%s VM%d %s (%s)", t.run, vm.Idx, vm.Name, role)
		pid := t.pidOf(vm.Idx)
		dst = append(dst,
			traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Args: map[string]any{"sort_index": t.pidBase + vm.Idx}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: lifecycleTid, Args: map[string]any{"name": "requests"}},
		)
		for _, c := range vm.Cores {
			dst = append(dst, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: c,
				Args: map[string]any{"name": fmt.Sprintf("core %d", c)}})
		}
	}

	var last sim.Time
	openBurst := map[int]Event{} // core -> open KindBurstStart
	openReq := map[uint64]int{}  // in-flight request -> pid of its "b"
	openIO := map[uint64]int{}   // blocked request -> pid of its io "b"

	for _, ev := range t.events {
		if ev.Time > last {
			last = ev.Time
		}
		switch ev.Kind {
		case KindArrival:
			pid := t.pidOf(ev.VM)
			openReq[ev.Req] = pid
			dst = append(dst, traceEvent{Name: "request", Cat: "request", Ph: "b",
				Ts: tsOf(ev.Time), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req),
				Args: map[string]any{"req": ev.Req, "measured": ev.Measured}})
		case KindEnqueue:
			dst = append(dst, traceEvent{Name: "enqueue", Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOf(ev.VM), Tid: lifecycleTid,
				Args: map[string]any{"req": ev.Req, "job": ev.IsJob}})
		case KindDispatch:
			name := "dispatch"
			if ev.CrossVM {
				name = "dispatch (loan)"
			}
			dst = append(dst, traceEvent{Name: name, Ph: "X", Ts: tsOf(ev.Time),
				Dur: ev.Dur.Microseconds(), Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req, "cross_vm": ev.CrossVM}})
		case KindReassignStart:
			dst = append(dst, traceEvent{Name: "reassign", Ph: "X", Ts: tsOf(ev.Time),
				Dur: ev.Dur.Microseconds(), Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req}})
		case KindFlushStart:
			dst = append(dst, traceEvent{Name: "flush", Ph: "X", Ts: tsOf(ev.Time),
				Dur: ev.Dur.Microseconds(), Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req}})
		case KindBurstStart:
			name := "exec"
			if ev.IsJob {
				name = "exec (job)"
			}
			openBurst[ev.Core] = ev
			dst = append(dst, traceEvent{Name: name, Ph: "B", Ts: tsOf(ev.Time),
				Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req, "vm": ev.VM}})
		case KindBurstEnd:
			if open, ok := openBurst[ev.Core]; ok && open.Req == ev.Req {
				delete(openBurst, ev.Core)
				dst = append(dst, traceEvent{Ph: "E", Ts: tsOf(ev.Time),
					Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core})
			}
		case KindAbort:
			if open, ok := openBurst[ev.Core]; ok && open.Req == ev.Req {
				delete(openBurst, ev.Core)
				dst = append(dst, traceEvent{Ph: "E", Ts: tsOf(ev.Time),
					Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core})
			}
			dst = append(dst, traceEvent{Name: "abort", Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req}})
		case KindBlock:
			pid := t.pidOf(ev.VM)
			openIO[ev.Req] = pid
			dst = append(dst, traceEvent{Name: "io", Cat: "io", Ph: "b",
				Ts: tsOf(ev.Time), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req),
				Args: map[string]any{"req": ev.Req}})
		case KindUnblock:
			if pid, ok := openIO[ev.Req]; ok {
				delete(openIO, ev.Req)
				dst = append(dst, traceEvent{Name: "io", Cat: "io", Ph: "e",
					Ts: tsOf(ev.Time), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req)})
			}
		case KindComplete:
			if pid, ok := openReq[ev.Req]; ok {
				delete(openReq, ev.Req)
				dst = append(dst, traceEvent{Name: "request", Cat: "request", Ph: "e",
					Ts: tsOf(ev.Time), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req),
					Args: map[string]any{"latency_us": ev.Dur.Microseconds()}})
			}
		case KindPreempt:
			dst = append(dst, traceEvent{Name: "preempt", Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"req": ev.Req}})
		case KindPin:
			dst = append(dst, traceEvent{Name: "pin", Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOf(ev.VM), Tid: lifecycleTid,
				Args: map[string]any{"req": ev.Req}})
		case KindUnpin:
			dst = append(dst, traceEvent{Name: "unpin", Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOf(ev.VM), Tid: lifecycleTid,
				Args: map[string]any{"req": ev.Req, "wait_us": ev.Dur.Microseconds()}})
		case KindLendStart:
			dst = append(dst, traceEvent{Name: "lend", Ph: "X", Ts: tsOf(ev.Time),
				Dur: ev.Dur.Microseconds(), Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"to": "harvest"}})
		case KindReclaimStart:
			dst = append(dst, traceEvent{Name: "reclaim", Ph: "X", Ts: tsOf(ev.Time),
				Dur: ev.Dur.Microseconds(), Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
				Args: map[string]any{"vm": ev.VM}})
		case KindFault:
			if ev.Core >= 0 {
				dst = append(dst, traceEvent{Name: "fault", Cat: "fault", Ph: "X",
					Ts: tsOf(ev.Time), Dur: ev.Dur.Microseconds(),
					Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core,
					Args: map[string]any{"dur_us": ev.Dur.Microseconds()}})
			} else {
				vm := ev.VM
				if vm < 0 {
					vm = 0
				}
				dst = append(dst, traceEvent{Name: "fault (server)", Cat: "fault", Ph: "i",
					Ts: tsOf(ev.Time), Pid: t.pidOf(vm), Tid: lifecycleTid,
					Args: map[string]any{"dur_us": ev.Dur.Microseconds()}})
			}
		case KindShed, KindRetry, KindHedge, KindHedgeWin, KindDeadlineMiss:
			dst = append(dst, traceEvent{Name: ev.Kind.String(), Ph: "i", Ts: tsOf(ev.Time),
				Pid: t.pidOf(ev.VM), Tid: lifecycleTid,
				Args: map[string]any{"req": ev.Req}})
		}
	}

	// Close spans the engine left open at the horizon. Iterate cores and
	// request ids in insertion-independent deterministic order by scanning
	// the event list again (maps would randomize the order).
	closed := map[int]bool{}
	closedReq := map[uint64]bool{}
	for _, ev := range t.events {
		if ev.Kind == KindBurstStart {
			if open, ok := openBurst[ev.Core]; ok && open.Req == ev.Req && !closed[ev.Core] {
				closed[ev.Core] = true
				dst = append(dst, traceEvent{Ph: "E", Ts: tsOf(last),
					Pid: t.pidOfCore(ev.Core, ev.VM), Tid: ev.Core})
			}
		}
		if ev.Kind == KindArrival {
			if pid, ok := openReq[ev.Req]; ok && !closedReq[ev.Req] {
				closedReq[ev.Req] = true
				dst = append(dst, traceEvent{Name: "request", Cat: "request", Ph: "e",
					Ts: tsOf(last), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req),
					Args: map[string]any{"truncated": true}})
			}
		}
		if ev.Kind == KindBlock {
			if pid, ok := openIO[ev.Req]; ok && !closedReq[1<<63|ev.Req] {
				closedReq[1<<63|ev.Req] = true
				dst = append(dst, traceEvent{Name: "io", Cat: "io", Ph: "e",
					Ts: tsOf(last), Pid: pid, Tid: lifecycleTid, ID: reqID(ev.Req),
					Args: map[string]any{"truncated": true}})
			}
		}
	}
	return dst
}

// traceFile is the on-disk trace container (the "JSON object format" of the
// trace-event spec, which Perfetto and chrome://tracing both load).
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// WriteTrace writes the tracer's run as a self-contained trace file.
func (t *SpanTracer) WriteTrace(w io.Writer) error {
	return WriteTraces(w, t)
}

// WriteTraces merges several tracers (distinct pidBase each) into one trace
// file. Output is deterministic for deterministic inputs.
func WriteTraces(w io.Writer, tracers ...*SpanTracer) error {
	var evs []traceEvent
	runs := ""
	for i, t := range tracers {
		if t == nil {
			continue
		}
		evs = t.appendTraceEvents(evs)
		if i > 0 {
			runs += ", "
		}
		runs += t.run
	}
	if evs == nil {
		evs = []traceEvent{}
	}
	f := traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"source": "hardharvest simulator", "runs": runs},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
