package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hardharvest/internal/sim"
)

func TestBucketMappingMonotone(t *testing.T) {
	// Every bucket boundary must be monotone and bucketUpper must be the
	// largest value that still maps into its bucket.
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < bucketOf(%d) = %d", v, b, v-1, prev)
		}
		prev = b
		u := int64(bucketUpper(b))
		if u < v {
			t.Fatalf("bucketUpper(%d) = %d < member value %d", b, u, v)
		}
		if bucketOf(u) != b {
			t.Fatalf("bucketUpper(%d) = %d maps to bucket %d", b, u, bucketOf(u))
		}
		if bucketOf(u+1) == b {
			t.Fatalf("bucketUpper(%d) = %d is not the bucket's top: %d also maps there", b, u, u+1)
		}
	}
}

func TestHistSmallValuesExact(t *testing.T) {
	h := NewLatencyHist()
	for v := sim.Duration(0); v < 1<<histSubBits; v++ {
		h.Record(v)
	}
	edges, counts := h.Nonzero()
	if len(edges) != 1<<histSubBits {
		t.Fatalf("edges = %d, want %d", len(edges), 1<<histSubBits)
	}
	for i, e := range edges {
		if e != sim.Duration(i) || counts[i] != 1 {
			t.Fatalf("bucket %d: edge %v count %d", i, e, counts[i])
		}
	}
}

func TestHistQuantileError(t *testing.T) {
	// Against a sorted sample, each quantile must land within one bucket
	// (<= 1/2^histSubBits relative error above the exact order statistic).
	rng := rand.New(rand.NewSource(7))
	h := NewLatencyHist()
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 2e9) // ~2ms mean in ps
		vals = append(vals, v)
		h.Record(sim.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Fatalf("q=%v: estimate %d below exact %d", q, got, exact)
		}
		if float64(got-exact) > float64(exact)/float64(int64(1)<<histSubBits)+1 {
			t.Fatalf("q=%v: estimate %d too far above exact %d", q, got, exact)
		}
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Mean() != sim.Duration(sum/int64(len(vals))) {
		t.Fatalf("mean = %v, want exact %v", h.Mean(), sim.Duration(sum/int64(len(vals))))
	}
	if h.Min() != sim.Duration(vals[0]) || h.Max() != sim.Duration(vals[len(vals)-1]) {
		t.Fatalf("min/max = %v/%v, want %d/%d", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
	}
}

func TestHistEmptyAndClamping(t *testing.T) {
	h := NewLatencyHist()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram must report zeros: %s", h)
	}
	if h.Ascii() != "(empty)\n" {
		t.Fatalf("empty ascii = %q", h.Ascii())
	}
	h.Record(-5) // clamps to zero
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative record: count=%d min=%v", h.Count(), h.Min())
	}
	// Quantile upper edges clamp to the recorded max.
	h2 := NewLatencyHist()
	h2.Record(1000003)
	if q := h2.Quantile(0.99); q != 1000003 {
		t.Fatalf("single-sample p99 = %v, want the sample itself", q)
	}
}

func TestHistQuantileEdges(t *testing.T) {
	h := NewLatencyHist()
	for _, v := range []sim.Duration{100, 2000, 30000, 400001} {
		h.Record(v)
	}
	// q=0 and q=1 are exact: min and max are tracked outside the buckets.
	if got := h.Quantile(0); got != 100 {
		t.Fatalf("q=0 = %v, want exact min 100", got)
	}
	if got := h.Quantile(1); got != 400001 {
		t.Fatalf("q=1 = %v, want exact max 400001", got)
	}
	// Out-of-range and non-finite inputs clamp rather than misbehave.
	if got := h.Quantile(-0.5); got != 100 {
		t.Fatalf("q<0 = %v, want min", got)
	}
	if got := h.Quantile(1.5); got != 400001 {
		t.Fatalf("q>1 = %v, want max", got)
	}
	if got := h.Quantile(math.Inf(-1)); got != 100 {
		t.Fatalf("q=-Inf = %v, want min", got)
	}
	if got := h.Quantile(math.Inf(1)); got != 400001 {
		t.Fatalf("q=+Inf = %v, want max", got)
	}
	if got := h.Quantile(math.NaN()); got != 400001 {
		t.Fatalf("q=NaN = %v, want max (treated as q=1)", got)
	}
	// Quantiles passes each q through Quantile unchanged.
	qs := h.Quantiles(0, 1, math.NaN())
	if qs[0] != 100 || qs[1] != 400001 || qs[2] != 400001 {
		t.Fatalf("Quantiles edge values = %v", qs)
	}
	// Empty histogram: every edge input reports 0.
	e := NewLatencyHist()
	for _, q := range []float64{0, 1, -1, 2, math.NaN()} {
		if got := e.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistCumulativeBuckets(t *testing.T) {
	h := NewLatencyHist()
	for _, v := range []sim.Duration{10, 20, 20, 5000, 70000} {
		h.Record(v)
	}
	bounds := []sim.Duration{0, 15, 25, 1 << 20, 1 << 30}
	cum := h.CumulativeBuckets(bounds)
	want := []uint64{0, 1, 3, 5, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] (le %v) = %d, want %d (all: %v)", i, bounds[i], cum[i], want[i], cum)
		}
	}
	// Cumulative counts are monotone and end at the total.
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("last cumulative %d != count %d", cum[len(cum)-1], h.Count())
	}
	if got := NewLatencyHist().CumulativeBuckets(bounds); got[0] != 0 || got[len(got)-1] != 0 {
		t.Fatalf("empty histogram cumulative = %v", got)
	}
}

func TestHistClone(t *testing.T) {
	h := NewLatencyHist()
	h.Record(100)
	h.Record(90000)
	c := h.Clone()
	h.Record(5) // must not show up in the clone
	if c.Count() != 2 || c.Min() != 100 || c.Max() != 90000 {
		t.Fatalf("clone diverged: n=%d min=%v max=%v", c.Count(), c.Min(), c.Max())
	}
	if h.Count() != 3 || h.Min() != 5 {
		t.Fatalf("original lost a record: n=%d min=%v", h.Count(), h.Min())
	}
}

func TestHistAsciiShape(t *testing.T) {
	h := NewLatencyHist()
	for i := 0; i < 100; i++ {
		h.Record(3 * sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(500 * sim.Microsecond)
	}
	a := h.Ascii()
	if strings.Count(a, "\n") != 2 {
		t.Fatalf("want two decade rows, got:\n%s", a)
	}
	if !strings.Contains(a, "#") {
		t.Fatalf("no bars rendered:\n%s", a)
	}
}

// TestHistMergeEqualsCombinedRecording: merging two histograms must be
// indistinguishable from recording both streams into one — counts, sum,
// exact min/max, and every quantile.
func TestHistMergeEqualsCombinedRecording(t *testing.T) {
	a, b, both := NewLatencyHist(), NewLatencyHist(), NewLatencyHist()
	for i := 1; i <= 500; i++ {
		d := sim.Duration(i) * 17 * sim.Microsecond
		a.Record(d)
		both.Record(d)
	}
	for i := 1; i <= 300; i++ {
		d := sim.Duration(i) * 113 * sim.Microsecond
		b.Record(d)
		both.Record(d)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() ||
		a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merged summary diverged: count=%d/%d sum=%v/%v min=%v/%v max=%v/%v",
			a.Count(), both.Count(), a.Sum(), both.Sum(), a.Min(), both.Min(), a.Max(), both.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%v: merged %v, combined %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op.
	before := a.String()
	a.Merge(NewLatencyHist())
	a.Merge(nil)
	if a.String() != before {
		t.Errorf("empty merge changed the histogram: %s -> %s", before, a.String())
	}
	// Merging into an empty histogram copies the source exactly.
	c := NewLatencyHist()
	c.Merge(both)
	if c.String() != both.String() {
		t.Errorf("merge into empty diverged: %s vs %s", c.String(), both.String())
	}
}
