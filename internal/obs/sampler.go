package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"hardharvest/internal/sim"
)

// Sampler snapshots per-VM occupancy (running/blocked/queued requests,
// lent-out cores, pinned arrivals, busy cores) at a fixed simulated-time
// cadence. It ignores the event stream itself — the server drives it
// through the SnapshotSink interface — which makes it free on the hot path.
//
// A Sampler observes exactly one server run; it is not safe for concurrent
// use.
type Sampler struct {
	run      string
	interval sim.Duration
	topo     Topology
	rows     []Snapshot
}

// NewSampler returns a sampler with the given cadence (values <= 0 disable
// sampling).
func NewSampler(run string, interval sim.Duration) *Sampler {
	return &Sampler{run: run, interval: interval}
}

// Run reports the run label the sampler was created with.
func (s *Sampler) Run() string { return s.run }

// Observe implements Observer; the sampler ignores individual events.
func (s *Sampler) Observe(Event) {}

// SetTopology receives the server shape (used for VM names in exports).
func (s *Sampler) SetTopology(t Topology) { s.topo = t }

// SampleInterval implements SnapshotSink.
func (s *Sampler) SampleInterval() sim.Duration { return s.interval }

// OnSnapshot implements SnapshotSink.
func (s *Sampler) OnSnapshot(sn Snapshot) { s.rows = append(s.rows, sn) }

// Rows reports the collected snapshots in time order.
func (s *Sampler) Rows() []Snapshot { return s.rows }

func (s *Sampler) vmName(idx int) string {
	for _, vm := range s.topo.VMs {
		if vm.Idx == idx {
			return vm.Name
		}
	}
	return fmt.Sprintf("vm%d", idx)
}

// csvHeader is the time-series schema; one row per (snapshot, VM).
const csvHeader = "time_us,run,vm,vm_name,running,blocked,queued,lent_out,pinned,busy_cores\n"

func (s *Sampler) appendCSV(w io.Writer) error {
	for _, sn := range s.rows {
		for _, v := range sn.VMs {
			if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%s,%d,%d,%d,%d,%d,%d\n",
				sim.Duration(sn.Time).Microseconds(), s.run, v.VM, s.vmName(v.VM),
				v.Running, v.Blocked, v.Queued, v.LentOut, v.Pinned, v.BusyCores); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes the sampler's series with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	return WriteSamplesCSV(w, s)
}

// WriteSamplesCSV merges several samplers into one CSV document (a single
// header, rows tagged by run label).
func WriteSamplesCSV(w io.Writer, samplers ...*Sampler) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for _, s := range samplers {
		if s == nil {
			continue
		}
		if err := s.appendCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// sampleRow is the JSON export schema of one (snapshot, VM) pair.
type sampleRow struct {
	TimeUS    float64 `json:"time_us"`
	Run       string  `json:"run"`
	VM        int     `json:"vm"`
	VMName    string  `json:"vm_name"`
	Running   int     `json:"running"`
	Blocked   int     `json:"blocked"`
	Queued    int     `json:"queued"`
	LentOut   int     `json:"lent_out"`
	Pinned    int     `json:"pinned"`
	BusyCores int     `json:"busy_cores"`
}

// WriteSamplesJSON merges several samplers into one JSON array.
func WriteSamplesJSON(w io.Writer, samplers ...*Sampler) error {
	rows := []sampleRow{}
	for _, s := range samplers {
		if s == nil {
			continue
		}
		for _, sn := range s.rows {
			for _, v := range sn.VMs {
				rows = append(rows, sampleRow{
					TimeUS: sim.Duration(sn.Time).Microseconds(), Run: s.run,
					VM: v.VM, VMName: s.vmName(v.VM),
					Running: v.Running, Blocked: v.Blocked, Queued: v.Queued,
					LentOut: v.LentOut, Pinned: v.Pinned, BusyCores: v.BusyCores,
				})
			}
		}
	}
	return json.NewEncoder(w).Encode(rows)
}
