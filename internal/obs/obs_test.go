package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hardharvest/internal/sim"
)

type countingObserver struct {
	events int
	topo   *Topology
	snaps  int
	iv     sim.Duration
}

func (c *countingObserver) Observe(Event)                { c.events++ }
func (c *countingObserver) SetTopology(t Topology)       { c.topo = &t }
func (c *countingObserver) SampleInterval() sim.Duration { return c.iv }
func (c *countingObserver) OnSnapshot(Snapshot)          { c.snaps++ }

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty composition must be nil")
	}
	single := &countingObserver{}
	if got := Multi(nil, single); got != Observer(single) {
		t.Fatalf("single composition must pass through, got %T", got)
	}
	a := &countingObserver{iv: 5 * sim.Microsecond}
	b := &countingObserver{} // iv 0: no snapshots wanted
	m := Multi(a, b)
	m.Observe(Event{Kind: KindArrival})
	m.Observe(Event{Kind: KindComplete})
	if a.events != 2 || b.events != 2 {
		t.Fatalf("fan-out: a=%d b=%d", a.events, b.events)
	}
	to, ok := m.(TopologyObserver)
	if !ok {
		t.Fatal("multi must forward topology")
	}
	to.SetTopology(Topology{Run: "x"})
	if a.topo == nil || b.topo == nil || a.topo.Run != "x" {
		t.Fatal("topology not forwarded")
	}
	sink, ok := m.(SnapshotSink)
	if !ok {
		t.Fatal("multi must forward snapshots")
	}
	if sink.SampleInterval() != 5*sim.Microsecond {
		t.Fatalf("interval = %v", sink.SampleInterval())
	}
	sink.OnSnapshot(Snapshot{})
	if a.snaps != 1 || b.snaps != 0 {
		t.Fatalf("snapshot routing: a=%d b=%d (zero-interval member must not receive)", a.snaps, b.snaps)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if s := Kind(200).String(); !strings.HasPrefix(s, "Kind(") {
		t.Fatalf("out-of-range kind string = %q", s)
	}
}

// syntheticTopo is a 2-VM server: VM0 primary with core 0, VM1 harvest with
// core 1.
func syntheticTopo() Topology {
	return Topology{Run: "test", VMs: []VMInfo{
		{Idx: 0, Name: "Svc", Primary: true, Cores: []int{0}},
		{Idx: 1, Name: "Harvest:BFS", Primary: false, Cores: []int{1}},
	}}
}

func TestSpanTracerSyntheticTrace(t *testing.T) {
	tr := NewSpanTracer("test", 0)
	tr.SetTopology(syntheticTopo())
	us := sim.Microsecond
	evs := []Event{
		{Kind: KindArrival, Time: sim.Time(1 * us), Req: 1, VM: 0, Core: -1, Measured: true},
		{Kind: KindEnqueue, Time: sim.Time(1 * us), Req: 1, VM: 0, Core: -1},
		{Kind: KindDispatch, Time: sim.Time(2 * us), Req: 1, VM: 0, Core: 0, Dur: us},
		{Kind: KindBurstStart, Time: sim.Time(3 * us), Req: 1, VM: 0, Core: 0, Dur: 4 * us},
		{Kind: KindBlock, Time: sim.Time(7 * us), Req: 1, VM: 0, Core: 0, Dur: 2 * us},
		{Kind: KindBurstEnd, Time: sim.Time(7 * us), Req: 1, VM: 0, Core: 0, Dur: 4 * us},
		{Kind: KindUnblock, Time: sim.Time(9 * us), Req: 1, VM: 0, Core: -1},
		{Kind: KindDispatch, Time: sim.Time(9 * us), Req: 1, VM: 0, Core: 1, CrossVM: true, Dur: us},
		{Kind: KindBurstStart, Time: sim.Time(10 * us), Req: 1, VM: 0, Core: 1, Dur: 3 * us},
		{Kind: KindBurstEnd, Time: sim.Time(13 * us), Req: 1, VM: 0, Core: 1, Dur: 3 * us},
		{Kind: KindComplete, Time: sim.Time(13 * us), Req: 1, VM: 0, Core: 1, Dur: 12 * us, Measured: true},
		// A burst the horizon truncates: must still emit a balancing E.
		{Kind: KindBurstStart, Time: sim.Time(14 * us), Req: 9, VM: 1, Core: 1, IsJob: true},
	}
	for _, ev := range evs {
		tr.Observe(ev)
	}

	c := tr.Counters()
	if c.Arrivals != 1 || c.Completions != 1 || c.Dispatches != 2 || c.Loans != 1 ||
		c.Blocks != 1 || c.Unblocks != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if tr.ExecMeasured() != 7*us {
		t.Fatalf("exec measured = %v, want 7us", tr.ExecMeasured())
	}
	if tr.Hist().Count() != 1 || tr.Hist().Max() != 12*us {
		t.Fatalf("hist: %s", tr.Hist())
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	// B/E balance per (pid, tid).
	depth := map[[2]int]int{}
	procs := map[string]bool{}
	for _, ev := range f.TraceEvents {
		key := [2]int{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("E without B on pid=%d tid=%d", ev.Pid, ev.Tid)
			}
		case "M":
			if ev.Name == "process_name" {
				procs[ev.Name] = true
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced B/E on pid=%d tid=%d: depth %d", key[0], key[1], d)
		}
	}
	// The async request span must open and close exactly once.
	var b, e int
	for _, ev := range f.TraceEvents {
		if ev.Name == "request" {
			switch ev.Ph {
			case "b":
				b++
			case "e":
				e++
			}
		}
	}
	if b != 1 || e != 1 {
		t.Fatalf("request async span: b=%d e=%d", b, e)
	}
}

func TestWriteTracesMergesAndIsDeterministic(t *testing.T) {
	mk := func() (*SpanTracer, *SpanTracer) {
		a := NewSpanTracer("A", 0)
		a.SetTopology(syntheticTopo())
		b := NewSpanTracer("B", 64)
		b.SetTopology(syntheticTopo())
		for _, tr := range []*SpanTracer{a, b} {
			tr.Observe(Event{Kind: KindArrival, Time: 1000, Req: 1, VM: 0, Core: -1})
			tr.Observe(Event{Kind: KindComplete, Time: 9000, Req: 1, VM: 0, Core: 0, Dur: 8000})
		}
		return a, b
	}
	var buf1, buf2 bytes.Buffer
	a1, b1 := mk()
	a2, b2 := mk()
	if err := WriteTraces(&buf1, a1, b1); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraces(&buf2, a2, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("merged trace output is not deterministic")
	}
	var f struct {
		TraceEvents []struct {
			Pid int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	lo, hi := false, false
	for _, ev := range f.TraceEvents {
		if ev.Pid < 64 {
			lo = true
		} else {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("merged trace must contain both pid ranges")
	}
}

func TestSamplerExports(t *testing.T) {
	s := NewSampler("run1", 10*sim.Microsecond)
	s.SetTopology(syntheticTopo())
	s.OnSnapshot(Snapshot{Time: sim.Time(10 * sim.Microsecond), VMs: []VMSample{
		{VM: 0, Running: 1, Queued: 2, BusyCores: 1},
		{VM: 1, Running: 0, LentOut: 1},
	}})
	s.OnSnapshot(Snapshot{Time: sim.Time(20 * sim.Microsecond), VMs: []VMSample{
		{VM: 0, Blocked: 3},
		{VM: 1, Pinned: 1},
	}})
	if len(s.Rows()) != 2 {
		t.Fatalf("rows = %d", len(s.Rows()))
	}
	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "time_us,run,vm,vm_name") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "run1") || !strings.Contains(lines[1], "Svc") {
		t.Fatalf("csv row = %q", lines[1])
	}
	// Unknown VM name falls back to vmN.
	if got := s.vmName(7); got != "vm7" {
		t.Fatalf("vmName(7) = %q", got)
	}
	var js bytes.Buffer
	if err := WriteSamplesJSON(&js, s, nil); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatalf("samples JSON invalid: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("json rows = %d", len(rows))
	}
	if rows[0]["vm_name"] != "Svc" || rows[1]["vm_name"] != "Harvest:BFS" {
		t.Fatalf("vm names: %v %v", rows[0]["vm_name"], rows[1]["vm_name"])
	}
}
