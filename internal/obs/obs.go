// Package obs is the observability substrate of the cluster simulator:
// a low-overhead event stream emitted from every request-lifecycle and
// core-state transition in internal/cluster, plus ready-made observers —
// a SpanTracer that exports Chrome trace-event JSON (Perfetto compatible)
// with harvest-event counters and an HDR-style latency histogram, and a
// Sampler that snapshots per-VM occupancy on a simulated-time cadence.
//
// Observers are opt-in: with cluster.Options.Observer == nil the simulator
// pays a single nil check per hook site and allocates nothing.
package obs

import (
	"fmt"

	"hardharvest/internal/sim"
)

// Kind enumerates the simulator transitions reported to an Observer.
type Kind uint8

const (
	// KindArrival: a primary invocation entered the system (post-NIC).
	KindArrival Kind = iota
	// KindEnqueue: a ready request was stored in its VM's queue.
	KindEnqueue
	// KindDispatch: a core picked the request; Dur spans the dispatch-path
	// overheads (queue op + context switch + any critical-path flush) and
	// CrossVM marks a loan-style cross-VM transition.
	KindDispatch
	// KindReassignStart/End bracket the re-assignment portion of a cross-VM
	// dispatch (queue op + context load).
	KindReassignStart
	KindReassignEnd
	// KindFlushStart/End bracket a critical-path cache/TLB flush.
	KindFlushStart
	KindFlushEnd
	// KindBurstStart: a CPU burst began; Dur is the scheduled scaled length.
	KindBurstStart
	// KindBurstEnd: a CPU burst retired; Dur is the executed scaled time
	// attributed to the request (stall extensions are attributed to
	// re-assignment, not execution).
	KindBurstEnd
	// KindBlock: the request blocked on I/O for Dur.
	KindBlock
	// KindUnblock: the I/O completed and the request re-queued.
	KindUnblock
	// KindComplete: the request (or batch job) finished; Dur is its
	// end-to-end latency.
	KindComplete
	// KindPreempt: a hardware reclamation interrupt evicted a loaned core.
	KindPreempt
	// KindAbort: a running/starting harvest job was kicked off its core and
	// re-queued with its remaining demand.
	KindAbort
	// KindPin: an arrival (or I/O resume) landed on an unbacked vCPU and
	// stalled waiting for a reclaim (software path).
	KindPin
	// KindUnpin: a pinned request became runnable; Dur is the pinned wait.
	KindUnpin
	// KindLendStart: the hypervisor began moving an idle core to the
	// Harvest VM; Dur is the projected move latency (software path).
	KindLendStart
	// KindLendEnd: the lend completed and the core serves the Harvest VM.
	KindLendEnd
	// KindReclaimStart: the hypervisor began taking a lent core back; Dur
	// is the projected move latency (software path).
	KindReclaimStart
	// KindReclaimEnd: the reclaim completed; the core is the owner's again.
	KindReclaimEnd
	// KindCoreBusy: a core left idle to work (dispatch overheads included).
	KindCoreBusy
	// KindCoreIdle: a core ran out of work.
	KindCoreIdle
	// KindFault: an injected fault began (Dur is the fault duration, Core is
	// the victim or -1 for server-wide faults).
	KindFault
	// KindShed: an attempt was rejected by queue-depth load shedding.
	KindShed
	// KindRetry: a resilience retry attempt was launched (Req is the call id).
	KindRetry
	// KindHedge: a hedged duplicate attempt was launched (Req is the call id).
	KindHedge
	// KindHedgeWin: a hedge attempt resolved its call before the primary.
	KindHedgeWin
	// KindDeadlineMiss: a call exhausted its timeout/retry budget without
	// completing; Dur is the time spent before giving up.
	KindDeadlineMiss

	numKinds
)

var kindNames = [numKinds]string{
	"arrival", "enqueue", "dispatch",
	"reassign-start", "reassign-end", "flush-start", "flush-end",
	"burst-start", "burst-end", "block", "unblock", "complete",
	"preempt", "abort", "pin", "unpin",
	"lend-start", "lend-end", "reclaim-start", "reclaim-end",
	"core-busy", "core-idle",
	"fault", "shed", "retry", "hedge", "hedge-win", "deadline-miss",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one simulator transition. Fields that do not apply to a given
// Kind are zero (VM and Core use -1 for "none"). Events are delivered by
// value so that observers impose no allocation on the simulator.
type Event struct {
	Kind Kind
	Time sim.Time
	// Req is the request id (0 when the event has no request).
	Req uint64
	// VM is the request's VM (or the core's owner for core-state events).
	VM int
	// Core is the physical core involved, -1 when none.
	Core int
	// Dur carries the Kind-specific duration (see the Kind docs).
	Dur sim.Duration
	// IsJob marks Harvest VM batch jobs.
	IsJob bool
	// CrossVM marks loan-style cross-VM dispatches.
	CrossVM bool
	// Measured marks requests that arrived inside the measurement window.
	Measured bool
}

// Observer receives the event stream of one simulated server. Observe is
// called from the engine goroutine: implementations need no locking but
// must not retain pointers into the simulator. One Observer instance must
// not be shared between concurrently running servers.
type Observer interface {
	Observe(ev Event)
}

// VMInfo describes one VM of a server's topology.
type VMInfo struct {
	Idx     int
	Name    string
	Primary bool
	// Cores lists the physical cores bound to (owned by) the VM.
	Cores []int
}

// Topology describes a server at the start of a run.
type Topology struct {
	Run string // run label (system/variant name)
	VMs []VMInfo
}

// TopologyObserver is implemented by observers that want the server shape
// before any event is delivered.
type TopologyObserver interface {
	SetTopology(t Topology)
}

// Snapshot is one Sampler row: per-VM occupancy at an instant.
type Snapshot struct {
	Time sim.Time
	VMs  []VMSample
}

// VMSample is one VM's occupancy inside a Snapshot.
type VMSample struct {
	VM        int
	Running   int // requests executing on cores
	Blocked   int // requests blocked on I/O
	Queued    int // ready requests waiting for a core
	LentOut   int // cores currently lent to the Harvest VM
	Pinned    int // arrivals parked on unbacked vCPUs
	BusyCores int // owned cores not idle (overheads included)
}

// SnapshotSink is implemented by observers that want periodic state
// snapshots; the server drives the cadence from SampleInterval.
type SnapshotSink interface {
	SampleInterval() sim.Duration
	OnSnapshot(s Snapshot)
}

// multi fans a server's stream out to several observers.
type multi struct {
	obs []Observer
}

// Multi composes observers (e.g. a SpanTracer plus a Sampler) into one.
// Nil members are dropped; composing zero or one non-nil observers returns
// nil or that observer unchanged.
func Multi(observers ...Observer) Observer {
	live := make([]Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{obs: live}
}

func (m *multi) Observe(ev Event) {
	for _, o := range m.obs {
		o.Observe(ev)
	}
}

func (m *multi) SetTopology(t Topology) {
	for _, o := range m.obs {
		if to, ok := o.(TopologyObserver); ok {
			to.SetTopology(t)
		}
	}
}

// SampleInterval reports the smallest positive member cadence (0 if no
// member samples).
func (m *multi) SampleInterval() sim.Duration {
	var min sim.Duration
	for _, o := range m.obs {
		if sk, ok := o.(SnapshotSink); ok {
			if iv := sk.SampleInterval(); iv > 0 && (min == 0 || iv < min) {
				min = iv
			}
		}
	}
	return min
}

func (m *multi) OnSnapshot(s Snapshot) {
	for _, o := range m.obs {
		if sk, ok := o.(SnapshotSink); ok && sk.SampleInterval() > 0 {
			sk.OnSnapshot(s)
		}
	}
}
