package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"hardharvest/internal/sim"
)

// Prometheus text exposition format (version 0.0.4) writer. Hand-rolled on
// purpose: the format is a dozen lines of escaping rules, and the repo's
// no-new-dependencies rule beats importing a client library to print
// `name{label="value"} 42`.
//
// Output is deterministic for deterministic inputs — callers emit metrics
// in a fixed order and the writer adds nothing of its own (no timestamps,
// no process metrics), so two scrapes of identical simulator state are
// byte-identical.

// PromLabel is one label pair on a sample.
type PromLabel struct {
	Key   string
	Value string
}

// PromWriter accumulates one exposition document. Errors are sticky:
// check Flush.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

func (p *PromWriter) write(s string) {
	if p.err == nil {
		_, p.err = p.w.WriteString(s)
	}
}

// escapeLabel applies the exposition format's label-value escaping
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Head writes the # HELP and # TYPE comments for a metric family. typ is
// one of "counter", "gauge", "histogram".
func (p *PromWriter) Head(name, help, typ string) {
	p.write("# HELP " + name + " " + help + "\n")
	p.write("# TYPE " + name + " " + typ + "\n")
}

func (p *PromWriter) sampleName(name string, labels []PromLabel) {
	p.write(name)
	if len(labels) > 0 {
		p.write("{")
		for i, l := range labels {
			if i > 0 {
				p.write(",")
			}
			p.write(l.Key + `="` + escapeLabel(l.Value) + `"`)
		}
		p.write("}")
	}
	p.write(" ")
}

// Uint writes one sample with an integer value.
func (p *PromWriter) Uint(name string, v uint64, labels ...PromLabel) {
	p.sampleName(name, labels)
	p.write(strconv.FormatUint(v, 10))
	p.write("\n")
}

// Float writes one sample with a float value (shortest round-trip form).
func (p *PromWriter) Float(name string, v float64, labels ...PromLabel) {
	p.sampleName(name, labels)
	p.write(strconv.FormatFloat(v, 'g', -1, 64))
	p.write("\n")
}

// Histogram writes h as a native Prometheus histogram family: cumulative
// bucket counts at each bound (converted to seconds in the `le` label), the
// mandatory +Inf bucket, and the _sum/_count samples. bounds must be
// ascending; extra labels are applied to every sample. Server-side quantile
// queries (histogram_quantile) carry the histogram's ~3% bucket
// quantization plus the coarseness of bounds.
func (p *PromWriter) Histogram(name, help string, h *LatencyHist, bounds []sim.Duration, labels ...PromLabel) {
	p.Head(name, help, "histogram")
	cum := h.CumulativeBuckets(bounds)
	bl := make([]PromLabel, len(labels)+1)
	copy(bl, labels)
	for i, b := range bounds {
		bl[len(labels)] = PromLabel{Key: "le", Value: strconv.FormatFloat(b.Seconds(), 'g', -1, 64)}
		p.Uint(name+"_bucket", cum[i], bl...)
	}
	bl[len(labels)] = PromLabel{Key: "le", Value: "+Inf"}
	p.Uint(name+"_bucket", h.Count(), bl...)
	p.Float(name+"_sum", h.Sum().Seconds(), labels...)
	p.Uint(name+"_count", h.Count(), labels...)
}

// Flush writes buffered output and reports the first error encountered.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// DefaultLatencyBuckets is the exporter's bucket ladder for request
// latencies: a 1-2.5-5 decade ladder from 1µs to 2.5s, wide enough for
// every service profile's SLO range at both tails. Treat as read-only.
var DefaultLatencyBuckets = []sim.Duration{
	1 * sim.Microsecond, 2500 * sim.Nanosecond, 5 * sim.Microsecond,
	10 * sim.Microsecond, 25 * sim.Microsecond, 50 * sim.Microsecond,
	100 * sim.Microsecond, 250 * sim.Microsecond, 500 * sim.Microsecond,
	1 * sim.Millisecond, 2500 * sim.Microsecond, 5 * sim.Millisecond,
	10 * sim.Millisecond, 25 * sim.Millisecond, 50 * sim.Millisecond,
	100 * sim.Millisecond, 250 * sim.Millisecond, 500 * sim.Millisecond,
	1 * sim.Second, 2500 * sim.Millisecond,
}
