package obs

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hardharvest/internal/sim"
)

// fullCounters returns a Counters value with every field set to a distinct
// nonzero value, so name/field mix-ups cannot cancel out.
func fullCounters() Counters {
	return Counters{
		Arrivals: 1, Enqueues: 2, Dispatches: 3, Loans: 4, LendMoves: 5,
		Reclaims: 6, Preempts: 7, Flushes: 8, Aborts: 9, Pins: 10,
		Blocks: 11, Unblocks: 12, Completions: 13, JobsDone: 14,
		FaultsInjected: 15, Sheds: 16, Retries: 17, Hedges: 18,
		HedgesWon: 19, DeadlineMisses: 20,
	}
}

func TestCounterDefsCoverEveryField(t *testing.T) {
	defs := CounterDefs()
	if len(defs) != 20 {
		t.Fatalf("def table has %d entries, Counters has 20 fields", len(defs))
	}
	c := fullCounters()
	seen := map[uint64]string{}
	sum := uint64(0)
	for _, d := range defs {
		v := d.Get(&c)
		if v == 0 {
			t.Fatalf("def %q reads zero from a fully populated Counters (wrong field?)", d.Name)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("defs %q and %q read the same field", prev, d.Name)
		}
		seen[v] = d.Name
		sum += v
	}
	if sum != 20*21/2 {
		t.Fatalf("defs read values summing to %d, want 210 (1..20 exactly once)", sum)
	}
	for _, d := range defs {
		if d.Name == "" || d.Label == "" || d.Help == "" {
			t.Fatalf("def %+v has an empty name/label/help", d)
		}
		if strings.ContainsAny(d.Name, "- ") {
			t.Fatalf("def name %q is not snake_case", d.Name)
		}
	}
}

// TestCountersStringLegacyFormat pins the summary line byte-for-byte to the
// format that predates the def table: golden summaries across the repo
// depend on it.
func TestCountersStringLegacyFormat(t *testing.T) {
	c := fullCounters()
	want := fmt.Sprintf(
		"arrivals=%d completions=%d jobs=%d loans=%d reclaims=%d preempts=%d flushes=%d aborts=%d pins=%d blocks=%d",
		c.Arrivals, c.Completions, c.JobsDone, c.Loans, c.Reclaims,
		c.Preempts, c.Flushes, c.Aborts, c.Pins, c.Blocks) +
		fmt.Sprintf(
			" faults=%d sheds=%d retries=%d hedges=%d hedge-wins=%d deadline-misses=%d",
			c.FaultsInjected, c.Sheds, c.Retries, c.Hedges, c.HedgesWon, c.DeadlineMisses)
	if got := c.String(); got != want {
		t.Fatalf("String() drifted from the legacy format:\n got %q\nwant %q", got, want)
	}
	// Without robust counters the robustness section disappears entirely.
	c.FaultsInjected, c.Sheds, c.Retries, c.Hedges, c.HedgesWon, c.DeadlineMisses = 0, 0, 0, 0, 0, 0
	if got := c.String(); strings.Contains(got, "faults=") || strings.Contains(got, "sheds=") {
		t.Fatalf("robust section rendered for a fault-free run: %q", got)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Head("hhsim_events_total", "simulator transitions by kind", "counter")
	p.Uint("hhsim_events_total", 42, PromLabel{"kind", "arrivals"})
	p.Float("hhsim_sim_time_seconds", 1.5)
	p.Uint("hhsim_weird", 1, PromLabel{"v", "a\\b\"c\nd"})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP hhsim_events_total simulator transitions by kind\n" +
		"# TYPE hhsim_events_total counter\n" +
		`hhsim_events_total{kind="arrivals"} 42` + "\n" +
		"hhsim_sim_time_seconds 1.5\n" +
		`hhsim_weird{v="a\\b\"c\nd"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("exposition output:\n got %q\nwant %q", b.String(), want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h := NewLatencyHist()
	h.Record(5 * sim.Microsecond)
	h.Record(5 * sim.Microsecond)
	h.Record(2 * sim.Millisecond)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("hhsim_latency_seconds", "request latency", h,
		[]sim.Duration{10 * sim.Microsecond, 1 * sim.Millisecond, 1 * sim.Second})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE hhsim_latency_seconds histogram",
		`hhsim_latency_seconds_bucket{le="1e-05"} 2`,
		`hhsim_latency_seconds_bucket{le="0.001"} 2`,
		`hhsim_latency_seconds_bucket{le="1"} 3`,
		`hhsim_latency_seconds_bucket{le="+Inf"} 3`,
		"hhsim_latency_seconds_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("histogram exposition missing %q:\n%s", line, out)
		}
	}
	// _sum is the exact seconds total: 2*5µs + 2ms.
	if !strings.Contains(out, "hhsim_latency_seconds_sum 0.00201\n") {
		t.Fatalf("histogram _sum wrong:\n%s", out)
	}
}

func TestMeterBoundedAndCounting(t *testing.T) {
	m := NewMeter()
	m.SetTopology(Topology{Run: "X"})
	m.Observe(Event{Kind: KindArrival})
	m.Observe(Event{Kind: KindComplete, Dur: 3 * sim.Microsecond})
	m.Observe(Event{Kind: KindComplete, IsJob: true, Dur: sim.Duration(9 * sim.Second)})
	c := m.Counters()
	if c.Arrivals != 1 || c.Completions != 1 || c.JobsDone != 1 {
		t.Fatalf("meter counters: %+v", c)
	}
	// Job completions never pollute the request-latency histogram.
	if m.Hist().Count() != 1 || m.Hist().Max() != 3*sim.Microsecond {
		t.Fatalf("meter hist: n=%d max=%v", m.Hist().Count(), m.Hist().Max())
	}
	if m.Topology().Run != "X" {
		t.Fatalf("meter topology lost")
	}
}

// TestCountersAddCoversEveryField pins Counters.Add against reflection:
// every uint64 field must be summed, so adding a counter field without
// extending Add fails here instead of silently undercounting fleet
// aggregates.
func TestCountersAddCoversEveryField(t *testing.T) {
	a, b := fullCounters(), fullCounters()
	a.Add(&b)
	av := reflect.ValueOf(a)
	bv := reflect.ValueOf(fullCounters())
	for i := 0; i < av.NumField(); i++ {
		name := av.Type().Field(i).Name
		got, orig := av.Field(i).Uint(), bv.Field(i).Uint()
		if got != 2*orig {
			t.Errorf("Add missed field %s: got %d, want %d", name, got, 2*orig)
		}
	}
}
