package obs

// Meter is a bounded-memory Observer for long-running (served) simulations.
// It maintains the harvest-event Counters and a latency histogram of primary
// completions but — unlike SpanTracer — stores no event stream, so its
// footprint is independent of run length: a simulated day costs the same
// memory as a simulated millisecond.
//
// Two deliberate differences from SpanTracer: the histogram records every
// primary completion, not just measurement-window ones (a live endpoint
// reports what the server is doing now, warmup included), and there is no
// trace export. Like every Observer, a Meter is passive — attaching one
// never changes simulation results.
type Meter struct {
	topo     Topology
	counters Counters
	hist     *LatencyHist
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{hist: NewLatencyHist()}
}

// Observe implements Observer.
func (m *Meter) Observe(ev Event) {
	m.counters.Count(ev)
	if ev.Kind == KindComplete && !ev.IsJob {
		m.hist.Record(ev.Dur)
	}
}

// SetTopology implements TopologyObserver.
func (m *Meter) SetTopology(t Topology) { m.topo = t }

// Topology reports the server shape received at run start.
func (m *Meter) Topology() Topology { return m.topo }

// Counters reports the aggregated harvest-event counts (a value copy,
// stable once returned).
func (m *Meter) Counters() Counters { return m.counters }

// Hist reports the live latency histogram. The returned pointer is the
// meter's own histogram: callers that publish it across goroutines must
// Clone it at a barrier.
func (m *Meter) Hist() *LatencyHist { return m.hist }
