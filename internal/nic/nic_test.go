package nic

import (
	"testing"

	"hardharvest/internal/sim"
)

func TestDepositPath(t *testing.T) {
	n := New(DefaultLatencies())
	n.RegisterVM(3)
	addr, lat, err := n.Deposit(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if addr == 0 {
		t.Fatal("no payload address")
	}
	if lat != n.Latencies().ArrivalLatency() {
		t.Fatalf("latency = %v, want %v", lat, n.Latencies().ArrivalLatency())
	}
	// Addresses are unique per packet and namespaced by VM.
	addr2, _, _ := n.Deposit(3, 64)
	if addr2 == addr {
		t.Fatal("payload addresses collide")
	}
	n.RegisterVM(4)
	addr3, _, _ := n.Deposit(4, 64)
	if (addr3>>28)&0xF == (addr>>28)&0xF {
		t.Fatal("VM namespaces collide")
	}
}

func TestDepositUnknownVM(t *testing.T) {
	n := New(DefaultLatencies())
	if _, _, err := n.Deposit(9, 64); err == nil {
		t.Fatal("unrouted VM should error")
	}
	n.RegisterVM(9)
	if _, _, err := n.Deposit(9, 64); err != nil {
		t.Fatal(err)
	}
	n.DeregisterVM(9)
	if _, _, err := n.Deposit(9, 64); err == nil {
		t.Fatal("deregistered VM should error")
	}
}

func TestLargePayloadCostsMore(t *testing.T) {
	n := New(DefaultLatencies())
	n.RegisterVM(1)
	_, small, _ := n.Deposit(1, 64)
	_, big, _ := n.Deposit(1, 1024)
	if big <= small {
		t.Fatalf("1KB payload (%v) should cost more than 64B (%v)", big, small)
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if l.InterServerRTT != sim.Microsecond {
		t.Fatalf("inter-server RTT = %v, Table 1 says 1us", l.InterServerRTT)
	}
	if l.ArrivalLatency() <= 0 {
		t.Fatal("arrival latency must be positive")
	}
	// The dedicated control network is faster than the DDIO deposit.
	if l.QMNotify >= l.DDIODeposit {
		t.Fatal("QM notify should be cheap relative to DDIO")
	}
}
