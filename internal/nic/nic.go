// Package nic models the server NIC on the request path (§4.1.3, Figure 8):
// a request packet arrives addressed to a VM, the payload is deposited into
// the LLC via DDIO, the NIC looks up the destination VM's Queue Manager in a
// local software table, and informs that QM over the dedicated control
// network. It also carries the inter-server latency used for backend
// (Memcached/Redis/MongoDB) round trips.
package nic

import (
	"fmt"

	"hardharvest/internal/sim"
)

// Latencies bundles the NIC path constants.
type Latencies struct {
	// DDIODeposit is the time to deposit the payload into the LLC.
	DDIODeposit sim.Duration
	// VMTableLookup is the software-table lookup mapping VM -> QM.
	VMTableLookup sim.Duration
	// QMNotify is the control-network message to the Queue Manager
	// (thin-link tree network, latency-sensitive, §4.1.8).
	QMNotify sim.Duration
	// InterServerRTT is the 1 us inter-server round trip of Table 1, used
	// for every blocking backend call.
	InterServerRTT sim.Duration
}

// DefaultLatencies returns the modeled constants.
func DefaultLatencies() Latencies {
	return Latencies{
		DDIODeposit:    sim.Cycles(200), // ~67 ns to write the payload lines
		VMTableLookup:  sim.Cycles(60),
		QMNotify:       sim.Cycles(30), // few hops on the dedicated tree
		InterServerRTT: sim.Microsecond,
	}
}

// ArrivalLatency is the NIC-side latency from packet arrival to the QM
// having the request pointer stored.
func (l Latencies) ArrivalLatency() sim.Duration {
	return l.DDIODeposit + l.VMTableLookup + l.QMNotify
}

// NIC routes arrivals to per-VM destinations and stamps payload addresses.
type NIC struct {
	lat     Latencies
	vmTable map[int]bool // registered VM network addresses
	nextBuf uint64
}

// New builds a NIC with the given latencies.
func New(lat Latencies) *NIC {
	return &NIC{lat: lat, vmTable: make(map[int]bool)}
}

// Latencies reports the NIC's constants.
func (n *NIC) Latencies() Latencies { return n.lat }

// RegisterVM installs a VM's network address in the NIC's software table
// (every VM has its own network address, §4.1.3).
func (n *NIC) RegisterVM(vm int) {
	n.vmTable[vm] = true
}

// DeregisterVM removes a VM from the table.
func (n *NIC) DeregisterVM(vm int) {
	delete(n.vmTable, vm)
}

// Deposit models packet arrival for a VM: it validates the destination,
// allocates an LLC payload address (DDIO), and reports the latency until the
// destination QM knows about the request.
func (n *NIC) Deposit(vm int, payloadBytes int) (payloadAddr uint64, lat sim.Duration, err error) {
	if !n.vmTable[vm] {
		return 0, 0, fmt.Errorf("nic: no route to VM %d", vm)
	}
	// Payload addresses are namespaced per packet; the LLC is partitioned
	// per VM with CAT so payloads never collide across VMs.
	n.nextBuf++
	addr := 0xD0_0000_0000 | (uint64(vm) << 28) | (n.nextBuf << 6)
	lat = n.lat.ArrivalLatency()
	// Large payloads take extra DDIO lines: one line per 64B beyond the
	// first.
	if payloadBytes > 64 {
		extra := int64((payloadBytes - 1) / 64)
		lat += sim.Cycles(4 * extra)
	}
	return addr, lat, nil
}
