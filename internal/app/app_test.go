package app

import (
	"testing"
	"testing/quick"

	"hardharvest/internal/metrics"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// constSource returns fixed latencies per service.
type constSource map[string]sim.Duration

func (cs constSource) SampleLatency(svc string, u float64) (sim.Duration, bool) {
	d, ok := cs[svc]
	return d, ok
}

func TestAppsValid(t *testing.T) {
	apps := Apps()
	if len(apps) != 3 {
		t.Fatalf("apps = %d", len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.CriticalPathLen() < 2 {
			t.Errorf("%s: trivial critical path", a.Name)
		}
		if len(a.Services()) < 2 {
			t.Errorf("%s: too few services", a.Name)
		}
	}
	cp := ComposePost()
	// Figure 1's composition: fan-out roots -> CPost -> PstStr -> HomeT is
	// 4 stages deep.
	if got := cp.CriticalPathLen(); got != 4 {
		t.Fatalf("ComposePost critical path = %d, want 4", got)
	}
}

func TestValidateRejectsBadDAGs(t *testing.T) {
	bad := &App{Name: "b", Stages: []Stage{{Service: "X", Deps: []int{0}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self/forward dependency should fail")
	}
	bad2 := &App{Name: "b2", Stages: []Stage{{Service: ""}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty service should fail")
	}
}

func TestE2ECriticalPathMath(t *testing.T) {
	// Deterministic latencies: E2E must be exactly the critical path sum.
	src := constSource{
		"Text": 3 * sim.Millisecond, "UrlShort": 1 * sim.Millisecond,
		"UsrMnt": 2 * sim.Millisecond, "CPost": 4 * sim.Millisecond,
		"PstStr": 2 * sim.Millisecond, "HomeT": 5 * sim.Millisecond,
		"SGraph": 1 * sim.Millisecond,
	}
	rec, err := ComposePost().SimulateE2E(src, stats.NewRNG(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Path: max(Text=3,Url=1,Mnt=2) + CPost 4 + PstStr 2 + max(HomeT 5, SGraph 1) = 14ms.
	want := 14 * sim.Millisecond
	if rec.P50() != want || rec.Max() != want {
		t.Fatalf("E2E = %v / %v, want %v", rec.P50(), rec.Max(), want)
	}
}

func TestE2EMissingService(t *testing.T) {
	src := constSource{"Text": sim.Millisecond}
	if _, err := ComposePost().SimulateE2E(src, stats.NewRNG(1), 10); err == nil {
		t.Fatal("missing service data should fail")
	}
}

func TestE2EFromRecorders(t *testing.T) {
	rng := stats.NewRNG(2)
	src := RecorderSource{}
	for _, svc := range ComposePost().Services() {
		rec := metrics.NewLatencyRecorder()
		for i := 0; i < 500; i++ {
			rec.Add(sim.Duration(rng.Exp(float64(2 * sim.Millisecond))))
		}
		src[svc] = rec
	}
	e2e, err := ComposePost().SimulateE2E(src, stats.NewRNG(3), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.Count() != 5000 {
		t.Fatalf("samples = %d", e2e.Count())
	}
	// E2E must exceed any single stage (composition) and the tail must
	// amplify relative to a single service's tail.
	single := src["CPost"]
	if e2e.P50() <= single.P50() {
		t.Fatal("composition should lengthen the median")
	}
	if e2e.P99() <= single.P99() {
		t.Fatal("composition should lengthen the tail")
	}
}

// Property: end-to-end latency is bounded below by the slowest single stage
// draw and above by the sum of all stage draws, for any distribution.
func TestE2EBoundsProperty(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		scale := sim.Duration(int64(scaleRaw)+1) * sim.Microsecond
		src := constSource{}
		var sum, maxD sim.Duration
		for _, svc := range ComposePost().Services() {
			d := scale * sim.Duration(len(svc)) // deterministic variety
			src[svc] = d
		}
		for _, st := range ComposePost().Stages {
			d := src[st.Service]
			sum += d
			if d > maxD {
				maxD = d
			}
		}
		rec, err := ComposePost().SimulateE2E(src, stats.NewRNG(seed), 50)
		if err != nil {
			return false
		}
		got := rec.Max()
		return got >= maxD && got <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
