// Package app models microservice applications as DAGs of service
// invocations, following Figure 1's ComposePost application: a frontend
// fans out to several services (Text, UniqueId/UrlShort, UsrMnt), their
// results feed ComposePost, which writes through PostStorage and updates
// HomeTimeline and the social graph. End-to-end application latency is the
// critical path over the DAG, so per-service tail inflation compounds —
// "the tail at scale" — which is why the paper treats P99 per service as
// the key metric.
//
// The package composes measured per-service latency distributions (from
// cluster simulations) into end-to-end application latencies by Monte-Carlo
// sampling the DAG's critical path.
package app

import (
	"fmt"

	"hardharvest/internal/metrics"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Stage is one service invocation within an application.
type Stage struct {
	// Service is the workload profile name serving this stage.
	Service string
	// Deps lists stage indices that must complete before this stage
	// starts; an empty list makes the stage a root.
	Deps []int
}

// App is a DAG of stages.
type App struct {
	Name   string
	Stages []Stage
}

// ComposePost returns Figure 1's application: the frontend fans out to
// Text, UrlShort (UniqueId+UrlShorten path), and UsrMnt; ComposePost joins
// them; PstStr persists the post; HomeT and SGraph consume the write.
func ComposePost() *App {
	return &App{
		Name: "ComposePost",
		Stages: []Stage{
			{Service: "Text"},                        // 0: text processing
			{Service: "UrlShort"},                    // 1: unique id + url shorten
			{Service: "UsrMnt"},                      // 2: user mentions
			{Service: "CPost", Deps: []int{0, 1, 2}}, // 3: compose
			{Service: "PstStr", Deps: []int{3}},      // 4: post storage
			{Service: "HomeT", Deps: []int{4}},       // 5: home timeline
			{Service: "SGraph", Deps: []int{4}},      // 6: social graph fanout
		},
	}
}

// ReadTimeline returns a read-side application: user lookup fans out to the
// timeline and social graph reads.
func ReadTimeline() *App {
	return &App{
		Name: "ReadTimeline",
		Stages: []Stage{
			{Service: "User"},                   // 0: auth + user record
			{Service: "HomeT", Deps: []int{0}},  // 1: timeline fetch
			{Service: "PstStr", Deps: []int{1}}, // 2: post hydration
		},
	}
}

// FollowUser returns a short write application.
func FollowUser() *App {
	return &App{
		Name: "FollowUser",
		Stages: []Stage{
			{Service: "User"},                   // 0
			{Service: "SGraph", Deps: []int{0}}, // 1
		},
	}
}

// Apps returns the modeled applications.
func Apps() []*App {
	return []*App{ComposePost(), ReadTimeline(), FollowUser()}
}

// Validate checks that the DAG is acyclic with in-range dependencies.
func (a *App) Validate() error {
	for i, st := range a.Stages {
		if st.Service == "" {
			return fmt.Errorf("app %s: stage %d has no service", a.Name, i)
		}
		for _, d := range st.Deps {
			if d < 0 || d >= i {
				// Stages are topologically ordered by construction: deps
				// must point at earlier stages.
				return fmt.Errorf("app %s: stage %d depends on %d (must be earlier)", a.Name, i, d)
			}
		}
	}
	return nil
}

// Services returns the distinct service names the app invokes.
func (a *App) Services() []string {
	seen := map[string]bool{}
	var out []string
	for _, st := range a.Stages {
		if !seen[st.Service] {
			seen[st.Service] = true
			out = append(out, st.Service)
		}
	}
	return out
}

// CriticalPathLen reports the number of stages on the longest dependency
// chain.
func (a *App) CriticalPathLen() int {
	depth := make([]int, len(a.Stages))
	best := 0
	for i, st := range a.Stages {
		d := 1
		for _, dep := range st.Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

// LatencySource provides per-service latency sampling; cluster results
// satisfy it through the metrics recorders.
type LatencySource interface {
	// SampleLatency draws one latency for the named service given a
	// uniform [0,1) variate.
	SampleLatency(service string, u float64) (sim.Duration, bool)
}

// RecorderSource adapts per-service latency recorders (inverse-CDF
// sampling over the measured distribution).
type RecorderSource map[string]*metrics.LatencyRecorder

// SampleLatency draws from the measured distribution of the service.
func (rs RecorderSource) SampleLatency(service string, u float64) (sim.Duration, bool) {
	rec, ok := rs[service]
	if !ok || rec.Count() == 0 {
		return 0, false
	}
	return rec.SampleLatency(u), true
}

// SimulateE2E Monte-Carlo samples the application's end-to-end latency n
// times from the per-service distributions and returns the recorder of
// totals. Stages on independent branches overlap; a stage starts when its
// slowest dependency finishes.
func (a *App) SimulateE2E(src LatencySource, rng *stats.RNG, n int) (*metrics.LatencyRecorder, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	for _, svc := range a.Services() {
		if _, ok := src.SampleLatency(svc, 0.5); !ok {
			return nil, fmt.Errorf("app %s: no latency data for service %s", a.Name, svc)
		}
	}
	out := metrics.NewLatencyRecorder()
	finish := make([]sim.Duration, len(a.Stages))
	for trial := 0; trial < n; trial++ {
		var total sim.Duration
		for i, st := range a.Stages {
			var start sim.Duration
			for _, d := range st.Deps {
				if finish[d] > start {
					start = finish[d]
				}
			}
			lat, _ := src.SampleLatency(st.Service, rng.Float64())
			finish[i] = start + lat
			if finish[i] > total {
				total = finish[i]
			}
		}
		out.Add(total)
	}
	return out, nil
}
