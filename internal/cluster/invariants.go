package cluster

import (
	"fmt"

	"hardharvest/internal/sim"
)

// The invariant checker is always on: every request-state and core-state
// transition goes through a checked setter that costs one table lookup and
// two counter updates (O(1), allocation-free). Violations are counted and
// surfaced in ServerResult; under Config.Strict they panic immediately
// with the replay seed and a ring buffer of the most recent engine events
// so a failure is reproducible from the command line.

// reqState is the exclusive lifecycle state of a request object: at any
// instant a request is exactly one of free (pooled), in transit (NIC),
// queued, running, blocked on I/O, or pinned to an unbacked vCPU.
// Completed and shed requests return to rsFree through freeRequest.
type reqState uint8

const (
	rsFree reqState = iota
	rsTransit
	rsQueued
	rsRunning
	rsBlocked
	rsPinned

	numReqStates
)

var reqStateNames = [numReqStates]string{
	"free", "transit", "queued", "running", "blocked", "pinned",
}

func (st reqState) String() string {
	if int(st) < len(reqStateNames) {
		return reqStateNames[st]
	}
	return fmt.Sprintf("reqState(%d)", uint8(st))
}

// reqLegal is the legal request state machine, one bitmask of allowed
// successor states per state.
var reqLegal = [numReqStates]uint8{
	rsFree:    1<<rsTransit | 1<<rsQueued,             // arrival; job refill
	rsTransit: 1<<rsQueued | 1<<rsPinned | 1<<rsFree,  // enqueue; pin; shed
	rsQueued:  1 << rsRunning,                         // dispatch
	rsRunning: 1<<rsBlocked | 1<<rsQueued | 1<<rsFree, // I/O; abort/offline; complete
	rsBlocked: 1<<rsQueued | 1<<rsPinned,              // unblock; resume-pin
	rsPinned:  1 << rsQueued,                          // release/reclaim
}

func (st reqState) canBecome(to reqState) bool {
	return reqLegal[st]&(1<<to) != 0
}

// coreLegal is the legal core state machine (corePhaseKind successors).
var coreLegal = [4]uint8{
	cIdle:      1<<cIdle | 1<<cOverhead,
	cOverhead:  1<<cIdle | 1<<cOverhead | 1<<cRunOwn | 1<<cRunLoaned,
	cRunOwn:    1<<cIdle | 1<<cOverhead,
	cRunLoaned: 1<<cIdle | 1<<cOverhead,
}

var corePhaseNames = [4]string{"idle", "overhead", "run-own", "run-loaned"}

func (k corePhaseKind) String() string {
	if int(k) < len(corePhaseNames) {
		return corePhaseNames[k]
	}
	return fmt.Sprintf("corePhaseKind(%d)", int(k))
}

// invariantState aggregates the checker's counters for one server run.
type invariantState struct {
	violations uint64
	firstMsg   string
	// created/freed count request-pool issues and returns; together with
	// the per-state census they prove request conservation at the end of
	// the run: created - freed == sum of live-state counts.
	created uint64
	freed   uint64
	counts  [numReqStates]int64
}

// setReqState performs a checked request state transition and maintains
// the live-state census.
func (s *Server) setReqState(r *request, to reqState) {
	from := r.state
	if !from.canBecome(to) {
		s.invViolate("request %d (job=%v): illegal transition %v -> %v", r.id, r.isJob, from, to)
	}
	if from != rsFree {
		s.inv.counts[from]--
	}
	if to != rsFree {
		s.inv.counts[to]++
	}
	r.state = to
}

// setCoreKind performs a checked core state transition. On instrumented
// runs (an Observer is attached — always true for the validate oracle) the
// transition also closes the open phase interval into the core's cycle
// account, so busy/idle/harvested/transition time integrates exactly and
// the four buckets sum to wall time per core. Plain runs skip the
// accounting: this is the simulation's hottest edge, and uninstrumented
// callers never read the accounts.
func (s *Server) setCoreKind(c *coreRT, to corePhaseKind) {
	if coreLegal[c.kind]&(1<<to) == 0 {
		s.invViolate("core %d: illegal transition %v -> %v", c.id, c.kind, to)
	}
	if s.acctOn {
		now := s.now()
		c.acct[c.kind] += now.Sub(c.acctSince)
		c.acctSince = now
	}
	c.kind = to
}

// invViolate records an invariant violation. Outside strict mode the
// violation is tolerated and counted (surfaced via ServerResult); under
// Config.Strict it panics with everything needed to replay: the seed, the
// system, the simulated time, and the recent engine-event ring.
func (s *Server) invViolate(format string, args ...any) {
	s.inv.violations++
	msg := fmt.Sprintf(format, args...)
	if s.inv.firstMsg == "" {
		s.inv.firstMsg = msg
	}
	if !s.strict {
		return
	}
	panic(fmt.Sprintf("cluster: invariant violation: %s\nreplay: seed=%d system=%q t=%v\n%s",
		msg, s.cfg.Seed, s.opts.Name, s.now(), s.ring.dump()))
}

// checkConservation runs the end-of-run global invariants: no state census
// went negative, and every request issued from the pool is accounted for
// (still live in exactly one state, or freed).
func (s *Server) checkConservation() {
	var live int64
	for st := rsTransit; st < numReqStates; st++ {
		n := s.inv.counts[st]
		if n < 0 {
			s.invViolate("conservation: state %v census is negative (%d)", st, n)
		}
		live += n
	}
	if created, freed := s.inv.created, s.inv.freed; created-freed != uint64(live) {
		s.invViolate("conservation: created=%d freed=%d but %d requests live", created, freed, live)
	}
	if s.resOn {
		resolved := uint64(s.requests) + s.deadlineMisses
		if resolved > uint64(s.arrivals) {
			s.invViolate("conservation: %d calls resolved but only %d arrived", resolved, s.arrivals)
		}
	}
}

// opRing remembers the most recent typed engine events so a strict-mode
// panic shows what led up to the violation. It is allocated only under
// Config.Strict; recording is two stores and a mask.
type opRing struct {
	recs [64]opRec
	n    uint64
}

type opRec struct {
	t  sim.Time
	op int32
}

func (rg *opRing) record(t sim.Time, op int32) {
	rg.recs[rg.n%uint64(len(rg.recs))] = opRec{t: t, op: op}
	rg.n++
}

var opNames = [...]string{
	"dispatch", "wake", "stall-retry", "stall-retry-loan", "arrival",
	"arrival-ready", "run-burst", "burst-end", "io-complete", "io-ready",
	"preempt", "agent-sample", "agent-tick", "lend-end", "reclaim-end",
	"fault-begin", "fault-end", "call-timeout", "call-retry", "call-hedge",
}

func opName(op int32) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// dump renders the ring oldest-first.
func (rg *opRing) dump() string {
	if rg == nil || rg.n == 0 {
		return "recent events: (none recorded)"
	}
	out := "recent events (oldest first):"
	size := uint64(len(rg.recs))
	start := uint64(0)
	if rg.n > size {
		start = rg.n - size
	}
	for i := start; i < rg.n; i++ {
		rec := rg.recs[i%size]
		out += fmt.Sprintf("\n  t=%v %s", rec.t, opName(rec.op))
	}
	return out
}
