package cluster

import (
	"hardharvest/internal/core"
	"hardharvest/internal/faults"
	"hardharvest/internal/hypervisor"
	"hardharvest/internal/nic"
	"hardharvest/internal/noc"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// Config carries every latency constant and shape parameter of the server
// model. Defaults follow Table 1 and the paper's measured costs (§3); the
// hardware-path constants follow the estimates of §4.1.1 (a reassignment
// takes a few microseconds without hardware context switching and a few
// tens of nanoseconds with it).
type Config struct {
	Seed uint64

	// Server shape (Table 1).
	CoresPerServer  int
	PrimaryVMs      int
	CoresPerPrimary int
	HarvestOwnCores int

	// Measurement window.
	WarmupDuration  sim.Duration
	MeasureDuration sim.Duration
	// GraceWindow lets requests that arrived near the end of the
	// measurement window complete before the engine stops (0 uses the
	// default 50 ms). It scales with the rest of the config under the
	// validate oracle's time-rescaling relation.
	GraceWindow sim.Duration

	// LoadScale multiplies every service's base arrival rate.
	LoadScale float64
	// TraceStep is the simulated duration of one utilization-series step
	// (the 30 s production granularity is compressed so bursts occur within
	// feasible simulation horizons).
	TraceStep sim.Duration
	// TraceSteps is the number of series steps generated per VM.
	TraceSteps int
	// BurstBatchProb is the probability that an arrival is the head of a
	// flash batch (microservice fan-outs deliver correlated request
	// groups); BurstBatchMean is the mean batch size.
	BurstBatchProb float64
	BurstBatchMean float64

	// Software substrate costs.
	Costs hypervisor.Costs
	// SWQueueAccess is the cost of one memory-mapped queue operation,
	// including locking and cache-hierarchy contention (§4.1.6).
	SWQueueAccess sim.Duration
	// SWCtxSw is a software process context switch on request dispatch.
	SWCtxSw sim.Duration
	// SWVMContextLoad is the software cost of loading another VM's context
	// on a cross-VM transition (SmartHarvest-class optimized path, §3);
	// HardHarvest's Request Context Memory replaces it (+CtxtSw).
	SWVMContextLoad sim.Duration
	// AgentInterval is the software harvesting agent's prediction window.
	AgentInterval sim.Duration
	// AgentSample is how often the agent samples per-VM busy cores.
	AgentSample sim.Duration
	// PollInterval is the software work-discovery granularity: without a
	// hardware scheduler, a core learns of newly queued work only on its
	// next poll, which under virtualization includes vCPU wakeup latency.
	PollInterval sim.Duration
	// MoveStallFrac is the fraction of a hypervisor core-move cost during
	// which the affected VM's other vCPUs stall (hypervisor lock + IPIs,
	// §4.1.1: detach acquires a lock and interrupts the affected core).
	MoveStallFrac float64
	// PollExecFactor inflates execution when cores must poll for work
	// (cycles diverted from application logic, §4.1.6).
	PollExecFactor float64
	// MMQueueExecFactor inflates execution under memory-mapped queues (the
	// scheduler and NIC contend with cores on the cache hierarchy, §4.1.6).
	MMQueueExecFactor float64
	// PinScale scales the probability that an arrival lands on a lent
	// vCPU and must wait for a hypervisor reclaim (software path).
	PinScale float64
	// GuestMigrateDelay bounds how long a pinned request waits for its
	// vCPU: after this delay the guest scheduler migrates the handling
	// thread to a backed vCPU. This is why stock-KVM and optimized
	// re-assignment produce similar tail inflation (Figure 4): the guest
	// caps the exposure to the move latency.
	GuestMigrateDelay sim.Duration
	// EventLendCooldown rate-limits event-driven core moves (Figures 4-5):
	// the user-space agent performs moves sequentially and pauses between
	// them, matching the paper's observed 11-36 reassignments per second
	// (the conservative Term policy uses 4x this cooldown).
	EventLendCooldown sim.Duration
	// GuestUnplugStall is the guest-side disruption of hot-(un)plugging a
	// vCPU: timer/IRQ migration and stop-machine-style synchronization
	// pause the VM for milliseconds regardless of hypervisor-side cost —
	// which is why even SmartHarvest-optimized re-assignment inflates
	// microservice tails (Figure 4's Opt bars).
	GuestUnplugStall sim.Duration

	// Hardware path costs.
	NICLat nic.Latencies
	// HWNotify is the controller-to-core wake over the dedicated network.
	HWNotify sim.Duration
	// HWQueueOp is a dequeue/complete/block instruction against the SRAM RQ.
	HWQueueOp sim.Duration
	// HWCtxSw is the in-hardware context save+restore via the Request
	// Context Memory.
	HWCtxSw sim.Duration
	// HWInterrupt is the hardware interrupt delivery for core reclamation.
	HWInterrupt sim.Duration
	// PartitionFlushWait is the harvest-region flush with efficient flush
	// hardware (Table 1: 1000 cycles).
	PartitionFlushWait sim.Duration
	// SlowRegionFlush is the harvest-region flush without the efficient
	// flush hardware (a clflush-style walk over half the hierarchy).
	SlowRegionFlush sim.Duration

	// Execution-time factors from cache warmth (calibrated against
	// internal/mem; the 1.2x cold factor is the paper's measurement).
	// WarmFactor scales CPU bursts on a warm core with default (LRU)
	// replacement.
	WarmFactor float64
	// ReplWarmFactor scales CPU bursts when the HardHarvest replacement
	// policy preserves shared state across invocations (§6.3-6.4).
	ReplWarmFactor float64
	// ColdFactor scales CPU bursts after a full flush, decaying over
	// ColdWarmupCPUTime of executed CPU.
	ColdFactor float64
	// PartReclaimFactor scales CPU bursts right after a partitioned
	// reclaim: the non-harvest region is warm, only private state is cold.
	PartReclaimFactor float64
	// ColdWarmupCPUTime is the executed-CPU budget over which cold factors
	// decay back to warm.
	ColdWarmupCPUTime sim.Duration

	// LLCFactor scales every CPU burst to model LLC capacity sensitivity
	// (Figure 18); 1.0 at the default 2 MB/core.
	LLCFactor float64

	// MemBWSlope models DRAM-bandwidth contention among concurrently
	// running batch jobs (102.4 GB/s per socket, Table 1): each active job
	// beyond the Harvest VM's own cores slows memory-intensive jobs down,
	// which is why Harvest VM throughput scales sub-linearly with
	// harvested cores (§6.6: memory-intensive applications gain less).
	MemBWSlope float64
	// AgentBufferCores is the per-VM emergency buffer of the software
	// harvesting agent (0 = rely on prediction alone; SmartHarvest's
	// buffer is small relative to the server).
	AgentBufferCores int
	// AdaptiveBlockMin is the block-duration EWMA below which an
	// AdaptiveBlock system stops harvesting on blocking calls (§4.1.5
	// future work: requests that spend very short times blocked).
	AdaptiveBlockMin sim.Duration

	// FaultPlan, when non-nil, injects deterministic faults (core
	// degradation/offlining, I/O stragglers, preemption storms, crashes)
	// expanded from the plan and the server seed; see internal/faults.
	FaultPlan *faults.Plan
	// Strict makes the always-on invariant checker panic on the first
	// violation with a replayable seed and recent-event dump instead of
	// counting violations into ServerResult.
	Strict bool
	// Profiles overrides the service catalog assigned round-robin to
	// Primary VMs (nil = workload.Profiles()). Used by fuzzing and tests
	// that need custom service shapes.
	Profiles []*workload.Profile
}

// DefaultConfig returns the Table 1 server with the paper's cost constants.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		CoresPerServer:  36,
		PrimaryVMs:      8,
		CoresPerPrimary: 4,
		HarvestOwnCores: 4,

		WarmupDuration:  100 * sim.Millisecond,
		MeasureDuration: 1500 * sim.Millisecond,
		GraceWindow:     graceWindow,

		LoadScale:      1.85,
		TraceStep:      50 * sim.Millisecond,
		TraceSteps:     64,
		BurstBatchProb: 0.10,
		BurstBatchMean: 4,

		Costs:             hypervisor.DefaultCosts(),
		SWQueueAccess:     4 * sim.Microsecond,
		SWCtxSw:           5 * sim.Microsecond,
		SWVMContextLoad:   100 * sim.Microsecond,
		AgentInterval:     50 * sim.Millisecond,
		AgentSample:       100 * sim.Microsecond,
		PollInterval:      100 * sim.Microsecond,
		MoveStallFrac:     0.8,
		PollExecFactor:    1.10,
		MMQueueExecFactor: 1.06,
		PinScale:          0.7,
		GuestMigrateDelay: 18 * sim.Millisecond,
		EventLendCooldown: 15 * sim.Millisecond,
		GuestUnplugStall:  4 * sim.Millisecond,

		NICLat: nic.DefaultLatencies(),
		// Control messages ride the dedicated tree network (§4.1.8); a
		// queue operation is a round trip to the controller plus SRAM
		// access.
		HWNotify:  noc.DefaultTree().ControllerToCore(),
		HWQueueOp: noc.DefaultTree().RoundTrip() + sim.Cycles(2),
		// In-hardware save+restore through the Request Context Memory.
		HWCtxSw:            core.DefaultCtxMemConfig().SwitchLatency(),
		HWInterrupt:        200 * sim.Nanosecond,
		PartitionFlushWait: sim.Cycles(1000),
		SlowRegionFlush:    150 * sim.Microsecond,

		WarmFactor:        1.0,
		ReplWarmFactor:    0.93,
		ColdFactor:        1.2,
		PartReclaimFactor: 1.05,
		ColdWarmupCPUTime: 100 * sim.Microsecond,

		LLCFactor: 1.0,

		MemBWSlope:       0.11,
		AgentBufferCores: 0,
		AdaptiveBlockMin: 350 * sim.Microsecond,
	}
}

// TotalPrimaryCores reports the cores allocated to Primary VMs.
func (c Config) TotalPrimaryCores() int { return c.PrimaryVMs * c.CoresPerPrimary }

// RunWindow reports the run timeline a server with this config derives in
// Start: measurement window edges, the arrival cutoff, and the engine
// horizon. External drivers (the fleet front door) use it to align their
// own schedules with the servers they feed.
func (c Config) RunWindow() (measureStart, measureEnd, stopArrivals, horizon sim.Time) {
	measureStart = sim.Time(c.WarmupDuration)
	measureEnd = measureStart.Add(c.MeasureDuration)
	stopArrivals = measureEnd.Add(c.grace() / 2)
	horizon = measureEnd.Add(c.grace())
	return
}

// grace reports the effective post-window grace.
func (c Config) grace() sim.Duration {
	if c.GraceWindow > 0 {
		return c.GraceWindow
	}
	return graceWindow
}

// validate panics on impossible shapes; configs are programmer-provided.
func (c Config) validate() {
	if c.TotalPrimaryCores()+c.HarvestOwnCores > c.CoresPerServer {
		panic("cluster: VM cores exceed server cores")
	}
	if c.PrimaryVMs <= 0 || c.CoresPerPrimary <= 0 {
		panic("cluster: need primary VMs with cores")
	}
	if c.MeasureDuration <= 0 {
		panic("cluster: measurement window must be positive")
	}
}
