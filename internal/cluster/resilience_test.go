package cluster

import (
	"strings"
	"testing"

	"hardharvest/internal/queueing"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

func TestResilienceValidate(t *testing.T) {
	cases := []struct {
		name string
		res  Resilience
		want string // substring of the error, "" for valid
	}{
		{"zero", Resilience{}, ""},
		{"default", DefaultResilience(), ""},
		{"neg timeout", Resilience{Timeout: -1}, "resilience.timeout"},
		{"neg slo", Resilience{SLOTimeoutFactor: -2}, "resilience.slo_timeout_factor"},
		{"neg retries", Resilience{MaxRetries: -1}, "resilience.max_retries"},
		{"neg backoff", Resilience{RetryBackoff: -1}, "resilience.retry_backoff"},
		{"shrinking backoff", Resilience{MaxRetries: 1, Timeout: sim.Millisecond, BackoffFactor: 0.5}, "resilience.backoff_factor"},
		{"bad jitter", Resilience{JitterFrac: 1.5}, "resilience.jitter_frac"},
		{"neg hedge", Resilience{HedgeDelay: -1}, "resilience.hedge_delay"},
		{"neg depth", Resilience{MaxQueueDepth: -1}, "resilience.max_queue_depth"},
		{"retries without timeout", Resilience{MaxRetries: 2}, "resilience.max_retries"},
		{"hedge past timeout", Resilience{Timeout: sim.Millisecond, HedgeDelay: 2 * sim.Millisecond}, "resilience.hedge_delay"},
	}
	for _, tc := range cases {
		err := tc.res.Validate()
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestResilienceConstructionFailsFast(t *testing.T) {
	cfg := testConfig()
	opts := SystemOptions(HardHarvestBlock)
	opts.Resilience = Resilience{MaxQueueDepth: -1}
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "resilience.max_queue_depth") {
			t.Fatalf("panic = %v", msg)
		}
	}()
	NewServer(cfg, opts, bfs(t))
	t.Fatal("invalid resilience config did not panic at construction")
}

// TestResilienceDeterministic re-runs an identical faulty, resilient
// configuration and demands identical counters and latencies.
func TestResilienceDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *ServerResult {
		cfg := testConfig()
		cfg.MeasureDuration = 150 * sim.Millisecond
		opts := SystemOptions(HardHarvestBlock)
		opts.Resilience = DefaultResilience()
		return RunServer(cfg, opts, bfs(t))
	}
	a, b := run(), run()
	if a.AvgP99() != b.AvgP99() || a.Requests != b.Requests ||
		a.Hedges != b.Hedges || a.Retries != b.Retries || a.HedgesWon != b.HedgesWon {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestResilienceOffIdentical verifies the byte-identity contract: a zero
// Resilience must not change any result relative to a plain run.
func TestResilienceOffIdentical(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.MeasureDuration = 120 * sim.Millisecond
	a := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	opts := SystemOptions(HardHarvestBlock)
	opts.Resilience = Resilience{} // explicit zero
	b := RunServer(cfg, opts, bfs(t))
	if a.AvgP99() != b.AvgP99() || a.Requests != b.Requests || a.Arrivals != b.Arrivals ||
		a.HarvestJobs != b.HarvestJobs || a.Reassigns != b.Reassigns {
		t.Fatalf("zero resilience changed results: %v/%d vs %v/%d",
			a.AvgP99(), a.Requests, b.AvgP99(), b.Requests)
	}
}

// shedConfig builds a deliberately overloaded single-VM server with a
// no-I/O, near-M/M/4 service so shedding admits an analytic cross-check.
func shedConfig(depth int) (Config, Options) {
	cfg := DefaultConfig()
	cfg.CoresPerServer = 4
	cfg.PrimaryVMs = 1
	cfg.CoresPerPrimary = 4
	cfg.HarvestOwnCores = 0
	cfg.WarmupDuration = 30 * sim.Millisecond
	cfg.MeasureDuration = 400 * sim.Millisecond
	cfg.LoadScale = 1.0
	cfg.TraceSteps = 0     // flat Poisson arrivals
	cfg.BurstBatchProb = 0 // no correlated batches
	cfg.Profiles = []*workload.Profile{{
		Name:     "MMcK",
		MeanCPU:  400 * sim.Microsecond,
		CPUSigma: 0.25, // near-deterministic service; SCV << 1
		// No I/O: every request is a single burst, so the ready queue is
		// the only place a request can wait.
		MeanIOCalls:    0,
		IOMean:         sim.Microsecond,
		IOSigma:        0.1,
		SharedFrac:     0.5,
		FootprintKB:    100,
		BaseRPSPerCore: 2750, // rho = 2750*4*400us/4 = 1.1: overloaded
	}}
	opts := Options{
		Name: "shed-test",
		// Hardware scheduling/queues/context switching without harvesting:
		// dispatch overheads in the nanoseconds, so the simulated system is
		// as close to the analytic M/M/c/K as the simulator gets.
		HWSched:    true,
		HWQueue:    true,
		HWCtxtSw:   true,
		Resilience: Resilience{MaxQueueDepth: depth},
	}
	return cfg, opts
}

// TestShedAccounting pins the accounting rule of DESIGN.md: shed requests
// never enter the latency percentiles, appear in the shed counter, and (with
// no retry budget) each shed call is exactly one deadline miss. The shed
// fraction must track the M/M/c/K blocking probability and fall as the
// queue bound deepens.
func TestShedAccounting(t *testing.T) {
	t.Parallel()
	fracs := make([]float64, 0, 3)
	for _, depth := range []int{2, 8, 32} {
		cfg, opts := shedConfig(depth)
		cfg.Strict = true
		res := RunServer(cfg, opts, bfs(t))
		if res.InvariantViolations != 0 {
			t.Fatalf("depth %d: %s", depth, res.FirstViolation)
		}
		if res.Sheds == 0 {
			t.Fatalf("depth %d: overloaded queue never shed", depth)
		}
		// No retries configured: a shed call is lost, so sheds == misses.
		if res.Sheds != res.DeadlineMisses {
			t.Fatalf("depth %d: sheds=%d misses=%d", depth, res.Sheds, res.DeadlineMisses)
		}
		// Accounting rule: percentiles hold completed requests only.
		n := 0
		for _, rec := range res.Service {
			n += rec.Count()
		}
		if n == 0 || n >= res.Arrivals {
			t.Fatalf("depth %d: %d latency samples vs %d arrivals", depth, n, res.Arrivals)
		}
		if res.Requests+int(res.DeadlineMisses) > res.Arrivals {
			t.Fatalf("depth %d: %d completed + %d missed > %d arrived",
				depth, res.Requests, res.DeadlineMisses, res.Arrivals)
		}
		fracs = append(fracs, float64(res.Sheds)/float64(res.Arrivals))
	}
	if !(fracs[0] > fracs[1] && fracs[1] > fracs[2]) {
		t.Fatalf("shed fraction should fall with queue depth: %v", fracs)
	}

	// Cross-check the middle depth against the analytic loss system. The
	// simulated service is not exactly exponential (log-normal, SCV ~ 0.06)
	// and dispatch is not free, so demand agreement within a [1/3, 3x] band.
	lambda := 2750.0 * 4 // BaseRPSPerCore * cores, LoadScale 1
	mu := 1.0 / 400e-6
	q := queueing.MMcK{Lambda: lambda, Mu: mu, C: 4, K: 4 + 8}
	want, err := q.BlockProb()
	if err != nil {
		t.Fatal(err)
	}
	got := fracs[1]
	if got < want/3 || got > want*3 {
		t.Fatalf("shed fraction %0.4f vs M/M/4/12 blocking %0.4f: outside 3x band", got, want)
	}
}
