package cluster

import (
	"fmt"

	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// Resilience configures the request-level fault-tolerance policies every
// real microservice cluster layers on top of its transport: per-service
// timeouts with a bounded retry budget (exponential backoff + jitter),
// optional hedged requests, and queue-depth load shedding. The zero value
// disables everything, and a disabled policy adds a single branch per
// arrival. Resilience contains only scalars so Options values that embed
// it stay comparable (the experiment memo uses them as map keys).
type Resilience struct {
	// Timeout is the per-attempt deadline; 0 defers to SLOTimeoutFactor.
	Timeout sim.Duration
	// SLOTimeoutFactor derives a per-service timeout as this multiple of
	// the service's mean demand (CPU + I/O); used when Timeout is 0.
	SLOTimeoutFactor float64
	// MaxRetries bounds how many times a timed-out attempt is retried.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry multiplies it by BackoffFactor (0 means no backoff growth).
	RetryBackoff sim.Duration
	// BackoffFactor is the exponential backoff multiplier (>= 1).
	BackoffFactor float64
	// JitterFrac spreads each backoff uniformly by ±JitterFrac (in [0,1]).
	// The jitter stream is seeded from the server seed, so runs stay
	// deterministic.
	JitterFrac float64
	// HedgeDelay launches a duplicate attempt if the call has not resolved
	// after this delay; 0 defers to HedgeSLOFactor.
	HedgeDelay sim.Duration
	// HedgeSLOFactor derives the hedge delay as this multiple of the
	// service's mean demand; used when HedgeDelay is 0.
	HedgeSLOFactor float64
	// MaxQueueDepth sheds an attempt on arrival when its VM's ready queue
	// is at least this deep (0 disables shedding).
	MaxQueueDepth int
}

// Enabled reports whether any resilience policy is active.
func (r Resilience) Enabled() bool {
	return r.Timeout > 0 || r.SLOTimeoutFactor > 0 ||
		r.HedgeDelay > 0 || r.HedgeSLOFactor > 0 || r.MaxQueueDepth > 0
}

// Validate returns the first configuration problem with its field name,
// so a bad policy fails fast at construction instead of corrupting a
// simulation mid-run.
func (r Resilience) Validate() error {
	switch {
	case r.Timeout < 0:
		return fmt.Errorf("resilience.timeout: must be non-negative, got %v", r.Timeout)
	case r.SLOTimeoutFactor < 0:
		return fmt.Errorf("resilience.slo_timeout_factor: must be non-negative, got %g", r.SLOTimeoutFactor)
	case r.MaxRetries < 0:
		return fmt.Errorf("resilience.max_retries: must be non-negative, got %d", r.MaxRetries)
	case r.RetryBackoff < 0:
		return fmt.Errorf("resilience.retry_backoff: must be non-negative, got %v", r.RetryBackoff)
	case r.BackoffFactor < 0:
		return fmt.Errorf("resilience.backoff_factor: must be non-negative, got %g", r.BackoffFactor)
	case r.BackoffFactor > 0 && r.BackoffFactor < 1 && r.MaxRetries > 0:
		return fmt.Errorf("resilience.backoff_factor: must be >= 1 (or 0 for none), got %g", r.BackoffFactor)
	case r.JitterFrac < 0 || r.JitterFrac > 1:
		return fmt.Errorf("resilience.jitter_frac: must be in [0,1], got %g", r.JitterFrac)
	case r.HedgeDelay < 0:
		return fmt.Errorf("resilience.hedge_delay: must be non-negative, got %v", r.HedgeDelay)
	case r.HedgeSLOFactor < 0:
		return fmt.Errorf("resilience.hedge_slo_factor: must be non-negative, got %g", r.HedgeSLOFactor)
	case r.MaxQueueDepth < 0:
		return fmt.Errorf("resilience.max_queue_depth: must be non-negative, got %d", r.MaxQueueDepth)
	case r.MaxRetries > 0 && r.Timeout == 0 && r.SLOTimeoutFactor == 0:
		return fmt.Errorf("resilience.max_retries: needs a timeout source (timeout or slo_timeout_factor)")
	case r.Timeout > 0 && r.HedgeDelay >= r.Timeout:
		return fmt.Errorf("resilience.hedge_delay: must be smaller than the timeout (%v >= %v)", r.HedgeDelay, r.Timeout)
	}
	return nil
}

// DefaultResilience is the policy set used by hhsim -resilience and the
// faultsweep experiment: service-relative timeouts, two retries with
// exponential backoff + jitter, hedging, and queue-depth shedding.
func DefaultResilience() Resilience {
	return Resilience{
		SLOTimeoutFactor: 6,
		MaxRetries:       2,
		RetryBackoff:     200 * sim.Microsecond,
		BackoffFactor:    2,
		JitterFrac:       0.2,
		HedgeSLOFactor:   1.6,
		MaxQueueDepth:    128,
	}
}

// call tracks one logical client request across its attempts (the
// original, retries, and hedges). Attempts are ordinary pooled request
// objects pointing back at their call.
//
// Zombie model: a timed-out or losing attempt is NOT ripped out of the
// server — like a real cluster, the server keeps executing work the
// client gave up on, and that wasted work is exactly what retries/hedges
// trade against. A completion for an already-resolved call is discarded
// (no latency sample, no completion event). The call itself is recycled
// only once it is resolved and its last attempt has left the system;
// every resolve path cancels the call's pending timer events first, so no
// stale event can touch a recycled call.
type call struct {
	id    uint64
	vmIdx int
	// firstReq is the original attempt's request id: completions and
	// misses reference it so observers can close the span that the
	// KindArrival event opened.
	firstReq uint64
	phases   []workload.Phase // pristine copy; each attempt re-copies it
	start    sim.Time
	// measured marks calls arriving inside the measurement window.
	measured bool
	// primaries counts the original attempt plus retries (not hedges).
	primaries int
	// outstanding counts attempts still in the system (incl. zombies).
	outstanding int
	resolved    bool
	hedged      bool

	timeoutEv sim.Event
	hedgeEv   sim.Event
	retryEv   sim.Event
}

// newCall takes a call object from the pool.
func (s *Server) newCall() *call {
	if n := len(s.callFree); n > 0 {
		c := s.callFree[n-1]
		s.callFree = s.callFree[:n-1]
		return c
	}
	return &call{}
}

func (s *Server) freeCall(c *call) {
	*c = call{phases: c.phases[:0]}
	s.callFree = append(s.callFree, c)
}

// cancelCallEv cancels a pending call timer and clears the handle. The
// engine's generation-checked handles make cancelling an already-fired or
// zero event a no-op.
func (s *Server) cancelCallEv(ev *sim.Event) {
	if ev.Valid() {
		s.eng.Cancel(*ev)
	}
	*ev = sim.Event{}
}

// onArrivalResilient is the resilient twin of onArrival: it wraps the
// invocation in a call, arms the timeout and hedge timers, and launches
// the first attempt.
func (s *Server) onArrivalResilient(v *vmRT, inv workload.Invocation) {
	s.arrivals++ // counts calls, matching the non-resilient meaning
	s.callSeq++
	c := s.newCall()
	c.id = s.callSeq
	c.vmIdx = v.idx
	c.phases = append(c.phases[:0], inv.Phases...)
	c.start = s.now()
	c.measured = s.measuring()
	if v.timeout > 0 {
		c.timeoutEv = s.eng.ScheduleCall(v.timeout, s, opCallTimeout, nil, c)
	}
	if v.hedgeDelay > 0 {
		c.hedgeEv = s.eng.ScheduleCall(v.hedgeDelay, s, opCallHedge, nil, c)
	}
	s.spawnAttempt(c, obs.KindArrival)
}

// spawnAttempt launches one attempt of a call through the normal arrival
// path (NIC deposit, vCPU landing, queueing). kind is KindArrival for the
// original, KindRetry/KindHedge for later attempts.
func (s *Server) spawnAttempt(c *call, kind obs.Kind) {
	v := s.vms[c.vmIdx]
	_, nicLat, err := s.nicDev.Deposit(v.idx, 256)
	if err != nil {
		panic(err)
	}
	if !s.opts.HWQueue {
		nicLat += s.cfg.SWQueueAccess
	}
	s.reqSeq++
	r := s.newRequest()
	r.id = s.reqSeq
	r.vmIdx = v.idx
	r.phases = append(r.phases[:0], c.phases...)
	r.arrival = s.now()
	r.measured = c.measured
	r.call = c
	r.isHedge = kind == obs.KindHedge
	if kind == obs.KindArrival {
		c.firstReq = r.id
	}
	if !r.isHedge {
		c.primaries++
	}
	c.outstanding++
	s.setReqState(r, rsTransit)
	if s.obs != nil {
		s.ev(kind, r, -1, nicLat)
	}
	s.eng.ScheduleCall(nicLat, s, opArrivalReady, nil, r)
}

// shedAttempt drops an attempt at the queue-depth gate. The attempt's
// request returns to the pool; shed work is never recorded in latency
// percentiles (see DESIGN.md's accounting rule), only in the shed counter.
func (s *Server) shedAttempt(r *request) {
	s.sheds++
	if s.obs != nil {
		s.ev(obs.KindShed, r, -1, 0)
	}
	c := r.call
	hedge := r.isHedge
	c.outstanding--
	s.freeRequest(r)
	if c.resolved {
		s.maybeFreeCall(c)
		return
	}
	if hedge {
		return // the primary attempt is still in flight
	}
	s.attemptFailed(c)
}

// attemptFailed reacts to a failed primary attempt (shed, or timed out):
// retry within budget, or give up and record a deadline miss. The pending
// per-attempt timeout is cancelled so it cannot double-fail the call
// during the retry backoff.
func (s *Server) attemptFailed(c *call) {
	s.cancelCallEv(&c.timeoutEv)
	if c.primaries <= s.opts.Resilience.MaxRetries {
		c.retryEv = s.eng.ScheduleCall(s.backoffDelay(c), s, opCallRetry, nil, c)
		return
	}
	s.resolveMiss(c)
}

// backoffDelay computes the deterministic-jitter exponential backoff for
// the call's next retry.
func (s *Server) backoffDelay(c *call) sim.Duration {
	res := s.opts.Resilience
	d := float64(res.RetryBackoff)
	factor := res.BackoffFactor
	if factor <= 0 {
		factor = 1
	}
	for i := 1; i < c.primaries; i++ {
		d *= factor
	}
	if res.JitterFrac > 0 {
		d *= 1 + res.JitterFrac*(2*s.resRNG.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return sim.Duration(d)
}

// callTimeout fires when an attempt exceeded its deadline. The attempt
// keeps running as a zombie; the call moves on.
func (s *Server) callTimeout(c *call) {
	c.timeoutEv = sim.Event{}
	if c.resolved {
		return
	}
	s.attemptFailed(c)
}

// callRetry launches the next primary attempt after the backoff and
// re-arms the per-attempt timeout.
func (s *Server) callRetry(c *call) {
	c.retryEv = sim.Event{}
	if c.resolved {
		return
	}
	s.retries++
	if t := s.vms[c.vmIdx].timeout; t > 0 {
		c.timeoutEv = s.eng.ScheduleCall(t, s, opCallTimeout, nil, c)
	}
	s.spawnAttempt(c, obs.KindRetry)
}

// callHedge launches the duplicate attempt if the call is still unresolved.
func (s *Server) callHedge(c *call) {
	c.hedgeEv = sim.Event{}
	if c.resolved || c.hedged {
		return
	}
	c.hedged = true
	s.hedges++
	s.spawnAttempt(c, obs.KindHedge)
}

// completeAttempt handles the server-side completion of an attempt whose
// call may already be resolved. The first completion resolves the call
// and records its end-to-end latency; later ones are zombies and are
// discarded without touching any metric.
func (s *Server) completeAttempt(r *request, coreID int) {
	c := r.call
	c.outstanding--
	if c.resolved {
		s.maybeFreeCall(c)
		return
	}
	c.resolved = true
	s.cancelCallEv(&c.timeoutEv)
	s.cancelCallEv(&c.hedgeEv)
	s.cancelCallEv(&c.retryEv)
	lat := s.now().Sub(c.start)
	if r.isHedge {
		s.hedgesWon++
	} else if c.hedged {
		s.hedgesLost++
	}
	if s.obs != nil {
		// The completion closes the span the original attempt opened.
		s.obs.Observe(obs.Event{Kind: obs.KindComplete, Time: s.now(),
			Req: c.firstReq, VM: c.vmIdx, Core: coreID, Dur: lat, Measured: c.measured})
		if r.isHedge {
			s.obs.Observe(obs.Event{Kind: obs.KindHedgeWin, Time: s.now(),
				Req: c.firstReq, VM: c.vmIdx, Core: coreID})
		}
	}
	s.requests++
	if c.measured {
		v := s.vms[c.vmIdx]
		v.lat.Add(lat)
		s.breakdown.AddRequest(r.reassign, r.flush, r.exec)
		v.breakdown.AddRequest(r.reassign, r.flush, r.exec)
	}
	s.maybeFreeCall(c)
}

// resolveMiss gives up on a call: its retry budget is exhausted. The miss
// is counted; no latency sample is recorded (the accounting rule keeps
// percentiles to successful responses only).
func (s *Server) resolveMiss(c *call) {
	c.resolved = true
	s.cancelCallEv(&c.timeoutEv)
	s.cancelCallEv(&c.hedgeEv)
	s.cancelCallEv(&c.retryEv)
	s.deadlineMisses++
	if s.obs != nil {
		s.obs.Observe(obs.Event{Kind: obs.KindDeadlineMiss, Time: s.now(),
			Req: c.firstReq, VM: c.vmIdx, Core: -1, Dur: s.now().Sub(c.start),
			Measured: c.measured})
	}
	s.maybeFreeCall(c)
}

// maybeFreeCall recycles a call once it is resolved and its last attempt
// (zombies included) has left the system.
func (s *Server) maybeFreeCall(c *call) {
	if c.resolved && c.outstanding == 0 {
		s.freeCall(c)
	}
}
