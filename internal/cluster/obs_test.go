package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// obsConfig keeps instrumented runs short.
func obsConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupDuration = 10 * sim.Millisecond
	cfg.MeasureDuration = 100 * sim.Millisecond
	return cfg
}

// traceRun simulates one server with a fresh tracer attached and returns
// both the result and the tracer.
func traceRun(t *testing.T, cfg Config, kind SystemKind) (*ServerResult, *obs.SpanTracer) {
	t.Helper()
	opts := SystemOptions(kind)
	tr := obs.NewSpanTracer(opts.Name, 0)
	opts.Observer = tr
	return RunServer(cfg, opts, bfs(t)), tr
}

// TestTraceDeterminism is the regression test for byte-identical trace
// output: two runs with the same seed must render the same bytes.
func TestTraceDeterminism(t *testing.T) {
	for _, kind := range []SystemKind{HardHarvestBlock, HarvestBlock} {
		var buf1, buf2 bytes.Buffer
		_, tr1 := traceRun(t, obsConfig(), kind)
		_, tr2 := traceRun(t, obsConfig(), kind)
		if err := tr1.WriteTrace(&buf1); err != nil {
			t.Fatal(err)
		}
		if err := tr2.WriteTrace(&buf2); err != nil {
			t.Fatal(err)
		}
		if tr1.Events() == 0 {
			t.Fatalf("%v: tracer saw no events", kind)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("%v: same-seed runs produced different trace bytes (%d vs %d)",
				kind, buf1.Len(), buf2.Len())
		}
	}
}

// TestTraceWellFormed checks the exported JSON against the trace-event
// contract Perfetto relies on: it parses, every VM has a named process,
// every core a named thread, and B/E spans balance per thread.
func TestTraceWellFormed(t *testing.T) {
	cfg := obsConfig()
	_, tr := traceRun(t, cfg, HardHarvestBlock)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	procs := map[int]string{}
	threads := map[[2]int]string{}
	depth := map[[2]int]int{}
	for _, ev := range f.TraceEvents {
		key := [2]int{ev.Pid, ev.Tid}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[ev.Pid], _ = ev.Args["name"].(string)
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads[key], _ = ev.Args["name"].(string)
		case ev.Ph == "B":
			depth[key]++
		case ev.Ph == "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("E before B on pid=%d tid=%d", ev.Pid, ev.Tid)
			}
		}
		if ev.Ts < 0 {
			t.Fatalf("negative timestamp %v", ev.Ts)
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced spans on pid=%d tid=%d: %d left open", key[0], key[1], d)
		}
	}
	// One process per VM (primaries + harvest VM), one thread per core plus
	// the per-VM lifecycle thread.
	if len(procs) != cfg.PrimaryVMs+1 {
		t.Fatalf("processes = %d, want %d VMs", len(procs), cfg.PrimaryVMs+1)
	}
	coreThreads := 0
	for key, name := range threads {
		if key[1] != 1000 { // lifecycleTid
			coreThreads++
			if name == "" {
				t.Fatalf("core thread pid=%d tid=%d unnamed", key[0], key[1])
			}
		}
	}
	if coreThreads != cfg.CoresPerServer {
		t.Fatalf("core threads = %d, want %d", coreThreads, cfg.CoresPerServer)
	}
}

// TestCountersReconcile cross-checks the tracer's independent accounting
// against the simulator's own aggregates for a hardware and a software
// system.
func TestCountersReconcile(t *testing.T) {
	for _, kind := range []SystemKind{HardHarvestBlock, HarvestBlock} {
		res, tr := traceRun(t, obsConfig(), kind)
		c := tr.Counters()
		if c.Arrivals != uint64(res.Arrivals) {
			t.Errorf("%v: traced arrivals %d != result %d", kind, c.Arrivals, res.Arrivals)
		}
		if c.Completions != uint64(res.Requests) {
			t.Errorf("%v: traced completions %d != result %d", kind, c.Completions, res.Requests)
		}
		if c.Pins != res.Pins {
			t.Errorf("%v: traced pins %d != result %d", kind, c.Pins, res.Pins)
		}
		// Reassignments have exactly three sources: hardware preempts,
		// hypervisor lends, and hypervisor reclaims. Reclaims already
		// includes preempts.
		if c.LendMoves+c.Reclaims != res.Reassigns {
			t.Errorf("%v: lends %d + reclaims %d != reassigns %d",
				kind, c.LendMoves, c.Reclaims, res.Reassigns)
		}
		if got, want := tr.Hist().Count(), res.Breakdown.Requests; got != want {
			t.Errorf("%v: hist count %d != measured requests %d", kind, got, want)
		}
		// The traced execution time of measured requests must match the
		// breakdown's execution component exactly: both sum the same scaled
		// burst lengths.
		if got, want := tr.ExecMeasured(), res.Breakdown.Execution; got != want {
			t.Errorf("%v: traced exec %v != breakdown exec %v", kind, got, want)
		}
		if kind == HardHarvestBlock {
			if c.Loans == 0 || c.Preempts == 0 {
				t.Errorf("%v: hardware run saw no loans/preempts: %+v", kind, c)
			}
			if c.LendMoves != 0 {
				t.Errorf("%v: hardware run used hypervisor lends: %d", kind, c.LendMoves)
			}
		} else {
			if c.LendMoves == 0 {
				t.Errorf("%v: software run made no hypervisor lends", kind)
			}
			if c.Preempts != 0 {
				t.Errorf("%v: software run served hardware preempts: %d", kind, c.Preempts)
			}
		}
	}
}

// TestSamplerOnServer drives a Sampler through a real run and checks the
// time series shape.
func TestSamplerOnServer(t *testing.T) {
	cfg := obsConfig()
	opts := SystemOptions(HardHarvestBlock)
	sp := obs.NewSampler(opts.Name, 50*sim.Microsecond)
	opts.Observer = sp
	RunServer(cfg, opts, bfs(t))
	rows := sp.Rows()
	if len(rows) < 100 {
		t.Fatalf("samples = %d, want a dense series", len(rows))
	}
	var sawBusy bool
	for i, sn := range rows {
		if i > 0 && sn.Time <= rows[i-1].Time {
			t.Fatalf("sample %d: time %v not increasing", i, sn.Time)
		}
		if len(sn.VMs) != cfg.PrimaryVMs+1 {
			t.Fatalf("sample %d: %d VMs", i, len(sn.VMs))
		}
		for _, v := range sn.VMs {
			if v.Running < 0 || v.Queued < 0 || v.BusyCores < 0 {
				t.Fatalf("sample %d: negative occupancy %+v", i, v)
			}
			if v.BusyCores > 0 {
				sawBusy = true
			}
		}
	}
	if !sawBusy {
		t.Fatal("no sample ever saw a busy core")
	}
}

// TestMultiObserverOnServer runs tracer + sampler composed, as hhsim does.
func TestMultiObserverOnServer(t *testing.T) {
	cfg := obsConfig()
	opts := SystemOptions(HarvestBlock)
	tr := obs.NewSpanTracer(opts.Name, 0)
	sp := obs.NewSampler(opts.Name, 100*sim.Microsecond)
	opts.Observer = obs.Multi(tr, sp)
	res := RunServer(cfg, opts, bfs(t))
	if tr.Counters().Completions != uint64(res.Requests) {
		t.Fatalf("tracer under multi lost events: %d != %d", tr.Counters().Completions, res.Requests)
	}
	if len(sp.Rows()) == 0 {
		t.Fatal("sampler under multi got no snapshots")
	}
}

// TestServerObserverParallelTraceDeterminism exercises the instrumented
// parallel-cluster path: each server gets its own tracer through
// ServerObserver, the servers run concurrently, and the merged trace export
// must stay byte-identical across same-seed runs. ServerObserver is called
// on the RunCluster goroutine in server order, so appending to the tracer
// slice needs no locking and pid slots are stable.
func TestServerObserverParallelTraceDeterminism(t *testing.T) {
	const servers = 3
	run := func() ([]byte, *ClusterResult) {
		t.Helper()
		opts := SystemOptions(HardHarvestBlock)
		var tracers []*obs.SpanTracer
		opts.ServerObserver = func(server int, workload string) Observer {
			tr := obs.NewSpanTracer(fmt.Sprintf("srv%d/%s", server, workload), server*64)
			tracers = append(tracers, tr)
			return tr
		}
		cr := RunCluster(obsConfig(), opts, servers)
		if len(tracers) != servers {
			t.Fatalf("ServerObserver called %d times, want %d", len(tracers), servers)
		}
		for i, tr := range tracers {
			if tr.Events() == 0 {
				t.Fatalf("server %d tracer saw no events", i)
			}
		}
		var buf bytes.Buffer
		if err := obs.WriteTraces(&buf, tracers...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), cr
	}
	b1, cr1 := run()
	b2, _ := run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed parallel clusters produced different trace bytes (%d vs %d)",
			len(b1), len(b2))
	}
	// Observers must not perturb the simulation: the instrumented cluster
	// matches an uninstrumented run exactly.
	plain := RunCluster(obsConfig(), SystemOptions(HardHarvestBlock), servers)
	if cr1.AvgP99() != plain.AvgP99() || cr1.BusyCores != plain.BusyCores {
		t.Fatalf("instrumented cluster diverged: P99 %v vs %v, busy %v vs %v",
			cr1.AvgP99(), plain.AvgP99(), cr1.BusyCores, plain.BusyCores)
	}
}

// TestNilObserverNoAllocs pins the disabled-path contract: with no observer
// the hook helpers allocate nothing.
func TestNilObserverNoAllocs(t *testing.T) {
	s := NewServer(obsConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	r := &request{id: 1, vmIdx: 0}
	c := &s.cores[0]
	if n := testing.AllocsPerRun(1000, func() {
		s.ev(obs.KindArrival, r, -1, 0)
		s.evCore(obs.KindCoreIdle, c, 0)
	}); n != 0 {
		t.Fatalf("nil-observer hooks allocate %v per run", n)
	}
}
