package cluster

import (
	"strings"
	"testing"

	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

func liveConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.WarmupDuration = 5 * sim.Millisecond
	cfg.MeasureDuration = 40 * sim.Millisecond
	return cfg
}

// TestStepToEquivalence pins the fact live mode is built on: chopping the
// run into StepTo increments (here a cadence the horizon is not a multiple
// of) fires the identical event sequence as one monolithic Run.
func TestStepToEquivalence(t *testing.T) {
	mono := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	monoRes := mono.Run()

	stepped := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	stepped.Start()
	steps := 0
	for !stepped.StepTo(stepped.Now().Add(7 * sim.Millisecond)) {
		steps++
	}
	stepRes := stepped.Finish()

	if got, want := stepRes.String(), monoRes.String(); got != want {
		t.Fatalf("stepped run diverged from Run():\n  mono: %s\n  step: %s", want, got)
	}
	if mono.EventsFired() != stepped.EventsFired() {
		t.Fatalf("event counts differ: %d vs %d", mono.EventsFired(), stepped.EventsFired())
	}
	if steps == 0 {
		t.Fatal("StepTo loop never iterated")
	}
	// StepTo past the horizon clamps and reports done idempotently.
	if !stepped.StepTo(stepped.Horizon().Add(sim.Second)) {
		t.Fatal("StepTo past the horizon did not report done")
	}
}

func TestLiveAccessors(t *testing.T) {
	s := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	s.Start()
	ms, me := s.MeasureWindow()
	if ms != sim.Time(0).Add(5*sim.Millisecond) || me != ms.Add(40*sim.Millisecond) {
		t.Fatalf("measure window [%v, %v]", ms, me)
	}
	if h := s.Horizon(); h <= me {
		t.Fatalf("horizon %v not past measure end %v", h, me)
	}
	if s.EventsPending() == 0 {
		t.Fatal("no events pending after Start")
	}
	s.StepTo(sim.Time(0).Add(10 * sim.Millisecond))
	if now := s.Now(); now == 0 || now > sim.Time(0).Add(10*sim.Millisecond) {
		t.Fatalf("Now() = %v after stepping to 10ms", now)
	}
	if s.EventsFired() == 0 {
		t.Fatal("no events fired after stepping")
	}
	topo := s.LiveTopology()
	snap := s.OccupancySnapshot()
	if len(topo.VMs) == 0 || len(snap.VMs) != len(topo.VMs) {
		t.Fatalf("topology %d VMs, snapshot %d", len(topo.VMs), len(snap.VMs))
	}
	if snap.Time != s.Now() {
		t.Fatalf("snapshot stamped %v, now %v", snap.Time, s.Now())
	}
	busy := 0
	for _, v := range snap.VMs {
		busy += v.BusyCores
	}
	if busy == 0 {
		t.Fatal("mid-run occupancy snapshot shows an idle server")
	}
	s.StepTo(s.Horizon())
	s.Finish()
}

// TestSetIntensity: scaling offered load up mid-run must raise arrivals
// versus an untouched same-seed run; x <= 0 is rejected.
func TestSetIntensity(t *testing.T) {
	run := func(boost bool) uint64 {
		m := obs.NewMeter()
		opts := SystemOptions(HardHarvestBlock)
		opts.Observer = m
		s := NewServer(liveConfig(), opts, bfs(t))
		s.Start()
		s.StepTo(sim.Time(0).Add(10 * sim.Millisecond))
		if boost {
			if err := s.SetIntensity(4.0); err != nil {
				t.Fatal(err)
			}
		}
		s.StepTo(s.Horizon())
		s.Finish()
		c := m.Counters()
		return c.Arrivals
	}
	base, boosted := run(false), run(true)
	if boosted <= base {
		t.Fatalf("4x intensity did not raise arrivals: %d -> %d", base, boosted)
	}

	s := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	s.Start()
	for _, bad := range []float64{0, -1} {
		if err := s.SetIntensity(bad); err == nil {
			t.Fatalf("intensity %v accepted", bad)
		}
	}
}

func TestSetHarvestOnBlock(t *testing.T) {
	opts := SystemOptions(HardHarvestBlock)
	s := NewServer(liveConfig(), opts, bfs(t))
	if !s.opts.HarvestOnBlock {
		t.Fatal("HardHarvest-Block should start with HarvestOnBlock")
	}
	s.SetHarvestOnBlock(false)
	if s.opts.HarvestOnBlock {
		t.Fatal("SetHarvestOnBlock(false) did not stick")
	}
	s.SetHarvestOnBlock(true)
	if !s.opts.HarvestOnBlock {
		t.Fatal("SetHarvestOnBlock(true) did not stick")
	}
}

// TestSetResilienceEnabled covers the lazy-enable paths: installing the
// default policy on a server built without one, idempotent re-enable, and
// disable. A run with it enabled mid-flight must still finish clean under
// the invariant checker.
func TestSetResilienceEnabled(t *testing.T) {
	cfg := liveConfig()
	cfg.Strict = true
	s := NewServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if s.resOn {
		t.Fatal("resilience on without a policy configured")
	}
	s.Start()
	s.StepTo(sim.Time(0).Add(10 * sim.Millisecond))
	s.SetResilienceEnabled(true)
	if !s.resOn || !s.opts.Resilience.Enabled() {
		t.Fatal("enable did not install the default policy")
	}
	rng := s.resRNG
	if rng == nil {
		t.Fatal("enable did not derive the jitter RNG")
	}
	s.SetResilienceEnabled(true) // idempotent: must not re-derive
	if s.resRNG != rng {
		t.Fatal("re-enable re-derived the jitter RNG")
	}
	s.SetResilienceEnabled(false)
	if s.resOn {
		t.Fatal("disable did not stick")
	}
	s.SetResilienceEnabled(true) // re-enable keeps the same RNG stream
	if s.resRNG != rng {
		t.Fatal("re-enable after disable replaced the jitter RNG")
	}
	s.StepTo(s.Horizon())
	res := s.Finish()
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %s", res.InvariantViolations, res.FirstViolation)
	}
}

func TestInjectFaultPlan(t *testing.T) {
	plan := &faults.Plan{Events: []faults.ScriptedEvent{
		{AtMS: 1, Kind: "core_offline", Core: 3, DurationMS: 5},
	}}

	m := obs.NewMeter()
	opts := SystemOptions(HardHarvestBlock)
	opts.Observer = m
	cfg := liveConfig()
	cfg.Strict = true
	s := NewServer(cfg, opts, bfs(t))
	s.Start()
	s.StepTo(sim.Time(0).Add(10 * sim.Millisecond))
	if err := s.InjectFaultPlan(plan, s.Now()); err != nil {
		t.Fatal(err)
	}
	s.StepTo(s.Horizon())
	res := s.Finish()
	c := m.Counters()
	if c.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", c.FaultsInjected)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %s", res.InvariantViolations, res.FirstViolation)
	}

	// Error paths: nil plan, invalid plan, start at/past the horizon. A
	// `from` before now is clamped, not rejected.
	s2 := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	s2.Start()
	if err := s2.InjectFaultPlan(nil, 0); err == nil {
		t.Fatal("nil plan accepted")
	}
	bad := &faults.Plan{Events: []faults.ScriptedEvent{{AtMS: 1, Kind: "nope"}}}
	if err := s2.InjectFaultPlan(bad, 0); err == nil ||
		!strings.Contains(err.Error(), "fault plan") {
		t.Fatalf("invalid plan: %v", err)
	}
	if err := s2.InjectFaultPlan(plan, s2.Horizon()); err == nil {
		t.Fatal("plan starting at the horizon accepted")
	}
	s2.StepTo(sim.Time(0).Add(10 * sim.Millisecond))
	if err := s2.InjectFaultPlan(plan, 0); err != nil { // clamped to now
		t.Fatal(err)
	}
	s2.StepTo(s2.Horizon())
	s2.Finish()
}
