// Package cluster assembles the full evaluated system: an 8-server cluster
// where each server runs 8 Primary VMs (4 cores each, one SocialNet-like
// microservice per VM) and 1 Harvest VM (4 own cores plus harvested ones,
// running one batch workload). It implements the five architectures of the
// evaluation (NoHarvest, Harvest-Term, Harvest-Block, HardHarvest-Term,
// HardHarvest-Block) and the individual optimization knobs used in the
// ablation studies (Figures 12, 13, 15).
package cluster

import (
	"fmt"

	"hardharvest/internal/hypervisor"
	"hardharvest/internal/obs"
)

// Observer receives request-lifecycle and core-state events from a server
// run; see internal/obs. It is re-exported so callers wiring observers into
// Options need not import the obs package for the type alone.
type Observer = obs.Observer

// SystemKind names the five evaluated architectures.
type SystemKind int

const (
	// NoHarvest is a conventional system without core harvesting.
	NoHarvest SystemKind = iota
	// HarvestTerm is SmartHarvest-style software harvesting that takes
	// cores only when they are idle after request termination.
	HarvestTerm
	// HarvestBlock additionally takes cores idled by blocking I/O calls.
	HarvestBlock
	// HardHarvestTerm is the hardware design, harvesting on termination.
	HardHarvestTerm
	// HardHarvestBlock is the full proposal: hardware harvesting on
	// termination and on blocking calls.
	HardHarvestBlock
)

func (k SystemKind) String() string {
	switch k {
	case NoHarvest:
		return "NoHarvest"
	case HarvestTerm:
		return "Harvest-Term"
	case HarvestBlock:
		return "Harvest-Block"
	case HardHarvestTerm:
		return "HardHarvest-Term"
	case HardHarvestBlock:
		return "HardHarvest-Block"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// Systems lists the five architectures in figure order.
func Systems() []SystemKind {
	return []SystemKind{NoHarvest, HarvestTerm, HarvestBlock, HardHarvestTerm, HardHarvestBlock}
}

// Options select the mechanisms of a simulated system. The five named
// systems are presets; the ablation figures toggle individual fields.
type Options struct {
	Name string

	// Harvesting enables core movement between VMs.
	Harvesting bool
	// HarvestOnBlock additionally harvests cores idled by blocking I/O.
	HarvestOnBlock bool
	// SoftwareHarvest selects the SmartHarvest-style software agent
	// (predictor + emergency buffer + hypervisor moves); false selects the
	// HardHarvest controller path.
	SoftwareHarvest bool
	// Reassign selects the software re-assignment cost (KVM or optimized).
	Reassign hypervisor.ReassignKind
	// ReassignFree zeroes the software re-assignment cost (used by Figure
	// 5's Flush-only bars).
	ReassignFree bool
	// FlushOnSwitch flushes+invalidates private caches/TLBs on cross-VM
	// transitions (the secure default; Figure 4 disables it to isolate
	// hypervisor costs).
	FlushOnSwitch bool
	// HarvestVMActive gives the Harvest VM an endless job stream; Figure 4
	// keeps the Harvest VM idle.
	HarvestVMActive bool
	// EventDrivenLend moves cores on per-request events (an idle core with
	// an empty queue migrates immediately), as in the Figure 4/5 motivation
	// experiments, instead of through the SmartHarvest predictor. At most
	// one core per VM is lent this way, matching the paper's methodology
	// ("we detach an idle core from a Primary VM").
	EventDrivenLend bool

	// Hardware optimization knobs (cumulative in Figure 12):
	// HWSched: in-hardware request scheduling — cores are notified of new
	// work instantly instead of discovering it by polling.
	HWSched bool
	// HWQueue: dedicated SRAM request queues — cheap queue operations with
	// no cache-hierarchy contention.
	HWQueue bool
	// HWCtxtSw: in-hardware context save/restore via the Request Context
	// Memory.
	HWCtxtSw bool
	// Partition: way-partitioned caches/TLBs — only the harvest region is
	// flushed on transitions and Primary VMs restart on a warm non-harvest
	// region.
	Partition bool
	// EffFlush: efficient flush/invalidate hardware (1000-cycle harvest
	// region flush instead of a wbinvd-style walk).
	EffFlush bool
	// ReplPolicy: the HardHarvest replacement policy (Algorithm 1), which
	// improves hit rates for Primary VMs in general.
	ReplPolicy bool

	// Extension policies (§4.1.5 future work):
	// BurstBufferCores keeps that many idle cores per Primary VM unloaned,
	// ready for bursts — reduced harvesting aggressiveness in hardware.
	BurstBufferCores int
	// AdaptiveBlock dynamically falls back from harvest-on-block to
	// harvest-on-termination for VMs whose requests spend only short times
	// blocked on I/O (frequent short blocks make block-harvesting churn).
	AdaptiveBlock bool

	// SketchLatency selects bounded-memory mergeable latency sketches for
	// the per-VM service recorders instead of exact sample buffers: memory
	// stays flat over arbitrarily long runs at a bounded relative quantile
	// error (stats.SketchRelativeError). Fleet-scale scenario runs set it;
	// golden runs and the experiment suite keep exact recorders.
	SketchLatency bool

	// Observer, when non-nil, receives every request-lifecycle and
	// core-state transition of the run (see internal/obs for ready-made
	// tracers and samplers). The presets leave it nil: with no observer the
	// simulator pays a single nil check per hook site and allocates
	// nothing. An Observer instance must not be shared between concurrently
	// running servers; RunCluster therefore runs its servers sequentially
	// when Observer is set. Use ServerObserver to instrument a cluster
	// without giving up server parallelism.
	Observer Observer

	// ServerObserver, when non-nil, resolves one observer per cluster
	// server: RunCluster calls it once per server, in server order, on the
	// calling goroutine, then runs the servers in parallel with each server
	// owning the observer it was handed (nil leaves that server
	// uninstrumented). Because each server gets a private observer, setting
	// ServerObserver keeps the parallel path, unlike Observer.
	// ServerObserver takes precedence over Observer when both are set.
	ServerObserver func(server int, workload string) Observer

	// Resilience configures request-level timeout/retry/hedging/shedding
	// policies for Primary VM microservice calls. The zero value disables
	// all of them and keeps the simulation byte-identical to a build
	// without resilience support.
	Resilience Resilience

	// RemoteAdmission switches Primary VM request admission from the
	// server's own workload generators to an external front door (see
	// internal/route): the local per-VM arrival loops are not started and
	// requests enter through Server.AdmitRemote instead. Harvest VM batch
	// jobs remain locally generated. Off (the default) the server is
	// byte-identical to a build without remote-admission support.
	RemoteAdmission bool

	// Remote carries the callbacks a front door registers to hear about
	// the fate of remotely admitted requests and about whole-server
	// crash/recovery transitions. Only consulted when RemoteAdmission is
	// set (except Crash, which fires whenever it is non-nil).
	Remote RemoteHooks
}

// SystemOptions returns the preset for one of the five architectures.
func SystemOptions(kind SystemKind) Options {
	switch kind {
	case NoHarvest:
		return Options{
			Name:            kind.String(),
			HarvestVMActive: true,
		}
	case HarvestTerm, HarvestBlock:
		return Options{
			Name:            kind.String(),
			Harvesting:      true,
			HarvestOnBlock:  kind == HarvestBlock,
			SoftwareHarvest: true,
			Reassign:        hypervisor.ReassignOpt,
			FlushOnSwitch:   true,
			HarvestVMActive: true,
		}
	case HardHarvestTerm, HardHarvestBlock:
		return Options{
			Name:            kind.String(),
			Harvesting:      true,
			HarvestOnBlock:  kind == HardHarvestBlock,
			FlushOnSwitch:   true,
			HarvestVMActive: true,
			HWSched:         true,
			HWQueue:         true,
			HWCtxtSw:        true,
			Partition:       true,
			EffFlush:        true,
			ReplPolicy:      true,
		}
	default:
		panic(fmt.Sprintf("cluster: unknown system %d", int(kind)))
	}
}

// ExtensionVariants returns the §4.1.5 future-work policies layered on
// HardHarvest-Block: a hardware burst buffer of idle cores, and adaptive
// block-harvesting.
func ExtensionVariants() []Options {
	base := SystemOptions(HardHarvestBlock)
	buf1 := base
	buf1.Name = "+BurstBuffer-1"
	buf1.BurstBufferCores = 1
	buf2 := base
	buf2.Name = "+BurstBuffer-2"
	buf2.BurstBufferCores = 2
	adaptive := base
	adaptive.Name = "+AdaptiveBlock"
	adaptive.AdaptiveBlock = true
	return []Options{base, buf1, buf2, adaptive}
}

// Fig4Variants returns the motivation experiment of Figure 4: hypervisor
// core re-assignment with an always-idle Harvest VM and no cache flushing,
// under stock-KVM and SmartHarvest-optimized costs, moving cores on request
// termination or additionally on blocking calls.
func Fig4Variants() []Options {
	noMove := SystemOptions(NoHarvest)
	noMove.Name = "No-Move"
	noMove.HarvestVMActive = false
	mk := func(name string, kind hypervisor.ReassignKind, onBlock bool) Options {
		return Options{
			Name:            name,
			Harvesting:      true,
			HarvestOnBlock:  onBlock,
			SoftwareHarvest: true,
			EventDrivenLend: true,
			Reassign:        kind,
			FlushOnSwitch:   false, // the Harvest VM is idle: no flushing
			HarvestVMActive: false,
		}
	}
	return []Options{
		noMove,
		mk("KVM-Term", hypervisor.ReassignKVM, false),
		mk("KVM-Block", hypervisor.ReassignKVM, true),
		mk("Opt-Term", hypervisor.ReassignOpt, false),
		mk("Opt-Block", hypervisor.ReassignOpt, true),
	}
}

// Fig5Variants returns the flush motivation experiment of Figure 5: cache
// and TLB flushing on core re-assignment (free re-assignment for the
// Flush-* bars) and, for the Harvest-* bars, flushing plus the optimized
// hypervisor re-assignment of Figure 4.
func Fig5Variants() []Options {
	noFlush := SystemOptions(NoHarvest)
	noFlush.Name = "No-Flush"
	noFlush.HarvestVMActive = false
	mk := func(name string, free bool, onBlock bool) Options {
		return Options{
			Name:            name,
			Harvesting:      true,
			HarvestOnBlock:  onBlock,
			SoftwareHarvest: true,
			EventDrivenLend: true,
			Reassign:        hypervisor.ReassignOpt,
			ReassignFree:    free,
			FlushOnSwitch:   true,
			HarvestVMActive: false,
		}
	}
	return []Options{
		noFlush,
		mk("Flush-Term", true, false),
		mk("Flush-Block", true, true),
		mk("Harvest-Term", false, false),
		mk("Harvest-Block", false, true),
	}
}

// Fig12Steps returns the cumulative optimization ladder of Figure 12,
// starting from Harvest-Block and ending at full HardHarvest-Block.
func Fig12Steps() []Options {
	base := SystemOptions(HarvestBlock)
	steps := []Options{base}
	cur := base
	apply := func(name string, f func(*Options)) {
		cur.Name = name
		f(&cur)
		steps = append(steps, cur)
	}
	apply("+Sched", func(o *Options) { o.HWSched = true; o.SoftwareHarvest = false })
	apply("+Queue", func(o *Options) { o.HWQueue = true })
	apply("+CtxtSw", func(o *Options) { o.HWCtxtSw = true })
	apply("+Part", func(o *Options) { o.Partition = true })
	apply("+Flush", func(o *Options) { o.EffFlush = true })
	apply("HardHarvest", func(o *Options) { o.ReplPolicy = true })
	return steps
}

// Fig13Variants returns the ablation of Figure 13: Harvest-Block plus only
// CtxtSw, only Sched, and both.
func Fig13Variants() []Options {
	base := SystemOptions(HarvestBlock)
	ctxt := base
	ctxt.Name = "+CtxtSw"
	ctxt.HWCtxtSw = true
	sched := base
	sched.Name = "+Sched"
	sched.HWSched = true
	sched.SoftwareHarvest = false
	both := sched
	both.Name = "+CtxtSw&Sched"
	both.HWCtxtSw = true
	return []Options{base, ctxt, sched, both}
}

// Fig15Steps returns the cumulative ladder of Figure 15: NoHarvest plus
// +Sched, +Queue, +CtxtSw, +ReplPolicy (no harvesting, so partitioning and
// flushing are not relevant).
func Fig15Steps() []Options {
	cur := SystemOptions(NoHarvest)
	steps := []Options{cur}
	apply := func(name string, f func(*Options)) {
		cur.Name = name
		f(&cur)
		steps = append(steps, cur)
	}
	apply("+Sched", func(o *Options) { o.HWSched = true })
	apply("+Queue", func(o *Options) { o.HWQueue = true })
	apply("+CtxtSw", func(o *Options) { o.HWCtxtSw = true })
	apply("+ReplPolicy", func(o *Options) { o.ReplPolicy = true })
	return steps
}
