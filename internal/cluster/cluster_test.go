package cluster

import (
	"testing"

	"hardharvest/internal/batch"
	"hardharvest/internal/hypervisor"
	"hardharvest/internal/sim"
)

// testConfig returns a short-horizon configuration for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupDuration = 40 * sim.Millisecond
	cfg.MeasureDuration = 400 * sim.Millisecond
	return cfg
}

func bfs(t *testing.T) *batch.Workload {
	t.Helper()
	w, err := batch.WorkloadByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSystemOptionsPresets(t *testing.T) {
	if len(Systems()) != 5 {
		t.Fatal("want 5 systems")
	}
	no := SystemOptions(NoHarvest)
	if no.Harvesting || no.HWSched {
		t.Fatalf("NoHarvest = %+v", no)
	}
	ht := SystemOptions(HarvestTerm)
	if !ht.Harvesting || !ht.SoftwareHarvest || ht.HarvestOnBlock {
		t.Fatalf("HarvestTerm = %+v", ht)
	}
	if ht.Reassign != hypervisor.ReassignOpt {
		t.Fatal("software baseline should use the optimized reassign path")
	}
	hhb := SystemOptions(HardHarvestBlock)
	if !hhb.HWSched || !hhb.HWQueue || !hhb.HWCtxtSw || !hhb.Partition || !hhb.EffFlush || !hhb.ReplPolicy {
		t.Fatalf("HardHarvestBlock = %+v", hhb)
	}
	if !hhb.HarvestOnBlock || SystemOptions(HardHarvestTerm).HarvestOnBlock {
		t.Fatal("Term/Block flag wrong")
	}
	for _, k := range Systems() {
		if k.String() == "" {
			t.Fatal("empty system name")
		}
	}
}

func TestLadders(t *testing.T) {
	steps := Fig12Steps()
	if len(steps) != 7 {
		t.Fatalf("fig12 steps = %d", len(steps))
	}
	if steps[0].Name != "Harvest-Block" || steps[6].Name != "HardHarvest" {
		t.Fatalf("fig12 endpoints: %s .. %s", steps[0].Name, steps[6].Name)
	}
	// Cumulative: each step keeps earlier features.
	last := steps[6]
	if !last.HWSched || !last.HWQueue || !last.HWCtxtSw || !last.Partition || !last.EffFlush || !last.ReplPolicy {
		t.Fatalf("fig12 final step missing features: %+v", last)
	}
	f13 := Fig13Variants()
	if len(f13) != 4 {
		t.Fatalf("fig13 variants = %d", len(f13))
	}
	if !f13[3].HWCtxtSw || !f13[3].HWSched {
		t.Fatal("fig13 combined variant wrong")
	}
	f15 := Fig15Steps()
	if len(f15) != 5 {
		t.Fatalf("fig15 steps = %d", len(f15))
	}
	for _, o := range f15 {
		if o.Harvesting {
			t.Fatal("fig15 must not harvest")
		}
	}
	if len(Fig4Variants()) != 5 || len(Fig5Variants()) != 5 {
		t.Fatal("fig4/5 variant counts")
	}
}

func TestServerRunsAndMeasures(t *testing.T) {
	cfg := testConfig()
	r := RunServer(cfg, SystemOptions(NoHarvest), bfs(t))
	if r.Requests < 1000 {
		t.Fatalf("requests = %d, too few", r.Requests)
	}
	if len(r.Service) != cfg.PrimaryVMs {
		t.Fatalf("services = %d", len(r.Service))
	}
	for name, rec := range r.Service {
		if rec.Count() < 20 {
			t.Errorf("service %s has %d samples", name, rec.Count())
		}
		if rec.P99() < rec.P50() {
			t.Errorf("service %s P99 < P50", name)
		}
		if rec.P50() <= 0 {
			t.Errorf("service %s non-positive median", name)
		}
	}
	if r.BusyCores <= 0 || r.BusyCores > float64(cfg.CoresPerServer) {
		t.Fatalf("busy cores = %v", r.BusyCores)
	}
	if r.HarvestJobs == 0 {
		t.Fatal("harvest VM ran no jobs")
	}
	if r.Reassigns != 0 {
		t.Fatal("NoHarvest must not reassign cores")
	}
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	a := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	b := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if a.AvgP99() != b.AvgP99() || a.HarvestJobs != b.HarvestJobs || a.Reassigns != b.Reassigns {
		t.Fatalf("nondeterministic: %v/%v jobs %d/%d moves %d/%d",
			a.AvgP99(), b.AvgP99(), a.HarvestJobs, b.HarvestJobs, a.Reassigns, b.Reassigns)
	}
	cfg.Seed++
	c := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if a.AvgP99() == c.AvgP99() && a.HarvestJobs == c.HarvestJobs {
		t.Fatal("different seeds produced identical results")
	}
}

// TestFig11Shape asserts the headline result: software harvesting inflates
// Primary VM tails; HardHarvest keeps them at or below NoHarvest.
func TestFig11Shape(t *testing.T) {
	cfg := testConfig()
	work := bfs(t)
	no := RunServer(cfg, SystemOptions(NoHarvest), work)
	ht := RunServer(cfg, SystemOptions(HarvestTerm), work)
	hb := RunServer(cfg, SystemOptions(HarvestBlock), work)
	hht := RunServer(cfg, SystemOptions(HardHarvestTerm), work)
	hhb := RunServer(cfg, SystemOptions(HardHarvestBlock), work)

	t.Logf("P99: no=%v ht=%v hb=%v hht=%v hhb=%v",
		no.AvgP99(), ht.AvgP99(), hb.AvgP99(), hht.AvgP99(), hhb.AvgP99())
	if ht.AvgP99() < 2*no.AvgP99() {
		t.Errorf("Harvest-Term tail %v should be well above NoHarvest %v", ht.AvgP99(), no.AvgP99())
	}
	if hb.AvgP99() < ht.AvgP99() {
		t.Errorf("Harvest-Block %v should be above Harvest-Term %v", hb.AvgP99(), ht.AvgP99())
	}
	if hht.AvgP99() > no.AvgP99() {
		t.Errorf("HardHarvest-Term %v should not exceed NoHarvest %v", hht.AvgP99(), no.AvgP99())
	}
	if hhb.AvgP99() > no.AvgP99() {
		t.Errorf("HardHarvest-Block %v should not exceed NoHarvest %v", hhb.AvgP99(), no.AvgP99())
	}
	// Tail reduction vs the software baseline (paper: 83.3%).
	red := 1 - float64(hhb.AvgP99())/float64(ht.AvgP99())
	if red < 0.5 {
		t.Errorf("HardHarvest tail reduction vs Harvest-Term = %.2f, want > 0.5", red)
	}
}

// TestUtilizationShape asserts the §6.7 ordering.
func TestUtilizationShape(t *testing.T) {
	cfg := testConfig()
	work := bfs(t)
	busy := map[SystemKind]float64{}
	for _, k := range Systems() {
		busy[k] = RunServer(cfg, SystemOptions(k), work).BusyCores
	}
	t.Logf("busy: %v", busy)
	if !(busy[NoHarvest] < busy[HarvestTerm] &&
		busy[HarvestTerm] < busy[HardHarvestBlock] &&
		busy[HardHarvestTerm] < busy[HardHarvestBlock]) {
		t.Errorf("utilization ordering broken: %v", busy)
	}
	if busy[HardHarvestBlock] < 30 {
		t.Errorf("HardHarvest-Block busy = %.1f, want near-full server", busy[HardHarvestBlock])
	}
	if busy[NoHarvest] > 16 {
		t.Errorf("NoHarvest busy = %.1f, want underutilized server", busy[NoHarvest])
	}
}

// TestThroughputShape asserts Figure 17's ordering.
func TestThroughputShape(t *testing.T) {
	cfg := testConfig()
	work := bfs(t)
	jobs := map[SystemKind]float64{}
	for _, k := range Systems() {
		jobs[k] = RunServer(cfg, SystemOptions(k), work).HarvestJobsPerSec
	}
	t.Logf("jobs/s: %v", jobs)
	if !(jobs[NoHarvest] < jobs[HarvestTerm] && jobs[HarvestTerm] < jobs[HardHarvestBlock]) {
		t.Errorf("throughput ordering broken: %v", jobs)
	}
	ratio := jobs[HardHarvestBlock] / jobs[NoHarvest]
	if ratio < 2 || ratio > 6 {
		t.Errorf("HardHarvest-Block throughput ratio = %.2f, want a few x", ratio)
	}
}

// TestMemoryIntensityShape: memory-intensive jobs gain less (Figure 17).
func TestMemoryIntensityShape(t *testing.T) {
	cfg := testConfig()
	lr, _ := batch.WorkloadByName("LRTrain")   // compute-bound
	rf, _ := batch.WorkloadByName("RndFTrain") // memory-bound
	gain := func(w *batch.Workload) float64 {
		no := RunServer(cfg, SystemOptions(NoHarvest), w).HarvestJobsPerSec
		hh := RunServer(cfg, SystemOptions(HardHarvestBlock), w).HarvestJobsPerSec
		return hh / no
	}
	glr, grf := gain(lr), gain(rf)
	t.Logf("gain LRTrain=%.2f RndFTrain=%.2f", glr, grf)
	if grf >= glr {
		t.Errorf("memory-intensive RndFTrain gain %.2f should be below LRTrain %.2f", grf, glr)
	}
}

func TestFig12Monotone(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 300 * sim.Millisecond
	work := bfs(t)
	var prev sim.Duration
	for i, o := range Fig12Steps() {
		r := RunServer(cfg, o, work)
		p99 := r.AvgP99()
		t.Logf("%-14s P99=%v", o.Name, p99)
		if i == 0 {
			prev = p99
			continue
		}
		// Each optimization must not make the tail much worse; the ladder
		// ends far below the start.
		if p99 > prev*13/10 {
			t.Errorf("step %s regressed: %v -> %v", o.Name, prev, p99)
		}
		prev = p99
	}
	first := RunServer(cfg, Fig12Steps()[0], work).AvgP99()
	last := RunServer(cfg, Fig12Steps()[6], work).AvgP99()
	if float64(last) > 0.5*float64(first) {
		t.Errorf("full ladder reduction too small: %v -> %v", first, last)
	}
}

func TestFig15Monotone(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 300 * sim.Millisecond
	work := bfs(t)
	var series []sim.Duration
	for _, o := range Fig15Steps() {
		series = append(series, RunServer(cfg, o, work).AvgP99())
	}
	t.Logf("fig15 tails: %v", series)
	for i := 1; i < len(series); i++ {
		if series[i] > series[i-1]*11/10 {
			t.Errorf("fig15 step %d regressed: %v -> %v", i, series[i-1], series[i])
		}
	}
	if float64(series[4]) > 0.95*float64(series[0]) {
		t.Errorf("fig15 cumulative gain too small: %v -> %v", series[0], series[4])
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSteps = 0 // the motivation experiments run flat load
	work := bfs(t)
	var res []*ServerResult
	for _, o := range Fig4Variants() {
		res = append(res, RunServer(cfg, o, work))
	}
	noMove := res[0].AvgP99()
	t.Logf("fig4: noMove=%v kvmT=%v kvmB=%v optT=%v optB=%v",
		noMove, res[1].AvgP99(), res[2].AvgP99(), res[3].AvgP99(), res[4].AvgP99())
	for i := 1; i < 5; i++ {
		if res[i].AvgP99() < noMove*12/10 {
			t.Errorf("%s tail %v not clearly above No-Move %v", Fig4Variants()[i].Name, res[i].AvgP99(), noMove)
		}
	}
	// Block >= Term within each cost class.
	if res[2].AvgP99() < res[1].AvgP99() {
		t.Errorf("KVM-Block %v below KVM-Term %v", res[2].AvgP99(), res[1].AvgP99())
	}
	if res[4].AvgP99() < res[3].AvgP99() {
		t.Errorf("Opt-Block %v below Opt-Term %v", res[4].AvgP99(), res[3].AvgP99())
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSteps = 0
	work := bfs(t)
	var res []*ServerResult
	for _, o := range Fig5Variants() {
		res = append(res, RunServer(cfg, o, work))
	}
	noFlush := res[0].AvgP99()
	t.Logf("fig5: noFlush=%v flushT=%v flushB=%v harvT=%v harvB=%v",
		noFlush, res[1].AvgP99(), res[2].AvgP99(), res[3].AvgP99(), res[4].AvgP99())
	for i := 1; i < 5; i++ {
		if res[i].AvgP99() < noFlush {
			t.Errorf("%s tail below No-Flush", Fig5Variants()[i].Name)
		}
	}
	// Adding the hypervisor cost on top of flushing makes things worse.
	if res[3].AvgP99() < res[1].AvgP99() {
		t.Errorf("Harvest-Term %v below Flush-Term %v", res[3].AvgP99(), res[1].AvgP99())
	}
}

func TestBreakdownAccounting(t *testing.T) {
	cfg := testConfig()
	r := RunServer(cfg, SystemOptions(HarvestBlock), bfs(t))
	re, fl, ex := r.Breakdown.Mean()
	if ex <= 0 {
		t.Fatal("no execution time recorded")
	}
	if re+fl <= 0 {
		t.Fatal("software harvesting recorded no overhead")
	}
	no := RunServer(cfg, SystemOptions(NoHarvest), bfs(t))
	nre, nfl, _ := no.Breakdown.Mean()
	if nre != 0 || nfl != 0 {
		t.Fatalf("NoHarvest overheads = %v/%v, want zero", nre, nfl)
	}
}

func TestLLCFactorSensitivity(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 200 * sim.Millisecond
	work := bfs(t)
	small := cfg
	small.LLCFactor = 1.1 // smaller LLC -> slower execution
	base := RunServer(cfg, SystemOptions(HardHarvestBlock), work)
	shrunk := RunServer(small, SystemOptions(HardHarvestBlock), work)
	if shrunk.AvgP99() <= base.AvgP99() {
		t.Errorf("smaller LLC should raise tails: %v vs %v", shrunk.AvgP99(), base.AvgP99())
	}
}

func TestRunCluster(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	cr := RunCluster(cfg, SystemOptions(HardHarvestBlock), 3)
	if len(cr.Servers) != 3 {
		t.Fatalf("servers = %d", len(cr.Servers))
	}
	if len(cr.Service) != cfg.PrimaryVMs {
		t.Fatalf("services = %d", len(cr.Service))
	}
	if len(cr.WorkloadJobsPerSec) != 3 {
		t.Fatalf("workloads = %d", len(cr.WorkloadJobsPerSec))
	}
	// Aggregated samples are the union of the per-server samples.
	total := 0
	for _, s := range cr.Servers {
		total += s.Service["Text"].Count()
	}
	if cr.Service["Text"].Count() != total {
		t.Fatalf("aggregation lost samples: %d vs %d", cr.Service["Text"].Count(), total)
	}
	if cr.AvgP99() <= 0 || cr.AvgP50() <= 0 {
		t.Fatal("cluster percentiles empty")
	}
	names := cr.ServiceNames()
	if len(names) != cfg.PrimaryVMs || names[0] > names[1] {
		t.Fatalf("service names = %v", names)
	}
	if cr.BusyCores <= 0 {
		t.Fatal("cluster busy cores empty")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.PrimaryVMs = 10 // 44 cores > 36
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversubscribed config should panic")
			}
		}()
		bad.validate()
	}()
	bad2 := DefaultConfig()
	bad2.MeasureDuration = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero measure window should panic")
			}
		}()
		bad2.validate()
	}()
	if DefaultConfig().TotalPrimaryCores() != 32 {
		t.Fatal("TotalPrimaryCores")
	}
}

func TestHWHarvestingRequiresScheduler(t *testing.T) {
	opts := SystemOptions(HardHarvestBlock)
	opts.HWSched = false
	defer func() {
		if recover() == nil {
			t.Error("hardware harvesting without +Sched should panic")
		}
	}()
	NewServer(testConfig(), opts, bfs(t))
}

func TestExtensionVariants(t *testing.T) {
	vars := ExtensionVariants()
	if len(vars) != 4 {
		t.Fatalf("variants = %d", len(vars))
	}
	cfg := testConfig()
	cfg.MeasureDuration = 250 * sim.Millisecond
	work := bfs(t)
	base := RunServer(cfg, vars[0], work)
	buf2 := RunServer(cfg, vars[2], work)
	adaptive := RunServer(cfg, vars[3], work)
	t.Logf("base: busy=%.1f jobs=%.0f | buf2: busy=%.1f jobs=%.0f | adaptive: busy=%.1f jobs=%.0f",
		base.BusyCores, base.HarvestJobsPerSec, buf2.BusyCores, buf2.HarvestJobsPerSec,
		adaptive.BusyCores, adaptive.HarvestJobsPerSec)
	// The burst buffer withholds cores: lower utilization and throughput.
	if buf2.BusyCores >= base.BusyCores {
		t.Errorf("burst buffer should reduce busy cores: %.1f vs %.1f", buf2.BusyCores, base.BusyCores)
	}
	if buf2.HarvestJobsPerSec >= base.HarvestJobsPerSec {
		t.Errorf("burst buffer should reduce throughput: %.0f vs %.0f",
			buf2.HarvestJobsPerSec, base.HarvestJobsPerSec)
	}
	// Adaptive block-harvesting reduces loan churn on short-block services.
	if adaptive.Reassigns >= base.Reassigns {
		t.Errorf("adaptive policy should reduce loans: %d vs %d", adaptive.Reassigns, base.Reassigns)
	}
}

// TestFig13Additivity: hardware scheduling and hardware context switching
// each reduce the software-harvesting tail, and applying both does at least
// as well as the better one (partially additive, §6.2).
func TestFig13Additivity(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 300 * sim.Millisecond
	work := bfs(t)
	vars := Fig13Variants()
	res := make([]sim.Duration, len(vars))
	for i, o := range vars {
		res[i] = RunServer(cfg, o, work).AvgP99()
	}
	base, ctxt, sched, both := res[0], res[1], res[2], res[3]
	t.Logf("fig13: base=%v +CtxtSw=%v +Sched=%v both=%v", base, ctxt, sched, both)
	if ctxt > base*105/100 {
		t.Errorf("+CtxtSw regressed the tail: %v vs %v", ctxt, base)
	}
	if sched >= base {
		t.Errorf("+Sched did not improve the tail: %v vs %v", sched, base)
	}
	best := ctxt
	if sched < best {
		best = sched
	}
	if both > best*11/10 {
		t.Errorf("both (%v) should do at least as well as the better single (%v)", both, best)
	}
}
