package cluster

import (
	"fmt"

	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// Remote admission: with Options.RemoteAdmission a server stops generating
// its own Primary VM arrivals and instead accepts invocations pushed by a
// fleet front door (internal/route) through AdmitRemote. The server still
// owns everything downstream of admission — NIC deposit, queueing, load
// shedding, execution, faults — and reports each remote request's fate back
// through the RemoteHooks callbacks so the front door can account for
// failover and conservation without reaching into server internals.

// remoteSeedSalt derives the remote-admission sampling stream from the
// server seed. A fresh root (not a Split of the server's shared root) keeps
// routerless runs stream-identical to builds without routing support.
const remoteSeedSalt = 0xa24baed4963ee407

// RemoteHooks carries the callbacks a front door registers to learn the
// fate of remotely admitted requests and of the server as a whole. The
// callbacks run synchronously inside the server's event handlers, on the
// server's engine; a cross-member front door must forward them over
// ShardGroup.Send edges rather than touch router state directly.
type RemoteHooks struct {
	// Done fires when a remotely admitted request completes, with the
	// admission-to-completion latency on this server.
	Done func(remoteID uint64, latency sim.Duration)
	// Shed fires when queue-depth admission control rejects a remotely
	// admitted request at the door.
	Shed func(remoteID uint64)
	// Crash fires on whole-server crash (down=true) and recovery
	// (down=false) edges; overlapping crash windows produce exactly one
	// down/up pair. Consulted even without RemoteAdmission.
	Crash func(down bool)
}

// AdmitRemote admits one front-door-dispatched invocation for Primary VM
// vm. The invocation's phases are sampled server-side from the VM's service
// profile on the dedicated remote stream, so the dispatch message carries
// only the VM index and the front door's attempt id. Requires
// Options.RemoteAdmission.
func (s *Server) AdmitRemote(vm int, remoteID uint64) {
	if s.remoteRNG == nil {
		panic("cluster: AdmitRemote requires Options.RemoteAdmission")
	}
	if vm < 0 || vm >= s.harvestIdx {
		panic(fmt.Sprintf("cluster: AdmitRemote: VM %d out of primary range", vm))
	}
	if remoteID == 0 {
		panic("cluster: AdmitRemote: remoteID must be non-zero")
	}
	v := s.vms[vm]
	inv := v.gen.Profile().SampleInto(s.remoteRNG, &s.remoteScratch)
	_, nicLat, err := s.nicDev.Deposit(v.idx, 256)
	if err != nil {
		panic(err)
	}
	if !s.opts.HWQueue {
		nicLat += s.cfg.SWQueueAccess
	}
	s.reqSeq++
	s.arrivals++
	r := s.newRequest()
	r.id = s.reqSeq
	r.vmIdx = v.idx
	// Copy: inv.Phases aliases the sampling scratch, and the pooled request
	// recycles its own phase slice.
	r.phases = append(r.phases[:0], inv.Phases...)
	r.arrival = s.now()
	r.measured = s.measuring()
	r.remoteID = remoteID
	s.setReqState(r, rsTransit)
	if s.obs != nil {
		s.ev(obs.KindArrival, r, -1, nicLat)
	}
	s.eng.ScheduleCall(nicLat, s, opArrivalReady, nil, r)
}

// shedRemote rejects a remotely admitted attempt at the door (queue-depth
// admission control) and reports the rejection to the front door, which
// owns the retry policy.
func (s *Server) shedRemote(r *request) {
	s.sheds++
	if s.obs != nil {
		s.ev(obs.KindShed, r, -1, 0)
	}
	remoteID := r.remoteID
	s.freeRequest(r)
	if s.opts.Remote.Shed != nil {
		s.opts.Remote.Shed(remoteID)
	}
}

// SetRemoteHooks installs the front door's callbacks. Call before Start:
// the hooks observe admission, completion, and crash edges from the first
// event on.
func (s *Server) SetRemoteHooks(h RemoteHooks) { s.opts.Remote = h }

// Crashed reports whether the server currently sits inside an injected
// whole-server crash window.
func (s *Server) Crashed() bool { return s.crashDepth > 0 }
