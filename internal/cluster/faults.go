package cluster

import (
	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// Fault-injection runtime: Config.FaultPlan is expanded into a concrete
// event schedule at Run() time (a pure function of the plan and the server
// seed) and every injection is pre-registered through the engine's typed
// allocation-free event path, so a fault-free run pays nothing and a
// faulty run pays no per-event allocation.

// scheduleFaults expands the plan over the run horizon and registers one
// opFaultBegin per injection.
func (s *Server) scheduleFaults(horizon sim.Time) {
	evs := s.cfg.FaultPlan.Expand(s.cfg.Seed, len(s.cores), sim.Duration(horizon))
	if len(evs) == 0 {
		return
	}
	s.faultEvs = evs
	for i := range s.faultEvs {
		s.eng.CallAt(s.faultEvs[i].At, s, opFaultBegin, nil, &s.faultEvs[i])
	}
}

// faultCore maps a plan core index onto the server's cores.
func (s *Server) faultCore(idx int) *coreRT {
	n := len(s.cores)
	return &s.cores[((idx%n)+n)%n]
}

// evFault emits the KindFault observer event for one injection.
func (s *Server) evFault(ev *faults.Event, c *coreRT) {
	if s.obs == nil {
		return
	}
	e := obs.Event{Kind: obs.KindFault, Time: s.now(), VM: -1, Core: -1, Dur: ev.Dur}
	if c != nil {
		e.VM = c.owner
		e.Core = c.id
	}
	s.obs.Observe(e)
}

// faultBegin applies one injection.
func (s *Server) faultBegin(ev *faults.Event) {
	s.faultsInjected++
	switch ev.Kind {
	case faults.CoreDegrade:
		c := s.faultCore(ev.Core)
		s.evFault(ev, c)
		c.degradeDepth++
		c.degradeFactor *= ev.Factor
		s.eng.ScheduleCall(ev.Dur, s, opFaultEnd, nil, ev)
	case faults.CoreOffline:
		c := s.faultCore(ev.Core)
		s.evFault(ev, c)
		s.coreOffline(c)
		s.eng.ScheduleCall(ev.Dur, s, opFaultEnd, nil, ev)
	case faults.IOStraggler:
		s.evFault(ev, nil)
		// Overlapping stragglers: the latest factor wins, the active window
		// extends to the furthest end.
		s.faultIOFactor = ev.Factor
		if until := s.now().Add(ev.Dur); until > s.faultIOUntil {
			s.faultIOUntil = until
		}
	case faults.PreemptStorm:
		s.evFault(ev, nil)
		s.preemptStorm(ev.Count)
	case faults.ServerCrash:
		s.evFault(ev, nil)
		// Overlapping crash windows nest at the server level: cores go
		// offline on the first edge only and come back on the last recovery
		// (faultEnd), so a second crash landing inside the first's window
		// extends the outage instead of double-restarting the server. The
		// edges also notify a front door watching the server.
		s.crashDepth++
		if s.crashDepth == 1 {
			for i := range s.cores {
				c := &s.cores[i]
				s.coreOffline(c)
			}
			if s.opts.Remote.Crash != nil {
				s.opts.Remote.Crash(true)
			}
		}
		s.eng.ScheduleCall(ev.Dur, s, opFaultEnd, nil, ev)
	}
}

// faultEnd lifts a bounded injection.
func (s *Server) faultEnd(ev *faults.Event) {
	switch ev.Kind {
	case faults.CoreDegrade:
		c := s.faultCore(ev.Core)
		c.degradeDepth--
		if c.degradeDepth == 0 {
			c.degradeFactor = 1 // avoid drift from repeated multiply/divide
		} else {
			c.degradeFactor /= ev.Factor
		}
	case faults.CoreOffline:
		s.coreOnline(s.faultCore(ev.Core))
	case faults.ServerCrash:
		s.crashDepth--
		if s.crashDepth == 0 {
			for i := range s.cores {
				c := &s.cores[i]
				s.coreOnline(c)
			}
			if s.opts.Remote.Crash != nil {
				s.opts.Remote.Crash(false)
			}
		}
	}
}

// coreOffline removes a core from service. Overlapping faults nest via
// offlineDepth (a crash over a core-offline must not bring the core back
// when the shorter fault ends). Running work is interrupted and requeued;
// in-flight dispatch-path events are gated at their handlers.
func (s *Server) coreOffline(c *coreRT) {
	c.offlineDepth++
	if c.offlineDepth != 1 {
		return
	}
	if (c.kind == cRunOwn || c.kind == cRunLoaned) && c.cur != nil {
		s.interruptBurst(c)
	}
	c.idleEligible = false
}

// coreOnline returns a core to service and, if it sits idle, has it pick
// up work (requeued interrupted requests included).
func (s *Server) coreOnline(c *coreRT) {
	c.offlineDepth--
	if c.offlineDepth != 0 {
		return
	}
	if c.kind == cIdle && !c.pendingWake {
		s.dispatch(c, false)
	}
}

// interruptBurst evicts the request a core is running (fail-stop: the
// work is requeued with its remaining demand, nothing is lost). Jobs take
// the established abort path; primary requests are trimmed and requeued
// at the head of their VM's queue just like a preempted job.
func (s *Server) interruptBurst(c *coreRT) {
	r := c.cur
	elapsed := s.now().Sub(c.burstStart)
	s.eng.Cancel(c.burstEv)
	c.burstEv = sim.Event{}
	s.setBusy(c, false)
	r.exec += elapsed
	if r.isJob {
		s.activeJobs--
		s.abortJob(c, r, elapsed)
	} else {
		s.trimRemainder(r, elapsed, c.burstScaled)
		if s.obs != nil {
			s.ev(obs.KindAbort, r, c.id, elapsed)
		}
		s.be.preempt(c.id, r)
		s.setReqState(r, rsQueued)
		s.vms[r.vmIdx].running--
		c.cur = nil
	}
	s.setCoreKind(c, cIdle)
	c.idleEligible = false
	if s.obs != nil {
		s.evCore(obs.KindCoreIdle, c, 0)
	}
}

// preemptStorm fires reclamation at up to count cores currently running
// loaned harvest work: the hardware path delivers reclamation interrupts,
// the software path starts hypervisor reclaims for the owner VMs.
func (s *Server) preemptStorm(count int) {
	for i := range s.cores {
		c := &s.cores[i]
		if count <= 0 {
			return
		}
		if c.kind != cRunLoaned || c.offlineDepth > 0 {
			continue
		}
		if s.hw != nil {
			s.schedulePreempt(c)
		} else {
			s.startReclaim(s.vms[c.owner])
		}
		count--
	}
}
