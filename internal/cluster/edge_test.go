package cluster

import (
	"testing"

	"hardharvest/internal/sim"
)

// Edge-case and stress tests: degenerate shapes, overloads, and overflow
// storms must complete without deadlock and with sane accounting.

func TestOverloadDoesNotDeadlock(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	cfg.LoadScale = 12 // far beyond capacity: queues grow, sim must finish
	for _, k := range []SystemKind{NoHarvest, HarvestBlock, HardHarvestBlock} {
		r := RunServer(cfg, SystemOptions(k), bfs(t))
		if r.Requests == 0 {
			t.Fatalf("%v: no requests completed under overload", k)
		}
		if r.AvgP99() <= r.AvgP50() {
			t.Fatalf("%v: degenerate distribution under overload", k)
		}
		// Under overload the primary cores saturate.
		if r.BusyCores < 20 {
			t.Errorf("%v: busy = %.1f under overload", k, r.BusyCores)
		}
	}
}

func TestNearZeroLoad(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 200 * sim.Millisecond
	cfg.LoadScale = 0.05
	r := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if r.Requests == 0 {
		t.Fatal("no requests at low load")
	}
	// With almost no primary work, nearly the whole server harvests.
	if r.BusyCores < 30 {
		t.Errorf("busy = %.1f, want near-full harvesting", r.BusyCores)
	}
}

func TestSinglePrimaryVM(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	cfg.PrimaryVMs = 1
	cfg.CoresPerPrimary = 4
	for _, k := range Systems() {
		r := RunServer(cfg, SystemOptions(k), bfs(t))
		if len(r.Service) != 1 {
			t.Fatalf("%v: services = %d", k, len(r.Service))
		}
		if r.Requests == 0 {
			t.Fatalf("%v: no requests", k)
		}
	}
}

func TestWidePrimaryVMs(t *testing.T) {
	// 4 VMs x 8 cores exercises a different chunk-allocation shape.
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	cfg.PrimaryVMs = 4
	cfg.CoresPerPrimary = 8
	r := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if r.Requests == 0 || r.HarvestJobs == 0 {
		t.Fatal("wide-VM config did not run")
	}
}

func TestInactiveHarvestVM(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	opts := SystemOptions(HardHarvestBlock)
	opts.HarvestVMActive = false
	r := RunServer(cfg, opts, bfs(t))
	if r.HarvestJobs != 0 {
		t.Fatalf("idle harvest VM completed %d jobs", r.HarvestJobs)
	}
	if r.Requests == 0 {
		t.Fatal("primary work did not run")
	}
}

func TestOverflowStorm(t *testing.T) {
	// Overload the hardware path so subqueues spill into the in-memory
	// overflow; FIFO and conservation are the controller's property tests'
	// job — here we assert the full system stays live and latencies are
	// finite.
	cfg := testConfig()
	cfg.MeasureDuration = 120 * sim.Millisecond
	cfg.LoadScale = 20
	r := RunServer(cfg, SystemOptions(HardHarvestTerm), bfs(t))
	if r.Requests < 100 {
		t.Fatalf("storm completed only %d requests", r.Requests)
	}
	if r.AvgP99() <= 0 {
		t.Fatal("no tail measured")
	}
}

func TestSoftwareStormWithKVMCosts(t *testing.T) {
	// Event-driven KVM moves under heavy load: the move lock saturates but
	// the simulation must drain and pinned requests must be released by
	// the guest-migration cap.
	cfg := testConfig()
	cfg.MeasureDuration = 120 * sim.Millisecond
	cfg.TraceSteps = 0
	opts := Fig4Variants()[1] // KVM-Term
	cfg.LoadScale = 6
	r := RunServer(cfg, opts, bfs(t))
	if r.Requests == 0 {
		t.Fatal("no requests under software storm")
	}
	if r.Pins > 0 && r.MeanPinWait > 2*sim.Duration(cfg.GuestMigrateDelay) {
		t.Fatalf("pinned waits exceed the migration cap: %v", r.MeanPinWait)
	}
}

func TestSeedSweepStability(t *testing.T) {
	// The headline ordering must hold across seeds, not just seed 1.
	cfg := testConfig()
	cfg.MeasureDuration = 250 * sim.Millisecond
	work := bfs(t)
	for seed := uint64(2); seed <= 4; seed++ {
		cfg.Seed = seed
		no := RunServer(cfg, SystemOptions(NoHarvest), work)
		ht := RunServer(cfg, SystemOptions(HarvestTerm), work)
		hhb := RunServer(cfg, SystemOptions(HardHarvestBlock), work)
		if ht.AvgP99() <= no.AvgP99() {
			t.Errorf("seed %d: software tail %v not above NoHarvest %v", seed, ht.AvgP99(), no.AvgP99())
		}
		if hhb.AvgP99() >= ht.AvgP99() {
			t.Errorf("seed %d: HardHarvest %v not below software %v", seed, hhb.AvgP99(), ht.AvgP99())
		}
		if hhb.BusyCores <= no.BusyCores {
			t.Errorf("seed %d: harvesting did not raise utilization", seed)
		}
	}
}

func TestRequestConservation(t *testing.T) {
	cfg := testConfig()
	cfg.MeasureDuration = 250 * sim.Millisecond
	for _, k := range Systems() {
		r := RunServer(cfg, SystemOptions(k), bfs(t))
		if r.Requests > r.Arrivals {
			t.Fatalf("%v: completed %d > arrived %d", k, r.Requests, r.Arrivals)
		}
		// The grace window drains the vast majority of in-flight work.
		if float64(r.Requests) < 0.97*float64(r.Arrivals) {
			t.Errorf("%v: only %d of %d arrivals completed", k, r.Requests, r.Arrivals)
		}
	}
}
