package cluster

import (
	"testing"

	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
)

// crashEdge records one Remote.Crash notification with its simulated time.
type crashEdge struct {
	down bool
	at   sim.Time
}

func crashRun(t *testing.T, events []faults.ScriptedEvent) []crashEdge {
	t.Helper()
	var srv *Server
	var edges []crashEdge
	cfg := liveConfig()
	cfg.Strict = true
	cfg.FaultPlan = &faults.Plan{Events: events}
	opts := SystemOptions(HardHarvestBlock)
	opts.Remote.Crash = func(down bool) {
		edges = append(edges, crashEdge{down: down, at: srv.Now()})
	}
	srv = NewServer(cfg, opts, bfs(t))
	res := srv.Run()
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %s", res.InvariantViolations, res.FirstViolation)
	}
	return edges
}

// TestOverlappingCrashExtendsDowntime pins the recovery timeline for nested
// whole-server crash windows: a second crash landing inside the first's
// duration extends the outage and produces exactly one down/up pair — the
// inner window's end must not restart the server early.
func TestOverlappingCrashExtendsDowntime(t *testing.T) {
	ms := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Millisecond) }

	// Inner window [15,17) inside [10,20): recovery at 20ms.
	edges := crashRun(t, []faults.ScriptedEvent{
		{AtMS: 10, Kind: "crash", DurationMS: 10},
		{AtMS: 15, Kind: "crash", DurationMS: 2},
	})
	want := []crashEdge{{down: true, at: ms(10)}, {down: false, at: ms(20)}}
	if len(edges) != len(want) {
		t.Fatalf("crash edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("crash edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}

	// Overlapping window [15,30) past [10,20): downtime extends to 30ms.
	edges = crashRun(t, []faults.ScriptedEvent{
		{AtMS: 10, Kind: "crash", DurationMS: 10},
		{AtMS: 15, Kind: "crash", DurationMS: 15},
	})
	want = []crashEdge{{down: true, at: ms(10)}, {down: false, at: ms(30)}}
	if len(edges) != len(want) {
		t.Fatalf("crash edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("crash edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}

	// Disjoint windows stay two independent outages.
	edges = crashRun(t, []faults.ScriptedEvent{
		{AtMS: 10, Kind: "crash", DurationMS: 5},
		{AtMS: 25, Kind: "crash", DurationMS: 5},
	})
	want = []crashEdge{
		{down: true, at: ms(10)}, {down: false, at: ms(15)},
		{down: true, at: ms(25)}, {down: false, at: ms(30)},
	}
	if len(edges) != len(want) {
		t.Fatalf("crash edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("crash edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}
}

// TestCrashedAccessor: Crashed() tracks the nested crash depth.
func TestCrashedAccessor(t *testing.T) {
	cfg := liveConfig()
	cfg.FaultPlan = &faults.Plan{Events: []faults.ScriptedEvent{
		{AtMS: 10, Kind: "crash", DurationMS: 10},
		{AtMS: 15, Kind: "crash", DurationMS: 2},
	}}
	s := NewServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	s.Start()
	at := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Millisecond) }
	for _, tc := range []struct {
		to   sim.Time
		want bool
	}{
		{at(5), false}, {at(12), true}, {at(16), true}, {at(18), true},
		{at(21), false},
	} {
		s.StepTo(tc.to)
		if got := s.Crashed(); got != tc.want {
			t.Fatalf("Crashed() at %v = %v, want %v", tc.to, got, tc.want)
		}
	}
	s.StepTo(s.Horizon())
	s.Finish()
}

// TestRemoteAdmission drives the front-door entry point end to end on one
// server: remote admissions run the full NIC/queue/execute pipeline, report
// completions with positive latency through Remote.Done, and local primary
// generators stay off.
func TestRemoteAdmission(t *testing.T) {
	cfg := liveConfig()
	cfg.Strict = true
	opts := SystemOptions(HardHarvestBlock)
	opts.RemoteAdmission = true
	done := map[uint64]sim.Duration{}
	opts.Remote.Done = func(id uint64, lat sim.Duration) { done[id] = lat }
	opts.Remote.Shed = func(id uint64) { t.Fatalf("unexpected shed of %d", id) }
	s := NewServer(cfg, opts, bfs(t))
	s.Start()

	const n = 200
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		vm := i % cfg.PrimaryVMs
		at := sim.Time(0).Add(sim.Duration(i) * 100 * sim.Microsecond)
		s.Engine().At(at, func() { s.AdmitRemote(vm, id) })
	}
	s.StepTo(s.Horizon())
	res := s.Finish()

	if res.Arrivals != n {
		t.Fatalf("arrivals = %d, want %d (local generators must stay off)", res.Arrivals, n)
	}
	if len(done) != n || res.Requests != n {
		t.Fatalf("completions: hooks=%d requests=%d, want %d", len(done), res.Requests, n)
	}
	for id, lat := range done {
		if lat <= 0 {
			t.Fatalf("request %d completed with non-positive latency %v", id, lat)
		}
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %s", res.InvariantViolations, res.FirstViolation)
	}
	if res.HarvestJobs == 0 {
		t.Fatal("harvest VM idle under remote admission")
	}
}

// TestRemoteAdmissionShed: queue-depth admission control applies to remote
// attempts and reports rejections through Remote.Shed.
func TestRemoteAdmissionShed(t *testing.T) {
	cfg := liveConfig()
	opts := SystemOptions(HardHarvestBlock)
	opts.RemoteAdmission = true
	opts.Resilience.MaxQueueDepth = 2
	var dones, sheds int
	opts.Remote.Done = func(uint64, sim.Duration) { dones++ }
	opts.Remote.Shed = func(uint64) { sheds++ }
	s := NewServer(cfg, opts, bfs(t))
	s.Start()

	// A synchronized burst at one VM must overflow the depth budget.
	const n = 64
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		s.Engine().At(sim.Time(0).Add(sim.Millisecond), func() { s.AdmitRemote(0, id) })
	}
	s.StepTo(s.Horizon())
	res := s.Finish()
	if sheds == 0 {
		t.Fatal("burst past MaxQueueDepth shed nothing")
	}
	if dones+sheds != n {
		t.Fatalf("done %d + shed %d != admitted %d", dones, sheds, n)
	}
	if res.Sheds != uint64(sheds) {
		t.Fatalf("result sheds %d, hook sheds %d", res.Sheds, sheds)
	}
}

// TestRemoteAdmissionGuards: the entry point rejects misuse loudly.
func TestRemoteAdmissionGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	plain := NewServer(liveConfig(), SystemOptions(HardHarvestBlock), bfs(t))
	mustPanic("AdmitRemote without RemoteAdmission", func() { plain.AdmitRemote(0, 1) })

	opts := SystemOptions(HardHarvestBlock)
	opts.RemoteAdmission = true
	s := NewServer(liveConfig(), opts, bfs(t))
	mustPanic("harvest-VM admission", func() { s.AdmitRemote(s.harvestIdx, 1) })
	mustPanic("zero remote id", func() { s.AdmitRemote(0, 0) })
}
