package cluster

import (
	"sort"
	"sync"

	"hardharvest/internal/batch"
	"hardharvest/internal/metrics"
	"hardharvest/internal/sim"
)

// RunServer simulates one server with the given batch workload.
func RunServer(cfg Config, opts Options, work *batch.Workload) *ServerResult {
	return NewServer(cfg, opts, work).Run()
}

// ClusterResult aggregates the 8-server cluster: each server runs a
// different Harvest VM batch workload; per-service latency is aggregated
// across servers (each server hosts an instance of every service, §5).
type ClusterResult struct {
	System string
	// Servers holds the individual results in workload order.
	Servers []*ServerResult
	// Service aggregates latencies across servers.
	Service map[string]*metrics.LatencyRecorder
	// WorkloadJobsPerSec maps each batch workload to its throughput.
	WorkloadJobsPerSec map[string]float64
	// BusyCores is the average busy core count per server.
	BusyCores float64
}

// RunCluster simulates the full 8-server cluster of the evaluation. The
// servers never communicate (microservices only talk within a server, §5),
// so they run in parallel, one per batch workload. servers limits the count
// (0 or >8 runs all 8).
func RunCluster(cfg Config, opts Options, servers int) *ClusterResult {
	works := batch.Workloads()
	if servers <= 0 || servers > len(works) {
		servers = len(works)
	}
	results := make([]*ServerResult, servers)
	if opts.ServerObserver != nil {
		// Per-server observers: resolve them here, in server order, on the
		// calling goroutine — providers may rely on call order (e.g. stable
		// trace process IDs) — then run the servers in parallel, each owning
		// its private observer.
		resolved := make([]Observer, servers)
		for i := 0; i < servers; i++ {
			resolved[i] = opts.ServerObserver(i, works[i].Name)
		}
		var wg sync.WaitGroup
		for i := 0; i < servers; i++ {
			i := i
			scfg := cfg
			scfg.Seed = cfg.Seed + uint64(i)*7919
			sopts := opts
			sopts.Observer = resolved[i]
			sopts.ServerObserver = nil
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i] = RunServer(scfg, sopts, works[i])
			}()
		}
		wg.Wait()
		return aggregate(opts.Name, results)
	}
	if opts.Observer != nil {
		// A single shared observer is single-goroutine: the instrumented
		// cluster runs its servers sequentially so the one observer sees a
		// coherent stream (server runs stay individually deterministic
		// either way).
		for i := 0; i < servers; i++ {
			scfg := cfg
			scfg.Seed = cfg.Seed + uint64(i)*7919
			results[i] = RunServer(scfg, opts, works[i])
		}
		return aggregate(opts.Name, results)
	}
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		i := i
		scfg := cfg
		scfg.Seed = cfg.Seed + uint64(i)*7919
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = RunServer(scfg, opts, works[i])
		}()
	}
	wg.Wait()
	return aggregate(opts.Name, results)
}

func aggregate(system string, results []*ServerResult) *ClusterResult {
	cr := &ClusterResult{
		System:             system,
		Servers:            results,
		Service:            make(map[string]*metrics.LatencyRecorder),
		WorkloadJobsPerSec: make(map[string]float64),
	}
	for _, r := range results {
		for svc, rec := range r.Service {
			agg, ok := cr.Service[svc]
			if !ok {
				// The aggregate adopts the mode of its sources: sketch
				// recorders fold into a sketch aggregate, exact into exact.
				if rec.Sketched() {
					agg = metrics.NewLatencySketch()
				} else {
					agg = metrics.NewLatencyRecorder()
				}
				cr.Service[svc] = agg
			}
			agg.Merge(rec)
		}
		cr.WorkloadJobsPerSec[r.Workload] = r.HarvestJobsPerSec
		cr.BusyCores += r.BusyCores
	}
	for _, agg := range cr.Service {
		agg.Freeze()
	}
	if len(results) > 0 {
		cr.BusyCores /= float64(len(results))
	}
	return cr
}

// ServiceNames returns the aggregated service names sorted alphabetically.
func (cr *ClusterResult) ServiceNames() []string {
	names := make([]string, 0, len(cr.Service))
	for n := range cr.Service {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AvgP99 reports the mean of per-service P99 latencies.
func (cr *ClusterResult) AvgP99() sim.Duration {
	var sum sim.Duration
	n := 0
	for _, rec := range cr.Service {
		sum += rec.P99()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

// AvgP50 reports the mean of per-service median latencies.
func (cr *ClusterResult) AvgP50() sim.Duration {
	var sum sim.Duration
	n := 0
	for _, rec := range cr.Service {
		sum += rec.P50()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}
