package cluster

import (
	"fmt"

	"hardharvest/internal/core"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// request is the cluster-side view of one unit of work: a Primary VM
// microservice invocation (multiple CPU/IO phases) or a Harvest VM batch job
// (one CPU phase, possibly preempted and resumed).
type request struct {
	id      uint64
	vmIdx   int
	phases  []workload.Phase
	phase   int
	arrival sim.Time
	// measured marks requests arriving inside the measurement window.
	measured bool
	// isJob marks Harvest VM batch jobs.
	isJob bool
	// resuming marks a request waiting, pinned, to continue after blocking
	// I/O (it re-enters the queue through unblock, not enqueue).
	resuming bool
	// state is the invariant checker's exclusive lifecycle state; every
	// change goes through Server.setReqState.
	state reqState
	// call links an attempt back to its resilient logical call; nil for
	// jobs and for requests issued with resilience policies disabled.
	call *call
	// isHedge marks the speculative duplicate attempt of a hedged call.
	isHedge bool
	// remoteID links a remotely admitted request (Options.RemoteAdmission)
	// back to the router's attempt record; zero for locally generated work.
	remoteID uint64

	// Critical-path overhead attribution (Figure 6).
	reassign sim.Duration
	flush    sim.Duration
	exec     sim.Duration

	// hw is the controller-side request object (hardware backend only).
	hw *core.Request

	// gen counts how many times this object has been recycled through the
	// server's request pool. Event payloads that may outlive the request
	// (pin releases) capture the generation and no-op on a mismatch, so a
	// stale event can never act on the slot's next occupant.
	gen uint32
}

func (r *request) currentPhase() workload.Phase { return r.phases[r.phase] }

// wakeInfo is a backend's notification decision after new work arrived. It
// is passed by value (with an ok flag) so the per-enqueue hot path does not
// allocate.
type wakeInfo struct {
	core    int
	preempt bool
}

// backend abstracts the queueing substrate: the HardHarvest controller for
// hardware systems (including NoHarvest-with-optimizations), or plain
// software queues for the SmartHarvest-style baselines.
type backend interface {
	// enqueue stores a ready request and returns the wake decision; ok is
	// false when the backend decided nothing.
	enqueue(r *request) (wake wakeInfo, ok bool)
	// dequeue hands the core its next request; allowLoan permits cross-VM
	// harvesting on the hardware path. Returns nil when no work exists.
	dequeue(coreID int, allowLoan bool) (r *request, crossVM bool)
	// dequeueFrom force-dequeues from a specific VM's queue (software
	// lending path).
	dequeueFrom(vmIdx, coreID int) *request
	// complete releases a finished request.
	complete(coreID int, r *request)
	// block parks a running request on I/O.
	block(coreID int, r *request)
	// unblock readies a blocked request and returns the wake decision.
	unblock(r *request) (wake wakeInfo, ok bool)
	// preempt aborts the harvest request a core is running and requeues it
	// at the head of its VM's queue (hardware reclamation path).
	preempt(coreID int, r *request)
	// readyLen reports the ready requests queued for a VM.
	readyLen(vmIdx int) int
}

// hwBackend adapts the core.Controller.
type hwBackend struct {
	ctrl *core.Controller
	reqs map[core.ReqID]*request
	next core.ReqID
	// hwFree recycles controller-side request objects: one is live per
	// in-flight request, so completions feed enqueues without allocating.
	hwFree []*core.Request
}

func newHWBackend(cfg Config) *hwBackend {
	ctrl := core.DefaultController()
	b := &hwBackend{ctrl: ctrl, reqs: make(map[core.ReqID]*request)}
	return b
}

func (b *hwBackend) addVM(vmIdx int, isPrimary bool, mask core.HarvestMask) {
	if err := b.ctrl.AddVM(core.VMID(vmIdx), isPrimary, mask); err != nil {
		panic(err)
	}
}

func (b *hwBackend) bindCore(coreID, vmIdx int) {
	if err := b.ctrl.BindCore(core.CoreID(coreID), core.VMID(vmIdx)); err != nil {
		panic(err)
	}
}

func (b *hwBackend) enqueue(r *request) (wakeInfo, bool) {
	b.next++
	hw := b.allocHW()
	*hw = core.Request{ID: b.next, VM: core.VMID(r.vmIdx), PayloadAddr: uint64(r.id) << 6}
	r.hw = hw
	b.reqs[r.hw.ID] = r
	_, wake, err := b.ctrl.Enqueue(core.VMID(r.vmIdx), r.hw)
	if err != nil {
		panic(err)
	}
	return toWake(wake)
}

func (b *hwBackend) allocHW() *core.Request {
	if n := len(b.hwFree); n > 0 {
		hw := b.hwFree[n-1]
		b.hwFree = b.hwFree[:n-1]
		return hw
	}
	return new(core.Request)
}

func toWake(w core.WakeDecision) (wakeInfo, bool) {
	if !w.Valid {
		return wakeInfo{}, false
	}
	return wakeInfo{core: int(w.Core), preempt: w.Preempt}, true
}

func (b *hwBackend) dequeue(coreID int, allowLoan bool) (*request, bool) {
	hr, _, cross, err := b.ctrl.Dequeue(core.CoreID(coreID), allowLoan)
	if err != nil {
		panic(err)
	}
	if hr == nil {
		return nil, false
	}
	return b.reqs[hr.ID], cross
}

func (b *hwBackend) dequeueFrom(vmIdx, coreID int) *request {
	panic("cluster: dequeueFrom is a software-lending operation")
}

func (b *hwBackend) complete(coreID int, r *request) {
	if err := b.ctrl.Complete(core.CoreID(coreID), r.hw); err != nil {
		panic(err)
	}
	delete(b.reqs, r.hw.ID)
	b.hwFree = append(b.hwFree, r.hw)
	r.hw = nil
}

func (b *hwBackend) block(coreID int, r *request) {
	if err := b.ctrl.Block(core.CoreID(coreID), r.hw); err != nil {
		panic(err)
	}
}

func (b *hwBackend) unblock(r *request) (wakeInfo, bool) {
	wake, err := b.ctrl.Unblock(core.VMID(r.vmIdx), r.hw)
	if err != nil {
		panic(err)
	}
	return toWake(wake)
}

func (b *hwBackend) preempt(coreID int, r *request) {
	pre, err := b.ctrl.PreemptCore(core.CoreID(coreID))
	if err != nil {
		panic(err)
	}
	if pre != r.hw {
		panic(fmt.Sprintf("cluster: preempted %v, expected %v", pre.ID, r.hw.ID))
	}
}

func (b *hwBackend) readyLen(vmIdx int) int {
	qm := b.ctrl.QM(core.VMID(vmIdx))
	if qm == nil {
		return 0
	}
	return qm.ReadyLen()
}

// swBackend is the software path: per-VM FIFO queues in memory. Blocked
// requests live off-queue; unblocked requests rejoin at the head (they are
// older than anything queued behind them).
type swBackend struct {
	queues  [][]*request
	binding []int // coreID -> vmIdx
}

func newSWBackend(numVMs, numCores int) *swBackend {
	b := &swBackend{queues: make([][]*request, numVMs), binding: make([]int, numCores)}
	for i := range b.binding {
		b.binding[i] = -1
	}
	return b
}

func (b *swBackend) bindCore(coreID, vmIdx int) { b.binding[coreID] = vmIdx }

func (b *swBackend) enqueue(r *request) (wakeInfo, bool) {
	b.queues[r.vmIdx] = append(b.queues[r.vmIdx], r)
	// Software systems have no hardware notification: the server layer
	// implements polling discovery.
	return wakeInfo{}, false
}

func (b *swBackend) dequeue(coreID int, allowLoan bool) (*request, bool) {
	vm := b.binding[coreID]
	if vm < 0 {
		return nil, false
	}
	return b.pop(vm), false
}

func (b *swBackend) pop(vmIdx int) *request {
	q := b.queues[vmIdx]
	if len(q) == 0 {
		return nil
	}
	r := q[0]
	b.queues[vmIdx] = q[1:]
	return r
}

func (b *swBackend) dequeueFrom(vmIdx, coreID int) *request {
	return b.pop(vmIdx)
}

func (b *swBackend) complete(coreID int, r *request) {}

func (b *swBackend) block(coreID int, r *request) {}

func (b *swBackend) unblock(r *request) (wakeInfo, bool) {
	// Rejoin at the head: the request is older than queued work.
	b.queues[r.vmIdx] = append([]*request{r}, b.queues[r.vmIdx]...)
	return wakeInfo{}, false
}

func (b *swBackend) preempt(coreID int, r *request) {
	b.queues[r.vmIdx] = append([]*request{r}, b.queues[r.vmIdx]...)
}

func (b *swBackend) readyLen(vmIdx int) int { return len(b.queues[vmIdx]) }
