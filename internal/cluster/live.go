package cluster

import (
	"fmt"

	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Live-control surface for long-running (served) simulations.
//
// A batch run calls Run() and never touches anything here; a served run
// calls Start, then alternates StepTo with the accessors and mutators below.
// Every mutator must only be invoked between StepTo calls (at a simulated-
// time barrier): the engine is single-threaded and the caller owns the
// serialization. Mutations are designed so that a run that never calls them
// is byte-identical to a plain Run — no extra events, no extra RNG draws,
// no floating-point perturbation (intensity starts at exactly 1.0 and
// multiplying by 1.0 is an IEEE-754 identity).

// Now reports the current simulated time.
func (s *Server) Now() sim.Time { return s.eng.Now() }

// Horizon reports the run's end time. Valid after Start.
func (s *Server) Horizon() sim.Time { return s.horizon }

// MeasureWindow reports the measurement window edges. Valid after Start.
func (s *Server) MeasureWindow() (start, end sim.Time) {
	return s.measureStart, s.measureEnd
}

// Engine exposes the server's event engine for shard-group membership
// (sim.ShardGroup reads its event floor between advance windows). The
// engine remains owned by the server: callers must not execute events on it
// directly — advance the server with StepTo as usual.
func (s *Server) Engine() *sim.Engine { return s.eng }

// EventsFired reports how many engine events have executed so far.
func (s *Server) EventsFired() uint64 { return s.eng.Fired() }

// EventsPending reports how many engine events are currently scheduled.
func (s *Server) EventsPending() int { return s.eng.Pending() }

// OccupancySnapshot captures current per-VM occupancy (running, blocked,
// queued, lent-out, pinned, busy cores). Unlike attaching an
// obs.SnapshotSink — which schedules its own engine tick events — polling
// this at barriers leaves the engine's event sequence untouched, so a
// served run fires exactly the events a batch run does.
func (s *Server) OccupancySnapshot() obs.Snapshot { return s.snapshot() }

// LiveTopology reports the VM/core topology for exporters.
func (s *Server) LiveTopology() obs.Topology { return s.topology() }

// SetIntensity scales the offered load of every Primary VM's arrival
// generator by x (1.0 = the configured load). Takes effect from the next
// generated inter-arrival gap; arrivals already scheduled keep their times.
func (s *Server) SetIntensity(x float64) error {
	if x <= 0 {
		return fmt.Errorf("cluster: intensity must be positive, got %v", x)
	}
	for _, v := range s.vms {
		if v.isPrimary {
			v.gen.SetIntensity(x)
		}
	}
	return nil
}

// SetVMIntensity scales one Primary VM's arrival generator by x, leaving
// the other VMs untouched — the "profile switch" primitive of scenario
// timelines. vm indexes Primary VMs in construction order
// (0..PrimaryVMs-1). Like SetIntensity, it takes effect from the next
// generated inter-arrival gap and perturbs nothing else.
func (s *Server) SetVMIntensity(vm int, x float64) error {
	if x <= 0 {
		return fmt.Errorf("cluster: intensity must be positive, got %v", x)
	}
	idx := 0
	for _, v := range s.vms {
		if !v.isPrimary {
			continue
		}
		if idx == vm {
			v.gen.SetIntensity(x)
			return nil
		}
		idx++
	}
	return fmt.Errorf("cluster: primary VM %d out of range (%d primary VMs)", vm, idx)
}

// SetHarvestOnBlock toggles harvesting of cores idled by blocking I/O at
// runtime. The flag is consulted on each dispatch/block decision, so the
// switch takes effect on the next such decision with no rescheduling.
func (s *Server) SetHarvestOnBlock(on bool) { s.opts.HarvestOnBlock = on }

// SetResilienceEnabled toggles the request-level resilience policies
// (timeout/retry/hedge/shed) at runtime. Enabling on a server constructed
// without a policy installs DefaultResilience. The jitter RNG is created
// lazily here from the run seed: construction deliberately skips the split
// when the policy starts disabled (see NewServer) so plain runs stay
// stream- and allocation-identical, and a deterministic seed derivation
// keeps replayed runs byte-identical.
func (s *Server) SetResilienceEnabled(on bool) {
	if !on {
		s.resOn = false
		return
	}
	if s.resOn {
		return
	}
	if !s.opts.Resilience.Enabled() {
		s.opts.Resilience = DefaultResilience()
	}
	if err := s.opts.Resilience.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	if s.resRNG == nil {
		s.resRNG = stats.NewRNG(s.cfg.Seed ^ 0x9e3779b97f4a7c15).Split(7)
	}
	s.deriveResilienceDeadlines()
	s.resOn = true
}

// InjectFaultPlan expands a fault plan at runtime and schedules its events
// from simulated time `from` (clamped to now) to the run horizon. The
// expansion seed mixes the run seed with `from`, so the same action replayed
// at the same barrier produces the same fault schedule, while successive
// injections of the same plan draw distinct schedules.
//
// The expanded events go into a fresh slice — never appended to s.faultEvs:
// events already scheduled by Start hold pointers into that slice, and an
// append-triggered reallocation would strand them on stale memory.
func (s *Server) InjectFaultPlan(p *faults.Plan, from sim.Time) error {
	if p == nil {
		return fmt.Errorf("cluster: nil fault plan")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("cluster: fault plan: %w", err)
	}
	if now := s.eng.Now(); from < now {
		from = now
	}
	if from >= s.horizon {
		return fmt.Errorf("cluster: fault plan starts at %v, at or past horizon %v", from, s.horizon)
	}
	evs := p.Expand(s.cfg.Seed^uint64(from), len(s.cores), sim.Duration(s.horizon-from))
	for i := range evs {
		evs[i].At = evs[i].At.Add(sim.Duration(from))
		s.eng.CallAt(evs[i].At, s, opFaultBegin, nil, &evs[i])
	}
	return nil
}
