package cluster

import (
	"testing"

	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
	"hardharvest/internal/workload"
)

// randomResilience draws a structurally valid random policy set: derived
// (SLO-relative) timeouts and hedges only, so the hedge-vs-timeout ordering
// holds for every service.
func randomResilience(rng *stats.RNG) Resilience {
	var res Resilience
	if rng.Bool(0.7) {
		res.SLOTimeoutFactor = 1 + 8*rng.Float64()
		res.MaxRetries = rng.Intn(4)
		res.RetryBackoff = sim.Duration(50+rng.Intn(400)) * sim.Microsecond
		res.BackoffFactor = 1 + rng.Float64()
		res.JitterFrac = 0.9 * rng.Float64()
	}
	if rng.Bool(0.6) {
		res.HedgeSLOFactor = 1 + 3*rng.Float64()
	}
	if rng.Bool(0.6) {
		res.MaxQueueDepth = 4 + rng.Intn(200)
	}
	return res
}

// fuzzBody runs one randomized fault+resilience scenario on a small cluster
// and fails if the invariant checker saw anything or conservation broke. It
// reports the hedged and shed attempt counts across both backends so
// corpus tests can assert coverage of the resilience interactions.
func fuzzBody(t *testing.T, seed uint64) (hedges, sheds uint64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	plan := faults.RandomPlan(rng)
	if err := plan.Validate(); err != nil {
		t.Fatalf("seed %d: RandomPlan invalid: %v", seed, err)
	}

	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.CoresPerServer = 8
	cfg.PrimaryVMs = 2
	cfg.CoresPerPrimary = 2
	cfg.HarvestOwnCores = 2
	cfg.WarmupDuration = 5 * sim.Millisecond
	cfg.MeasureDuration = sim.Duration(20+rng.Intn(40)) * sim.Millisecond
	cfg.FaultPlan = plan
	if rng.Bool(0.5) {
		cfg.Profiles = []*workload.Profile{
			workload.RandomProfile(rng, "FuzzA"),
			workload.RandomProfile(rng, "FuzzB"),
		}
	}
	res := randomResilience(rng)
	if err := res.Validate(); err != nil {
		t.Fatalf("seed %d: randomResilience invalid: %v", seed, err)
	}

	work := bfs(t)
	// Both queueing substrates: the software path (polling, hypervisor
	// moves) and the hardware path (controller, reclamation interrupts).
	for _, k := range []SystemKind{HarvestBlock, HardHarvestBlock} {
		opts := SystemOptions(k)
		opts.Resilience = res
		r := RunServer(cfg, opts, work)
		if r.InvariantViolations != 0 {
			t.Fatalf("seed %d %v: %d violations: %s", seed, k, r.InvariantViolations, r.FirstViolation)
		}
		if r.Arrivals == 0 {
			t.Fatalf("seed %d %v: no arrivals", seed, k)
		}
		hedges += r.Hedges
		sheds += r.Sheds
	}
	return hedges, sheds
}

// corpusSeeds is the seeded corpus CI runs on every push (satellite of the
// fuzz target: deterministic, no -fuzz needed). 26 and 29 are chosen so
// randomResilience draws timeouts, retries, hedging, and queue-depth
// shedding all at once — the policy interactions live in that overlap, and
// TestCorpusExercisesHedgeAndShed pins that the overlap actually fires.
var corpusSeeds = []uint64{1, 2, 3, 5, 8, 13, 26, 29, 0xDEAD, 0x5EED1234}

// hedgeShedSeeds are the corpus entries drawn to enable hedging and
// shedding together.
var hedgeShedSeeds = []uint64{26, 29}

// TestCorpusExercisesHedgeAndShed asserts the hedge+shed corpus entries
// still observe both mechanisms at runtime: if a refactor of
// randomResilience's draw order (or the policies themselves) silences
// them, this fails rather than letting the corpus quietly stop covering
// the interaction.
func TestCorpusExercisesHedgeAndShed(t *testing.T) {
	t.Parallel()
	var hedges, sheds uint64
	for _, seed := range hedgeShedSeeds {
		h, s := fuzzBody(t, seed)
		hedges += h
		sheds += s
	}
	if hedges == 0 || sheds == 0 {
		t.Errorf("hedge+shed corpus seeds %v observed hedges=%d sheds=%d; "+
			"both must be nonzero — re-pick seeds if resilience drawing changed",
			hedgeShedSeeds, hedges, sheds)
	}
}

// TestFaultPlanCorpus exercises the seeded corpus deterministically.
func TestFaultPlanCorpus(t *testing.T) {
	t.Parallel()
	for _, seed := range corpusSeeds {
		fuzzBody(t, seed)
	}
}

// FuzzFaultResilience feeds random fault plans, service profiles, and
// resilience policies into a small cluster under both backends; the
// invariant checker must stay clean and the simulation must terminate.
// Run with: go test -fuzz FuzzFaultResilience ./internal/cluster/
func FuzzFaultResilience(f *testing.F) {
	for _, seed := range corpusSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		fuzzBody(t, seed)
	})
}
