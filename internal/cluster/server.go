package cluster

import (
	"fmt"

	"hardharvest/internal/batch"
	"hardharvest/internal/core"
	"hardharvest/internal/faults"
	"hardharvest/internal/hypervisor"
	"hardharvest/internal/metrics"
	"hardharvest/internal/nic"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
	"hardharvest/internal/trace"
	"hardharvest/internal/workload"
)

// graceWindow lets requests that arrived near the end of the measurement
// window complete before the engine stops.
const graceWindow = 50 * sim.Millisecond

// jobStock is the number of ready batch jobs kept queued per server core so
// Harvest VMs always have available work (§4.1.4).
const jobStock = 2

type corePhaseKind int

const (
	cIdle corePhaseKind = iota
	cOverhead
	cRunOwn
	cRunLoaned
)

type coreRT struct {
	id    int
	owner int // VM index the core is bound to

	kind        corePhaseKind
	cur         *request
	burstEv     sim.Event
	burstStart  sim.Time
	burstEnd    sim.Time
	burstScaled sim.Duration
	burstRaw    sim.Duration

	lastVM     int // VM whose state is in the private caches; -1 when none
	warmLeft   sim.Duration
	coldFactor float64

	idleEligible bool // current idle episode may be harvested
	lentTo       int  // software lending: harvest VM index, -1 otherwise
	pendingWake  bool
	preemptPend  bool

	// Fault-injection state: offlineDepth nests overlapping offline faults
	// (the core serves work only at depth 0); degradeFactor multiplies the
	// core's execution time (1 when healthy).
	offlineDepth  int
	degradeDepth  int
	degradeFactor float64

	// Overheads paid before the next dispatched request starts, attributed
	// to that request's breakdown (Figure 6).
	pendingReassign sim.Duration
	pendingFlush    sim.Duration

	// Cycle accounting for the validate oracle: acct integrates the time
	// spent in each corePhaseKind, folded in at every checked transition
	// (setCoreKind); acctSince is the start of the open phase interval.
	acctSince sim.Time
	acct      [4]sim.Duration
}

type vmRT struct {
	idx       int
	isPrimary bool
	profile   *workload.Profile
	gen       *workload.Generator

	running int // requests currently executing on cores
	blocked int // requests blocked on I/O

	lentOut         int // software lending: cores currently lent
	pendingReclaims int
	lastLendAt      sim.Time
	// blockEWMA tracks typical I/O block durations for AdaptiveBlock.
	blockEWMA sim.Duration
	// stallUntil freezes the VM's dispatching while a hypervisor move
	// disrupts it (guest-side unplug synchronization).
	stallUntil sim.Time
	// pinned holds arrivals that landed on a vCPU whose core is lent out:
	// the guest cannot run them until a reclaim completes (software path
	// only; HardHarvest multiplexes vCPUs in hardware, §4.1.5).
	pinned []*request

	// nextInv carries the VM's next generated invocation between
	// scheduleNextArrival and the opArrival event that delivers it; at most
	// one arrival is in flight per VM, so one slot suffices and the event
	// needs no closure.
	nextInv workload.Invocation

	lat       *metrics.LatencyRecorder
	breakdown metrics.Breakdown

	// Derived resilience deadlines (zero when the policy is off).
	timeout    sim.Duration
	hedgeDelay sim.Duration
}

// Typed event opcodes: the server schedules its hot-path events through
// Engine.ScheduleCall with itself as the sim.Callback, binding the op code
// plus *coreRT / *vmRT / *request payloads in the event record instead of
// allocating a closure per event.
const (
	opDispatch       int32 = iota // a: *coreRT — dispatch(c, false)
	opWake                        // a: *coreRT — pending wake delivered
	opStallRetry                  // a: *coreRT — retry dispatch after a VM stall (no loan)
	opStallRetryLoan              // a: *coreRT — retry dispatch after a VM stall (loan ok)
	opArrival                     // a: *vmRT — deliver the VM's next generated arrival
	opArrivalReady                // b: *request — NIC deposit done, request lands on a vCPU
	opRunBurst                    // a: *coreRT, b: *request — dispatch overheads paid
	opBurstEnd                    // a: *coreRT, b: *request — CPU burst finished
	opIOComplete                  // b: *request — network response arrived at the NIC
	opIOReady                     // b: *request — queue/notify delay after I/O completion
	opPreempt                     // a: *coreRT — hardware reclamation interrupt delivered
	opAgentSample                 // software harvesting agent usage sample
	opAgentTick                   // software harvesting agent prediction window
	opLendEnd                     // a: *coreRT — hypervisor lend move finished
	opReclaimEnd                  // a: *coreRT — hypervisor reclaim move finished
	opFaultBegin                  // b: *faults.Event — injected fault begins
	opFaultEnd                    // b: *faults.Event — injected fault lifts
	opCallTimeout                 // b: *call — attempt deadline expired
	opCallRetry                   // b: *call — retry backoff elapsed
	opCallHedge                   // b: *call — hedge delay elapsed
)

// OnEvent dispatches typed engine events (sim.Callback).
func (s *Server) OnEvent(op int32, a, b any) {
	if s.ring != nil {
		s.ring.record(s.now(), op)
	}
	switch op {
	case opDispatch:
		s.dispatch(a.(*coreRT), false)
	case opWake:
		c := a.(*coreRT)
		c.pendingWake = false
		if c.kind == cIdle {
			s.dispatch(c, c.idleEligible)
		}
	case opStallRetry, opStallRetryLoan:
		c := a.(*coreRT)
		if c.kind == cIdle || c.kind == cOverhead {
			s.dispatch(c, op == opStallRetryLoan)
		}
	case opArrival:
		s.arrivalFired(a.(*vmRT))
	case opArrivalReady:
		s.arrivalReady(b.(*request))
	case opRunBurst:
		s.runBurst(a.(*coreRT), b.(*request))
	case opBurstEnd:
		s.onBurstEnd(a.(*coreRT), b.(*request))
	case opIOComplete:
		s.onIOComplete(b.(*request))
	case opIOReady:
		s.ioReady(b.(*request))
	case opPreempt:
		s.preemptFired(a.(*coreRT))
	case opAgentSample:
		s.agentSample()
	case opAgentTick:
		s.agentTick()
	case opLendEnd:
		s.lendEnd(a.(*coreRT))
	case opReclaimEnd:
		s.reclaimEnd(a.(*coreRT))
	case opFaultBegin:
		s.faultBegin(b.(*faults.Event))
	case opFaultEnd:
		s.faultEnd(b.(*faults.Event))
	case opCallTimeout:
		s.callTimeout(b.(*call))
	case opCallRetry:
		s.callRetry(b.(*call))
	case opCallHedge:
		s.callHedge(b.(*call))
	default:
		panic(fmt.Sprintf("cluster: unknown event op %d", op))
	}
}

// Server simulates one 36-core server under a given system configuration.
type Server struct {
	cfg  Config
	opts Options

	eng    *sim.Engine
	be     backend
	hw     *hwBackend
	sw     *swBackend
	nicDev *nic.NIC
	agent  *hypervisor.Harvester

	// obs receives lifecycle events; nil disables instrumentation and every
	// hook site reduces to one nil check (see internal/obs).
	obs obs.Observer
	// acctOn enables per-core cycle accounting in setCoreKind. It follows
	// obs != nil: the accounts exist for the validate oracle's conservation
	// checks, which always observe the run, and the hottest transition edge
	// should not pay for them otherwise.
	acctOn bool

	flushRNG *stats.RNG
	pollRNG  *stats.RNG
	jobRNG   *stats.RNG
	batchRNG *stats.RNG
	// batchScratch backs flash-batch sampling; onArrival copies the phases
	// into the pooled request before the next sample reuses it.
	batchScratch workload.SampleScratch

	vms        []*vmRT // 0..PrimaryVMs-1 primary, last is the Harvest VM
	harvestIdx int
	hwork      *batch.Workload
	cores      []coreRT

	util       *metrics.Utilization
	activeJobs int
	pins       uint64
	pinWaitSum sim.Duration
	arrivals   int
	breakdown  metrics.Breakdown
	jobsDone   uint64
	reassigns  uint64
	requests   int

	measureStart sim.Time
	measureEnd   sim.Time
	stopArrivals sim.Time
	horizon      sim.Time
	reqSeq       uint64

	// Per-core cycle accounts snapshotted at the measurement-window edges
	// (validate oracle: busy + idle + harvested + transition must sum to
	// the window per core).
	coreWinStart []CoreCycles
	coreWinEnd   []CoreCycles

	// reqFree recycles request objects (and their phase slices): a server
	// simulates hundreds of thousands of requests but only a few hundred
	// are ever in flight, so the pool caps steady-state allocation.
	reqFree []*request

	// moveBusyUntil serializes software core moves: hypervisor detach and
	// attach operations take a global lock (§4.1.1), so moves queue behind
	// each other — unlike HardHarvest's decentralized per-QM hardware.
	moveBusyUntil sim.Time

	// Fault injection (Config.FaultPlan): the expanded schedule plus the
	// active I/O-straggler window.
	faultEvs       []faults.Event
	faultIOUntil   sim.Time
	faultIOFactor  float64
	faultsInjected uint64
	// crashDepth nests overlapping whole-server crash windows: the cores go
	// offline on the 0->1 edge and come back only on the 1->0 edge, so a
	// second crash landing inside the first's window extends the outage
	// instead of double-restarting the server.
	crashDepth int

	// Remote admission (Options.RemoteAdmission): remoteRNG samples the
	// phases of front-door-dispatched invocations on an independent stream
	// so routed and local admission never perturb each other's randomness.
	// Nil unless remote admission is on, keeping routerless runs stream-
	// and alloc-identical to builds without routing support.
	remoteRNG     *stats.RNG
	remoteScratch workload.SampleScratch

	// Resilience (Options.Resilience): resOn gates the per-arrival branch;
	// calls are pooled like requests; resRNG drives backoff jitter.
	resOn          bool
	resRNG         *stats.RNG
	callFree       []*call
	callSeq        uint64
	sheds          uint64
	retries        uint64
	hedges         uint64
	hedgesWon      uint64
	hedgesLost     uint64
	deadlineMisses uint64

	// Invariant checker (always on; strict panics on violation).
	inv    invariantState
	strict bool
	ring   *opRing
}

// NewServer builds one server running the eight service profiles in its
// Primary VMs and the given batch workload in its Harvest VM.
func NewServer(cfg Config, opts Options, work *batch.Workload) *Server {
	cfg.validate()
	if opts.Harvesting && !opts.SoftwareHarvest && !opts.HWSched {
		panic("cluster: hardware harvesting requires the hardware scheduler (+Sched)")
	}
	s := &Server{
		cfg:        cfg,
		opts:       opts,
		eng:        sim.NewEngine(),
		nicDev:     nic.New(cfg.NICLat),
		harvestIdx: cfg.PrimaryVMs,
		hwork:      work,
		obs:        opts.Observer,
		acctOn:     opts.Observer != nil,
	}
	root := stats.NewRNG(cfg.Seed)
	s.flushRNG = root.Split(1)
	s.pollRNG = root.Split(2)
	s.jobRNG = root.Split(3)
	s.batchRNG = root.Split(6)
	seriesRNG := root.Split(4)
	instRNG := root.Split(5)

	profiles := cfg.Profiles
	if profiles == nil {
		profiles = workload.Profiles()
	}
	if len(profiles) < cfg.PrimaryVMs {
		panic("cluster: not enough service profiles for the primary VMs")
	}
	seriesParams := trace.DefaultSeriesParams()
	seriesParams.Steps = cfg.TraceSteps
	newLat := metrics.NewLatencyRecorder
	if opts.SketchLatency {
		newLat = metrics.NewLatencySketch
	}
	for i := 0; i < cfg.PrimaryVMs; i++ {
		p := *profiles[i]
		p.BaseRPSPerCore *= cfg.LoadScale
		var series []float64
		if cfg.TraceSteps > 0 {
			inst := trace.GenerateInstances(instRNG, 1)[0]
			series = inst.Series(seriesRNG.Split(uint64(i)), seriesParams)
		} else {
			_ = instRNG
		}
		v := &vmRT{
			idx:       i,
			isPrimary: true,
			profile:   &p,
			gen:       workload.NewGenerator(&p, cfg.CoresPerPrimary, series, cfg.TraceStep, root.Split(uint64(100+i))),
			lat:       newLat(),
		}
		s.vms = append(s.vms, v)
		s.nicDev.RegisterVM(i)
	}
	s.vms = append(s.vms, &vmRT{idx: s.harvestIdx, lat: newLat()})
	s.nicDev.RegisterVM(s.harvestIdx)

	// Backend.
	numVMs := cfg.PrimaryVMs + 1
	if opts.SoftwareHarvest {
		s.sw = newSWBackend(numVMs, cfg.CoresPerServer)
		s.be = s.sw
	} else {
		s.hw = newHWBackend(cfg)
		s.be = s.hw
		mask := core.DefaultHarvestMask([core.NumMaskedStructs]int{12, 8, 8, 4, 8})
		for i := 0; i < cfg.PrimaryVMs; i++ {
			s.hw.addVM(i, true, mask)
		}
		s.hw.addVM(s.harvestIdx, false, mask)
	}

	// Cores: primary VMs first, then the Harvest VM's own cores; any
	// remaining server cores stay unassigned (unallocated cores are out of
	// scope: the paper's server is fully allocated).
	// The cores live in one contiguous value slice (struct-of-arrays for
	// the scheduler's hottest scans); capacity is fixed up front so the
	// *coreRT pointers captured in event payloads stay stable for the
	// server's lifetime.
	s.cores = make([]coreRT, 0, cfg.PrimaryVMs*cfg.CoresPerPrimary+cfg.HarvestOwnCores)
	coreID := 0
	bind := func(vmIdx int) {
		s.cores = append(s.cores, coreRT{id: coreID, owner: vmIdx, lastVM: -1, lentTo: -1,
			coldFactor: 1, degradeFactor: 1, idleEligible: true})
		if s.hw != nil {
			s.hw.bindCore(coreID, vmIdx)
		} else {
			s.sw.bindCore(coreID, vmIdx)
		}
		coreID++
	}
	for i := 0; i < cfg.PrimaryVMs; i++ {
		for k := 0; k < cfg.CoresPerPrimary; k++ {
			bind(i)
		}
	}
	for k := 0; k < cfg.HarvestOwnCores; k++ {
		bind(s.harvestIdx)
	}

	s.util = metrics.NewUtilization(len(s.cores))
	if opts.SoftwareHarvest && !opts.EventDriven() {
		s.agent = hypervisor.NewHarvester(cfg.Costs)
		s.agent.Interval = cfg.AgentInterval
		s.agent.BufferCores = cfg.AgentBufferCores
	}

	// Robustness wiring. Resilience misconfigurations fail fast here, at
	// construction, with field-level errors — never mid-simulation.
	if err := opts.Resilience.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	if opts.Resilience.Enabled() {
		s.resOn = true
		s.deriveResilienceDeadlines()
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Validate(); err != nil {
			panic("cluster: fault plan: " + err.Error())
		}
	}
	s.strict = cfg.Strict
	if cfg.Strict {
		s.ring = &opRing{}
	}
	// resRNG splits last, and only when resilience is on: stats.RNG.Split
	// advances the root stream and allocates, so skipping it keeps a
	// policies-off run alloc- and stream-identical to builds without
	// resilience support.
	if s.resOn {
		s.resRNG = root.Split(7)
	}
	// The remote-admission sampling stream derives from a fresh root, not a
	// Split of the shared one, for the same reason: a routerless run must
	// not see its streams shift because routing support exists.
	if opts.RemoteAdmission {
		s.remoteRNG = stats.NewRNG(cfg.Seed ^ remoteSeedSalt)
	}
	return s
}

// deriveResilienceDeadlines computes each Primary VM's effective timeout and
// hedge delay from the current Options.Resilience policy. Called at
// construction when the policy starts enabled, and again from
// SetResilienceEnabled when a live run turns the policy on.
func (s *Server) deriveResilienceDeadlines() {
	res := s.opts.Resilience
	for _, v := range s.vms {
		if !v.isPrimary {
			continue
		}
		v.timeout = res.Timeout
		if v.timeout == 0 && res.SLOTimeoutFactor > 0 {
			v.timeout = sim.Duration(res.SLOTimeoutFactor * float64(v.profile.MeanDemand()))
		}
		v.hedgeDelay = res.HedgeDelay
		if v.hedgeDelay == 0 && res.HedgeSLOFactor > 0 {
			v.hedgeDelay = sim.Duration(res.HedgeSLOFactor * float64(v.profile.MeanDemand()))
		}
		if v.timeout > 0 && v.hedgeDelay >= v.timeout {
			// A derived hedge delay past the timeout would never fire.
			v.hedgeDelay = v.timeout / 2
		}
	}
}

// EventDriven reports whether the software path moves cores on
// per-request events (the Figure 4/5 motivation experiments) instead of
// through the SmartHarvest predictor.
func (o Options) EventDriven() bool { return o.EventDrivenLend }

func (s *Server) now() sim.Time { return s.eng.Now() }

// newRequest takes a request object from the pool (or allocates one). The
// caller fills every field it needs; pooled objects arrive zeroed except for
// gen and the reusable phases capacity.
func (s *Server) newRequest() *request {
	s.inv.created++
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &request{}
}

// freeRequest recycles a completed request. Only call it when no queue, core,
// or pin list references the request; events that may still hold the pointer
// (pin releases) are generation-guarded, and the bump here expires them.
func (s *Server) freeRequest(r *request) {
	if r.state == rsFree {
		// Double free: tolerated-and-counted (the object is NOT pooled
		// again, so the first owner keeps it); strict mode panics inside
		// invViolate.
		s.invViolate("request %d: double free", r.id)
		return
	}
	s.setReqState(r, rsFree)
	s.inv.freed++
	phases := r.phases[:0]
	gen := r.gen + 1
	*r = request{phases: phases, gen: gen}
	s.reqFree = append(s.reqFree, r)
}

func (s *Server) harvestVM() *vmRT { return s.vms[s.harvestIdx] }

func (s *Server) coresOf(vmIdx int) []*coreRT {
	var out []*coreRT
	for i := range s.cores {
		if c := &s.cores[i]; c.owner == vmIdx {
			out = append(out, c)
		}
	}
	return out
}

// Run executes the simulation and returns the server's results.
func (s *Server) Run() *ServerResult {
	s.Start()
	s.eng.Run(s.horizon)
	return s.Finish()
}

// Start schedules the run's initial events (arrivals, agent ticks, fault
// plan, measurement-window hooks) without executing any of them. It is the
// setup half of Run, split out so long-lived callers (internal/serve) can
// advance the simulation in simulated-time slices with StepTo and apply
// runtime reconfiguration at the slice barriers. Stepping executes exactly
// the same events in exactly the same order as a monolithic Run: the engine
// orders events by (time, seq) regardless of how the horizon is reached.
func (s *Server) Start() {
	s.measureStart, s.measureEnd, s.stopArrivals, s.horizon = s.cfg.RunWindow()
	horizon := s.horizon

	// Observability: hand the topology to interested observers and drive
	// snapshot sinks at their requested simulated-time cadence.
	if s.obs != nil {
		if to, ok := s.obs.(obs.TopologyObserver); ok {
			to.SetTopology(s.topology())
		}
		if sink, ok := s.obs.(obs.SnapshotSink); ok {
			if iv := sink.SampleInterval(); iv > 0 {
				var tick func()
				tick = func() {
					sink.OnSnapshot(s.snapshot())
					if s.now().Add(iv) <= horizon {
						s.eng.Schedule(iv, tick)
					}
				}
				s.eng.Schedule(iv, tick)
			}
		}
	}

	// Initial work: stock the Harvest VM's job queue and kick its cores.
	if s.opts.HarvestVMActive {
		s.refillJobs()
		for _, c := range s.coresOf(s.harvestIdx) {
			s.eng.ScheduleCall(0, s, opDispatch, c, nil)
		}
	}
	// Remote admission: the front door drives primary arrivals through
	// AdmitRemote; only the Harvest VM's local job stream starts here.
	if !s.opts.RemoteAdmission {
		for _, v := range s.vms {
			if v.isPrimary {
				s.scheduleNextArrival(v)
			}
		}
	}
	if s.agent != nil {
		s.eng.ScheduleCall(s.cfg.AgentSample, s, opAgentSample, nil, nil)
		s.eng.ScheduleCall(s.cfg.AgentInterval, s, opAgentTick, nil, nil)
	}
	if s.cfg.FaultPlan != nil {
		s.scheduleFaults(horizon)
	}
	// Reset utilization accounting at the start of the measurement window,
	// and snapshot the per-core cycle accounts at both window edges.
	s.eng.At(s.measureStart, func() {
		s.util = metrics.NewUtilization(len(s.cores))
		for i := range s.cores {
			c := &s.cores[i]
			if c.kind == cRunOwn || c.kind == cRunLoaned {
				s.util.SetBusy(c.id, s.now(), true)
			}
		}
		s.coreWinStart = s.acctSnapshot()
	})
	s.eng.At(s.measureEnd, func() {
		// Finish freezes the accumulator: post-window SetBusy calls are
		// ignored inside metrics.Utilization.
		s.util.Finish(s.measureEnd)
		s.coreWinEnd = s.acctSnapshot()
	})
}

// StepTo advances the simulation to simulated time t (clamped to the run
// horizon) and reports whether the run has reached the horizon. Calling
// StepTo with increasing times executes the identical event sequence as a
// single Run over the full horizon. Must be preceded by Start.
func (s *Server) StepTo(t sim.Time) (done bool) {
	if t > s.horizon {
		t = s.horizon
	}
	s.eng.Run(t)
	return t >= s.horizon
}

// Finish computes and returns the run's results. Call it exactly once, after
// the simulation has reached the horizon (Run does this internally; stepped
// callers call it after StepTo reports done).
func (s *Server) Finish() *ServerResult {
	return s.result()
}

func (s *Server) setBusy(c *coreRT, busy bool) {
	s.util.SetBusy(c.id, s.now(), busy)
}

// ---- Observability hooks ----

// ev delivers one observer event carrying a request context. Call sites on
// hot paths guard with `if s.obs != nil` so the disabled path is a single
// nil check with no argument evaluation beyond locals.
func (s *Server) ev(kind obs.Kind, r *request, core int, dur sim.Duration) {
	if s.obs == nil {
		return
	}
	e := obs.Event{Kind: kind, Time: s.now(), VM: -1, Core: core, Dur: dur}
	if r != nil {
		e.Req = r.id
		e.VM = r.vmIdx
		e.IsJob = r.isJob
		e.Measured = r.measured
	}
	s.obs.Observe(e)
}

// evCore delivers a core-state event attributed to the core's owner VM.
func (s *Server) evCore(kind obs.Kind, c *coreRT, dur sim.Duration) {
	if s.obs == nil {
		return
	}
	s.obs.Observe(obs.Event{Kind: kind, Time: s.now(), VM: c.owner, Core: c.id, Dur: dur})
}

// emitDispatch reports a dispatch with its overhead spans: the whole
// dispatch-path occupation, the cross-VM re-assignment portion, and any
// critical-path flush wait (which follows the re-assignment in time).
func (s *Server) emitDispatch(c *coreRT, r *request, reassign, flushWait sim.Duration, crossVM bool) {
	now := s.now()
	e := obs.Event{Kind: obs.KindDispatch, Time: now, Req: r.id, VM: r.vmIdx,
		Core: c.id, Dur: reassign + flushWait, IsJob: r.isJob, Measured: r.measured,
		CrossVM: crossVM}
	s.obs.Observe(e)
	s.obs.Observe(obs.Event{Kind: obs.KindCoreBusy, Time: now, VM: c.owner, Core: c.id})
	if crossVM {
		e.Kind, e.Dur = obs.KindReassignStart, reassign
		s.obs.Observe(e)
		e.Kind, e.Time, e.Dur = obs.KindReassignEnd, now.Add(reassign), 0
		s.obs.Observe(e)
	}
	if flushWait > 0 {
		e.Kind, e.Time, e.Dur = obs.KindFlushStart, now.Add(reassign), flushWait
		s.obs.Observe(e)
		e.Kind, e.Time, e.Dur = obs.KindFlushEnd, now.Add(reassign+flushWait), 0
		s.obs.Observe(e)
	}
}

// topology describes the server's VM/core shape for observers.
func (s *Server) topology() obs.Topology {
	t := obs.Topology{Run: s.opts.Name, VMs: make([]obs.VMInfo, 0, len(s.vms))}
	for _, v := range s.vms {
		vi := obs.VMInfo{Idx: v.idx, Primary: v.isPrimary}
		if v.isPrimary {
			vi.Name = v.profile.Name
		} else {
			vi.Name = "Harvest:" + s.hwork.Name
		}
		for i := range s.cores {
			c := &s.cores[i]
			if c.owner == v.idx {
				vi.Cores = append(vi.Cores, c.id)
			}
		}
		t.VMs = append(t.VMs, vi)
	}
	return t
}

// snapshot captures current per-VM occupancy for snapshot sinks.
func (s *Server) snapshot() obs.Snapshot {
	sn := obs.Snapshot{Time: s.now(), VMs: make([]obs.VMSample, 0, len(s.vms))}
	busy := make([]int, len(s.vms))
	for i := range s.cores {
		c := &s.cores[i]
		if c.kind != cIdle {
			busy[c.owner]++
		}
	}
	for _, v := range s.vms {
		sn.VMs = append(sn.VMs, obs.VMSample{
			VM: v.idx, Running: v.running, Blocked: v.blocked,
			Queued: s.be.readyLen(v.idx), LentOut: v.lentOut,
			Pinned: len(v.pinned), BusyCores: busy[v.idx],
		})
	}
	return sn
}

func (s *Server) measuring() bool {
	t := s.now()
	return t >= s.measureStart && t < s.measureEnd
}

// ---- Arrivals and notification ----

func (s *Server) scheduleNextArrival(v *vmRT) {
	a := v.gen.Next()
	if a.At >= s.stopArrivals {
		return
	}
	v.nextInv = a.Inv
	s.eng.CallAt(a.At, s, opArrival, v, nil)
}

// arrivalFired delivers the VM's generated arrival (plus any correlated
// flash batch) and schedules the next one.
func (s *Server) arrivalFired(v *vmRT) {
	inv := v.nextInv
	v.nextInv = workload.Invocation{}
	s.onArrival(v, inv)
	// Flash batches: microservice fan-outs deliver correlated groups
	// of requests in near-lockstep.
	if s.cfg.BurstBatchProb > 0 && s.batchRNG.Float64() < s.cfg.BurstBatchProb {
		extra := 0
		for s.batchRNG.Float64() < 1-1/s.cfg.BurstBatchMean && extra < 16 {
			extra++
		}
		for i := 0; i < extra; i++ {
			s.onArrival(v, v.gen.Profile().SampleInto(s.batchRNG, &s.batchScratch))
		}
	}
	s.scheduleNextArrival(v)
}

func (s *Server) onArrival(v *vmRT, inv workload.Invocation) {
	if s.resOn {
		s.onArrivalResilient(v, inv)
		return
	}
	_, nicLat, err := s.nicDev.Deposit(v.idx, 256)
	if err != nil {
		panic(err)
	}
	if !s.opts.HWQueue {
		// Memory-mapped queues: the NIC's deposit contends with cores on
		// the cache hierarchy and the enqueue needs a locked queue write.
		nicLat += s.cfg.SWQueueAccess
	}
	s.reqSeq++
	s.arrivals++
	r := s.newRequest()
	r.id = s.reqSeq
	r.vmIdx = v.idx
	// Copy: inv.Phases aliases the generator's sampling scratch (see
	// workload.Generator.Next), and the pooled request recycles its own
	// phase slice, so the copy is allocation-free at steady state.
	r.phases = append(r.phases[:0], inv.Phases...)
	r.arrival = s.now()
	r.measured = s.measuring()
	s.setReqState(r, rsTransit)
	if s.obs != nil {
		s.ev(obs.KindArrival, r, -1, nicLat)
	}
	s.eng.ScheduleCall(nicLat, s, opArrivalReady, nil, r)
}

// arrivalReady runs after the NIC deposit delay. Software harvesting: an
// arrival lands on one of the VM's vCPUs; with lent cores, some vCPUs have
// no physical core behind them and the request stalls until the hypervisor
// completes a reclaim.
func (s *Server) arrivalReady(r *request) {
	v := s.vms[r.vmIdx]
	// Queue-depth load shedding: an overloaded VM rejects the attempt at
	// the door rather than queue it past its depth budget.
	if r.call != nil && s.opts.Resilience.MaxQueueDepth > 0 &&
		s.be.readyLen(v.idx) >= s.opts.Resilience.MaxQueueDepth {
		s.shedAttempt(r)
		return
	}
	// Remotely admitted attempts shed under the same depth budget; the
	// rejection is reported to the front door, which owns the retry policy.
	if r.remoteID != 0 && s.opts.Resilience.MaxQueueDepth > 0 &&
		s.be.readyLen(v.idx) >= s.opts.Resilience.MaxQueueDepth {
		s.shedRemote(r)
		return
	}
	if s.sw != nil && s.opts.Harvesting && v.lentOut > 0 {
		pinProb := s.cfg.PinScale * float64(v.lentOut) / float64(s.cfg.CoresPerPrimary)
		if s.pollRNG.Float64() < pinProb {
			s.pinRequest(v, r)
			return
		}
	}
	s.enqueueReady(r, true)
}

func (s *Server) enqueueReady(r *request, isNew bool) {
	v := s.vms[r.vmIdx]
	var wake wakeInfo
	var woken bool
	s.setReqState(r, rsQueued)
	if isNew {
		if s.obs != nil {
			s.ev(obs.KindEnqueue, r, -1, 0)
		}
		wake, woken = s.be.enqueue(r)
	} else {
		if s.obs != nil {
			s.ev(obs.KindUnblock, r, -1, 0)
		}
		v.blocked--
		wake, woken = s.be.unblock(r)
	}
	s.notify(v, wake, woken)
}

// notify delivers the backend's wake decision (hardware) or performs the
// software discovery/reclaim logic.
func (s *Server) notify(v *vmRT, wake wakeInfo, woken bool) {
	if woken {
		c := &s.cores[wake.core]
		if wake.preempt {
			s.schedulePreempt(c)
			return
		}
		delay := s.cfg.HWNotify
		if !s.opts.HWSched {
			// The controller structure exists but cores discover work by
			// polling (conventional baseline).
			delay = s.pollDelay()
		}
		s.scheduleWake(c, delay)
		return
	}
	if s.sw == nil {
		return
	}
	// Software path: wake an idle, unlent core by polling.
	if c := s.idleCoreOf(v); c != nil {
		s.scheduleWake(c, s.pollDelay())
		return
	}
	// No idle core: in the event-driven motivation experiments the agent
	// reclaims a lent core on demand; the SmartHarvest-style agent only
	// notices at its next prediction tick (agentTick), which is exactly
	// why software harvesting hurts microsecond-scale requests.
	if s.opts.Harvesting && s.opts.EventDriven() && v.isPrimary &&
		v.lentOut-v.pendingReclaims > 0 &&
		s.be.readyLen(v.idx) > v.pendingReclaims {
		s.startReclaim(v)
	}
}

func (s *Server) pollDelay() sim.Duration {
	return sim.Duration(s.pollRNG.Int63n(int64(s.cfg.PollInterval)))
}

func (s *Server) idleCoreOf(v *vmRT) *coreRT {
	for i := range s.cores {
		c := &s.cores[i]
		if c.owner == v.idx && c.kind == cIdle && c.lentTo < 0 && !c.pendingWake &&
			c.offlineDepth == 0 {
			return c
		}
	}
	return nil
}

// lendableCoreOf returns an idle core the harvesting policy may take: under
// Term, only cores idle because they terminated a request; under Block, any
// idle core (including those idled by a blocking call).
func (s *Server) lendableCoreOf(v *vmRT) *coreRT {
	for i := range s.cores {
		c := &s.cores[i]
		if c.owner != v.idx || c.kind != cIdle || c.lentTo >= 0 || c.pendingWake ||
			c.offlineDepth > 0 {
			continue
		}
		if !s.opts.HarvestOnBlock && !c.idleEligible {
			continue
		}
		return c
	}
	return nil
}

func (s *Server) scheduleWake(c *coreRT, delay sim.Duration) {
	if c.pendingWake {
		return
	}
	c.pendingWake = true
	s.eng.ScheduleCall(delay, s, opWake, c, nil)
}

// ---- Dispatch and execution ----

// dispatch has the core pick its next work item. allowLoan permits
// cross-VM harvesting on the hardware path for this dispatch.
func (s *Server) dispatch(c *coreRT, allowLoan bool) {
	// An offline core serves nothing; it re-dispatches when the fault ends
	// (coreOnline). Pending dispatch-path events funnel through here, so
	// this one gate covers wakes, stall retries, and move completions.
	if c.offlineDepth > 0 {
		if c.kind != cIdle {
			s.setCoreKind(c, cIdle)
			if s.obs != nil {
				s.evCore(obs.KindCoreIdle, c, 0)
			}
		}
		c.cur = nil
		c.idleEligible = false
		return
	}
	// A frozen VM (mid-move guest synchronization) cannot schedule work.
	if s.sw != nil && c.lentTo < 0 {
		if v := s.vms[c.owner]; v.isPrimary && s.now() < v.stallUntil {
			wait := v.stallUntil.Sub(s.now())
			op := opStallRetry
			if allowLoan {
				op = opStallRetryLoan
			}
			s.eng.ScheduleCall(wait, s, op, c, nil)
			s.setCoreKind(c, cOverhead)
			return
		}
	}
	if s.sw != nil && c.lentTo >= 0 {
		// A software-lent core serves the Harvest VM. The flush/cold costs
		// of the move were charged when the hypervisor performed it
		// (startLend), so the dispatch itself is not a cross-VM event.
		r := s.be.dequeueFrom(c.lentTo, c.id)
		if r == nil {
			s.goIdle(c, false)
			return
		}
		s.startRequest(c, r, false)
		return
	}
	loan := allowLoan && s.opts.Harvesting && s.hw != nil && s.opts.HarvestVMActive &&
		s.loanAllowed(c)
	r, cross := s.be.dequeue(c.id, loan)
	if r == nil {
		// Software path: a newly idle vCPU lets the guest migrate a pinned
		// request over to it.
		if s.sw != nil {
			if v := s.vms[c.owner]; v.isPrimary && len(v.pinned) > 0 {
				s.schedulePinRelease(v, v.pinned[0], s.cfg.SWCtxSw)
			}
		}
		s.goIdle(c, allowLoan)
		return
	}
	s.startRequest(c, r, cross)
}

// loanAllowed enforces the hardware burst buffer (§4.1.5 future work): a
// Primary VM core may only be loaned while enough sibling cores stay idle
// and ready for a burst.
func (s *Server) loanAllowed(c *coreRT) bool {
	if s.opts.BurstBufferCores <= 0 || !s.vms[c.owner].isPrimary {
		return true
	}
	idle := 0
	for i := range s.cores {
		o := &s.cores[i]
		if o != c && o.owner == c.owner && o.kind == cIdle && o.offlineDepth == 0 {
			idle++
		}
	}
	return idle >= s.opts.BurstBufferCores
}

func (s *Server) goIdle(c *coreRT, eligible bool) {
	s.setCoreKind(c, cIdle)
	c.cur = nil
	c.idleEligible = eligible
	if s.obs != nil {
		s.evCore(obs.KindCoreIdle, c, 0)
	}
	// Event-driven software lending (Figures 4-5): an idle-eligible core
	// with no ready work migrates to the Harvest VM. At most one core per
	// VM is moved this way, per the paper's methodology.
	maxLent, cooldown := 1, 4*s.cfg.EventLendCooldown
	if s.opts.HarvestOnBlock {
		// The aggressive design takes blocked cores too: more cores, more
		// often (the paper observes ~3x the reassignment rate).
		maxLent, cooldown = 2, s.cfg.EventLendCooldown
	}
	if s.sw != nil && s.opts.Harvesting && s.opts.EventDriven() &&
		eligible && c.lentTo < 0 && s.vms[c.owner].isPrimary &&
		s.vms[c.owner].lentOut < maxLent &&
		s.be.readyLen(c.owner) == 0 &&
		s.now().Sub(s.vms[c.owner].lastLendAt) > cooldown {
		s.vms[c.owner].lastLendAt = s.now()
		s.startLend(c)
	}
}

// startRequest charges the dispatch-path overheads and begins the request's
// next CPU burst.
func (s *Server) startRequest(c *coreRT, r *request, crossVM bool) {
	v := s.vms[r.vmIdx]
	s.setCoreKind(c, cOverhead)
	c.cur = r
	s.setReqState(r, rsRunning)

	queueOp := s.cfg.SWQueueAccess
	if s.opts.HWQueue {
		queueOp = s.cfg.HWQueueOp
	}
	ctx := s.cfg.SWCtxSw
	if crossVM {
		// A cross-VM transition must also load the new VM's context
		// (VMCS, control registers, ...).
		ctx += s.cfg.SWVMContextLoad
	}
	if s.opts.HWCtxtSw {
		ctx = s.cfg.HWCtxSw
	}
	var wait sim.Duration
	// Cross-VM flush costs are a hardware-path concern here: the software
	// path charges them at hypervisor move time (startLend/startReclaim).
	if crossVM && s.opts.FlushOnSwitch && s.hw != nil {
		toHarvest := r.vmIdx == s.harvestIdx && c.owner != s.harvestIdx
		if s.opts.Partition {
			if toHarvest {
				// The Harvest VM may not start until the worst-case
				// harvest-region flush has elapsed (timing side channel,
				// §4.2.1).
				if s.opts.EffFlush {
					wait = s.cfg.PartitionFlushWait
				} else {
					wait = s.cfg.SlowRegionFlush
				}
				c.pendingFlush += wait
			} else {
				// Reclaim: the Primary VM restarts immediately on the warm
				// non-harvest region; the harvest-region flush proceeds in
				// the background. Only per-invocation private state is
				// cold.
				c.coldFactor = s.cfg.PartReclaimFactor
				c.warmLeft = s.cfg.ColdWarmupCPUTime / 2
			}
		} else {
			// Unpartitioned: full wbinvd-style flush on the critical path
			// and a cold restart.
			f := s.cfg.Costs.FlushCost(s.flushRNG)
			wait = f
			c.pendingFlush += f
			c.coldFactor = s.cfg.Costs.ColdExecutionFactor
			c.warmLeft = s.cfg.Costs.ColdWarmupCPUTime
		}
	}
	if crossVM {
		c.pendingReassign += queueOp + ctx
	}
	c.lastVM = r.vmIdx
	v.running++
	r.reassign += c.pendingReassign
	r.flush += c.pendingFlush
	c.pendingReassign = 0
	c.pendingFlush = 0
	if s.obs != nil {
		s.emitDispatch(c, r, queueOp+ctx, wait, crossVM)
	}
	s.setBusy(c, true) // dispatch overheads occupy the core
	s.eng.ScheduleCall(queueOp+ctx+wait, s, opRunBurst, c, r)
}

// scaledBurst converts raw CPU demand into simulated time under the core's
// warmth state and the system's execution factors, consuming warmup budget.
func (s *Server) scaledBurst(c *coreRT, r *request, raw sim.Duration) sim.Duration {
	base := s.cfg.WarmFactor
	if s.opts.ReplPolicy {
		base = s.cfg.ReplWarmFactor
	}
	base *= s.cfg.LLCFactor
	if !s.opts.HWSched {
		// Polling for work diverts core cycles from application logic.
		base *= s.cfg.PollExecFactor
	}
	if !s.opts.HWQueue {
		// Memory-mapped queues contend with cores on the cache hierarchy.
		base *= s.cfg.MMQueueExecFactor
	}
	if r.isJob {
		if c.owner != s.harvestIdx && s.opts.Partition {
			// Loaned cores restrict the Harvest VM to the harvest region.
			base *= s.hwork.HarvestedSlowdown()
		}
		// DRAM bandwidth contention among concurrent batch jobs.
		if extra := s.activeJobs - s.cfg.HarvestOwnCores; extra > 0 && s.cfg.MemBWSlope > 0 {
			base *= 1 + s.cfg.MemBWSlope*s.hwork.MemoryIntensity*float64(extra)
		}
	}
	coldPart := raw
	if coldPart > c.warmLeft {
		coldPart = c.warmLeft
	}
	c.warmLeft -= coldPart
	scaled := float64(coldPart)*c.coldFactor + float64(raw-coldPart)
	if c.warmLeft == 0 {
		c.coldFactor = 1
	}
	if c.degradeFactor != 1 {
		// Injected core degradation (thermal throttling, interference).
		base *= c.degradeFactor
	}
	return sim.Duration(scaled * base)
}

func (s *Server) runBurst(c *coreRT, r *request) {
	if c.offlineDepth > 0 {
		// The core was taken offline while paying dispatch overheads: the
		// work it was about to run goes back to its queue.
		c.preemptPend = false
		if r.isJob {
			s.abortJob(c, r, 0)
		} else {
			if s.obs != nil {
				s.ev(obs.KindAbort, r, c.id, 0)
			}
			s.be.preempt(c.id, r)
			s.setReqState(r, rsQueued)
			s.vms[r.vmIdx].running--
			c.cur = nil
		}
		s.setBusy(c, false)
		s.setCoreKind(c, cIdle)
		c.idleEligible = false
		if s.obs != nil {
			s.evCore(obs.KindCoreIdle, c, 0)
		}
		return
	}
	if c.preemptPend && r.isJob && c.owner != s.harvestIdx {
		// A reclamation interrupt landed while this core was still in the
		// dispatch path to Harvest work: hand the job straight back.
		c.preemptPend = false
		s.abortJob(c, r, 0)
		s.dispatch(c, false)
		return
	}
	if r.isJob && c.owner != s.harvestIdx {
		s.setCoreKind(c, cRunLoaned)
	} else {
		s.setCoreKind(c, cRunOwn)
	}
	if r.isJob {
		s.activeJobs++
	}
	raw := r.currentPhase().CPU
	scaled := s.scaledBurst(c, r, raw)
	c.burstStart = s.now()
	c.burstEnd = s.now().Add(scaled)
	c.burstScaled = scaled
	c.burstRaw = raw
	if s.obs != nil {
		s.ev(obs.KindBurstStart, r, c.id, scaled)
	}
	s.setBusy(c, true)
	c.burstEv = s.eng.ScheduleCall(scaled, s, opBurstEnd, c, r)
}

func (s *Server) onBurstEnd(c *coreRT, r *request) {
	s.setBusy(c, false)
	if r.isJob {
		s.activeJobs--
	}
	r.exec += c.burstScaled
	v := s.vms[r.vmIdx]
	ph := r.currentPhase()
	c.burstEv = sim.Event{}
	if s.obs != nil {
		// Dur is the executed time attributed to the request: stall
		// extensions count as re-assignment, not execution.
		s.ev(obs.KindBurstEnd, r, c.id, c.burstScaled)
	}

	if ph.IO > 0 {
		// Block on I/O: the request's pointer stays queued (Blocked); the
		// core moves on.
		io := ph.IO
		if s.faultIOUntil > s.now() {
			// An I/O straggler fault is active: the backend answers slowly.
			io = sim.Duration(float64(io) * s.faultIOFactor)
		}
		v.running--
		v.blocked++
		if v.blockEWMA == 0 {
			v.blockEWMA = io
		} else {
			v.blockEWMA = (io + 4*v.blockEWMA) / 5
		}
		if s.obs != nil {
			s.ev(obs.KindBlock, r, c.id, io)
		}
		s.be.block(c.id, r)
		s.setReqState(r, rsBlocked)
		r.phase++
		s.eng.ScheduleCall(io, s, opIOComplete, nil, r)
		harvestOK := s.opts.HarvestOnBlock
		if harvestOK && s.opts.AdaptiveBlock && v.blockEWMA < s.cfg.AdaptiveBlockMin {
			// Adaptive fallback: short blocks make block-harvesting churn,
			// so this VM temporarily harvests on termination only.
			harvestOK = false
		}
		s.afterRelease(c, harvestOK)
		return
	}
	// Completion.
	if s.obs != nil && r.call == nil {
		s.ev(obs.KindComplete, r, c.id, s.now().Sub(r.arrival))
	}
	s.be.complete(c.id, r)
	v.running--
	if r.isJob {
		if s.measuring() {
			s.jobsDone++
		}
		s.refillJobs()
	} else if r.call != nil {
		// Resilient attempt: the call layer decides whether this completion
		// resolves the call or is a zombie (timed-out / losing attempt).
		s.completeAttempt(r, c.id)
	} else {
		s.requests++
		if r.measured {
			v.lat.Add(s.now().Sub(r.arrival))
			s.breakdown.AddRequest(r.reassign, r.flush, r.exec)
			v.breakdown.AddRequest(r.reassign, r.flush, r.exec)
		}
		if r.remoteID != 0 && s.opts.Remote.Done != nil {
			s.opts.Remote.Done(r.remoteID, s.now().Sub(r.arrival))
		}
	}
	s.afterRelease(c, true)
	// The request left every queue and metric above; recycle it last so the
	// dispatch chain in afterRelease cannot observe a half-reset object.
	s.freeRequest(r)
}

// afterRelease has a core that just finished or blocked a request pick its
// next work. harvestOK reflects the Term/Block policy for this release
// reason.
func (s *Server) afterRelease(c *coreRT, harvestOK bool) {
	s.dispatch(c, harvestOK)
}

func (s *Server) onIOComplete(r *request) {
	// The network response arrives at the NIC, which informs the QM
	// (hardware) or the response lands in the socket queue (software).
	delay := s.cfg.NICLat.QMNotify
	if !s.opts.HWQueue {
		delay = s.cfg.SWQueueAccess
	}
	s.eng.ScheduleCall(delay, s, opIOReady, nil, r)
}

// ioReady resumes a request whose I/O response has passed the queue/notify
// delay. Aggressive software harvesting takes cores mid-request: the
// resuming request's state lives on a vCPU that may now be unbacked, so the
// resume can pin just like an arrival.
func (s *Server) ioReady(r *request) {
	v := s.vms[r.vmIdx]
	if s.sw != nil && s.opts.Harvesting && s.opts.HarvestOnBlock && v.lentOut > 0 {
		pinProb := s.cfg.PinScale * float64(v.lentOut) / float64(s.cfg.CoresPerPrimary)
		if s.pollRNG.Float64() < pinProb {
			r.resuming = true
			s.pinRequest(v, r)
			return
		}
	}
	s.enqueueReady(r, false)
}

// ---- Harvest VM jobs ----

func (s *Server) refillJobs() {
	if !s.opts.HarvestVMActive {
		return
	}
	target := jobStock * s.cfg.CoresPerServer
	for s.be.readyLen(s.harvestIdx) < target {
		s.reqSeq++
		job := s.newRequest()
		job.id = s.reqSeq
		job.vmIdx = s.harvestIdx
		job.isJob = true
		job.arrival = s.now()
		job.phases = append(job.phases[:0], workload.Phase{CPU: s.hwork.SampleJob(s.jobRNG)})
		s.setReqState(job, rsQueued)
		if s.obs != nil {
			s.ev(obs.KindEnqueue, job, -1, 0)
		}
		wake, woken := s.be.enqueue(job)
		s.notify(s.harvestVM(), wake, woken)
	}
}

// abortJob removes a running/starting harvest job from a core and requeues
// it with its remaining demand. elapsedScaled is how long the current burst
// has been running.
func (s *Server) abortJob(c *coreRT, job *request, elapsedScaled sim.Duration) {
	s.trimRemainder(job, elapsedScaled, c.burstScaled)
	if s.obs != nil {
		s.ev(obs.KindAbort, job, c.id, elapsedScaled)
	}
	s.be.preempt(c.id, job)
	s.setReqState(job, rsQueued)
	s.vms[s.harvestIdx].running--
	c.cur = nil
}

// trimRemainder rewrites a preempted request's current phase to its
// remaining CPU demand, given how long the burst ran against its scheduled
// scaled length.
func (s *Server) trimRemainder(r *request, elapsedScaled, burstScaled sim.Duration) {
	if elapsedScaled <= 0 || burstScaled <= 0 {
		return
	}
	consumed := sim.Duration(float64(r.currentPhase().CPU) * float64(elapsedScaled) / float64(burstScaled))
	rem := r.currentPhase().CPU - consumed
	if rem < 10*sim.Microsecond {
		rem = 10 * sim.Microsecond
	}
	r.phases[r.phase].CPU = rem
}

// ---- Hardware reclamation (§4.1.5) ----

func (s *Server) schedulePreempt(c *coreRT) {
	s.eng.ScheduleCall(s.cfg.HWInterrupt, s, opPreempt, c, nil)
}

// preemptFired services the reclamation interrupt once it reaches the core.
func (s *Server) preemptFired(c *coreRT) {
	switch c.kind {
	case cRunLoaned:
		elapsed := s.now().Sub(c.burstStart)
		s.eng.Cancel(c.burstEv)
		c.burstEv = sim.Event{}
		s.setBusy(c, false)
		s.activeJobs--
		job := c.cur
		job.exec += elapsed
		if s.obs != nil {
			s.ev(obs.KindPreempt, job, c.id, elapsed)
		}
		s.abortJob(c, job, elapsed)
		s.reassigns++
		s.dispatch(c, false)
	case cIdle:
		s.dispatch(c, c.idleEligible)
	case cOverhead:
		if c.cur != nil && c.cur.isJob {
			c.preemptPend = true
		}
	default:
		// Already running its own work; nothing to reclaim.
	}
}

// ---- Software harvesting agent (SmartHarvest-style) ----

func (s *Server) agentSample() {
	for _, v := range s.vms {
		if !v.isPrimary {
			continue
		}
		// The agent sees the VM's CPU usage counters: running vCPUs plus
		// runnable queue. Requests blocked on I/O leave their vCPU idle,
		// so the usage signal cannot tell a blocked core from a free one —
		// the Term/Block distinction is enforced on core eligibility
		// instead (lendableCoreOf).
		busy := v.running + s.be.readyLen(v.idx)
		if busy > s.cfg.CoresPerPrimary {
			busy = s.cfg.CoresPerPrimary
		}
		s.agent.Observe(v.idx, busy)
	}
	if s.now() < s.horizon {
		s.eng.ScheduleCall(s.cfg.AgentSample, s, opAgentSample, nil, nil)
	}
}

func (s *Server) agentTick() {
	s.agent.EndWindow()
	for _, v := range s.vms {
		if !v.isPrimary {
			continue
		}
		// Reclaim first: unserved demand (queued or pinned work with no
		// idle core) or a prediction that now exceeds the unlent cores.
		idle := 0
		for i := range s.cores {
			c := &s.cores[i]
			if c.owner == v.idx && c.kind == cIdle && c.lentTo < 0 && c.offlineDepth == 0 {
				idle++
			}
		}
		deficit := s.be.readyLen(v.idx) + len(v.pinned) - idle
		if want := s.cfg.CoresPerPrimary - s.agent.Lendable(v.idx, s.cfg.CoresPerPrimary); v.lentOut > want {
			if d := v.lentOut - want; d > deficit {
				deficit = d
			}
		}
		for deficit > 0 && v.lentOut-v.pendingReclaims > 0 {
			s.startReclaim(v)
			deficit--
		}
		// Then lend idle cores above the prediction plus buffer.
		lend := s.agent.Lendable(v.idx, s.cfg.CoresPerPrimary) - v.lentOut
		for lend > 0 {
			c := s.lendableCoreOf(v)
			if c == nil {
				break
			}
			s.startLend(c)
			lend--
		}
	}
	if s.now() < s.horizon {
		s.eng.ScheduleCall(s.cfg.AgentInterval, s, opAgentTick, nil, nil)
	}
}

// stallVM models the hypervisor-side disruption of a core move: detaching
// or attaching a vCPU acquires hypervisor locks and interrupts cores, so
// the VM's other running vCPUs stall for part of the move (§2, §4.1.1).
// The stall extends in-flight bursts and is attributed to re-assignment
// overhead.
func (s *Server) stallVM(v *vmRT, stall sim.Duration) {
	if stall <= 0 {
		return
	}
	until := s.now().Add(stall)
	if until > v.stallUntil {
		v.stallUntil = until
	}
	for i := range s.cores {
		c := &s.cores[i]
		if c.owner != v.idx || c.kind != cRunOwn || !c.burstEv.Valid() {
			continue
		}
		s.eng.Cancel(c.burstEv)
		c.burstEnd = c.burstEnd.Add(stall)
		if c.cur != nil {
			c.cur.reassign += stall
		}
		c.burstEv = s.eng.CallAt(c.burstEnd, s, opBurstEnd, c, c.cur)
	}
}

// pinRequest parks an arrival on an unbacked vCPU: it waits for a reclaim,
// but no longer than GuestMigrateDelay, after which the guest scheduler
// migrates the handling thread to a backed vCPU.
func (s *Server) pinRequest(v *vmRT, r *request) {
	s.pins++
	s.setReqState(r, rsPinned)
	if s.obs != nil {
		s.ev(obs.KindPin, r, -1, 0)
	}
	v.pinned = append(v.pinned, r)
	if s.opts.EventDriven() && v.lentOut-v.pendingReclaims > 0 {
		s.startReclaim(v)
	}
	// If another backed vCPU is idle, the guest scheduler migrates the
	// handling thread quickly (one poll plus a context switch); the long
	// waits only occur when every backed vCPU is busy.
	if s.idleCoreOf(v) != nil {
		s.schedulePinRelease(v, r, s.pollDelay()+s.cfg.SWCtxSw)
	}
	s.schedulePinRelease(v, r, s.cfg.GuestMigrateDelay)
}

// schedulePinRelease schedules releasePin behind a request-generation guard:
// redundant release events can outlive the request (it may complete and be
// recycled through the pool first), and the guard keeps a stale event from
// acting on the slot's next occupant. Pins are software-path-only and rare,
// so the closure stays off the hot path.
func (s *Server) schedulePinRelease(v *vmRT, r *request, d sim.Duration) {
	gen := r.gen
	s.eng.Schedule(d, func() {
		if r.gen == gen {
			s.releasePin(v, r)
		}
	})
}

// releasePin moves a pinned request into the runnable queue if it is still
// pinned; the accumulated wait counts as re-assignment overhead.
func (s *Server) releasePin(v *vmRT, r *request) {
	if s.unpin(v, r) {
		w := s.now().Sub(r.arrival)
		if r.resuming {
			w = 0 // resume waits are visible in latency, not attributed
		}
		if s.obs != nil {
			s.ev(obs.KindUnpin, r, -1, w)
		}
		s.pinWaitSum += w
		r.reassign += w
		isNew := !r.resuming
		r.resuming = false
		s.enqueueReady(r, isNew)
	}
}

// unpin removes r from v's pinned list, reporting whether it was present.
func (s *Server) unpin(v *vmRT, r *request) bool {
	for i, pr := range v.pinned {
		if pr == r {
			v.pinned = append(v.pinned[:i], v.pinned[i+1:]...)
			return true
		}
	}
	return false
}

// serializeMove accounts a software move of the given cost against the
// hypervisor's global lock and returns the delay from now until the move
// completes (queueing behind in-flight moves included).
func (s *Server) serializeMove(cost sim.Duration) sim.Duration {
	start := s.now()
	if s.moveBusyUntil > start {
		start = s.moveBusyUntil
	}
	s.moveBusyUntil = start.Add(cost)
	return s.moveBusyUntil.Sub(s.now())
}

// startLend moves an idle Primary VM core to the Harvest VM through the
// hypervisor (detach + attach + context load, plus the secure flush).
func (s *Server) startLend(c *coreRT) {
	v := s.vms[c.owner]
	v.lentOut++
	s.setCoreKind(c, cOverhead)
	c.cur = nil
	c.lentTo = s.harvestIdx
	s.reassigns++
	var cost, flushCost sim.Duration
	if !s.opts.ReassignFree {
		cost = s.cfg.Costs.ReassignCost(s.opts.Reassign)
	}
	if s.opts.FlushOnSwitch {
		flushCost = s.cfg.Costs.FlushCost(s.flushRNG)
		cost += flushCost
		c.coldFactor = s.cfg.Costs.ColdExecutionFactor
		c.warmLeft = s.cfg.Costs.ColdWarmupCPUTime
	}
	// The hypervisor calls, the wbinvd-style flush, and the guest-side
	// vCPU unplug synchronization all disrupt the VM's other vCPUs.
	s.stallVM(v, sim.Duration(float64(cost)*s.cfg.MoveStallFrac)+s.cfg.GuestUnplugStall)
	delay := s.serializeMove(cost)
	if s.obs != nil {
		s.evCore(obs.KindLendStart, c, delay)
		if flushCost > 0 {
			s.evCore(obs.KindFlushStart, c, flushCost)
			s.evCore(obs.KindFlushEnd, c, 0)
		}
	}
	s.setBusy(c, true) // the core is occupied by the move, not idle
	s.eng.ScheduleCall(delay, s, opLendEnd, c, nil)
}

// lendEnd finishes a hypervisor lend move: the core starts serving the
// Harvest VM.
func (s *Server) lendEnd(c *coreRT) {
	s.setBusy(c, false)
	if s.obs != nil {
		s.evCore(obs.KindLendEnd, c, 0)
	}
	s.dispatch(c, false)
}

// startReclaim takes a lent core back for a Primary VM that has queued work
// and no idle cores, paying the full software re-assignment cost.
func (s *Server) startReclaim(v *vmRT) {
	var victim *coreRT
	for i := range s.cores {
		c := &s.cores[i]
		if c.owner == v.idx && c.lentTo >= 0 && (c.kind == cRunLoaned || c.kind == cIdle) &&
			c.offlineDepth == 0 {
			victim = c
			break
		}
	}
	if victim == nil {
		return
	}
	v.pendingReclaims++
	s.reassigns++
	if victim.kind == cRunLoaned {
		elapsed := s.now().Sub(victim.burstStart)
		s.eng.Cancel(victim.burstEv)
		victim.burstEv = sim.Event{}
		s.setBusy(victim, false)
		s.activeJobs--
		job := victim.cur
		job.exec += elapsed
		s.abortJob(victim, job, elapsed)
	}
	s.setCoreKind(victim, cOverhead)
	victim.cur = nil
	var cost, flushPart sim.Duration
	if !s.opts.ReassignFree {
		cost = s.cfg.Costs.ReassignCost(s.opts.Reassign)
	}
	if s.opts.FlushOnSwitch {
		flushPart = s.cfg.Costs.FlushCost(s.flushRNG)
		cost += flushPart
		victim.pendingFlush += flushPart
		victim.coldFactor = s.cfg.Costs.ColdExecutionFactor
		victim.warmLeft = s.cfg.Costs.ColdWarmupCPUTime
	}
	s.stallVM(v, sim.Duration(float64(cost)*s.cfg.MoveStallFrac)+s.cfg.GuestUnplugStall)
	delay := s.serializeMove(cost)
	if s.obs != nil {
		s.evCore(obs.KindReclaimStart, victim, delay)
		if flushPart > 0 {
			s.evCore(obs.KindFlushStart, victim, flushPart)
			s.evCore(obs.KindFlushEnd, victim, 0)
		}
	}
	// Lock-queueing plus the move itself are re-assignment overhead on the
	// reclaimed core's next request; the flush part is attributed above.
	victim.pendingReassign += delay - flushPart
	s.setBusy(victim, true)
	s.eng.ScheduleCall(delay, s, opReclaimEnd, victim, nil)
}

// reclaimEnd finishes a hypervisor reclaim move: the core returns to its
// owner VM and every pinned arrival becomes schedulable.
func (s *Server) reclaimEnd(victim *coreRT) {
	v := s.vms[victim.owner]
	s.setBusy(victim, false)
	victim.lentTo = -1
	v.lentOut--
	v.pendingReclaims--
	if s.obs != nil {
		s.evCore(obs.KindReclaimEnd, victim, 0)
	}
	// The reclaimed vCPU is schedulable again: release every pinned
	// arrival; the wait counts as re-assignment overhead (Figure 6).
	pinned := v.pinned
	v.pinned = nil
	for _, pr := range pinned {
		if s.obs != nil {
			s.ev(obs.KindUnpin, pr, -1, s.now().Sub(pr.arrival))
		}
		pr.reassign += s.now().Sub(pr.arrival)
		s.enqueueReady(pr, true)
	}
	s.dispatch(victim, false)
}

// ---- Results ----

// CoreCycles is one core's cycle account over a span of simulated time,
// split by phase: Idle, Overhead (dispatch paths, flushes, hypervisor and
// controller moves), RunOwn (executing the owner VM's work), and RunLoaned
// (executing harvested work for another VM). The four buckets sum exactly
// to the span — that identity is what the validate oracle's utilization-
// conservation check asserts.
type CoreCycles struct {
	Idle      sim.Duration
	Overhead  sim.Duration
	RunOwn    sim.Duration
	RunLoaned sim.Duration
}

// Total sums the four phase buckets.
func (cc CoreCycles) Total() sim.Duration {
	return cc.Idle + cc.Overhead + cc.RunOwn + cc.RunLoaned
}

// Sub reports the bucket-wise difference cc - other.
func (cc CoreCycles) Sub(other CoreCycles) CoreCycles {
	return CoreCycles{
		Idle:      cc.Idle - other.Idle,
		Overhead:  cc.Overhead - other.Overhead,
		RunOwn:    cc.RunOwn - other.RunOwn,
		RunLoaned: cc.RunLoaned - other.RunLoaned,
	}
}

// acctSnapshot folds every core's open phase interval into its account and
// returns a copy of the accounts (nil on uninstrumented runs, whose
// setCoreKind skips accounting). It runs at most three times per run
// (window edges and end of run), never on the event hot path.
func (s *Server) acctSnapshot() []CoreCycles {
	if !s.acctOn {
		return nil
	}
	now := s.now()
	out := make([]CoreCycles, len(s.cores))
	for i := range s.cores {
		c := &s.cores[i]
		c.acct[c.kind] += now.Sub(c.acctSince)
		c.acctSince = now
		out[i] = CoreCycles{
			Idle:      c.acct[cIdle],
			Overhead:  c.acct[cOverhead],
			RunOwn:    c.acct[cRunOwn],
			RunLoaned: c.acct[cRunLoaned],
		}
	}
	return out
}

func (s *Server) result() *ServerResult {
	res := &ServerResult{
		System:    s.opts.Name,
		Workload:  s.hwork.Name,
		Service:   make(map[string]*metrics.LatencyRecorder, s.cfg.PrimaryVMs),
		Breakdown: s.breakdown,
		Elapsed:   s.cfg.MeasureDuration,
		Reassigns: s.reassigns,
		Requests:  s.requests,
		Arrivals:  s.arrivals,
		Pins:      s.pins,
	}
	if s.pins > 0 {
		res.MeanPinWait = s.pinWaitSum / sim.Duration(s.pins)
	}
	res.ServiceBreakdown = make(map[string]metrics.Breakdown, s.cfg.PrimaryVMs)
	for _, v := range s.vms {
		if v.isPrimary {
			// Freeze pre-sorts the samples: a published ServerResult is read
			// concurrently by experiments sharing memoized runs, and lazy
			// quantile sorting would race.
			v.lat.Freeze()
			res.Service[v.profile.Name] = v.lat
			res.ServiceBreakdown[v.profile.Name] = v.breakdown
		}
	}
	res.BusyCores = s.util.BusyCores(s.cfg.MeasureDuration)
	res.CoreCyclesTotal = s.acctSnapshot()
	res.AccountedEnd = s.now()
	if len(s.coreWinStart) > 0 && len(s.coreWinEnd) > 0 {
		res.CoreCyclesWindow = make([]CoreCycles, len(s.coreWinEnd))
		for i := range s.coreWinEnd {
			res.CoreCyclesWindow[i] = s.coreWinEnd[i].Sub(s.coreWinStart[i])
		}
	}
	res.HarvestJobs = s.jobsDone
	res.HarvestJobsPerSec = float64(s.jobsDone) / s.cfg.MeasureDuration.Seconds()
	s.checkConservation()
	res.InvariantViolations = s.inv.violations
	res.FirstViolation = s.inv.firstMsg
	res.FaultsInjected = s.faultsInjected
	res.Sheds = s.sheds
	res.Retries = s.retries
	res.Hedges = s.hedges
	res.HedgesWon = s.hedgesWon
	res.HedgesLost = s.hedgesLost
	res.DeadlineMisses = s.deadlineMisses
	return res
}

// ServerResult summarizes one server run.
type ServerResult struct {
	System   string
	Workload string
	// Service maps service name to its latency recorder.
	Service map[string]*metrics.LatencyRecorder
	// Breakdown accumulates Figure 6's per-request components; the
	// ServiceBreakdown map holds the per-service split.
	Breakdown        metrics.Breakdown
	ServiceBreakdown map[string]metrics.Breakdown
	// BusyCores is the time-averaged busy core count (§6.7).
	BusyCores float64
	// HarvestJobs / HarvestJobsPerSec report Harvest VM throughput.
	HarvestJobs       uint64
	HarvestJobsPerSec float64
	// Reassigns counts core movements between VMs.
	Reassigns uint64
	// Pins counts arrivals that landed on unbacked vCPUs; MeanPinWait is
	// their average stall.
	Pins        uint64
	MeanPinWait sim.Duration
	// Requests is the number of completed primary invocations; Arrivals is
	// how many entered the system (the difference is in flight when the
	// engine stops).
	Requests int
	Arrivals int
	Elapsed  sim.Duration

	// CoreCyclesWindow is each core's phase-split cycle account over the
	// measurement window (idle + overhead + own-run + loaned-run sums to
	// MeasureDuration exactly); CoreCyclesTotal covers the whole run up to
	// AccountedEnd. Both feed the validate oracle's utilization-
	// conservation check and are populated only on instrumented runs
	// (Options.Observer != nil) — plain runs skip the per-transition
	// accounting to keep the hot path lean.
	CoreCyclesWindow []CoreCycles
	CoreCyclesTotal  []CoreCycles
	AccountedEnd     sim.Time

	// InvariantViolations counts checker violations tolerated during the
	// run (always zero under Config.Strict, which panics instead);
	// FirstViolation describes the first one.
	InvariantViolations uint64
	FirstViolation      string
	// Robustness counters: injected faults, load-shed attempts, retry and
	// hedge attempts, hedge outcomes, and calls that exhausted their retry
	// budget (deadline misses).
	FaultsInjected uint64
	Sheds          uint64
	Retries        uint64
	Hedges         uint64
	HedgesWon      uint64
	HedgesLost     uint64
	DeadlineMisses uint64
}

// P99 reports a service's tail latency (zero if the service is unknown).
func (r *ServerResult) P99(service string) sim.Duration {
	if rec, ok := r.Service[service]; ok {
		return rec.P99()
	}
	return 0
}

// AvgP99 reports the mean of the per-service P99s, the paper's "Average"
// bar.
func (r *ServerResult) AvgP99() sim.Duration {
	var sum sim.Duration
	n := 0
	for _, rec := range r.Service {
		sum += rec.P99()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

// AvgP50 reports the mean of the per-service median latencies.
func (r *ServerResult) AvgP50() sim.Duration {
	var sum sim.Duration
	n := 0
	for _, rec := range r.Service {
		sum += rec.P50()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

func (r *ServerResult) String() string {
	return fmt.Sprintf("%s[%s]: avgP99=%v busy=%.1f jobs/s=%.0f",
		r.System, r.Workload, r.AvgP99(), r.BusyCores, r.HarvestJobsPerSec)
}
