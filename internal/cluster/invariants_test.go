package cluster

import (
	"strings"
	"testing"

	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
)

// TestIllegalTransitionsCounted drives the checked setters through illegal
// transitions directly and verifies the non-strict path tolerates, counts,
// and describes them.
func TestIllegalTransitionsCounted(t *testing.T) {
	// acctOn makes setCoreKind fold elapsed time into the core's cycle
	// account (the instrumented-run path), so this bare server needs a
	// clock too.
	s := &Server{eng: sim.NewEngine(), acctOn: true}
	r := &request{id: 7}

	s.setReqState(r, rsRunning) // free -> running skips transit+queued
	if s.inv.violations != 1 {
		t.Fatalf("violations = %d, want 1", s.inv.violations)
	}
	if !strings.Contains(s.inv.firstMsg, "request 7") ||
		!strings.Contains(s.inv.firstMsg, "free -> running") {
		t.Fatalf("firstMsg = %q", s.inv.firstMsg)
	}
	// The transition is still applied (tolerate-and-count), and the census
	// tracks the new state.
	if r.state != rsRunning || s.inv.counts[rsRunning] != 1 {
		t.Fatalf("state = %v counts[running] = %d", r.state, s.inv.counts[rsRunning])
	}
	// A later legal transition adds no violation.
	s.setReqState(r, rsBlocked)
	if s.inv.violations != 1 {
		t.Fatalf("legal transition counted: violations = %d", s.inv.violations)
	}

	c := &coreRT{id: 3, kind: cIdle}
	s.setCoreKind(c, cRunOwn) // idle -> run-own skips overhead
	if s.inv.violations != 2 {
		t.Fatalf("core violation not counted: %d", s.inv.violations)
	}
	if c.kind != cRunOwn {
		t.Fatalf("core kind = %v", c.kind)
	}

	// firstMsg keeps the first violation only.
	if !strings.Contains(s.inv.firstMsg, "request 7") {
		t.Fatalf("firstMsg overwritten: %q", s.inv.firstMsg)
	}
}

// TestStrictPanicsWithReplayInfo verifies the strict mode contract: the
// panic message carries the seed, the system name, and the event ring.
func TestStrictPanicsWithReplayInfo(t *testing.T) {
	cfg := testConfig()
	cfg.Strict = true
	cfg.Seed = 42
	s := NewServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("expected a string panic")
		}
		for _, want := range []string{"invariant violation", "seed=42", `system="HardHarvest-Block"`, "recent events"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	s.ring.record(0, opDispatch)
	r := &request{id: 1}
	s.setReqState(r, rsRunning)
	t.Fatal("strict violation did not panic")
}

// TestFiveSystemsStrictClean runs all five architectures under the strict
// checker: any illegal transition in the normal (fault-free) paths panics.
func TestFiveSystemsStrictClean(t *testing.T) {
	t.Parallel()
	for _, k := range Systems() {
		cfg := testConfig()
		cfg.MeasureDuration = 120 * sim.Millisecond
		cfg.Strict = true
		res := RunServer(cfg, SystemOptions(k), bfs(t))
		if res.InvariantViolations != 0 {
			t.Fatalf("%v: %d violations: %s", k, res.InvariantViolations, res.FirstViolation)
		}
		if res.Requests == 0 {
			t.Fatalf("%v: no requests", k)
		}
	}
}

// TestStrictCleanUnderFaultsAndResilience is the core robustness check: the
// full fault plan plus all resilience policies, strict checker on, both
// hardware and software paths.
func TestStrictCleanUnderFaultsAndResilience(t *testing.T) {
	t.Parallel()
	for _, k := range []SystemKind{HarvestBlock, HardHarvestBlock} {
		cfg := testConfig()
		cfg.MeasureDuration = 150 * sim.Millisecond
		cfg.Strict = true
		cfg.FaultPlan = faults.DefaultPlan().Scaled(2)
		opts := SystemOptions(k)
		opts.Resilience = DefaultResilience()
		res := RunServer(cfg, opts, bfs(t))
		if res.InvariantViolations != 0 {
			t.Fatalf("%v: %d violations: %s", k, res.InvariantViolations, res.FirstViolation)
		}
		if res.FaultsInjected == 0 {
			t.Fatalf("%v: no faults injected", k)
		}
	}
}

// TestAggressiveRecycling is the pooled-object regression test: tiny
// timeouts, a deep retry budget, eager hedging, and a heavy fault plan make
// calls and requests churn through their pools as fast as the simulator
// allows. A ScheduleCall callback capturing a pooled object without a
// generation/cancellation guard shows up here as an invariant violation
// (strict mode panics) or a conservation failure.
func TestAggressiveRecycling(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.MeasureDuration = 150 * sim.Millisecond
	cfg.Strict = true
	cfg.FaultPlan = faults.DefaultPlan().Scaled(3)
	opts := SystemOptions(HardHarvestBlock)
	opts.Resilience = Resilience{
		Timeout:       600 * sim.Microsecond, // far below typical demand
		MaxRetries:    3,
		RetryBackoff:  50 * sim.Microsecond,
		BackoffFactor: 1.5,
		JitterFrac:    0.5,
		HedgeDelay:    300 * sim.Microsecond,
		MaxQueueDepth: 6,
	}
	res := RunServer(cfg, opts, bfs(t))
	if res.InvariantViolations != 0 {
		t.Fatalf("%d violations: %s", res.InvariantViolations, res.FirstViolation)
	}
	// The point of the test is churn: retries and deadline misses must
	// actually have recycled calls, and hedges must have raced primaries.
	if res.Retries == 0 || res.DeadlineMisses == 0 || res.Hedges == 0 {
		t.Fatalf("not aggressive enough: retries=%d misses=%d hedges=%d",
			res.Retries, res.DeadlineMisses, res.Hedges)
	}
}

// TestResultsIdenticalWithCheckerStrict verifies the checker itself does
// not perturb the simulation: strict on/off must produce identical tables.
func TestResultsIdenticalWithCheckerStrict(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.MeasureDuration = 120 * sim.Millisecond
	a := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	cfg.Strict = true
	b := RunServer(cfg, SystemOptions(HardHarvestBlock), bfs(t))
	if a.AvgP99() != b.AvgP99() || a.Requests != b.Requests || a.HarvestJobs != b.HarvestJobs {
		t.Fatalf("strict changed results: %v/%d/%d vs %v/%d/%d",
			a.AvgP99(), a.Requests, a.HarvestJobs, b.AvgP99(), b.Requests, b.HarvestJobs)
	}
}
