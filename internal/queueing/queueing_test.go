package queueing

import (
	"math"
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestMMcKnownValues(t *testing.T) {
	// M/M/1 at rho = 0.5: ErlangC = rho = 0.5, W = rho/(mu-lambda) = 0.5/1 s...
	q := MMc{Lambda: 0.5, Mu: 1, C: 1}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-0.5) > 1e-9 {
		t.Fatalf("M/M/1 ErlangC = %v, want 0.5", pw)
	}
	w, _ := q.MeanWait()
	if math.Abs(w-1.0) > 1e-9 { // rho/(mu - lambda) = 0.5/0.5
		t.Fatalf("M/M/1 wait = %v, want 1", w)
	}
	r, _ := q.MeanResponse()
	if math.Abs(r-2.0) > 1e-9 { // 1/(mu-lambda)
		t.Fatalf("M/M/1 response = %v, want 2", r)
	}
}

func TestMMcMultiServer(t *testing.T) {
	// M/M/2 with a = 1 (rho = 0.5): ErlangC = 1/3 (standard result).
	q := MMc{Lambda: 1, Mu: 1, C: 2}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-1.0/3.0) > 1e-9 {
		t.Fatalf("M/M/2 ErlangC = %v, want 1/3", pw)
	}
	// More servers at the same per-server load wait less.
	q4 := MMc{Lambda: 2, Mu: 1, C: 4}
	pw4, _ := q4.ErlangC()
	if pw4 >= pw {
		t.Fatalf("M/M/4 wait prob %v should be below M/M/2's %v", pw4, pw)
	}
}

func TestUnstableQueues(t *testing.T) {
	if _, err := (MMc{Lambda: 2, Mu: 1, C: 1}).ErlangC(); err == nil {
		t.Fatal("unstable M/M/1 should error")
	}
	if _, err := (MG1{Lambda: 2, MeanS: 1}).MeanWait(); err == nil {
		t.Fatal("unstable M/G/1 should error")
	}
	if _, err := MM1TailQuantile(2, 1, 0.99); err == nil {
		t.Fatal("unstable quantile should error")
	}
	if _, err := MM1TailQuantile(0.5, 1, 1.5); err == nil {
		t.Fatal("bad p should error")
	}
}

func TestPollaczekKhinchine(t *testing.T) {
	// Deterministic service (SCV 0) waits half as long as exponential
	// (SCV 1) at the same load.
	det := MG1{Lambda: 0.5, MeanS: 1, SCVS: 0}
	exp := MG1{Lambda: 0.5, MeanS: 1, SCVS: 1}
	wd, _ := det.MeanWait()
	we, _ := exp.MeanWait()
	if math.Abs(wd*2-we) > 1e-9 {
		t.Fatalf("PK ratio wrong: det %v exp %v", wd, we)
	}
	// M/G/1 with SCV 1 must equal M/M/1.
	mm1 := MMc{Lambda: 0.5, Mu: 1, C: 1}
	wm, _ := mm1.MeanWait()
	if math.Abs(we-wm) > 1e-9 {
		t.Fatalf("M/G/1(SCV=1) %v != M/M/1 %v", we, wm)
	}
}

func TestMGcReducesToMMc(t *testing.T) {
	mgc := MGc{Lambda: 1, MeanS: 1, SCVS: 1, C: 2}
	mmc := MMc{Lambda: 1, Mu: 1, C: 2}
	wa, _ := mgc.MeanWait()
	wb, _ := mmc.MeanWait()
	if math.Abs(wa-wb) > 1e-9 {
		t.Fatalf("Allen-Cunneen at SCV=1 %v != M/M/c %v", wa, wb)
	}
	if mgc.Rho() != 0.5 {
		t.Fatalf("rho = %v", mgc.Rho())
	}
	r, _ := mgc.MeanResponse()
	if r <= wa {
		t.Fatal("response must include service")
	}
}

func TestMM1TailQuantile(t *testing.T) {
	// Response time is Exp(mu-lambda): P99 = ln(100)/(mu-lambda).
	got, err := MM1TailQuantile(0.5, 1.0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(100) / 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("P99 = %v, want %v", got, want)
	}
}

// TestSimulatorAgreesWithTheory cross-validates the discrete-event engine:
// a hand-built M/M/c simulation on the sim engine must match the analytic
// mean response within a few percent.
func TestSimulatorAgreesWithTheory(t *testing.T) {
	const (
		lambda = 4000.0 // req/s
		mu     = 2000.0 // per server
		c      = 4
	)
	eng := sim.NewEngine()
	rng := stats.NewRNG(42)
	type srv struct{ busy int }
	s := &srv{}
	var queue []sim.Time
	var totalResp float64
	var done int

	var depart func()
	depart = func() {
		if len(queue) > 0 {
			arr := queue[0]
			queue = queue[1:]
			svc := sim.Duration(rng.Exp(1/mu) * float64(sim.Second))
			eng.Schedule(svc, func() {
				totalResp += float64(eng.Now().Sub(arr))
				done++
				depart()
			})
		} else {
			s.busy--
		}
	}
	var arrive func()
	arrive = func() {
		gap := sim.Duration(rng.Exp(1/lambda) * float64(sim.Second))
		eng.Schedule(gap, func() {
			now := eng.Now()
			if s.busy < c {
				s.busy++
				svc := sim.Duration(rng.Exp(1/mu) * float64(sim.Second))
				eng.Schedule(svc, func() {
					totalResp += float64(eng.Now().Sub(now))
					done++
					depart()
				})
			} else {
				queue = append(queue, now)
			}
			arrive()
		})
	}
	arrive()
	eng.Run(sim.Time(30 * sim.Second))

	simMean := totalResp / float64(done) / float64(sim.Second)
	want, err := (MMc{Lambda: lambda, Mu: mu, C: c}).MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(simMean-want) / want
	t.Logf("simulated %.6fs vs analytic %.6fs (%.1f%% off, %d requests)", simMean, want, 100*rel, done)
	if rel > 0.05 {
		t.Fatalf("simulator disagrees with M/M/c theory by %.1f%%", 100*rel)
	}
}

// TestFormulasAllocFree pins the hot-path audit: the analytic formulas are
// pure float arithmetic and must not allocate on the success path (errors
// allocate, but only on invalid/unstable inputs).
func TestFormulasAllocFree(t *testing.T) {
	mmc := MMc{Lambda: 800, Mu: 100, C: 12}
	mg1 := MG1{Lambda: 50, MeanS: 0.01, SCVS: 1.5}
	mgc := MGc{Lambda: 800, MeanS: 0.01, SCVS: 1.5, C: 12}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := mmc.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := mg1.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := mgc.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := MM1TailQuantile(90, 100, 0.99); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("analytic formulas allocate %.1f per sweep, want 0", avg)
	}
}
