package queueing

import (
	"math"
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestMMcKnownValues(t *testing.T) {
	// M/M/1 at rho = 0.5: ErlangC = rho = 0.5, W = rho/(mu-lambda) = 0.5/1 s...
	q := MMc{Lambda: 0.5, Mu: 1, C: 1}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-0.5) > 1e-9 {
		t.Fatalf("M/M/1 ErlangC = %v, want 0.5", pw)
	}
	w, _ := q.MeanWait()
	if math.Abs(w-1.0) > 1e-9 { // rho/(mu - lambda) = 0.5/0.5
		t.Fatalf("M/M/1 wait = %v, want 1", w)
	}
	r, _ := q.MeanResponse()
	if math.Abs(r-2.0) > 1e-9 { // 1/(mu-lambda)
		t.Fatalf("M/M/1 response = %v, want 2", r)
	}
}

func TestMMcMultiServer(t *testing.T) {
	// M/M/2 with a = 1 (rho = 0.5): ErlangC = 1/3 (standard result).
	q := MMc{Lambda: 1, Mu: 1, C: 2}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-1.0/3.0) > 1e-9 {
		t.Fatalf("M/M/2 ErlangC = %v, want 1/3", pw)
	}
	// More servers at the same per-server load wait less.
	q4 := MMc{Lambda: 2, Mu: 1, C: 4}
	pw4, _ := q4.ErlangC()
	if pw4 >= pw {
		t.Fatalf("M/M/4 wait prob %v should be below M/M/2's %v", pw4, pw)
	}
}

func TestUnstableQueues(t *testing.T) {
	if _, err := (MMc{Lambda: 2, Mu: 1, C: 1}).ErlangC(); err == nil {
		t.Fatal("unstable M/M/1 should error")
	}
	if _, err := (MG1{Lambda: 2, MeanS: 1}).MeanWait(); err == nil {
		t.Fatal("unstable M/G/1 should error")
	}
	if _, err := MM1TailQuantile(2, 1, 0.99); err == nil {
		t.Fatal("unstable quantile should error")
	}
	if _, err := MM1TailQuantile(0.5, 1, 1.5); err == nil {
		t.Fatal("bad p should error")
	}
}

func TestPollaczekKhinchine(t *testing.T) {
	// Deterministic service (SCV 0) waits half as long as exponential
	// (SCV 1) at the same load.
	det := MG1{Lambda: 0.5, MeanS: 1, SCVS: 0}
	exp := MG1{Lambda: 0.5, MeanS: 1, SCVS: 1}
	wd, _ := det.MeanWait()
	we, _ := exp.MeanWait()
	if math.Abs(wd*2-we) > 1e-9 {
		t.Fatalf("PK ratio wrong: det %v exp %v", wd, we)
	}
	// M/G/1 with SCV 1 must equal M/M/1.
	mm1 := MMc{Lambda: 0.5, Mu: 1, C: 1}
	wm, _ := mm1.MeanWait()
	if math.Abs(we-wm) > 1e-9 {
		t.Fatalf("M/G/1(SCV=1) %v != M/M/1 %v", we, wm)
	}
}

func TestMGcReducesToMMc(t *testing.T) {
	mgc := MGc{Lambda: 1, MeanS: 1, SCVS: 1, C: 2}
	mmc := MMc{Lambda: 1, Mu: 1, C: 2}
	wa, _ := mgc.MeanWait()
	wb, _ := mmc.MeanWait()
	if math.Abs(wa-wb) > 1e-9 {
		t.Fatalf("Allen-Cunneen at SCV=1 %v != M/M/c %v", wa, wb)
	}
	if mgc.Rho() != 0.5 {
		t.Fatalf("rho = %v", mgc.Rho())
	}
	r, _ := mgc.MeanResponse()
	if r <= wa {
		t.Fatal("response must include service")
	}
}

func TestMM1TailQuantile(t *testing.T) {
	// Response time is Exp(mu-lambda): P99 = ln(100)/(mu-lambda).
	got, err := MM1TailQuantile(0.5, 1.0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(100) / 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("P99 = %v, want %v", got, want)
	}
}

// TestSimulatorAgreesWithTheory cross-validates the discrete-event engine:
// a hand-built M/M/c simulation on the sim engine must match the analytic
// mean response within a few percent.
func TestSimulatorAgreesWithTheory(t *testing.T) {
	const (
		lambda = 4000.0 // req/s
		mu     = 2000.0 // per server
		c      = 4
	)
	eng := sim.NewEngine()
	rng := stats.NewRNG(42)
	type srv struct{ busy int }
	s := &srv{}
	var queue []sim.Time
	var totalResp float64
	var done int

	var depart func()
	depart = func() {
		if len(queue) > 0 {
			arr := queue[0]
			queue = queue[1:]
			svc := sim.Duration(rng.Exp(1/mu) * float64(sim.Second))
			eng.Schedule(svc, func() {
				totalResp += float64(eng.Now().Sub(arr))
				done++
				depart()
			})
		} else {
			s.busy--
		}
	}
	var arrive func()
	arrive = func() {
		gap := sim.Duration(rng.Exp(1/lambda) * float64(sim.Second))
		eng.Schedule(gap, func() {
			now := eng.Now()
			if s.busy < c {
				s.busy++
				svc := sim.Duration(rng.Exp(1/mu) * float64(sim.Second))
				eng.Schedule(svc, func() {
					totalResp += float64(eng.Now().Sub(now))
					done++
					depart()
				})
			} else {
				queue = append(queue, now)
			}
			arrive()
		})
	}
	arrive()
	eng.Run(sim.Time(30 * sim.Second))

	simMean := totalResp / float64(done) / float64(sim.Second)
	want, err := (MMc{Lambda: lambda, Mu: mu, C: c}).MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(simMean-want) / want
	t.Logf("simulated %.6fs vs analytic %.6fs (%.1f%% off, %d requests)", simMean, want, 100*rel, done)
	if rel > 0.05 {
		t.Fatalf("simulator disagrees with M/M/c theory by %.1f%%", 100*rel)
	}
}

// TestFormulasAllocFree pins the hot-path audit: the analytic formulas are
// pure float arithmetic and must not allocate on the success path (errors
// allocate, but only on invalid/unstable inputs).
func TestFormulasAllocFree(t *testing.T) {
	mmc := MMc{Lambda: 800, Mu: 100, C: 12}
	mg1 := MG1{Lambda: 50, MeanS: 0.01, SCVS: 1.5}
	mgc := MGc{Lambda: 800, MeanS: 0.01, SCVS: 1.5, C: 12}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := mmc.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := mg1.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := mgc.MeanResponse(); err != nil {
			t.Fatal(err)
		}
		if _, err := MM1TailQuantile(90, 100, 0.99); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("analytic formulas allocate %.1f per sweep, want 0", avg)
	}
}

func TestMMcKErlangB(t *testing.T) {
	// K = C reduces M/M/c/K to the Erlang-B loss system; M/M/1/1 with a = 1
	// blocks with probability a/(1+a) = 0.5.
	q := MMcK{Lambda: 1, Mu: 1, C: 1, K: 1}
	b, err := q.BlockProb()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("M/M/1/1 blocking = %v, want 0.5", b)
	}
	// Erlang-B for c=2, a=2: (a^2/2) / (1 + a + a^2/2) = 2/5.
	q2 := MMcK{Lambda: 2, Mu: 1, C: 2, K: 2}
	b2, _ := q2.BlockProb()
	if math.Abs(b2-0.4) > 1e-9 {
		t.Fatalf("Erlang-B(2,2) = %v, want 0.4", b2)
	}
}

func TestMMcKMatchesMM1Truncation(t *testing.T) {
	// M/M/1/K steady state is the truncated geometric rho^n (1-rho)/(1-rho^{K+1}).
	q := MMcK{Lambda: 0.5, Mu: 1, C: 1, K: 4}
	p, err := q.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	rho := 0.5
	norm := (1 - rho) / (1 - math.Pow(rho, 5))
	for n := 0; n <= 4; n++ {
		want := math.Pow(rho, float64(n)) * norm
		if math.Abs(p[n]-want) > 1e-9 {
			t.Fatalf("p[%d] = %v, want %v", n, p[n], want)
		}
	}
}

func TestMMcKConsistency(t *testing.T) {
	q := MMcK{Lambda: 30, Mu: 10, C: 2, K: 10}
	p, err := q.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// An overloaded loss system still has a steady state; throughput
	// saturates below the raw arrival rate.
	th, err := q.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th >= q.Lambda {
		t.Fatalf("throughput %v outside (0, lambda)", th)
	}
	if th > float64(q.C)*q.Mu+1e-9 {
		t.Fatalf("throughput %v exceeds service capacity", th)
	}
	// More queue slots shed less.
	bSmall, _ := MMcK{Lambda: 30, Mu: 10, C: 2, K: 4}.BlockProb()
	bBig, _ := q.BlockProb()
	if bBig >= bSmall {
		t.Fatalf("deeper queue should block less: K=10 %v vs K=4 %v", bBig, bSmall)
	}
	// Mean response of accepted requests is at least one service time.
	r, err := q.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	if r < 1/q.Mu {
		t.Fatalf("mean response %v below a service time", r)
	}
	if _, err := (MMcK{Lambda: 1, Mu: 1, C: 2, K: 1}).BlockProb(); err == nil {
		t.Fatal("K < C should error")
	}
}
