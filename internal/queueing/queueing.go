// Package queueing provides analytic queueing approximations (M/M/c,
// M/G/1, and the Allen-Cunneen M/G/c approximation) used to cross-validate
// the discrete-event simulator: at low load with no harvesting, the
// simulated Primary VM latencies must agree with queueing theory, which
// gives the repository an independent check on the simulation machinery.
package queueing

import (
	"fmt"
	"math"
)

// MMc describes an M/M/c queue: Poisson arrivals at rate lambda, c servers
// with exponential service at rate mu each.
type MMc struct {
	Lambda float64 // arrivals per second
	Mu     float64 // service completions per second per server
	C      int     // servers
}

// Rho reports the per-server utilization.
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue has a steady state.
func (q MMc) Stable() bool { return q.Lambda > 0 && q.Mu > 0 && q.C > 0 && q.Rho() < 1 }

// ErlangC reports the probability an arrival must wait (all servers busy).
func (q MMc) ErlangC() (float64, error) {
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: unstable M/M/%d at rho=%.3f", q.C, q.Rho())
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := float64(q.C)
	// Sum_{k=0}^{c-1} a^k/k! computed iteratively.
	sum := 0.0
	term := 1.0
	for k := 0; k < q.C; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / c / (1 - q.Rho()) // a^c/c! * 1/(1-rho)
	return top / (sum + top), nil
}

// MeanWait reports the mean time in queue (excluding service).
func (q MMc) MeanWait() (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pw / (float64(q.C)*q.Mu - q.Lambda), nil
}

// MeanResponse reports the mean time in system (queue + service).
func (q MMc) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + 1/q.Mu, nil
}

// MG1 describes an M/G/1 queue with general service times.
type MG1 struct {
	Lambda float64 // arrivals per second
	MeanS  float64 // mean service time (seconds)
	SCVS   float64 // squared coefficient of variation of service time
}

// Rho reports utilization.
func (q MG1) Rho() float64 { return q.Lambda * q.MeanS }

// MeanWait reports the Pollaczek-Khinchine mean waiting time.
func (q MG1) MeanWait() (float64, error) {
	rho := q.Rho()
	if rho >= 1 || q.Lambda <= 0 || q.MeanS <= 0 {
		return 0, fmt.Errorf("queueing: unstable M/G/1 at rho=%.3f", rho)
	}
	return rho * q.MeanS * (1 + q.SCVS) / (2 * (1 - rho)), nil
}

// MeanResponse reports the mean time in system.
func (q MG1) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanS, nil
}

// MGc approximates an M/G/c queue via Allen-Cunneen: the M/M/c wait scaled
// by (1 + SCV)/2.
type MGc struct {
	Lambda float64
	MeanS  float64
	SCVS   float64
	C      int
}

// Rho reports per-server utilization.
func (q MGc) Rho() float64 { return q.Lambda * q.MeanS / float64(q.C) }

// MeanWait reports the approximate mean waiting time.
func (q MGc) MeanWait() (float64, error) {
	mmc := MMc{Lambda: q.Lambda, Mu: 1 / q.MeanS, C: q.C}
	w, err := mmc.MeanWait()
	if err != nil {
		return 0, err
	}
	return w * (1 + q.SCVS) / 2, nil
}

// MeanResponse reports the approximate time in system.
func (q MGc) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanS, nil
}

// MMcK describes an M/M/c/K loss system: Poisson arrivals, c exponential
// servers, and at most K requests in the system (arrivals beyond that are
// blocked/shed). It cross-validates the simulator's queue-depth load
// shedding: with MaxQueueDepth D on c cores, K = c + D and the simulated
// shed fraction must track the Erlang blocking probability.
type MMcK struct {
	Lambda float64 // arrivals per second
	Mu     float64 // service completions per second per server
	C      int     // servers
	K      int     // system capacity (servers + queue slots), K >= C
}

// Probabilities returns the steady-state distribution p[0..K] of the number
// in system. Unlike the delay models, a loss system is stable at any load.
func (q MMcK) Probabilities() ([]float64, error) {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C <= 0 || q.K < q.C {
		return nil, fmt.Errorf("queueing: invalid M/M/%d/%d (lambda=%g mu=%g)", q.C, q.K, q.Lambda, q.Mu)
	}
	a := q.Lambda / q.Mu
	p := make([]float64, q.K+1)
	// Unnormalized terms built iteratively: p[n] = p[n-1] * a/min(n,c).
	p[0] = 1
	sum := 1.0
	for n := 1; n <= q.K; n++ {
		div := float64(n)
		if n > q.C {
			div = float64(q.C)
		}
		p[n] = p[n-1] * a / div
		sum += p[n]
	}
	for n := range p {
		p[n] /= sum
	}
	return p, nil
}

// BlockProb reports the probability an arrival finds the system full and is
// shed (PASTA: the blocking probability equals p[K]).
func (q MMcK) BlockProb() (float64, error) {
	p, err := q.Probabilities()
	if err != nil {
		return 0, err
	}
	return p[q.K], nil
}

// Throughput reports the accepted-arrival rate lambda*(1 - BlockProb).
func (q MMcK) Throughput() (float64, error) {
	b, err := q.BlockProb()
	if err != nil {
		return 0, err
	}
	return q.Lambda * (1 - b), nil
}

// MeanQueueLen reports the mean number waiting (excluding those in
// service).
func (q MMcK) MeanQueueLen() (float64, error) {
	p, err := q.Probabilities()
	if err != nil {
		return 0, err
	}
	lq := 0.0
	for n := q.C + 1; n <= q.K; n++ {
		lq += float64(n-q.C) * p[n]
	}
	return lq, nil
}

// MeanResponse reports the mean time in system of accepted requests
// (Little's law over the accepted throughput).
func (q MMcK) MeanResponse() (float64, error) {
	p, err := q.Probabilities()
	if err != nil {
		return 0, err
	}
	l := 0.0
	for n := 1; n <= q.K; n++ {
		l += float64(n) * p[n]
	}
	th, err := q.Throughput()
	if err != nil {
		return 0, err
	}
	if th <= 0 {
		return 0, fmt.Errorf("queueing: zero throughput in M/M/%d/%d", q.C, q.K)
	}
	return l / th, nil
}

// MM1TailQuantile reports the p-quantile of the M/M/1 response time
// (exponential with rate mu-lambda).
func MM1TailQuantile(lambda, mu, p float64) (float64, error) {
	if lambda >= mu || p <= 0 || p >= 1 {
		return 0, fmt.Errorf("queueing: invalid M/M/1 quantile request")
	}
	return -math.Log(1-p) / (mu - lambda), nil
}
