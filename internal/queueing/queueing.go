// Package queueing provides analytic queueing approximations (M/M/c,
// M/G/1, and the Allen-Cunneen M/G/c approximation) used to cross-validate
// the discrete-event simulator: at low load with no harvesting, the
// simulated Primary VM latencies must agree with queueing theory, which
// gives the repository an independent check on the simulation machinery.
package queueing

import (
	"fmt"
	"math"
)

// MMc describes an M/M/c queue: Poisson arrivals at rate lambda, c servers
// with exponential service at rate mu each.
type MMc struct {
	Lambda float64 // arrivals per second
	Mu     float64 // service completions per second per server
	C      int     // servers
}

// Rho reports the per-server utilization.
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue has a steady state.
func (q MMc) Stable() bool { return q.Lambda > 0 && q.Mu > 0 && q.C > 0 && q.Rho() < 1 }

// ErlangC reports the probability an arrival must wait (all servers busy).
func (q MMc) ErlangC() (float64, error) {
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: unstable M/M/%d at rho=%.3f", q.C, q.Rho())
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := float64(q.C)
	// Sum_{k=0}^{c-1} a^k/k! computed iteratively.
	sum := 0.0
	term := 1.0
	for k := 0; k < q.C; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / c / (1 - q.Rho()) // a^c/c! * 1/(1-rho)
	return top / (sum + top), nil
}

// MeanWait reports the mean time in queue (excluding service).
func (q MMc) MeanWait() (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pw / (float64(q.C)*q.Mu - q.Lambda), nil
}

// MeanResponse reports the mean time in system (queue + service).
func (q MMc) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + 1/q.Mu, nil
}

// MG1 describes an M/G/1 queue with general service times.
type MG1 struct {
	Lambda float64 // arrivals per second
	MeanS  float64 // mean service time (seconds)
	SCVS   float64 // squared coefficient of variation of service time
}

// Rho reports utilization.
func (q MG1) Rho() float64 { return q.Lambda * q.MeanS }

// MeanWait reports the Pollaczek-Khinchine mean waiting time.
func (q MG1) MeanWait() (float64, error) {
	rho := q.Rho()
	if rho >= 1 || q.Lambda <= 0 || q.MeanS <= 0 {
		return 0, fmt.Errorf("queueing: unstable M/G/1 at rho=%.3f", rho)
	}
	return rho * q.MeanS * (1 + q.SCVS) / (2 * (1 - rho)), nil
}

// MeanResponse reports the mean time in system.
func (q MG1) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanS, nil
}

// MGc approximates an M/G/c queue via Allen-Cunneen: the M/M/c wait scaled
// by (1 + SCV)/2.
type MGc struct {
	Lambda float64
	MeanS  float64
	SCVS   float64
	C      int
}

// Rho reports per-server utilization.
func (q MGc) Rho() float64 { return q.Lambda * q.MeanS / float64(q.C) }

// MeanWait reports the approximate mean waiting time.
func (q MGc) MeanWait() (float64, error) {
	mmc := MMc{Lambda: q.Lambda, Mu: 1 / q.MeanS, C: q.C}
	w, err := mmc.MeanWait()
	if err != nil {
		return 0, err
	}
	return w * (1 + q.SCVS) / 2, nil
}

// MeanResponse reports the approximate time in system.
func (q MGc) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanS, nil
}

// MM1TailQuantile reports the p-quantile of the M/M/1 response time
// (exponential with rate mu-lambda).
func MM1TailQuantile(lambda, mu, p float64) (float64, error) {
	if lambda >= mu || p <= 0 || p >= 1 {
		return 0, fmt.Errorf("queueing: invalid M/M/1 quantile request")
	}
	return -math.Log(1-p) / (mu - lambda), nil
}
