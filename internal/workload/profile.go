// Package workload models the latency-critical microservices that run in
// Primary VMs: per-service execution profiles (CPU bursts separated by
// blocking I/O to backend services), and an open-loop load generator whose
// arrival rate follows Alibaba-like utilization traces. The eight services
// mirror the SocialNetwork microservices the paper evaluates (Text, SGraph,
// User, PstStr, UsrMnt, HomeT, CPost, UrlShort), with execution-time scale
// (100s of microseconds), blocking frequency, and working-set character
// taken from the paper's descriptions.
package workload

import (
	"fmt"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// Profile describes one microservice's request behaviour.
type Profile struct {
	// Name is the service's short name as used in the paper's figures.
	Name string
	// MeanCPU is the mean total CPU time of a request across all bursts.
	MeanCPU sim.Duration
	// CPUSigma is the log-normal sigma of the total CPU time.
	CPUSigma float64
	// MeanIOCalls is the mean number of blocking I/O calls per request
	// (synchronous RPCs to caches, key-value stores, databases).
	MeanIOCalls float64
	// IOMean is the mean duration of one blocking I/O call, including the
	// 1 us inter-server round trip and the profiled backend time.
	IOMean sim.Duration
	// IOSigma is the log-normal sigma of each I/O duration.
	IOSigma float64
	// SharedFrac is the fraction of the service's memory accesses that
	// touch pages shared across invocations (code, libraries, read-only
	// data); services like HomeT operate mostly on shared pages.
	SharedFrac float64
	// FootprintKB is the approximate per-invocation working set.
	FootprintKB int
	// BaseRPSPerCore is the average request rate per allocated core
	// (the paper's load range is 65-250 RPS per Primary VM core).
	BaseRPSPerCore float64
}

// Profiles returns the eight evaluated services. The relative shapes follow
// the paper: User blocks on I/O most frequently; HomeT is shared-page-heavy;
// CPost is the orchestrating service with the longest path; UrlShort is the
// smallest.
func Profiles() []*Profile {
	return []*Profile{
		{Name: "Text", MeanCPU: 720 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 1.0, IOMean: 360 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.60, FootprintKB: 260, BaseRPSPerCore: 160},
		{Name: "SGraph", MeanCPU: 450 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 2.2, IOMean: 480 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.55, FootprintKB: 300, BaseRPSPerCore: 140},
		{Name: "User", MeanCPU: 360 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 3.4, IOMean: 440 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.55, FootprintKB: 220, BaseRPSPerCore: 180},
		{Name: "PstStr", MeanCPU: 540 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 1.8, IOMean: 600 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.50, FootprintKB: 340, BaseRPSPerCore: 120},
		{Name: "UsrMnt", MeanCPU: 420 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 1.2, IOMean: 320 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.58, FootprintKB: 200, BaseRPSPerCore: 200},
		{Name: "HomeT", MeanCPU: 900 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 2.0, IOMean: 400 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.78, FootprintKB: 420, BaseRPSPerCore: 90},
		{Name: "CPost", MeanCPU: 1140 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 3.0, IOMean: 480 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.62, FootprintKB: 480, BaseRPSPerCore: 65},
		{Name: "UrlShort", MeanCPU: 240 * sim.Microsecond, CPUSigma: 0.30,
			MeanIOCalls: 0.6, IOMean: 280 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.65, FootprintKB: 120, BaseRPSPerCore: 250},
	}
}

// MeanDemand is the mean end-to-end service demand of one request: total
// CPU plus the expected blocking time (MeanIOCalls draws of IOMean). It is
// the natural unit for SLO-derived resilience deadlines.
func (p *Profile) MeanDemand() sim.Duration {
	return p.MeanCPU + sim.Duration(p.MeanIOCalls*float64(p.IOMean))
}

// RandomProfile draws a bounded random service shape for fuzzing: every
// field stays inside the envelope spanned by the eight real services, so a
// random profile stresses scheduling without producing degenerate (zero- or
// hour-long) requests.
func RandomProfile(rng *stats.RNG, name string) *Profile {
	return &Profile{
		Name:           name,
		MeanCPU:        sim.Duration(100+rng.Intn(1200)) * sim.Microsecond,
		CPUSigma:       0.2 + 0.4*rng.Float64(),
		MeanIOCalls:    4 * rng.Float64(),
		IOMean:         sim.Duration(100+rng.Intn(600)) * sim.Microsecond,
		IOSigma:        0.2 + 0.4*rng.Float64(),
		SharedFrac:     0.4 + 0.4*rng.Float64(),
		FootprintKB:    100 + rng.Intn(400),
		BaseRPSPerCore: 60 + 200*rng.Float64(),
	}
}

// ProfileByName returns the named profile or an error.
func ProfileByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown service %q", name)
}

// Phase is one CPU burst optionally followed by a blocking I/O call
// (IO == 0 for the final burst).
type Phase struct {
	CPU sim.Duration
	IO  sim.Duration
}

// Invocation is one sampled request: a sequence of phases.
type Invocation struct {
	Service *Profile
	Phases  []Phase
}

// TotalCPU sums the CPU time across phases.
func (inv Invocation) TotalCPU() sim.Duration {
	var d sim.Duration
	for _, ph := range inv.Phases {
		d += ph.CPU
	}
	return d
}

// TotalIO sums the blocking time across phases.
func (inv Invocation) TotalIO() sim.Duration {
	var d sim.Duration
	for _, ph := range inv.Phases {
		d += ph.IO
	}
	return d
}

// IOCalls counts the blocking calls.
func (inv Invocation) IOCalls() int {
	n := 0
	for _, ph := range inv.Phases {
		if ph.IO > 0 {
			n++
		}
	}
	return n
}

// SampleScratch holds the reusable buffers SampleInto draws into. One
// scratch serves one sampling stream: the returned Invocation aliases the
// scratch, so each call invalidates the previous call's phases.
type SampleScratch struct {
	phases  []Phase
	weights []float64
}

// Sample draws one invocation: the total CPU time is log-normal around
// MeanCPU, split across bursts separated by a Poisson-ish number of I/O
// calls with log-normal durations. The returned phases are freshly
// allocated; hot callers that copy the phases out anyway should use
// SampleInto with a long-lived scratch instead.
func (p *Profile) Sample(rng *stats.RNG) Invocation {
	var s SampleScratch
	return p.SampleInto(rng, &s)
}

// SampleInto is Sample drawing into caller-owned scratch buffers, so a warm
// sampling loop allocates nothing. The RNG consumption is identical to
// Sample draw for draw — a run keeps its exact event sequence no matter
// which entry point generated its invocations.
func (p *Profile) SampleInto(rng *stats.RNG, s *SampleScratch) Invocation {
	totalCPU := lognormalWithMean(rng, float64(p.MeanCPU), p.CPUSigma)
	nIO := samplePoisson(rng, p.MeanIOCalls)
	if cap(s.phases) < nIO+1 {
		s.phases = make([]Phase, nIO+1)
	}
	if cap(s.weights) < nIO+1 {
		s.weights = make([]float64, nIO+1)
	}
	phases := s.phases[:nIO+1]
	weights := s.weights[:nIO+1]
	// Split CPU across bursts with a light imbalance so bursts differ.
	wsum := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		wsum += weights[i]
	}
	for i := range phases {
		ph := Phase{CPU: sim.Duration(totalCPU * weights[i] / wsum)}
		if ph.CPU < sim.Microsecond {
			ph.CPU = sim.Microsecond
		}
		if i < nIO {
			ph.IO = sim.Duration(lognormalWithMean(rng, float64(p.IOMean), p.IOSigma))
			if ph.IO < sim.Microsecond {
				ph.IO = sim.Microsecond
			}
		}
		phases[i] = ph
	}
	return Invocation{Service: p, Phases: phases}
}

// lognormalWithMean samples a log-normal with the requested arithmetic mean
// (not median) and sigma.
func lognormalWithMean(rng *stats.RNG, mean, sigma float64) float64 {
	mu := mathLog(mean) - sigma*sigma/2
	return rng.LogNormal(mu, sigma)
}

// samplePoisson draws a small Poisson count via inversion; means here are
// tiny (< 5), so the loop is short.
func samplePoisson(rng *stats.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := mathExp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 64 {
			return 64
		}
	}
}
