package workload

import (
	"math"
	"testing"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func TestProfilesShape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("profiles = %d, want 8", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		// Microservices run for 100s of microseconds to ~1 ms of CPU.
		if p.MeanCPU < 100*sim.Microsecond || p.MeanCPU > 1500*sim.Microsecond {
			t.Errorf("%s MeanCPU = %v outside microservice range", p.Name, p.MeanCPU)
		}
		// Paper's load range: 65-250 RPS per core.
		if p.BaseRPSPerCore < 65 || p.BaseRPSPerCore > 250 {
			t.Errorf("%s RPS = %v outside 65-250", p.Name, p.BaseRPSPerCore)
		}
		if p.SharedFrac <= 0 || p.SharedFrac >= 1 {
			t.Errorf("%s SharedFrac = %v", p.Name, p.SharedFrac)
		}
	}
	// Character checks from the paper's text.
	user, _ := ProfileByName("User")
	homet, _ := ProfileByName("HomeT")
	for _, p := range ps {
		if p.Name != "User" && p.MeanIOCalls > user.MeanIOCalls {
			t.Errorf("User should block most frequently; %s has %v calls", p.Name, p.MeanIOCalls)
		}
		if p.Name != "HomeT" && p.SharedFrac > homet.SharedFrac {
			t.Errorf("HomeT should be the most shared-heavy; %s = %v", p.Name, p.SharedFrac)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("CPost")
	if err != nil || p.Name != "CPost" {
		t.Fatalf("ProfileByName = %v, %v", p, err)
	}
	if _, err := ProfileByName("Nope"); err == nil {
		t.Fatal("unknown service should error")
	}
}

func TestSampleMeans(t *testing.T) {
	p, _ := ProfileByName("Text")
	rng := stats.NewRNG(1)
	var cpu, io float64
	var calls int
	const n = 20000
	for i := 0; i < n; i++ {
		inv := p.Sample(rng)
		cpu += float64(inv.TotalCPU())
		io += float64(inv.TotalIO())
		calls += inv.IOCalls()
	}
	meanCPU := cpu / n
	if math.Abs(meanCPU-float64(p.MeanCPU))/float64(p.MeanCPU) > 0.05 {
		t.Fatalf("mean CPU = %v, want ~%v", sim.Duration(meanCPU), p.MeanCPU)
	}
	meanCalls := float64(calls) / n
	if math.Abs(meanCalls-p.MeanIOCalls) > 0.1 {
		t.Fatalf("mean IO calls = %v, want ~%v", meanCalls, p.MeanIOCalls)
	}
	wantIO := p.MeanIOCalls * float64(p.IOMean)
	meanIO := io / n
	if math.Abs(meanIO-wantIO)/wantIO > 0.08 {
		t.Fatalf("mean IO = %v, want ~%v", sim.Duration(meanIO), sim.Duration(wantIO))
	}
}

func TestSampleStructure(t *testing.T) {
	p, _ := ProfileByName("User")
	rng := stats.NewRNG(2)
	for i := 0; i < 1000; i++ {
		inv := p.Sample(rng)
		if len(inv.Phases) != inv.IOCalls()+1 {
			t.Fatalf("phases %d vs IO calls %d", len(inv.Phases), inv.IOCalls())
		}
		// The final phase never blocks.
		if inv.Phases[len(inv.Phases)-1].IO != 0 {
			t.Fatal("final phase has IO")
		}
		for _, ph := range inv.Phases {
			if ph.CPU <= 0 {
				t.Fatal("non-positive CPU burst")
			}
		}
		if inv.Service != p {
			t.Fatal("service back-pointer wrong")
		}
	}
}

func TestGeneratorRate(t *testing.T) {
	p, _ := ProfileByName("UrlShort") // 250 RPS/core
	rng := stats.NewRNG(3)
	g := NewGenerator(p, 4, nil, 0, rng)
	// 1000 RPS expected; count arrivals in 2 simulated seconds.
	n := 0
	for {
		a := g.Next()
		if a.At > sim.Time(2*sim.Second) {
			break
		}
		n++
	}
	rate := float64(n) / 2
	if math.Abs(rate-1000)/1000 > 0.1 {
		t.Fatalf("arrival rate = %v, want ~1000", rate)
	}
}

func TestGeneratorArrivalsMonotone(t *testing.T) {
	p, _ := ProfileByName("Text")
	g := NewGenerator(p, 4, nil, 0, stats.NewRNG(4))
	prev := sim.Time(0)
	for i := 0; i < 1000; i++ {
		a := g.Next()
		if a.At <= prev {
			t.Fatalf("non-monotone arrival at %d", i)
		}
		prev = a.At
	}
}

func TestGeneratorModulation(t *testing.T) {
	p, _ := ProfileByName("Text")
	rng := stats.NewRNG(5)
	// Two-step series: quiet then burst, 100 ms per step.
	series := []float64{0.1, 0.9}
	g := NewGenerator(p, 4, series, 100*sim.Millisecond, rng)
	quiet, burst := 0, 0
	for {
		a := g.Next()
		if a.At >= sim.Time(200*sim.Millisecond) {
			break
		}
		if int64(a.At)/int64(100*sim.Millisecond)%2 == 0 {
			quiet++
		} else {
			burst++
		}
	}
	if burst <= quiet*3 {
		t.Fatalf("modulation weak: quiet=%d burst=%d", quiet, burst)
	}
}

func TestGeneratorReset(t *testing.T) {
	p, _ := ProfileByName("Text")
	g := NewGenerator(p, 4, nil, 0, stats.NewRNG(6))
	g.Next()
	g.Reset()
	a := g.Next()
	if a.At > sim.Time(sim.Second) {
		t.Fatalf("reset did not rewind cursor: %v", a.At)
	}
	if g.Profile() != p {
		t.Fatal("Profile() mismatch")
	}
}

func TestPoissonSampler(t *testing.T) {
	rng := stats.NewRNG(7)
	var sum int
	const n = 50000
	for i := 0; i < n; i++ {
		sum += samplePoisson(rng, 2.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("poisson mean = %v", mean)
	}
	if samplePoisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
	if samplePoisson(rng, -1) != 0 {
		t.Fatal("poisson(neg) != 0")
	}
}

func TestLognormalWithMean(t *testing.T) {
	rng := stats.NewRNG(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += lognormalWithMean(rng, 250, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-250)/250 > 0.02 {
		t.Fatalf("lognormal mean = %v, want 250", mean)
	}
}

func TestSuitesRoster(t *testing.T) {
	suites := Suites()
	if len(suites) != 3 {
		t.Fatalf("suites = %d", len(suites))
	}
	names := map[string]bool{}
	for _, s := range suites {
		if len(s.Services) < 4 {
			t.Errorf("%s has only %d services", s.Name, len(s.Services))
		}
		for _, p := range s.Services {
			if names[p.Name] {
				t.Errorf("duplicate service %q across suites", p.Name)
			}
			names[p.Name] = true
			if p.SharedFrac <= 0.4 || p.SharedFrac >= 0.9 {
				t.Errorf("%s shared fraction %v implausible", p.Name, p.SharedFrac)
			}
		}
	}
	if TotalServices() != 20 {
		t.Fatalf("total services = %d", TotalServices())
	}
}

func TestProfileAllocationsMatchesSharedFrac(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, s := range Suites() {
		for _, p := range s.Services {
			r := ProfileAllocations(p, rng.Split(uint64(p.FootprintKB)), 20)
			if r.SharedPages == 0 || r.PrivatePages == 0 {
				t.Errorf("%s: degenerate page counts %d/%d", p.Name, r.SharedPages, r.PrivatePages)
				continue
			}
			// The access-level shared fraction must track the profile's
			// SharedFrac: pre-serve pages receive the reuse.
			if d := r.SharedAccessFrac - p.SharedFrac; d < -0.08 || d > 0.08 {
				t.Errorf("%s: measured shared access %.3f vs profile %.2f", p.Name, r.SharedAccessFrac, p.SharedFrac)
			}
			if r.FootprintKB <= 0 {
				t.Errorf("%s: empty footprint", p.Name)
			}
		}
	}
}

func TestProfileSuiteDeterminism(t *testing.T) {
	s := Suites()[1]
	a := ProfileSuite(s, 3, 10)
	b := ProfileSuite(s, 3, 10)
	if len(a) != len(s.Services) {
		t.Fatalf("results = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic profiling at %d", i)
		}
	}
}
