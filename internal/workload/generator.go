package workload

import (
	"math"

	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

func mathLog(x float64) float64 { return math.Log(x) }
func mathExp(x float64) float64 { return math.Exp(x) }

// Arrival is one generated request arrival.
type Arrival struct {
	At  sim.Time
	Inv Invocation
}

// Generator produces an open-loop Poisson arrival stream for one Primary VM,
// optionally modulated by a utilization time series (the client is
// independent of the server: the offered load never adapts to latency, as in
// the paper's load generator [73]).
type Generator struct {
	profile *Profile
	rng     *stats.RNG
	cursor  sim.Time

	baseRate float64 // requests per second at series mean
	series   []float64
	seriesMu float64 // mean of series
	stepDur  sim.Duration

	// intensity scales the instantaneous rate (live-control surface).
	// It starts at exactly 1.0: x*1.0 is an IEEE-754 identity, so a run
	// that never calls SetIntensity samples bit-identical gaps.
	intensity float64

	// scratch backs each Next invocation's phases; see Next's aliasing
	// contract.
	scratch SampleScratch
}

// NewGenerator builds a generator for one VM with the given core count. The
// series (from the trace package) modulates the instantaneous rate around
// the profile's base RPS; pass nil for a constant rate. stepDur maps one
// series step to simulated time.
func NewGenerator(p *Profile, cores int, series []float64, stepDur sim.Duration, rng *stats.RNG) *Generator {
	g := &Generator{
		profile:   p,
		rng:       rng,
		baseRate:  p.BaseRPSPerCore * float64(cores),
		stepDur:   stepDur,
		intensity: 1.0,
	}
	if len(series) > 0 && stepDur > 0 {
		g.series = series
		sum := 0.0
		for _, v := range series {
			sum += v
		}
		g.seriesMu = sum / float64(len(series))
		if g.seriesMu <= 0 {
			g.series = nil
		}
	}
	return g
}

// Profile reports the generator's service profile.
func (g *Generator) Profile() *Profile { return g.profile }

// SetIntensity scales the generator's offered load by x (1.0 restores the
// configured rate). Panics if x is not positive: a zero rate would make the
// next exponential gap infinite.
func (g *Generator) SetIntensity(x float64) {
	if !(x > 0) {
		panic("workload: intensity must be positive")
	}
	g.intensity = x
}

// Intensity reports the current offered-load multiplier.
func (g *Generator) Intensity() float64 { return g.intensity }

// rateAt reports the instantaneous arrival rate (req/s) at time t.
func (g *Generator) rateAt(t sim.Time) float64 {
	if g.series == nil {
		return g.baseRate * g.intensity
	}
	step := int(int64(t)/int64(g.stepDur)) % len(g.series)
	r := g.baseRate * g.series[step] / g.seriesMu
	if r < g.baseRate*0.02 {
		r = g.baseRate * 0.02 // traces never go fully silent
	}
	return r * g.intensity
}

// Next returns the next arrival. The exponential gap is sampled at the
// current cursor's rate (a standard non-homogeneous approximation that is
// exact within a series step for our step sizes).
//
// The returned invocation's phases alias a generator-owned scratch buffer
// and stay valid only until the following Next call; consumers that keep an
// invocation across arrivals must copy the phases out.
func (g *Generator) Next() Arrival {
	rate := g.rateAt(g.cursor)
	gapSec := g.rng.Exp(1 / rate)
	gap := sim.Duration(gapSec * float64(sim.Second))
	if gap < sim.Nanosecond {
		gap = sim.Nanosecond
	}
	g.cursor = g.cursor.Add(gap)
	return Arrival{At: g.cursor, Inv: g.profile.SampleInto(g.rng, &g.scratch)}
}

// Reset rewinds the generator's clock without reseeding.
func (g *Generator) Reset() { g.cursor = 0 }
