package workload

import (
	"hardharvest/internal/pages"
	"hardharvest/internal/stats"
)

// Allocation-trace modeling for the §4.2.2 profiling sweep: a microservice
// process allocates its code, libraries, and read-only data during
// initialization, calls into the framework's serve loop, and from then on
// invocation-handling threads allocate (and free) per-request data. The
// model replays that lifecycle against a pages.Table and then generates an
// access stream whose pages the table classifies — reproducing the paper's
// measurement that accesses to pre-serve pages dominate reuse.

// ProfileResult is one service's profiling outcome.
type ProfileResult struct {
	Service string
	// SharedPages / PrivatePages are the mapped page counts at steady
	// state.
	SharedPages  int
	PrivatePages int
	// SharedAccessFrac is the fraction of accesses landing on Shared
	// pages.
	SharedAccessFrac float64
	// FootprintKB is the mapped memory at steady state.
	FootprintKB int64
}

// ProfileAllocations replays the allocation lifecycle of a service and
// measures the access-level shared fraction over the given number of
// invocations.
func ProfileAllocations(p *Profile, rng *stats.RNG, invocations int) ProfileResult {
	pt := pages.NewTable()

	// Initialization: code+libraries+read-only data sized by the shared
	// slice of the footprint, allocated in a handful of big regions as
	// loaders and allocators do.
	sharedBytes := int(float64(p.FootprintKB) * 1024 * p.SharedFrac)
	base := uint64(0x0040_0000)
	regions := 4
	type span struct {
		start uint64
		n     int
	}
	var sharedSpans []span
	for r := 0; r < regions; r++ {
		n := sharedBytes / regions
		pt.Allocate(base, n)
		sharedSpans = append(sharedSpans, span{start: base, n: n})
		base += uint64(n) + 16*pages.PageSize // gaps between mappings
	}
	pt.MarkServeStart()

	// A small shared growth after serve start (caches warmed by the
	// framework) stays shared because it extends an existing region.
	pt.Allocate(base-16*pages.PageSize, pages.PageSize)

	privBytes := int(float64(p.FootprintKB) * 1024 * (1 - p.SharedFrac))
	privBase := uint64(0x4000_0000)
	accesses, sharedAcc := 0, 0
	for inv := 0; inv < invocations; inv++ {
		// The invocation thread allocates its private working data...
		pt.Allocate(privBase, privBytes)
		// ...then the handler touches memory: shared pages with the
		// profile's access ratio, private pages otherwise.
		touches := 200
		for i := 0; i < touches; i++ {
			var addr uint64
			if rng.Float64() < p.SharedFrac {
				sp := sharedSpans[rng.Intn(len(sharedSpans))]
				addr = sp.start + uint64(rng.Intn(maxInt(sp.n, 1)))
			} else {
				addr = privBase + uint64(rng.Intn(maxInt(privBytes, 1)))
			}
			accesses++
			if pt.IsShared(addr) {
				sharedAcc++
			}
		}
		// The allocator frees and recycles the private data.
		pt.Free(privBase, privBytes)
		pt.Allocate(privBase, privBytes) // recycled for the next invocation
		pt.Free(privBase, privBytes)
		pt.Allocate(privBase, privBytes)
	}

	s, pr := pt.Counts()
	frac := 0.0
	if accesses > 0 {
		frac = float64(sharedAcc) / float64(accesses)
	}
	return ProfileResult{
		Service:          p.Name,
		SharedPages:      s,
		PrivatePages:     pr,
		SharedAccessFrac: frac,
		FootprintKB:      pt.Footprint() / 1024,
	}
}

// ProfileSuite profiles every service of a suite.
func ProfileSuite(s Suite, seed uint64, invocations int) []ProfileResult {
	out := make([]ProfileResult, 0, len(s.Services))
	for i, p := range s.Services {
		rng := stats.NewRNG(seed + uint64(i)*7919)
		out = append(out, ProfileAllocations(p, rng, invocations))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TotalServices counts services across all suites (the paper profiles 60+;
// we model a representative subset).
func TotalServices() int {
	n := 0
	for _, s := range Suites() {
		n += len(s.Services)
	}
	return n
}
