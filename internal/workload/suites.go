package workload

import "hardharvest/internal/sim"

// Benchmark suites beyond SocialNetwork. §4.2.2 validates the
// shared-before-serve page assumption by profiling more than 60
// microservices across DeathStarBench, TrainTicket, and uSuite; these
// profiles model representative services of each suite so the profiling
// experiment can reproduce that sweep.

// Suite groups a benchmark suite's service profiles.
type Suite struct {
	Name     string
	Services []*Profile
}

// Suites returns the three profiled benchmark suites.
func Suites() []Suite {
	return []Suite{
		{Name: "DeathStarBench", Services: Profiles()},
		{Name: "TrainTicket", Services: TrainTicketProfiles()},
		{Name: "uSuite", Services: MicroSuiteProfiles()},
	}
}

// TrainTicketProfiles models representative services of the TrainTicket
// train-booking application [97]: Java/Spring services with larger
// footprints and heavier backend traffic than SocialNetwork.
func TrainTicketProfiles() []*Profile {
	return []*Profile{
		{Name: "TTAuth", MeanCPU: 520 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 1.6, IOMean: 420 * sim.Microsecond, IOSigma: 0.45,
			SharedFrac: 0.66, FootprintKB: 380, BaseRPSPerCore: 140},
		{Name: "TTOrder", MeanCPU: 880 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 2.8, IOMean: 520 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.58, FootprintKB: 520, BaseRPSPerCore: 90},
		{Name: "TTRoute", MeanCPU: 640 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 1.2, IOMean: 380 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.72, FootprintKB: 440, BaseRPSPerCore: 120},
		{Name: "TTSeat", MeanCPU: 460 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 2.2, IOMean: 440 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.55, FootprintKB: 360, BaseRPSPerCore: 150},
		{Name: "TTPrice", MeanCPU: 320 * sim.Microsecond, CPUSigma: 0.30,
			MeanIOCalls: 0.9, IOMean: 300 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.70, FootprintKB: 240, BaseRPSPerCore: 200},
		{Name: "TTStation", MeanCPU: 300 * sim.Microsecond, CPUSigma: 0.30,
			MeanIOCalls: 0.8, IOMean: 280 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.74, FootprintKB: 220, BaseRPSPerCore: 220},
		{Name: "TTTicket", MeanCPU: 760 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 2.6, IOMean: 480 * sim.Microsecond, IOSigma: 0.5,
			SharedFrac: 0.57, FootprintKB: 480, BaseRPSPerCore: 100},
		{Name: "TTNotify", MeanCPU: 280 * sim.Microsecond, CPUSigma: 0.30,
			MeanIOCalls: 1.0, IOMean: 340 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.63, FootprintKB: 200, BaseRPSPerCore: 230},
	}
}

// MicroSuiteProfiles models the four uSuite services [73]: mid-tier
// services fronting leaf data services, with very tight latency targets.
func MicroSuiteProfiles() []*Profile {
	return []*Profile{
		{Name: "HDSearch", MeanCPU: 420 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 2.4, IOMean: 260 * sim.Microsecond, IOSigma: 0.45,
			SharedFrac: 0.61, FootprintKB: 420, BaseRPSPerCore: 160},
		{Name: "Router", MeanCPU: 180 * sim.Microsecond, CPUSigma: 0.30,
			MeanIOCalls: 1.4, IOMean: 200 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.69, FootprintKB: 160, BaseRPSPerCore: 240},
		{Name: "SetAlgebra", MeanCPU: 360 * sim.Microsecond, CPUSigma: 0.35,
			MeanIOCalls: 1.8, IOMean: 240 * sim.Microsecond, IOSigma: 0.4,
			SharedFrac: 0.64, FootprintKB: 300, BaseRPSPerCore: 180},
		{Name: "Recommend", MeanCPU: 520 * sim.Microsecond, CPUSigma: 0.40,
			MeanIOCalls: 2.0, IOMean: 300 * sim.Microsecond, IOSigma: 0.45,
			SharedFrac: 0.59, FootprintKB: 360, BaseRPSPerCore: 140},
	}
}
