package sim

import "fmt"

// The engine's event queue is built for a near-allocation-free hot path:
//
//   - Events live in a slab ([]eventRec) indexed by small integers; the
//     priority queue is a typed 4-ary min-heap of slab indices, so push/pop
//     never box through `any` and comparisons touch only (when, seq).
//   - Fired and cancelled slots go to a free list and are reused. Handles
//     (Event) carry a generation counter, so a stale handle can never cancel
//     or observe a recycled slot.
//   - ScheduleCall binds a typed callback (receiver + op code + two pointer
//     payloads) directly in the event record, so hot model call sites do not
//     allocate a closure per event. Schedule keeps the closure form for cold
//     sites.
//
// A 4-ary heap does the same comparisons asymptotically as a binary heap but
// with half the depth: sift-downs touch fewer cache lines, which dominates
// for the simulator's push/pop-heavy workload.

// EventState describes where an event is in its lifecycle.
type EventState uint8

const (
	// StateNone means the handle is zero, from another engine, or its slot
	// has been recycled for a newer event (the handle expired).
	StateNone EventState = iota
	// StatePending means the event is scheduled and has not fired.
	StatePending
	// StateFiring means the event's callback is executing right now.
	StateFiring
	// StateFired means the callback ran to completion.
	StateFired
	// StateCancelled means Cancel removed the event before it fired.
	StateCancelled
)

func (s EventState) String() string {
	switch s {
	case StateNone:
		return "none"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateFired:
		return "fired"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("EventState(%d)", uint8(s))
	}
}

// Event is a generation-checked handle to a scheduled event. The zero Event
// references nothing (Valid reports false) and is safe to Cancel or query.
// A handle stays answerable (StateFired / StateCancelled) until its slot is
// reused for a newer event, after which State reports StateNone and Cancel
// remains a no-op — recycling can never resurrect or disturb an old event.
type Event struct {
	slot int32 // slab index + 1; 0 means "no event"
	gen  uint32
}

// Valid reports whether the handle was returned by a Schedule call (the
// event may have fired or been cancelled since).
func (ev Event) Valid() bool { return ev.slot != 0 }

// Callback receives typed events scheduled with ScheduleCall or CallAt. The
// op code and both payload arguments live in the event record itself;
// storing pointers in `any` does not allocate, so a model binds
// "method + receiver + payload" with zero per-event heap allocations.
type Callback interface {
	OnEvent(op int32, a, b any)
}

// eventRec is one slab slot. fn and cb are mutually exclusive.
type eventRec struct {
	when    Time
	seq     uint64
	fn      func()
	cb      Callback
	a, b    any
	op      int32
	heapIdx int32 // position in Engine.heap, -1 when not queued
	gen     uint32
	state   EventState
}

// Engine is a single-threaded discrete-event simulator. It is intentionally
// not safe for concurrent use: determinism is a core requirement of the
// experiment harness, so all model code runs on the engine's goroutine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []int32 // slab indices ordered as a 4-ary min-heap on (when, seq)
	slab    []eventRec
	free    []int32
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far (useful for progress
// accounting and tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// NextEventTime peeks at the earliest pending event's timestamp without
// executing anything; ok is false when the queue is empty. The shard
// scheduler uses it as each member's event floor when computing
// conservative synchronization windows, and to fast-forward past idle gaps
// in O(1).
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slab[e.heap[0]].when, true
}

// Schedule runs fn after delay. A negative delay is an error in model code
// and panics; a zero delay runs fn after all events already scheduled for the
// current instant.
func (e *Engine) Schedule(delay Duration, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, e.now))
	}
	return e.At(e.now.Add(delay), fn)
}

// At schedules fn at an absolute time, which must not be in the past.
func (e *Engine) At(when Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(when, fn, nil, 0, nil, nil)
}

// ScheduleCall runs cb.OnEvent(op, a, b) after delay. Unlike Schedule it
// allocates nothing once the engine's slab is warm: the receiver, op code,
// and payloads are stored in the event record. a and b should be pointers
// (or nil); value types would box.
func (e *Engine) ScheduleCall(delay Duration, cb Callback, op int32, a, b any) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, e.now))
	}
	return e.CallAt(e.now.Add(delay), cb, op, a, b)
}

// CallAt is ScheduleCall at an absolute time, which must not be in the past.
func (e *Engine) CallAt(when Time, cb Callback, op int32, a, b any) Event {
	if cb == nil {
		panic("sim: nil event callback")
	}
	return e.schedule(when, nil, cb, op, a, b)
}

func (e *Engine) schedule(when Time, fn func(), cb Callback, op int32, a, b any) Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", when, e.now))
	}
	id := e.alloc()
	rec := &e.slab[id]
	rec.when = when
	rec.seq = e.seq
	rec.fn = fn
	rec.cb = cb
	rec.op = op
	rec.a = a
	rec.b = b
	rec.state = StatePending
	e.seq++
	e.heapPush(id)
	return Event{slot: id + 1, gen: rec.gen}
}

// alloc takes a slot from the free list, or grows the slab. The generation
// bumps at reuse time, not release time, so a settled slot stays answerable
// (Fired/Cancelled) to old handles until the slot is actually recycled.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		e.slab[id].gen++
		return id
	}
	e.slab = append(e.slab, eventRec{heapIdx: -1})
	return int32(len(e.slab) - 1)
}

func (e *Engine) release(id int32) {
	rec := &e.slab[id]
	rec.fn = nil
	rec.cb = nil
	rec.a = nil
	rec.b = nil
	e.free = append(e.free, id)
}

// rec resolves a handle to its slab record, or nil if the handle is zero,
// foreign, or expired (slot recycled).
func (e *Engine) rec(ev Event) *eventRec {
	if ev.slot <= 0 || int(ev.slot) > len(e.slab) {
		return nil
	}
	rec := &e.slab[ev.slot-1]
	if rec.gen != ev.gen {
		return nil
	}
	return rec
}

// State reports the event's lifecycle state. Handles expire once their slot
// is reused (StateNone); see Event.
func (e *Engine) State(ev Event) EventState {
	rec := e.rec(ev)
	if rec == nil {
		return StateNone
	}
	return rec.state
}

// EventTime reports when a pending or firing event is scheduled for; ok is
// false for settled or expired handles.
func (e *Engine) EventTime(ev Event) (Time, bool) {
	rec := e.rec(ev)
	if rec == nil || (rec.state != StatePending && rec.state != StateFiring) {
		return 0, false
	}
	return rec.when, true
}

// Cancel removes a scheduled event, reporting whether it did. Cancelling a
// zero handle, a settled or expired event, or the event currently firing is
// a no-op (an event cannot cancel itself mid-execution).
func (e *Engine) Cancel(ev Event) bool {
	rec := e.rec(ev)
	if rec == nil || rec.state != StatePending {
		return false
	}
	e.heapRemove(rec.heapIdx)
	rec.heapIdx = -1
	rec.state = StateCancelled
	e.release(ev.slot - 1)
	return true
}

// Stop makes Run return after the currently-executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, Stop is called, or the clock
// would pass horizon (inclusive). It returns the time of the last event
// executed (or the current time if none ran). The clock does not jump to the
// horizon: experiments measure occupancy against the time actually simulated.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		id := e.heap[0]
		rec := &e.slab[id]
		if rec.when > horizon {
			break
		}
		e.heapPop()
		e.now = rec.when
		rec.state = StateFiring
		fn, cb, op, a, b := rec.fn, rec.cb, rec.op, rec.a, rec.b
		e.fired++
		if cb != nil {
			cb.OnEvent(op, a, b)
		} else {
			fn()
		}
		// The callback may have grown the slab; re-resolve by index. The
		// slot joins the free list only now, so nothing scheduled during the
		// callback can reuse it while it fires.
		rec = &e.slab[id]
		rec.state = StateFired
		e.release(id)
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	const forever = Time(1<<62 - 1)
	return e.Run(forever)
}

// AdvanceTo moves the clock forward with no event execution. It is used by
// trace replay tools; model code should schedule events instead. Panics if
// events are pending before the target time.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic("sim: AdvanceTo into the past")
	}
	if len(e.heap) > 0 && e.slab[e.heap[0]].when < t {
		panic("sim: AdvanceTo would skip pending events")
	}
	e.now = t
}

// ---- 4-ary index heap ----
//
// The heap orders slab indices by (when, seq); seq is a strict FIFO
// tie-break, so pop order is a total order and simulation runs are
// deterministic regardless of heap layout.

// less orders two slab slots by (when, seq).
func (e *Engine) less(x, y int32) bool {
	rx, ry := &e.slab[x], &e.slab[y]
	if rx.when != ry.when {
		return rx.when < ry.when
	}
	return rx.seq < ry.seq
}

func (e *Engine) heapPush(id int32) {
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap)-1, id)
}

// heapPop removes and returns the minimum element.
func (e *Engine) heapPop() int32 {
	h := e.heap
	id := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
	e.slab[id].heapIdx = -1
	return id
}

// heapRemove deletes the element at heap position i.
func (e *Engine) heapRemove(i int32) {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if int(i) < n {
		j := e.siftDown(int(i), last)
		if j == int(i) {
			e.siftUp(j, last)
		}
	}
}

// siftUp places id at position i, moving it toward the root while it sorts
// before its parent. Writes each displaced element exactly once.
func (e *Engine) siftUp(i int, id int32) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(id, h[p]) {
			break
		}
		h[i] = h[p]
		e.slab[h[i]].heapIdx = int32(i)
		i = p
	}
	h[i] = id
	e.slab[id].heapIdx = int32(i)
}

// siftDown places id at position i, moving it toward the leaves while a
// child sorts before it. Returns the final position.
func (e *Engine) siftDown(i int, id int32) int {
	h := e.heap
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if e.less(h[k], h[best]) {
				best = k
			}
		}
		if !e.less(h[best], id) {
			break
		}
		h[i] = h[best]
		e.slab[h[i]].heapIdx = int32(i)
		i = best
	}
	h[i] = id
	e.slab[id].heapIdx = int32(i)
	return i
}
