package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in timestamp order; ties break
// by scheduling order (FIFO), which keeps the simulation deterministic.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// index in the heap, or -1 once fired/cancelled.
	index int
}

// When reports the timestamp the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index < 0 && e.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is intentionally
// not safe for concurrent use: determinism is a core requirement of the
// experiment harness, so all model code runs on the engine's goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far (useful for progress
// accounting and tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay. A negative delay is an error in model code
// and panics; a zero delay runs fn after all events already scheduled for the
// current instant.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, e.now))
	}
	return e.At(e.now.Add(delay), fn)
}

// At schedules fn at an absolute time, which must not be in the past.
func (e *Engine) At(when Time, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Stop makes Run return after the currently-executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, Stop is called, or the clock
// would pass horizon (inclusive). It returns the time of the last event
// executed (or the current time if none ran).
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.when > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.when
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
	}
	if e.now < horizon && len(e.queue) == 0 {
		// Clock does not jump to the horizon: experiments measure occupancy
		// against the time actually simulated.
		return e.now
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	const forever = Time(1<<62 - 1)
	return e.Run(forever)
}

// AdvanceTo moves the clock forward with no event execution. It is used by
// trace replay tools; model code should schedule events instead. Panics if
// events are pending before the target time.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic("sim: AdvanceTo into the past")
	}
	if len(e.queue) > 0 && e.queue[0].when < t {
		panic("sim: AdvanceTo would skip pending events")
	}
	e.now = t
}
