package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// chainCB schedules a follow-up event on its own engine until limit events
// have fired, logging each firing time. It exercises the pure fleet case:
// members with no links free-running to the horizon.
type chainCB struct {
	eng   *Engine
	step  Duration
	limit int
	fired int
	log   []Time
}

func (c *chainCB) OnEvent(op int32, a, b any) {
	c.fired++
	c.log = append(c.log, c.eng.Now())
	if c.fired < c.limit {
		c.eng.ScheduleCall(c.step, c, 0, nil, nil)
	}
}

func runFleet(t *testing.T, workers, members int) [][]Time {
	t.Helper()
	g := NewShardGroup(workers)
	cbs := make([]*chainCB, members)
	for i := 0; i < members; i++ {
		eng := NewEngine()
		// Different step per member so their event sets interleave unevenly.
		cbs[i] = &chainCB{eng: eng, step: Duration(100 + 7*i), limit: 50}
		eng.ScheduleCall(Duration(i+1), cbs[i], 0, nil, nil)
		g.Add(eng)
	}
	g.Run(Time(1_000_000))
	logs := make([][]Time, members)
	for i, c := range cbs {
		logs[i] = c.log
	}
	return logs
}

func TestShardGroupFleetDeterminism(t *testing.T) {
	want := runFleet(t, 1, 9)
	for _, workers := range []int{2, 4, 8} {
		got := runFleet(t, workers, 9)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fleet logs differ between 1 worker and %d workers", workers)
		}
	}
	// Sanity: every member actually fired its whole chain.
	for i, log := range want {
		if len(log) != 50 {
			t.Fatalf("member %d fired %d events, want 50", i, len(log))
		}
	}
}

// pingCB bounces a message to its peer over the group until limit hops,
// logging (time, hop) pairs on its own member. It exercises cross-member
// sends from inside worker-executed callbacks.
type pingCB struct {
	g          *ShardGroup
	self, peer int
	peerCB     Callback
	la         Duration
	hops       *int
	limit      int
	log        []string
}

func (p *pingCB) OnEvent(op int32, a, b any) {
	*p.hops++
	p.log = append(p.log, fmt.Sprintf("m%d@%v hop%d", p.self, p.g.members[p.self].eng.Now(), op))
	if *p.hops < p.limit {
		p.g.Send(p.self, p.peer, p.la, p.peerCB, op+1, nil, nil)
	}
}

func runPingPong(t *testing.T, workers int) []string {
	t.Helper()
	g := NewShardGroup(workers)
	la := Duration(250)
	a, b := NewEngine(), NewEngine()
	ida, idb := g.Add(a), g.Add(b)
	g.Link(ida, idb, la)
	g.Link(idb, ida, la)
	hops := 0
	ca := &pingCB{g: g, self: ida, peer: idb, la: la, hops: &hops, limit: 20}
	cb := &pingCB{g: g, self: idb, peer: ida, la: la, hops: &hops, limit: 20}
	ca.peerCB = cb
	cb.peerCB = ca
	a.ScheduleCall(Duration(10), ca, 0, nil, nil)
	g.Run(Time(100_000))
	out := append([]string{}, ca.log...)
	return append(out, cb.log...)
}

func TestShardGroupPingPongDeterminism(t *testing.T) {
	want := runPingPong(t, 1)
	if len(want) == 0 {
		t.Fatal("ping-pong produced no events")
	}
	for _, workers := range []int{2, 8} {
		if got := runPingPong(t, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("ping-pong trace differs between 1 worker and %d workers:\n1: %v\n%d: %v",
				workers, want, workers, got)
		}
	}
}

// sinkCB logs the source id (carried in op) of each delivered message.
type sinkCB struct {
	eng *Engine
	log []int32
}

func (s *sinkCB) OnEvent(op int32, a, b any) { s.log = append(s.log, op) }

// burstCB sends one message to the sink when it fires.
type burstCB struct {
	g         *ShardGroup
	self, dst int
	sink      Callback
	la        Duration
}

func (c *burstCB) OnEvent(op int32, a, b any) {
	c.g.Send(c.self, c.dst, c.la, c.sink, int32(c.self), nil, nil)
}

// TestShardGroupDeliveryOrder pins the tie-break for simultaneous
// cross-member messages: equal timestamps deliver in (source id, send
// sequence) order, independent of which worker goroutine appended first.
func TestShardGroupDeliveryOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		g := NewShardGroup(workers)
		sinkEng := NewEngine()
		sink := &sinkCB{eng: sinkEng}
		sinkID := g.Add(sinkEng)
		la := Duration(100)
		const senders = 5
		for i := 0; i < senders; i++ {
			eng := NewEngine()
			id := g.Add(eng)
			g.Link(id, sinkID, la)
			c := &burstCB{g: g, self: id, dst: sinkID, sink: sink, la: la}
			// All senders fire at t=50, so all messages land at t=150.
			eng.CallAt(Time(50), c, 0, nil, nil)
		}
		g.Run(Time(1_000))
		if len(sink.log) != senders {
			t.Fatalf("workers=%d: sink got %d messages, want %d", workers, len(sink.log), senders)
		}
		for i := 1; i < len(sink.log); i++ {
			if sink.log[i] <= sink.log[i-1] {
				t.Fatalf("workers=%d: delivery order not by source id: %v", workers, sink.log)
			}
		}
	}
}

// TestShardGroupIdleFastForward verifies a member with a huge event gap still
// completes (the group skips the gap rather than stepping through it) and
// that resumable horizons behave like Engine.Run's.
func TestShardGroupIdleFastForward(t *testing.T) {
	g := NewShardGroup(2)
	eng := NewEngine()
	c := &chainCB{eng: eng, step: Duration(1), limit: 2}
	eng.CallAt(Time(5), c, 0, nil, nil)
	busy := NewEngine()
	cb := &chainCB{eng: busy, step: Duration(1_000_000), limit: 100}
	busy.ScheduleCall(Duration(1), cb, 0, nil, nil)
	g.Add(eng)
	g.Add(busy)

	g.Run(Time(3))
	if len(c.log) != 0 {
		t.Fatalf("event fired before horizon: %v", c.log)
	}
	g.Run(Time(200_000_000))
	if want := []Time{5, 6}; !reflect.DeepEqual(c.log, want) {
		t.Fatalf("sparse member log = %v, want %v", c.log, want)
	}
	if len(cb.log) != 100 {
		t.Fatalf("busy member fired %d events, want 100", len(cb.log))
	}
}

func TestShardGroupPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}

	g := NewShardGroup(1)
	a, b := g.Add(NewEngine()), g.Add(NewEngine())
	g.Link(a, b, 100)

	mustPanic("self-link", func() { g.Link(a, a, 10) })
	mustPanic("zero lookahead", func() { g.Link(b, a, 0) })
	mustPanic("unknown member", func() { g.Link(a, 99, 10) })
	mustPanic("send without link", func() { g.Send(b, a, 500, &sinkCB{}, 0, nil, nil) })
	mustPanic("send below lookahead", func() { g.Send(a, b, 99, &sinkCB{}, 0, nil, nil) })
	mustPanic("nil advance", func() { g.AddFunc(NewEngine(), nil) })
}

// TestShardGroupAddFunc checks that custom advance members are driven for
// every window and observe monotone, inclusive caps up to the horizon.
func TestShardGroupAddFunc(t *testing.T) {
	g := NewShardGroup(2)
	eng := NewEngine()
	var caps []Time
	g.AddFunc(eng, func(to Time) {
		caps = append(caps, to)
		eng.Run(to)
	})
	g.Run(Time(500))
	g.Run(Time(900))
	if len(caps) == 0 || caps[len(caps)-1] != 900 {
		t.Fatalf("caps = %v, want final cap 900", caps)
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] <= caps[i-1] {
			t.Fatalf("caps not strictly increasing: %v", caps)
		}
	}
}

func BenchmarkShardGroupFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewShardGroup(1)
		for m := 0; m < 16; m++ {
			eng := NewEngine()
			c := &chainCB{eng: eng, step: Duration(100 + m), limit: 200}
			eng.ScheduleCall(Duration(m+1), c, 0, nil, nil)
			g.Add(eng)
		}
		g.Run(Time(10_000_000))
	}
}
