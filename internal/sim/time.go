// Package sim provides a deterministic discrete-event simulation engine
// used by every other subsystem in the repository. Time is measured in
// integer picoseconds so that sub-nanosecond hardware latencies (cache hits,
// controller messages) and multi-second experiment horizons fit in the same
// int64 without floating-point drift.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in picoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// DefaultClockHz is the core clock frequency of the modeled processor
// (Table 1: 36 cores at 3 GHz).
const DefaultClockHz = 3_000_000_000

// Cycles converts a cycle count at the default 3 GHz clock into a Duration.
func Cycles(n int64) Duration {
	return CyclesAt(n, DefaultClockHz)
}

// CyclesAt converts a cycle count at an arbitrary clock frequency into a
// Duration, rounding to the nearest picosecond.
func CyclesAt(n int64, hz int64) Duration {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	// picoseconds per cycle = 1e12 / hz, computed without overflow for the
	// cycle counts used in practice (n up to ~1e9).
	return Duration(n * 1_000_000_000_000 / hz)
}

// ToCycles converts a Duration to whole cycles at the default clock,
// rounding down.
func (d Duration) ToCycles() int64 {
	return int64(d) * DefaultClockHz / 1_000_000_000_000
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts a simulated Duration to a time.Duration (nanosecond
// resolution; sub-nanosecond information is truncated).
func (d Duration) Std() time.Duration { return time.Duration(int64(d) / int64(Nanosecond)) }

// FromStd converts a time.Duration into a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds reports the timestamp as floating-point seconds since simulation
// start.
func (t Time) Seconds() float64 { return Duration(t).Seconds() }

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fus", Duration(t).Microseconds())
}

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}
