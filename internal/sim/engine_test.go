package sim

import (
	"testing"
	"time"
)

func TestCyclesConversion(t *testing.T) {
	// 3 cycles at 3 GHz = 1 ns.
	if got := Cycles(3); got != Nanosecond {
		t.Fatalf("Cycles(3) = %v, want 1ns", got)
	}
	if got := Cycles(1); got != 333*Picosecond {
		t.Fatalf("Cycles(1) = %v, want 333ps", got)
	}
	if got := (2 * Nanosecond).ToCycles(); got != 6 {
		t.Fatalf("2ns.ToCycles() = %d, want 6", got)
	}
	if got := CyclesAt(5, 1_000_000_000); got != 5*Nanosecond {
		t.Fatalf("CyclesAt(5, 1GHz) = %v, want 5ns", got)
	}
}

func TestDurationUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	d := 1500 * Microsecond
	if d.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v", d.Milliseconds())
	}
	if d.Std() != 1500*time.Microsecond {
		t.Fatalf("Std = %v", d.Std())
	}
	if FromStd(2*time.Microsecond) != 2*Microsecond {
		t.Fatalf("FromStd mismatch")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10*Nanosecond, func() { order = append(order, 2) })
	e.Schedule(5*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 3) }) // FIFO tie-break
	e.Schedule(20*Nanosecond, func() { order = append(order, 4) })
	e.RunAll()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Schedule(Nanosecond, func() {
		at = append(at, e.Now())
		e.Schedule(Nanosecond, func() {
			at = append(at, e.Now())
		})
	})
	e.RunAll()
	if len(at) != 2 || at[0] != Time(Nanosecond) || at[1] != Time(2*Nanosecond) {
		t.Fatalf("at = %v", at)
	}
}

func TestEngineZeroDelaySameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(0, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(0, func() { order = append(order, 2) })
	e.RunAll()
	if e.Now() != 0 {
		t.Fatalf("clock moved: %v", e.Now())
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Microsecond, func() { ran++ })
	e.Schedule(2*Microsecond, func() { ran++ })
	e.Schedule(5*Microsecond, func() { ran++ })
	e.Run(Time(3 * Microsecond))
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunAll()
	if ran != 3 {
		t.Fatalf("ran = %d after RunAll", ran)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(Nanosecond, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(Duration(i+1)*Nanosecond, func() { order = append(order, i) }))
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Nanosecond, func() { ran++; e.Stop() })
	e.Schedule(2*Nanosecond, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (stopped)", ran)
	}
	// Run can resume afterwards.
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after resume", ran)
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := NewEngine()
	e.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling into the past")
			}
		}()
		e.At(Time(Nanosecond), func() {})
	})
	e.RunAll()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(Time(5 * Microsecond))
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("Now = %v", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic advancing into the past")
		}
	}()
	e.AdvanceTo(Time(Microsecond))
}

func TestEngineManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var ts []Time
		// A fixed pseudo-random pattern of delays without package deps.
		x := uint64(12345)
		for i := 0; i < 1000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			d := Duration(x%1000) * Nanosecond
			e.Schedule(d, func() { ts = append(ts, e.Now()) })
		}
		e.RunAll()
		return ts
	}
	a, b := run(), run()
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("out of order at %d", i)
		}
	}
}
