package sim

import (
	"testing"
	"time"
)

func TestCyclesConversion(t *testing.T) {
	// 3 cycles at 3 GHz = 1 ns.
	if got := Cycles(3); got != Nanosecond {
		t.Fatalf("Cycles(3) = %v, want 1ns", got)
	}
	if got := Cycles(1); got != 333*Picosecond {
		t.Fatalf("Cycles(1) = %v, want 333ps", got)
	}
	if got := (2 * Nanosecond).ToCycles(); got != 6 {
		t.Fatalf("2ns.ToCycles() = %d, want 6", got)
	}
	if got := CyclesAt(5, 1_000_000_000); got != 5*Nanosecond {
		t.Fatalf("CyclesAt(5, 1GHz) = %v, want 5ns", got)
	}
}

func TestDurationUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	d := 1500 * Microsecond
	if d.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v", d.Milliseconds())
	}
	if d.Std() != 1500*time.Microsecond {
		t.Fatalf("Std = %v", d.Std())
	}
	if FromStd(2*time.Microsecond) != 2*Microsecond {
		t.Fatalf("FromStd mismatch")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10*Nanosecond, func() { order = append(order, 2) })
	e.Schedule(5*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 3) }) // FIFO tie-break
	e.Schedule(20*Nanosecond, func() { order = append(order, 4) })
	e.RunAll()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Schedule(Nanosecond, func() {
		at = append(at, e.Now())
		e.Schedule(Nanosecond, func() {
			at = append(at, e.Now())
		})
	})
	e.RunAll()
	if len(at) != 2 || at[0] != Time(Nanosecond) || at[1] != Time(2*Nanosecond) {
		t.Fatalf("at = %v", at)
	}
}

func TestEngineZeroDelaySameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(0, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(0, func() { order = append(order, 2) })
	e.RunAll()
	if e.Now() != 0 {
		t.Fatalf("clock moved: %v", e.Now())
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Microsecond, func() { ran++ })
	e.Schedule(2*Microsecond, func() { ran++ })
	e.Schedule(5*Microsecond, func() { ran++ })
	e.Run(Time(3 * Microsecond))
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunAll()
	if ran != 3 {
		t.Fatalf("ran = %d after RunAll", ran)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(Nanosecond, func() { ran = true })
	if e.State(ev) != StatePending {
		t.Fatalf("state = %v, want pending", e.State(ev))
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel reported false for a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double-cancel reported true")
	}
	if e.Cancel(Event{}) {
		t.Fatal("cancelling the zero handle reported true")
	}
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.State(ev) != StateCancelled {
		t.Fatalf("state = %v, want cancelled", e.State(ev))
	}
}

func TestEngineEventStates(t *testing.T) {
	e := NewEngine()
	var inside Event
	ev := e.Schedule(Nanosecond, func() {})
	inside = e.Schedule(2*Nanosecond, func() {
		if got := e.State(inside); got != StateFiring {
			t.Errorf("state during fire = %v, want firing", got)
		}
		if e.Cancel(inside) {
			t.Error("an event cancelled itself mid-fire")
		}
	})
	if !ev.Valid() || !inside.Valid() {
		t.Fatal("handles not valid")
	}
	if (Event{}).Valid() {
		t.Fatal("zero handle reports valid")
	}
	if when, ok := e.EventTime(ev); !ok || when != Time(Nanosecond) {
		t.Fatalf("EventTime = %v, %v", when, ok)
	}
	e.RunAll()
	if got := e.State(ev); got != StateFired {
		t.Fatalf("state after fire = %v, want fired", got)
	}
	if _, ok := e.EventTime(ev); ok {
		t.Fatal("EventTime answered for a settled event")
	}
}

// TestEngineStaleHandleAfterReuse pins the pooling safety contract: once a
// settled event's slot is recycled, the old handle expires — its state reads
// StateNone and Cancel cannot touch (resurrect or kill) the new occupant.
func TestEngineStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine()
	old := e.Schedule(Nanosecond, func() {})
	e.Cancel(old)
	// The freed slot is the only one, so this reuses it.
	ran := false
	fresh := e.Schedule(Nanosecond, func() { ran = true })
	if e.State(old) != StateNone {
		t.Fatalf("stale state = %v, want none", e.State(old))
	}
	if e.Cancel(old) {
		t.Fatal("stale handle cancelled the recycled slot")
	}
	e.RunAll()
	if !ran {
		t.Fatal("fresh event did not run (stale handle disturbed it)")
	}
	if e.State(fresh) != StateFired {
		t.Fatalf("fresh state = %v, want fired", e.State(fresh))
	}
}

// TestEngineScheduleCall covers the typed-callback path: op and payloads
// arrive intact, in (when, seq) order, interleaved with closure events.
type callRecorder struct {
	t    *testing.T
	e    *Engine
	ops  []int32
	args []any
}

func (c *callRecorder) OnEvent(op int32, a, b any) {
	c.ops = append(c.ops, op)
	c.args = append(c.args, a, b)
	if op == 7 {
		// Nested typed scheduling from inside a typed callback.
		c.e.ScheduleCall(Nanosecond, c, 8, nil, nil)
	}
}

func TestEngineScheduleCall(t *testing.T) {
	e := NewEngine()
	rec := &callRecorder{t: t, e: e}
	payload := &struct{ x int }{42}
	order := []int32{}
	e.ScheduleCall(2*Nanosecond, rec, 7, payload, nil)
	e.Schedule(Nanosecond, func() { order = append(order, -1) })
	e.CallAt(Time(3*Nanosecond), rec, 9, nil, payload)
	e.RunAll()
	if len(rec.ops) != 3 || rec.ops[0] != 7 || rec.ops[1] != 9 || rec.ops[2] != 8 {
		t.Fatalf("ops = %v", rec.ops)
	}
	if rec.args[0] != payload || rec.args[3] != payload {
		t.Fatalf("payloads lost: %v", rec.args)
	}
	if len(order) != 1 {
		t.Fatalf("closure event fired %d times", len(order))
	}
}

// TestEngineCancelDuringFire cancels a pending event from inside another
// event firing at the same instant.
func TestEngineCancelDuringFire(t *testing.T) {
	e := NewEngine()
	ran := false
	var victim Event
	e.Schedule(0, func() { e.Cancel(victim) })
	victim = e.Schedule(0, func() { ran = true })
	e.RunAll()
	if ran {
		t.Fatal("event cancelled during a same-instant fire still ran")
	}
	if e.State(victim) != StateCancelled {
		t.Fatalf("state = %v, want cancelled", e.State(victim))
	}
}

// TestEngineAtPast verifies At with a timestamp in the past panics, and that
// At exactly at the current instant is allowed.
func TestEngineAtPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(Microsecond, func() {
		// Exactly "now" is legal (fires later this instant)...
		e.At(e.Now(), func() {})
		// ...one tick earlier is not.
		defer func() {
			if recover() == nil {
				t.Error("want panic for At in the past")
			}
		}()
		e.At(e.Now()-1, func() {})
	})
	e.RunAll()
}

// TestEngineRandomizedHeapInvariants drives a long random Schedule/Cancel/
// fire sequence and checks the pop order stays sorted by (when, seq), no
// cancelled event fires, and every surviving event fires exactly once.
func TestEngineRandomizedHeapInvariants(t *testing.T) {
	e := NewEngine()
	x := uint64(99)
	next := func(n uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 17) % n
	}
	type tracked struct {
		ev        Event
		cancelled bool
		fired     int
	}
	var evs []*tracked
	var lastWhen Time
	for i := 0; i < 5000; i++ {
		switch next(3) {
		case 0, 1: // schedule
			tr := &tracked{}
			d := Duration(next(500)) * Nanosecond
			seq := i
			tr.ev = e.Schedule(d, func() {
				tr.fired++
				if e.Now() < lastWhen {
					t.Fatalf("time went backwards at fire %d", seq)
				}
				lastWhen = e.Now()
			})
			evs = append(evs, tr)
		case 2: // cancel a random live event
			if len(evs) == 0 {
				continue
			}
			tr := evs[next(uint64(len(evs)))]
			if e.Cancel(tr.ev) {
				tr.cancelled = true
			}
		}
		if next(10) == 0 {
			// Partial drain keeps schedule/fire interleaved.
			e.Run(e.Now().Add(Duration(next(200)) * Nanosecond))
		}
	}
	e.RunAll()
	for i, tr := range evs {
		if tr.cancelled && tr.fired > 0 {
			t.Fatalf("event %d fired after cancel", i)
		}
		if !tr.cancelled && tr.fired != 1 {
			t.Fatalf("event %d fired %d times", i, tr.fired)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after RunAll", e.Pending())
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(Duration(i+1)*Nanosecond, func() { order = append(order, i) }))
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Nanosecond, func() { ran++; e.Stop() })
	e.Schedule(2*Nanosecond, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (stopped)", ran)
	}
	// Run can resume afterwards.
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after resume", ran)
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := NewEngine()
	e.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling into the past")
			}
		}()
		e.At(Time(Nanosecond), func() {})
	})
	e.RunAll()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(Time(5 * Microsecond))
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("Now = %v", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic advancing into the past")
		}
	}()
	e.AdvanceTo(Time(Microsecond))
}

func TestEngineManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var ts []Time
		// A fixed pseudo-random pattern of delays without package deps.
		x := uint64(12345)
		for i := 0; i < 1000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			d := Duration(x%1000) * Nanosecond
			e.Schedule(d, func() { ts = append(ts, e.Now()) })
		}
		e.RunAll()
		return ts
	}
	a, b := run(), run()
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("out of order at %d", i)
		}
	}
}
