package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Sharded execution: a ShardGroup runs many Engines in parallel while
// preserving the exact event order every engine would see serially.
//
// Each member owns one Engine plus the model code that advances it; members
// interact only through explicit links with a declared lookahead — the
// minimum simulated delay any cross-member message can carry (for servers,
// the NIC's inter-server latency; for a dispatcher, its minimum dispatch
// delay). The group runs a conservative (CMB-style) window loop:
//
//  1. Deliver queued cross-member messages into their target engines, in
//     (when, source, per-source sequence) order — a total order, so the
//     target engine assigns the same internal sequence numbers no matter
//     which goroutine produced the messages or when.
//  2. Compute each member's event floor — the earliest instant it could
//     possibly execute anything — as a fixpoint over next-event times and
//     inbound lookaheads (a member with no pending events can still be
//     activated transitively by a chain of future messages).
//  3. Advance each member to its safe cap: the horizon, bounded by
//     floor(src) + lookahead - 1 over its inbound links. No message can
//     arrive below the cap, so members advance in parallel with no locks
//     on the hot path. Members whose cap grants nothing new are skipped in
//     O(1) — the idle fast-forward.
//
// The window boundaries depend only on event floors and lookaheads — never
// on the worker count — so a group produces byte-identical simulation
// results with 1 worker or N. Workers only decide which OS thread executes
// an already-determined schedule.
type ShardGroup struct {
	workers int
	members []*shardMember
	// links[dst] lists the inbound links of member dst.
	links [][]shardLink

	// floors is the per-window scratch for the fixpoint in step 2.
	floors []Time
}

type shardLink struct {
	src       int
	lookahead Duration
}

type shardMember struct {
	id      int
	eng     *Engine
	advance func(to Time)
	autoRun bool // default advance: safe to skip when no events are due

	// doneTo is the highest cap this member has fully advanced to.
	doneTo Time

	// sendSeq numbers this member's outgoing messages; only the member's
	// own advance goroutine touches it.
	sendSeq uint64

	// inbox collects messages addressed to this member. Producers append
	// under mu from their own advance goroutines; the coordinator drains it
	// between windows.
	mu    sync.Mutex
	inbox []shardMsg
}

// shardMsg is one cross-member event in flight.
type shardMsg struct {
	when Time
	src  int
	seq  uint64
	cb   Callback
	op   int32
	a, b any
}

const shardInf = Time(1<<61 - 1)

// NewShardGroup builds a group that executes eligible members on up to
// `workers` goroutines per window; workers <= 0 selects GOMAXPROCS.
func NewShardGroup(workers int) *ShardGroup {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ShardGroup{workers: workers}
}

// Workers reports the goroutine budget per window.
func (g *ShardGroup) Workers() int { return g.workers }

// Members reports the number of members added.
func (g *ShardGroup) Members() int { return len(g.members) }

// Add registers an engine whose events are self-contained model code: the
// group advances it by calling eng.Run. Returns the member id used by Link
// and Send.
func (g *ShardGroup) Add(eng *Engine) int {
	m := &shardMember{id: len(g.members), eng: eng, doneTo: -1, autoRun: true}
	m.advance = func(to Time) { eng.Run(to) }
	g.members = append(g.members, m)
	g.links = append(g.links, nil)
	return m.id
}

// AddFunc registers an engine advanced by custom model code: advance(to)
// must execute the member's model up to and including simulated time `to`
// (typically wrapping eng.Run with control-plane work such as scenario
// actions). Unlike Add, the advance function is invoked for every window
// even when no engine events are due, because the group cannot know what
// time-driven work the closure performs.
func (g *ShardGroup) AddFunc(eng *Engine, advance func(to Time)) int {
	if advance == nil {
		panic("sim: nil advance func")
	}
	m := &shardMember{id: len(g.members), eng: eng, doneTo: -1, advance: advance}
	g.members = append(g.members, m)
	g.links = append(g.links, nil)
	return m.id
}

// Link declares that src may send messages to dst with at least `lookahead`
// of simulated delay. The lookahead must be strictly positive: it is what
// lets dst run ahead of src, and a zero-delay channel would serialize the
// pair (and admit causality cycles).
func (g *ShardGroup) Link(src, dst int, lookahead Duration) {
	if src == dst {
		panic("sim: self-link (schedule on the member's own engine instead)")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: link lookahead must be positive, got %v", lookahead))
	}
	g.checkID(src)
	g.checkID(dst)
	g.links[dst] = append(g.links[dst], shardLink{src: src, lookahead: lookahead})
}

func (g *ShardGroup) checkID(id int) {
	if id < 0 || id >= len(g.members) {
		panic(fmt.Sprintf("sim: unknown shard member %d", id))
	}
}

// Send schedules cb.OnEvent(op, a, b) on dst's engine after `delay` of
// simulated time, measured from src's current clock. It must be called from
// src's advance code, over a declared link, with delay >= the link's
// lookahead — violating the lookahead would let a message land in dst's
// already-simulated past, so it panics loudly instead of corrupting the
// run. Delivery order into dst is deterministic regardless of worker count.
func (g *ShardGroup) Send(src, dst int, delay Duration, cb Callback, op int32, a, b any) {
	g.checkID(src)
	g.checkID(dst)
	la := Duration(-1)
	for _, l := range g.links[dst] {
		if l.src == src {
			la = l.lookahead
			break
		}
	}
	if la < 0 {
		panic(fmt.Sprintf("sim: send %d->%d without a declared link", src, dst))
	}
	if delay < la {
		panic(fmt.Sprintf("sim: send %d->%d delay %v below link lookahead %v", src, dst, delay, la))
	}
	s := g.members[src]
	d := g.members[dst]
	msg := shardMsg{when: s.eng.Now().Add(delay), src: src, seq: s.sendSeq, cb: cb, op: op, a: a, b: b}
	s.sendSeq++
	d.mu.Lock()
	d.inbox = append(d.inbox, msg)
	d.mu.Unlock()
}

// deliver drains every inbox into its engine, in (when, src, seq) order —
// a total order, so each engine's internal event sequence is reproducible.
func (g *ShardGroup) deliver() {
	for _, m := range g.members {
		// No lock needed: deliver runs on the coordinator between windows,
		// when no advance goroutines are live.
		if len(m.inbox) == 0 {
			continue
		}
		box := m.inbox
		sort.Slice(box, func(i, j int) bool {
			if box[i].when != box[j].when {
				return box[i].when < box[j].when
			}
			if box[i].src != box[j].src {
				return box[i].src < box[j].src
			}
			return box[i].seq < box[j].seq
		})
		for _, msg := range box {
			if msg.when <= m.doneTo {
				panic(fmt.Sprintf("sim: shard causality violation: message at %v for member %d already at %v",
					msg.when, m.id, m.doneTo))
			}
			m.eng.CallAt(msg.when, msg.cb, msg.op, msg.a, msg.b)
		}
		m.inbox = m.inbox[:0]
	}
}

// computeFloors fills g.floors with each member's earliest possible
// activation time: its own next pending event, lowered transitively by
// inbound chains (floor(src) + lookahead). The relaxation converges because
// floors only decrease and every link adds a positive lookahead.
func (g *ShardGroup) computeFloors() {
	if cap(g.floors) < len(g.members) {
		g.floors = make([]Time, len(g.members))
	}
	floors := g.floors[:len(g.members)]
	for i, m := range g.members {
		if t, ok := m.eng.NextEventTime(); ok {
			floors[i] = t
		} else {
			floors[i] = shardInf
		}
	}
	for changed := true; changed; {
		changed = false
		for dst, links := range g.links {
			for _, l := range links {
				if floors[l.src] >= shardInf {
					continue
				}
				if t := floors[l.src].Add(l.lookahead); t < floors[dst] {
					floors[dst] = t
					changed = true
				}
			}
		}
	}
	g.floors = floors
}

// Run advances every member to the horizon (inclusive), window by window.
// Horizons must be non-decreasing across calls, like Engine.Run's: a group
// steps through the same barrier cadence a serial caller would use, and the
// window boundaries never perturb any member's event sequence (DESIGN §8's
// step-equivalence, extended across members by the lookahead bound).
func (g *ShardGroup) Run(horizon Time) {
	for {
		g.deliver()
		done := true
		for _, m := range g.members {
			if m.doneTo < horizon {
				done = false
				break
			}
		}
		if done {
			return
		}
		g.computeFloors()
		// Caps: how far each member may run this window.
		var batch []*shardMember
		for i, m := range g.members {
			cap := horizon
			for _, l := range g.links[i] {
				if t := g.floors[l.src].Add(l.lookahead - 1); t < cap {
					cap = t
				}
			}
			if cap <= m.doneTo {
				continue // not allowed further yet
			}
			if m.autoRun && g.floors[i] > cap {
				// Idle fast-forward: nothing can execute at or below the
				// cap, so the member "advances" in O(1) with no dispatch.
				m.doneTo = cap
				continue
			}
			m.doneTo = cap
			batch = append(batch, m)
		}
		if len(batch) == 0 {
			continue // a delivery or floor change must unblock the next loop
		}
		g.runBatch(batch)
	}
}

// runBatch executes the window's eligible members on up to g.workers
// goroutines. The members were assigned their caps (doneTo) already; the
// round-robin split only chooses which goroutine runs which member.
func (g *ShardGroup) runBatch(batch []*shardMember) {
	w := g.workers
	if w > len(batch) {
		w = len(batch)
	}
	if w <= 1 {
		for _, m := range batch {
			m.advance(m.doneTo)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < len(batch); i += w {
				m := batch[i]
				m.advance(m.doneTo)
			}
		}(k)
	}
	wg.Wait()
}
