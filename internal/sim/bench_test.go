package sim

import "testing"

// The engine benchmarks pin the allocation contract of the hot path: once
// the slab and free list are warm, ScheduleCall/fire cycles must not
// allocate at all, and closure-based Schedule must only pay for the closure
// the caller builds.

type benchSink struct {
	n     int
	e     *Engine
	depth int
}

func (s *benchSink) OnEvent(op int32, a, b any) {
	s.n++
	if s.depth > 0 {
		s.depth--
		s.e.ScheduleCall(Nanosecond, s, op, a, b)
	}
}

// BenchmarkEngineScheduleCall measures one typed schedule+fire cycle with a
// warm free list (the steady state of a server simulation).
func BenchmarkEngineScheduleCall(b *testing.B) {
	e := NewEngine()
	sink := &benchSink{e: e}
	payload := &benchSink{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleCall(Nanosecond, sink, 1, payload, nil)
		e.RunAll()
	}
	if sink.n != b.N {
		b.Fatalf("fired %d, want %d", sink.n, b.N)
	}
}

// BenchmarkEngineScheduleClosure is the same cycle through the closure API.
func BenchmarkEngineScheduleClosure(b *testing.B) {
	e := NewEngine()
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Nanosecond, func() { n++ })
		e.RunAll()
	}
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapChurn keeps a deep queue alive so every push/remove
// pays full heap depth, the regime the 4-ary layout targets.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	sink := &benchSink{e: e}
	const depth = 4096
	x := uint64(7)
	delay := func() Duration {
		x = x*6364136223846793005 + 1442695040888963407
		return Duration(1+(x>>33)%10000) * Nanosecond
	}
	ring := make([]Event, depth)
	for i := range ring {
		ring[i] = e.ScheduleCall(delay(), sink, 0, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(ring[i%depth])
		ring[i%depth] = e.ScheduleCall(delay(), sink, 0, nil, nil)
	}
}

// TestEngineScheduleCallAllocFree is the pinned contract behind the
// benchmarks: a warm engine performs typed schedule/fire cycles with zero
// heap allocations.
func TestEngineScheduleCallAllocFree(t *testing.T) {
	e := NewEngine()
	sink := &benchSink{e: e}
	// Warm the slab and free list.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(Nanosecond, sink, 0, nil, nil)
	}
	e.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		e.ScheduleCall(Nanosecond, sink, 0, sink, nil)
		e.ScheduleCall(2*Nanosecond, sink, 1, nil, sink)
		e.RunAll()
	})
	if avg != 0 {
		t.Fatalf("warm ScheduleCall allocates %.1f per cycle, want 0", avg)
	}
}

// TestEngineCancelAllocFree pins the same contract for Cancel.
func TestEngineCancelAllocFree(t *testing.T) {
	e := NewEngine()
	sink := &benchSink{e: e}
	for i := 0; i < 64; i++ {
		e.ScheduleCall(Nanosecond, sink, 0, nil, nil)
	}
	e.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		ev := e.ScheduleCall(Nanosecond, sink, 0, nil, nil)
		e.Cancel(ev)
	})
	if avg != 0 {
		t.Fatalf("warm Schedule+Cancel allocates %.1f per cycle, want 0", avg)
	}
}
