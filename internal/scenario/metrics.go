package scenario

import (
	"fmt"
	"sort"
	"strings"

	"hardharvest/internal/cluster"
	"hardharvest/internal/graph"
	"hardharvest/internal/obs"
	"hardharvest/internal/route"
	"hardharvest/internal/validate"
)

// serverRun is one finished server of the fleet: its result plus the
// independent observers the runner attached.
type serverRun struct {
	index int // fleet index
	group string
	res   *cluster.ServerResult
	meter *obs.Meter
	audit *obs.Audit
}

// metricDef describes one assertable metric. Numeric metrics expose a
// per-server value checked against min/max bounds; oracle checks expose a
// pass/fail verdict with a detail string and take no bounds.
type metricDef struct {
	name string
	help string
	// eval computes a numeric metric's value for one server.
	eval func(r *serverRun) float64
	// check runs an oracle check for one server (nil for numeric metrics).
	check func(r *serverRun) validate.Check
	// fleetEval / fleetCheck evaluate against the router's result instead of
	// a server; such metrics require a routing block and take no target.
	fleetEval  func(rr *route.Result) float64
	fleetCheck func(rr *route.Result) validate.Check
	// graphEval / graphCheck evaluate against the DAG dispatcher's run;
	// such metrics require a graph block and take no target. tierEval
	// evaluates one tier selected by the assertion's tier field.
	graphEval  func(gr *graphRun) float64
	graphCheck func(gr *graphRun) validate.Check
	tierEval   func(tr *graph.TierResult) float64
}

// graphRun is the DAG dispatcher's finished run plus the scenario it ran
// under (the Monte-Carlo cross-check re-derives the composition from the
// scenario's spec and seed).
type graphRun struct {
	sc  *Scenario
	res *graph.Result
}

// mcSeedSalt derives the Monte-Carlo cross-check's sampling stream from
// the scenario seed, independent of every simulation stream.
const mcSeedSalt = 0x2545f4914f6cdd1d

// fleet reports whether the metric evaluates at the fleet front door.
func (d metricDef) fleet() bool { return d.fleetEval != nil || d.fleetCheck != nil }

// graph reports whether the metric evaluates at the DAG dispatcher.
func (d metricDef) graph() bool { return d.graphEval != nil || d.graphCheck != nil }

// tier reports whether the metric evaluates one DAG tier.
func (d metricDef) tier() bool { return d.tierEval != nil }

func msOf(q float64) func(r *serverRun) float64 {
	return func(r *serverRun) float64 {
		return r.meter.Hist().Quantile(q).Milliseconds()
	}
}

// metricCatalog lists every metric assertions may reference, in display
// order. The names are the public scenario-format vocabulary — renaming one
// breaks shipped scenarios.
var metricCatalog = []metricDef{
	{name: "p50_ms", help: "median end-to-end request latency (milliseconds)", eval: msOf(0.50)},
	{name: "p95_ms", help: "95th-percentile request latency (milliseconds)", eval: msOf(0.95)},
	{name: "p99_ms", help: "99th-percentile request latency (milliseconds)", eval: msOf(0.99)},
	{name: "mean_ms", help: "mean request latency (milliseconds)", eval: func(r *serverRun) float64 {
		return r.meter.Hist().Mean().Milliseconds()
	}},
	{name: "arrivals", help: "requests that entered the server in the measurement window", eval: func(r *serverRun) float64 {
		return float64(r.res.Arrivals)
	}},
	{name: "completions", help: "requests completed in the measurement window", eval: func(r *serverRun) float64 {
		return float64(r.res.Requests)
	}},
	{name: "sheds", help: "load-shed requests", eval: func(r *serverRun) float64 {
		return float64(r.res.Sheds)
	}},
	{name: "shed_fraction", help: "sheds / arrivals (0 when nothing arrived)", eval: func(r *serverRun) float64 {
		if r.res.Arrivals == 0 {
			return 0
		}
		return float64(r.res.Sheds) / float64(r.res.Arrivals)
	}},
	{name: "deadline_misses", help: "requests that exhausted their retry budget", eval: func(r *serverRun) float64 {
		return float64(r.res.DeadlineMisses)
	}},
	{name: "retries", help: "retry attempts issued by the resilience policy", eval: func(r *serverRun) float64 {
		return float64(r.res.Retries)
	}},
	{name: "hedges", help: "hedge attempts issued by the resilience policy", eval: func(r *serverRun) float64 {
		return float64(r.res.Hedges)
	}},
	{name: "faults_injected", help: "fault events that fired on the server", eval: func(r *serverRun) float64 {
		return float64(r.res.FaultsInjected)
	}},
	{name: "jobs_done", help: "Harvest VM batch jobs completed", eval: func(r *serverRun) float64 {
		return float64(r.res.HarvestJobs)
	}},
	{name: "jobs_per_sec", help: "Harvest VM batch throughput (jobs/s)", eval: func(r *serverRun) float64 {
		return r.res.HarvestJobsPerSec
	}},
	{name: "busy_cores", help: "time-averaged busy core count", eval: func(r *serverRun) float64 {
		return r.res.BusyCores
	}},
	{name: "reassigns", help: "core movements between VMs", eval: func(r *serverRun) float64 {
		return float64(r.res.Reassigns)
	}},
	{name: "invariant_violations", help: "violations tolerated by the always-on checker", eval: func(r *serverRun) float64 {
		return float64(r.res.InvariantViolations)
	}},
	{name: "fleet_generated", help: "requests created at the fleet front door (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Generated) }},
	{name: "fleet_completions", help: "requests completed fleet-wide through the router (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Completions) }},
	{name: "fleet_sheds", help: "requests shed fleet-wide at backend admission (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Sheds) }},
	{name: "lost", help: "requests lost: failover budget or eligible fleet exhausted (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Lost) }},
	{name: "failovers", help: "stranded attempts re-dispatched to another server (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Failovers) }},
	{name: "ejections", help: "outlier-ejection circuit-breaker trips (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Ejections) }},
	{name: "readmits", help: "half-open re-admissions after ejection backoff (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Readmits) }},
	{name: "drains", help: "graceful drains started at the router (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.Drains) }},
	{name: "zombie_completions", help: "completions for superseded attempts after failover (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return float64(rr.ZombieDones) }},
	{name: "fleet_p50_ms", help: "median fleet end-to-end latency at the router (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return rr.FleetLatency.P50() }},
	{name: "fleet_p99_ms", help: "99th-percentile fleet end-to-end latency at the router (requires routing)",
		fleetEval: func(rr *route.Result) float64 { return rr.FleetLatency.P99() }},
	{name: "fleet_conservation", help: "oracle check: the six routed-fleet conservation identities (requires routing)",
		fleetCheck: func(rr *route.Result) validate.Check { return rr.Conservation("fleet") }},
	{name: "graph_generated", help: "root DAG requests admitted at the dispatcher (requires graph)",
		graphEval: func(gr *graphRun) float64 { return float64(gr.res.Generated) }},
	{name: "graph_completed", help: "DAG requests whose whole invocation tree completed (requires graph)",
		graphEval: func(gr *graphRun) float64 { return float64(gr.res.Completed) }},
	{name: "graph_failed", help: "DAG requests drained with at least one shed invocation (requires graph)",
		graphEval: func(gr *graphRun) float64 { return float64(gr.res.Failed) }},
	{name: "graph_rpcs", help: "tier invocations dispatched across the DAG (requires graph)",
		graphEval: func(gr *graphRun) float64 { return float64(gr.res.Dispatches) }},
	{name: "graph_p50_ms", help: "median end-to-end DAG latency: root admission to tree completion (requires graph)",
		graphEval: func(gr *graphRun) float64 { return gr.res.E2E.P50() }},
	{name: "graph_p99_ms", help: "99th-percentile end-to-end DAG latency (requires graph)",
		graphEval: func(gr *graphRun) float64 { return gr.res.E2E.P99() }},
	{name: "graph_mean_ms", help: "mean end-to-end DAG latency (requires graph)",
		graphEval: func(gr *graphRun) float64 { return gr.res.E2E.Mean() }},
	{name: "tier_rpcs", help: "invocations dispatched to one DAG tier (requires graph + tier)",
		tierEval: func(tr *graph.TierResult) float64 { return float64(tr.Dispatches) }},
	{name: "tier_sheds", help: "invocations shed by one DAG tier's servers (requires graph + tier)",
		tierEval: func(tr *graph.TierResult) float64 { return float64(tr.Sheds) }},
	{name: "tier_p50_ms", help: "median per-hop latency through one DAG tier (requires graph + tier)",
		tierEval: func(tr *graph.TierResult) float64 { return tr.Hop.P50() }},
	{name: "tier_p99_ms", help: "99th-percentile per-hop latency through one DAG tier (requires graph + tier)",
		tierEval: func(tr *graph.TierResult) float64 { return tr.Hop.P99() }},
	{name: "tier_mean_ms", help: "mean per-hop latency through one DAG tier (requires graph + tier)",
		tierEval: func(tr *graph.TierResult) float64 { return tr.Hop.Mean() }},
	{name: "graph_conservation", help: "oracle check: the six request-DAG conservation identities (requires graph)",
		graphCheck: func(gr *graphRun) validate.Check { return validate.GraphResultConservation("graph", gr.res) }},
	{name: "graph_mc", help: "oracle check: end-to-end tails match the Monte-Carlo critical-path composition (requires graph; declare only on no-queueing scenarios)",
		graphCheck: func(gr *graphRun) validate.Check {
			return validate.GraphMC("graph/mc", gr.sc.Graph.spec.ToApp(gr.sc.Name),
				gr.res.HopSketches(), gr.res.E2E, validate.GraphMCTrials, gr.sc.Seed^mcSeedSalt)
		}},
	{name: "flow_balance", help: "oracle check: event-stream flow equals simulator counters exactly",
		check: func(r *serverRun) validate.Check {
			return validate.FlowBalance(fmt.Sprintf("server%d", r.index), r.res, r.audit)
		}},
	{name: "littles_law", help: "oracle check: exact Little's-law identity over the audited span",
		check: func(r *serverRun) validate.Check {
			return validate.LittlesLawIdentity(fmt.Sprintf("server%d", r.index), r.res, r.audit)
		}},
}

// metricsByName indexes the catalog.
var metricsByName = func() map[string]metricDef {
	m := make(map[string]metricDef, len(metricCatalog))
	for _, d := range metricCatalog {
		m[d.name] = d
	}
	return m
}()

// metricNames lists the catalog names, sorted, for diagnostics.
func metricNames() string {
	names := make([]string, 0, len(metricCatalog))
	for _, d := range metricCatalog {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// AssertResult is one evaluated assertion: for numeric metrics, the worst
// (closest-to-violating or violating) server and its value; for oracle
// checks, the first failing server's detail.
type AssertResult struct {
	Assertion Assertion
	OK        bool
	Detail    string
}

// bounds renders an assertion's bound expression deterministically.
func (a Assertion) bounds() string {
	switch {
	case a.Min != nil && a.Max != nil:
		return fmt.Sprintf("in [%s, %s]", fnum(*a.Min), fnum(*a.Max))
	case a.Min != nil:
		return ">= " + fnum(*a.Min)
	case a.Max != nil:
		return "<= " + fnum(*a.Max)
	default:
		return "holds"
	}
}

// fnum formats a float deterministically with no trailing-zero noise.
func fnum(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// selected reports whether a server run matches an assertion target.
func (t Target) selects(r *serverRun) bool {
	switch {
	case t.Group != "":
		return r.group == t.Group
	case t.Server >= 0:
		return r.index == t.Server
	default:
		return true
	}
}

// evalAssertion checks one assertion against the fleet. Numeric bounds must
// hold on every selected server; oracle checks must pass on every selected
// server. Fleet metrics evaluate once against the router's result; graph
// and tier metrics once against the DAG dispatcher's.
func evalAssertion(a Assertion, runs []*serverRun, fleet *route.Result, gr *graphRun) AssertResult {
	def := metricsByName[a.Metric] // validated during Parse
	out := AssertResult{Assertion: a, OK: true}
	if def.graph() || def.tier() {
		// Validation guarantees gr != nil here (graph block required).
		if def.graphCheck != nil {
			c := def.graphCheck(gr)
			out.OK = c.OK
			out.Detail = c.Detail
			return out
		}
		var v float64
		var what string
		if def.tier() {
			v = def.tierEval(gr.res.TierByName(a.Tier))
			what = fmt.Sprintf("tier %s %s", a.Tier, a.Metric)
		} else {
			v = def.graphEval(gr)
			what = "graph " + a.Metric
		}
		if (a.Min != nil && v < *a.Min) || (a.Max != nil && v > *a.Max) {
			out.OK = false
		}
		out.Detail = fmt.Sprintf("%s=%s", what, fnum(v))
		return out
	}
	if def.fleet() {
		// Validation guarantees fleet != nil here (routing block required).
		if def.fleetCheck != nil {
			c := def.fleetCheck(fleet)
			out.OK = c.OK
			out.Detail = c.Detail
			return out
		}
		v := def.fleetEval(fleet)
		if (a.Min != nil && v < *a.Min) || (a.Max != nil && v > *a.Max) {
			out.OK = false
		}
		out.Detail = fmt.Sprintf("fleet %s=%s", a.Metric, fnum(v))
		return out
	}
	if def.check != nil {
		for _, r := range runs {
			if !a.Target.selects(r) {
				continue
			}
			c := def.check(r)
			if !c.OK {
				out.OK = false
				out.Detail = fmt.Sprintf("server %d [%s]: %s", r.index, r.group, c.Detail)
				return out
			}
		}
		out.Detail = "holds on every selected server"
		return out
	}
	// Numeric: every selected server must satisfy the bounds. The detail
	// line reports the binding extreme — the largest value under a max
	// bound, the smallest under a min-only bound — or the worst violation.
	var pick *serverRun
	var pickV, worstDist float64
	for _, r := range runs {
		if !a.Target.selects(r) {
			continue
		}
		v := def.eval(r)
		viol := 0.0
		if a.Min != nil && v < *a.Min {
			viol = *a.Min - v
		}
		if a.Max != nil && v > *a.Max && v-*a.Max > viol {
			viol = v - *a.Max
		}
		switch {
		case viol > 0 && (out.OK || viol > worstDist):
			out.OK = false
			worstDist = viol
			pick, pickV = r, v
		case out.OK && (pick == nil ||
			(a.Max != nil && v > pickV) || (a.Max == nil && v < pickV)):
			pick, pickV = r, v
		}
	}
	if pick == nil {
		out.OK = false
		out.Detail = "no server matched the target"
		return out
	}
	out.Detail = fmt.Sprintf("server %d [%s] %s=%s", pick.index, pick.group, a.Metric, fnum(pickV))
	return out
}
