package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dagYAML is the graph-mode mutation base: an inline three-tier DAG (fe ->
// mid x2 -> leafy, sequential leaf hop) over two fleet groups, with the
// back group serving two tiers. Every diagnostics case below is one edit
// away.
const dagYAML = `name: dag-test
seed: 12
warmup_ms: 10
duration_ms: 100
step_ms: 10
graph:
  rpc_delay_us: 20
  root: fe
  tiers:
    - tier: fe
      group: web
      calls:
        - tier: mid
          mode: parallel
          fanout: 2
    - tier: mid
      group: back
      calls:
        - tier: leafy
          mode: sequential
          fanout: 1
    - tier: leafy
      group: back
fleet:
  - group: web
    count: 1
  - group: back
    count: 2
workload:
  - at_ms: 20
    kind: intensity
    intensity: 1.3
assertions:
  - metric: graph_completed
    min: 20
  - metric: graph_failed
    max: 0
  - metric: tier_rpcs
    tier: mid
    min: 40
  - metric: graph_conservation
  - metric: flow_balance
  - metric: littles_law
`

// TestGraphRunDeterministic is the graph-mode cornerstone: a DAG scenario
// must pass its assertions plus the mandatory graph-conservation oracle,
// render the dispatcher's ledgers, and produce byte-identical summaries
// across repeats and at any worker count.
func TestGraphRunDeterministic(t *testing.T) {
	want, err := quick(t, dagYAML).RunShards(1)
	if err != nil {
		t.Fatal(err)
	}
	if !want.OK() {
		t.Fatalf("graph run failed (%d):\n%s", want.Failed, want.Summary)
	}
	if want.Graph == nil {
		t.Fatal("graph run reported no dispatcher result")
	}
	for _, wantStr := range []string{
		"graph: root=fe rpc_delay_us=20",
		"dag: generated=",
		"e2e latency: p50=",
		"tier fe servers=1 vm=0",
		"tier mid servers=2 vm=0",
		"tier leafy servers=2 vm=0",
		"graph conservation PASS",
		"PASS graph_conservation holds [all]",
		"PASS tier_rpcs >= 40 [all] — tier mid tier_rpcs=",
	} {
		if !strings.Contains(want.Summary, wantStr) {
			t.Errorf("summary missing %q:\n%s", wantStr, want.Summary)
		}
	}
	for _, shards := range []int{1, 2, 8, 0} {
		got, err := quick(t, dagYAML).RunShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary != want.Summary {
			t.Fatalf("graph summary diverged at shards=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
				shards, want.Summary, shards, got.Summary)
		}
	}

	// The seed must matter.
	other, err := quick(t, strings.Replace(dagYAML, "seed: 12", "seed: 13", 1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if other.Summary == want.Summary {
		t.Fatal("different seeds produced identical graph summaries")
	}
}

// lineOf reports the 1-based line of the first occurrence of anchor.
func lineOf(t *testing.T, doc, anchor string) int {
	t.Helper()
	i := strings.Index(doc, anchor)
	if i < 0 {
		t.Fatalf("anchor %q not in document", anchor)
	}
	return 1 + strings.Count(doc[:i], "\n")
}

// TestGraphDiagnostics pins the positioned file:line: field shape of every
// graph-block failure mode: cycles, dangling tier references, fan-out
// bounds, group binding, and the file/inline exclusivity rules.
func TestGraphDiagnostics(t *testing.T) {
	edit := func(old, new string) string {
		if !strings.Contains(dagYAML, old) {
			t.Fatalf("fixture lost mutation anchor %q", old)
		}
		return strings.Replace(dagYAML, old, new, 1)
	}
	cases := []struct {
		name string
		doc  string
		// anchor, when set, must carry the error's scenario.yaml:<line>
		// position; field and msg must both appear in the error.
		anchor string
		field  string
		msg    string
	}{
		{
			name: "call cycle names the loop",
			doc: edit("    - tier: leafy\n      group: back\nfleet:",
				"    - tier: leafy\n      group: back\n      calls:\n        - tier: fe\nfleet:"),
			anchor: "- tier: fe\nfleet:",
			field:  "graph.tiers[2].calls[0].tier",
			msg:    "call cycle: fe -> mid -> leafy -> fe",
		},
		{
			name:   "dangling call tier",
			doc:    edit("- tier: leafy\n          mode: sequential", "- tier: nosuch\n          mode: sequential"),
			anchor: "- tier: nosuch",
			field:  "graph.tiers[1].calls[0].tier",
			msg:    `unknown tier "nosuch" (tiers: fe, mid, leafy)`,
		},
		{
			name:   "zero fanout",
			doc:    edit("fanout: 2", "fanout: 0"),
			anchor: "fanout: 0",
			field:  "graph.tiers[0].calls[0].fanout",
			msg:    "must be in [1, 64], got 0",
		},
		{
			name:   "fanout over bound",
			doc:    edit("fanout: 2", "fanout: 65"),
			anchor: "fanout: 65",
			field:  "graph.tiers[0].calls[0].fanout",
			msg:    "must be in [1, 64], got 65",
		},
		{
			name:   "unknown call mode",
			doc:    edit("mode: parallel", "mode: zigzag"),
			anchor: "mode: zigzag",
			field:  "graph.tiers[0].calls[0].mode",
			msg:    `unknown call mode "zigzag"`,
		},
		{
			name:   "unknown fleet group",
			doc:    edit("      group: web", "      group: wbe"),
			anchor: "      group: wbe",
			field:  "graph.tiers[0].group",
			msg:    `unknown fleet group "wbe"`,
		},
		{
			name:   "missing tier group",
			doc:    edit("      group: web\n", ""),
			field:  "graph.tiers[0].group",
			msg:    "required (each tier is served by a fleet group)",
		},
		{
			name:   "vm out of range",
			doc:    edit("      group: web\n", "      group: web\n      vm: 99\n"),
			anchor: "vm: 99",
			field:  "graph.tiers[0].vm",
			msg:    `vm 99 out of range for group "web" (8 primary VMs)`,
		},
		{
			name:   "unknown root",
			doc:    edit("root: fe", "root: nope"),
			anchor: "root: nope",
			field:  "graph.root",
			msg:    `unknown tier "nope" (tiers: fe, mid, leafy)`,
		},
		{
			name:   "zero rpc delay",
			doc:    edit("rpc_delay_us: 20", "rpc_delay_us: 0"),
			anchor: "rpc_delay_us: 0",
			field:  "graph.rpc_delay_us",
			msg:    "must be positive",
		},
		{
			name: "unreachable tier",
			doc: edit("      calls:\n        - tier: leafy\n          mode: sequential\n          fanout: 1\n",
				""),
			anchor: "- tier: leafy\n      group: back",
			field:  "graph.tiers[2].tier",
			msg:    `tier "leafy" is unreachable from root tier "fe"`,
		},
		{
			name: "routing and graph exclusive",
			doc: edit("fleet:", "routing:\n  policy: round_robin\nfleet:"),
			field: "graph",
			msg:   "graph and routing are mutually exclusive",
		},
		{
			name: "fleet group serving no tier",
			doc: edit("  - group: back\n    count: 2\n",
				"  - group: back\n    count: 2\n  - group: spare\n    count: 1\n"),
			field: "graph.tiers",
			msg:   `fleet group "spare" serves no tier`,
		},
		{
			name:   "file exclusive with inline fields",
			doc:    edit("  rpc_delay_us: 20", "  file: x.yaml\n  rpc_delay_us: 20"),
			anchor: "file: x.yaml",
			field:  "graph.file",
			msg:    "file is exclusive with inline graph fields",
		},
		{
			name: "duplicate tier name",
			doc: `name: dup
duration_ms: 40
step_ms: 10
graph:
  tiers:
    - tier: a
      group: web
      calls:
        - tier: b
    - tier: b
      group: web
    - tier: b
      group: web
fleet:
  - group: web
    count: 1
`,
			field: "graph.tiers[2].tier",
			msg:   `duplicate tier name "b"`,
		},
		{
			name: "missing graph file",
			doc: `name: nofile
duration_ms: 40
step_ms: 10
graph:
  file: nope.graph.yaml
fleet:
  - group: web
    count: 1
`,
			field: "graph.file",
			msg:   "nope.graph.yaml",
		},
		{
			name: "empty graph block",
			doc: edit(`  rpc_delay_us: 20
  root: fe
  tiers:
    - tier: fe
      group: web
      calls:
        - tier: mid
          mode: parallel
          fanout: 2
    - tier: mid
      group: back
      calls:
        - tier: leafy
          mode: sequential
          fanout: 1
    - tier: leafy
      group: back
`, "  rpc_delay_us: 20\n"),
			field: "graph.tiers",
			msg:   "required: define at least one tier",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "scenario.yaml")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(path)
			if err == nil {
				t.Fatal("damaged graph scenario unexpectedly loaded")
			}
			if tc.anchor != "" {
				pos := "scenario.yaml:" + itoa(lineOf(t, tc.doc, tc.anchor)) + ":"
				if !strings.Contains(err.Error(), pos) {
					t.Errorf("error %q\nnot positioned at %q", err, pos)
				}
			} else if !strings.Contains(err.Error(), "scenario.yaml:") {
				t.Errorf("error %q carries no scenario.yaml position", err)
			}
			for _, w := range []string{tc.field, tc.msg} {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\nmissing %q", err, w)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestGraphFileReference: a graph: {file:} scenario resolves the DAG from
// the referenced document, and errors inside the file are doubly
// positioned — the scenario's graph.file line wrapping the graph file's own
// line.
func TestGraphFileReference(t *testing.T) {
	graphDoc := `rpc_delay_us: 15
root: a
tiers:
  - tier: a
    group: web
    calls:
      - tier: b
        fanout: 2
  - tier: b
    group: web
`
	scenarioDoc := `name: filed
seed: 3
duration_ms: 60
step_ms: 10
graph:
  file: chain.graph.yaml
fleet:
  - group: web
    count: 1
assertions:
  - metric: graph_completed
    min: 1
  - metric: graph_conservation
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "chain.graph.yaml"), []byte(graphDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "scenario.yaml")
	if err := os.WriteFile(path, []byte(scenarioDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(path)
	if err != nil {
		t.Fatalf("file-referenced graph rejected: %v", err)
	}
	spec := sc.Graph.Spec()
	if spec == nil || len(spec.Tiers) != 2 || spec.Nodes() != 3 {
		t.Fatalf("file graph compiled wrong: %+v", spec)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("file-referenced graph run failed:\n%s", rep.Summary)
	}

	// Damage inside the graph file: the diagnostic must name the scenario's
	// graph.file line AND the graph file's own position.
	bad := strings.Replace(graphDoc, "fanout: 2", "fanout: 0", 1)
	if err := os.WriteFile(filepath.Join(dir, "chain.graph.yaml"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("damaged graph file accepted")
	}
	for _, w := range []string{
		"scenario.yaml:6: graph.file",
		"chain.graph.yaml:" + itoa(lineOf(t, bad, "fanout: 0")),
		"tiers[0].calls[0].fanout",
		"must be in [1, 64]",
	} {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("file-graph error %q\nmissing %q", err, w)
		}
	}
}

// TestGraphPerturbMCTeeth: -perturb graph-mc corrupts one tier's measured
// hop sketch after the run. The Monte-Carlo cross-check must fail on
// exactly that drift while the counter-based conservation oracle stays
// green — proof the analytic relation has teeth independent of the ledgers.
func TestGraphPerturbMCTeeth(t *testing.T) {
	clean, err := Load("../../scenarios/socialnet-mc.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unperturbed MC scenario failed:\n%s", rep.Summary)
	}

	sc, err := Load("../../scenarios/socialnet-mc.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc.PerturbGraphMC = true
	rep, err = sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("perturbed hop sketch passed:\n%s", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "FAIL graph_mc") {
		t.Fatalf("failure does not name graph_mc:\n%s", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "PASS graph_conservation holds") ||
		!strings.Contains(rep.Summary, "graph conservation PASS") {
		t.Fatalf("counter conservation should survive a sketch-only perturbation:\n%s", rep.Summary)
	}
}

// TestGraphLibraryScenariosPass runs the shipped DAG scenario library end
// to end — the same gate CI's dag-smoke job applies.
func TestGraphLibraryScenariosPass(t *testing.T) {
	for _, name := range []string{"socialnet-dag.yaml", "socialnet-mc.yaml"} {
		t.Run(name, func(t *testing.T) {
			sc, err := Load(filepath.Join("../../scenarios", name))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("library scenario failed (%d):\n%s", rep.Failed, rep.Summary)
			}
		})
	}
}

// FuzzGraphParse fuzzes the graph-block front end: whatever the input, the
// parser must never panic, and any accepted graph must have compiled to a
// spec that passes its own structural validation. The seed corpus covers
// inline and file-referenced graphs plus each rejection class (cycles,
// dangling refs, fan-out bounds, bad modes, group binding).
func FuzzGraphParse(f *testing.F) {
	seeds := []string{
		dagYAML,
		// File-referenced graph (resolved against testdata/).
		`name: filed
duration_ms: 40
step_ms: 10
graph:
  file: socialnet.graph.yaml
fleet:
  - group: fe
    count: 1
  - group: mid
    count: 1
  - group: leaf
    count: 1
`,
		strings.Replace(dagYAML, "- tier: leafy\n      group: back",
			"- tier: leafy\n      group: back\n      calls:\n        - tier: fe", 1), // cycle
		strings.Replace(dagYAML, "tier: leafy\n          mode", "tier: ghost\n          mode", 1), // dangling
		strings.Replace(dagYAML, "fanout: 2", "fanout: 0", 1),
		strings.Replace(dagYAML, "fanout: 2", "fanout: 9999", 1),
		strings.Replace(dagYAML, "mode: parallel", "mode: diagonal", 1),
		strings.Replace(dagYAML, "      group: web", "      group: unknown", 1),
		strings.Replace(dagYAML, "root: fe", "root: 7", 1),
		"graph:\n  tiers:\n", // structurally empty
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := Parse([]byte(doc), false, "testdata")
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if sc.Graph == nil {
			return
		}
		spec := sc.Graph.Spec()
		if spec == nil {
			t.Fatal("accepted graph scenario has no compiled spec")
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted graph fails its own validation: %v", verr)
		}
	})
}
