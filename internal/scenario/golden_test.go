package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// bless regenerates the scenario golden summaries instead of diffing:
//
//	go test ./internal/scenario -run TestGolden -bless
var bless = flag.Bool("bless", false, "regenerate golden summaries instead of comparing")

const dagGoldenPath = "testdata/golden/socialnet-dag.summary.txt"

// TestGoldenSocialnetDAG pins the full rendered summary of the shipped
// socialnet-dag scenario byte for byte. The summary is a pure function of
// the scenario (no wall-clock, no map order), so any drift is a behaviour
// change in the DAG pipeline — the dispatcher, the join state machine, the
// sketches, or the renderer — and must be reviewed and re-blessed.
func TestGoldenSocialnetDAG(t *testing.T) {
	sc, err := Load("../../scenarios/socialnet-dag.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.RunShards(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("golden scenario failed its own assertions:\n%s", rep.Summary)
	}
	if *bless {
		if err := os.MkdirAll(filepath.Dir(dagGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dagGoldenPath, []byte(rep.Summary), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s (%d bytes)", dagGoldenPath, len(rep.Summary))
		return
	}
	want, err := os.ReadFile(dagGoldenPath)
	if err != nil {
		t.Fatalf("load golden summary (regenerate with -bless): %v", err)
	}
	if rep.Summary != string(want) {
		t.Fatalf("summary drifted from blessed golden:\n%s", firstDiffLine(string(want), rep.Summary))
	}

	// The artifact must be shard-invariant too: a golden blessed at one
	// worker count must match any other.
	for _, shards := range []int{2, 8} {
		got, err := quick(t, mustRead(t, "../../scenarios/socialnet-dag.yaml")).RunShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary != string(want) {
			t.Fatalf("golden diverged at shards=%d:\n%s", shards, firstDiffLine(string(want), got.Summary))
		}
	}
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// firstDiffLine renders the first line where two summaries diverge.
func firstDiffLine(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return "line " + itoa(i+1) + ":\n  blessed: " + w[i] + "\n  got:     " + g[i]
		}
	}
	return "length changed: blessed " + itoa(len(w)) + " lines, got " + itoa(len(g))
}
