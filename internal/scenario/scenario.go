package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/route"
	"hardharvest/internal/sim"
)

// Scenario is one parsed, semantically validated scenario document.
type Scenario struct {
	Name        string
	Description string
	Seed        uint64

	// Window shape: warmup + measurement in simulated milliseconds, and
	// the barrier cadence control actions are quantized to.
	WarmupMS   int
	DurationMS int
	StepMS     int

	Fleet      []Group
	Routing    *Routing    // nil = routerless (each server generates its own arrivals)
	Graph      *GraphBlock // nil = no request DAG (mutually exclusive with Routing)
	Workload   []TimelineEntry
	Events     []EventEntry
	Assertions []Assertion

	// PerturbFleet corrupts the router's request ledger after the run
	// (Generated is incremented by one), proving the fleet-conservation
	// oracle can actually fail. Not part of the document format — it is set
	// by `hhsim run -perturb fleet-conservation` and tests only.
	PerturbFleet bool

	// PerturbGraphMC corrupts one tier's measured hop sketch after a graph
	// run, proving the Monte-Carlo cross-check (graph_mc) can actually
	// fail. Set by `hhsim run -perturb graph-mc` and tests only.
	PerturbGraphMC bool

	// Strict makes every server's always-on invariant checker panic on the
	// first violation with replay context instead of counting it. Not part
	// of the document format — set by `hhsim run -strict` (the chaos-smoke
	// CI soak) and tests.
	Strict bool

	baseDir string // resolves plan_file references
}

// Routing is the scenario's fleet-front-door block. When present, the
// workload is admitted at a router (internal/route) and dispatched to the
// fleet over fixed-delay network edges; timeline entries then reconfigure
// the router's generators instead of each server's. Unset fields take the
// route.DefaultConfig values.
type Routing struct {
	Policy          string  // round_robin | least_outstanding | weighted
	NetworkDelayUS  float64 // per-edge network delay (microseconds)
	ProbeIntervalMS float64 // health-check cadence (milliseconds)
	UnhealthyAfter  int     // consecutive probe failures before unhealthy
	HealthyAfter    int     // consecutive probe successes before healthy
	EjectAfter      int     // consecutive sheds tripping the breaker (0 = off)
	EjectBackoffMS  float64 // first re-admission backoff (milliseconds)
	MaxFailovers    int     // per-request failover budget

	line int
	n    *node
}

// fieldLine reports the source line a routing field appeared on.
func (r *Routing) fieldLine(name string) int {
	if r.n != nil {
		if l, ok := r.n.keyLines[name]; ok {
			return l
		}
	}
	return r.line
}

// defaultRouting mirrors route.DefaultConfig in scenario units.
func defaultRouting() Routing {
	d := route.DefaultConfig()
	return Routing{
		Policy:          d.Policy.String(),
		NetworkDelayUS:  float64(d.NetDelay) / float64(sim.Microsecond),
		ProbeIntervalMS: float64(d.ProbeInterval) / float64(sim.Millisecond),
		UnhealthyAfter:  d.UnhealthyAfter,
		HealthyAfter:    d.HealthyAfter,
		EjectAfter:      d.EjectAfter,
		EjectBackoffMS:  float64(d.EjectBackoff) / float64(sim.Millisecond),
		MaxFailovers:    d.MaxFailovers,
	}
}

// toConfig converts the block to a route.Config. Callers run it only after
// validation, so the conversion cannot fail there.
func (r *Routing) toConfig() (route.Config, error) {
	pol, err := route.ParsePolicy(r.Policy)
	if err != nil {
		return route.Config{}, err
	}
	return route.Config{
		Policy:         pol,
		NetDelay:       sim.Duration(r.NetworkDelayUS * float64(sim.Microsecond)),
		ProbeInterval:  sim.Duration(r.ProbeIntervalMS * float64(sim.Millisecond)),
		UnhealthyAfter: r.UnhealthyAfter,
		HealthyAfter:   r.HealthyAfter,
		EjectAfter:     r.EjectAfter,
		EjectBackoff:   sim.Duration(r.EjectBackoffMS * float64(sim.Millisecond)),
		MaxFailovers:   r.MaxFailovers,
	}, nil
}

// Group is one homogeneous slice of the fleet.
type Group struct {
	Name     string
	Count    int
	System   string // cluster.SystemKind name (the harvest policy)
	Workload string // batch workload run by each server's Harvest VM

	// Server shape; zero values take the Table 1 defaults (36/8/4/4).
	Cores           int
	PrimaryVMs      int
	CoresPerPrimary int
	HarvestCores    int

	// Generation names a hardware generation from the generation table;
	// ExecFactor sets the CPU-speed factor directly. Exactly one may be
	// set; both zero means factor 1.0 (the Table 1 baseline).
	Generation string
	ExecFactor float64

	// LoadScale overrides the group's offered-load multiplier (0 = the
	// Table 1 default).
	LoadScale float64

	line int
	n    *node // retained for exact field-line diagnostics in validate
}

// fieldLine reports the source line a group field appeared on (the group's
// own line when the field was defaulted).
func (g *Group) fieldLine(name string) int {
	if g.n != nil {
		if l, ok := g.n.keyLines[name]; ok {
			return l
		}
	}
	return g.line
}

// generations maps hardware-generation names to CPU-burst execution-time
// factors relative to the Table 1 baseline: older generations run the same
// work slower, newer ones faster. Heterogeneous fleets mix them.
var generations = map[string]float64{
	"gen1": 1.15,
	"gen2": 1.00,
	"gen3": 0.88,
}

// generationNames lists the valid generation names, sorted, for messages.
func generationNames() string {
	names := make([]string, 0, len(generations))
	for n := range generations {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// effExecFactor reports the group's CPU-speed factor.
func (g *Group) effExecFactor() float64 {
	if g.Generation != "" {
		return generations[g.Generation]
	}
	if g.ExecFactor > 0 {
		return g.ExecFactor
	}
	return 1.0
}

// Timeline entry kinds (the workload section).
const (
	TlIntensity   = "intensity"    // set the offered-load multiplier
	TlFlashCrowd  = "flash_crowd"  // multiply the baseline for a window
	TlVMIntensity = "vm_intensity" // profile switch: scale one Primary VM
)

// TimelineEntry is one workload-timeline step.
type TimelineEntry struct {
	AtMS       float64
	Kind       string
	Intensity  float64 // intensity, vm_intensity
	Factor     float64 // flash_crowd
	DurationMS float64 // flash_crowd
	VM         int     // vm_intensity
	Target     Target

	line   int
	atLine int
}

// Event kinds (the events section).
const (
	EvFaults         = "faults"           // inject a fault plan
	EvResilience     = "resilience"       // toggle timeout/retry/hedge/shed
	EvHarvestOnBlock = "harvest_on_block" // toggle harvest-on-block
	EvDrain          = "drain"            // graceful drain (requires routing)
)

// EventEntry is one scripted control event.
type EventEntry struct {
	AtMS       float64
	Kind       string
	On         bool         // resilience, harvest_on_block
	Plan       *faults.Plan // faults: inline plan
	PlanFile   string       // faults: JSON plan file (relative to the scenario)
	DeadlineMS float64      // drain: in-flight completion deadline
	Target     Target

	line   int
	atLine int
}

// Target selects the servers an entry applies to: a fleet group by name, a
// single server by fleet index, or (neither set) every server.
type Target struct {
	Group  string
	Server int // fleet index; -1 = unset
	line   int
}

// All reports whether the target selects the whole fleet.
func (t Target) All() bool { return t.Group == "" && t.Server < 0 }

func (t Target) String() string {
	switch {
	case t.Group != "":
		return "group " + t.Group
	case t.Server >= 0:
		return "server " + strconv.Itoa(t.Server)
	default:
		return "all"
	}
}

// Assertion is one end-of-run check. Numeric metrics need at least one
// bound; oracle check metrics (flow_balance, littles_law, graph_mc) take
// none. Tier metrics (tier_*) select a DAG tier by name instead of a
// group/server target.
type Assertion struct {
	Metric string
	Min    *float64
	Max    *float64
	Target Target
	Tier   string // tier_* metrics: the DAG tier evaluated (graph mode)

	line       int
	metricLine int
	tierLine   int
}

// errAt builds a positioned decode/validation error. The "line N:" prefix
// is rewritten to "file:N:" by Load, so every diagnostic reaches the user
// as "scenario.yaml:12: events[0].kind: ...".
func errAt(line int, path, format string, args ...any) error {
	return fmt.Errorf("line %d: %s: %s", line, path, fmt.Sprintf(format, args...))
}

// prefixFile rewrites an internal "line N: ..." error into "file:N: ...".
func prefixFile(path string, err error) error {
	s := err.Error()
	if rest, ok := strings.CutPrefix(s, "line "); ok {
		return fmt.Errorf("%s:%s", path, rest)
	}
	return fmt.Errorf("%s: %s", path, s)
}

// Load reads, parses, and semantically validates a scenario file. Files
// ending in .json parse as JSON; everything else as the YAML subset.
// Returned errors are positioned: "path:line: field: message".
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data, strings.EqualFold(filepath.Ext(path), ".json"), filepath.Dir(path))
	if err != nil {
		return nil, prefixFile(path, err)
	}
	return sc, nil
}

// Parse decodes and validates a scenario document. asJSON selects the
// front end; baseDir resolves plan_file references (empty = CWD).
func Parse(data []byte, asJSON bool, baseDir string) (*Scenario, error) {
	var root *node
	var err error
	if asJSON {
		root, err = parseJSONTree(data)
	} else {
		root, err = parseYAMLTree(data)
	}
	if err != nil {
		return nil, err
	}
	sc := &Scenario{baseDir: baseDir}
	if err := sc.decode(root); err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ---- generic decode helpers ----

func wantKind(n *node, path string, k nodeKind) error {
	if n.kind != k {
		return errAt(n.line, path, "want a %s, got a %s", k, n.kind)
	}
	return nil
}

func decStr(n *node, path string) (string, error) {
	if n.kind != nScalar {
		return "", errAt(n.line, path, "want a string, got a %s", n.kind)
	}
	return n.scalar, nil
}

func decF64(n *node, path string) (float64, error) {
	if n.kind != nScalar || n.quoted {
		return 0, errAt(n.line, path, "want a number, got a %s", describeScalar(n))
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, errAt(n.line, path, "want a number, got %q", n.scalar)
	}
	return v, nil
}

func decInt(n *node, path string) (int, error) {
	if n.kind != nScalar || n.quoted {
		return 0, errAt(n.line, path, "want an integer, got a %s", describeScalar(n))
	}
	v, err := strconv.Atoi(n.scalar)
	if err != nil {
		return 0, errAt(n.line, path, "want an integer, got %q", n.scalar)
	}
	return v, nil
}

func decU64(n *node, path string) (uint64, error) {
	if n.kind != nScalar || n.quoted {
		return 0, errAt(n.line, path, "want a non-negative integer, got a %s", describeScalar(n))
	}
	v, err := strconv.ParseUint(n.scalar, 10, 64)
	if err != nil {
		return 0, errAt(n.line, path, "want a non-negative integer, got %q", n.scalar)
	}
	return v, nil
}

func decBool(n *node, path string) (bool, error) {
	if n.kind == nScalar && !n.quoted {
		switch n.scalar {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
	}
	return false, errAt(n.line, path, "want true or false, got a %s", describeScalar(n))
}

func describeScalar(n *node) string {
	if n.kind != nScalar {
		return n.kind.String()
	}
	if n.quoted {
		return fmt.Sprintf("string %q", n.scalar)
	}
	if n.scalar == "" {
		return "null"
	}
	return fmt.Sprintf("scalar %q", n.scalar)
}

// fieldSet drives one object's decode: document-order iteration with
// unknown-field rejection naming the valid fields.
type fieldSet map[string]func(v *node, path string) error

func decodeObj(n *node, path string, fields fieldSet) error {
	if err := wantKind(n, path, nMap); err != nil {
		return err
	}
	for _, k := range n.keys {
		kp := path + "." + k
		if path == "" {
			kp = k
		}
		fn, ok := fields[k]
		if !ok {
			names := make([]string, 0, len(fields))
			for f := range fields {
				names = append(names, f)
			}
			sort.Strings(names)
			return errAt(n.keyLine(k), kp, "unknown field (want one of %s)", strings.Join(names, ", "))
		}
		if err := fn(n.children[k], kp); err != nil {
			return err
		}
	}
	return nil
}

func decodeList(n *node, path string, item func(v *node, path string, i int) error) error {
	if err := wantKind(n, path, nList); err != nil {
		return err
	}
	for i, it := range n.items {
		if err := item(it, fmt.Sprintf("%s[%d]", path, i), i); err != nil {
			return err
		}
	}
	return nil
}

// ---- scenario decode ----

func (sc *Scenario) decode(root *node) error {
	sc.StepMS = 10
	sc.Seed = 1
	return decodeObj(root, "", fieldSet{
		"name":        func(v *node, p string) (err error) { sc.Name, err = decStr(v, p); return },
		"description": func(v *node, p string) (err error) { sc.Description, err = decStr(v, p); return },
		"seed":        func(v *node, p string) (err error) { sc.Seed, err = decU64(v, p); return },
		"warmup_ms":   func(v *node, p string) (err error) { sc.WarmupMS, err = decInt(v, p); return },
		"duration_ms": func(v *node, p string) (err error) { sc.DurationMS, err = decInt(v, p); return },
		"step_ms":     func(v *node, p string) (err error) { sc.StepMS, err = decInt(v, p); return },
		"fleet": func(v *node, p string) error {
			return decodeList(v, p, sc.decodeGroup)
		},
		"routing": func(v *node, p string) error {
			return sc.decodeRouting(v, p)
		},
		"graph": func(v *node, p string) error {
			return sc.decodeGraph(v, p)
		},
		"workload": func(v *node, p string) error {
			return decodeList(v, p, sc.decodeTimeline)
		},
		"events": func(v *node, p string) error {
			return decodeList(v, p, sc.decodeEvent)
		},
		"assertions": func(v *node, p string) error {
			return decodeList(v, p, sc.decodeAssertion)
		},
	})
}

func (sc *Scenario) decodeGroup(v *node, path string, _ int) error {
	g := Group{line: v.line, n: v, Count: 1}
	def := cluster.DefaultConfig()
	g.Cores = def.CoresPerServer
	g.PrimaryVMs = def.PrimaryVMs
	g.CoresPerPrimary = def.CoresPerPrimary
	g.HarvestCores = def.HarvestOwnCores
	g.System = cluster.HardHarvestBlock.String()
	g.Workload = "BFS"
	err := decodeObj(v, path, fieldSet{
		"group":             func(v *node, p string) (err error) { g.Name, err = decStr(v, p); return },
		"count":             func(v *node, p string) (err error) { g.Count, err = decInt(v, p); return },
		"system":            func(v *node, p string) (err error) { g.System, err = decStr(v, p); return },
		"workload":          func(v *node, p string) (err error) { g.Workload, err = decStr(v, p); return },
		"cores":             func(v *node, p string) (err error) { g.Cores, err = decInt(v, p); return },
		"primary_vms":       func(v *node, p string) (err error) { g.PrimaryVMs, err = decInt(v, p); return },
		"cores_per_primary": func(v *node, p string) (err error) { g.CoresPerPrimary, err = decInt(v, p); return },
		"harvest_cores":     func(v *node, p string) (err error) { g.HarvestCores, err = decInt(v, p); return },
		"generation":        func(v *node, p string) (err error) { g.Generation, err = decStr(v, p); return },
		"exec_factor":       func(v *node, p string) (err error) { g.ExecFactor, err = decF64(v, p); return },
		"load_scale":        func(v *node, p string) (err error) { g.LoadScale, err = decF64(v, p); return },
	})
	if err != nil {
		return err
	}
	sc.Fleet = append(sc.Fleet, g)
	return nil
}

func (sc *Scenario) decodeRouting(v *node, path string) error {
	r := defaultRouting()
	r.line, r.n = v.line, v
	err := decodeObj(v, path, fieldSet{
		"policy":            func(v *node, p string) (err error) { r.Policy, err = decStr(v, p); return },
		"network_delay_us":  func(v *node, p string) (err error) { r.NetworkDelayUS, err = decF64(v, p); return },
		"probe_interval_ms": func(v *node, p string) (err error) { r.ProbeIntervalMS, err = decF64(v, p); return },
		"unhealthy_after":   func(v *node, p string) (err error) { r.UnhealthyAfter, err = decInt(v, p); return },
		"healthy_after":     func(v *node, p string) (err error) { r.HealthyAfter, err = decInt(v, p); return },
		"eject_after":       func(v *node, p string) (err error) { r.EjectAfter, err = decInt(v, p); return },
		"eject_backoff_ms":  func(v *node, p string) (err error) { r.EjectBackoffMS, err = decF64(v, p); return },
		"max_failovers":     func(v *node, p string) (err error) { r.MaxFailovers, err = decInt(v, p); return },
	})
	if err != nil {
		return err
	}
	sc.Routing = &r
	return nil
}

// decodeTarget installs the shared group/server selector fields into a
// fieldSet.
func decodeTarget(t *Target, fields fieldSet) fieldSet {
	t.Server = -1
	fields["group"] = func(v *node, p string) (err error) {
		t.line = v.line
		t.Group, err = decStr(v, p)
		return
	}
	fields["server"] = func(v *node, p string) (err error) {
		t.line = v.line
		t.Server, err = decInt(v, p)
		return
	}
	return fields
}

func (sc *Scenario) decodeTimeline(v *node, path string, _ int) error {
	e := TimelineEntry{line: v.line, atLine: v.line}
	err := decodeObj(v, path, decodeTarget(&e.Target, fieldSet{
		"at_ms": func(v *node, p string) (err error) {
			e.atLine = v.line
			e.AtMS, err = decF64(v, p)
			return
		},
		"kind":        func(v *node, p string) (err error) { e.Kind, err = decStr(v, p); return },
		"intensity":   func(v *node, p string) (err error) { e.Intensity, err = decF64(v, p); return },
		"factor":      func(v *node, p string) (err error) { e.Factor, err = decF64(v, p); return },
		"duration_ms": func(v *node, p string) (err error) { e.DurationMS, err = decF64(v, p); return },
		"vm":          func(v *node, p string) (err error) { e.VM, err = decInt(v, p); return },
	}))
	if err != nil {
		return err
	}
	sc.Workload = append(sc.Workload, e)
	return nil
}

func (sc *Scenario) decodeEvent(v *node, path string, _ int) error {
	e := EventEntry{line: v.line, atLine: v.line}
	err := decodeObj(v, path, decodeTarget(&e.Target, fieldSet{
		"at_ms": func(v *node, p string) (err error) {
			e.atLine = v.line
			e.AtMS, err = decF64(v, p)
			return
		},
		"kind": func(v *node, p string) (err error) { e.Kind, err = decStr(v, p); return },
		"on":   func(v *node, p string) (err error) { e.On, err = decBool(v, p); return },
		"plan": func(v *node, p string) error {
			plan, err := decodePlan(v, p)
			if err != nil {
				return err
			}
			e.Plan = plan
			return nil
		},
		"plan_file":   func(v *node, p string) (err error) { e.PlanFile, err = decStr(v, p); return },
		"deadline_ms": func(v *node, p string) (err error) { e.DeadlineMS, err = decF64(v, p); return },
	}))
	if err != nil {
		return err
	}
	sc.Events = append(sc.Events, e)
	return nil
}

// decodePlan converts an inline plan node back to JSON and funnels it
// through faults.Parse, so plan validation (field paths, rate bounds,
// scripted-event checks) lives in exactly one place.
func decodePlan(v *node, path string) (*faults.Plan, error) {
	if err := wantKind(v, path, nMap); err != nil {
		return nil, err
	}
	data, err := json.Marshal(v.toAny())
	if err != nil {
		return nil, errAt(v.line, path, "%v", err)
	}
	plan, err := faults.Parse(data)
	if err != nil {
		return nil, errAt(v.line, path, "%v", err)
	}
	return plan, nil
}

func (sc *Scenario) decodeAssertion(v *node, path string, _ int) error {
	a := Assertion{line: v.line, metricLine: v.line}
	err := decodeObj(v, path, decodeTarget(&a.Target, fieldSet{
		"metric": func(v *node, p string) (err error) {
			a.metricLine = v.line
			a.Metric, err = decStr(v, p)
			return
		},
		"min": func(v *node, p string) error {
			f, err := decF64(v, p)
			if err != nil {
				return err
			}
			a.Min = &f
			return nil
		},
		"max": func(v *node, p string) error {
			f, err := decF64(v, p)
			if err != nil {
				return err
			}
			a.Max = &f
			return nil
		},
		"tier": func(v *node, p string) (err error) {
			a.tierLine = v.line
			a.Tier, err = decStr(v, p)
			return
		},
	}))
	if err != nil {
		return err
	}
	sc.Assertions = append(sc.Assertions, a)
	return nil
}

// ---- semantic validation ----

// maxFleetServers bounds fleet expansion so a malformed count cannot
// allocate an unbounded simulation. Thousand-server fleets are in scope:
// the sharded runner advances servers in parallel and their latency
// recorders run in bounded sketch mode, so memory stays flat per server.
const maxFleetServers = 4096

// Servers reports the expanded fleet size.
func (sc *Scenario) Servers() int {
	n := 0
	for i := range sc.Fleet {
		n += sc.Fleet[i].Count
	}
	return n
}

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return errAt(1, "name", "required (a scenario must be named)")
	}
	if sc.DurationMS <= 0 {
		return errAt(1, "duration_ms", "required and must be positive, got %d", sc.DurationMS)
	}
	if sc.WarmupMS < 0 {
		return errAt(1, "warmup_ms", "must be non-negative, got %d", sc.WarmupMS)
	}
	if sc.StepMS <= 0 {
		return errAt(1, "step_ms", "must be positive, got %d", sc.StepMS)
	}
	if sc.StepMS > sc.DurationMS {
		return errAt(1, "step_ms", "barrier step %dms exceeds duration_ms %d", sc.StepMS, sc.DurationMS)
	}
	if len(sc.Fleet) == 0 {
		return errAt(1, "fleet", "required: define at least one server group")
	}
	seen := map[string]bool{}
	for i := range sc.Fleet {
		if err := sc.validateGroup(&sc.Fleet[i], fmt.Sprintf("fleet[%d]", i), seen); err != nil {
			return err
		}
	}
	if n := sc.Servers(); n > maxFleetServers {
		return errAt(sc.Fleet[0].line, "fleet", "expands to %d servers (max %d)", n, maxFleetServers)
	}
	if err := sc.validateRouting(); err != nil {
		return err
	}
	if err := sc.validateGraph(); err != nil {
		return err
	}
	for i := range sc.Workload {
		if err := sc.validateTimeline(&sc.Workload[i], fmt.Sprintf("workload[%d]", i)); err != nil {
			return err
		}
	}
	for i := range sc.Events {
		if err := sc.validateEvent(&sc.Events[i], fmt.Sprintf("events[%d]", i)); err != nil {
			return err
		}
	}
	for i := range sc.Assertions {
		if err := sc.validateAssertion(&sc.Assertions[i], fmt.Sprintf("assertions[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

func (sc *Scenario) validateGroup(g *Group, path string, seen map[string]bool) error {
	if g.Name == "" {
		return errAt(g.line, path+".group", "required (groups are targeted by name)")
	}
	if seen[g.Name] {
		return errAt(g.line, path+".group", "duplicate group name %q", g.Name)
	}
	seen[g.Name] = true
	if g.Count < 1 {
		return errAt(g.line, path+".count", "must be >= 1, got %d", g.Count)
	}
	if _, err := parseSystem(g.System); err != nil {
		return errAt(g.fieldLine("system"), path+".system", "%v", err)
	}
	if _, err := batch.WorkloadByName(g.Workload); err != nil {
		return errAt(g.fieldLine("workload"), path+".workload", "%v", err)
	}
	if g.Cores < 1 || g.PrimaryVMs < 1 || g.CoresPerPrimary < 1 || g.HarvestCores < 0 {
		return errAt(g.line, path, "server shape fields must be positive "+
			"(cores=%d primary_vms=%d cores_per_primary=%d harvest_cores=%d)",
			g.Cores, g.PrimaryVMs, g.CoresPerPrimary, g.HarvestCores)
	}
	if need := g.PrimaryVMs*g.CoresPerPrimary + g.HarvestCores; need > g.Cores {
		return errAt(g.fieldLine("cores"), path+".cores", "%d primary_vms x %d cores + %d harvest cores = %d exceeds cores=%d",
			g.PrimaryVMs, g.CoresPerPrimary, g.HarvestCores, need, g.Cores)
	}
	if g.Generation != "" {
		if _, ok := generations[g.Generation]; !ok {
			return errAt(g.fieldLine("generation"), path+".generation", "unknown generation %q (want one of %s)",
				g.Generation, generationNames())
		}
		if g.ExecFactor != 0 {
			return errAt(g.line, path+".exec_factor", "generation and exec_factor are mutually exclusive")
		}
	}
	if g.ExecFactor < 0 || g.ExecFactor > 10 {
		return errAt(g.line, path+".exec_factor", "must be in (0, 10], got %g", g.ExecFactor)
	}
	if g.LoadScale < 0 {
		return errAt(g.line, path+".load_scale", "must be positive, got %g", g.LoadScale)
	}
	return nil
}

// validateRouting checks the routing block and its fleet preconditions:
// the front door replicates one generator set per (server, primary VM), so
// every group must agree on primary_vms.
func (sc *Scenario) validateRouting() error {
	r := sc.Routing
	if r == nil {
		return nil
	}
	if _, err := route.ParsePolicy(r.Policy); err != nil {
		return errAt(r.fieldLine("policy"), "routing.policy", "%v", err)
	}
	cfg, _ := r.toConfig()
	if err := cfg.Validate(); err != nil {
		// route.Config errors already lead with the routing.<field> path.
		return fmt.Errorf("line %d: %v", r.line, err)
	}
	want := sc.Fleet[0].PrimaryVMs
	for i := range sc.Fleet {
		if g := &sc.Fleet[i]; g.PrimaryVMs != want {
			return errAt(g.fieldLine("primary_vms"), fmt.Sprintf("fleet[%d].primary_vms", i),
				"routing requires a uniform primary_vms across groups (group %q has %d, group %q has %d)",
				g.Name, g.PrimaryVMs, sc.Fleet[0].Name, want)
		}
	}
	return nil
}

// lastBarrierMS is the latest barrier a control action may land on: the
// run's final in-window barrier. An at_ms that quantizes past it could
// never take effect, so it is rejected at validation time rather than
// silently dropped at run time.
func (sc *Scenario) lastBarrierMS() float64 {
	return float64(sc.WarmupMS + sc.DurationMS - sc.StepMS)
}

// checkAt validates a timestamp and reports the barrier it lands on.
func (sc *Scenario) checkAt(atMS float64, line int, path string) error {
	if atMS < 0 || math.IsNaN(atMS) {
		return errAt(line, path, "must be non-negative, got %g", atMS)
	}
	step := float64(sc.StepMS)
	barrier := math.Ceil(atMS/step) * step
	if barrier > sc.lastBarrierMS() {
		return errAt(line, path, "%gms lands on barrier %gms, past the last in-run barrier "+
			"(warmup_ms+duration_ms-step_ms = %gms)", atMS, barrier, sc.lastBarrierMS())
	}
	return nil
}

func (sc *Scenario) validateTarget(t *Target, path string) error {
	if t.Group != "" && t.Server >= 0 {
		return errAt(t.line, path, "group and server are mutually exclusive")
	}
	if t.Group != "" {
		for i := range sc.Fleet {
			if sc.Fleet[i].Name == t.Group {
				return nil
			}
		}
		return errAt(t.line, path+".group", "unknown fleet group %q", t.Group)
	}
	if t.Server >= sc.Servers() {
		return errAt(t.line, path+".server", "server %d out of range (fleet has %d servers)",
			t.Server, sc.Servers())
	}
	return nil
}

// targetedGroups yields the fleet groups a target selects.
func (sc *Scenario) targetedGroups(t Target) []*Group {
	var out []*Group
	idx := 0
	for i := range sc.Fleet {
		g := &sc.Fleet[i]
		switch {
		case t.Group != "":
			if g.Name == t.Group {
				out = append(out, g)
			}
		case t.Server >= 0:
			if t.Server >= idx && t.Server < idx+g.Count {
				out = append(out, g)
			}
		default:
			out = append(out, g)
		}
		idx += g.Count
	}
	return out
}

func (sc *Scenario) validateTimeline(e *TimelineEntry, path string) error {
	if err := sc.checkAt(e.AtMS, e.atLine, path+".at_ms"); err != nil {
		return err
	}
	if err := sc.validateTarget(&e.Target, path); err != nil {
		return err
	}
	// In graph mode the dispatcher owns the generators, replicated only
	// for the root tier's servers: an entry that selects no root-tier
	// server could never take effect, and per-VM switches have no meaning
	// (the DAG pins each tier to one VM).
	if sc.Graph != nil && sc.Graph.spec != nil {
		if e.Kind == TlVMIntensity {
			return errAt(e.line, path+".kind", "%s does not apply in graph mode (each tier is pinned to one VM)", TlVMIntensity)
		}
		hit := false
		for _, g := range sc.targetedGroups(e.Target) {
			if g.Name == sc.rootGroup() {
				hit = true
			}
		}
		if !hit {
			return errAt(e.line, path, "selects no root-tier server (graph workload applies to root group %q generators)",
				sc.rootGroup())
		}
	}
	switch e.Kind {
	case TlIntensity:
		if e.Intensity <= 0 {
			return errAt(e.line, path+".intensity", "must be positive, got %g", e.Intensity)
		}
		if e.Factor != 0 || e.DurationMS != 0 {
			return errAt(e.line, path, "factor/duration_ms only apply to kind %q", TlFlashCrowd)
		}
	case TlFlashCrowd:
		if e.Factor <= 0 {
			return errAt(e.line, path+".factor", "must be positive, got %g", e.Factor)
		}
		if e.DurationMS <= 0 {
			return errAt(e.line, path+".duration_ms", "must be positive, got %g", e.DurationMS)
		}
		if e.Intensity != 0 {
			return errAt(e.line, path, "intensity only applies to kinds %q and %q", TlIntensity, TlVMIntensity)
		}
		if err := sc.checkAt(e.AtMS+e.DurationMS, e.atLine, path+".duration_ms"); err != nil {
			return err
		}
	case TlVMIntensity:
		if e.Intensity <= 0 {
			return errAt(e.line, path+".intensity", "must be positive, got %g", e.Intensity)
		}
		if e.VM < 0 {
			return errAt(e.line, path+".vm", "must be non-negative, got %d", e.VM)
		}
		for _, g := range sc.targetedGroups(e.Target) {
			if e.VM >= g.PrimaryVMs {
				return errAt(e.line, path+".vm", "vm %d out of range for group %q (%d primary VMs)",
					e.VM, g.Name, g.PrimaryVMs)
			}
		}
	case "":
		return errAt(e.line, path+".kind", "required (one of %s, %s, %s)", TlIntensity, TlFlashCrowd, TlVMIntensity)
	default:
		return errAt(e.line, path+".kind", "unknown timeline kind %q (want one of %s, %s, %s)",
			e.Kind, TlIntensity, TlFlashCrowd, TlVMIntensity)
	}
	return nil
}

func (sc *Scenario) validateEvent(e *EventEntry, path string) error {
	if err := sc.checkAt(e.AtMS, e.atLine, path+".at_ms"); err != nil {
		return err
	}
	if err := sc.validateTarget(&e.Target, path); err != nil {
		return err
	}
	switch e.Kind {
	case EvFaults:
		if (e.Plan == nil) == (e.PlanFile == "") {
			return errAt(e.line, path, "kind %q needs exactly one of plan or plan_file", EvFaults)
		}
		if e.PlanFile != "" {
			plan, err := faults.Load(filepath.Join(sc.baseDir, e.PlanFile))
			if err != nil {
				return errAt(e.line, path+".plan_file", "%v", err)
			}
			e.Plan = plan
		}
	case EvResilience, EvHarvestOnBlock:
		if e.Plan != nil || e.PlanFile != "" {
			return errAt(e.line, path, "plan/plan_file only apply to kind %q", EvFaults)
		}
	case EvDrain:
		if sc.Routing == nil {
			return errAt(e.line, path, "kind %q requires a routing block (drain is a front-door operation)", EvDrain)
		}
		if e.Plan != nil || e.PlanFile != "" {
			return errAt(e.line, path, "plan/plan_file only apply to kind %q", EvFaults)
		}
		if e.DeadlineMS <= 0 {
			return errAt(e.line, path+".deadline_ms", "must be positive, got %g", e.DeadlineMS)
		}
	case "":
		return errAt(e.line, path+".kind", "required (one of %s, %s, %s, %s)",
			EvFaults, EvResilience, EvHarvestOnBlock, EvDrain)
	default:
		return errAt(e.line, path+".kind", "unknown event kind %q (want one of %s, %s, %s, %s)",
			e.Kind, EvFaults, EvResilience, EvHarvestOnBlock, EvDrain)
	}
	if e.Kind != EvDrain && e.DeadlineMS != 0 {
		return errAt(e.line, path, "deadline_ms only applies to kind %q", EvDrain)
	}
	return nil
}

func (sc *Scenario) validateAssertion(a *Assertion, path string) error {
	if err := sc.validateTarget(&a.Target, path); err != nil {
		return err
	}
	if a.Metric == "" {
		return errAt(a.line, path+".metric", "required (one of %s)", metricNames())
	}
	m, ok := metricsByName[a.Metric]
	if !ok {
		return errAt(a.metricLine, path+".metric", "unknown metric %q (want one of %s)",
			a.Metric, metricNames())
	}
	if m.fleet() {
		if sc.Routing == nil {
			return errAt(a.metricLine, path+".metric", "fleet metric %q requires a routing block", a.Metric)
		}
		if !a.Target.All() {
			return errAt(a.line, path, "fleet metric %q evaluates at the router and takes no group/server target", a.Metric)
		}
	}
	if m.graph() || m.tier() {
		if sc.Graph == nil {
			return errAt(a.metricLine, path+".metric", "graph metric %q requires a graph block", a.Metric)
		}
		if !a.Target.All() {
			return errAt(a.line, path, "graph metric %q evaluates at the DAG dispatcher and takes no group/server target", a.Metric)
		}
	}
	if m.tier() {
		if a.Tier == "" {
			return errAt(a.line, path+".tier", "required: tier metric %q names the DAG tier it evaluates", a.Metric)
		}
		if sc.Graph.spec.TierByName(a.Tier) < 0 {
			return errAt(a.tierLine, path+".tier", "unknown tier %q", a.Tier)
		}
	} else if a.Tier != "" {
		return errAt(a.tierLine, path+".tier", "tier only applies to tier_* metrics, not %q", a.Metric)
	}
	if m.check != nil || m.fleetCheck != nil || m.graphCheck != nil {
		if a.Min != nil || a.Max != nil {
			return errAt(a.line, path, "oracle check %q takes no min/max bounds", a.Metric)
		}
		return nil
	}
	if a.Min == nil && a.Max == nil {
		return errAt(a.line, path, "metric %q needs a min or max bound", a.Metric)
	}
	if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
		return errAt(a.line, path, "min %g exceeds max %g", *a.Min, *a.Max)
	}
	return nil
}

// parseSystem resolves a cluster.SystemKind by its printed name.
func parseSystem(name string) (cluster.SystemKind, error) {
	for _, k := range cluster.Systems() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown system %q (want one of %v)", name, cluster.Systems())
}
