package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hardharvest/internal/cluster"
)

// TestValidateSemanticsTable sweeps the semantic-validation branches that
// the file-level diagnostics test does not reach, using minimal inline
// documents (errors carry the internal "line N:" prefix here — Load is
// what rewrites it to "file:N:").
func TestValidateSemanticsTable(t *testing.T) {
	const base = "name: t\nduration_ms: 40\nfleet:\n  - group: g\n"
	for _, tc := range []struct{ name, doc, want string }{
		{"duration missing", "name: t\nfleet:\n  - group: g\n",
			"duration_ms: required"},
		{"warmup negative", "name: t\nduration_ms: 40\nwarmup_ms: -1\nfleet:\n  - group: g\n",
			"warmup_ms: must be non-negative"},
		{"step zero", "name: t\nduration_ms: 40\nstep_ms: 0\nfleet:\n  - group: g\n",
			"step_ms: must be positive"},
		{"fleet missing", "name: t\nduration_ms: 40\n",
			"fleet: required"},
		{"fleet too large", "name: t\nduration_ms: 40\nfleet:\n  - group: g\n    count: 5000\n",
			"expands to 5000 servers (max 4096)"},
		{"group unnamed", "name: t\nduration_ms: 40\nfleet:\n  - count: 1\n",
			"fleet[0].group: required"},
		{"count zero", base + "    count: 0\n",
			"fleet[0].count: must be >= 1"},
		{"cores zero", base + "    cores: 0\n",
			"server shape fields must be positive"},
		{"harvest cores negative", base + "    harvest_cores: -1\n",
			"server shape fields must be positive"},
		{"generation and exec_factor", base + "    generation: gen1\n    exec_factor: 1.1\n",
			"generation and exec_factor are mutually exclusive"},
		{"exec_factor out of range", base + "    exec_factor: 20\n",
			"exec_factor: must be in (0, 10]"},
		{"load_scale negative", base + "    load_scale: -1\n",
			"load_scale: must be positive"},
		{"intensity zero", base + "workload:\n  - kind: intensity\n    intensity: 0\n",
			"workload[0].intensity: must be positive"},
		{"factor on intensity kind", base + "workload:\n  - kind: intensity\n    intensity: 1\n    factor: 2\n",
			`factor/duration_ms only apply to kind "flash_crowd"`},
		{"flash factor zero", base + "workload:\n  - kind: flash_crowd\n    duration_ms: 10\n",
			"workload[0].factor: must be positive"},
		{"flash duration zero", base + "workload:\n  - kind: flash_crowd\n    factor: 2\n",
			"workload[0].duration_ms: must be positive"},
		{"intensity on flash kind", base + "workload:\n  - kind: flash_crowd\n    factor: 2\n    duration_ms: 10\n    intensity: 1\n",
			`intensity only applies to kinds "intensity" and "vm_intensity"`},
		{"vm intensity zero", base + "workload:\n  - kind: vm_intensity\n    vm: 0\n",
			"workload[0].intensity: must be positive"},
		{"vm negative", base + "workload:\n  - kind: vm_intensity\n    intensity: 1\n    vm: -2\n",
			"workload[0].vm: must be non-negative"},
		{"vm out of range", base + "workload:\n  - kind: vm_intensity\n    intensity: 1\n    vm: 12\n",
			`vm 12 out of range for group "g" (8 primary VMs)`},
		{"timeline kind missing", base + "workload:\n  - at_ms: 0\n",
			"workload[0].kind: required"},
		{"event kind missing", base + "events:\n  - at_ms: 0\n",
			"events[0].kind: required"},
		{"resilience with plan", base + "events:\n  - kind: resilience\n    on: true\n    plan: {\"events\": [{\"at_ms\": 0, \"kind\": \"crash\", \"duration_ms\": 5}]}\n",
			`plan/plan_file only apply to kind "faults"`},
		{"faults with plan and plan_file", base + "events:\n  - kind: faults\n    plan: {\"events\": [{\"at_ms\": 0, \"kind\": \"crash\", \"duration_ms\": 5}]}\n    plan_file: x.json\n",
			`kind "faults" needs exactly one of plan or plan_file`},
		{"plan_file unreadable", base + "events:\n  - kind: faults\n    plan_file: no-such-plan.json\n",
			"events[0].plan_file:"},
		{"plan not a map", base + "events:\n  - kind: faults\n    plan: [1, 2]\n",
			"events[0].plan: want a mapping, got a list"},
		{"assertion metric missing", base + "assertions:\n  - min: 1\n",
			"assertions[0].metric: required"},
		{"assertion min above max", base + "assertions:\n  - metric: completions\n    min: 5\n    max: 2\n",
			"min 5 exceeds max 2"},
		{"seed not unsigned", "name: t\nduration_ms: 40\nseed: -1\nfleet:\n  - group: g\n",
			`seed: want a non-negative integer, got "-1"`},
		{"events not a list", base + "events: 5\n",
			"events: want a list, got a scalar"},
		{"name not a string", "name:\n  - t\nduration_ms: 40\nfleet:\n  - group: g\n",
			"name: want a string, got a list"},
	} {
		_, err := Parse([]byte(tc.doc), false, "")
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestPlanFileEvent covers the plan_file success path: the referenced JSON
// plan is resolved relative to the scenario file and loaded at validation.
func TestPlanFileEvent(t *testing.T) {
	dir := t.TempDir()
	plan := `{"events": [{"at_ms": 0, "kind": "crash", "duration_ms": 5}]}`
	if err := os.WriteFile(filepath.Join(dir, "plan.json"), []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "name: t\nduration_ms: 40\nfleet:\n  - group: g\nevents:\n" +
		"  - kind: faults\n    plan_file: plan.json\n"
	sc, err := Parse([]byte(doc), false, dir)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Events[0].Plan == nil {
		t.Fatal("plan_file did not populate the plan")
	}
}

// TestLoadPaths covers Load's error path and its JSON front-end selection.
func TestLoadPaths(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.yaml")); err == nil ||
		!strings.Contains(err.Error(), "scenario:") {
		t.Errorf("missing file: %v", err)
	}
	dir := t.TempDir()
	doc := `{"name": "j", "duration_ms": 40, "fleet": [{"group": "g"}]}`
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(path)
	if err != nil {
		t.Fatalf("Load json: %v", err)
	}
	if sc.Name != "j" || sc.Servers() != 1 {
		t.Errorf("loaded scenario = %q/%d servers", sc.Name, sc.Servers())
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.HasPrefix(err.Error(), bad+":") {
		t.Errorf("json diagnostic not file-prefixed: %v", err)
	}
}

// TestTargetHelpers pins the target selector's rendering and matching.
func TestTargetHelpers(t *testing.T) {
	all := Target{Server: -1}
	if !all.All() || all.String() != "all" {
		t.Errorf("all target = %v/%q", all.All(), all.String())
	}
	if g := (Target{Group: "web", Server: -1}); g.All() || g.String() != "group web" {
		t.Errorf("group target = %q", g.String())
	}
	if s := (Target{Server: 3}); s.All() || s.String() != "server 3" {
		t.Errorf("server target = %q", s.String())
	}
}

// TestEvalAssertionCorners drives evalAssertion directly on fabricated
// results: min-bound binding extreme, worst-violation pick, and the
// nothing-selected failure.
func TestEvalAssertionCorners(t *testing.T) {
	runs := []*serverRun{
		{index: 0, group: "g", res: &cluster.ServerResult{Requests: 5}},
		{index: 1, group: "g", res: &cluster.ServerResult{Requests: 10}},
	}
	min := func(v float64) Assertion {
		return Assertion{Metric: "completions", Min: &v, Target: Target{Server: -1}}
	}
	r := evalAssertion(min(1), runs, nil, nil)
	if !r.OK || r.Detail != "server 0 [g] completions=5" {
		t.Errorf("min binding extreme = %v %q", r.OK, r.Detail)
	}
	r = evalAssertion(min(8), runs, nil, nil)
	if r.OK || r.Detail != "server 0 [g] completions=5" {
		t.Errorf("min violation = %v %q", r.OK, r.Detail)
	}
	r = evalAssertion(Assertion{Metric: "completions", Min: new(float64),
		Target: Target{Group: "nope", Server: -1}}, runs, nil, nil)
	if r.OK || r.Detail != "no server matched the target" {
		t.Errorf("empty selection = %v %q", r.OK, r.Detail)
	}
	if b := min(2); b.bounds() != ">= 2" {
		t.Errorf("bounds = %q", b.bounds())
	}
	lo, hi := 1.0, 2.5
	if b := (Assertion{Min: &lo, Max: &hi}); b.bounds() != "in [1, 2.5]" {
		t.Errorf("range bounds = %q", b.bounds())
	}
}

// TestYAMLParserListCorners covers the list-item shapes the main syntax
// test skips: a bare dash, a dash holding an indented block, a bad
// continuation indent, and double-quoted escapes.
func TestYAMLParserListCorners(t *testing.T) {
	doc := "l:\n  -\n  - \n  -\n    k: 1\nesc: \"a\\\\b\\\"c\\nd\\te\"\n"
	n, err := parseYAMLTree([]byte(doc))
	if err != nil {
		t.Fatalf("parseYAMLTree: %v", err)
	}
	items := n.child("l").items
	if len(items) != 3 || items[0].kind != nScalar || items[2].kind != nMap ||
		items[2].child("k").scalar != "1" {
		t.Errorf("list items = %+v", items)
	}
	if got := n.child("esc").scalar; got != "a\\b\"c\nd\te" {
		t.Errorf("escapes = %q", got)
	}
	if _, err := parseYAMLTree([]byte("l:\n  - k: 1\n     j: 2\n")); err == nil ||
		!strings.Contains(err.Error(), "unexpected indentation") {
		t.Errorf("bad continuation indent: %v", err)
	}
	if _, err := parseYAMLTree([]byte("a: \"x\\qz\"\n")); err == nil ||
		!strings.Contains(err.Error(), "unsupported escape") {
		t.Errorf("bad escape: %v", err)
	}
	if _, err := parseYAMLTree([]byte("a: \"dangling\\\n")); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unterminated: %v", err)
	}
}

// TestJSONTreeCorners covers the JSON front end's non-map values and its
// node accessors' nil paths.
func TestJSONTreeCorners(t *testing.T) {
	n, err := parseJSONTree([]byte(`[1, [2, 3], {"a": null, "b": true, "s": "x"}]`))
	if err != nil {
		t.Fatalf("parseJSONTree: %v", err)
	}
	if n.kind != nList || len(n.items) != 3 {
		t.Fatalf("root = %+v", n)
	}
	inner := n.items[2]
	if inner.child("b").scalar != "true" || !inner.child("s").quoted {
		t.Errorf("nested values = %+v", inner)
	}
	if inner.child("absent") != nil || inner.keyLine("absent") != inner.line {
		t.Errorf("missing-key accessors leaked: %+v", inner.child("absent"))
	}
	if n.items[0].child("x") != nil {
		t.Errorf("child on a scalar = %+v", n.items[0].child("x"))
	}
	if _, err := parseJSONTree([]byte(`{"a": `)); err == nil {
		t.Error("truncated JSON accepted")
	}
	for k, want := range map[nodeKind]string{nScalar: "scalar", nMap: "mapping", nList: "list"} {
		if k.String() != want {
			t.Errorf("nodeKind(%d).String() = %q", k, k.String())
		}
	}
}

// TestHarvestToggleScenario exercises the harvest_on_block action path end
// to end (the one applyAction branch the main run tests leave cold).
func TestHarvestToggleScenario(t *testing.T) {
	doc := "name: toggle\nduration_ms: 60\nwarmup_ms: 10\nfleet:\n  - group: g\n" +
		"events:\n  - at_ms: 20\n    kind: harvest_on_block\n    on: false\n" +
		"  - at_ms: 40\n    kind: harvest_on_block\n    on: true\n"
	sc, err := Parse([]byte(doc), false, "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("toggle scenario failed:\n%s", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "actions=2") {
		t.Errorf("summary missing the two toggle actions:\n%s", rep.Summary)
	}
}
