package scenario

import (
	"fmt"
	"strings"
)

// The YAML-subset loader. Supported constructs — enough for every shipped
// scenario, small enough to audit:
//
//   - block mappings ("key: value" / "key:" with an indented block below)
//   - block lists ("- item", "- key: value" inline-map items)
//   - scalars: null/~, true/false, numbers, bare strings, single- and
//     double-quoted strings
//   - comments ("# ..." to end of line, outside quotes)
//   - single-line JSON flow values ("plan: {\"crash\": {...}}"), delegated
//     to the stdlib-token JSON tree parser
//
// Not supported (rejected with positioned errors rather than misparsed):
// tabs in indentation, anchors/aliases, multi-document streams, block
// scalars (| and >), and multi-line flow collections.

// yline is one significant source line: 1-based number, indent width in
// spaces, and content with indent and comments stripped.
type yline struct {
	num    int
	indent int
	text   string
}

// stripComment removes a trailing "# ..." comment, respecting quotes. A
// '#' starts a comment at line start or after whitespace.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == '\\' && quote == '"' {
				i++ // skip the escaped char
			} else if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// scanLines splits a document into significant lines.
func scanLines(data []byte) ([]yline, error) {
	var out []yline
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", num+1)
		}
		text := strings.TrimSpace(stripComment(line[indent:]))
		if text == "" {
			continue
		}
		if text == "---" && indent == 0 {
			if len(out) > 0 {
				return nil, fmt.Errorf("line %d: multi-document streams are not supported", num+1)
			}
			continue // a leading document marker is harmless
		}
		out = append(out, yline{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// parseYAMLTree parses a YAML-subset document into a node tree.
func parseYAMLTree(data []byte) (*node, error) {
	lines, err := scanLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("line 1: empty document")
	}
	p := &yparser{lines: lines}
	root, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		return nil, fmt.Errorf("line %d: unexpected indentation", p.lines[p.i].num)
	}
	return root, nil
}

type yparser struct {
	lines []yline
	i     int
}

// isListItem reports whether a content line starts a list item.
func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// itemRest returns a list item's content after the dash.
func itemRest(text string) string {
	if text == "-" {
		return ""
	}
	return strings.TrimSpace(text[2:])
}

// splitKey splits "key: value" / "key:" into (key, rest). The first
// unquoted colon followed by a space (or ending the line) terminates the
// key, so values may contain colons freely.
func splitKey(text string) (key, rest string, ok bool) {
	for i := 0; i < len(text); i++ {
		if text[i] != ':' {
			continue
		}
		if i+1 == len(text) {
			return strings.TrimSpace(text[:i]), "", strings.TrimSpace(text[:i]) != ""
		}
		if text[i+1] == ' ' {
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), strings.TrimSpace(text[:i]) != ""
		}
	}
	return "", "", false
}

// parseBlock parses the block starting at the current line; its kind (map
// or list) and indent come from that line.
func (p *yparser) parseBlock() (*node, error) {
	ln := p.lines[p.i]
	if isListItem(ln.text) {
		return p.parseList(ln.indent)
	}
	return p.parseMap(ln.indent)
}

// parseMap parses map entries at exactly the given indent.
func (p *yparser) parseMap(indent int) (*node, error) {
	n := newMapNode(p.lines[p.i].num)
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation (want %d spaces, got %d)",
				ln.num, indent, ln.indent)
		}
		if isListItem(ln.text) {
			return nil, fmt.Errorf("line %d: unexpected list item inside a mapping", ln.num)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		p.i++
		val, err := p.entryValue(rest, ln.num, indent)
		if err != nil {
			return nil, err
		}
		if err := n.addChild(key, ln.num, val); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// entryValue parses the value of a "key: rest" entry whose key sits at
// entryIndent: an inline scalar/flow value, or (when rest is empty) the
// indented block on the following lines, or null.
func (p *yparser) entryValue(rest string, num, entryIndent int) (*node, error) {
	if rest != "" {
		return p.parseScalar(rest, num)
	}
	if p.i < len(p.lines) && p.lines[p.i].indent > entryIndent {
		return p.parseBlock()
	}
	return &node{line: num, kind: nScalar, scalar: ""}, nil // null
}

// parseList parses list items at exactly the given indent.
func (p *yparser) parseList(indent int) (*node, error) {
	n := &node{line: p.lines[p.i].num, kind: nList}
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation (want %d spaces, got %d)",
				ln.num, indent, ln.indent)
		}
		if !isListItem(ln.text) {
			break // a sibling map key at the parent's level
		}
		p.i++
		item, err := p.parseListItem(itemRest(ln.text), ln.num, indent)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// parseListItem parses one "- ..." item. An inline "key: value" starts a
// map whose continuation lines must be indented to the key's column
// (indent+2); a bare value is a scalar; an empty item holds the indented
// block below it.
func (p *yparser) parseListItem(rest string, num, indent int) (*node, error) {
	if rest == "" {
		if p.i < len(p.lines) && p.lines[p.i].indent > indent {
			return p.parseBlock()
		}
		return &node{line: num, kind: nScalar, scalar: ""}, nil
	}
	if rest[0] != '"' && rest[0] != '\'' && rest[0] != '{' && rest[0] != '[' {
		if key, val, ok := splitKey(rest); ok {
			item := newMapNode(num)
			first, err := p.entryValue(val, num, indent+2)
			if err != nil {
				return nil, err
			}
			if err := item.addChild(key, num, first); err != nil {
				return nil, err
			}
			// Continuation entries aligned under the first key.
			for p.i < len(p.lines) && p.lines[p.i].indent == indent+2 && !isListItem(p.lines[p.i].text) {
				cont, err := p.parseMap(indent + 2)
				if err != nil {
					return nil, err
				}
				for _, k := range cont.keys {
					if err := item.addChild(k, cont.keyLines[k], cont.children[k]); err != nil {
						return nil, err
					}
				}
			}
			if p.i < len(p.lines) && p.lines[p.i].indent > indent && p.lines[p.i].indent != indent+2 {
				return nil, fmt.Errorf("line %d: unexpected indentation (want %d spaces, got %d)",
					p.lines[p.i].num, indent+2, p.lines[p.i].indent)
			}
			return item, nil
		}
	}
	return p.parseScalar(rest, num)
}

// parseScalar parses an inline value: quoted string, single-line JSON flow
// collection, or bare scalar.
func (p *yparser) parseScalar(text string, num int) (*node, error) {
	switch text[0] {
	case '"', '\'':
		s, err := unquote(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", num, err)
		}
		return &node{line: num, kind: nScalar, scalar: s, quoted: true}, nil
	case '{', '[':
		n, err := parseJSONTree([]byte(text))
		if err != nil {
			return nil, fmt.Errorf("line %d: flow value: %v", num, err)
		}
		setLines(n, num)
		return n, nil
	}
	return &node{line: num, kind: nScalar, scalar: text}, nil
}

// unquote strips matching quotes: double quotes support \\ \" \n \t
// escapes, single quotes only the doubled-quote escape (”).
func unquote(s string) (string, error) {
	q := s[0]
	if len(s) < 2 || s[len(s)-1] != q {
		return "", fmt.Errorf("unterminated quoted string %s", s)
	}
	body := s[1 : len(s)-1]
	if q == '\'' {
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(body) {
			return "", fmt.Errorf("dangling escape in %s", s)
		}
		switch body[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("unsupported escape \\%c in %s", body[i], s)
		}
	}
	return b.String(), nil
}

// setLines stamps a flow-parsed subtree with the source line it sits on.
func setLines(n *node, line int) {
	n.line = line
	for _, k := range n.keys {
		n.keyLines[k] = line
		setLines(n.children[k], line)
	}
	for _, it := range n.items {
		setLines(it, line)
	}
}
