package scenario

import (
	"strings"
	"testing"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/sim"
)

// quick parses a scenario from source, failing the test on error.
func quick(t *testing.T, doc string) *Scenario {
	t.Helper()
	sc, err := Parse([]byte(doc), false, "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}

const runYAML = `name: run-test
seed: 5
warmup_ms: 10
duration_ms: 60
step_ms: 10
fleet:
  - group: web
    count: 2
    system: HardHarvest-Block
    workload: BFS
workload:
  - at_ms: 20
    kind: intensity
    intensity: 1.6
events:
  - at_ms: 30
    kind: resilience
    on: true
  - at_ms: 30
    kind: faults
    plan: {"events": [{"at_ms": 5, "kind": "core_offline", "core": 2, "duration_ms": 6}]}
assertions:
  - metric: completions
    min: 1
  - metric: invariant_violations
    max: 0
  - metric: flow_balance
  - metric: littles_law
`

// TestRunDeterministicByteIdentical is the scenario-format cornerstone:
// same scenario + same seed must produce byte-identical summaries, with
// every assertion and both implicit oracle checks passing.
func TestRunDeterministicByteIdentical(t *testing.T) {
	a, err := quick(t, runYAML).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := quick(t, runYAML).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("summaries diverged:\n--- first ---\n%s--- second ---\n%s", a.Summary, b.Summary)
	}
	if !a.OK() || a.Failed != 0 {
		t.Fatalf("run failed (%d):\n%s", a.Failed, a.Summary)
	}
	if len(a.Asserts) != 4 {
		t.Fatalf("want 4 assertion results, got %d", len(a.Asserts))
	}
	for _, want := range []string{
		"== hhsim scenario summary ==",
		"scenario=run-test seed=5 servers=2",
		"fleet: web=2x HardHarvest-Block/BFS",
		"server 0 [web]",
		"server 1 [web]",
		"oracle: flow-balance+littles-law PASS on 2/2 servers",
		"PASS completions >= 1",
		"PASS flow_balance holds [all]",
		"result: PASS (4 assertions, 4 oracle checks, 0 failed)",
	} {
		if !strings.Contains(a.Summary, want) {
			t.Errorf("summary missing %q:\n%s", want, a.Summary)
		}
	}
	// The injected fault and intensity bump must actually have applied.
	if !strings.Contains(a.Summary, "faults=") {
		t.Errorf("summary has no fault counters:\n%s", a.Summary)
	}

	// A different seed must change results (the format is not ignoring it).
	c, err := quick(t, strings.Replace(runYAML, "seed: 5", "seed: 6", 1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Summary == a.Summary {
		t.Fatal("different seeds produced identical summaries")
	}
}

// TestRunShardsByteIdentical is the sharding cornerstone: the worker count
// is an execution detail, so the same scenario must render byte-identical
// summaries at -shards 1, 2, and 8 (and at the GOMAXPROCS default Run uses).
func TestRunShardsByteIdentical(t *testing.T) {
	want, err := quick(t, runYAML).RunShards(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8, 0} {
		got, err := quick(t, runYAML).RunShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary != want.Summary {
			t.Fatalf("summary diverged between shards=1 and shards=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
				shards, want.Summary, shards, got.Summary)
		}
	}
}

const routedYAML = `name: routed-test
seed: 9
warmup_ms: 10
duration_ms: 60
step_ms: 10
routing:
  policy: least_outstanding
  probe_interval_ms: 5
fleet:
  - group: web
    count: 3
    system: HardHarvest-Block
    workload: BFS
workload:
  - at_ms: 20
    kind: intensity
    intensity: 1.4
events:
  - at_ms: 20
    kind: drain
    server: 2
    deadline_ms: 2
  - at_ms: 30
    kind: faults
    server: 0
    plan: {"events": [{"at_ms": 0, "kind": "crash", "duration_ms": 8}]}
assertions:
  - metric: drains
    min: 1
  - metric: lost
    max: 0
  - metric: fleet_completions
    min: 100
  - metric: fleet_conservation
  - metric: flow_balance
  - metric: littles_law
`

// TestRoutedRunDeterministic is the routed cornerstone: a scenario behind
// the fleet front door — with a drain, a crash, and an intensity shift all
// active — must render byte-identical summaries across repeats and at any
// worker count, and pass its assertions plus the mandatory fleet
// conservation oracle.
func TestRoutedRunDeterministic(t *testing.T) {
	want, err := quick(t, routedYAML).RunShards(1)
	if err != nil {
		t.Fatal(err)
	}
	if !want.OK() {
		t.Fatalf("routed run failed (%d):\n%s", want.Failed, want.Summary)
	}
	if want.Fleet == nil {
		t.Fatal("routed run reported no fleet result")
	}
	for _, wantStr := range []string{
		"routing: policy=least_outstanding",
		"router: generated=",
		"drains=1",
		"fleet latency: p50=",
		"backend server0[web]",
		"fleet conservation PASS",
		"PASS fleet_conservation holds [all]",
	} {
		if !strings.Contains(want.Summary, wantStr) {
			t.Errorf("summary missing %q:\n%s", wantStr, want.Summary)
		}
	}
	for _, shards := range []int{1, 2, 8, 0} {
		got, err := quick(t, routedYAML).RunShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary != want.Summary {
			t.Fatalf("routed summary diverged at shards=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
				shards, want.Summary, shards, got.Summary)
		}
	}
}

// TestRoutedPerturbFleet: the PerturbFleet knob corrupts the router ledger
// and the mandatory conservation oracle must catch it — proof the check has
// teeth at the scenario level.
func TestRoutedPerturbFleet(t *testing.T) {
	sc := quick(t, routedYAML)
	sc.PerturbFleet = true
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("perturbed fleet ledger passed:\n%s", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "fleet_conservation FAIL") {
		t.Fatalf("failure does not name fleet_conservation:\n%s", rep.Summary)
	}
}

// TestAssertionFailureFailsRun: a violated bound must flip the verdict and
// name the offending server and value.
func TestAssertionFailureFailsRun(t *testing.T) {
	doc := strings.Replace(runYAML, "metric: completions\n    min: 1",
		"metric: completions\n    max: 0", 1)
	rep, err := quick(t, doc).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Failed != 1 {
		t.Fatalf("violated assertion did not fail the run (%d):\n%s", rep.Failed, rep.Summary)
	}
	for _, want := range []string{"FAIL completions <= 0", "server ", "result: FAIL"} {
		if !strings.Contains(rep.Summary, want) {
			t.Errorf("summary missing %q:\n%s", want, rep.Summary)
		}
	}
}

// TestFlashCrowdCompilation checks the compiled action schedule: a flash
// crowd becomes a set at the start barrier (baseline x factor) and a
// baseline restore at the end barrier, on top of plain intensity steps.
func TestFlashCrowdCompilation(t *testing.T) {
	sc := quick(t, `name: fc
warmup_ms: 10
duration_ms: 100
step_ms: 10
fleet:
  - group: web
    count: 1
workload:
  - at_ms: 0
    kind: intensity
    intensity: 2
  - at_ms: 25
    kind: flash_crowd
    factor: 3
    duration_ms: 30
`)
	specs, _, _, err := sc.compile()
	if err != nil {
		t.Fatal(err)
	}
	acts := specs[0].actions
	if len(acts) != 3 {
		t.Fatalf("want 3 compiled actions, got %d: %+v", len(acts), acts)
	}
	ms := func(n int) sim.Time { return sim.Time(sim.Duration(n) * sim.Millisecond) }
	if acts[0].at != ms(0) || acts[0].x != 2 {
		t.Errorf("baseline step wrong: %+v", acts[0])
	}
	if acts[1].at != ms(30) || acts[1].x != 6 { // 25 quantizes up to 30; 2*3
		t.Errorf("flash start wrong: %+v", acts[1])
	}
	if acts[2].at != ms(60) || acts[2].x != 2 { // restore the baseline
		t.Errorf("flash end wrong: %+v", acts[2])
	}
}

// TestVMIntensityScenario: a vm_intensity profile switch compiles, applies,
// and shifts results relative to the same scenario without it.
func TestVMIntensityScenario(t *testing.T) {
	base := `name: vi
seed: 2
warmup_ms: 10
duration_ms: 50
step_ms: 10
fleet:
  - group: web
    count: 1
`
	with := base + `workload:
  - at_ms: 10
    kind: vm_intensity
    vm: 3
    intensity: 4
`
	a, err := quick(t, base).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := quick(t, with).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary == b.Summary {
		t.Fatal("vm_intensity action had no effect on the run")
	}
	if !b.OK() {
		t.Fatalf("vm_intensity run failed oracle checks:\n%s", b.Summary)
	}
}

// TestSetVMIntensityValidation covers the new live-surface mutator's error
// paths directly.
func TestSetVMIntensityValidation(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.WarmupDuration = sim.Millisecond
	cfg.MeasureDuration = 10 * sim.Millisecond
	work, err := batch.WorkloadByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	srv := cluster.NewServer(cfg, cluster.SystemOptions(cluster.HardHarvestBlock), work)
	srv.Start()
	defer func() {
		for !srv.StepTo(srv.Horizon()) {
		}
		srv.Finish()
	}()
	if err := srv.SetVMIntensity(0, 1.5); err != nil {
		t.Errorf("valid vm rejected: %v", err)
	}
	if err := srv.SetVMIntensity(cfg.PrimaryVMs, 1.5); err == nil {
		t.Error("out-of-range vm accepted")
	}
	if err := srv.SetVMIntensity(0, 0); err == nil {
		t.Error("zero intensity accepted")
	}
}

// TestHeterogeneousGenerations: a slower generation must complete fewer
// batch jobs than a faster one under the identical seed and workload.
func TestHeterogeneousGenerations(t *testing.T) {
	doc := `name: gens
seed: 4
warmup_ms: 10
duration_ms: 80
step_ms: 10
fleet:
  - group: old
    count: 1
    generation: gen1
  - group: new
    count: 1
    generation: gen3
`
	rep, err := quick(t, doc).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("generation run failed:\n%s", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "exec_factor=1.15") ||
		!strings.Contains(rep.Summary, "exec_factor=0.88") {
		t.Fatalf("generation factors not reflected:\n%s", rep.Summary)
	}
}
