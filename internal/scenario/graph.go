package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
)

// The scenario graph block: request-DAG workloads. When present, the
// scenario runs in graph mode — a graph.Dispatcher becomes the fleet's
// front door, admitting root requests and fanning out inter-tier RPCs
// over ShardGroup edges — instead of per-server arrival generation or the
// routing front door (the two are mutually exclusive with graph).
//
// Document shape:
//
//	graph:
//	  rpc_delay_us: 20        # per-hop network delay (default 20)
//	  root: frontend          # entry tier (default: the first tier)
//	  tiers:
//	    - tier: frontend
//	      group: fe           # fleet group serving this tier
//	      vm: 0               # primary VM whose profile is the service time
//	      calls:
//	        - tier: logic
//	          mode: parallel  # parallel | sequential (default parallel)
//	          fanout: 2       # invocations per call (default 1)
//	    - tier: logic
//	      group: logic
//
//	graph:
//	  file: socialnet.graph.yaml   # or: load the same fields from a file
//
// Every error is positioned: inline fields report the scenario file's
// line; file-referenced graphs report the graph file's own line inside a
// graph.file diagnostic.

// GraphBlock is the decoded graph section.
type GraphBlock struct {
	RPCDelayUS float64
	Root       string
	File       string
	Tiers      []GraphTier

	line  int
	n     *node
	lines map[string]int // decoded field path -> source line

	// Built during validation.
	spec *graph.Spec
}

// GraphTier is one decoded tier entry.
type GraphTier struct {
	Name  string
	Group string
	VM    int
	Calls []GraphCall

	line int
}

// GraphCall is one decoded downstream call.
type GraphCall struct {
	Tier   string
	Mode   string
	Fanout int

	line int
}

// Spec returns the compiled DAG (valid after Parse/Load succeeded).
func (gb *GraphBlock) Spec() *graph.Spec { return gb.spec }

func (sc *Scenario) decodeGraph(v *node, path string) error {
	gb := &GraphBlock{RPCDelayUS: 20, line: v.line, n: v, lines: map[string]int{}}
	if err := gb.decodeBody(v, path, true); err != nil {
		return err
	}
	sc.Graph = gb
	return nil
}

// decodeBody decodes the graph fields from the scenario block (allowFile)
// or from a referenced graph file's document root (file recursion is
// rejected).
func (gb *GraphBlock) decodeBody(v *node, path string, allowFile bool) error {
	fields := fieldSet{
		"rpc_delay_us": func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			gb.RPCDelayUS, err = decF64(v, p)
			return
		},
		"root": func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			gb.Root, err = decStr(v, p)
			return
		},
		"tiers": func(v *node, p string) error {
			gb.lines[p] = v.line
			return decodeList(v, p, gb.decodeTier)
		},
	}
	if allowFile {
		fields["file"] = func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			gb.File, err = decStr(v, p)
			return
		}
	}
	return decodeObj(v, path, fields)
}

func (gb *GraphBlock) decodeTier(v *node, path string, _ int) error {
	t := GraphTier{line: v.line}
	gb.lines[path] = v.line
	err := decodeObj(v, path, fieldSet{
		"tier": func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			t.Name, err = decStr(v, p)
			return
		},
		"group": func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			t.Group, err = decStr(v, p)
			return
		},
		"vm": func(v *node, p string) (err error) {
			gb.lines[p] = v.line
			t.VM, err = decInt(v, p)
			return
		},
		"calls": func(v *node, p string) error {
			gb.lines[p] = v.line
			return decodeList(v, p, func(v *node, p string, _ int) error {
				c := GraphCall{Mode: graph.Parallel.String(), Fanout: 1, line: v.line}
				gb.lines[p] = v.line
				err := decodeObj(v, p, fieldSet{
					"tier": func(v *node, p string) (err error) {
						gb.lines[p] = v.line
						c.Tier, err = decStr(v, p)
						return
					},
					"mode": func(v *node, p string) (err error) {
						gb.lines[p] = v.line
						c.Mode, err = decStr(v, p)
						return
					},
					"fanout": func(v *node, p string) (err error) {
						gb.lines[p] = v.line
						c.Fanout, err = decInt(v, p)
						return
					},
				})
				if err != nil {
					return err
				}
				t.Calls = append(t.Calls, c)
				return nil
			})
		},
	})
	if err != nil {
		return err
	}
	gb.Tiers = append(gb.Tiers, t)
	return nil
}

// lineFor maps a spec field path ("tiers[0].calls[1].fanout") to the
// source line it was decoded from, walking up to the nearest recorded
// ancestor for defaulted fields.
func (gb *GraphBlock) lineFor(specPath string) int {
	p := specPath
	if gb.File == "" && p != "" {
		p = "graph." + p
	}
	for p != "" {
		if l, ok := gb.lines[p]; ok {
			return l
		}
		// In file mode the graph file's own fields are recorded bare, but
		// the file reference itself was decoded from the scenario block
		// under the graph.* prefix.
		if l, ok := gb.lines["graph."+p]; ok {
			return l
		}
		if i := strings.LastIndexAny(p, ".["); i >= 0 {
			p = p[:i]
		} else {
			p = ""
		}
	}
	if gb.File == "" {
		return gb.line
	}
	return 1
}

// errAtPath builds a positioned graph error: inline graphs report the
// scenario line under graph.<path>; file-referenced graphs report the
// graph file's line nested inside a graph.file diagnostic.
func (gb *GraphBlock) errAtPath(specPath, format string, args ...any) error {
	line := gb.lineFor(specPath)
	if gb.File == "" {
		display := "graph"
		if specPath != "" {
			display += "." + specPath
		}
		return errAt(line, display, format, args...)
	}
	display := specPath
	if display == "" {
		display = "graph"
	}
	inner := errAt(line, display, format, args...)
	return errAt(gb.lineFor("file"), "graph.file", "%v", prefixFile(gb.File, inner))
}

// validateGraph resolves and compiles the graph block: load a referenced
// file, resolve tier/group names against the fleet, build the graph.Spec,
// and map its structural validation (cycles, bounds, reachability) back
// to positioned errors.
func (sc *Scenario) validateGraph() error {
	gb := sc.Graph
	if gb == nil {
		return nil
	}
	if sc.Routing != nil {
		return errAt(gb.line, "graph", "graph and routing are mutually exclusive (the DAG dispatcher is the fleet's front door)")
	}
	if gb.File != "" {
		if len(gb.n.keys) > 1 {
			return errAt(gb.lineFor("file"), "graph.file", "file is exclusive with inline graph fields")
		}
		fp := filepath.Join(sc.baseDir, gb.File)
		data, err := os.ReadFile(fp)
		if err != nil {
			return errAt(gb.lineFor("file"), "graph.file", "%v", err)
		}
		var root *node
		if strings.EqualFold(filepath.Ext(fp), ".json") {
			root, err = parseJSONTree(data)
		} else {
			root, err = parseYAMLTree(data)
		}
		if err != nil {
			return errAt(gb.lineFor("file"), "graph.file", "%v", prefixFile(gb.File, err))
		}
		if err := gb.decodeBody(root, "", false); err != nil {
			return errAt(gb.lineFor("file"), "graph.file", "%v", prefixFile(gb.File, err))
		}
	}
	if len(gb.Tiers) == 0 {
		return gb.errAtPath("tiers", "required: define at least one tier")
	}

	// Resolve names scenario-side (the spec speaks indices); structural
	// checks (duplicates, cycles, fan-out bounds, reachability, expansion)
	// then run once in graph.Spec.Validate and map back through lineFor.
	index := make(map[string]int, len(gb.Tiers))
	names := make([]string, 0, len(gb.Tiers))
	for i, t := range gb.Tiers {
		if t.Name == "" {
			continue // spec.Validate reports the missing name, positioned
		}
		if _, dup := index[t.Name]; !dup {
			index[t.Name] = i
			names = append(names, t.Name)
		}
	}
	spec := &graph.Spec{NetDelay: sim.Duration(gb.RPCDelayUS * float64(sim.Microsecond))}
	for i, t := range gb.Tiers {
		tp := fmt.Sprintf("tiers[%d]", i)
		if t.Group == "" {
			return gb.errAtPath(tp+".group", "required (each tier is served by a fleet group)")
		}
		g := sc.groupByName(t.Group)
		if g == nil {
			return gb.errAtPath(tp+".group", "unknown fleet group %q", t.Group)
		}
		if t.VM >= g.PrimaryVMs {
			return gb.errAtPath(tp+".vm", "vm %d out of range for group %q (%d primary VMs)",
				t.VM, t.Group, g.PrimaryVMs)
		}
		st := graph.Tier{Name: t.Name, Group: t.Group, VM: t.VM}
		for j, c := range t.Calls {
			cp := fmt.Sprintf("%s.calls[%d]", tp, j)
			ti, ok := index[c.Tier]
			if !ok {
				return gb.errAtPath(cp+".tier", "unknown tier %q (tiers: %s)", c.Tier, strings.Join(names, ", "))
			}
			mode, err := graph.ParseCallMode(c.Mode)
			if err != nil {
				return gb.errAtPath(cp+".mode", "%v", err)
			}
			st.Calls = append(st.Calls, graph.Call{Tier: ti, Mode: mode, Fanout: c.Fanout})
		}
		spec.Tiers = append(spec.Tiers, st)
	}
	if gb.Root != "" {
		ri, ok := index[gb.Root]
		if !ok {
			return gb.errAtPath("root", "unknown tier %q (tiers: %s)", gb.Root, strings.Join(names, ", "))
		}
		spec.Root = ri
	}
	if err := spec.Validate(); err != nil {
		var fe *graph.FieldError
		if errors.As(err, &fe) {
			return gb.errAtPath(fe.Path, "%s", fe.Msg)
		}
		return gb.errAtPath("", "%v", err)
	}
	served := make(map[string]bool, len(spec.Tiers))
	for i := range spec.Tiers {
		served[spec.Tiers[i].Group] = true
	}
	for i := range sc.Fleet {
		if !served[sc.Fleet[i].Name] {
			return gb.errAtPath("tiers", "fleet group %q serves no tier (every group must be bound in graph mode)",
				sc.Fleet[i].Name)
		}
	}
	gb.spec = spec
	return nil
}

// groupByName resolves a fleet group (nil when absent).
func (sc *Scenario) groupByName(name string) *Group {
	for i := range sc.Fleet {
		if sc.Fleet[i].Name == name {
			return &sc.Fleet[i]
		}
	}
	return nil
}

// rootGroup names the fleet group serving the root tier (graph mode).
func (sc *Scenario) rootGroup() string {
	return sc.Graph.spec.Tiers[sc.Graph.spec.Root].Group
}
