package scenario

import (
	"fmt"
	"math"
	"strings"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/graph"
	"hardharvest/internal/obs"
	"hardharvest/internal/route"
	"hardharvest/internal/sim"
	"hardharvest/internal/validate"
)

// The scenario runner. A scenario compiles to one serverSpec per fleet
// server plus a sorted list of barrier-aligned control actions per server;
// each server then runs the same pause-free barrier loop a served run uses
// (Start / apply actions / StepTo / Finish), so scenario execution inherits
// the step-equivalence guarantee of DESIGN §8: the barrier cadence is a
// control-plane detail that never perturbs the simulated event sequence.
// Servers are independent (no cross-server events) and become members of a
// sim.ShardGroup — one engine per server, advanced in parallel across
// worker goroutines — with seeds derived exactly as RunCluster derives
// them. The group's conservative windows are independent of the worker
// count, so identical inputs produce a byte-identical summary at any
// -shards value, including 1.

// action kinds, in the order they apply within one barrier.
type actKind int

const (
	actIntensity actKind = iota
	actVMIntensity
	actFaults
	actResilience
	actHarvestOnBlock
)

// action is one compiled control mutation for one server.
type action struct {
	at   sim.Time
	seq  int // document order; breaks ties at a shared barrier
	kind actKind
	x    float64
	vm   int
	on   bool
	plan *faults.Plan
}

// serverSpec is one expanded fleet server.
type serverSpec struct {
	index   int
	group   *Group
	cfg     cluster.Config
	opts    cluster.Options
	work    *batch.Workload
	actions []action
}

// barrier quantizes a scenario timestamp to the first barrier at or after
// it. Validation guarantees the result lies on an in-run barrier.
func (sc *Scenario) barrier(atMS float64) sim.Time {
	step := float64(sc.StepMS)
	n := int64(math.Ceil(atMS/step - 1e-9))
	if n < 0 {
		n = 0
	}
	return sim.Time(sim.Duration(n*int64(sc.StepMS)) * sim.Millisecond)
}

// compile expands the fleet and distributes timeline entries and events to
// the servers they target as barrier-aligned actions. In routed mode the
// workload timeline (and drain events) compile to router actions instead:
// the front door owns the generators, so intensity changes land there,
// while fault/resilience/harvest toggles stay server-side. Graph mode is
// analogous: intensity entries compile to dispatcher actions against the
// root-tier generators.
func (sc *Scenario) compile() ([]*serverSpec, []route.Action, []graph.Action, error) {
	specs := make([]*serverSpec, 0, sc.Servers())
	for gi := range sc.Fleet {
		g := &sc.Fleet[gi]
		kind, err := parseSystem(g.System)
		if err != nil {
			return nil, nil, nil, err
		}
		work, err := batch.WorkloadByName(g.Workload)
		if err != nil {
			return nil, nil, nil, err
		}
		for j := 0; j < g.Count; j++ {
			i := len(specs)
			cfg := cluster.DefaultConfig()
			cfg.Seed = sc.Seed + uint64(i)*7919 // the RunCluster derivation
			cfg.Strict = sc.Strict
			cfg.CoresPerServer = g.Cores
			cfg.PrimaryVMs = g.PrimaryVMs
			cfg.CoresPerPrimary = g.CoresPerPrimary
			cfg.HarvestOwnCores = g.HarvestCores
			cfg.WarmupDuration = sim.Duration(sc.WarmupMS) * sim.Millisecond
			cfg.MeasureDuration = sim.Duration(sc.DurationMS) * sim.Millisecond
			if g.LoadScale > 0 {
				cfg.LoadScale = g.LoadScale
			}
			// Hardware generation: scale every cache-warmth execution
			// factor, so a slower generation stretches CPU bursts uniformly.
			if f := g.effExecFactor(); f != 1.0 {
				cfg.WarmFactor *= f
				cfg.ReplWarmFactor *= f
				cfg.ColdFactor *= f
				cfg.PartReclaimFactor *= f
			}
			specs = append(specs, &serverSpec{
				index: i,
				group: g,
				cfg:   cfg,
				opts:  cluster.SystemOptions(kind),
				work:  work,
			})
		}
	}

	// Distribute workload-timeline entries. seq is the entry's document
	// position; events follow all timeline entries in the tiebreak order.
	// In routed mode the generators live at the front door, so each entry
	// becomes a router action against its source-server generator set; in
	// graph mode likewise, against the dispatcher's root-tier generators
	// (entries selecting only non-root servers are rejected at validation,
	// and non-root servers of a selection have no generator to act on).
	routed := sc.Routing != nil
	graphed := sc.Graph != nil
	var racts []route.Action
	var gacts []graph.Action
	for ti := range sc.Workload {
		e := &sc.Workload[ti]
		for _, s := range specs {
			if !e.Target.selects(&serverRun{index: s.index, group: s.group.Name}) {
				continue
			}
			if graphed && s.group.Name != sc.rootGroup() {
				continue
			}
			src := s.index
			switch e.Kind {
			case TlIntensity:
				if routed {
					x := e.Intensity
					racts = append(racts, route.Action{At: sc.barrier(e.AtMS), Seq: ti,
						Fn: func(rt *route.Router) { rt.SetIntensity(src, x) }})
					continue
				}
				if graphed {
					x := e.Intensity
					gacts = append(gacts, graph.Action{At: sc.barrier(e.AtMS), Seq: ti,
						Fn: func(d *graph.Dispatcher) { d.SetIntensity(src, x) }})
					continue
				}
				s.actions = append(s.actions, action{
					at: sc.barrier(e.AtMS), seq: ti, kind: actIntensity, x: e.Intensity})
			case TlVMIntensity:
				if routed {
					x, vm := e.Intensity, e.VM
					racts = append(racts, route.Action{At: sc.barrier(e.AtMS), Seq: ti,
						Fn: func(rt *route.Router) { rt.SetVMIntensity(src, vm, x) }})
					continue
				}
				s.actions = append(s.actions, action{
					at: sc.barrier(e.AtMS), seq: ti, kind: actVMIntensity, x: e.Intensity, vm: e.VM})
			case TlFlashCrowd:
				// A flash crowd multiplies the plain-intensity baseline for
				// its window: set base*factor at the start barrier, restore
				// the baseline in effect at the end barrier.
				start, end := sc.barrier(e.AtMS), sc.barrier(e.AtMS+e.DurationMS)
				hi, lo := sc.baselineAt(start, s)*e.Factor, sc.baselineAt(end, s)
				if routed {
					racts = append(racts,
						route.Action{At: start, Seq: ti, Fn: func(rt *route.Router) { rt.SetIntensity(src, hi) }},
						route.Action{At: end, Seq: ti, Fn: func(rt *route.Router) { rt.SetIntensity(src, lo) }})
					continue
				}
				if graphed {
					gacts = append(gacts,
						graph.Action{At: start, Seq: ti, Fn: func(d *graph.Dispatcher) { d.SetIntensity(src, hi) }},
						graph.Action{At: end, Seq: ti, Fn: func(d *graph.Dispatcher) { d.SetIntensity(src, lo) }})
					continue
				}
				s.actions = append(s.actions,
					action{at: start, seq: ti, kind: actIntensity, x: hi},
					action{at: end, seq: ti, kind: actIntensity, x: lo})
			}
		}
	}
	for ei := range sc.Events {
		e := &sc.Events[ei]
		for _, s := range specs {
			if !e.Target.selects(&serverRun{index: s.index, group: s.group.Name}) {
				continue
			}
			a := action{at: sc.barrier(e.AtMS), seq: len(sc.Workload) + ei}
			switch e.Kind {
			case EvFaults:
				a.kind, a.plan = actFaults, e.Plan
			case EvResilience:
				a.kind, a.on = actResilience, e.On
			case EvHarvestOnBlock:
				a.kind, a.on = actHarvestOnBlock, e.On
			case EvDrain:
				idx := s.index
				deadline := sim.Duration(e.DeadlineMS * float64(sim.Millisecond))
				racts = append(racts, route.Action{At: sc.barrier(e.AtMS), Seq: len(sc.Workload) + ei,
					Fn: func(rt *route.Router) { rt.StartDrain(idx, deadline) }})
				continue
			}
			s.actions = append(s.actions, a)
		}
	}
	for _, s := range specs {
		acts := s.actions
		// Insertion sort keeps the compile dependency-free and the order
		// total: barrier time first, then document order.
		for i := 1; i < len(acts); i++ {
			for j := i; j > 0 && (acts[j].at < acts[j-1].at ||
				(acts[j].at == acts[j-1].at && acts[j].seq < acts[j-1].seq)); j-- {
				acts[j], acts[j-1] = acts[j-1], acts[j]
			}
		}
	}
	// The same total order for router actions: barrier, then document order,
	// then fleet index (one timeline entry fans out to one action per
	// targeted source server, compiled in fleet order above).
	for i := 1; i < len(racts); i++ {
		for j := i; j > 0 && (racts[j].At < racts[j-1].At ||
			(racts[j].At == racts[j-1].At && racts[j].Seq < racts[j-1].Seq)); j-- {
			racts[j], racts[j-1] = racts[j-1], racts[j]
		}
	}
	for i := 1; i < len(gacts); i++ {
		for j := i; j > 0 && (gacts[j].At < gacts[j-1].At ||
			(gacts[j].At == gacts[j-1].At && gacts[j].Seq < gacts[j-1].Seq)); j-- {
			gacts[j], gacts[j-1] = gacts[j-1], gacts[j]
		}
	}
	return specs, racts, gacts, nil
}

// baselineAt reports the plain-intensity baseline in effect at a barrier
// for one server: the last plain "intensity" entry targeting it at or
// before t, or 1.0. Flash crowds multiply this baseline rather than
// stacking on each other.
func (sc *Scenario) baselineAt(t sim.Time, s *serverSpec) float64 {
	base := 1.0
	for ti := range sc.Workload {
		e := &sc.Workload[ti]
		if e.Kind != TlIntensity || !e.Target.selects(&serverRun{index: s.index, group: s.group.Name}) {
			continue
		}
		if sc.barrier(e.AtMS) <= t {
			base = e.Intensity
		}
	}
	return base
}

// Report is one finished scenario run.
type Report struct {
	Scenario *Scenario
	Summary  string         // deterministic, byte-replayable rendering
	Asserts  []AssertResult // declared assertions, in document order
	Failed   int            // failed assertions + failed oracle checks
	Fleet    *route.Result  // router-side results (nil for routerless runs)
	Graph    *graph.Result  // dispatcher-side results (nil without a graph block)
}

// OK reports whether every assertion and oracle check passed.
func (r *Report) OK() bool { return r.Failed == 0 }

// Run executes a validated scenario and evaluates its assertions. On top
// of the declared assertions, the oracle's flow-balance and Little's-law
// checks run on every server of the fleet unconditionally — a scenario
// cannot opt out of conservation. Fleet servers run sharded (one engine per
// server, a worker per available CPU); RunShards selects the worker count
// explicitly.
func (sc *Scenario) Run() (*Report, error) { return sc.RunShards(0) }

// srvState is one fleet server being advanced inside the shard group: the
// live server plus its barrier-loop cursor. Each state is touched by exactly
// one advance call at a time; the group's window barriers order those calls.
type srvState struct {
	spec    *serverSpec
	srv     *cluster.Server
	meter   *obs.Meter
	audit   *obs.Audit
	barrier sim.Time
	next    int // next un-applied action
	applied int
	done    bool
	err     error
}

// advance runs the server's barrier loop up to simulated time `to`
// (inclusive): apply due actions, then step. Instead of pacing at the
// scenario step, it fast-forwards straight to the next action barrier or to
// `to` — by DESIGN §8's step-equivalence the barrier cadence never perturbs
// the event sequence, so skipping empty barriers is O(1) per gap and
// byte-neutral.
func (st *srvState) advance(to sim.Time) {
	if st.done || st.err != nil {
		return
	}
	acts := st.spec.actions
	for {
		for st.next < len(acts) && acts[st.next].at <= st.barrier {
			if err := applyAction(st.srv, acts[st.next], st.barrier); err != nil {
				st.err = err
				return
			}
			st.applied++
			st.next++
		}
		nb := to
		if h := st.srv.Horizon(); nb > h {
			nb = h
		}
		if st.next < len(acts) && acts[st.next].at < nb {
			nb = acts[st.next].at
		}
		if st.srv.StepTo(nb) {
			st.done = true
			return
		}
		if nb >= to {
			return
		}
		st.barrier = nb
	}
}

// step is the routed-mode advance: compiled actions are pre-scheduled as
// engine events (see scheduleActions), so the plain StepTo suffices. The
// barrier loop would be wrong here — it applies actions outside the event
// queue, where the group's conservative floors cannot see them, so another
// member could already hold a window grant past actionTime+lookahead when
// the action's side effects (e.g. an injected crash notifying the router)
// send it a message.
func (st *srvState) step(to sim.Time) {
	if st.done {
		return
	}
	if h := st.srv.Horizon(); to > h {
		to = h
	}
	st.done = st.srv.StepTo(to)
}

// scheduleActions installs the server's compiled actions as engine events
// so the shard group's floor computation accounts for them. An apply error
// is recorded and later actions are skipped, but the simulation keeps
// running — freezing the engine mid-group-run would stall every linked
// member's window cap.
func (st *srvState) scheduleActions() {
	for _, a := range st.spec.actions {
		a := a
		st.srv.Engine().At(a.at, func() {
			if st.err != nil {
				return
			}
			if err := applyAction(st.srv, a, a.at); err != nil {
				st.err = err
				return
			}
			st.applied++
		})
	}
}

// RunShards is Run with an explicit worker count: the fleet becomes a
// sim.ShardGroup with one member per server, advanced on up to `shards`
// goroutines (<= 0 selects GOMAXPROCS). Fleet servers exchange no events,
// so every member advances to the horizon in one conservative window; the
// group's window algorithm is independent of the worker count, so summaries
// are byte-identical at any shards value. Fleet servers record latencies in
// bounded sketch mode (stats.Sketch): memory stays flat across
// thousand-server, long-horizon runs.
func (sc *Scenario) RunShards(shards int) (*Report, error) {
	specs, racts, gacts, err := sc.compile()
	if err != nil {
		return nil, err
	}
	routed := sc.Routing != nil
	graphed := sc.Graph != nil
	group := sim.NewShardGroup(shards)
	states := make([]*srvState, len(specs))
	horizon := sim.Time(0)
	var rt *route.Router
	var gd *graph.Dispatcher
	if routed {
		// Routed mode: servers are built first (arrival generation off),
		// then the router joins the group as member 0, every server links
		// to it both ways at the network delay, and Bind installs the
		// reply/crash hooks before any server starts.
		rc, cerr := sc.Routing.toConfig()
		if cerr != nil {
			return nil, cerr
		}
		backends := make([]route.Backend, len(specs))
		for i, s := range specs {
			meter := obs.NewMeter()
			audit := obs.NewAudit()
			s.opts.Observer = obs.Multi(meter, audit)
			s.opts.SketchLatency = true
			s.opts.RemoteAdmission = true
			srv := cluster.NewServer(s.cfg, s.opts, s.work)
			states[i] = &srvState{spec: s, srv: srv, meter: meter, audit: audit}
			states[i].scheduleActions()
			backends[i] = route.Backend{
				Server: srv, Cfg: s.cfg,
				Name:   fmt.Sprintf("server%d[%s]", s.index, s.group.Name),
				Weight: 1 / s.group.effExecFactor(),
			}
		}
		rt = route.New(rc, backends)
		self := group.AddFunc(rt.Engine(), rt.Advance)
		members := make([]int, len(states))
		for i, st := range states {
			m := group.AddFunc(st.srv.Engine(), st.step)
			group.Link(self, m, rc.NetDelay)
			group.Link(m, self, rc.NetDelay)
			members[i] = m
		}
		rt.Bind(group, self, members)
		rt.SetActions(racts)
		for _, st := range states {
			st.srv.Start()
			if h := st.srv.Horizon(); h > horizon {
				horizon = h
			}
		}
	} else if graphed {
		// Graph mode mirrors routed mode: servers are built with arrival
		// generation off, the DAG dispatcher joins the group as member 0,
		// every server links to it both ways at the RPC delay, and Bind
		// installs the reply hooks before any server starts.
		spec := sc.Graph.spec
		byGroup := make(map[string][]int, len(sc.Fleet))
		backends := make([]graph.Backend, len(specs))
		for i, s := range specs {
			meter := obs.NewMeter()
			audit := obs.NewAudit()
			s.opts.Observer = obs.Multi(meter, audit)
			s.opts.SketchLatency = true
			s.opts.RemoteAdmission = true
			srv := cluster.NewServer(s.cfg, s.opts, s.work)
			states[i] = &srvState{spec: s, srv: srv, meter: meter, audit: audit}
			states[i].scheduleActions()
			backends[i] = graph.Backend{
				Server: srv, Cfg: s.cfg,
				Name: fmt.Sprintf("server%d[%s]", s.index, s.group.Name),
			}
			byGroup[s.group.Name] = append(byGroup[s.group.Name], i)
		}
		tiers := make([][]int, len(spec.Tiers))
		for ti := range spec.Tiers {
			tiers[ti] = byGroup[spec.Tiers[ti].Group]
		}
		gd = graph.New(spec, backends, tiers)
		self := group.AddFunc(gd.Engine(), gd.Advance)
		members := make([]int, len(states))
		for i, st := range states {
			m := group.AddFunc(st.srv.Engine(), st.step)
			group.Link(self, m, spec.NetDelay)
			group.Link(m, self, spec.NetDelay)
			members[i] = m
		}
		gd.Bind(group, self, members)
		gd.SetActions(gacts)
		for _, st := range states {
			st.srv.Start()
			if h := st.srv.Horizon(); h > horizon {
				horizon = h
			}
		}
	} else {
		for i, s := range specs {
			meter := obs.NewMeter()
			audit := obs.NewAudit()
			s.opts.Observer = obs.Multi(meter, audit)
			s.opts.SketchLatency = true
			srv := cluster.NewServer(s.cfg, s.opts, s.work)
			srv.Start()
			if h := srv.Horizon(); h > horizon {
				horizon = h
			}
			st := &srvState{spec: s, srv: srv, meter: meter, audit: audit}
			states[i] = st
			group.AddFunc(srv.Engine(), st.advance)
		}
	}
	group.Run(horizon)

	runs := make([]*serverRun, 0, len(specs))
	applied := make([]int, len(specs))
	for i, st := range states {
		if st.err != nil {
			return nil, fmt.Errorf("scenario: server %d: %w", st.spec.index, st.err)
		}
		res := st.srv.Finish()
		st.audit.Finish(res.AccountedEnd)
		applied[i] = st.applied
		runs = append(runs, &serverRun{
			index: st.spec.index, group: st.spec.group.Name, res: res, meter: st.meter, audit: st.audit,
		})
	}
	var fleet *route.Result
	if routed {
		fleet = rt.Finish()
		if sc.PerturbFleet {
			fleet.Generated++ // teeth check: the conservation oracle must notice
		}
	}
	var gres *graph.Result
	var gr *graphRun
	if graphed {
		gres = gd.Finish()
		if sc.PerturbGraphMC {
			// Teeth check for the Monte-Carlo cross-check: corrupt one tier's
			// measured hop distribution so the composed tails drift away from
			// the measured end-to-end sketch while every counter ledger (and
			// with it graph conservation) stays intact.
			hop := gres.Tiers[0].Hop
			inflated := hop.Max() * 10
			for i, n := 0, hop.Count()/5+1; i < n; i++ {
				hop.Add(inflated)
			}
		}
		gr = &graphRun{sc: sc, res: gres}
	}

	rep := &Report{Scenario: sc, Fleet: fleet, Graph: gres}
	oracleOK := 0
	oracleDetail := ""
	for _, r := range runs {
		for _, name := range []string{"flow_balance", "littles_law"} {
			c := metricsByName[name].check(r)
			if c.OK {
				oracleOK++
				continue
			}
			rep.Failed++
			if oracleDetail == "" {
				oracleDetail = fmt.Sprintf("%s FAIL on server %d [%s]: %s", name, r.index, r.group, c.Detail)
			}
		}
	}
	if routed {
		// The fleet-conservation oracle is as mandatory as the per-server
		// pair: a routed scenario cannot opt out of no-silent-loss.
		if c := fleet.Conservation("fleet"); c.OK {
			oracleOK++
		} else {
			rep.Failed++
			if oracleDetail == "" {
				oracleDetail = "fleet_conservation FAIL: " + c.Detail
			}
		}
	}
	if graphed {
		// Graph conservation is equally mandatory: a shed subtree must
		// still drain its joins, and the RPC ledgers must balance.
		if c := validate.GraphResultConservation("graph", gres); c.OK {
			oracleOK++
		} else {
			rep.Failed++
			if oracleDetail == "" {
				oracleDetail = "graph_conservation FAIL: " + c.Detail
			}
		}
	}
	for _, a := range sc.Assertions {
		ar := evalAssertion(a, runs, fleet, gr)
		if !ar.OK {
			rep.Failed++
		}
		rep.Asserts = append(rep.Asserts, ar)
	}
	rep.Summary = sc.renderSummary(specs, runs, applied, rep, oracleOK, oracleDetail, fleet, gres)
	return rep, nil
}

func applyAction(srv *cluster.Server, a action, at sim.Time) error {
	switch a.kind {
	case actIntensity:
		return srv.SetIntensity(a.x)
	case actVMIntensity:
		return srv.SetVMIntensity(a.vm, a.x)
	case actFaults:
		return srv.InjectFaultPlan(a.plan, at)
	case actResilience:
		srv.SetResilienceEnabled(a.on)
		return nil
	case actHarvestOnBlock:
		srv.SetHarvestOnBlock(a.on)
		return nil
	default:
		return fmt.Errorf("unknown action kind %d", a.kind)
	}
}

// renderSummary is the single scenario renderer: a pure function of the
// run's inputs and results — no wall-clock, no map iteration, no pointers —
// so identical scenarios produce byte-identical summaries.
func (sc *Scenario) renderSummary(specs []*serverSpec, runs []*serverRun,
	applied []int, rep *Report, oracleOK int, oracleDetail string,
	routed *route.Result, graphed *graph.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hhsim scenario summary ==\n")
	fmt.Fprintf(&b, "scenario=%s seed=%d servers=%d warmup=%dms measure=%dms step=%dms\n",
		sc.Name, sc.Seed, len(specs), sc.WarmupMS, sc.DurationMS, sc.StepMS)
	fleet := make([]string, len(sc.Fleet))
	for i := range sc.Fleet {
		g := &sc.Fleet[i]
		fleet[i] = fmt.Sprintf("%s=%dx %s/%s", g.Name, g.Count, g.System, g.Workload)
	}
	fmt.Fprintf(&b, "fleet: %s\n", strings.Join(fleet, "  "))
	if graphed != nil {
		spec := sc.Graph.spec
		tiers := make([]string, len(spec.Tiers))
		for i := range spec.Tiers {
			tiers[i] = spec.Tiers[i].Name
		}
		fmt.Fprintf(&b, "graph: root=%s rpc_delay_us=%s tiers=%s nodes=%d\n",
			spec.Tiers[spec.Root].Name, fnum(float64(spec.NetDelay)/float64(sim.Microsecond)),
			strings.Join(tiers, ","), spec.Nodes())
	}
	if routed != nil {
		r := sc.Routing
		fmt.Fprintf(&b, "routing: policy=%s net_delay_us=%s probe_ms=%s unhealthy_after=%d healthy_after=%d eject_after=%d eject_backoff_ms=%s max_failovers=%d\n",
			r.Policy, fnum(r.NetworkDelayUS), fnum(r.ProbeIntervalMS),
			r.UnhealthyAfter, r.HealthyAfter, r.EjectAfter, fnum(r.EjectBackoffMS), r.MaxFailovers)
	}
	for i, r := range runs {
		g := specs[i].group
		fmt.Fprintf(&b, "server %d [%s] cores=%d exec_factor=%s actions=%d\n",
			r.index, r.group, g.Cores, fnum(g.effExecFactor()), applied[i])
		fmt.Fprintf(&b, "  result: %s\n", r.res)
		fmt.Fprintf(&b, "  jobs=%d (%.0f/s) busy=%.2f\n",
			r.res.HarvestJobs, r.res.HarvestJobsPerSec, r.res.BusyCores)
		fmt.Fprintf(&b, "  counters: %s\n", r.meter.Counters())
		fmt.Fprintf(&b, "  latency:  %s\n", r.meter.Hist())
		if r.res.InvariantViolations > 0 {
			fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d (first: %s)\n",
				r.res.InvariantViolations, r.res.FirstViolation)
		}
	}
	if routed != nil {
		fmt.Fprintf(&b, "router: generated=%d dispatched=%d (initial=%d failovers=%d) completed=%d shed=%d lost=%d (at_admit=%d) inflight=%d\n",
			routed.Generated, routed.Dispatches, routed.InitialDispatches, routed.Failovers,
			routed.Completions, routed.Sheds, routed.Lost, routed.LostAtAdmit, routed.InflightEnd)
		fmt.Fprintf(&b, "  replies: done=%d shed=%d zombie_dones=%d zombie_sheds=%d outstanding=%d\n",
			routed.DoneRecv, routed.ShedRecv, routed.ZombieDones, routed.ZombieSheds, routed.OutstandingEnd)
		fmt.Fprintf(&b, "  health: probes=%d fails=%d ejections=%d readmits=%d drains=%d\n",
			routed.Probes, routed.ProbeFails, routed.Ejections, routed.Readmits, routed.Drains)
		fmt.Fprintf(&b, "  fleet latency: p50=%sms p99=%sms n=%d\n",
			fnum(routed.FleetLatency.P50()), fnum(routed.FleetLatency.P99()), routed.FleetLatency.Count())
		for _, br := range routed.Backends {
			fmt.Fprintf(&b, "  backend %s state=%s dispatched=%d done=%d shed=%d zombies=%d failovers_out=%d lost=%d unhealthy_spells=%d crashes=%d edge_p99=%sms\n",
				br.Name, br.State, br.Dispatches, br.Dones, br.Sheds,
				br.ZombieDones+br.ZombieSheds, br.FailoversOut, br.Lost,
				br.UnhealthySpells, br.Crashes, fnum(br.EdgeLatency.P99()))
		}
	}
	if graphed != nil {
		fmt.Fprintf(&b, "dag: generated=%d completed=%d failed=%d inflight=%d\n",
			graphed.Generated, graphed.Completed, graphed.Failed, graphed.InflightEnd)
		fmt.Fprintf(&b, "  rpcs: dispatched=%d done=%d shed=%d outstanding=%d\n",
			graphed.Dispatches, graphed.DoneRecv, graphed.ShedRecv, graphed.OutstandingEnd)
		fmt.Fprintf(&b, "  e2e latency: p50=%sms p99=%sms n=%d\n",
			fnum(graphed.E2E.P50()), fnum(graphed.E2E.P99()), graphed.E2E.Count())
		for _, tr := range graphed.Tiers {
			fmt.Fprintf(&b, "  tier %s servers=%d vm=%d rpcs=%d done=%d shed=%d hop_p50=%sms hop_p99=%sms\n",
				tr.Name, tr.Servers, tr.VM, tr.Dispatches, tr.Dones, tr.Sheds,
				fnum(tr.Hop.P50()), fnum(tr.Hop.P99()))
		}
	}
	oracleTotal := 2 * len(runs)
	if routed != nil {
		oracleTotal++
	}
	if graphed != nil {
		oracleTotal++
	}
	if oracleDetail == "" {
		switch {
		case routed != nil:
			fmt.Fprintf(&b, "oracle: flow-balance+littles-law PASS on %d/%d servers; fleet conservation PASS\n",
				len(runs), len(runs))
		case graphed != nil:
			fmt.Fprintf(&b, "oracle: flow-balance+littles-law PASS on %d/%d servers; graph conservation PASS\n",
				len(runs), len(runs))
		default:
			fmt.Fprintf(&b, "oracle: flow-balance+littles-law PASS on %d/%d servers\n", len(runs), len(runs))
		}
	} else {
		fmt.Fprintf(&b, "oracle: %d/%d checks passed; first failure: %s\n",
			oracleOK, oracleTotal, oracleDetail)
	}
	if len(rep.Asserts) > 0 {
		fmt.Fprintf(&b, "assertions:\n")
		for _, ar := range rep.Asserts {
			status := "PASS"
			if !ar.OK {
				status = "FAIL"
			}
			fmt.Fprintf(&b, "  %s %s %s [%s] — %s\n",
				status, ar.Assertion.Metric, ar.Assertion.bounds(), ar.Assertion.Target, ar.Detail)
		}
	}
	verdict := "PASS"
	if rep.Failed > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "result: %s (%d assertions, %d oracle checks, %d failed)\n",
		verdict, len(rep.Asserts), oracleTotal, rep.Failed)
	return b.String()
}
