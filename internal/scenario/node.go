// Package scenario implements the declarative fleet-scenario format: a
// YAML-subset or JSON document with four sections — fleet definition,
// workload timeline, event script, and end-of-run assertions — compiled
// into barrier-aligned control actions over the internal/cluster live
// surface and executed deterministically (same scenario + seed ⇒
// byte-identical summary).
//
// Both front ends parse into the same line-tracked node tree, so every
// parse or semantic error names its position as "file:line: field: why".
// The YAML loader is a hand-rolled subset (block maps, block lists,
// scalars, comments, single-line JSON flow values) in keeping with the
// repo's no-new-dependencies convention; JSON files are tokenized with the
// stdlib decoder.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hardharvest/internal/jsonx"
)

// nodeKind discriminates the three node shapes of a parsed document.
type nodeKind int

const (
	nScalar nodeKind = iota
	nMap
	nList
)

func (k nodeKind) String() string {
	switch k {
	case nScalar:
		return "scalar"
	case nMap:
		return "mapping"
	case nList:
		return "list"
	default:
		return fmt.Sprintf("nodeKind(%d)", int(k))
	}
}

// node is one value of a parsed scenario document with its source line.
// Scalars keep their raw text plus a quoted flag so "1.5" (a string) and
// 1.5 (a number) stay distinguishable during schema decoding.
type node struct {
	line int
	kind nodeKind

	// Scalar state.
	scalar string
	quoted bool

	// Map state: keys in document order, child values, and the line each
	// key appeared on (error positions point at the key, not the value).
	keys     []string
	children map[string]*node
	keyLines map[string]int

	// List state.
	items []*node
}

func newMapNode(line int) *node {
	return &node{line: line, kind: nMap, children: map[string]*node{}, keyLines: map[string]int{}}
}

// child returns the value for key, or nil.
func (n *node) child(key string) *node {
	if n.kind != nMap {
		return nil
	}
	return n.children[key]
}

// keyLine reports the line a map key appeared on (the node's own line if
// unknown).
func (n *node) keyLine(key string) int {
	if l, ok := n.keyLines[key]; ok {
		return l
	}
	return n.line
}

// addChild inserts a map entry, rejecting duplicates.
func (n *node) addChild(key string, line int, v *node) error {
	if _, dup := n.children[key]; dup {
		return fmt.Errorf("line %d: duplicate key %q", line, key)
	}
	n.keys = append(n.keys, key)
	n.children[key] = v
	n.keyLines[key] = line
	return nil
}

// toAny converts a node tree to plain Go values (map[string]any,
// []any, string, json.Number, bool, nil) — the bridge used to re-encode a
// scenario's inline fault plan as JSON for faults.Parse, so plan
// validation stays in exactly one place.
func (n *node) toAny() any {
	switch n.kind {
	case nMap:
		m := make(map[string]any, len(n.keys))
		for _, k := range n.keys {
			m[k] = n.children[k].toAny()
		}
		return m
	case nList:
		s := make([]any, len(n.items))
		for i, it := range n.items {
			s[i] = it.toAny()
		}
		return s
	default:
		if n.quoted {
			return n.scalar
		}
		switch n.scalar {
		case "", "null", "~":
			return nil
		case "true":
			return true
		case "false":
			return false
		}
		if _, err := strconv.ParseFloat(n.scalar, 64); err == nil {
			return json.Number(n.scalar)
		}
		return n.scalar
	}
}

// parseJSONTree parses one JSON document into a node tree using the stdlib
// tokenizer, tracking the line each value starts on via the decoder's
// input offset.
func parseJSONTree(data []byte) (*node, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	root, err := jsonValue(dec, data)
	if err != nil {
		return nil, err
	}
	if dec.More() {
		line, _ := jsonx.LineCol(data, dec.InputOffset())
		return nil, fmt.Errorf("line %d: trailing data after the document", line)
	}
	return root, nil
}

// jsonLine reports the 1-based line of the token the decoder just
// consumed. InputOffset points one past the token, so backing up one byte
// lands inside it — which keeps a value ending exactly at a newline
// attributed to its own line.
func jsonLine(dec *json.Decoder, data []byte) int {
	off := dec.InputOffset()
	if off > 0 {
		off--
	}
	line, _ := jsonx.LineCol(data, off)
	return line
}

func jsonValue(dec *json.Decoder, data []byte) (*node, error) {
	tok, err := dec.Token()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("line 1: empty document")
		}
		return nil, fmt.Errorf("%s", jsonx.DescribeError(data, err))
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			n := newMapNode(jsonLine(dec, data))
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("%s", jsonx.DescribeError(data, err))
				}
				key, _ := keyTok.(string) // object keys are always strings
				keyLine := jsonLine(dec, data)
				val, err := jsonValue(dec, data)
				if err != nil {
					return nil, err
				}
				if err := n.addChild(key, keyLine, val); err != nil {
					return nil, err
				}
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, fmt.Errorf("%s", jsonx.DescribeError(data, err))
			}
			return n, nil
		default: // '['
			n := &node{line: jsonLine(dec, data), kind: nList}
			for dec.More() {
				item, err := jsonValue(dec, data)
				if err != nil {
					return nil, err
				}
				n.items = append(n.items, item)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, fmt.Errorf("%s", jsonx.DescribeError(data, err))
			}
			return n, nil
		}
	case string:
		return &node{line: jsonLine(dec, data), kind: nScalar, scalar: t, quoted: true}, nil
	case json.Number:
		return &node{line: jsonLine(dec, data), kind: nScalar, scalar: t.String()}, nil
	case bool:
		s := "false"
		if t {
			s = "true"
		}
		return &node{line: jsonLine(dec, data), kind: nScalar, scalar: s}, nil
	default: // nil
		return &node{line: jsonLine(dec, data), kind: nScalar, scalar: "null"}, nil
	}
}
