package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// okYAML is a small fully-featured scenario used as the mutation base for
// the diagnostics table: every section present, every error case below is
// one edit away.
const okYAML = `name: smoke
description: "parser fixture"
seed: 3
warmup_ms: 10
duration_ms: 60
step_ms: 10
fleet:
  - group: web
    count: 2
    system: HardHarvest-Block
    workload: BFS
  - group: legacy
    count: 1
    system: NoHarvest
    generation: gen1
workload:
  - at_ms: 20
    kind: intensity
    intensity: 1.5
    group: web
  - at_ms: 20
    kind: flash_crowd
    factor: 3
    duration_ms: 20
events:
  - at_ms: 30
    kind: resilience
    on: true
  - at_ms: 10
    kind: faults
    server: 0
    plan: {"events": [{"at_ms": 2, "kind": "core_offline", "core": 1, "duration_ms": 5}]}
assertions:
  - metric: completions
    min: 1
  - metric: flow_balance
`

func TestParseValidScenario(t *testing.T) {
	sc, err := Parse([]byte(okYAML), false, "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "smoke" || sc.Seed != 3 || sc.Servers() != 3 {
		t.Fatalf("header decoded wrong: %+v", sc)
	}
	if len(sc.Fleet) != 2 || sc.Fleet[1].Generation != "gen1" {
		t.Fatalf("fleet decoded wrong: %+v", sc.Fleet)
	}
	if got := sc.Fleet[1].effExecFactor(); got != generations["gen1"] {
		t.Fatalf("gen1 exec factor = %g", got)
	}
	if len(sc.Workload) != 2 || sc.Workload[0].Target.Group != "web" {
		t.Fatalf("workload decoded wrong: %+v", sc.Workload)
	}
	if len(sc.Events) != 2 || sc.Events[1].Plan == nil || len(sc.Events[1].Plan.Events) != 1 {
		t.Fatalf("events decoded wrong: %+v", sc.Events)
	}
	if len(sc.Assertions) != 2 || sc.Assertions[0].Min == nil || *sc.Assertions[0].Min != 1 {
		t.Fatalf("assertions decoded wrong: %+v", sc.Assertions)
	}
}

// TestLoadDiagnostics pins the file:line: field shape of every decode and
// semantic failure mode the format rejects — the satellite-4 table. Each
// case is the valid fixture with one line's worth of damage.
func TestLoadDiagnostics(t *testing.T) {
	edit := func(old, new string) string {
		if !strings.Contains(okYAML, old) {
			t.Fatalf("fixture lost mutation anchor %q", old)
		}
		return strings.Replace(okYAML, old, new, 1)
	}
	cases := []struct {
		name string
		doc  string
		want []string // all must appear in the error
	}{
		{
			name: "unknown top-level field",
			doc:  edit("seed: 3", "sneed: 3"),
			want: []string{"scenario.yaml:3: sneed: unknown field", "want one of"},
		},
		{
			name: "unknown fleet field",
			doc:  edit("count: 2", "cuont: 2"),
			want: []string{"scenario.yaml:9: fleet[0].cuont: unknown field"},
		},
		{
			name: "wrong type for count",
			doc:  edit("count: 2", "count: two"),
			want: []string{"scenario.yaml:9: fleet[0].count: want an integer, got \"two\""},
		},
		{
			name: "wrong type for intensity",
			doc:  edit("intensity: 1.5", `intensity: "1.5"`),
			want: []string{"scenario.yaml:19: workload[0].intensity: want a number, got a string"},
		},
		{
			name: "wrong type for on",
			doc:  edit("on: true", "on: yes"),
			want: []string{"scenario.yaml:28: events[0].on: want true or false"},
		},
		{
			name: "out-of-range timestamp",
			doc:  edit("at_ms: 30", "at_ms: 4000"),
			want: []string{"scenario.yaml:26: events[0].at_ms:", "lands on barrier 4000ms, past the last in-run barrier"},
		},
		{
			name: "negative timestamp",
			doc:  edit("at_ms: 20\n    kind: intensity", "at_ms: -1\n    kind: intensity"),
			want: []string{"scenario.yaml:17: workload[0].at_ms: must be non-negative"},
		},
		{
			name: "flash crowd running past the window",
			doc:  edit("duration_ms: 20\nevents:", "duration_ms: 2000\nevents:"),
			want: []string{"scenario.yaml:21: workload[1].duration_ms:", "past the last in-run barrier"},
		},
		{
			name: "assertion on nonexistent metric",
			doc:  edit("metric: completions", "metric: p99_parsecs"),
			want: []string{"scenario.yaml:34: assertions[0].metric: unknown metric \"p99_parsecs\"", "want one of"},
		},
		{
			name: "oracle check with a bound",
			doc:  edit("metric: flow_balance", "metric: flow_balance\n    max: 1"),
			want: []string{"scenario.yaml:36: assertions[1]: oracle check \"flow_balance\" takes no min/max bounds"},
		},
		{
			name: "assertion without bounds",
			doc:  edit("metric: completions\n    min: 1", "metric: completions"),
			want: []string{"assertions[0]: metric \"completions\" needs a min or max bound"},
		},
		{
			name: "unknown system",
			doc:  edit("system: NoHarvest", "system: YoloHarvest"),
			want: []string{"scenario.yaml:14: fleet[1].system: unknown system \"YoloHarvest\""},
		},
		{
			name: "unknown workload",
			doc:  edit("workload: BFS", "workload: Minesweeper"),
			want: []string{"fleet[0].workload: batch: unknown workload"},
		},
		{
			name: "unknown generation",
			doc:  edit("generation: gen1", "generation: gen9"),
			want: []string{"fleet[1].generation: unknown generation \"gen9\"", "gen1, gen2, gen3"},
		},
		{
			name: "unknown group reference",
			doc:  edit("group: web\n  - at_ms: 20", "group: wbe\n  - at_ms: 20"),
			want: []string{"scenario.yaml:20: workload[0].group: unknown fleet group \"wbe\""},
		},
		{
			name: "server index out of range",
			doc:  edit("server: 0", "server: 12"),
			want: []string{"events[1].server: server 12 out of range (fleet has 3 servers)"},
		},
		{
			name: "core shape exceeds server",
			doc:  edit("count: 2", "count: 2\n    cores: 12"),
			want: []string{"fleet[0].cores: 8 primary_vms x 4 cores + 4 harvest cores = 36 exceeds cores=12"},
		},
		{
			name: "duplicate group name",
			doc:  edit("group: legacy", "group: web"),
			want: []string{"fleet[1].group: duplicate group name \"web\""},
		},
		{
			name: "duplicate key",
			doc:  edit("seed: 3", "seed: 3\nseed: 4"),
			want: []string{"scenario.yaml:4: duplicate key \"seed\""},
		},
		{
			name: "tab indentation",
			doc:  edit("seed: 3", "\tseed: 3"),
			want: []string{"scenario.yaml:3: tab in indentation"},
		},
		{
			name: "bad inline plan",
			doc:  edit(`"duration_ms": 5`, `"duration_ms": -5`),
			want: []string{"scenario.yaml:32: events[1].plan:", "events[0].duration_ms"},
		},
		{
			name: "faults event without a plan",
			doc: edit("    plan: {\"events\": [{\"at_ms\": 2, \"kind\": \"core_offline\", \"core\": 1, \"duration_ms\": 5}]}\n",
				""),
			want: []string{"events[1]: kind \"faults\" needs exactly one of plan or plan_file"},
		},
		{
			name: "unknown event kind",
			doc:  edit("kind: resilience", "kind: chaos_monkey"),
			want: []string{"events[0].kind: unknown event kind \"chaos_monkey\""},
		},
		{
			name: "unknown timeline kind",
			doc:  edit("kind: flash_crowd", "kind: tsunami"),
			want: []string{"workload[1].kind: unknown timeline kind \"tsunami\""},
		},
		{
			name: "step larger than duration",
			doc:  edit("step_ms: 10", "step_ms: 600"),
			want: []string{"step_ms: barrier step 600ms exceeds duration_ms 60"},
		},
		{
			name: "missing name",
			doc:  edit("name: smoke\n", ""),
			want: []string{"name: required"},
		},
		{
			name: "group and server both set",
			doc:  edit("server: 0", "server: 0\n    group: web"),
			want: []string{"events[1]: group and server are mutually exclusive"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "scenario.yaml")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(path)
			if err == nil {
				t.Fatal("damaged scenario unexpectedly loaded")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\nmissing %q", err, w)
				}
			}
		})
	}
}

// TestParseJSONFrontEnd: the same scenario expressed as JSON decodes to the
// same result, and JSON errors carry line positions too.
func TestParseJSONFrontEnd(t *testing.T) {
	doc := `{
  "name": "j",
  "duration_ms": 40,
  "step_ms": 10,
  "fleet": [{"group": "web", "count": 1}],
  "assertions": [{"metric": "completions", "min": 0}]
}`
	sc, err := Parse([]byte(doc), true, "")
	if err != nil {
		t.Fatalf("Parse JSON: %v", err)
	}
	if sc.Name != "j" || sc.Servers() != 1 || sc.Fleet[0].System != "HardHarvest-Block" {
		t.Fatalf("JSON scenario decoded wrong: %+v", sc)
	}

	bad := strings.Replace(doc, `"count": 1`, `"count": "one"`, 1)
	_, err = Parse([]byte(bad), true, "")
	if err == nil || !strings.Contains(err.Error(), "line 5: fleet[0].count: want an integer") {
		t.Fatalf("JSON type error not positioned: %v", err)
	}

	_, err = Parse([]byte(doc+"{}"), true, "")
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing JSON accepted: %v", err)
	}
}

// TestYAMLParserConstructs covers the subset loader's syntax corners.
func TestYAMLParserConstructs(t *testing.T) {
	doc := `# leading comment
---
top: "quoted # not a comment"
single: 'it''s fine'
n: 1.25
flag: false
empty:
nested:
  inner:
    - 1
    - two
  flow: {"a": [1, 2], "b": null}
list:
  - bare
  - key: v
    other: w
flows:
  - {"at_ms": 0, "kind": "crash"}
`
	n, err := parseYAMLTree([]byte(doc))
	if err != nil {
		t.Fatalf("parseYAMLTree: %v", err)
	}
	if got := n.child("top").scalar; got != "quoted # not a comment" {
		t.Errorf("double-quoted scalar = %q", got)
	}
	if got := n.child("single").scalar; got != "it's fine" {
		t.Errorf("single-quoted scalar = %q", got)
	}
	if got := n.child("empty").scalar; got != "" || n.child("empty").quoted {
		t.Errorf("empty value = %+v", n.child("empty"))
	}
	inner := n.child("nested").child("inner")
	if inner.kind != nList || len(inner.items) != 2 || inner.items[1].scalar != "two" {
		t.Errorf("nested list = %+v", inner)
	}
	flow := n.child("nested").child("flow")
	if flow.kind != nMap || len(flow.child("a").items) != 2 {
		t.Errorf("flow value = %+v", flow)
	}
	if flow.line != 12 || flow.child("a").line != 12 {
		t.Errorf("flow lines not stamped: %d/%d", flow.line, flow.child("a").line)
	}
	items := n.child("list").items
	if len(items) != 2 || items[1].kind != nMap || items[1].child("other").scalar != "w" {
		t.Errorf("list items = %+v", items)
	}
	if l := n.keyLine("n"); l != 5 {
		t.Errorf("key line for n = %d, want 5", l)
	}
	// A flow map as a list item must not be misread as an inline
	// "key: value" entry (the colon inside the braces is not a map key).
	flows := n.child("flows").items
	if len(flows) != 1 || flows[0].kind != nMap || flows[0].child("kind").scalar != "crash" {
		t.Errorf("flow list item = %+v", flows)
	}

	for _, bad := range []struct{ doc, want string }{
		{"a: 1\n---\nb: 2\n", "multi-document"},
		{"a: 'unterminated\n", "unterminated"},
		{"a: \"bad \\q escape\"\n", "unsupported escape"},
		{"", "empty document"},
		{"   \n# just comments\n", "empty document"},
		{"a:\n  b: 1\n c: 2\n", "unexpected indentation"},
		{"a: 1\n- item\n", "unexpected list item inside a mapping"},
		{"just a scalar line\n", `expected "key: value"`},
		{"a: {\"broken\": \n", "flow value"},
	} {
		if _, err := parseYAMLTree([]byte(bad.doc)); err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("doc %q: want error containing %q, got %v", bad.doc, bad.want, err)
		}
	}
}

// TestNodeToAny: the fault-plan bridge must preserve JSON types.
func TestNodeToAny(t *testing.T) {
	n, err := parseYAMLTree([]byte("s: \"x\"\nn: 2.5\nb: true\nz: null\nl:\n  - 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := n.toAny().(map[string]any)
	if m["s"] != "x" || string(m["n"].(interface{ String() string }).String()) != "2.5" ||
		m["b"] != true || m["z"] != nil {
		t.Fatalf("toAny = %#v", m)
	}
	if l := m["l"].([]any); len(l) != 1 {
		t.Fatalf("list bridge = %#v", m["l"])
	}
}
