package noc

import (
	"testing"

	"hardharvest/internal/sim"
)

func TestTreeDepth(t *testing.T) {
	c := DefaultTree()
	// 36 cores at radix 4: ceil(log4(36)) = 3 levels.
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	one := TreeConfig{Cores: 1, Radix: 4, HopCycles: 2, RouterCycles: 1}
	if one.Depth() != 1 {
		t.Fatal("single-core depth")
	}
}

func TestTreeLatencies(t *testing.T) {
	c := DefaultTree()
	up := c.CoreToController()
	if up != sim.Cycles(3*2+3*1) {
		t.Fatalf("core->controller = %v", up)
	}
	if c.ControllerToCore() != up {
		t.Fatal("asymmetric tree")
	}
	if c.RoundTrip() != 2*up {
		t.Fatal("round trip != 2x one way")
	}
	// The dedicated tree beats the data mesh's mean path — the reason the
	// controller gets its own network (§4.1.8).
	if up >= DefaultMesh().MeanLatencyToCenter() {
		t.Fatalf("control tree %v not faster than mesh mean %v", up, DefaultMesh().MeanLatencyToCenter())
	}
}

func TestCoreToCore(t *testing.T) {
	c := DefaultTree()
	if c.CoreToCore(5, 5) != 0 {
		t.Fatal("self distance")
	}
	// Cores 0 and 1 share the first-level router: 2 hops.
	if got := c.CoreToCore(0, 1); got != sim.Cycles(2*2+2*1) {
		t.Fatalf("siblings = %v", got)
	}
	// Cores 0 and 35 meet at the root: 6 hops.
	if got := c.CoreToCore(0, 35); got != sim.Cycles(6*2+6*1) {
		t.Fatalf("far pair = %v", got)
	}
	if c.CoreToCore(0, 35) <= c.CoreToCore(0, 1) {
		t.Fatal("distance ordering")
	}
}

func TestTreeValidation(t *testing.T) {
	bad := TreeConfig{Cores: 0, Radix: 4, HopCycles: 2}
	defer func() {
		if recover() == nil {
			t.Error("invalid config should panic")
		}
	}()
	bad.CoreToController()
}

func TestMesh(t *testing.T) {
	m := DefaultMesh()
	if m.Latency(0, 0) != 0 {
		t.Fatal("self latency")
	}
	// Corner to corner: 10 hops x 5 cycles.
	if got := m.WorstCase(); got != sim.Cycles(50) {
		t.Fatalf("worst case = %v", got)
	}
	if m.Latency(0, 35) != m.WorstCase() {
		t.Fatal("corner pair should be worst case")
	}
	if m.Latency(0, 1) != sim.Cycles(5) {
		t.Fatalf("adjacent = %v", m.Latency(0, 1))
	}
	mean := m.MeanLatencyToCenter()
	if mean <= 0 || mean >= m.WorstCase() {
		t.Fatalf("mean-to-center = %v", mean)
	}
}
