// Package noc models the dedicated control network of §4.1.8: the
// HardHarvest controller is a centralized module reached over its own
// network, separate from the regular data NoC, because control messages are
// latency- (not bandwidth-) sensitive. The paper uses a tree topology with
// thin links; this package computes message latencies over such a tree and
// provides the regular-mesh latency for comparison (Table 1: 2D mesh,
// 5 cycles/hop).
package noc

import (
	"fmt"
	"math"

	"hardharvest/internal/sim"
)

// TreeConfig describes the dedicated control tree.
type TreeConfig struct {
	// Cores is the number of leaf endpoints (cores).
	Cores int
	// Radix is the tree fan-out (4 gives a shallow tree at 36 cores).
	Radix int
	// HopCycles is the per-hop link traversal in cycles; thin control
	// links are narrow but fast.
	HopCycles int64
	// RouterCycles is the per-router arbitration cost.
	RouterCycles int64
}

// DefaultTree returns the configuration used by the evaluation: 36 cores,
// radix-4 tree, 2 cycles per hop, 1 cycle per router.
func DefaultTree() TreeConfig {
	return TreeConfig{Cores: 36, Radix: 4, HopCycles: 2, RouterCycles: 1}
}

func (c TreeConfig) validate() error {
	if c.Cores <= 0 || c.Radix < 2 || c.HopCycles <= 0 || c.RouterCycles < 0 {
		return fmt.Errorf("noc: invalid tree config %+v", c)
	}
	return nil
}

// Depth reports the number of tree levels between a leaf and the root
// (where the controller sits).
func (c TreeConfig) Depth() int {
	if c.Cores <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(c.Cores)) / math.Log(float64(c.Radix))))
}

// CoreToController reports the one-way latency of a control message from a
// core to the controller at the tree root.
func (c TreeConfig) CoreToController() sim.Duration {
	if err := c.validate(); err != nil {
		panic(err)
	}
	d := int64(c.Depth())
	return sim.Cycles(d*c.HopCycles + d*c.RouterCycles)
}

// ControllerToCore is symmetric to CoreToController.
func (c TreeConfig) ControllerToCore() sim.Duration { return c.CoreToController() }

// RoundTrip reports a request/response pair over the control tree (e.g., a
// dequeue instruction reaching the QM and the request pointer coming back).
func (c TreeConfig) RoundTrip() sim.Duration {
	return c.CoreToController() + c.ControllerToCore()
}

// CoreToCore reports the latency between two leaf cores through their
// lowest common ancestor; the worst case traverses the root.
func (c TreeConfig) CoreToCore(a, b int) sim.Duration {
	if err := c.validate(); err != nil {
		panic(err)
	}
	if a == b {
		return 0
	}
	lvl := 0
	for a != b {
		a /= c.Radix
		b /= c.Radix
		lvl++
	}
	hops := int64(2 * lvl)
	return sim.Cycles(hops*c.HopCycles + hops*c.RouterCycles)
}

// MeshConfig is the regular data NoC of Table 1 (2D mesh, 5 cycles/hop),
// used to compare against the dedicated tree.
type MeshConfig struct {
	Width, Height int
	HopCycles     int64
}

// DefaultMesh returns the 6x6 mesh of the 36-core server.
func DefaultMesh() MeshConfig {
	return MeshConfig{Width: 6, Height: 6, HopCycles: 5}
}

// Latency reports the XY-routed mesh latency between two cores (ids are
// row-major positions).
func (m MeshConfig) Latency(a, b int) sim.Duration {
	ax, ay := a%m.Width, a/m.Width
	bx, by := b%m.Width, b/m.Width
	hops := int64(abs(ax-bx) + abs(ay-by))
	return sim.Cycles(hops * m.HopCycles)
}

// WorstCase reports the corner-to-corner mesh latency.
func (m MeshConfig) WorstCase() sim.Duration {
	return sim.Cycles(int64(m.Width-1+m.Height-1) * m.HopCycles)
}

// MeanLatencyToCenter approximates the mean latency from all cores to a
// centrally placed module (where a memory-mapped queue would live).
func (m MeshConfig) MeanLatencyToCenter() sim.Duration {
	cx, cy := (m.Width-1)/2, (m.Height-1)/2
	var total int64
	n := 0
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			total += int64(abs(x-cx) + abs(y-cy))
			n++
		}
	}
	return sim.Cycles(total * m.HopCycles / int64(n))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
