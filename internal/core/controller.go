package core

import "fmt"

// Controller is the HardHarvest hardware controller: a centralized module
// reached over a dedicated low-latency control network (§4.1.8). It owns the
// physical RQ, the Queue Managers, and the core↔QM bindings (each core's
// MyManager register), and it makes all harvesting and reclamation decisions
// in hardware.
type Controller struct {
	rq     *RQ
	maxQMs int
	qms    map[VMID]*QueueManager
	// vmOrder preserves registration order for deterministic decisions.
	vmOrder []VMID

	binding     map[CoreID]VMID // MyManager registers
	coreState   map[CoreID]CoreState
	coreRunning map[CoreID]*Request
	runningVM   map[CoreID]VMID // VM of the request a core runs
	lastVM      map[CoreID]VMID // VM whose state is resident in the core's caches

	// nextHarvest rotates loan targets across Harvest VMs.
	nextHarvest int
	// hvmScratch backs harvestVMsWithWork: the candidate list is rebuilt on
	// every idle-primary dequeue, so it reuses one buffer instead of
	// allocating per call.
	hvmScratch []VMID

	// Stats.
	loans    uint64
	reclaims uint64
	wakes    uint64
}

// NewController builds a controller with the given RQ geometry and QM count
// (Table 1 defaults: 32 chunks x 64 entries, 16 QMs).
func NewController(numChunks, chunkEntries, maxQMs int) *Controller {
	if maxQMs <= 0 {
		panic("core: controller needs at least one QM")
	}
	return &Controller{
		rq:          NewRQ(numChunks, chunkEntries),
		maxQMs:      maxQMs,
		qms:         make(map[VMID]*QueueManager),
		binding:     make(map[CoreID]VMID),
		coreState:   make(map[CoreID]CoreState),
		coreRunning: make(map[CoreID]*Request),
		runningVM:   make(map[CoreID]VMID),
		lastVM:      make(map[CoreID]VMID),
	}
}

// DefaultController builds a controller with Table 1 parameters.
func DefaultController() *Controller {
	return NewController(DefaultNumChunks, DefaultChunkEntries, 16)
}

// RQ exposes the physical request queue (read-only use intended).
func (c *Controller) RQ() *RQ { return c.rq }

// QM returns the Queue Manager serving vm, or nil.
func (c *Controller) QM(vm VMID) *QueueManager { return c.qms[vm] }

// VMs returns the registered VMs in registration order.
func (c *Controller) VMs() []VMID {
	out := make([]VMID, len(c.vmOrder))
	copy(out, c.vmOrder)
	return out
}

// Loans reports the number of cross-VM core loans performed.
func (c *Controller) Loans() uint64 { return c.loans }

// Reclaims reports the number of preemptive core reclamations.
func (c *Controller) Reclaims() uint64 { return c.reclaims }

// AddVM registers a VM: it is assigned a Queue Manager and a VM State
// Register Set, and the RQ chunk shares are rebalanced (§4.1.2).
func (c *Controller) AddVM(vm VMID, isPrimary bool, mask HarvestMask) error {
	if _, ok := c.qms[vm]; ok {
		return fmt.Errorf("%w: %d", ErrVMExists, vm)
	}
	if len(c.qms) >= c.maxQMs {
		return ErrNoQMAvail
	}
	qm := newQueueManager(vm, isPrimary, c.rq.NumChunks())
	qm.SetMask(mask)
	c.qms[vm] = qm
	c.vmOrder = append(c.vmOrder, vm)
	c.Rebalance()
	return nil
}

// RemoveVM deregisters a VM; its chunks return to the pool and are
// redistributed to the remaining VMs.
func (c *Controller) RemoveVM(vm VMID) error {
	qm, ok := c.qms[vm]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownVM, vm)
	}
	for qm.rqMap.Len() > 0 {
		qm.rqMap.DropTail()
	}
	c.rq.release(vm)
	delete(c.qms, vm)
	for i, v := range c.vmOrder {
		if v == vm {
			c.vmOrder = append(c.vmOrder[:i], c.vmOrder[i+1:]...)
			break
		}
	}
	for core, b := range c.binding {
		if b == vm {
			delete(c.binding, core)
			delete(c.coreState, core)
			delete(c.coreRunning, core)
			delete(c.runningVM, core)
			delete(c.lastVM, core)
		}
	}
	c.Rebalance()
	return nil
}

// BindCore sets a core's MyManager register to vm's QM.
func (c *Controller) BindCore(core CoreID, vm VMID) error {
	if _, ok := c.qms[vm]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownVM, vm)
	}
	if _, bound := c.binding[core]; bound {
		return fmt.Errorf("%w: core %d", ErrCoreBound, core)
	}
	c.binding[core] = vm
	c.coreState[core] = CoreIdle
	c.qms[vm].boundCores[core] = true
	c.Rebalance()
	return nil
}

// Binding reports the VM a core is bound to.
func (c *Controller) Binding(core CoreID) (VMID, bool) {
	vm, ok := c.binding[core]
	return vm, ok
}

// State reports a core's controller-tracked state.
func (c *Controller) State(core CoreID) CoreState { return c.coreState[core] }

// Running reports the request a core currently executes (nil if none) and
// the VM it belongs to.
func (c *Controller) Running(core CoreID) (*Request, VMID) {
	return c.coreRunning[core], c.runningVM[core]
}

// Rebalance recomputes each VM's chunk share in proportion to its bound
// cores (§4.1.2). VMs donate chunks from the tails of their subqueues;
// entries in donated chunks spill to the in-memory overflow subqueue.
func (c *Controller) Rebalance() {
	if len(c.vmOrder) == 0 {
		return
	}
	totalCores := 0
	for _, vm := range c.vmOrder {
		n := len(c.qms[vm].boundCores)
		if n == 0 {
			n = 1 // a coreless VM still gets a minimal share
		}
		totalCores += n
	}
	targets := make(map[VMID]int, len(c.vmOrder))
	sum := 0
	for _, vm := range c.vmOrder {
		n := len(c.qms[vm].boundCores)
		if n == 0 {
			n = 1
		}
		t := c.rq.NumChunks() * n / totalCores
		if t < 1 {
			t = 1
		}
		targets[vm] = t
		sum += t
	}
	// Trim if the minimums overshoot the physical chunks.
	for sum > c.rq.NumChunks() {
		trimmed := false
		for _, vm := range c.vmOrder {
			if targets[vm] > 1 {
				targets[vm]--
				sum--
				trimmed = true
				if sum == c.rq.NumChunks() {
					break
				}
			}
		}
		if !trimmed {
			break
		}
	}
	// Shrink donors first so chunks return to the free pool.
	for _, vm := range c.vmOrder {
		qm := c.qms[vm]
		for qm.rqMap.Len() > targets[vm] {
			ch := qm.rqMap.DropTail()
			c.rq.transfer(ch, -1)
		}
	}
	// Grow receivers from the pool.
	for _, vm := range c.vmOrder {
		qm := c.qms[vm]
		for qm.rqMap.Len() < targets[vm] {
			ch := c.rq.allocFree(vm)
			if ch < 0 {
				break
			}
			qm.rqMap.AppendTail(ch)
		}
	}
	for _, vm := range c.vmOrder {
		c.qms[vm].setCapacityFromChunks(c.rq.ChunkEntries())
	}
}

// WakeDecision tells the cluster layer what the controller decided when new
// work arrived for a VM. It is passed by value on the hottest enqueue edge —
// the zero WakeDecision (Valid false) means "no action", so no per-enqueue
// heap allocation is needed to represent the common no-wake case.
type WakeDecision struct {
	// Core is the core to notify. Meaningless unless Valid is true.
	Core CoreID
	// Preempt is true when Core currently executes Harvest VM work and must
	// be interrupted and context-switched back to its Primary VM (§4.1.5).
	Preempt bool
	// Valid reports whether the controller issued a wake at all.
	Valid bool
}

// Enqueue stores a request arriving from the NIC into vm's subqueue
// (§4.1.3) and returns the controller's wake decision, if any
// (wake.Valid reports whether there is one).
func (c *Controller) Enqueue(vm VMID, r *Request) (toOverflow bool, wake WakeDecision, err error) {
	qm, ok := c.qms[vm]
	if !ok {
		return false, WakeDecision{}, fmt.Errorf("%w: %d", ErrUnknownVM, vm)
	}
	if r.VM != vm {
		return false, WakeDecision{}, fmt.Errorf("%w: request for VM %d enqueued to VM %d", ErrIsolation, r.VM, vm)
	}
	toOverflow = qm.enqueue(r)
	return toOverflow, c.notifyWork(qm), nil
}

// Unblock marks a blocked request ready again (the NIC received its network
// response) and returns the wake decision (§4.1.5).
func (c *Controller) Unblock(vm VMID, r *Request) (WakeDecision, error) {
	qm, ok := c.qms[vm]
	if !ok {
		return WakeDecision{}, fmt.Errorf("%w: %d", ErrUnknownVM, vm)
	}
	if r.VM != vm {
		return WakeDecision{}, fmt.Errorf("%w: unblock across VMs", ErrIsolation)
	}
	if !qm.unblock(r) {
		return WakeDecision{}, fmt.Errorf("%w: unblock of %v request", ErrBadTransition, r.Status)
	}
	return c.notifyWork(qm), nil
}

// notifyWork implements the QM's new-work check: wake an idle bound core if
// one exists; otherwise, for a Primary VM, reclaim a loaned core (§4.1.5).
func (c *Controller) notifyWork(qm *QueueManager) WakeDecision {
	// Deterministic order: lowest core ID first.
	var idle, loaned CoreID = -1, -1
	for core := range qm.boundCores {
		switch c.coreState[core] {
		case CoreIdle:
			if idle < 0 || core < idle {
				idle = core
			}
		case CoreLoaned:
			if loaned < 0 || core < loaned {
				loaned = core
			}
		}
	}
	if idle >= 0 {
		c.coreState[idle] = coreNotified
		c.wakes++
		return WakeDecision{Core: idle, Valid: true}
	}
	if qm.isPrimary && loaned >= 0 {
		c.coreState[loaned] = coreNotified
		c.reclaims++
		return WakeDecision{Core: loaned, Preempt: true, Valid: true}
	}
	return WakeDecision{}
}

// coreNotified is an internal state: a wake/interrupt is in flight and the
// core must not be chosen for another wake until it reaches the controller
// again via Preempt/Dequeue.
const coreNotified CoreState = 100

// PreemptCore services the hardware interrupt on a loaned core: the Harvest
// VM request it was running is returned, Ready, to the front of the Harvest
// VM's subqueue for another core to take (Figure 10). Returns that request.
func (c *Controller) PreemptCore(core CoreID) (*Request, error) {
	r := c.coreRunning[core]
	if r == nil {
		return nil, fmt.Errorf("%w: preempt of a core running nothing (core %d)", ErrBadTransition, core)
	}
	hvm := c.runningVM[core]
	hqm, ok := c.qms[hvm]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVM, hvm)
	}
	if !hqm.preempt(r) {
		return nil, fmt.Errorf("%w: preempt of %v request", ErrBadTransition, r.Status)
	}
	delete(c.coreRunning, core)
	delete(c.runningVM, core)
	// The core is between contexts until its next Dequeue; it no longer
	// counts as loaned (its Harvest request is back in the queue).
	c.coreState[core] = CoreIdle
	return r, nil
}

// Dequeue hands the core the oldest ready request of its bound VM. If the
// core is bound to a Primary VM with no ready work and allowLoan is set, the
// controller forwards the core to a Harvest VM's QM (§4.1.4). It returns the
// request (nil if none anywhere), the VM it belongs to, and whether this
// dequeue re-assigned the core across VMs (the cluster layer charges flush
// and context-switch costs for cross-VM transitions).
func (c *Controller) Dequeue(core CoreID, allowLoan bool) (r *Request, vm VMID, crossVM bool, err error) {
	ownVM, ok := c.binding[core]
	if !ok {
		return nil, -1, false, fmt.Errorf("%w: %d", ErrUnknownCore, core)
	}
	ownQM := c.qms[ownVM]
	assign := func(r *Request, vm VMID, state CoreState) bool {
		prev, had := c.lastVM[core]
		c.coreRunning[core] = r
		c.runningVM[core] = vm
		c.lastVM[core] = vm
		c.coreState[core] = state
		return had && prev != vm
	}
	if r := ownQM.dequeue(); r != nil {
		cross := assign(r, ownVM, CoreRunningOwn)
		return r, ownVM, cross, nil
	}
	goIdle := func() {
		c.coreState[core] = CoreIdle
		delete(c.coreRunning, core)
		delete(c.runningVM, core)
	}
	if !allowLoan || !ownQM.isPrimary {
		goIdle()
		return nil, ownVM, false, nil
	}
	// Forward the core's request for work to a Harvest VM QM, round-robin
	// over harvest VMs that have ready work.
	harvest := c.harvestVMsWithWork()
	if len(harvest) == 0 {
		goIdle()
		return nil, ownVM, false, nil
	}
	hvm := harvest[c.nextHarvest%len(harvest)]
	c.nextHarvest++
	hr := c.qms[hvm].dequeue()
	if hr == nil {
		goIdle()
		return nil, ownVM, false, nil
	}
	cross := assign(hr, hvm, CoreLoaned)
	c.loans++
	return hr, hvm, cross, nil
}

// LastVM reports the VM whose microarchitectural state was most recently
// resident in the core's private caches/TLBs.
func (c *Controller) LastVM(core CoreID) (VMID, bool) {
	vm, ok := c.lastVM[core]
	return vm, ok
}

// harvestVMsWithWork returns the Harvest VMs holding ready work, in
// registration order. The result aliases a controller-owned scratch buffer
// valid until the next call.
func (c *Controller) harvestVMsWithWork() []VMID {
	out := c.hvmScratch[:0]
	for _, vm := range c.vmOrder {
		qm := c.qms[vm]
		if !qm.isPrimary && qm.hasReady() {
			out = append(out, vm)
		}
	}
	c.hvmScratch = out
	return out
}

// Complete informs the QM that the core finished its request; the slot is
// freed and the core becomes idle (until its next Dequeue).
func (c *Controller) Complete(core CoreID, r *Request) error {
	vm, ok := c.runningVM[core]
	if !ok || c.coreRunning[core] != r {
		return fmt.Errorf("%w: complete of a request the core is not running", ErrBadTransition)
	}
	if !c.qms[vm].complete(r) {
		return fmt.Errorf("%w: request not found in subqueue", ErrBadTransition)
	}
	delete(c.coreRunning, core)
	delete(c.runningVM, core)
	c.coreState[core] = CoreIdle
	return nil
}

// Block informs the QM that the core's request stalled on I/O. The request's
// pointer stays in the subqueue, marked Blocked; the core becomes idle.
func (c *Controller) Block(core CoreID, r *Request) error {
	vm, ok := c.runningVM[core]
	if !ok || c.coreRunning[core] != r {
		return fmt.Errorf("%w: block of a request the core is not running", ErrBadTransition)
	}
	if !c.qms[vm].block(r) {
		return fmt.Errorf("%w: block of %v request", ErrBadTransition, r.Status)
	}
	delete(c.coreRunning, core)
	delete(c.runningVM, core)
	c.coreState[core] = CoreIdle
	return nil
}

// LoanedCores reports how many of vm's bound cores are currently on loan.
func (c *Controller) LoanedCores(vm VMID) int {
	qm, ok := c.qms[vm]
	if !ok {
		return 0
	}
	n := 0
	for core := range qm.boundCores {
		if c.coreState[core] == CoreLoaned {
			n++
		}
	}
	return n
}
