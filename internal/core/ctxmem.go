package core

import (
	"fmt"

	"hardharvest/internal/sim"
)

// Request Context Memory (§4.1.8): HardHarvest extends the in-hardware
// context-switch support of uManycore — a dedicated on-chip memory reached
// over the regular NoC that saves and restores a process's register state —
// to additionally perform VM context switches. Saving and restoring happens
// in hardware with no new instructions.

// CtxMemConfig sizes the Request Context Memory.
type CtxMemConfig struct {
	// Slots is the number of contexts the memory can hold; at least one
	// per possible in-flight request per core.
	Slots int
	// ContextBytes is one saved context: 16 GPRs + 32 vector registers of
	// 64B + RIP/RFLAGS/segment state.
	ContextBytes int
	// PortBytesPerCycle is the transfer width between a core and the
	// memory.
	PortBytesPerCycle int
	// NoCRoundTrip is the regular-NoC round trip to reach the memory.
	NoCRoundTrip sim.Duration
}

// DefaultCtxMemConfig returns the configuration used in the evaluation: 72
// slots (two per core), 2.25 KB contexts, a 64B/cycle port, and a 10-cycle
// NoC round trip.
func DefaultCtxMemConfig() CtxMemConfig {
	return CtxMemConfig{
		Slots:             72,
		ContextBytes:      16*8 + 32*64 + 64, // GPRs + vector file + control
		PortBytesPerCycle: 64,
		NoCRoundTrip:      sim.Cycles(10),
	}
}

// StorageBytes reports the memory's capacity.
func (c CtxMemConfig) StorageBytes() int { return c.Slots * c.ContextBytes }

// TransferLatency reports the time to stream one context through the port.
func (c CtxMemConfig) TransferLatency() sim.Duration {
	cycles := int64((c.ContextBytes + c.PortBytesPerCycle - 1) / c.PortBytesPerCycle)
	return sim.Cycles(cycles)
}

// SwitchLatency reports a full in-hardware context switch: save the current
// context and restore the next one, pipelined over the NoC.
func (c CtxMemConfig) SwitchLatency() sim.Duration {
	// Save and restore stream back-to-back; the NoC round trip is paid
	// once because the restore is prefetched while the save drains.
	return c.NoCRoundTrip + 2*c.TransferLatency()
}

// CtxMem tracks which contexts are saved where.
type CtxMem struct {
	cfg   CtxMemConfig
	slots map[ReqID]int
	free  []int
}

// NewCtxMem builds an empty context memory.
func NewCtxMem(cfg CtxMemConfig) *CtxMem {
	if cfg.Slots <= 0 || cfg.ContextBytes <= 0 || cfg.PortBytesPerCycle <= 0 {
		panic("core: invalid context memory config")
	}
	m := &CtxMem{cfg: cfg, slots: make(map[ReqID]int)}
	for i := cfg.Slots - 1; i >= 0; i-- {
		m.free = append(m.free, i)
	}
	return m
}

// Config returns the memory's configuration.
func (m *CtxMem) Config() CtxMemConfig { return m.cfg }

// InUse reports occupied slots.
func (m *CtxMem) InUse() int { return m.cfg.Slots - len(m.free) }

// Save stores a request's context, returning the slot and the latency.
func (m *CtxMem) Save(id ReqID) (slot int, lat sim.Duration, err error) {
	if _, dup := m.slots[id]; dup {
		return 0, 0, fmt.Errorf("core: context for request %d already saved", id)
	}
	if len(m.free) == 0 {
		return 0, 0, fmt.Errorf("core: context memory full (%d slots)", m.cfg.Slots)
	}
	slot = m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.slots[id] = slot
	return slot, m.cfg.NoCRoundTrip/2 + m.cfg.TransferLatency(), nil
}

// Restore loads a request's context and frees its slot.
func (m *CtxMem) Restore(id ReqID) (lat sim.Duration, err error) {
	slot, ok := m.slots[id]
	if !ok {
		return 0, fmt.Errorf("core: no saved context for request %d", id)
	}
	delete(m.slots, id)
	m.free = append(m.free, slot)
	return m.cfg.NoCRoundTrip/2 + m.cfg.TransferLatency(), nil
}

// Has reports whether a request's context is saved.
func (m *CtxMem) Has(id ReqID) bool {
	_, ok := m.slots[id]
	return ok
}
