package core

import (
	"testing"
	"testing/quick"

	"hardharvest/internal/sim"
)

func TestCtxMemConfig(t *testing.T) {
	cfg := DefaultCtxMemConfig()
	if cfg.StorageBytes() != cfg.Slots*cfg.ContextBytes {
		t.Fatal("storage arithmetic")
	}
	// One 2.25KB-ish context through a 64B port: ~35 cycles.
	if cfg.TransferLatency() <= 0 || cfg.TransferLatency() > sim.Cycles(100) {
		t.Fatalf("transfer latency = %v", cfg.TransferLatency())
	}
	// A full hardware switch is tens of nanoseconds (§4.1.1: "a few 10s of
	// ns" with hardware context-switch support).
	sw := cfg.SwitchLatency()
	if sw < 10*sim.Nanosecond || sw > 100*sim.Nanosecond {
		t.Fatalf("switch latency = %v, want 10s of ns", sw)
	}
}

func TestCtxMemSaveRestore(t *testing.T) {
	m := NewCtxMem(DefaultCtxMemConfig())
	slot, lat, err := m.Save(1)
	if err != nil || lat <= 0 {
		t.Fatalf("save: %v %v", lat, err)
	}
	if slot < 0 || slot >= m.Config().Slots {
		t.Fatalf("slot = %d", slot)
	}
	if !m.Has(1) || m.InUse() != 1 {
		t.Fatal("bookkeeping after save")
	}
	if _, _, err := m.Save(1); err == nil {
		t.Fatal("duplicate save should fail")
	}
	if lat, err := m.Restore(1); err != nil || lat <= 0 {
		t.Fatalf("restore: %v %v", lat, err)
	}
	if m.Has(1) || m.InUse() != 0 {
		t.Fatal("bookkeeping after restore")
	}
	if _, err := m.Restore(1); err == nil {
		t.Fatal("double restore should fail")
	}
}

func TestCtxMemCapacity(t *testing.T) {
	cfg := DefaultCtxMemConfig()
	cfg.Slots = 2
	m := NewCtxMem(cfg)
	if _, _, err := m.Save(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Save(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Save(3); err == nil {
		t.Fatal("save beyond capacity should fail")
	}
	if _, err := m.Restore(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Save(3); err != nil {
		t.Fatal("slot should be reusable after restore")
	}
}

func TestCtxMemInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config should panic")
		}
	}()
	NewCtxMem(CtxMemConfig{})
}

// Property: any interleaving of saves and restores keeps slot assignments
// unique and InUse consistent.
func TestCtxMemSlotUniquenessProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := DefaultCtxMemConfig()
		cfg.Slots = 8
		m := NewCtxMem(cfg)
		saved := map[ReqID]int{}
		next := ReqID(0)
		for _, op := range ops {
			if op%2 == 0 || len(saved) == 0 {
				next++
				slot, _, err := m.Save(next)
				if len(saved) >= cfg.Slots {
					if err == nil {
						return false // must reject when full
					}
					continue
				}
				if err != nil {
					return false
				}
				for _, s := range saved {
					if s == slot {
						return false // duplicate slot
					}
				}
				saved[next] = slot
			} else {
				var id ReqID
				for k := range saved {
					id = k
					break
				}
				if _, err := m.Restore(id); err != nil {
					return false
				}
				delete(saved, id)
			}
			if m.InUse() != len(saved) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
