package core

import (
	"testing"
	"testing/quick"

	"hardharvest/internal/stats"
)

// opKind drives the random controller exerciser.
type opKind int

const (
	opEnqueuePrimary opKind = iota
	opEnqueueHarvest
	opDequeueNoLoan
	opDequeueLoan
	opComplete
	opBlock
	opUnblock
	opPreempt
	numOps
)

// model mirrors what the controller should be doing.
type model struct {
	ctrl    *Controller
	t       *testing.T
	nextID  ReqID
	queued  map[ReqID]*Request // ready or blocked, not running
	running map[CoreID]*Request
	blocked map[ReqID]*Request
	done    int
}

// exercise runs a random operation sequence against a 2-VM controller
// (primary VM 1 with cores 0-2, harvest VM 2 with core 8) and checks
// invariants after every step. Returns false on any violation.
func exercise(t *testing.T, seed uint64, steps int) bool {
	rng := stats.NewRNG(seed)
	m := &model{
		ctrl:    NewController(8, 4, 4), // small RQ to exercise overflow
		t:       t,
		queued:  make(map[ReqID]*Request),
		running: make(map[CoreID]*Request),
		blocked: make(map[ReqID]*Request),
	}
	if err := m.ctrl.AddVM(1, true, HarvestMask{}); err != nil {
		return false
	}
	if err := m.ctrl.AddVM(2, false, HarvestMask{}); err != nil {
		return false
	}
	for _, c := range []CoreID{0, 1, 2} {
		if err := m.ctrl.BindCore(c, 1); err != nil {
			return false
		}
	}
	if err := m.ctrl.BindCore(8, 2); err != nil {
		return false
	}
	cores := []CoreID{0, 1, 2, 8}

	for i := 0; i < steps; i++ {
		switch opKind(rng.Intn(int(numOps))) {
		case opEnqueuePrimary, opEnqueueHarvest:
			vm := VMID(1)
			if rng.Bool(0.5) {
				vm = 2
			}
			m.nextID++
			r := &Request{ID: m.nextID, VM: vm}
			if _, _, err := m.ctrl.Enqueue(vm, r); err != nil {
				t.Logf("enqueue: %v", err)
				return false
			}
			m.queued[r.ID] = r
		case opDequeueNoLoan, opDequeueLoan:
			c := cores[rng.Intn(len(cores))]
			if m.running[c] != nil {
				continue
			}
			allow := rng.Bool(0.5)
			r, vm, _, err := m.ctrl.Dequeue(c, allow)
			if err != nil {
				t.Logf("dequeue: %v", err)
				return false
			}
			if r == nil {
				continue
			}
			// Isolation: a harvest core only gets harvest work; a primary
			// core gets its own VM's work, or harvest work when loans are
			// allowed.
			if c == 8 && r.VM != 2 {
				t.Logf("harvest core got VM %d work", r.VM)
				return false
			}
			if c != 8 && r.VM != 1 && !allow {
				t.Logf("loan without permission")
				return false
			}
			if r.VM != vm {
				t.Logf("request VM %d != reported %d", r.VM, vm)
				return false
			}
			if m.queued[r.ID] == nil {
				t.Logf("dequeued request %d not queued", r.ID)
				return false
			}
			delete(m.queued, r.ID)
			m.running[c] = r
		case opComplete:
			c := cores[rng.Intn(len(cores))]
			r := m.running[c]
			if r == nil {
				continue
			}
			if err := m.ctrl.Complete(c, r); err != nil {
				t.Logf("complete: %v", err)
				return false
			}
			delete(m.running, c)
			m.done++
		case opBlock:
			c := cores[rng.Intn(len(cores))]
			r := m.running[c]
			if r == nil {
				continue
			}
			if err := m.ctrl.Block(c, r); err != nil {
				t.Logf("block: %v", err)
				return false
			}
			delete(m.running, c)
			m.blocked[r.ID] = r
		case opUnblock:
			for id, r := range m.blocked {
				if _, err := m.ctrl.Unblock(r.VM, r); err != nil {
					m.t.Logf("unblock: %v", err)
					return false
				}
				delete(m.blocked, id)
				m.queued[id] = r
				break
			}
		case opPreempt:
			// Preempt a loaned core if one exists.
			for _, c := range []CoreID{0, 1, 2} {
				if m.ctrl.State(c) != CoreLoaned {
					continue
				}
				r := m.running[c]
				pre, err := m.ctrl.PreemptCore(c)
				if err != nil {
					m.t.Logf("preempt: %v", err)
					return false
				}
				if pre != r {
					m.t.Logf("preempted wrong request")
					return false
				}
				delete(m.running, c)
				m.queued[r.ID] = r
				break
			}
		}
		if !m.invariants() {
			return false
		}
	}
	return true
}

// invariants checks conservation and structural bounds.
func (m *model) invariants() bool {
	// Conservation: model-tracked blocked requests stay in the controller's
	// accounting (blocked slots are retained, §4.1.5).
	for _, vm := range []VMID{1, 2} {
		qm := m.ctrl.QM(vm)
		if qm == nil {
			m.t.Logf("missing QM %d", vm)
			return false
		}
		if qm.HardwareOccupancy() > qm.Capacity() {
			m.t.Logf("VM %d occupancy %d exceeds capacity %d", vm, qm.HardwareOccupancy(), qm.Capacity())
			return false
		}
		if qm.OverflowLen() > 0 && qm.HardwareOccupancy() < qm.Capacity() {
			// Overflow entries must be promoted whenever slots free up;
			// a transiently shorter hardware queue with waiting overflow
			// would starve requests.
			m.t.Logf("VM %d has overflow with free hardware slots", vm)
			return false
		}
	}
	// Controller request counts match the model.
	inCtrl := 0
	for _, vm := range []VMID{1, 2} {
		qm := m.ctrl.QM(vm)
		inCtrl += qm.HardwareOccupancy() + qm.OverflowLen()
	}
	want := len(m.queued) + len(m.blocked) + len(m.running)
	if inCtrl != want {
		m.t.Logf("controller holds %d requests, model says %d", inCtrl, want)
		return false
	}
	// Every model-running request is what the controller thinks the core
	// runs.
	for c, r := range m.running {
		got, _ := m.ctrl.Running(c)
		if got != r {
			m.t.Logf("core %d runs %v, model says %v", c, got, r)
			return false
		}
	}
	return true
}

// TestControllerRandomOpsProperty drives long random op sequences and
// checks conservation, isolation, capacity, and overflow-promotion
// invariants after every step.
func TestControllerRandomOpsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		return exercise(t, seed, 400)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerFIFOProperty: requests of one VM that never block are
// dequeued in arrival order.
func TestControllerFIFOProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw)%40 + 5
		ctrl := NewController(4, 4, 2) // capacity 16 with overflow beyond
		if err := ctrl.AddVM(1, true, HarvestMask{}); err != nil {
			return false
		}
		if err := ctrl.BindCore(0, 1); err != nil {
			return false
		}
		var ids []ReqID
		for i := 0; i < n; i++ {
			r := &Request{ID: ReqID(i + 1), VM: 1}
			if _, _, err := ctrl.Enqueue(1, r); err != nil {
				return false
			}
			ids = append(ids, r.ID)
			// Occasionally drain a few to interleave.
			if rng.Bool(0.3) {
				r, _, _, _ := ctrl.Dequeue(0, false)
				if r == nil {
					continue
				}
				if r.ID != ids[0] {
					t.Logf("dequeued %d, want %d", r.ID, ids[0])
					return false
				}
				ids = ids[1:]
				if err := ctrl.Complete(0, r); err != nil {
					return false
				}
			}
		}
		for len(ids) > 0 {
			r, _, _, _ := ctrl.Dequeue(0, false)
			if r == nil || r.ID != ids[0] {
				t.Logf("drain got %v, want %d", r, ids[0])
				return false
			}
			ids = ids[1:]
			if err := ctrl.Complete(0, r); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceConservesChunksProperty: arbitrary VM add/remove/bind
// sequences never lose or duplicate physical chunks.
func TestRebalanceConservesChunksProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ctrl := DefaultController()
		active := map[VMID]bool{}
		nextVM := VMID(1)
		nextCore := CoreID(0)
		for i := 0; i < 60; i++ {
			if rng.Bool(0.6) || len(active) == 0 {
				if len(active) >= 16 {
					continue
				}
				vm := nextVM
				nextVM++
				if err := ctrl.AddVM(vm, rng.Bool(0.7), HarvestMask{}); err != nil {
					return false
				}
				active[vm] = true
				for k := 0; k < rng.Intn(4)+1; k++ {
					if err := ctrl.BindCore(nextCore, vm); err != nil {
						return false
					}
					nextCore++
				}
			} else {
				for vm := range active {
					if err := ctrl.RemoveVM(vm); err != nil {
						return false
					}
					delete(active, vm)
					break
				}
			}
			// Chunk conservation: owned + free == total, and each VM's
			// RQ-Map matches physical ownership.
			owned := 0
			for _, vm := range ctrl.VMs() {
				qm := ctrl.QM(vm)
				owned += qm.Chunks()
				for _, ch := range []ChunkID{} {
					_ = ch
				}
			}
			if owned+ctrl.RQ().FreeChunks() != ctrl.RQ().NumChunks() {
				t.Logf("chunks lost: owned %d + free %d != %d",
					owned, ctrl.RQ().FreeChunks(), ctrl.RQ().NumChunks())
				return false
			}
			// Every active VM holds at least one chunk.
			for _, vm := range ctrl.VMs() {
				if ctrl.QM(vm).Chunks() < 1 {
					t.Logf("VM %d starved of chunks", vm)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
