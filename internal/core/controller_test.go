package core

import (
	"errors"
	"testing"
)

func req(id ReqID, vm VMID) *Request {
	return &Request{ID: id, VM: vm, PayloadAddr: uint64(id) * 64}
}

// newTestController builds a controller with 1 Primary VM (4 cores 0-3) and
// 1 Harvest VM (cores 8-9), mirroring a slice of the paper's server.
func newTestController(t *testing.T) *Controller {
	t.Helper()
	c := DefaultController()
	if err := c.AddVM(1, true, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVM(2, false, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	for core := CoreID(0); core < 4; core++ {
		if err := c.BindCore(core, 1); err != nil {
			t.Fatal(err)
		}
	}
	for core := CoreID(8); core < 10; core++ {
		if err := c.BindCore(core, 2); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddRemoveVM(t *testing.T) {
	c := DefaultController()
	if err := c.AddVM(1, true, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVM(1, true, HarvestMask{}); !errors.Is(err, ErrVMExists) {
		t.Fatalf("duplicate AddVM err = %v", err)
	}
	if c.QM(1) == nil || !c.QM(1).IsPrimary() {
		t.Fatal("QM not registered as primary")
	}
	if err := c.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVM(1); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double RemoveVM err = %v", err)
	}
	if c.RQ().FreeChunks() != c.RQ().NumChunks() {
		t.Fatal("chunks not released on VM removal")
	}
}

func TestQMLimit(t *testing.T) {
	c := NewController(32, 64, 2)
	if err := c.AddVM(1, true, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVM(2, true, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVM(3, true, HarvestMask{}); !errors.Is(err, ErrNoQMAvail) {
		t.Fatalf("QM exhaustion err = %v", err)
	}
}

func TestBindCore(t *testing.T) {
	c := DefaultController()
	if err := c.BindCore(0, 9); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("bind to unknown VM err = %v", err)
	}
	if err := c.AddVM(1, true, HarvestMask{}); err != nil {
		t.Fatal(err)
	}
	if err := c.BindCore(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.BindCore(0, 1); !errors.Is(err, ErrCoreBound) {
		t.Fatalf("double bind err = %v", err)
	}
	vm, ok := c.Binding(0)
	if !ok || vm != 1 {
		t.Fatalf("binding = %v %v", vm, ok)
	}
	if c.State(0) != CoreIdle {
		t.Fatalf("initial state = %v", c.State(0))
	}
}

func TestChunkSharesProportionalToCores(t *testing.T) {
	c := newTestController(t)
	// 4 primary cores vs 2 harvest cores: primary gets 2/3 of 32 chunks.
	p, h := c.QM(1).Chunks(), c.QM(2).Chunks()
	if p <= h {
		t.Fatalf("primary chunks %d should exceed harvest chunks %d", p, h)
	}
	if p+h > c.RQ().NumChunks() {
		t.Fatalf("over-allocated: %d + %d", p, h)
	}
	if p != 21 { // 32*4/6 = 21
		t.Fatalf("primary chunks = %d, want 21", p)
	}
	if c.QM(1).Capacity() != 21*64 {
		t.Fatalf("capacity = %d", c.QM(1).Capacity())
	}
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	c := newTestController(t)
	r1, r2, r3 := req(1, 1), req(2, 1), req(3, 1)
	for _, r := range []*Request{r1, r2, r3} {
		if _, _, err := c.Enqueue(1, r); err != nil {
			t.Fatal(err)
		}
	}
	got, vm, cross, err := c.Dequeue(0, false)
	if err != nil || got != r1 || vm != 1 || cross {
		t.Fatalf("dequeue 1 = %v vm=%d cross=%v err=%v", got, vm, cross, err)
	}
	if got.Status != StatusRunning {
		t.Fatalf("dequeued status = %v", got.Status)
	}
	got2, _, _, _ := c.Dequeue(1, false)
	if got2 != r2 {
		t.Fatal("FIFO order violated")
	}
	if err := c.Complete(0, r1); err != nil {
		t.Fatal(err)
	}
	if r1.Status != StatusEmpty {
		t.Fatalf("completed status = %v", r1.Status)
	}
	if c.State(0) != CoreIdle {
		t.Fatalf("core state after complete = %v", c.State(0))
	}
}

func TestEnqueueIsolation(t *testing.T) {
	c := newTestController(t)
	r := req(1, 2)
	if _, _, err := c.Enqueue(1, r); !errors.Is(err, ErrIsolation) {
		t.Fatalf("cross-VM enqueue err = %v", err)
	}
	if _, _, err := c.Enqueue(99, req(1, 99)); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown VM enqueue err = %v", err)
	}
}

func TestDequeueUnboundCore(t *testing.T) {
	c := newTestController(t)
	if _, _, _, err := c.Dequeue(77, false); !errors.Is(err, ErrUnknownCore) {
		t.Fatalf("unbound dequeue err = %v", err)
	}
}

func TestBlockUnblockLifecycle(t *testing.T) {
	c := newTestController(t)
	r := req(1, 1)
	if _, _, err := c.Enqueue(1, r); err != nil {
		t.Fatal(err)
	}
	got, _, _, _ := c.Dequeue(0, false)
	if got != r {
		t.Fatal("dequeue mismatch")
	}
	if err := c.Block(0, r); err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusBlocked {
		t.Fatalf("status = %v", r.Status)
	}
	// The blocked request keeps its slot.
	if c.QM(1).HardwareOccupancy() != 1 {
		t.Fatal("blocked request lost its slot")
	}
	// While blocked it must not be dequeued.
	if got, _, _, _ := c.Dequeue(1, false); got != nil {
		t.Fatal("dequeued a blocked request")
	}
	wake, err := c.Unblock(1, r)
	if err != nil {
		t.Fatal(err)
	}
	if !wake.Valid {
		t.Fatal("unblock should wake an idle core")
	}
	got, _, _, _ = c.Dequeue(wake.Core, false)
	if got != r || r.Status != StatusRunning {
		t.Fatal("unblocked request not dequeued")
	}
	// Double unblock is a bad transition.
	if _, err := c.Unblock(1, r); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double unblock err = %v", err)
	}
}

func TestWakeIdleCoreOnEnqueue(t *testing.T) {
	c := newTestController(t)
	_, wake, err := c.Enqueue(1, req(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !wake.Valid || wake.Preempt {
		t.Fatalf("wake = %+v, want non-preempt wake", wake)
	}
	if c.State(wake.Core) == CoreIdle {
		t.Fatal("woken core still idle (double-wake hazard)")
	}
	// A second enqueue wakes a different idle core.
	_, wake2, _ := c.Enqueue(1, req(2, 1))
	if !wake2.Valid || wake2.Core == wake.Core {
		t.Fatalf("second wake = %+v (first %+v)", wake2, wake)
	}
}

func TestLoanAndReclaim(t *testing.T) {
	c := newTestController(t)
	// Prime core 0 with its own VM's state so the loan below is a cross-VM
	// transition (a fresh core has no prior state, hence no flush).
	if _, _, err := c.Enqueue(1, req(90, 1)); err != nil {
		t.Fatal(err)
	}
	pr, _, _, _ := c.Dequeue(0, false)
	if pr == nil {
		t.Fatal("priming dequeue failed")
	}
	if err := c.Complete(0, pr); err != nil {
		t.Fatal(err)
	}
	// Harvest VM has plenty of work.
	for i := ReqID(100); i < 110; i++ {
		if _, _, err := c.Enqueue(2, req(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Primary core 0 finds no own work and is loaned to the Harvest VM.
	hr, vm, cross, err := c.Dequeue(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if hr == nil || vm != 2 || !cross {
		t.Fatalf("loan dequeue = %v vm=%d cross=%v", hr, vm, cross)
	}
	if c.State(0) != CoreLoaned {
		t.Fatalf("state = %v", c.State(0))
	}
	if c.LoanedCores(1) != 1 {
		t.Fatalf("loaned cores = %d", c.LoanedCores(1))
	}
	if c.Loans() != 1 {
		t.Fatalf("loans = %d", c.Loans())
	}

	// Occupy the other primary cores so reclamation must preempt.
	for i := ReqID(1); i <= 3; i++ {
		if _, _, err := c.Enqueue(1, req(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for core := CoreID(1); core <= 3; core++ {
		if r, _, _, _ := c.Dequeue(core, true); r == nil {
			t.Fatal("primary core found no work")
		}
	}
	// New primary request: all bound cores busy, core 0 loaned → preempt.
	_, wake, err := c.Enqueue(1, req(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !wake.Valid || !wake.Preempt || wake.Core != 0 {
		t.Fatalf("wake = %+v, want preempt of core 0", wake)
	}
	if c.Reclaims() != 1 {
		t.Fatalf("reclaims = %d", c.Reclaims())
	}
	pre, err := c.PreemptCore(0)
	if err != nil {
		t.Fatal(err)
	}
	if pre != hr {
		t.Fatal("preempted request mismatch")
	}
	if pre.Status != StatusReady {
		t.Fatalf("preempted status = %v", pre.Status)
	}
	// The preempted request is at the head of the Harvest queue: the next
	// harvest dequeue must return it.
	hgot, _, _, _ := c.Dequeue(8, false)
	if hgot != pre {
		t.Fatal("preempted request not requeued at head")
	}
	// Core 0 now dequeues the primary request; transition is cross-VM.
	pgot, vm, cross, err := c.Dequeue(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if pgot == nil || vm != 1 || !cross {
		t.Fatalf("reclaim dequeue = %v vm=%d cross=%v", pgot, vm, cross)
	}
	if pgot.ID != 9 {
		t.Fatalf("reclaimed core got request %d, want 9", pgot.ID)
	}
}

func TestNoPreemptWhenIdleCoreExists(t *testing.T) {
	c := newTestController(t)
	for i := ReqID(100); i < 105; i++ {
		c.Enqueue(2, req(i, 2))
	}
	c.Dequeue(0, true) // loan core 0
	// Cores 1-3 idle; enqueue should wake an idle core, not preempt.
	_, wake, _ := c.Enqueue(1, req(1, 1))
	if !wake.Valid || wake.Preempt {
		t.Fatalf("wake = %+v, want idle-core wake", wake)
	}
}

func TestHarvestCoreNeverStealsFromPrimary(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(1, req(1, 1))
	// Harvest core 8 asks for work with loans allowed: it must not receive
	// the Primary VM's request.
	r, _, _, err := c.Dequeue(8, true)
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatalf("harvest core stole request %d from primary", r.ID)
	}
}

func TestLoanDisallowedWhenTermOnly(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(2, req(100, 2))
	r, _, _, _ := c.Dequeue(0, false)
	if r != nil {
		t.Fatal("loan happened with allowLoan=false")
	}
	if c.State(0) != CoreIdle {
		t.Fatalf("state = %v", c.State(0))
	}
}

func TestLoanRoundRobinAcrossHarvestVMs(t *testing.T) {
	c := DefaultController()
	c.AddVM(1, true, HarvestMask{})
	c.AddVM(2, false, HarvestMask{})
	c.AddVM(3, false, HarvestMask{})
	for core := CoreID(0); core < 4; core++ {
		c.BindCore(core, 1)
	}
	for i := ReqID(0); i < 4; i++ {
		c.Enqueue(2, req(100+i, 2))
		c.Enqueue(3, req(200+i, 3))
	}
	seen := map[VMID]int{}
	for core := CoreID(0); core < 4; core++ {
		_, vm, _, err := c.Dequeue(core, true)
		if err != nil {
			t.Fatal(err)
		}
		seen[vm]++
	}
	if seen[2] != 2 || seen[3] != 2 {
		t.Fatalf("loan distribution = %v, want 2/2", seen)
	}
}

func TestCrossVMDetectionOnReturn(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(2, req(100, 2))
	r, _, _, _ := c.Dequeue(0, true) // loan
	if r == nil {
		t.Fatal("no loan")
	}
	c.Complete(0, r)
	// Core 0's caches hold Harvest VM state; its next own-VM dequeue is a
	// cross-VM transition even though no preemption happened.
	c.Enqueue(1, req(1, 1))
	_, vm, cross, _ := c.Dequeue(0, true)
	if vm != 1 || !cross {
		t.Fatalf("return transition vm=%d cross=%v, want 1/true", vm, cross)
	}
	// Staying on the same VM is not cross-VM.
	c.Enqueue(1, req(2, 1))
	r2, _, cross2, _ := c.Dequeue(1, true)
	_ = r2
	if cross2 {
		t.Fatal("first dequeue of core 1 flagged cross-VM")
	}
	last, ok := c.LastVM(1)
	if !ok || last != 1 {
		t.Fatalf("LastVM = %d %v", last, ok)
	}
}

func TestCompleteWrongRequest(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(1, req(1, 1))
	r, _, _, _ := c.Dequeue(0, false)
	other := req(2, 1)
	if err := c.Complete(0, other); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("complete wrong request err = %v", err)
	}
	if err := c.Block(3, r); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("block from wrong core err = %v", err)
	}
}

func TestPreemptIdleCoreFails(t *testing.T) {
	c := newTestController(t)
	if _, err := c.PreemptCore(0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("preempt idle core err = %v", err)
	}
}

func TestOverflowSpillAndRefill(t *testing.T) {
	c := NewController(2, 4, 4) // tiny RQ: 2 chunks x 4 entries
	c.AddVM(1, true, HarvestMask{})
	c.BindCore(0, 1)
	// Capacity is 8; enqueue 10.
	var rs []*Request
	overflowed := 0
	for i := ReqID(0); i < 10; i++ {
		r := req(i, 1)
		rs = append(rs, r)
		toOv, _, err := c.Enqueue(1, r)
		if err != nil {
			t.Fatal(err)
		}
		if toOv {
			overflowed++
		}
	}
	if overflowed != 2 {
		t.Fatalf("overflowed = %d, want 2", overflowed)
	}
	qm := c.QM(1)
	if qm.HardwareOccupancy() != 8 || qm.OverflowLen() != 2 {
		t.Fatalf("occupancy = %d/%d", qm.HardwareOccupancy(), qm.OverflowLen())
	}
	// Completing a request promotes one overflow entry into hardware.
	r0, _, _, _ := c.Dequeue(0, false)
	c.Complete(0, r0)
	if qm.OverflowLen() != 1 {
		t.Fatalf("overflow after refill = %d", qm.OverflowLen())
	}
	if qm.Stats().OverflowEnqueues != 2 {
		t.Fatalf("overflow stat = %d", qm.Stats().OverflowEnqueues)
	}
	// FIFO across the spill: drain everything, order must be 1..9 (0 done).
	want := ReqID(1)
	for {
		r, _, _, _ := c.Dequeue(0, false)
		if r == nil {
			break
		}
		if r.ID != want {
			t.Fatalf("drain order got %d want %d", r.ID, want)
		}
		want++
		c.Complete(0, r)
	}
	if want != 10 {
		t.Fatalf("drained up to %d", want)
	}
}

func TestRebalanceSpillsDonatedChunkEntries(t *testing.T) {
	c := NewController(4, 2, 4) // 4 chunks x 2 entries
	c.AddVM(1, true, HarvestMask{})
	c.BindCore(0, 1)
	// VM 1 owns all 4 chunks (capacity 8); fill completely.
	for i := ReqID(0); i < 8; i++ {
		c.Enqueue(1, req(i, 1))
	}
	if c.QM(1).HardwareOccupancy() != 8 {
		t.Fatalf("occupancy = %d", c.QM(1).HardwareOccupancy())
	}
	// A new VM with 1 core arrives: chunks are donated from VM 1's tail and
	// the displaced entries spill to overflow.
	c.AddVM(2, false, HarvestMask{})
	c.BindCore(8, 2)
	if c.QM(2).Chunks() < 1 {
		t.Fatal("new VM got no chunks")
	}
	qm1 := c.QM(1)
	if qm1.HardwareOccupancy() != qm1.Capacity() {
		t.Fatalf("occupancy %d != shrunk capacity %d", qm1.HardwareOccupancy(), qm1.Capacity())
	}
	if qm1.OverflowLen() == 0 {
		t.Fatal("donation did not spill entries to overflow")
	}
	// Order is still FIFO on drain.
	want := ReqID(0)
	for {
		r, _, _, _ := c.Dequeue(0, false)
		if r == nil {
			break
		}
		if r.ID != want {
			t.Fatalf("post-donation order got %d want %d", r.ID, want)
		}
		want++
		c.Complete(0, r)
	}
	if want != 8 {
		t.Fatalf("drained %d of 8", want)
	}
}

func TestVMsOrderStable(t *testing.T) {
	c := DefaultController()
	for _, vm := range []VMID{5, 3, 9} {
		c.AddVM(vm, true, HarvestMask{})
	}
	got := c.VMs()
	if len(got) != 3 || got[0] != 5 || got[1] != 3 || got[2] != 9 {
		t.Fatalf("VMs() = %v", got)
	}
	c.RemoveVM(3)
	got = c.VMs()
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("VMs() after remove = %v", got)
	}
}

func TestStatusAndStateStrings(t *testing.T) {
	if StatusEmpty.String() != "empty" || StatusReady.String() != "ready" ||
		StatusRunning.String() != "running" || StatusBlocked.String() != "blocked" {
		t.Fatal("status strings")
	}
	if CoreIdle.String() != "idle" || CoreRunningOwn.String() != "running-own" || CoreLoaned.String() != "loaned" {
		t.Fatal("state strings")
	}
	if ReqStatus(9).String() == "" || CoreState(9).String() == "" {
		t.Fatal("unknown enum strings")
	}
}
