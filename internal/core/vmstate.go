package core

// VM State Register Sets and HarvestMask registers (Figure 9, §4.2.1).

// NumVMStateRegs is the number of 8-byte registers in one VM State Register
// Set (Table 1). The set holds state shared by all threads of a VM: VMCS
// pointer, CR0, CR3, CR4, GDTR, LDTR, IDTR, and friends.
const NumVMStateRegs = 16

// Names of the architecturally meaningful registers within a set; the
// remaining registers are reserved.
const (
	RegVMCSPtr = iota
	RegCR0
	RegCR3
	RegCR4
	RegGDTR
	RegLDTR
	RegIDTR
	RegEFER
)

// VMStateRegisterSet stores the per-VM register state that a core loads when
// it is (re-)assigned to the VM, so the context switch needs no hypervisor
// entry.
type VMStateRegisterSet struct {
	regs [NumVMStateRegs]uint64
}

// Set writes register idx.
func (v *VMStateRegisterSet) Set(idx int, val uint64) {
	v.regs[idx] = val
}

// Get reads register idx.
func (v *VMStateRegisterSet) Get(idx int) uint64 {
	return v.regs[idx]
}

// Bytes reports the storage footprint of the set.
func (v *VMStateRegisterSet) Bytes() int { return NumVMStateRegs * 8 }

// Structures whose ways the HarvestMask covers: L1D, L1I, L2 caches and
// L1, L2 TLBs (§4.2.1). The mask holds one bit per way of each structure,
// 5 bytes total (§6.8: a 5B HarvestMask register).
const (
	MaskL1D = iota
	MaskL1I
	MaskL2
	MaskL1TLB
	MaskL2TLB
	NumMaskedStructs
)

// HarvestMask records, for each private structure, which ways form the
// harvest region. A set bit means the way is a harvest way.
type HarvestMask struct {
	ways [NumMaskedStructs]uint16
}

// DefaultHarvestMask builds a mask with the lower half of each structure's
// ways non-harvest and the upper half harvest, matching Table 1's "50% of
// all ways" default. ways lists the way count of each structure in the
// Mask* order.
func DefaultHarvestMask(ways [NumMaskedStructs]int) HarvestMask {
	var m HarvestMask
	for s, w := range ways {
		h := w / 2
		for i := w - h; i < w; i++ {
			m.ways[s] |= 1 << uint(i)
		}
	}
	return m
}

// SetWay marks way w of structure s as harvest (on=true) or non-harvest.
func (m *HarvestMask) SetWay(s, w int, on bool) {
	if on {
		m.ways[s] |= 1 << uint(w)
	} else {
		m.ways[s] &^= 1 << uint(w)
	}
}

// IsHarvestWay reports whether way w of structure s is in the harvest
// region.
func (m *HarvestMask) IsHarvestWay(s, w int) bool {
	return m.ways[s]&(1<<uint(w)) != 0
}

// HarvestWays counts the harvest ways of structure s.
func (m *HarvestMask) HarvestWays(s int) int {
	n := 0
	for b := m.ways[s]; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Bytes reports the storage footprint of the mask register (§6.8: 5B).
func (m *HarvestMask) Bytes() int { return NumMaskedStructs }
