package core

// reqRing is a growable power-of-two ring deque of request pointers.
//
// The QM subqueues need front pushes on the hottest scheduler edge: every
// preemption returns the interrupted request to the head of its VM's
// subqueue (§4.1.5), and a plain-slice prepend (`append([]*Request{r}, q...)`)
// allocates a fresh backing array per call — profiled at ~63% of all
// steady-state allocations in a full-server run. The ring makes PushFront,
// PushBack, and the pops allocation-free once the buffer has grown to the
// subqueue's working size; only mid-queue removal shifts elements, and it
// shifts the shorter side.
type reqRing struct {
	buf  []*Request // len(buf) is zero or a power of two
	head int        // index of element 0
	n    int        // live elements
}

// Len reports the number of queued requests.
func (d *reqRing) Len() int { return d.n }

// At returns the i-th request from the front; i must be in [0, Len).
func (d *reqRing) At(i int) *Request { return d.buf[(d.head+i)&(len(d.buf)-1)] }

func (d *reqRing) set(i int, r *Request) { d.buf[(d.head+i)&(len(d.buf)-1)] = r }

func (d *reqRing) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = 16
	}
	nb := make([]*Request, c)
	for i := 0; i < d.n; i++ {
		nb[i] = d.At(i)
	}
	d.buf, d.head = nb, 0
}

// PushBack appends r at the tail.
func (d *reqRing) PushBack(r *Request) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = r
	d.n++
}

// PushFront inserts r at the head.
func (d *reqRing) PushFront(r *Request) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = r
	d.n++
}

// PopFront removes and returns the head; the ring must not be empty.
func (d *reqRing) PopFront() *Request {
	r := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return r
}

// PopBack removes and returns the tail; the ring must not be empty.
func (d *reqRing) PopBack() *Request {
	i := (d.head + d.n - 1) & (len(d.buf) - 1)
	r := d.buf[i]
	d.buf[i] = nil
	d.n--
	return r
}

// RemoveAt deletes the i-th element, preserving the order of the rest.
func (d *reqRing) RemoveAt(i int) {
	if i < d.n-1-i {
		for j := i; j > 0; j-- {
			d.set(j, d.At(j-1))
		}
		d.buf[d.head] = nil
		d.head = (d.head + 1) & (len(d.buf) - 1)
	} else {
		for j := i; j < d.n-1; j++ {
			d.set(j, d.At(j+1))
		}
		d.set(d.n-1, nil)
	}
	d.n--
}
