// Package core implements the paper's primary contribution: the HardHarvest
// hardware controller (§4.1, Figure 9). A controller owns a physical Request
// Queue (RQ) of fixed-size chunks, dynamically partitioned into per-VM
// logical subqueues managed by hardware Queue Managers (QMs). Cores bind to a
// QM through their MyManager register and use user-level instructions to
// dequeue, complete, and block requests. The controller performs core
// re-assignment between VMs (harvesting) and core reclamation without any
// hypervisor involvement.
//
// The package is a cycle-free structural model: methods mutate controller
// state and return decisions; the cluster simulation layer attaches latencies
// (control-network hops, context-switch costs) to those decisions.
package core

import "fmt"

// VMID identifies a virtual machine on the server.
type VMID int

// CoreID identifies a physical core on the server.
type CoreID int

// ReqID identifies a request (a microservice invocation or a Harvest VM
// vCPU task).
type ReqID uint64

// ReqStatus is the 2-bit status field of an RQ entry (§6.8).
type ReqStatus uint8

const (
	// StatusEmpty marks a free RQ slot.
	StatusEmpty ReqStatus = iota
	// StatusReady marks a request waiting to be dequeued.
	StatusReady
	// StatusRunning marks a request currently executing on a core.
	StatusRunning
	// StatusBlocked marks a request stalled on I/O; its slot is kept in the
	// subqueue until the NIC delivers the response (§4.1.5).
	StatusBlocked
)

func (s ReqStatus) String() string {
	switch s {
	case StatusEmpty:
		return "empty"
	case StatusReady:
		return "ready"
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("ReqStatus(%d)", uint8(s))
	}
}

// Request is the controller's view of one queued invocation: a payload
// pointer (the NIC deposited the message into the LLC via DDIO) plus status.
type Request struct {
	ID          ReqID
	VM          VMID
	PayloadAddr uint64
	Status      ReqStatus
	// InOverflow marks requests currently stored in the VM's software
	// in-memory overflow subqueue rather than the hardware RQ.
	InOverflow bool
}

// CoreState tracks what a core bound to a Primary VM's QM is doing. The
// controller is the single source of truth for loan bookkeeping.
type CoreState int

const (
	// CoreIdle means the core is spinning on its QM for work.
	CoreIdle CoreState = iota
	// CoreRunningOwn means the core executes a request of the VM it is
	// bound to.
	CoreRunningOwn
	// CoreLoaned means the core is bound to a Primary VM but currently
	// executes a Harvest VM request (§4.1.4).
	CoreLoaned
)

func (s CoreState) String() string {
	switch s {
	case CoreIdle:
		return "idle"
	case CoreRunningOwn:
		return "running-own"
	case CoreLoaned:
		return "loaned"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// Errors returned by controller operations. Isolation violations are errors
// rather than panics: in hardware they would raise a fault to the hypervisor.
var (
	ErrUnknownVM     = fmt.Errorf("core: unknown VM")
	ErrUnknownCore   = fmt.Errorf("core: core not bound to any queue manager")
	ErrIsolation     = fmt.Errorf("core: cross-VM subqueue access denied")
	ErrNoQMAvail     = fmt.Errorf("core: no free queue manager / VM state register set")
	ErrVMExists      = fmt.Errorf("core: VM already registered")
	ErrCoreBound     = fmt.Errorf("core: core already bound to a VM")
	ErrBadTransition = fmt.Errorf("core: invalid request state transition")
)
