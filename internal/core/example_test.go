package core_test

import (
	"fmt"

	"hardharvest/internal/core"
)

// Example walks the §4.1 protocol: a Primary VM core runs out of work, is
// loaned to the Harvest VM, and is reclaimed by hardware interrupt when its
// owner needs it back.
func Example() {
	ctrl := core.DefaultController()
	mask := core.DefaultHarvestMask([core.NumMaskedStructs]int{12, 8, 8, 4, 8})
	_ = ctrl.AddVM(1, true, mask)  // Primary VM
	_ = ctrl.AddVM(2, false, mask) // Harvest VM
	_ = ctrl.BindCore(0, 1)

	// The Harvest VM always has batch work queued.
	_, _, _ = ctrl.Enqueue(2, &core.Request{ID: 100, VM: 2})

	// The idle Primary core dequeues — and is loaned across VMs.
	job, vm, _, _ := ctrl.Dequeue(0, true)
	fmt.Printf("core 0 runs request %d of VM %d (%v)\n", job.ID, vm, ctrl.State(0))

	// A request for the Primary VM arrives: the QM reclaims the core.
	_, wake, _ := ctrl.Enqueue(1, &core.Request{ID: 1, VM: 1})
	fmt.Printf("wake core %d, preempt=%v\n", wake.Core, wake.Preempt)
	pre, _ := ctrl.PreemptCore(wake.Core)
	fmt.Printf("job %d back in the harvest queue (%v)\n", pre.ID, pre.Status)
	own, _, cross, _ := ctrl.Dequeue(wake.Core, true)
	fmt.Printf("core 0 now runs primary request %d (cross-VM=%v)\n", own.ID, cross)

	// Output:
	// core 0 runs request 100 of VM 2 (loaned)
	// wake core 0, preempt=true
	// job 100 back in the harvest queue (ready)
	// core 0 now runs primary request 1 (cross-VM=true)
}
