package core

// QueueManager is the hardware unit in charge of one VM's request subqueue
// (Figure 9). It holds the RQ-Map, the VM State Register Set, the
// HarvestMask, and per-VM loan bookkeeping for Primary VMs.

// QueueManager manages one VM's logical subqueue.
type QueueManager struct {
	vm        VMID
	isPrimary bool

	rqMap    *RQMap
	vmState  VMStateRegisterSet
	mask     HarvestMask
	capacity int // hardware slots = chunks * entries/chunk

	// queue holds all requests resident in hardware slots, FIFO order.
	// Entries may be Ready, Running, or Blocked; all occupy slots.
	queue reqRing
	// overflow is the software In-memory Overflow Subqueue (§4.1.7), FIFO.
	overflow reqRing

	boundCores map[CoreID]bool

	// Stats.
	enqueues         uint64
	overflowEnqueues uint64
	dequeues         uint64
	maxOccupancy     int
}

func newQueueManager(vm VMID, isPrimary bool, maxChunks int) *QueueManager {
	return &QueueManager{
		vm:         vm,
		isPrimary:  isPrimary,
		rqMap:      NewRQMap(maxChunks),
		boundCores: make(map[CoreID]bool),
	}
}

// VM reports the VM this QM serves.
func (q *QueueManager) VM() VMID { return q.vm }

// IsPrimary reports whether the VM is a Primary VM.
func (q *QueueManager) IsPrimary() bool { return q.isPrimary }

// Capacity reports the hardware slot capacity of the subqueue.
func (q *QueueManager) Capacity() int { return q.capacity }

// Chunks reports the number of chunks currently mapped.
func (q *QueueManager) Chunks() int { return q.rqMap.Len() }

// BoundCores reports how many cores are bound to this QM.
func (q *QueueManager) BoundCores() int { return len(q.boundCores) }

// HardwareOccupancy reports requests resident in hardware slots.
func (q *QueueManager) HardwareOccupancy() int { return q.queue.Len() }

// OverflowLen reports requests in the software overflow subqueue.
func (q *QueueManager) OverflowLen() int { return q.overflow.Len() }

// Mask returns the VM's HarvestMask register.
func (q *QueueManager) Mask() HarvestMask { return q.mask }

// SetMask programs the HarvestMask register.
func (q *QueueManager) SetMask(m HarvestMask) { q.mask = m }

// VMState returns a pointer to the VM State Register Set.
func (q *QueueManager) VMState() *VMStateRegisterSet { return &q.vmState }

// setCapacityFromChunks recomputes hardware capacity and spills any excess
// tail entries to the overflow subqueue; called after chunk donation.
func (q *QueueManager) setCapacityFromChunks(chunkEntries int) (spilled int) {
	q.capacity = q.rqMap.Len() * chunkEntries
	for q.queue.Len() > q.capacity {
		// Donations come from the tail of the subqueue (§4.1.2), so the
		// youngest entries spill.
		last := q.queue.PopBack()
		last.InOverflow = true
		// Keep overflow in FIFO order: the spilled entry is younger than
		// anything already waiting there only if overflow was filled later.
		// Spills go to the front of overflow because overflow entries were
		// enqueued after the hardware filled.
		q.overflow.PushFront(last)
		spilled++
	}
	return spilled
}

// enqueue stores a request pointer in the subqueue: in a hardware slot if
// one is free, otherwise in the overflow subqueue (§4.1.3). Reports whether
// the request landed in overflow.
func (q *QueueManager) enqueue(r *Request) (toOverflow bool) {
	q.enqueues++
	r.Status = StatusReady
	if q.queue.Len() < q.capacity {
		r.InOverflow = false
		q.queue.PushBack(r)
		if q.queue.Len() > q.maxOccupancy {
			q.maxOccupancy = q.queue.Len()
		}
		return false
	}
	r.InOverflow = true
	q.overflow.PushBack(r)
	q.overflowEnqueues++
	return true
}

// requeueFront puts a preempted request back at the head of the subqueue so
// it is the next dequeued (§4.1.5: the preempted Harvest vCPU is returned to
// the queue and taken by another core).
func (q *QueueManager) requeueFront(r *Request) {
	r.Status = StatusReady
	r.InOverflow = false
	q.queue.PushFront(r)
	// requeueFront is used for preempted work whose slot was just vacated,
	// so it cannot exceed capacity unless chunks shrank concurrently; spill
	// from the tail in that case.
	if q.queue.Len() > q.capacity && q.capacity > 0 {
		last := q.queue.PopBack()
		last.InOverflow = true
		q.overflow.PushFront(last)
	}
}

// preempt moves a running request back to the head of the subqueue, Ready,
// so another core can take it (§4.1.5, Figure 10).
func (q *QueueManager) preempt(r *Request) bool {
	for i := 0; i < q.queue.Len(); i++ {
		if q.queue.At(i) != r {
			continue
		}
		if r.Status != StatusRunning {
			return false
		}
		q.queue.RemoveAt(i)
		q.requeueFront(r)
		return true
	}
	return false
}

// dequeue hands the oldest Ready request to a core, marking it Running. The
// slot remains occupied until completion or preemption. Returns nil if no
// Ready request exists.
func (q *QueueManager) dequeue() *Request {
	for i := 0; i < q.queue.Len(); i++ {
		if r := q.queue.At(i); r.Status == StatusReady {
			r.Status = StatusRunning
			q.dequeues++
			return r
		}
	}
	return nil
}

// hasReady reports whether a Ready request is queued (hardware or overflow).
func (q *QueueManager) hasReady() bool {
	for i := 0; i < q.queue.Len(); i++ {
		if q.queue.At(i).Status == StatusReady {
			return true
		}
	}
	for i := 0; i < q.overflow.Len(); i++ {
		if q.overflow.At(i).Status == StatusReady {
			return true
		}
	}
	return false
}

// ReadyLen counts Ready requests in hardware and overflow.
func (q *QueueManager) ReadyLen() int {
	n := 0
	for i := 0; i < q.queue.Len(); i++ {
		if q.queue.At(i).Status == StatusReady {
			n++
		}
	}
	for i := 0; i < q.overflow.Len(); i++ {
		if q.overflow.At(i).Status == StatusReady {
			n++
		}
	}
	return n
}

// complete removes a finished request's slot and refills from overflow.
func (q *QueueManager) complete(r *Request) bool {
	for i := 0; i < q.queue.Len(); i++ {
		if q.queue.At(i) == r {
			q.queue.RemoveAt(i)
			r.Status = StatusEmpty
			q.refillFromOverflow()
			return true
		}
	}
	return false
}

// block marks a running request as blocked on I/O; its pointer stays in the
// subqueue (§4.1.5).
func (q *QueueManager) block(r *Request) bool {
	for i := 0; i < q.queue.Len(); i++ {
		if q.queue.At(i) == r {
			if r.Status != StatusRunning {
				return false
			}
			r.Status = StatusBlocked
			return true
		}
	}
	return false
}

// unblock marks a blocked request Ready again when the NIC delivers its
// response. Works for requests in hardware or overflow.
func (q *QueueManager) unblock(r *Request) bool {
	if r.Status != StatusBlocked {
		return false
	}
	r.Status = StatusReady
	return true
}

// refillFromOverflow promotes overflow entries into freed hardware slots.
func (q *QueueManager) refillFromOverflow() {
	for q.overflow.Len() > 0 && q.queue.Len() < q.capacity {
		r := q.overflow.PopFront()
		r.InOverflow = false
		q.queue.PushBack(r)
	}
}

// QMStats is a snapshot of a QM's counters.
type QMStats struct {
	Enqueues         uint64
	OverflowEnqueues uint64
	Dequeues         uint64
	MaxOccupancy     int
}

// Stats returns the QM's counters.
func (q *QueueManager) Stats() QMStats {
	return QMStats{
		Enqueues:         q.enqueues,
		OverflowEnqueues: q.overflowEnqueues,
		Dequeues:         q.dequeues,
		MaxOccupancy:     q.maxOccupancy,
	}
}
