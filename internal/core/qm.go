package core

// QueueManager is the hardware unit in charge of one VM's request subqueue
// (Figure 9). It holds the RQ-Map, the VM State Register Set, the
// HarvestMask, and per-VM loan bookkeeping for Primary VMs.

// QueueManager manages one VM's logical subqueue.
type QueueManager struct {
	vm        VMID
	isPrimary bool

	rqMap    *RQMap
	vmState  VMStateRegisterSet
	mask     HarvestMask
	capacity int // hardware slots = chunks * entries/chunk

	// queue holds all requests resident in hardware slots, FIFO order.
	// Entries may be Ready, Running, or Blocked; all occupy slots.
	queue []*Request
	// overflow is the software In-memory Overflow Subqueue (§4.1.7), FIFO.
	overflow []*Request

	boundCores map[CoreID]bool

	// Stats.
	enqueues         uint64
	overflowEnqueues uint64
	dequeues         uint64
	maxOccupancy     int
}

func newQueueManager(vm VMID, isPrimary bool, maxChunks int) *QueueManager {
	return &QueueManager{
		vm:         vm,
		isPrimary:  isPrimary,
		rqMap:      NewRQMap(maxChunks),
		boundCores: make(map[CoreID]bool),
	}
}

// VM reports the VM this QM serves.
func (q *QueueManager) VM() VMID { return q.vm }

// IsPrimary reports whether the VM is a Primary VM.
func (q *QueueManager) IsPrimary() bool { return q.isPrimary }

// Capacity reports the hardware slot capacity of the subqueue.
func (q *QueueManager) Capacity() int { return q.capacity }

// Chunks reports the number of chunks currently mapped.
func (q *QueueManager) Chunks() int { return q.rqMap.Len() }

// BoundCores reports how many cores are bound to this QM.
func (q *QueueManager) BoundCores() int { return len(q.boundCores) }

// HardwareOccupancy reports requests resident in hardware slots.
func (q *QueueManager) HardwareOccupancy() int { return len(q.queue) }

// OverflowLen reports requests in the software overflow subqueue.
func (q *QueueManager) OverflowLen() int { return len(q.overflow) }

// Mask returns the VM's HarvestMask register.
func (q *QueueManager) Mask() HarvestMask { return q.mask }

// SetMask programs the HarvestMask register.
func (q *QueueManager) SetMask(m HarvestMask) { q.mask = m }

// VMState returns a pointer to the VM State Register Set.
func (q *QueueManager) VMState() *VMStateRegisterSet { return &q.vmState }

// setCapacityFromChunks recomputes hardware capacity and spills any excess
// tail entries to the overflow subqueue; called after chunk donation.
func (q *QueueManager) setCapacityFromChunks(chunkEntries int) (spilled int) {
	q.capacity = q.rqMap.Len() * chunkEntries
	for len(q.queue) > q.capacity {
		// Donations come from the tail of the subqueue (§4.1.2), so the
		// youngest entries spill.
		last := q.queue[len(q.queue)-1]
		q.queue = q.queue[:len(q.queue)-1]
		last.InOverflow = true
		// Keep overflow in FIFO order: the spilled entry is younger than
		// anything already waiting there only if overflow was filled later.
		// Spills go to the front of overflow because overflow entries were
		// enqueued after the hardware filled.
		q.overflow = append([]*Request{last}, q.overflow...)
		spilled++
	}
	return spilled
}

// enqueue stores a request pointer in the subqueue: in a hardware slot if
// one is free, otherwise in the overflow subqueue (§4.1.3). Reports whether
// the request landed in overflow.
func (q *QueueManager) enqueue(r *Request) (toOverflow bool) {
	q.enqueues++
	r.Status = StatusReady
	if len(q.queue) < q.capacity {
		r.InOverflow = false
		q.queue = append(q.queue, r)
		if len(q.queue) > q.maxOccupancy {
			q.maxOccupancy = len(q.queue)
		}
		return false
	}
	r.InOverflow = true
	q.overflow = append(q.overflow, r)
	q.overflowEnqueues++
	return true
}

// requeueFront puts a preempted request back at the head of the subqueue so
// it is the next dequeued (§4.1.5: the preempted Harvest vCPU is returned to
// the queue and taken by another core).
func (q *QueueManager) requeueFront(r *Request) {
	r.Status = StatusReady
	r.InOverflow = false
	q.queue = append([]*Request{r}, q.queue...)
	// requeueFront is used for preempted work whose slot was just vacated,
	// so it cannot exceed capacity unless chunks shrank concurrently; spill
	// from the tail in that case.
	if len(q.queue) > q.capacity && q.capacity > 0 {
		last := q.queue[len(q.queue)-1]
		q.queue = q.queue[:len(q.queue)-1]
		last.InOverflow = true
		q.overflow = append([]*Request{last}, q.overflow...)
	}
}

// preempt moves a running request back to the head of the subqueue, Ready,
// so another core can take it (§4.1.5, Figure 10).
func (q *QueueManager) preempt(r *Request) bool {
	for i, qr := range q.queue {
		if qr != r {
			continue
		}
		if r.Status != StatusRunning {
			return false
		}
		q.queue = append(q.queue[:i], q.queue[i+1:]...)
		q.requeueFront(r)
		return true
	}
	return false
}

// dequeue hands the oldest Ready request to a core, marking it Running. The
// slot remains occupied until completion or preemption. Returns nil if no
// Ready request exists.
func (q *QueueManager) dequeue() *Request {
	for _, r := range q.queue {
		if r.Status == StatusReady {
			r.Status = StatusRunning
			q.dequeues++
			return r
		}
	}
	return nil
}

// hasReady reports whether a Ready request is queued (hardware or overflow).
func (q *QueueManager) hasReady() bool {
	for _, r := range q.queue {
		if r.Status == StatusReady {
			return true
		}
	}
	for _, r := range q.overflow {
		if r.Status == StatusReady {
			return true
		}
	}
	return false
}

// ReadyLen counts Ready requests in hardware and overflow.
func (q *QueueManager) ReadyLen() int {
	n := 0
	for _, r := range q.queue {
		if r.Status == StatusReady {
			n++
		}
	}
	for _, r := range q.overflow {
		if r.Status == StatusReady {
			n++
		}
	}
	return n
}

// complete removes a finished request's slot and refills from overflow.
func (q *QueueManager) complete(r *Request) bool {
	for i, qr := range q.queue {
		if qr == r {
			q.queue = append(q.queue[:i], q.queue[i+1:]...)
			r.Status = StatusEmpty
			q.refillFromOverflow()
			return true
		}
	}
	return false
}

// block marks a running request as blocked on I/O; its pointer stays in the
// subqueue (§4.1.5).
func (q *QueueManager) block(r *Request) bool {
	for _, qr := range q.queue {
		if qr == r {
			if r.Status != StatusRunning {
				return false
			}
			r.Status = StatusBlocked
			return true
		}
	}
	return false
}

// unblock marks a blocked request Ready again when the NIC delivers its
// response. Works for requests in hardware or overflow.
func (q *QueueManager) unblock(r *Request) bool {
	if r.Status != StatusBlocked {
		return false
	}
	r.Status = StatusReady
	return true
}

// refillFromOverflow promotes overflow entries into freed hardware slots.
func (q *QueueManager) refillFromOverflow() {
	for len(q.overflow) > 0 && len(q.queue) < q.capacity {
		r := q.overflow[0]
		q.overflow = q.overflow[1:]
		r.InOverflow = false
		q.queue = append(q.queue, r)
	}
}

// QMStats is a snapshot of a QM's counters.
type QMStats struct {
	Enqueues         uint64
	OverflowEnqueues uint64
	Dequeues         uint64
	MaxOccupancy     int
}

// Stats returns the QM's counters.
func (q *QueueManager) Stats() QMStats {
	return QMStats{
		Enqueues:         q.enqueues,
		OverflowEnqueues: q.overflowEnqueues,
		Dequeues:         q.dequeues,
		MaxOccupancy:     q.maxOccupancy,
	}
}
