package core

import (
	"math"
	"testing"
)

func TestStorageCostPaperNumbers(t *testing.T) {
	c := ComputeStorageCost(DefaultStorageParams())
	// RQ: 2048 entries x 66 bits = 16896 B.
	if c.RQBytes != 16896 {
		t.Fatalf("RQBytes = %d", c.RQBytes)
	}
	// Per pair: 16*8 + 24 + 5 = 157 B; 16 pairs = 2512 B.
	if c.PerQMPairBytes != 157 {
		t.Fatalf("PerQMPairBytes = %d", c.PerQMPairBytes)
	}
	if c.QMPairsBytes != 2512 {
		t.Fatalf("QMPairsBytes = %d", c.QMPairsBytes)
	}
	// Controller total: 19408 B = 18.95 KiB; paper reports 18.9 KB.
	if c.ControllerBytes != 19408 {
		t.Fatalf("ControllerBytes = %d", c.ControllerBytes)
	}
	kb := float64(c.ControllerBytes) / 1024
	if math.Abs(kb-18.9) > 0.1 {
		t.Fatalf("controller = %.2f KB, paper says 18.9", kb)
	}
	// Per core: 0.53 KB.
	perCoreKB := c.ControllerPerCoreB / 1024
	if math.Abs(perCoreKB-0.53) > 0.01 {
		t.Fatalf("per-core = %.3f KB, paper says 0.53", perCoreKB)
	}
	// Shared bits per core: 768 + 8192 + 128 + 2048 = 11136 bits = 1.36 KiB.
	if c.SharedBitsPerCoreBits != 11136 {
		t.Fatalf("SharedBitsPerCoreBits = %d", c.SharedBitsPerCoreBits)
	}
	if c.SharedBitsServerBytes != float64(11136*36)/8 {
		t.Fatalf("SharedBitsServerBytes = %v", c.SharedBitsServerBytes)
	}
}

func TestRQGeometry(t *testing.T) {
	rq := NewRQ(DefaultNumChunks, DefaultChunkEntries)
	if rq.TotalEntries() != 2048 {
		t.Fatalf("total entries = %d", rq.TotalEntries())
	}
	if rq.FreeChunks() != 32 {
		t.Fatalf("free chunks = %d", rq.FreeChunks())
	}
	ch := rq.allocFree(7)
	if ch < 0 || rq.Owner(ch) != 7 {
		t.Fatal("allocFree failed")
	}
	rq.transfer(ch, 9)
	if rq.Owner(ch) != 9 {
		t.Fatal("transfer failed")
	}
	if n := rq.release(9); n != 1 {
		t.Fatalf("release = %d", n)
	}
	if rq.FreeChunks() != 32 {
		t.Fatal("release did not free")
	}
}

func TestRQMap(t *testing.T) {
	m := NewRQMap(32)
	m.AppendTail(3)
	m.AppendTail(7)
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if got := m.Chunks(); got[0] != 3 || got[1] != 7 {
		t.Fatalf("chunks = %v", got)
	}
	if c := m.DropTail(); c != 7 {
		t.Fatalf("DropTail = %d", c)
	}
	// 32 entries x (5-bit chunk ID + valid) = 192 bits = 24 B (§6.8).
	if bits := m.StorageBits(32); bits != 192 {
		t.Fatalf("StorageBits = %d", bits)
	}
	m.DropTail()
	defer func() {
		if recover() == nil {
			t.Error("DropTail on empty map should panic")
		}
	}()
	m.DropTail()
}

func TestHarvestMask(t *testing.T) {
	// Table 1 way counts: L1D 12, L1I 8, L2 8, L1TLB 4, L2TLB 8.
	ways := [NumMaskedStructs]int{12, 8, 8, 4, 8}
	m := DefaultHarvestMask(ways)
	for s, w := range ways {
		if got := m.HarvestWays(s); got != w/2 {
			t.Errorf("struct %d harvest ways = %d, want %d", s, got, w/2)
		}
		// Lower half non-harvest, upper half harvest.
		if m.IsHarvestWay(s, 0) {
			t.Errorf("struct %d way 0 should be non-harvest", s)
		}
		if !m.IsHarvestWay(s, w-1) {
			t.Errorf("struct %d way %d should be harvest", s, w-1)
		}
	}
	if m.Bytes() != 5 {
		t.Fatalf("mask bytes = %d", m.Bytes())
	}
	m.SetWay(MaskL1D, 0, true)
	if !m.IsHarvestWay(MaskL1D, 0) {
		t.Fatal("SetWay(true) failed")
	}
	m.SetWay(MaskL1D, 0, false)
	if m.IsHarvestWay(MaskL1D, 0) {
		t.Fatal("SetWay(false) failed")
	}
}

func TestVMStateRegisterSet(t *testing.T) {
	var v VMStateRegisterSet
	v.Set(RegCR3, 0xDEADBEEF)
	v.Set(RegVMCSPtr, 0x1000)
	if v.Get(RegCR3) != 0xDEADBEEF || v.Get(RegVMCSPtr) != 0x1000 {
		t.Fatal("register read/write failed")
	}
	if v.Bytes() != 128 {
		t.Fatalf("bytes = %d", v.Bytes())
	}
}
