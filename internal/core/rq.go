package core

import "fmt"

// Physical Request Queue organization (§4.1.2): the RQ is a single SRAM
// structure broken into chunks; each VM's logical subqueue is composed of one
// or more chunks, mapped through the Queue Manager's RQ-Map. Chunks have
// independent access ports, so QMs never contend.

// Default RQ geometry (Table 1).
const (
	// DefaultNumChunks is the number of physical chunks in the RQ.
	DefaultNumChunks = 32
	// DefaultChunkEntries is the number of entries per chunk.
	DefaultChunkEntries = 64
	// RQEntryBits is the width of one RQ entry: a 2-bit status plus a
	// 64-bit payload pointer (§6.8).
	RQEntryBits = 66
)

// ChunkID identifies one physical chunk of the RQ.
type ChunkID int

// RQ tracks ownership of the physical chunks. Entry contents live in the
// owning QM's subqueue structure; the RQ only arbitrates chunk allocation.
type RQ struct {
	numChunks    int
	chunkEntries int
	owner        []VMID // indexed by ChunkID; -1 = free
}

// NewRQ builds a physical RQ with the given geometry.
func NewRQ(numChunks, chunkEntries int) *RQ {
	if numChunks <= 0 || chunkEntries <= 0 {
		panic("core: invalid RQ geometry")
	}
	rq := &RQ{numChunks: numChunks, chunkEntries: chunkEntries, owner: make([]VMID, numChunks)}
	for i := range rq.owner {
		rq.owner[i] = -1
	}
	return rq
}

// NumChunks reports the total physical chunks.
func (rq *RQ) NumChunks() int { return rq.numChunks }

// ChunkEntries reports entries per chunk.
func (rq *RQ) ChunkEntries() int { return rq.chunkEntries }

// TotalEntries reports the RQ's total entry count (2K by default).
func (rq *RQ) TotalEntries() int { return rq.numChunks * rq.chunkEntries }

// FreeChunks reports how many chunks are unowned.
func (rq *RQ) FreeChunks() int {
	n := 0
	for _, o := range rq.owner {
		if o == -1 {
			n++
		}
	}
	return n
}

// Owner reports the VM owning chunk c (-1 if free).
func (rq *RQ) Owner(c ChunkID) VMID { return rq.owner[c] }

// allocFree hands a free chunk to vm, returning the chunk or -1.
func (rq *RQ) allocFree(vm VMID) ChunkID {
	for i, o := range rq.owner {
		if o == -1 {
			rq.owner[i] = vm
			return ChunkID(i)
		}
	}
	return -1
}

// transfer moves chunk c from its current owner to vm.
func (rq *RQ) transfer(c ChunkID, vm VMID) {
	rq.owner[c] = vm
}

// release frees every chunk owned by vm, returning how many were released.
func (rq *RQ) release(vm VMID) int {
	n := 0
	for i, o := range rq.owner {
		if o == vm {
			rq.owner[i] = -1
			n++
		}
	}
	return n
}

// RQMap is the per-QM table mapping the logical chunks of a VM's subqueue to
// physical chunks (§4.1.2: up to 32 entries of 5-bit chunk ID + valid bit,
// 24B total).
type RQMap struct {
	chunks []ChunkID
	max    int
}

// NewRQMap builds a map that can hold up to max chunk entries.
func NewRQMap(max int) *RQMap {
	return &RQMap{max: max}
}

// Len reports the number of valid entries.
func (m *RQMap) Len() int { return len(m.chunks) }

// Chunks returns the mapped physical chunks in logical order.
func (m *RQMap) Chunks() []ChunkID { return m.chunks }

// AppendTail inserts a new chunk at the tail of the subqueue.
func (m *RQMap) AppendTail(c ChunkID) {
	if len(m.chunks) >= m.max {
		panic(fmt.Sprintf("core: RQ-Map overflow (%d entries)", m.max))
	}
	m.chunks = append(m.chunks, c)
}

// DropTail invalidates the tail entry, returning the removed chunk.
// Panics if the map is empty.
func (m *RQMap) DropTail() ChunkID {
	if len(m.chunks) == 0 {
		panic("core: DropTail on empty RQ-Map")
	}
	c := m.chunks[len(m.chunks)-1]
	m.chunks = m.chunks[:len(m.chunks)-1]
	return c
}

// StorageBits reports the RQ-Map's hardware cost: per entry, a chunk ID wide
// enough for the physical chunk count plus a valid bit.
func (m *RQMap) StorageBits(numChunks int) int {
	idBits := 0
	for 1<<idBits < numChunks {
		idBits++
	}
	return m.max * (idBits + 1)
}
