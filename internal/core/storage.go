package core

// Storage-cost model (§6.8). The controller adds a 2K-entry RQ (66 bits per
// entry) plus, per QM/VM-State pair, 16 x 8B state registers, a 24B RQ-Map,
// and a 5B HarvestMask. On top of that, every entry of the TLBs, L1 D-cache,
// and L2 cache carries one extra Shared bit.

// StorageParams are the inputs of the §6.8 arithmetic.
type StorageParams struct {
	NumChunks    int
	ChunkEntries int
	EntryBits    int // RQ entry width (status + payload pointer)
	NumQMs       int
	VMStateRegs  int // registers per VM State Register Set
	VMStateRegB  int // bytes per register
	RQMapBytes   int // per-QM RQ-Map bytes
	MaskBytes    int // per-QM HarvestMask bytes

	CoresPerServer int
	// Per-core entry counts that receive a Shared bit.
	L1DLines     int
	L2Lines      int
	L1TLBEntries int
	L2TLBEntries int
}

// DefaultStorageParams returns the Table 1 configuration.
func DefaultStorageParams() StorageParams {
	return StorageParams{
		NumChunks:    DefaultNumChunks,
		ChunkEntries: DefaultChunkEntries,
		EntryBits:    RQEntryBits,
		NumQMs:       16,
		VMStateRegs:  NumVMStateRegs,
		VMStateRegB:  8,
		RQMapBytes:   24,
		MaskBytes:    5,

		CoresPerServer: 36,
		L1DLines:       48 * 1024 / 64,  // 768
		L2Lines:        512 * 1024 / 64, // 8192
		L1TLBEntries:   128,
		L2TLBEntries:   2048,
	}
}

// StorageCost is the computed breakdown.
type StorageCost struct {
	RQBytes            int
	PerQMPairBytes     int
	QMPairsBytes       int
	ControllerBytes    int // RQ + QM pairs
	ControllerPerCoreB float64

	SharedBitsPerCoreBits int
	SharedBitsServerBytes float64
	SharedBitsPerCoreB    float64
}

// ComputeStorageCost evaluates the §6.8 arithmetic for the given parameters.
func ComputeStorageCost(p StorageParams) StorageCost {
	var c StorageCost
	totalEntries := p.NumChunks * p.ChunkEntries
	c.RQBytes = totalEntries * p.EntryBits / 8
	c.PerQMPairBytes = p.VMStateRegs*p.VMStateRegB + p.RQMapBytes + p.MaskBytes
	c.QMPairsBytes = p.NumQMs * c.PerQMPairBytes
	c.ControllerBytes = c.RQBytes + c.QMPairsBytes
	c.ControllerPerCoreB = float64(c.ControllerBytes) / float64(p.CoresPerServer)

	c.SharedBitsPerCoreBits = p.L1DLines + p.L2Lines + p.L1TLBEntries + p.L2TLBEntries
	c.SharedBitsServerBytes = float64(c.SharedBitsPerCoreBits*p.CoresPerServer) / 8
	c.SharedBitsPerCoreB = float64(c.SharedBitsPerCoreBits) / 8
	return c
}
