// Package pages implements the Shared-bit page classification of §4.2.2:
// pages allocated while a microservice initializes (before the framework
// enters its serve loop — server.serve() in Thrift/gRPC terms) hold code,
// libraries, and read-only data shared across invocations; pages allocated
// afterwards by invocation-handling threads are private to an invocation.
// The bit is stored in the page table entry, copied into TLB entries, and
// steers cache/TLB placement (Algorithm 1).
package pages

import (
	"fmt"
	"sort"
)

// PageSize is the classification granularity (4 KiB pages).
const PageSize = 4096

// Class is a page's sharing classification.
type Class uint8

const (
	// Unmapped pages have no classification.
	Unmapped Class = iota
	// Shared pages were allocated before the serve loop started (code,
	// libraries, read-only inputs) or extend such an allocation.
	Shared
	// Private pages were allocated by invocation-handling threads.
	Private
)

func (c Class) String() string {
	switch c {
	case Unmapped:
		return "unmapped"
	case Shared:
		return "shared"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// entry is one page-table record.
type entry struct {
	class Class
	// allocSeq orders allocations (for statistics and debugging).
	allocSeq uint64
}

// Table tracks page classifications for one microservice process.
type Table struct {
	serving  bool
	seq      uint64
	pages    map[uint64]*entry // keyed by page number
	regions  []region          // shared regions that may be extended
	sharedN  int
	privateN int
}

type region struct {
	startPage uint64
	pages     int
}

// NewTable returns an empty page table in the initialization phase: every
// allocation is classified Shared until MarkServeStart.
func NewTable() *Table {
	return &Table{pages: make(map[uint64]*entry)}
}

// MarkServeStart records that the framework entered its serve loop
// (server.serve() in Thrift, CompletionQueue::Next in gRPC): allocations
// from now on are private to invocations, unless they extend a shared
// allocation.
func (t *Table) MarkServeStart() { t.serving = true }

// Serving reports whether the serve loop has started.
func (t *Table) Serving() bool { return t.serving }

// Allocate maps n bytes starting at addr and classifies the pages. It
// returns the classification applied.
func (t *Table) Allocate(addr uint64, n int) Class {
	if n <= 0 {
		return Unmapped
	}
	class := Shared
	if t.serving && !t.extendsShared(addr) {
		class = Private
	}
	first := addr / PageSize
	last := (addr + uint64(n) - 1) / PageSize
	for p := first; p <= last; p++ {
		if e, ok := t.pages[p]; ok {
			// Re-allocation keeps the stronger (shared) classification:
			// shared data reallocated to grow stays shared (§4.2.2).
			if e.class == Shared {
				continue
			}
			if class == Shared {
				e.class = Shared
				t.privateN--
				t.sharedN++
			}
			continue
		}
		t.seq++
		t.pages[p] = &entry{class: class, allocSeq: t.seq}
		if class == Shared {
			t.sharedN++
		} else {
			t.privateN++
		}
	}
	if class == Shared {
		t.regions = append(t.regions, region{startPage: first, pages: int(last - first + 1)})
	}
	return class
}

// extendsShared reports whether addr is adjacent to (or inside) an existing
// shared region: growing shared data keeps the new pages shared.
func (t *Table) extendsShared(addr uint64) bool {
	p := addr / PageSize
	for _, r := range t.regions {
		if p >= r.startPage && p <= r.startPage+uint64(r.pages) {
			return true
		}
	}
	return false
}

// Free unmaps n bytes starting at addr.
func (t *Table) Free(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr / PageSize
	last := (addr + uint64(n) - 1) / PageSize
	for p := first; p <= last; p++ {
		if e, ok := t.pages[p]; ok {
			if e.class == Shared {
				t.sharedN--
			} else {
				t.privateN--
			}
			delete(t.pages, p)
		}
	}
}

// Classify reports the classification of the page containing addr. This is
// the lookup the hardware performs on a TLB fill to set the entry's Shared
// bit.
func (t *Table) Classify(addr uint64) Class {
	if e, ok := t.pages[addr/PageSize]; ok {
		return e.class
	}
	return Unmapped
}

// IsShared reports whether addr sits on a shared page (the Shared bit the
// TLB entry carries).
func (t *Table) IsShared(addr uint64) bool { return t.Classify(addr) == Shared }

// Counts reports mapped shared and private page counts.
func (t *Table) Counts() (shared, private int) { return t.sharedN, t.privateN }

// SharedFraction reports the fraction of mapped pages that are shared.
func (t *Table) SharedFraction() float64 {
	total := t.sharedN + t.privateN
	if total == 0 {
		return 0
	}
	return float64(t.sharedN) / float64(total)
}

// Footprint reports the mapped bytes.
func (t *Table) Footprint() int64 {
	return int64(t.sharedN+t.privateN) * PageSize
}

// Pages returns the mapped page numbers in ascending order (for tests and
// inspection tools).
func (t *Table) Pages() []uint64 {
	out := make([]uint64, 0, len(t.pages))
	for p := range t.pages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
