package pages

import (
	"testing"
	"testing/quick"
)

func TestInitAllocationsAreShared(t *testing.T) {
	pt := NewTable()
	if c := pt.Allocate(0x1000, 8192); c != Shared {
		t.Fatalf("init allocation class = %v", c)
	}
	if !pt.IsShared(0x1000) || !pt.IsShared(0x2000) {
		t.Fatal("init pages not shared")
	}
	s, p := pt.Counts()
	if s != 2 || p != 0 {
		t.Fatalf("counts = %d/%d", s, p)
	}
}

func TestServeLoopSwitchesToPrivate(t *testing.T) {
	pt := NewTable()
	pt.Allocate(0x1000, 4096) // code/ro data
	if pt.Serving() {
		t.Fatal("serving before MarkServeStart")
	}
	pt.MarkServeStart()
	if c := pt.Allocate(0x100000, 4096); c != Private {
		t.Fatalf("post-serve allocation class = %v", c)
	}
	if pt.IsShared(0x100000) {
		t.Fatal("invocation page classified shared")
	}
	// The pre-serve page stays shared.
	if !pt.IsShared(0x1000) {
		t.Fatal("init page lost shared class")
	}
}

func TestSharedGrowthStaysShared(t *testing.T) {
	pt := NewTable()
	pt.Allocate(0x10000, 2*PageSize) // shared region: pages 16,17
	pt.MarkServeStart()
	// Reallocating/growing the shared buffer touches the next page.
	if c := pt.Allocate(0x10000+2*PageSize, PageSize); c != Shared {
		t.Fatalf("shared growth class = %v", c)
	}
	// An unrelated allocation far away is private.
	if c := pt.Allocate(0x900000, PageSize); c != Private {
		t.Fatalf("unrelated allocation class = %v", c)
	}
}

func TestReallocationKeepsStrongerClass(t *testing.T) {
	pt := NewTable()
	pt.MarkServeStart()
	pt.Allocate(0x5000, PageSize) // private
	if pt.Classify(0x5000) != Private {
		t.Fatal("setup failed")
	}
	// The same page later covered by a shared-region growth flips to
	// shared and the counters follow.
	pt2 := NewTable()
	pt2.Allocate(0x4000, PageSize) // shared page 4
	pt2.MarkServeStart()
	pt2.Allocate(0x5000, PageSize) // adjacent: extends shared
	if pt2.Classify(0x5000) != Shared {
		t.Fatalf("adjacent growth = %v", pt2.Classify(0x5000))
	}
}

func TestFreeUnmaps(t *testing.T) {
	pt := NewTable()
	pt.Allocate(0x1000, 4*PageSize)
	pt.Free(0x2000, PageSize)
	if pt.Classify(0x2000) != Unmapped {
		t.Fatal("freed page still mapped")
	}
	s, _ := pt.Counts()
	if s != 3 {
		t.Fatalf("shared count after free = %d", s)
	}
	pt.Free(0x2000, PageSize) // double free is a no-op
	pt.Free(0, 0)
}

func TestFootprintAndPages(t *testing.T) {
	pt := NewTable()
	pt.Allocate(0, 3*PageSize)
	pt.MarkServeStart()
	pt.Allocate(0x100000, PageSize)
	if pt.Footprint() != 4*PageSize {
		t.Fatalf("footprint = %d", pt.Footprint())
	}
	if f := pt.SharedFraction(); f != 0.75 {
		t.Fatalf("shared fraction = %v", f)
	}
	ps := pt.Pages()
	if len(ps) != 4 || ps[0] != 0 || ps[3] != 0x100000/PageSize {
		t.Fatalf("pages = %v", ps)
	}
	empty := NewTable()
	if empty.SharedFraction() != 0 {
		t.Fatal("empty table shared fraction")
	}
}

func TestClassStrings(t *testing.T) {
	if Unmapped.String() != "unmapped" || Shared.String() != "shared" || Private.String() != "private" {
		t.Fatal("class strings")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class string")
	}
}

// Property: counts always match a full scan, and classifications are stable
// under arbitrary interleavings of allocate/free before and after the serve
// point.
func TestCountsMatchScanProperty(t *testing.T) {
	f := func(ops []struct {
		Addr  uint32
		Pages uint8
		Free  bool
		Serve bool
	}) bool {
		pt := NewTable()
		for _, op := range ops {
			if op.Serve {
				pt.MarkServeStart()
			}
			n := (int(op.Pages)%8 + 1) * PageSize
			if op.Free {
				pt.Free(uint64(op.Addr)*PageSize, n)
			} else {
				pt.Allocate(uint64(op.Addr)*PageSize, n)
			}
		}
		shared, private := 0, 0
		for _, p := range pt.Pages() {
			switch pt.Classify(p * PageSize) {
			case Shared:
				shared++
			case Private:
				private++
			default:
				return false
			}
		}
		s, p := pt.Counts()
		return s == shared && p == private
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nothing allocated before the serve point is ever private.
func TestPreServeAlwaysSharedProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		pt := NewTable()
		for _, a := range addrs {
			pt.Allocate(uint64(a)*PageSize, PageSize)
		}
		for _, a := range addrs {
			if pt.Classify(uint64(a)*PageSize) != Shared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
